// Package repro reproduces "Collision Avoidance in Single-Channel Ad Hoc
// Networks Using Directional Antennas" (Yu Wang and J. J.
// Garcia-Luna-Aceves, ICDCS 2003) as a Go library.
//
// The public API lives in repro/dirca; the substrates live under
// repro/internal:
//
//	internal/core         the paper's analytical model (Section 2)
//	internal/geom         Takagi–Kleinrock plane geometry
//	internal/numeric      quadrature, optimization, distributions
//	internal/des          deterministic discrete-event kernel
//	internal/phy          radios, directional antennas, collisions
//	internal/mac          IEEE 802.11 DCF and directional variants
//	internal/topology     concentric-ring node placement
//	internal/traffic      saturated / paced CBR sources
//	internal/neighbor     neighbor location tables + HELLO protocol
//	internal/stats        streaming statistics, Jain fairness
//	internal/experiments  figure/table regeneration harness
//
// The benchmarks in this package regenerate each of the paper's tables
// and figures at reduced scale; the cmd/experiments binary runs them at
// full paper scale. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for measured-vs-published results.
package repro
