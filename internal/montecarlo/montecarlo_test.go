package montecarlo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func params(n, thetaDeg float64) core.Params {
	return core.Params{N: n, Beamwidth: thetaDeg * math.Pi / 180, Lengths: core.PaperLengths()}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, mean := range []float64{0.5, 2, 10, 40} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, mean))
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("poisson mean %v: sample mean %v", mean, got)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

// TestMCMatchesExactClosedForm: the region-count Monte-Carlo and the
// exact thinned-Poisson closed form implement the same model, so they
// must agree within sampling error for every scheme.
func TestMCMatchesExactClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pr := params(5, 60)
	const trials = 400000
	for _, s := range core.Schemes() {
		mc, err := EstimatePws(rng, s, 0.02, pr, trials)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactPws(s, 0.02, pr)
		if err != nil {
			t.Fatal(err)
		}
		// Standard error of the MC estimate ≈ sqrt(q(1-q)/trials); allow 5σ.
		se := math.Sqrt(exact * (1 - exact) / trials)
		if math.Abs(mc-exact) > 5*se+1e-5 {
			t.Errorf("%v: MC %v vs exact %v (se %v)", s, mc, exact, se)
		}
	}
}

// TestGeometricMCValidatesAreas: the position-sampling estimator for
// ORTS-OCTS must agree with the exact closed form, confirming the B(r)
// area formula end to end.
func TestGeometricMCValidatesAreas(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pr := params(5, 60)
	const trials = 400000
	mc, err := EstimatePwsGeometric(rng, 0.02, pr, trials)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactPws(core.ORTSOCTS, 0.02, pr)
	if err != nil {
		t.Fatal(err)
	}
	se := math.Sqrt(exact * (1 - exact) / trials)
	if math.Abs(mc-exact) > 5*se+1e-5 {
		t.Errorf("geometric MC %v vs exact %v (se %v)", mc, exact, se)
	}
}

// TestPaperLinearizationIsConservative quantifies the paper's internal
// approximation: writing window survival as e^{−p·S·N·T} (first order)
// instead of the exact e^{−S·N·(1−(1−p)^T)} overestimates interference,
// so the paper's P_ws must lower-bound the exact one — and converge to
// it as p → 0.
func TestPaperLinearizationIsConservative(t *testing.T) {
	pr := params(5, 60)
	for _, s := range core.Schemes() {
		for _, p := range []float64{0.001, 0.01, 0.05} {
			st, err := core.Solve(s, p, pr)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := ExactPws(s, p, pr)
			if err != nil {
				t.Fatal(err)
			}
			if st.Pws > exact*(1+1e-9) {
				t.Errorf("%v p=%v: paper P_ws %v exceeds exact %v", s, p, st.Pws, exact)
			}
		}
		// Convergence: the ratio approaches 1 as p shrinks.
		ratio := func(p float64) float64 {
			st, err := core.Solve(s, p, pr)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := ExactPws(s, p, pr)
			if err != nil {
				t.Fatal(err)
			}
			return st.Pws / exact
		}
		r1, r2 := ratio(0.02), ratio(0.0005)
		if !(r2 > r1 && r2 > 0.97) {
			t.Errorf("%v: linearization not tightening as p→0: ratio(0.02)=%v ratio(0.0005)=%v", s, r1, r2)
		}
	}
}

func TestEstimatePwsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pr := params(5, 60)
	if _, err := EstimatePws(rng, core.DRTSDCTS, 0, pr, 10); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := EstimatePws(rng, core.DRTSDCTS, 0.02, pr, 0); err == nil {
		t.Error("zero trials should fail")
	}
	if _, err := EstimatePws(rng, core.Scheme(99), 0.02, pr, 10); err == nil {
		t.Error("unknown scheme should fail")
	}
	bad := pr
	bad.N = -1
	if _, err := EstimatePws(rng, core.DRTSDCTS, 0.02, bad, 10); err == nil {
		t.Error("bad params should fail")
	}
	if _, err := EstimatePwsGeometric(rng, 2, pr, 10); err == nil {
		t.Error("geometric: bad p should fail")
	}
	if _, err := EstimatePwsGeometric(rng, 0.02, pr, 0); err == nil {
		t.Error("geometric: zero trials should fail")
	}
	if _, err := ExactPws(core.DRTSDCTS, -1, pr); err == nil {
		t.Error("exact: bad p should fail")
	}
	if _, err := ExactPws(core.DRTSDCTS, 0.02, bad); err == nil {
		t.Error("exact: bad params should fail")
	}
}

func TestEstimateDeterministic(t *testing.T) {
	pr := params(3, 90)
	a, err := EstimatePws(rand.New(rand.NewSource(5)), core.DRTSOCTS, 0.03, pr, 50000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimatePws(rand.New(rand.NewSource(5)), core.DRTSOCTS, 0.03, pr, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave %v and %v", a, b)
	}
}
