// Package montecarlo validates the analytical model by re-implementing
// the paper's Section 2 assumptions literally and estimating the
// handshake success probability P_ws by simulation, independently of the
// closed forms in internal/core.
//
// Two validators are provided:
//
//   - EstimatePws draws Poisson region populations and per-slot Bernoulli
//     transmission decisions exactly as Section 2's conditions describe,
//     for all three schemes (region sizes come from internal/geom).
//
//   - EstimatePwsGeometric, for ORTS-OCTS only, goes one level deeper: it
//     samples actual interferer positions on the plane and applies the
//     geometric conditions directly, validating the area formulas
//     themselves.
//
// The package also exposes ExactPws, the closed form obtained WITHOUT the
// paper's linearization: the paper writes node survival over a window of
// T slots as e^{−p·S·N·T}, which is the first-order approximation of the
// exact thinned-Poisson expression e^{−S·N·(1−(1−p)^T)}. ExactPws lets
// callers quantify that internal approximation (the paper's form
// overestimates interference, so core's P_ws is a lower bound).
package montecarlo

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/numeric"
)

// region is one interference region: normalized size, per-node survival
// probability over the whole vulnerable window.
type region struct {
	size     float64
	survival float64
}

// regionsFor returns the per-scheme interference regions at
// sender–receiver distance r, mirroring Section 2's conditions.
func regionsFor(s core.Scheme, p float64, pr core.Params, r float64) ([]region, error) {
	var (
		l    = pr.Lengths
		pDir = p * pr.Beamwidth / (2 * math.Pi)
		pow  = math.Pow
	)
	switch s {
	case core.ORTSOCTS:
		return []region{
			// Whole disk of x: silent in the initiating slot.
			{size: 1, survival: 1 - p},
			// Hidden region B(r): silent for 2·l_rts+1 slots.
			{size: geom.HiddenArea(r), survival: pow(1-p, float64(2*l.RTS+1))},
		}, nil
	case core.DRTSDCTS:
		a := geom.DRTSDCTSAreas(r, pr.Beamwidth)
		return []region{
			{size: a.I, survival: 1 - p},
			{size: a.II, survival: pow(1-pDir, float64(2*l.RTS)) * (1 - p)},
			{size: a.III, survival: pow(1-pDir, float64(2*l.RTS+l.CTS+l.Data+l.ACK+4))},
			{size: a.IV, survival: pow(1-pDir, float64(2*l.RTS+l.CTS+l.ACK+2))},
			{size: a.V, survival: pow(1-pDir, float64(3*l.RTS+l.Data+2))},
		}, nil
	case core.DRTSOCTS:
		a := geom.DRTSOCTSAreas(r, pr.Beamwidth)
		return []region{
			{size: a.I, survival: 1 - p},
			{size: a.II, survival: pow(1-pDir, float64(2*l.RTS)) * (1 - p)},
			{size: a.III, survival: pow(1-pDir, float64(2*l.RTS+l.CTS+l.ACK+2))},
		}, nil
	default:
		return nil, fmt.Errorf("montecarlo: unsupported scheme %v", s)
	}
}

// EstimatePws estimates P_ws for the scheme at attempt probability p by
// Monte-Carlo over the paper's assumptions: sender–receiver distance
// r ~ 2r dr, Poisson(region size × N) interferers per region, and
// independent per-slot transmissions. trials must be positive.
func EstimatePws(rng *rand.Rand, s core.Scheme, p float64, pr core.Params, trials int) (float64, error) {
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	if p <= 0 || p >= 1 {
		return 0, core.ErrBadP
	}
	if trials < 1 {
		return 0, fmt.Errorf("montecarlo: trials must be positive, got %d", trials)
	}
	if _, err := regionsFor(s, p, pr, 0.5); err != nil {
		return 0, err
	}
	succ := 0
	for i := 0; i < trials; i++ {
		// x transmits and y listens.
		if rng.Float64() >= p {
			continue
		}
		if rng.Float64() < p {
			continue
		}
		r := math.Sqrt(rng.Float64()) // density f(r) = 2r
		regions, err := regionsFor(s, p, pr, r)
		if err != nil {
			return 0, err
		}
		ok := true
		for _, reg := range regions {
			k := poisson(rng, reg.size*pr.N)
			for j := 0; j < k; j++ {
				if rng.Float64() >= reg.survival {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			succ++
		}
	}
	return float64(succ) / float64(trials), nil
}

// EstimatePwsGeometric estimates ORTS-OCTS's P_ws by sampling actual
// interferer positions (a Poisson field over a disk covering both
// coverage areas) and applying the geometric conditions directly,
// validating the B(r) area formula along the way.
func EstimatePwsGeometric(rng *rand.Rand, p float64, pr core.Params, trials int) (float64, error) {
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	if p <= 0 || p >= 1 {
		return 0, core.ErrBadP
	}
	if trials < 1 {
		return 0, fmt.Errorf("montecarlo: trials must be positive, got %d", trials)
	}
	var (
		l       = pr.Lengths
		rtsWin  = 2*l.RTS + 1
		fieldR  = 2.5 // covers x's and y's unit disks for any r ≤ 1
		fieldA  = math.Pi * fieldR * fieldR
		density = pr.N / math.Pi // nodes per unit area (N per unit disk)
	)
	succ := 0
	for i := 0; i < trials; i++ {
		if rng.Float64() >= p {
			continue
		}
		if rng.Float64() < p {
			continue
		}
		r := math.Sqrt(rng.Float64())
		x := geom.Point{}
		y := geom.Point{X: r}
		k := poisson(rng, density*fieldA)
		ok := true
		for j := 0; j < k && ok; j++ {
			pos := geom.Polar(geom.Point{}, fieldR*math.Sqrt(rng.Float64()), rng.Float64()*2*math.Pi)
			inX := pos.Dist(x) <= 1
			inY := pos.Dist(y) <= 1
			switch {
			case inX:
				// Hears x: must be silent only in the initiating slot.
				if rng.Float64() < p {
					ok = false
				}
			case inY:
				// Hidden terminal: must be silent through the RTS window.
				for t := 0; t < rtsWin; t++ {
					if rng.Float64() < p {
						ok = false
						break
					}
				}
			}
		}
		if ok {
			succ++
		}
	}
	return float64(succ) / float64(trials), nil
}

// ExactPws evaluates the closed form without the paper's window
// linearization: node survival over T slots enters as the exact thinning
// e^{−S·N·(1−survival)} instead of e^{−S·N·q·T}. It upper-bounds the
// paper's P_ws and converges to it as p → 0.
func ExactPws(s core.Scheme, p float64, pr core.Params) (float64, error) {
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	if p <= 0 || p >= 1 {
		return 0, core.ErrBadP
	}
	integrand := func(r float64) float64 {
		regions, err := regionsFor(s, p, pr, r)
		if err != nil {
			return 0
		}
		v := 2 * r
		for _, reg := range regions {
			v *= math.Exp(-reg.size * pr.N * (1 - reg.survival))
		}
		return v
	}
	integral, err := numeric.Integrate(integrand, 0, 1, 512)
	if err != nil {
		return 0, err
	}
	return p * (1 - p) * integral, nil
}

// poisson draws from a Poisson distribution with the given mean (Knuth's
// method; means here are small, ≤ ~60).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	k := 0
	prod := rng.Float64()
	for prod > limit {
		k++
		prod *= rng.Float64()
	}
	return k
}
