package neighbor

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/phy"
)

func newChannel(t *testing.T, positions ...geom.Point) (*des.Scheduler, *phy.Channel) {
	t.Helper()
	sched := des.New(5)
	ch, err := phy.NewChannel(sched, phy.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range positions {
		ch.AddRadio(pos, nil)
	}
	return sched, ch
}

func TestTableBasics(t *testing.T) {
	tab := NewTable(3, geom.Point{X: 0, Y: 0})
	if tab.Self() != 3 {
		t.Errorf("Self = %v, want 3", tab.Self())
	}
	if tab.Len() != 0 {
		t.Errorf("new table Len = %d, want 0", tab.Len())
	}
	tab.Learn(1, geom.Point{X: 1, Y: 0})
	tab.Learn(2, geom.Point{X: 0, Y: 1})
	tab.Learn(3, geom.Point{X: 9, Y: 9}) // self: ignored
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
	ids := tab.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("IDs = %v, want [1 2]", ids)
	}
	if pos, ok := tab.Position(1); !ok || pos != (geom.Point{X: 1, Y: 0}) {
		t.Errorf("Position(1) = %v, %v", pos, ok)
	}
	if _, ok := tab.Position(3); ok {
		t.Error("self must not be learnable")
	}
	tab.Forget(1)
	if _, ok := tab.Position(1); ok {
		t.Error("Forget did not remove the entry")
	}
}

func TestTableBearing(t *testing.T) {
	tab := NewTable(0, geom.Point{X: 0, Y: 0})
	tab.Learn(1, geom.Point{X: 0, Y: 2})
	b, err := tab.Bearing(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-math.Pi/2) > 1e-12 {
		t.Errorf("Bearing = %v, want π/2", b)
	}
	if _, err := tab.Bearing(42); err == nil {
		t.Error("Bearing of unknown neighbor should fail")
	}
}

func TestTableLearnUpdates(t *testing.T) {
	tab := NewTable(0, geom.Point{})
	tab.Learn(1, geom.Point{X: 1, Y: 0})
	tab.Learn(1, geom.Point{X: 2, Y: 0})
	if pos, _ := tab.Position(1); pos != (geom.Point{X: 2, Y: 0}) {
		t.Errorf("Learn should update: %v", pos)
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d, want 1", tab.Len())
	}
}

func TestGroundTruth(t *testing.T) {
	_, ch := newChannel(t,
		geom.Point{X: 0, Y: 0},
		geom.Point{X: 0.5, Y: 0},
		geom.Point{X: 5, Y: 5}, // isolated
	)
	tables := GroundTruth(ch)
	if len(tables) != 3 {
		t.Fatalf("tables = %d, want 3", len(tables))
	}
	if tables[0].Len() != 1 {
		t.Errorf("node 0 table Len = %d, want 1", tables[0].Len())
	}
	if pos, ok := tables[0].Position(1); !ok || pos != (geom.Point{X: 0.5, Y: 0}) {
		t.Errorf("node 0 sees node 1 at %v, %v", pos, ok)
	}
	if tables[2].Len() != 0 {
		t.Errorf("isolated node table Len = %d, want 0", tables[2].Len())
	}
	if !Complete(ch, tables) {
		t.Error("ground-truth tables must be complete")
	}
}

func TestBootstrapLearnsAllNeighbors(t *testing.T) {
	// A small clique plus a distant pair; HELLO rounds must populate every
	// table completely despite occasional beacon collisions.
	positions := []geom.Point{
		{X: 0, Y: 0}, {X: 0.4, Y: 0}, {X: 0, Y: 0.4}, {X: 0.3, Y: 0.3},
		{X: 3, Y: 3}, {X: 3.4, Y: 3},
	}
	sched, ch := newChannel(t, positions...)
	tables, err := Bootstrap(sched, ch, DefaultHelloConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !Complete(ch, tables) {
		for i, tab := range tables {
			t.Logf("node %d knows %v, true neighbors %v", i, tab.IDs(), ch.Neighbors(phy.NodeID(i)))
		}
		t.Fatal("bootstrap left incomplete tables")
	}
	// Learned positions must be exact (beacons carry ground truth).
	for i, tab := range tables {
		for _, id := range tab.IDs() {
			pos, _ := tab.Position(id)
			if pos != ch.Radio(id).Pos() {
				t.Errorf("node %d learned wrong position for %d: %v", i, id, pos)
			}
		}
	}
}

func TestBootstrapRejectsBadConfig(t *testing.T) {
	sched, ch := newChannel(t, geom.Point{})
	bad := []HelloConfig{
		{Rounds: 0, RoundLen: des.Millisecond, HelloBytes: 30},
		{Rounds: 3, RoundLen: 0, HelloBytes: 30},
		{Rounds: 3, RoundLen: des.Millisecond, HelloBytes: 0},
		{Rounds: 3, RoundLen: 10 * des.Microsecond, HelloBytes: 30}, // too short for a beacon
	}
	for i, cfg := range bad {
		if _, err := Bootstrap(sched, ch, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestBootstrapAdvancesClock(t *testing.T) {
	sched, ch := newChannel(t, geom.Point{}, geom.Point{X: 0.2})
	cfg := HelloConfig{Rounds: 4, RoundLen: 10 * des.Millisecond, HelloBytes: 30}
	if _, err := Bootstrap(sched, ch, cfg); err != nil {
		t.Fatal(err)
	}
	if want := des.Time(4) * 10 * des.Millisecond; sched.Now() != want {
		t.Errorf("clock after bootstrap = %v, want %v", sched.Now(), want)
	}
}

func TestHelloNodeIgnoresNonHello(t *testing.T) {
	tab := NewTable(0, geom.Point{})
	h := &helloNode{table: tab}
	h.OnFrame(phy.Frame{Type: phy.Data, Src: 1, Payload: geom.Point{X: 1}})
	if tab.Len() != 0 {
		t.Error("non-hello frame must not populate the table")
	}
	h.OnFrame(phy.Frame{Type: phy.Hello, Src: 1, Payload: "not a point"})
	if tab.Len() != 0 {
		t.Error("malformed payload must not populate the table")
	}
	h.OnFrame(phy.Frame{Type: phy.Hello, Src: 1, Payload: geom.Point{X: 1}})
	if tab.Len() != 1 {
		t.Error("valid hello should populate the table")
	}
}

func TestBearingFromAndSetSelfPos(t *testing.T) {
	tab := NewTable(0, geom.Point{X: 0, Y: 0})
	tab.Learn(1, geom.Point{X: 1, Y: 0})
	b, err := tab.BearingFrom(geom.Point{X: 1, Y: -1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-math.Pi/2) > 1e-12 {
		t.Errorf("BearingFrom = %v, want π/2", b)
	}
	tab.SetSelfPos(geom.Point{X: 1, Y: -1})
	b2, err := tab.Bearing(1)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b {
		t.Errorf("Bearing after SetSelfPos = %v, want %v", b2, b)
	}
}

func TestPeriodicRefresh(t *testing.T) {
	sched, ch := newChannel(t,
		geom.Point{X: 0, Y: 0},
		geom.Point{X: 0.5, Y: 0},
		geom.Point{X: 5, Y: 5},
	)
	tables := GroundTruth(ch)
	stop, err := PeriodicRefresh(sched, ch, tables, 100*des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Move node 1 out of range and node 2 into range of node 0.
	ch.Radio(1).SetPos(geom.Point{X: 3, Y: 3})
	ch.Radio(2).SetPos(geom.Point{X: 0.4, Y: 0})
	// Before the refresh tick, the table still has the stale view.
	if _, ok := tables[0].Position(1); !ok {
		t.Fatal("pre-refresh table lost node 1")
	}
	sched.Run(sched.Now() + 150*des.Millisecond)
	if _, ok := tables[0].Position(1); ok {
		t.Error("refresh kept an out-of-range neighbor")
	}
	if pos, ok := tables[0].Position(2); !ok || pos != (geom.Point{X: 0.4, Y: 0}) {
		t.Errorf("refresh missed the new neighbor: %v %v", pos, ok)
	}
	// Stop halts further refreshes.
	stop()
	ch.Radio(2).SetPos(geom.Point{X: 9, Y: 9})
	sched.Run(sched.Now() + des.Second)
	if _, ok := tables[0].Position(2); !ok {
		t.Error("stopped refresh should leave tables frozen")
	}
}

func TestPeriodicRefreshValidation(t *testing.T) {
	sched, ch := newChannel(t, geom.Point{})
	tables := GroundTruth(ch)
	if _, err := PeriodicRefresh(sched, ch, tables, 0); err == nil {
		t.Error("zero interval should be rejected")
	}
	if _, err := PeriodicRefresh(sched, ch, nil, des.Second); err == nil {
		t.Error("table/radio count mismatch should be rejected")
	}
}
