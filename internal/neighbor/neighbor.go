// Package neighbor implements the neighbor protocol the paper assumes:
// "there is a neighbor protocol that can actively maintain a list of
// neighbors as well as their locations". It provides per-node location
// tables, a ground-truth bootstrap (the paper's assumption taken
// literally), and an actual HELLO-beacon protocol that populates the
// tables over the air, demonstrating the assumption is realizable.
package neighbor

import (
	"fmt"
	"slices"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/phy"
)

// Table is one node's view of its neighbors' locations. Records live in
// two parallel slices sorted by neighbor ID and looked up by binary
// search: a node's degree is small and read-heavy lookups dominate, so
// the compact layout beats a per-node map on both memory and locality
// at large N (DESIGN.md §15).
type Table struct {
	self    phy.NodeID
	selfPos geom.Point
	ids     []phy.NodeID // ascending
	recs    []record     // parallel to ids
}

// record is one neighbor entry. Static records (installed by Learn)
// never go stale; timestamped records (LearnAt) age.
type record struct {
	pos    geom.Point
	at     des.Time
	static bool
}

// NewTable creates an empty table for the node at selfPos.
func NewTable(self phy.NodeID, selfPos geom.Point) *Table {
	return &Table{self: self, selfPos: selfPos}
}

// Self returns the owning node's ID.
func (t *Table) Self() phy.NodeID { return t.self }

// find returns the index of id and whether it is present.
func (t *Table) find(id phy.NodeID) (int, bool) {
	return slices.BinarySearch(t.ids, id)
}

// set upserts a record, keeping the ID slice sorted. Sequential bulk
// loads arrive in ascending order and take the O(1) append path; an
// out-of-order learn shifts the tail of the (degree-sized) slices.
func (t *Table) set(id phy.NodeID, r record) {
	if n := len(t.ids); n == 0 || t.ids[n-1] < id {
		t.ids = append(t.ids, id)
		t.recs = append(t.recs, r)
		return
	}
	i, ok := t.find(id)
	if ok {
		t.recs[i] = r
		return
	}
	t.ids = slices.Insert(t.ids, i, id)
	t.recs = slices.Insert(t.recs, i, r)
}

// Learn records (or updates) a neighbor's position as static knowledge
// that never goes stale (the paper's perfect-neighbor-protocol
// assumption). Learning yourself is a no-op.
func (t *Table) Learn(id phy.NodeID, pos geom.Point) {
	if id == t.self {
		return
	}
	t.set(id, record{pos: pos, static: true})
}

// LearnAt records a neighbor's position observed at simulated time at;
// Age reports its staleness afterwards.
func (t *Table) LearnAt(id phy.NodeID, pos geom.Point, at des.Time) {
	if id == t.self {
		return
	}
	t.set(id, record{pos: pos, at: at})
}

// Age returns how stale the record for id is at time now: 0 for static
// entries, now − learnedAt for timestamped ones, and ok=false when the
// neighbor is unknown.
func (t *Table) Age(id phy.NodeID, now des.Time) (age des.Time, ok bool) {
	i, ok := t.find(id)
	if !ok {
		return 0, false
	}
	e := &t.recs[i]
	if e.static {
		return 0, true
	}
	age = now - e.at
	if age < 0 {
		age = 0
	}
	return age, true
}

// Forget removes a neighbor.
func (t *Table) Forget(id phy.NodeID) {
	if i, ok := t.find(id); ok {
		t.ids = slices.Delete(t.ids, i, i+1)
		t.recs = slices.Delete(t.recs, i, i+1)
	}
}

// Clear forgets every neighbor, keeping the record storage for reuse.
func (t *Table) Clear() {
	t.ids = t.ids[:0]
	t.recs = t.recs[:0]
}

// Position returns a neighbor's recorded position.
func (t *Table) Position(id phy.NodeID) (geom.Point, bool) {
	i, ok := t.find(id)
	if !ok {
		return geom.Point{}, false
	}
	return t.recs[i].pos, true
}

// Bearing returns the direction from this node's recorded own position
// to the recorded position of the given neighbor.
func (t *Table) Bearing(id phy.NodeID) (float64, error) {
	return t.BearingFrom(t.selfPos, id)
}

// BearingFrom returns the direction from the given (live) position to
// the recorded position of the neighbor. Mobile nodes know their own
// position exactly but only a possibly stale snapshot of others'.
func (t *Table) BearingFrom(from geom.Point, id phy.NodeID) (float64, error) {
	i, ok := t.find(id)
	if !ok {
		return 0, fmt.Errorf("neighbor: node %d has no entry for %d", t.self, id)
	}
	return from.Bearing(t.recs[i].pos), nil
}

// SetSelfPos updates the node's recorded own position.
func (t *Table) SetSelfPos(p geom.Point) { t.selfPos = p }

// IDs returns a copy of the known neighbor IDs in ascending order.
func (t *Table) IDs() []phy.NodeID {
	return slices.Clone(t.ids)
}

// Len returns the number of known neighbors.
func (t *Table) Len() int { return len(t.ids) }

// GroundTruth builds one fully populated table per radio from the
// channel's actual geometry — the paper's "assume a neighbor protocol"
// taken at face value. Tables are indexed by node ID.
//
// The assembly is allocation-lean for large N: Table structs come from
// one backing array, neighbor queries reuse one scratch buffer, and the
// per-table record slices are carved from two shared append-grown
// backings (capped subslices, so a later Learn reallocates privately
// instead of stomping a sibling).
func GroundTruth(ch *phy.Channel) []*Table {
	n := ch.NumRadios()
	tables := make([]*Table, n)
	backing := make([]Table, n)
	var idsBack []phy.NodeID
	var recBack []record
	var nbs []phy.NodeID
	for i := 0; i < n; i++ {
		id := phy.NodeID(i)
		nbs = ch.NeighborsAppend(id, nbs[:0])
		t := &backing[i]
		t.self = id
		t.selfPos = ch.Radio(id).Pos()
		is, rs := len(idsBack), len(recBack)
		for _, nb := range nbs {
			idsBack = append(idsBack, nb)
			recBack = append(recBack, record{pos: ch.Radio(nb).Pos(), static: true})
		}
		t.ids = idsBack[is:len(idsBack):len(idsBack)]
		t.recs = recBack[rs:len(recBack):len(recBack)]
		tables[i] = t
	}
	return tables
}

// HelloConfig tunes the over-the-air bootstrap protocol.
type HelloConfig struct {
	// Rounds is the number of beacon rounds. Each node broadcasts once
	// per round at a uniformly random offset; more rounds recover from
	// beacon collisions.
	Rounds int
	// RoundLen is the duration of one round.
	RoundLen des.Time
	// HelloBytes is the on-air size of a beacon.
	HelloBytes int
}

// DefaultHelloConfig returns a bootstrap configuration that completes
// quickly and survives collisions in the paper's densest topologies.
func DefaultHelloConfig() HelloConfig {
	return HelloConfig{Rounds: 12, RoundLen: 50 * des.Millisecond, HelloBytes: 30}
}

// helloNode is the per-radio handler used during bootstrap.
type helloNode struct {
	radio *phy.Radio
	table *Table
}

func (h *helloNode) OnCarrierBusy() {}
func (h *helloNode) OnCarrierIdle() {}
func (h *helloNode) OnTxDone()      {}
func (h *helloNode) OnFrameError()  {}

func (h *helloNode) OnFrame(f phy.Frame) {
	if f.Type != phy.Hello {
		return
	}
	if pos, ok := f.Payload.(geom.Point); ok {
		h.table.Learn(f.Src, pos)
	}
}

// Bootstrap runs the HELLO protocol on the channel: every radio
// broadcasts its position at random offsets for cfg.Rounds rounds, and
// every radio learns the positions it hears. It returns the resulting
// tables (indexed by node ID) and restores no handlers — callers attach
// their MAC handlers afterwards. The scheduler is advanced by
// Rounds × RoundLen.
func Bootstrap(sched *des.Scheduler, ch *phy.Channel, cfg HelloConfig) ([]*Table, error) {
	if cfg.Rounds <= 0 || cfg.RoundLen <= 0 || cfg.HelloBytes <= 0 {
		return nil, fmt.Errorf("neighbor: invalid hello config %+v", cfg)
	}
	n := ch.NumRadios()
	tables := make([]*Table, n)
	nodes := make([]*helloNode, n)
	for i := 0; i < n; i++ {
		id := phy.NodeID(i)
		radio := ch.Radio(id)
		tables[i] = NewTable(id, radio.Pos())
		nodes[i] = &helloNode{radio: radio, table: tables[i]}
		radio.SetHandler(nodes[i])
	}
	end := sched.Now()
	for round := 0; round < cfg.Rounds; round++ {
		start := sched.Now() + des.Time(round)*cfg.RoundLen
		for i := 0; i < n; i++ {
			node := nodes[i]
			// Leave headroom at the end of the round for the beacon itself.
			head := cfg.RoundLen - ch.Params().Airtime(cfg.HelloBytes) - ch.Params().PropDelay
			if head < 1 {
				return nil, fmt.Errorf("neighbor: round length %v too short for a beacon", cfg.RoundLen)
			}
			offset := des.Time(sched.Rand().Int63n(int64(head)))
			sched.At(start+offset, func() {
				// Best effort: if the radio happens to be transmitting
				// (impossible with one beacon per round) skip this round.
				f := phy.Frame{
					Type:    phy.Hello,
					Src:     node.radio.ID(),
					Dst:     phy.Broadcast,
					Bytes:   cfg.HelloBytes,
					Payload: node.radio.Pos(),
				}
				_, _ = node.radio.Transmit(f, phy.Omni)
			})
		}
		end = start + cfg.RoundLen
	}
	sched.Run(end)
	return tables, nil
}

// PeriodicRefresh re-learns ground-truth neighbor positions (and own
// position) for every table at the given interval, modeling a location
// service with bounded staleness under mobility. Between refreshes,
// directional transmissions aim at snapshots up to one interval old.
// The returned stop function halts future refreshes.
func PeriodicRefresh(sched *des.Scheduler, ch *phy.Channel, tables []*Table, interval des.Time) (stop func(), err error) {
	if interval <= 0 {
		return nil, fmt.Errorf("neighbor: refresh interval must be positive, got %v", interval)
	}
	if len(tables) != ch.NumRadios() {
		return nil, fmt.Errorf("neighbor: %d tables for %d radios", len(tables), ch.NumRadios())
	}
	stopped := false
	var scratch []phy.NodeID
	var refresh func()
	refresh = func() {
		if stopped {
			return
		}
		for i, t := range tables {
			id := phy.NodeID(i)
			t.SetSelfPos(ch.Radio(id).Pos())
			t.Clear()
			scratch = ch.NeighborsAppend(id, scratch[:0])
			for _, nb := range scratch {
				t.LearnAt(nb, ch.Radio(nb).Pos(), sched.Now())
			}
		}
		sched.ScheduleInert(interval, refresh)
	}
	// Refreshes are inert kernel events (fixed grid of due instants,
	// mutate only table state that future lookups read), so a pending
	// refresh never blocks the fast-forward gate.
	sched.ScheduleInert(interval, refresh)
	return func() { stopped = true }, nil
}

// Complete reports whether every table knows every true neighbor of its
// node (compared against the channel geometry).
func Complete(ch *phy.Channel, tables []*Table) bool {
	for i, t := range tables {
		for _, nb := range ch.Neighbors(phy.NodeID(i)) {
			if _, ok := t.Position(nb); !ok {
				return false
			}
		}
	}
	return true
}
