package sim

// Registries for the pluggable scenario components. A new workload —
// another placement pattern, traffic model or antenna mode — is added by
// registering a builder under a name; every consumer (Build, the CLIs,
// the sharded Runner) picks it up through the scenario file without any
// assembly-code edits.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TopologyBuilder produces a node placement from the scenario. The rng
// is dedicated to topology generation (seeded from Scenario.Seed), so a
// builder may draw freely without perturbing protocol randomness.
type TopologyBuilder func(rng *rand.Rand, sc Scenario) (*topology.Topology, error)

// TrafficEnv is what a traffic builder gets to work with for one node.
type TrafficEnv struct {
	// Sched is the run's scheduler (for self-driven sources).
	Sched *des.Scheduler
	// Rand is the protocol random stream shared by all sources.
	Rand *rand.Rand
	// Neighbors are the node's in-range peers (never empty; nodes
	// without neighbors get an empty source without consulting the
	// builder). Ownership transfers to the builder: the slice is stable
	// for the life of the run and never reused by the caller, so a source
	// may retain it without copying (Build carves one per node from a
	// shared backing array).
	Neighbors []phy.NodeID
	// Spec is the scenario's traffic section with defaults resolved
	// (PacketBytes and QueueCap filled in).
	Spec TrafficSpec
}

// TrafficBuilder produces one node's packet source. Sources that drive
// themselves from the scheduler should implement SelfDriven; Build wires
// the owning node's Kick and starts them after all nodes started.
type TrafficBuilder func(env TrafficEnv) (mac.Source, error)

// SelfDriven is implemented by traffic sources that schedule their own
// arrivals (for example traffic.CBR). Build connects the MAC node's
// Kick callback and calls Start once the network is assembled.
type SelfDriven interface {
	SetKick(func())
	Start()
}

var (
	topologyReg = map[string]TopologyBuilder{}
	trafficReg  = map[string]TrafficBuilder{}
	schemeReg   = map[string]core.Scheme{}
)

// RegisterTopology adds a topology generator under kind. Registering a
// duplicate or empty kind panics: registration happens at init time and
// a collision is a programming error.
func RegisterTopology(kind string, b TopologyBuilder) {
	if kind == "" || b == nil {
		panic("sim: RegisterTopology needs a kind and a builder")
	}
	if _, dup := topologyReg[kind]; dup {
		panic(fmt.Sprintf("sim: topology kind %q registered twice", kind))
	}
	topologyReg[kind] = b
}

// RegisterTraffic adds a traffic source builder under kind.
func RegisterTraffic(kind string, b TrafficBuilder) {
	if kind == "" || b == nil {
		panic("sim: RegisterTraffic needs a kind and a builder")
	}
	if _, dup := trafficReg[kind]; dup {
		panic(fmt.Sprintf("sim: traffic kind %q registered twice", kind))
	}
	trafficReg[kind] = b
}

// RegisterScheme adds an antenna/beam-mode alias resolving to a core
// scheme (for example "omni" → ORTS-OCTS).
func RegisterScheme(name string, s core.Scheme) {
	norm := normalizeSchemeName(name)
	if norm == "" {
		panic("sim: RegisterScheme needs a name")
	}
	if _, dup := schemeReg[norm]; dup {
		panic(fmt.Sprintf("sim: scheme alias %q registered twice", name))
	}
	schemeReg[norm] = s
}

func lookupTopology(kind string) (TopologyBuilder, bool) {
	b, ok := topologyReg[kind]
	return b, ok
}

func lookupTraffic(kind string) (TrafficBuilder, bool) {
	b, ok := trafficReg[kind]
	return b, ok
}

// TopologyKinds lists the registered topology generators, sorted.
func TopologyKinds() []string { return sortedKeys(topologyReg) }

// TrafficKinds lists the registered traffic sources, sorted.
func TrafficKinds() []string { return sortedKeys(trafficReg) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// normalizeSchemeName lower-cases and strips separators so registry
// lookups accept the same spelling variants core.ParseScheme does.
func normalizeSchemeName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c-'A'+'a')
		case c == '-' || c == '_' || c == '/' || c == ' ':
			// separator: ignored
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// ResolveScheme maps a scheme or beam-mode name to a core.Scheme,
// consulting registered aliases first and core.ParseScheme's spellings
// second.
func ResolveScheme(name string) (core.Scheme, error) {
	if s, ok := schemeReg[normalizeSchemeName(name)]; ok {
		return s, nil
	}
	return core.ParseScheme(name)
}

func init() {
	// Antenna/beam modes: the paper's schemes under their own names plus
	// the two descriptive aliases.
	for _, s := range core.AllSchemes() {
		RegisterScheme(s.String(), s)
	}
	RegisterScheme("omni", core.ORTSOCTS)
	RegisterScheme("directional", core.DRTSDCTS)

	RegisterTopology("rings", buildRings)
	RegisterTopology("explicit", buildExplicit)
	RegisterTopology("grid", buildGrid)
	RegisterTopology("uniform", buildUniform)

	RegisterTraffic("saturated", buildSaturated)
	RegisterTraffic("cbr", buildCBR)
	RegisterTraffic("none", buildNone)
}

// resolvedTopologyConfig fills generator defaults: radius 1.0, 3 rings.
func (sc Scenario) resolvedTopologyConfig() topology.Config {
	cfg := topology.Config{N: sc.Topology.N, Radius: sc.Topology.Radius, Rings: sc.Topology.Rings}
	if cfg.Radius == 0 {
		cfg.Radius = 1.0
	}
	if cfg.Rings == 0 {
		cfg.Rings = 3
	}
	return cfg
}

// buildRings draws the paper's constrained concentric-ring placement.
func buildRings(rng *rand.Rand, sc Scenario) (*topology.Topology, error) {
	return topology.Generate(rng, sc.resolvedTopologyConfig())
}

// buildExplicit wraps the scenario's inline positions.
func buildExplicit(rng *rand.Rand, sc Scenario) (*topology.Topology, error) {
	cfg := sc.resolvedTopologyConfig()
	positions := make([]geom.Point, len(sc.Topology.Positions))
	copy(positions, sc.Topology.Positions)
	return &topology.Topology{
		Positions: positions,
		N:         cfg.N,
		Radius:    cfg.Radius,
		Rings:     cfg.Rings,
	}, nil
}

// buildGrid places nodes on a square lattice with the paper's density
// (N nodes per coverage disk), clipped to the Rings·R field disk and
// ordered inside-out so the first N lattice points are the measured
// nodes. It models planned deployments (sensor grids, mesh backhauls)
// as opposed to the paper's random fields, and being draw-free it is
// the cheapest generator for very large sharded sweeps.
func buildGrid(rng *rand.Rand, sc Scenario) (*topology.Topology, error) {
	cfg := sc.resolvedTopologyConfig()
	// Density N per πR² disk → lattice spacing R·√(π/N).
	spacing := cfg.Radius * math.Sqrt(math.Pi/float64(cfg.N))
	bound := float64(cfg.Rings) * cfg.Radius
	// The lattice fills the field disk at density N per coverage disk, so
	// ~Rings²·N points survive the clip — pre-size for them.
	positions := make([]geom.Point, 0, cfg.TotalNodes())
	steps := int(bound/spacing) + 1
	for ix := -steps; ix <= steps; ix++ {
		for iy := -steps; iy <= steps; iy++ {
			p := geom.Point{X: float64(ix) * spacing, Y: float64(iy) * spacing}
			if p.Dist(geom.Point{}) <= bound {
				positions = append(positions, p)
			}
		}
	}
	sortInsideOut(positions)
	if len(positions) < cfg.N {
		return nil, fmt.Errorf("sim: grid topology produced %d nodes, fewer than n=%d", len(positions), cfg.N)
	}
	return &topology.Topology{Positions: positions, N: cfg.N, Radius: cfg.Radius, Rings: cfg.Rings}, nil
}

// buildUniform scatters the paper's node budget (Rings²·N) uniformly by
// area over the whole field disk — the unconstrained Poisson-like field
// the analytical model assumes, without the ring quotas or degree
// filtering of "rings". Positions are ordered inside-out so the first N
// are the measured nodes.
func buildUniform(rng *rand.Rand, sc Scenario) (*topology.Topology, error) {
	cfg := sc.resolvedTopologyConfig()
	bound := float64(cfg.Rings) * cfg.Radius
	total := cfg.TotalNodes()
	positions := make([]geom.Point, total)
	for i := range positions {
		r := bound * math.Sqrt(rng.Float64())
		theta := rng.Float64() * 2 * math.Pi
		positions[i] = geom.Polar(geom.Point{}, r, theta)
	}
	sortInsideOut(positions)
	return &topology.Topology{Positions: positions, N: cfg.N, Radius: cfg.Radius, Rings: cfg.Rings}, nil
}

// sortInsideOut orders positions by distance from the origin, breaking
// exact ties on (X, Y) so the order never depends on the incoming
// permutation.
func sortInsideOut(ps []geom.Point) {
	sort.Slice(ps, func(i, j int) bool {
		di, dj := ps[i].Dist2(geom.Point{}), ps[j].Dist2(geom.Point{})
		if di != dj {
			return di < dj
		}
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
}

// buildSaturated is the paper's always-backlogged source. Env neighbor
// slices are owned by the builder (see TrafficEnv), so no copy.
func buildSaturated(env TrafficEnv) (mac.Source, error) {
	return traffic.NewSaturatedOwned(env.Rand, env.Neighbors, env.Spec.PacketBytes)
}

// buildCBR paces arrivals at the spec's offered load.
func buildCBR(env TrafficEnv) (mac.Source, error) {
	interval := des.Time(float64(env.Spec.PacketBytes*8) / env.Spec.OfferedLoadBps * float64(des.Second))
	return traffic.NewCBROwned(env.Sched, env.Rand, env.Neighbors, traffic.CBRConfig{
		Interval: interval, Bytes: env.Spec.PacketBytes, QueueCap: env.Spec.QueueCap,
	})
}

// buildNone leaves the node silent.
func buildNone(env TrafficEnv) (mac.Source, error) {
	return traffic.Empty{}, nil
}
