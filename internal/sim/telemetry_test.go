package sim

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/telemetry"
)

// telemetryScenario loads the telemetry-enabled testdata scenario.
func telemetryScenario(t *testing.T) Scenario {
	t.Helper()
	sc, err := LoadScenario(filepath.Join("testdata", "telemetry-trajectory.json"))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// resultJSON renders a Result canonically; byte equality is
// bit-equality of every float.
func resultJSON(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTelemetryLeavesResultsIdentical is the determinism half of the
// telemetry contract: enabling sampling must not change the simulation
// in any bit — the probe reads state and consumes no randomness.
func TestTelemetryLeavesResultsIdentical(t *testing.T) {
	sc := telemetryScenario(t)
	plain := sc
	plain.Telemetry = TelemetrySpec{}
	want, err := RunScenario(plain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunScenario(sc, Options{Telemetry: telemetry.Discard{}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultJSON(t, got), resultJSON(t, want)) {
		t.Error("enabling telemetry changed the simulation result")
	}
}

// TestTelemetryExportByteIdentical runs the same scenario twice and
// requires byte-identical JSONL exports.
func TestTelemetryExportByteIdentical(t *testing.T) {
	sc := telemetryScenario(t)
	run := func() []byte {
		var buf bytes.Buffer
		w := telemetry.NewWriter(&buf)
		if _, err := RunScenario(sc, Options{Telemetry: w}); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty export")
	}
	if !bytes.Equal(a, b) {
		t.Error("two runs of the same scenario produced different exports")
	}
}

// TestTelemetryFinalAggMatchesResult pins the bit-exactness contract:
// the last aggregate record reproduces the run's end-of-run metrics
// with zero tolerance.
func TestTelemetryFinalAggMatchesResult(t *testing.T) {
	sc := telemetryScenario(t)
	buf := telemetry.NewBuffer()
	res, err := RunScenario(sc, Options{Telemetry: buf})
	if err != nil {
		t.Fatal(err)
	}
	var last *telemetry.Record
	for i := range buf.Records() {
		if buf.Records()[i].Kind == telemetry.KindAgg {
			last = &buf.Records()[i]
		}
	}
	if last == nil {
		t.Fatal("no aggregate records in export")
	}
	if last.T != int64(sc.Duration) {
		t.Errorf("final agg at t=%d, want %d", last.T, int64(sc.Duration))
	}
	if last.CumThroughputBps != res.MeanThroughputBps() {
		t.Errorf("final agg cumThroughputBps = %v, result mean = %v", last.CumThroughputBps, res.MeanThroughputBps())
	}
	if last.CollisionRatio != res.MeanCollisionRatio() {
		t.Errorf("final agg collisionRatio = %v, result mean = %v", last.CollisionRatio, res.MeanCollisionRatio())
	}
	if last.Jain != res.Jain {
		t.Errorf("final agg jain = %v, result = %v", last.Jain, res.Jain)
	}
	// Per-node cumulative throughput must also match exactly.
	nodeCums := make(map[int]float64)
	for _, r := range buf.Records() {
		if r.Kind == telemetry.KindNode && r.T == int64(sc.Duration) {
			nodeCums[r.Node] = r.CumThroughputBps
		}
	}
	for i, tp := range res.ThroughputBps {
		if nodeCums[i] != tp {
			t.Errorf("node %d final cum throughput = %v, result = %v", i, nodeCums[i], tp)
		}
	}
}

// TestTelemetrySampleCount checks the trajectory shape: one node record
// per inner node per tick plus one aggregate per tick, interval-aligned.
func TestTelemetrySampleCount(t *testing.T) {
	sc := telemetryScenario(t)
	s, err := Build(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Telemetry == nil {
		t.Fatal("Build did not expose a telemetry buffer for a sink-less run")
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	ticks := int64(sc.Duration) / int64(sc.Telemetry.Interval)
	var aggs, nodes int64
	for _, r := range s.Telemetry.Records() {
		switch r.Kind {
		case telemetry.KindAgg:
			aggs++
		case telemetry.KindNode:
			nodes++
		}
	}
	if aggs != ticks {
		t.Errorf("got %d aggregate samples, want %d", aggs, ticks)
	}
	if want := ticks * int64(s.Topology.InnerCount()); nodes != want {
		t.Errorf("got %d node samples, want %d", nodes, want)
	}
	h := s.Telemetry.Header()
	if h.IntervalNs != int64(sc.Telemetry.Interval) || h.DurationNs != int64(sc.Duration) {
		t.Errorf("header timing = %+v", h)
	}
	if len(h.Metrics) != len(TelemetryMetricNames()) {
		t.Errorf("header metrics = %v, want full catalog", h.Metrics)
	}
}

// TestTelemetryMetricsFilter restricts the catalog and checks that only
// the selected instruments are registered and exported.
func TestTelemetryMetricsFilter(t *testing.T) {
	sc := telemetryScenario(t)
	sc.Telemetry.Metrics = []string{MetricTxFrames, MetricCW}
	buf := telemetry.NewBuffer()
	if _, err := RunScenario(sc, Options{Telemetry: buf}); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range buf.Records() {
		switch r.Kind {
		case telemetry.KindCounter, telemetry.KindGauge, telemetry.KindHist:
			names = append(names, r.Name)
		}
	}
	// Catalog order, not filter order: mac/cw precedes phy/tx-frames.
	want := []string{MetricCW, MetricTxFrames}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("exported metrics = %v, want %v", names, want)
	}
	if got := buf.Header().Metrics; !reflect.DeepEqual(got, want) {
		t.Errorf("header metrics = %v, want %v", got, want)
	}
}

// TestTelemetryMaxNodesBounded pins the cardinality bound: with
// telemetry.maxNodes = k the export carries exactly k per-node series
// (a deterministic, seed-derived sample), the header reports the count,
// and the aggregate records stay bit-identical to the unbounded run
// because they are computed over every inner node regardless.
func TestTelemetryMaxNodesBounded(t *testing.T) {
	sc := telemetryScenario(t)
	const k = 3
	if inner := sc.Topology.N; inner <= k {
		t.Fatalf("test scenario too small: %d inner nodes", inner)
	}
	full := telemetry.NewBuffer()
	if _, err := RunScenario(sc, Options{Telemetry: full}); err != nil {
		t.Fatal(err)
	}
	sc.Telemetry.MaxNodes = k
	run := func() *telemetry.Buffer {
		buf := telemetry.NewBuffer()
		if _, err := RunScenario(sc, Options{Telemetry: buf}); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Records(), b.Records()) {
		t.Error("bounded exports differ between identical runs")
	}
	if got := a.Header().SampledNodes; got != k {
		t.Errorf("header sampledNodes = %d, want %d", got, k)
	}
	if full.Header().SampledNodes != 0 {
		t.Errorf("unbounded header sampledNodes = %d, want 0", full.Header().SampledNodes)
	}
	nodes := make(map[int]bool)
	var aggs []telemetry.Record
	for _, r := range a.Records() {
		switch r.Kind {
		case telemetry.KindNode:
			nodes[r.Node] = true
		case telemetry.KindAgg:
			aggs = append(aggs, r)
		}
	}
	if len(nodes) != k {
		t.Errorf("export carries %d node series, want %d", len(nodes), k)
	}
	// Every bounded node record must match the unbounded run's record for
	// the same (t, node), and the aggregates must match bit-for-bit.
	var fullAggs []telemetry.Record
	fullNode := make(map[[2]int64]telemetry.Record)
	for _, r := range full.Records() {
		switch r.Kind {
		case telemetry.KindNode:
			fullNode[[2]int64{r.T, int64(r.Node)}] = r
		case telemetry.KindAgg:
			fullAggs = append(fullAggs, r)
		}
	}
	if !reflect.DeepEqual(aggs, fullAggs) {
		t.Error("bounding per-node cardinality changed the aggregate records")
	}
	for _, r := range a.Records() {
		if r.Kind != telemetry.KindNode {
			continue
		}
		if want, ok := fullNode[[2]int64{r.T, int64(r.Node)}]; !ok || !reflect.DeepEqual(r, want) {
			t.Errorf("bounded node record %+v differs from unbounded run", r)
		}
	}
}

// TestTelemetryBypassesCache: a telemetry-enabled scenario must never be
// served from the result cache — the export is a side effect a cached
// Result cannot replay.
func TestTelemetryBypassesCache(t *testing.T) {
	store, err := cache.NewStore(t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	sc := telemetryScenario(t)
	if cacheable(sc, Options{Cache: store}) {
		t.Error("telemetry-enabled scenario reported cacheable")
	}
	// Behavior check: two runs with the same cache both stream records.
	for i := 0; i < 2; i++ {
		buf := telemetry.NewBuffer()
		if _, err := RunScenario(sc, Options{Cache: store, Telemetry: buf}); err != nil {
			t.Fatal(err)
		}
		if len(buf.Records()) == 0 {
			t.Fatalf("run %d produced no telemetry records (served from cache?)", i)
		}
	}
}

// TestRunnerTelemetryMerge: the sharded runner's merged export must be
// byte-equivalent to merging individually-run shard exports in shard
// order.
func TestRunnerTelemetryMerge(t *testing.T) {
	sc := telemetryScenario(t)
	const shards = 3

	got := telemetry.NewBuffer()
	runner := Runner{Workers: 2, Options: Options{Telemetry: got}}
	if _, err := runner.Run(sc, shards); err != nil {
		t.Fatal(err)
	}

	bufs := make([]*telemetry.Buffer, shards)
	for i := range bufs {
		bufs[i] = telemetry.NewBuffer()
		if _, err := RunScenario(Shard(sc, i), Options{Telemetry: bufs[i]}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := telemetry.Merge(bufs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Header(), want.Header()) {
		t.Errorf("merged header = %+v, want %+v", got.Header(), want.Header())
	}
	if !reflect.DeepEqual(got.Records(), want.Records()) {
		t.Error("runner-merged records differ from shard-order manual merge")
	}
	if got.Header().Shards != shards {
		t.Errorf("merged header shards = %d, want %d", got.Header().Shards, shards)
	}
}
