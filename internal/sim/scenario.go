// Package sim owns simulation assembly: a declarative, JSON-serializable
// Scenario spec describing one complete run (scheme, beamwidth, topology,
// traffic, mobility, PHY parameters, ablation toggles, seeds, duration and
// trace sinks), registries for the composable parts (topology generators,
// traffic sources, antenna/beam modes), a Build step that wires the spec
// into a live scheduler + channel + MAC nodes, and a sharded Runner that
// fans a scenario out over independent seeds with a bounded worker pool.
//
// The package is the seam every scaling feature plugs into: new workloads
// are added by registering a component, not by editing assembly code, and
// whole experiment grids are files, not flag soup. Determinism is the
// contract — building and running the same Scenario twice produces
// bit-identical results, and the assembly here reproduces the historical
// experiments.RunSim byte-for-byte (pinned by the kernel-determinism
// goldens).
package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/geom"
)

// Duration is a des.Time that serializes as a Go duration string
// ("300ms", "5s"), keeping scenario files human-editable while the
// simulator keeps its integer-nanosecond clock.
type Duration des.Time

// String renders the duration like time.Duration.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON renders the canonical duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// UnmarshalJSON accepts a Go duration string.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("sim: duration must be a string like \"300ms\": %w", err)
	}
	td, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("sim: bad duration %q: %w", s, err)
	}
	*d = Duration(td.Nanoseconds())
	return nil
}

// TopologySpec selects and parameterizes a node-placement generator.
type TopologySpec struct {
	// Kind names a registered topology generator; empty means "rings"
	// (the paper's constrained concentric-ring placement).
	Kind string `json:"kind,omitempty"`
	// N is the density parameter: the number of measured inner nodes.
	N int `json:"n"`
	// Radius is the transmission range R (0 means 1.0).
	Radius float64 `json:"radius,omitempty"`
	// Rings is the number of concentric regions (0 means 3, the paper's
	// 9N-node setup). Non-ring generators reuse it as the field extent
	// in units of R.
	Rings int `json:"rings,omitempty"`
	// Positions supplies an explicit placement for kind "explicit"; the
	// first N entries are the measured nodes.
	Positions []geom.Point `json:"positions,omitempty"`
}

// TrafficSpec selects and parameterizes the per-node traffic source.
type TrafficSpec struct {
	// Kind names a registered traffic source; empty means "saturated"
	// (the paper's always-backlogged CBR). "cbr" paces arrivals at
	// OfferedLoadBps; "none" generates nothing.
	Kind string `json:"kind,omitempty"`
	// PacketBytes is the data payload size (0 means 1460, Table 1).
	PacketBytes int `json:"packetBytes,omitempty"`
	// OfferedLoadBps is the per-node offered load for kind "cbr".
	OfferedLoadBps float64 `json:"offeredLoadBps,omitempty"`
	// QueueCap bounds the CBR backlog (0 means 64).
	QueueCap int `json:"queueCap,omitempty"`
}

// MobilitySpec animates node positions.
type MobilitySpec struct {
	// Kind is empty or "none" for static networks, "waypoint" for the
	// random-waypoint walk.
	Kind string `json:"kind,omitempty"`
	// MaxSpeed is the top uniform speed in transmission ranges/second.
	MaxSpeed float64 `json:"maxSpeed,omitempty"`
	// RefreshInterval bounds neighbor-location staleness (0 means 1 s).
	RefreshInterval Duration `json:"refreshInterval,omitempty"`
}

// PHYSpec toggles the receiver-model variants.
type PHYSpec struct {
	// Capture enables first-signal capture at receivers.
	Capture bool `json:"capture,omitempty"`
	// NAVOracle enables the oracle virtual-carrier-sense ablation.
	NAVOracle bool `json:"navOracle,omitempty"`
	// SINR replaces the overlap-collision receiver with the physical
	// SINR model (path loss α=2, 10 dB threshold, low noise floor).
	SINR bool `json:"sinr,omitempty"`
}

// AblationSpec collects the MAC-level ablation switches.
type AblationSpec struct {
	// DisableEIFS disables extended-IFS deference.
	DisableEIFS bool `json:"disableEIFS,omitempty"`
	// BasicAccess disables RTS/CTS (the hidden-terminal-prone baseline).
	BasicAccess bool `json:"basicAccess,omitempty"`
	// HelloBootstrap populates neighbor tables over the air instead of
	// from ground truth.
	HelloBootstrap bool `json:"helloBootstrap,omitempty"`
	// AdaptiveRTS enables the Ko et al. adaptive variant with this
	// staleness threshold (0 disables).
	AdaptiveRTS Duration `json:"adaptiveRTS,omitempty"`
}

// TraceSpec selects a trace sink for protocol events.
type TraceSpec struct {
	// Kind is empty or "none" for no tracing, "recorder" for a bounded
	// in-memory ring exposed as Sim.Recorder.
	Kind string `json:"kind,omitempty"`
	// Capacity is the recorder ring size (0 means 1024).
	Capacity int `json:"capacity,omitempty"`
}

// TelemetrySpec enables sim-time sampled telemetry for the run. The
// zero value disables telemetry entirely.
type TelemetrySpec struct {
	// Interval is the sim-time sampling period; a positive value enables
	// telemetry, zero disables it.
	Interval Duration `json:"interval,omitempty"`
	// Metrics restricts the registered instruments to the named subset
	// (see TelemetryMetricNames for the catalog); empty registers all.
	Metrics []string `json:"metrics,omitempty"`
	// MaxNodes bounds per-node series cardinality: when positive and
	// below the inner-node count, only a deterministic sample of that
	// many inner nodes emits per-node records (selection is seeded from
	// the scenario, so exports stay byte-reproducible). Aggregate records
	// always cover every inner node exactly. Zero means no bound.
	MaxNodes int `json:"maxNodes,omitempty"`
}

// Enabled reports whether the spec turns telemetry on.
func (t TelemetrySpec) Enabled() bool { return t.Interval > 0 }

// Scenario is the declarative description of one simulation run. It is
// the JSON contract of `netsim -scenario` and the unit the sharded
// Runner fans out; every field is serializable, so a scenario file plus
// a binary is a complete, reproducible experiment.
type Scenario struct {
	// Name optionally labels the scenario in reports.
	Name string `json:"name,omitempty"`
	// Scheme names the collision-avoidance variant (any spelling
	// core.ParseScheme accepts, or a registered beam-mode alias such as
	// "omni").
	Scheme string `json:"scheme"`
	// BeamwidthDeg is the transmission beamwidth in degrees (ignored by
	// ORTS-OCTS).
	BeamwidthDeg float64 `json:"beamwidthDeg,omitempty"`
	// Seed drives topology generation and all protocol randomness.
	Seed int64 `json:"seed"`
	// Duration is the measured simulation time.
	Duration Duration `json:"duration"`
	// Topology, Traffic, Mobility, PHY, Ablations and Trace select the
	// pluggable parts.
	Topology  TopologySpec `json:"topology"`
	Traffic   TrafficSpec  `json:"traffic"`
	Mobility  MobilitySpec `json:"mobility,omitempty"`
	PHY       PHYSpec      `json:"phy,omitempty"`
	Ablations AblationSpec `json:"ablations,omitempty"`
	Trace     TraceSpec    `json:"trace,omitempty"`
	// Telemetry enables sim-time sampled metrics and streaming export.
	Telemetry TelemetrySpec `json:"telemetry,omitempty"`
	// SampleDelays reservoir-samples per-packet delays of the inner
	// nodes so the Result carries delay percentiles, not just means.
	SampleDelays bool `json:"sampleDelays,omitempty"`
	// FastForward enables analytic idle-time skipping in the kernel:
	// backoff countdowns over dead air run as one bulk jump instead of
	// per-slot events. It is a pure performance switch — results are
	// bit-identical with it on or off (the kernel-determinism goldens
	// enforce this) — and is therefore excluded from the result cache
	// key.
	FastForward bool `json:"fastforward,omitempty"`
	// Partition controls the grid-partitioned parallel kernel
	// (DESIGN.md §14). "" or "auto" lets large static scenarios split
	// into per-region event queues executed by Options.Workers
	// goroutines; "off" forces the single sequential queue. The layout
	// is derived from the scenario alone — never from the worker count —
	// so a partitioned run is byte-identical for any Workers value. A
	// partitioned layout CAN legitimately differ from the sequential
	// kernel on scenarios large enough to split (independent per-region
	// random streams), which is why the switch lives in the scenario and
	// its cache key rather than in runtime Options.
	Partition string `json:"partition,omitempty"`
}

// ResolvedScheme parses the scenario's scheme name through the beam-mode
// registry (which includes every core scheme spelling plus registered
// aliases).
func (sc Scenario) ResolvedScheme() (core.Scheme, error) {
	return ResolveScheme(sc.Scheme)
}

// Validate checks the scenario against the registries and parameter
// ranges. It is called by Build, but cheap enough to run up front when
// loading user-supplied files. Error messages name the offending field
// by its JSON path ("sim: topology.n: must be at least 2, ..."), so a
// bad hand-written file points straight at the line to fix.
func (sc Scenario) Validate() error {
	scheme, err := sc.ResolvedScheme()
	if err != nil {
		// ResolveScheme reports in core's vocabulary ("core: unknown
		// scheme ..."); rewrap so the message names the JSON path like
		// every other validation error here.
		return fmt.Errorf("sim: scheme: %w", err)
	}
	if scheme != core.ORTSOCTS && (sc.BeamwidthDeg <= 0 || sc.BeamwidthDeg > 360) {
		return fmt.Errorf("sim: beamwidthDeg: must be in (0, 360] degrees for directional schemes, got %v", sc.BeamwidthDeg)
	}
	if sc.Duration <= 0 {
		return fmt.Errorf("sim: duration: must be positive, got %v", sc.Duration)
	}
	if err := sc.validateTopology(); err != nil {
		return err
	}
	if err := sc.validateTraffic(); err != nil {
		return err
	}
	if err := sc.validateMobility(); err != nil {
		return err
	}
	switch sc.Trace.Kind {
	case "", "none", "recorder":
	default:
		return fmt.Errorf("sim: trace.kind: unknown trace sink %q (want \"recorder\" or \"none\")", sc.Trace.Kind)
	}
	if sc.Trace.Capacity < 0 {
		return fmt.Errorf("sim: trace.capacity: must be non-negative, got %d", sc.Trace.Capacity)
	}
	if sc.Ablations.AdaptiveRTS < 0 {
		return fmt.Errorf("sim: ablations.adaptiveRTS: must be non-negative, got %v", sc.Ablations.AdaptiveRTS)
	}
	if sc.FastForward && sc.PHY.NAVOracle {
		// mac.New would silently clear the flag (oracle NAV hints can
		// interrupt a countdown mid-slot, outside the jump-safety
		// envelope of DESIGN.md §12), so the scenario would not run the
		// way it reads. Reject the combination up front instead.
		return fmt.Errorf("sim: fastforward: incompatible with phy.navOracle (oracle NAV hints interrupt backoff countdowns mid-slot, so the analytic jump is disabled; drop one of the two flags)")
	}
	switch sc.Partition {
	case "", "auto", "off":
	default:
		return fmt.Errorf("sim: partition: unknown mode %q (want \"auto\" or \"off\")", sc.Partition)
	}
	return sc.validateTelemetry()
}

func (sc Scenario) validateTopology() error {
	kind := sc.Topology.Kind
	if kind == "" {
		kind = "rings"
	}
	if _, ok := lookupTopology(kind); !ok {
		return fmt.Errorf("sim: topology.kind: unknown topology kind %q (registered: %v)", kind, TopologyKinds())
	}
	if sc.Topology.N < 2 {
		return fmt.Errorf("sim: topology.n: must be at least 2, got %d", sc.Topology.N)
	}
	if sc.Topology.Radius < 0 {
		return fmt.Errorf("sim: topology.radius: must be non-negative, got %v", sc.Topology.Radius)
	}
	if sc.Topology.Rings < 0 {
		return fmt.Errorf("sim: topology.rings: must be non-negative, got %d", sc.Topology.Rings)
	}
	if kind == "explicit" {
		if len(sc.Topology.Positions) == 0 {
			return fmt.Errorf("sim: topology.positions: explicit topology needs positions")
		}
		if sc.Topology.N > len(sc.Topology.Positions) {
			return fmt.Errorf("sim: topology.positions: has %d entries but topology.n=%d measured nodes",
				len(sc.Topology.Positions), sc.Topology.N)
		}
	} else if len(sc.Topology.Positions) > 0 {
		return fmt.Errorf("sim: topology.positions: kind %q does not take explicit positions", kind)
	}
	return nil
}

func (sc Scenario) validateTraffic() error {
	kind := sc.Traffic.Kind
	if kind == "" {
		kind = "saturated"
	}
	if _, ok := lookupTraffic(kind); !ok {
		return fmt.Errorf("sim: traffic.kind: unknown traffic kind %q (registered: %v)", kind, TrafficKinds())
	}
	if sc.Traffic.PacketBytes < 0 {
		return fmt.Errorf("sim: traffic.packetBytes: must be non-negative, got %d", sc.Traffic.PacketBytes)
	}
	if sc.Traffic.QueueCap < 0 {
		return fmt.Errorf("sim: traffic.queueCap: must be non-negative, got %d", sc.Traffic.QueueCap)
	}
	if kind == "cbr" && sc.Traffic.OfferedLoadBps <= 0 {
		return fmt.Errorf("sim: traffic.offeredLoadBps: cbr traffic needs a positive load, got %v", sc.Traffic.OfferedLoadBps)
	}
	if kind != "cbr" && sc.Traffic.OfferedLoadBps != 0 {
		return fmt.Errorf("sim: traffic.offeredLoadBps: only meaningful for cbr traffic, got kind %q", kind)
	}
	return nil
}

func (sc Scenario) validateMobility() error {
	switch sc.Mobility.Kind {
	case "", "none":
		if sc.Mobility.MaxSpeed != 0 {
			return fmt.Errorf("sim: mobility.maxSpeed: set but mobility kind is %q; use kind \"waypoint\"", sc.Mobility.Kind)
		}
	case "waypoint":
		if sc.Mobility.MaxSpeed <= 0 {
			return fmt.Errorf("sim: mobility.maxSpeed: waypoint mobility needs a positive speed, got %v", sc.Mobility.MaxSpeed)
		}
	default:
		return fmt.Errorf("sim: mobility.kind: unknown mobility kind %q (want \"waypoint\" or \"none\")", sc.Mobility.Kind)
	}
	if sc.Mobility.RefreshInterval < 0 {
		return fmt.Errorf("sim: mobility.refreshInterval: must be non-negative, got %v", sc.Mobility.RefreshInterval)
	}
	return nil
}

func (sc Scenario) validateTelemetry() error {
	if sc.Telemetry.Interval < 0 {
		return fmt.Errorf("sim: telemetry.interval: not a positive duration, got %v", sc.Telemetry.Interval)
	}
	if len(sc.Telemetry.Metrics) > 0 && sc.Telemetry.Interval == 0 {
		return fmt.Errorf("sim: telemetry.metrics: set but telemetry.interval is zero (telemetry disabled)")
	}
	if sc.Telemetry.MaxNodes < 0 {
		return fmt.Errorf("sim: telemetry.maxNodes: must be non-negative, got %d", sc.Telemetry.MaxNodes)
	}
	if sc.Telemetry.MaxNodes > 0 && sc.Telemetry.Interval == 0 {
		return fmt.Errorf("sim: telemetry.maxNodes: set but telemetry.interval is zero (telemetry disabled)")
	}
	for _, name := range sc.Telemetry.Metrics {
		if !knownTelemetryMetric(name) {
			return fmt.Errorf("sim: telemetry.metrics: unknown metric %q (registered: %v)", name, TelemetryMetricNames())
		}
	}
	return nil
}

// MarshalScenario renders the canonical byte form of a scenario: two-space
// indented JSON with a trailing newline. Scenario files kept in this form
// round-trip byte-identically through ParseScenario.
func MarshalScenario(sc Scenario) ([]byte, error) {
	b, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("sim: marshal scenario: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteScenario writes the canonical form to w.
func WriteScenario(w io.Writer, sc Scenario) error {
	b, err := MarshalScenario(sc)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ParseScenario decodes a scenario from JSON. Unknown fields are
// rejected so typos in hand-written files fail loudly instead of
// silently running a different experiment.
func ParseScenario(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("sim: parse scenario: %w", err)
	}
	return sc, nil
}

// LoadScenario reads and parses (but does not validate) a scenario file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("sim: %w", err)
	}
	return ParseScenario(data)
}
