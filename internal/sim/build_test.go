package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/des"
	"repro/internal/trace"
)

// TestRunScenarioDeterministic is the package-local determinism check:
// building and running the same scenario twice must agree on every field,
// including the float bit patterns (reflect.DeepEqual compares exactly).
func TestRunScenarioDeterministic(t *testing.T) {
	sc := quickScenario()
	sc.SampleDelays = true
	a, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("identical scenarios produced different results")
	}
	if len(a.ThroughputBps) != sc.Topology.N {
		t.Errorf("got %d inner-node throughputs, want %d", len(a.ThroughputBps), sc.Topology.N)
	}
	if a.MeanThroughputBps() <= 0 {
		t.Error("saturated scenario moved no traffic")
	}
}

func TestBuildRecorderFromScenario(t *testing.T) {
	sc := quickScenario()
	sc.Trace = TraceSpec{Kind: "recorder", Capacity: 256}
	s, err := Build(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Recorder == nil {
		t.Fatal("scenario asked for a recorder but Sim.Recorder is nil")
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.Recorder.Events()) == 0 {
		t.Error("recorder captured no protocol events")
	}
}

func TestBuildTracerOptionOverridesScenario(t *testing.T) {
	sc := quickScenario()
	sc.Trace = TraceSpec{Kind: "recorder"}
	rec := trace.NewRecorder(64)
	s, err := Build(sc, Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if s.Recorder != nil {
		t.Error("Options.Tracer should suppress the scenario's recorder")
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) == 0 {
		t.Error("override tracer saw no events")
	}
}

func TestBuildCBRScenario(t *testing.T) {
	sc := quickScenario()
	sc.Traffic = TrafficSpec{Kind: "cbr", OfferedLoadBps: 500e3}
	sc.Duration = Duration(200 * 1e6)
	res, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanThroughputBps() <= 0 {
		t.Error("cbr scenario moved no traffic")
	}
}

func TestBuildMobilityScenario(t *testing.T) {
	sc := quickScenario()
	sc.Mobility = MobilitySpec{Kind: "waypoint", MaxSpeed: 2, RefreshInterval: Duration(100 * des.Millisecond)}
	a, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("mobility scenario is not deterministic")
	}
}

func TestBuildNoneTrafficIsSilent(t *testing.T) {
	sc := quickScenario()
	sc.Traffic = TrafficSpec{Kind: "none"}
	res, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MeanThroughputBps(); got != 0 {
		t.Errorf("silent network carried %v bps", got)
	}
	for i, st := range res.NodeStats {
		if st.DataSent > 0 {
			t.Errorf("node %d transmitted %d data frames with no sources", i, st.DataSent)
		}
	}
}

func TestBuildProvidedTopology(t *testing.T) {
	sc := quickScenario()
	topo, err := GenerateTopology(rand.New(rand.NewSource(sc.Seed)), sc)
	if err != nil {
		t.Fatal(err)
	}
	viaOpts, err := RunScenario(sc, Options{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaOpts, viaSpec) {
		t.Error("Options.Topology with the canonical placement diverged from the in-Build draw")
	}
	if len(viaOpts.NodeStats) != len(topo.Positions) {
		t.Errorf("stats for %d nodes, topology has %d", len(viaOpts.NodeStats), len(topo.Positions))
	}
}
