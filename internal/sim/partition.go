package sim

// Partition planning for the parallel intra-run kernel. A plan splits
// the node set into per-region event queues executed under conservative
// synchronization (internal/des.Group + internal/phy lanes).
//
// The layout is a pure function of the scenario: node positions (drawn
// from the scenario seed), the transmission range, and the partition
// switch. It NEVER depends on Options.Workers — workers only execute
// the fixed layout, so a partitioned run's results are byte-identical
// for any worker count. Scenarios too small to profit, or using
// features whose semantics are pinned to a single global event queue,
// plan as sequential (nil) and run the exact historical kernel.

import (
	"math"
	"sort"

	"repro/internal/topology"
)

const (
	// minPartitionNodes is the auto-partition floor. Below it the
	// per-round barrier cost outweighs the parallelism, and every
	// paper-scale scenario (Rings=3, N≤8 → ≤72 nodes) stays on the
	// sequential kernel with its historically pinned event order.
	minPartitionNodes = 192
	// maxPartitions bounds the fan-out; more partitions shrink windows
	// (horizons tighten toward the global minimum) without adding useful
	// concurrency beyond the machine's cores.
	maxPartitions = 8
)

// partitionPlan assigns every node to a partition lane.
type partitionPlan struct {
	laneOf []int32 // node ID -> partition index
	parts  int
}

// partitionEligible applies the feature gates. Mobility moves radios
// across region boundaries mid-run (the frozen grid and lane ownership
// would go stale); telemetry sampling, tracing and delay reservoirs
// consume the global queue's RNG/event order that their goldens pin;
// HELLO bootstrap runs before measurement on the single global queue.
func partitionEligible(sc Scenario, opts Options) bool {
	if sc.Partition == "off" {
		return false
	}
	if sc.Mobility.Kind == "waypoint" {
		return false
	}
	if sc.Telemetry.Enabled() {
		return false
	}
	if opts.Tracer != nil || sc.Trace.Kind == "recorder" {
		return false
	}
	if sc.SampleDelays {
		return false
	}
	if sc.Ablations.HelloBootstrap {
		return false
	}
	return true
}

// planPartition derives the partition layout for sc over placement topo,
// or nil when the run must stay sequential. Nodes are bucketed into
// macro-cells of side 2R (a cell's interior nodes cannot reach past the
// neighboring cells), the occupied cells ordered row-major, and
// consecutive cells grouped into at most maxPartitions partitions
// balanced by node count. Everything here is deterministic given the
// scenario, so the same scenario always produces the same layout.
func planPartition(sc Scenario, opts Options, topo *topology.Topology) *partitionPlan {
	if !partitionEligible(sc, opts) {
		return nil
	}
	n := len(topo.Positions)
	if n < minPartitionNodes {
		return nil
	}
	side := 2 * topo.Radius
	if side <= 0 {
		return nil
	}
	type macroCell struct{ x, y int32 }
	cells := make(map[macroCell][]int32)
	for i, p := range topo.Positions {
		k := macroCell{x: int32(math.Floor(p.X / side)), y: int32(math.Floor(p.Y / side))}
		cells[k] = append(cells[k], int32(i))
	}
	if len(cells) < 2 {
		return nil
	}
	keys := make([]macroCell, 0, len(cells))
	//desalint:commutative keys are sorted row-major immediately below; collection order is irrelevant
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].y != keys[j].y {
			return keys[i].y < keys[j].y
		}
		return keys[i].x < keys[j].x
	})
	target := (n + maxPartitions - 1) / maxPartitions
	laneOf := make([]int32, n)
	part, count := 0, 0
	for _, k := range keys {
		if count >= target && part+1 < maxPartitions {
			part++
			count = 0
		}
		for _, id := range cells[k] {
			laneOf[id] = int32(part)
		}
		count += len(cells[k])
	}
	if part == 0 {
		return nil
	}
	return &partitionPlan{laneOf: laneOf, parts: part + 1}
}

// derivePartitionSeed derives partition p's scheduler seed from the
// protocol-stream seed with a splitmix64 finalizer: well-mixed,
// collision-free across small p, and stable forever (the seed sequence
// is part of the determinism contract for partitioned runs).
func derivePartitionSeed(base int64, p int) int64 {
	z := uint64(base) + uint64(p)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
