package sim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func TestResolveScheme(t *testing.T) {
	tests := []struct {
		in   string
		want core.Scheme
	}{
		{"ORTS-OCTS", core.ORTSOCTS},
		{"orts_octs", core.ORTSOCTS},
		{"omni", core.ORTSOCTS},
		{"OMNI", core.ORTSOCTS},
		{"directional", core.DRTSDCTS},
		{"DRTS-DCTS", core.DRTSDCTS},
		{"drts octs", core.DRTSOCTS},
		{"Orts/Dcts", core.ORTSDCTS},
	}
	for _, tt := range tests {
		got, err := ResolveScheme(tt.in)
		if err != nil {
			t.Errorf("ResolveScheme(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ResolveScheme(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
	if _, err := ResolveScheme("sector"); err == nil {
		t.Error("want error for unregistered scheme name")
	}
}

func TestKindListingsSorted(t *testing.T) {
	for name, kinds := range map[string][]string{
		"topology": TopologyKinds(),
		"traffic":  TrafficKinds(),
	} {
		if len(kinds) == 0 {
			t.Errorf("%s registry is empty", name)
		}
		if !sort.StringsAreSorted(kinds) {
			t.Errorf("%s kinds not sorted: %v", name, kinds)
		}
	}
	wantTopo := []string{"explicit", "grid", "rings", "uniform"}
	gotTopo := TopologyKinds()
	for _, w := range wantTopo {
		if i := sort.SearchStrings(gotTopo, w); i >= len(gotTopo) || gotTopo[i] != w {
			t.Errorf("topology kind %q not registered (have %v)", w, gotTopo)
		}
	}
	wantTraffic := []string{"cbr", "none", "saturated"}
	gotTraffic := TrafficKinds()
	for _, w := range wantTraffic {
		if i := sort.SearchStrings(gotTraffic, w); i >= len(gotTraffic) || gotTraffic[i] != w {
			t.Errorf("traffic kind %q not registered (have %v)", w, gotTraffic)
		}
	}
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("dup topology", func() { RegisterTopology("rings", buildRings) })
	mustPanic("empty topology kind", func() { RegisterTopology("", buildRings) })
	mustPanic("dup traffic", func() { RegisterTraffic("saturated", buildSaturated) })
	mustPanic("dup scheme alias", func() { RegisterScheme("omni", core.ORTSOCTS) })
	mustPanic("alias collides across spellings", func() { RegisterScheme("OM-NI", core.ORTSOCTS) })
}

func TestGenerateTopologyDeterministic(t *testing.T) {
	for _, kind := range []string{"rings", "grid", "uniform"} {
		sc := Scenario{Topology: TopologySpec{Kind: kind, N: 4}}
		a, err := GenerateTopology(rand.New(rand.NewSource(42)), sc)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := GenerateTopology(rand.New(rand.NewSource(42)), sc)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !reflect.DeepEqual(a.Positions, b.Positions) {
			t.Errorf("%s: same seed produced different placements", kind)
		}
		if len(a.Positions) < sc.Topology.N {
			t.Errorf("%s: %d positions for n=%d", kind, len(a.Positions), sc.Topology.N)
		}
	}
}

func TestExplicitTopologyCopiesPositions(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0, Y: 0.5}}
	sc := Scenario{Topology: TopologySpec{Kind: "explicit", N: 2, Positions: pts}}
	topo, err := GenerateTopology(rand.New(rand.NewSource(1)), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(topo.Positions, pts) {
		t.Fatalf("explicit positions not preserved: %v", topo.Positions)
	}
	topo.Positions[0].X = 99
	if pts[0].X == 99 {
		t.Error("explicit builder aliases the scenario's position slice")
	}
	if topo.N != 2 || topo.Radius != 1.0 || topo.Rings != 3 {
		t.Errorf("defaults not resolved: N=%d R=%v rings=%d", topo.N, topo.Radius, topo.Rings)
	}
}

func TestGridTopologyInsideOut(t *testing.T) {
	sc := Scenario{Topology: TopologySpec{Kind: "grid", N: 9}}
	topo, err := GenerateTopology(rand.New(rand.NewSource(1)), sc)
	if err != nil {
		t.Fatal(err)
	}
	origin := geom.Point{}
	for i := 1; i < len(topo.Positions); i++ {
		if topo.Positions[i].Dist2(origin) < topo.Positions[i-1].Dist2(origin) {
			t.Fatalf("positions not ordered inside-out at %d", i)
		}
	}
	bound := float64(topo.Rings) * topo.Radius
	for i, p := range topo.Positions {
		if p.Dist(origin) > bound+1e-9 {
			t.Errorf("position %d outside the %v-radius field: %v", i, bound, p)
		}
	}
}

func TestUniformTopologyNodeBudget(t *testing.T) {
	sc := Scenario{Topology: TopologySpec{Kind: "uniform", N: 5}}
	topo, err := GenerateTopology(rand.New(rand.NewSource(7)), sc)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 3 * 5; len(topo.Positions) != want {
		t.Errorf("uniform field has %d nodes, want rings²·n = %d", len(topo.Positions), want)
	}
}
