// Package simtest is the shared harness for MAC/PHY integration tests:
// one Build call assembles a scheduler, channel, radios, neighbor tables
// and MAC nodes from a per-node spec list, replacing the hand-wired
// setup blocks that used to be copied across test files. Specs cover the
// common fixtures (saturated senders, pure responders, one-shot packet
// lists) as well as the exotic ones (bare dead radios, overridden
// neighbor tables, per-node configs, self-driven CBR sources).
package simtest

import (
	"testing"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/neighbor"
	"repro/internal/phy"
	"repro/internal/traffic"
)

// OneShot is a source with a fixed packet list.
type OneShot struct {
	Pkts []mac.Packet
	i    int
}

// Dequeue hands out the next packet, stamping its enqueue time.
func (o *OneShot) Dequeue(now des.Time) (mac.Packet, bool) {
	if o.i >= len(o.Pkts) {
		return mac.Packet{}, false
	}
	p := o.Pkts[o.i]
	p.Enqueued = now
	o.i++
	return p, true
}

// Silent is a PHY handler that never responds (a dead node).
type Silent struct{}

func (Silent) OnCarrierBusy()      {}
func (Silent) OnCarrierIdle()      {}
func (Silent) OnFrame(f phy.Frame) {}
func (Silent) OnFrameError()       {}
func (Silent) OnTxDone()           {}

// Net is a fully assembled test network.
type Net struct {
	Sched *des.Scheduler
	Ch    *phy.Channel
	// Nodes holds one MAC node per radio; the entry is nil for a spec
	// without a source (a bare radio that never responds).
	Nodes  []*mac.Node
	Tables []*neighbor.Table
}

// SourceMaker builds one node's packet source once the network's
// scheduler and channel exist.
type SourceMaker func(t *testing.T, nw *Net, id phy.NodeID) mac.Source

// NodeSpec describes one node of a test network.
type NodeSpec struct {
	Pos geom.Point
	// Source builds the node's packet source. nil leaves a bare radio
	// with no MAC attached — a dead node that never answers.
	Source SourceMaker
	// Table overrides the node's ground-truth neighbor table.
	Table *neighbor.Table
	// Config overrides the network-wide MAC config for this node.
	Config *mac.Config
}

// kicker is the self-driven half of sources like traffic.CBR; Build
// wires the owning node's Kick automatically.
type kicker interface{ SetKick(func()) }

// Build assembles the network in one call. Nodes are not started: call
// StartAll (or Start for a subset) before Run, mirroring whatever start
// pattern the protocol sequence under test needs.
func Build(t *testing.T, seed int64, cfg mac.Config, specs []NodeSpec) *Net {
	t.Helper()
	sched := des.New(seed)
	ch, err := phy.NewChannel(sched, phy.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		ch.AddRadio(sp.Pos, Silent{})
	}
	nw := &Net{
		Sched:  sched,
		Ch:     ch,
		Nodes:  make([]*mac.Node, len(specs)),
		Tables: neighbor.GroundTruth(ch),
	}
	for i, sp := range specs {
		if sp.Table != nil {
			nw.Tables[i] = sp.Table
		}
	}
	for i, sp := range specs {
		if sp.Source == nil {
			continue
		}
		id := phy.NodeID(i)
		src := sp.Source(t, nw, id)
		nodeCfg := cfg
		if sp.Config != nil {
			nodeCfg = *sp.Config
		}
		n, err := mac.New(sched, ch.Radio(id), nw.Tables[i], src, nodeCfg)
		if err != nil {
			t.Fatal(err)
		}
		nw.Nodes[i] = n
		if k, ok := src.(kicker); ok {
			k.SetKick(n.Kick)
		}
	}
	return nw
}

// StartAll starts every MAC node in index order.
func (n *Net) StartAll() {
	for _, node := range n.Nodes {
		if node != nil {
			node.Start()
		}
	}
}

// Start starts the given nodes in argument order.
func (n *Net) Start(ids ...phy.NodeID) {
	for _, id := range ids {
		n.Nodes[id].Start()
	}
}

// Run executes the scheduler until the absolute time until.
func (n *Net) Run(until des.Time) { n.Sched.Run(until) }

// Stats returns node i's MAC counters.
func (n *Net) Stats(i int) mac.Stats { return n.Nodes[i].Stats() }

// Responder returns a source with no packets of its own: the node only
// answers handshakes.
func Responder() SourceMaker {
	return func(t *testing.T, nw *Net, id phy.NodeID) mac.Source { return &OneShot{} }
}

// Packets returns a source offering the given packets once each.
func Packets(pkts ...mac.Packet) SourceMaker {
	return func(t *testing.T, nw *Net, id phy.NodeID) mac.Source { return &OneShot{Pkts: pkts} }
}

// Saturated returns an always-backlogged source sending paper-sized
// packets to the given destinations.
func Saturated(dsts ...phy.NodeID) SourceMaker {
	return SaturatedBytes(traffic.PaperPacketBytes, dsts...)
}

// SaturatedBytes is Saturated with an explicit payload size.
func SaturatedBytes(bytes int, dsts ...phy.NodeID) SourceMaker {
	return func(t *testing.T, nw *Net, id phy.NodeID) mac.Source {
		t.Helper()
		src, err := traffic.NewSaturated(nw.Sched.Rand(), dsts, bytes)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
}

// SaturatedNeighbors returns an always-backlogged source spraying the
// node's in-range peers, or a silent source for isolated nodes.
func SaturatedNeighbors(bytes int) SourceMaker {
	return func(t *testing.T, nw *Net, id phy.NodeID) mac.Source {
		t.Helper()
		nbs := nw.Ch.Neighbors(id)
		if len(nbs) == 0 {
			return traffic.Empty{}
		}
		src, err := traffic.NewSaturated(nw.Sched.Rand(), nbs, bytes)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
}

// SaturatedSpecs builds the most common fixture: node i floods dests[i]
// with saturated traffic; a negative destination leaves it a pure
// responder.
func SaturatedSpecs(positions []geom.Point, dests []int) []NodeSpec {
	specs := make([]NodeSpec, len(positions))
	for i, pos := range positions {
		specs[i] = NodeSpec{Pos: pos}
		if dests[i] >= 0 {
			specs[i].Source = Saturated(phy.NodeID(dests[i]))
		} else {
			specs[i].Source = Responder()
		}
	}
	return specs
}
