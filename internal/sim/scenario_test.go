package sim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/geom"
)

// TestScenarioGoldenRoundTrip pins the JSON contract: every scenario in
// testdata parses, validates, and re-serializes byte-identically through
// the canonical MarshalScenario form. Regenerate with UPDATE_GOLDEN=1.
func TestScenarioGoldenRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected at least 3 scenario goldens in testdata, got %d", len(paths))
	}
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			sc, err := LoadScenario(path)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := sc.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			out, err := MarshalScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if update {
				if err := os.WriteFile(path, out, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			in, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(in) != string(out) {
				t.Errorf("round-trip not byte-identical (run with UPDATE_GOLDEN=1 to canonicalize)\n--- file ---\n%s--- re-marshal ---\n%s", in, out)
			}
			// A second pass through parse must be a fixed point.
			sc2, err := ParseScenario(out)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			out2, err := MarshalScenario(sc2)
			if err != nil {
				t.Fatal(err)
			}
			if string(out) != string(out2) {
				t.Error("second round-trip diverged")
			}
		})
	}
}

// TestScenarioBadSpecsRejected checks that every curated spec in
// testdata/bad fails to parse or fails validation.
func TestScenarioBadSpecsRejected(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "bad", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("expected at least 5 bad specs in testdata/bad, got %d", len(paths))
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			sc, err := LoadScenario(path)
			if err != nil {
				t.Logf("rejected at parse: %v", err)
				return
			}
			if err := sc.Validate(); err != nil {
				t.Logf("rejected at validate: %v", err)
				return
			}
			t.Error("bad spec was accepted")
		})
	}
}

// TestValidateRejectsFastForwardWithNAVOracle pins the surfaced error:
// the combination used to be silently downgraded inside mac.New, so the
// scenario ran slot-by-slot while reading as fast-forwarded. The error
// must name both JSON field paths so a hand-written file points at the
// lines to fix.
func TestValidateRejectsFastForwardWithNAVOracle(t *testing.T) {
	sc := Scenario{
		Scheme: "DRTS-DCTS", BeamwidthDeg: 30, Seed: 1,
		Duration:    Duration(300 * des.Millisecond),
		Topology:    TopologySpec{N: 4},
		PHY:         PHYSpec{NAVOracle: true},
		FastForward: true,
	}
	err := sc.Validate()
	if err == nil {
		t.Fatal("fastforward+navOracle scenario was accepted")
	}
	for _, want := range []string{"fastforward", "phy.navOracle"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
	sc.PHY.NAVOracle = false
	if err := sc.Validate(); err != nil {
		t.Errorf("fastforward alone must validate: %v", err)
	}
}

func TestParseScenarioRejectsUnknownFields(t *testing.T) {
	_, err := ParseScenario([]byte(`{"scheme":"DRTS-DCTS","seeed":1}`))
	if err == nil || !strings.Contains(err.Error(), "seeed") {
		t.Errorf("want unknown-field error naming the typo, got %v", err)
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"300ms"`)); err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "300ms" {
		t.Errorf("String() = %q, want 300ms", got)
	}
	b, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"300ms"` {
		t.Errorf("MarshalJSON = %s, want \"300ms\"", b)
	}
	if err := d.UnmarshalJSON([]byte(`"not a duration"`)); err == nil {
		t.Error("want error for malformed duration")
	}
	if err := d.UnmarshalJSON([]byte(`300`)); err == nil {
		t.Error("want error for non-string duration")
	}
}

func TestValidateErrors(t *testing.T) {
	good := Scenario{
		Scheme: "DRTS-DCTS", BeamwidthDeg: 60, Seed: 1,
		Duration: Duration(300 * 1e6), Topology: TopologySpec{N: 4},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("baseline scenario should validate: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		// The scheme error must carry the JSON path like every other
		// validator, not leak the bare core error.
		{"unknown scheme", func(sc *Scenario) { sc.Scheme = "QRTS" }, "sim: scheme: core: unknown scheme"},
		{"zero beamwidth", func(sc *Scenario) { sc.BeamwidthDeg = 0 }, "beamwidthDeg"},
		{"beamwidth over 360", func(sc *Scenario) { sc.BeamwidthDeg = 400 }, "beamwidthDeg"},
		{"zero duration", func(sc *Scenario) { sc.Duration = 0 }, "duration: must be positive"},
		{"unknown topology", func(sc *Scenario) { sc.Topology.Kind = "mystery" }, "topology.kind"},
		{"n too small", func(sc *Scenario) { sc.Topology.N = 1 }, "topology.n"},
		{"negative radius", func(sc *Scenario) { sc.Topology.Radius = -1 }, "topology.radius"},
		{"explicit without positions", func(sc *Scenario) { sc.Topology.Kind = "explicit" }, "topology.positions"},
		{"positions on rings", func(sc *Scenario) { sc.Topology.Positions = make([]geom.Point, 2) }, "topology.positions"},
		{"unknown traffic", func(sc *Scenario) { sc.Traffic.Kind = "burst" }, "traffic.kind"},
		{"cbr without load", func(sc *Scenario) { sc.Traffic.Kind = "cbr" }, "traffic.offeredLoadBps"},
		{"load without cbr", func(sc *Scenario) { sc.Traffic.OfferedLoadBps = 1e6 }, "traffic.offeredLoadBps"},
		{"unknown mobility", func(sc *Scenario) { sc.Mobility.Kind = "teleport" }, "mobility.kind"},
		{"waypoint without speed", func(sc *Scenario) { sc.Mobility.Kind = "waypoint" }, "mobility.maxSpeed"},
		{"speed without waypoint", func(sc *Scenario) { sc.Mobility.MaxSpeed = 2 }, "mobility.maxSpeed"},
		{"unknown trace", func(sc *Scenario) { sc.Trace.Kind = "pcap" }, "trace.kind"},
		{"negative adaptive rts", func(sc *Scenario) { sc.Ablations.AdaptiveRTS = -1 }, "ablations.adaptiveRTS"},
		{"negative telemetry interval", func(sc *Scenario) { sc.Telemetry.Interval = -1 }, "telemetry.interval"},
		{"metrics without interval", func(sc *Scenario) { sc.Telemetry.Metrics = []string{"mac/cw"} }, "telemetry.metrics"},
		{"unknown telemetry metric", func(sc *Scenario) {
			sc.Telemetry.Interval = Duration(10 * 1e6)
			sc.Telemetry.Metrics = []string{"mac/unheard-of"}
		}, "telemetry.metrics"},
		{"negative telemetry maxNodes", func(sc *Scenario) {
			sc.Telemetry.Interval = Duration(10 * 1e6)
			sc.Telemetry.MaxNodes = -1
		}, "telemetry.maxNodes"},
		{"maxNodes without interval", func(sc *Scenario) { sc.Telemetry.MaxNodes = 4 }, "telemetry.maxNodes"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sc := good
			tt.mutate(&sc)
			err := sc.Validate()
			if err == nil {
				t.Fatal("want validation error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

// TestOmniIgnoresBeamwidth: ORTS-OCTS has no beam to validate.
func TestOmniIgnoresBeamwidth(t *testing.T) {
	sc := Scenario{
		Scheme: "omni", Seed: 1,
		Duration: Duration(300 * 1e6), Topology: TopologySpec{N: 4},
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("omni scenario with zero beamwidth should validate: %v", err)
	}
}
