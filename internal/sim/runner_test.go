package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/topology"
)

// failEverySeedDivisibleBy3 is an injected topology generator: shards
// whose derived seed is divisible by 3 fail, everything else builds the
// normal ring placement. Registered once for the whole test binary.
func init() {
	RegisterTopology("failing-test", func(rng *rand.Rand, sc Scenario) (*topology.Topology, error) {
		if sc.Seed%3 == 0 {
			return nil, fmt.Errorf("injected failure for seed %d", sc.Seed)
		}
		return buildRings(rng, sc)
	})
}

func quickScenario() Scenario {
	return Scenario{
		Scheme:       "DRTS-DCTS",
		BeamwidthDeg: 60,
		Seed:         1,
		Duration:     Duration(50 * 1e6), // 50ms
		Topology:     TopologySpec{N: 3},
	}
}

func TestShardSeedDerivation(t *testing.T) {
	base := quickScenario()
	for i := 0; i < 5; i++ {
		sc := Shard(base, i)
		if sc.Seed != base.Seed+int64(i) {
			t.Errorf("shard %d seed = %d, want %d", i, sc.Seed, base.Seed+int64(i))
		}
		sc.Seed = base.Seed
		if !reflect.DeepEqual(sc, base) {
			t.Errorf("shard %d differs from base beyond the seed", i)
		}
	}
}

func TestRunnerMatchesSequentialRuns(t *testing.T) {
	base := quickScenario()
	const shards = 4
	got, err := Runner{Workers: 3}.Run(base, shards)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != shards {
		t.Fatalf("got %d results, want %d", len(got), shards)
	}
	for i := 0; i < shards; i++ {
		want, err := RunScenario(Shard(base, i), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("shard %d: parallel result differs from sequential run", i)
		}
	}
}

// TestRunnerLowestShardErrorWins pins the deterministic error contract:
// with base seed 1, shards 2 and 5 hit the injected failure (seeds 3 and
// 6); whichever goroutine stumbles first, the reported error must always
// be shard 2's.
func TestRunnerLowestShardErrorWins(t *testing.T) {
	base := quickScenario()
	base.Topology.Kind = "failing-test"
	const shards = 8
	var first string
	for trial := 0; trial < 20; trial++ {
		_, err := Runner{Workers: 4}.Run(base, shards)
		if err == nil {
			t.Fatal("want error from injected failing topology")
		}
		msg := err.Error()
		if !strings.Contains(msg, "shard 2 (seed 3)") {
			t.Fatalf("trial %d: error does not name the lowest failing shard: %v", trial, err)
		}
		if !strings.Contains(msg, "injected failure for seed 3") {
			t.Fatalf("trial %d: error lost the shard's cause: %v", trial, err)
		}
		if first == "" {
			first = msg
		} else if msg != first {
			t.Fatalf("trial %d: error message changed across runs:\n%q\n%q", trial, msg, first)
		}
	}
}

func TestRunnerRejectsZeroShards(t *testing.T) {
	if _, err := (Runner{}).Run(quickScenario(), 0); err == nil {
		t.Error("want error for zero shards")
	}
}

func TestRunnerValidatesBase(t *testing.T) {
	bad := quickScenario()
	bad.Duration = 0
	if _, err := (Runner{}).Run(bad, 2); err == nil {
		t.Error("want validation error for bad base scenario")
	}
}
