package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/des"
	"repro/internal/trace"
)

// partitionedScenario is large and spread enough to auto-partition: a
// uniform field of Rings²·N = 384 nodes over a disk of radius 4R.
func partitionedScenario() Scenario {
	return Scenario{
		Scheme:       "DRTS-DCTS",
		BeamwidthDeg: 60,
		Seed:         11,
		Duration:     Duration(25 * des.Millisecond),
		Topology:     TopologySpec{Kind: "uniform", N: 24, Rings: 4},
	}
}

func planFor(t *testing.T, sc Scenario, opts Options) *partitionPlan {
	t.Helper()
	topo, err := GenerateTopology(rand.New(rand.NewSource(sc.Seed)), sc)
	if err != nil {
		t.Fatal(err)
	}
	return planPartition(sc, opts, topo)
}

func TestPlanPartitionDeterminism(t *testing.T) {
	sc := partitionedScenario()
	want := planFor(t, sc, Options{})
	if want == nil {
		t.Fatal("large uniform scenario did not partition")
	}
	if want.parts < 2 || want.parts > maxPartitions {
		t.Fatalf("parts = %d, want in [2, %d]", want.parts, maxPartitions)
	}
	// The layout is a pure function of the scenario: re-planning (fresh
	// topology draw from the same seed) reproduces it exactly, and the
	// worker count is not even an input.
	for i := 0; i < 3; i++ {
		got := planFor(t, sc, Options{Workers: 1 << i})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("re-plan %d diverged", i)
		}
	}
	// Every node is assigned, and partition indices are dense.
	seen := make([]bool, want.parts)
	for _, p := range want.laneOf {
		seen[p] = true
	}
	for p, ok := range seen {
		if !ok {
			t.Errorf("partition %d owns no nodes", p)
		}
	}
}

func TestPlanPartitionExclusions(t *testing.T) {
	mutate := map[string]func(*Scenario, *Options){
		"off":          func(sc *Scenario, _ *Options) { sc.Partition = "off" },
		"mobility":     func(sc *Scenario, _ *Options) { sc.Mobility = MobilitySpec{Kind: "waypoint", MaxSpeed: 1} },
		"telemetry":    func(sc *Scenario, _ *Options) { sc.Telemetry.Interval = Duration(des.Millisecond) },
		"recorder":     func(sc *Scenario, _ *Options) { sc.Trace.Kind = "recorder" },
		"tracer":       func(_ *Scenario, o *Options) { o.Tracer = trace.Discard{} },
		"sampleDelays": func(sc *Scenario, _ *Options) { sc.SampleDelays = true },
		"hello":        func(sc *Scenario, _ *Options) { sc.Ablations.HelloBootstrap = true },
	}
	for name, fn := range mutate {
		sc, opts := partitionedScenario(), Options{}
		fn(&sc, &opts)
		if plan := planFor(t, sc, opts); plan != nil {
			t.Errorf("%s: expected sequential plan, got %d partitions", name, plan.parts)
		}
	}
	// Paper-scale scenarios (Rings=3, N=8 → 72 nodes) stay sequential, so
	// every historical golden keeps its exact event order.
	small := partitionedScenario()
	small.Topology = TopologySpec{N: 8}
	if plan := planFor(t, small, Options{}); plan != nil {
		t.Errorf("72-node paper scenario partitioned into %d parts", plan.parts)
	}
}

func TestDerivePartitionSeedStable(t *testing.T) {
	// The derived seed sequence is part of the determinism contract for
	// partitioned runs; pin a few values so accidental changes surface.
	base := int64(11) ^ 0x5eed
	seen := map[int64]bool{base: true}
	for p := 1; p < maxPartitions; p++ {
		s := derivePartitionSeed(base, p)
		if seen[s] {
			t.Fatalf("seed collision at partition %d", p)
		}
		seen[s] = true
		if s != derivePartitionSeed(base, p) {
			t.Fatalf("derivePartitionSeed not deterministic at %d", p)
		}
	}
}

// TestPartitionedRunWorkerInvariance is the core contract of the
// parallel kernel: one scenario, one fixed partition layout, and
// byte-identical Result JSON no matter how many OS workers execute it.
func TestPartitionedRunWorkerInvariance(t *testing.T) {
	sc := partitionedScenario()
	s, err := Build(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Partitions() < 2 {
		t.Fatalf("scenario built %d partitions, want >= 2", s.Partitions())
	}
	run := func(workers int) []byte {
		res, err := RunScenario(sc, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: Result diverged from workers=1", workers)
		}
	}
}

// TestPartitionOffForcesSequential checks the opt-out: Partition "off"
// runs the single global queue even on a scenario that would partition.
func TestPartitionOffForcesSequential(t *testing.T) {
	sc := partitionedScenario()
	sc.Partition = "off"
	s, err := Build(sc, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s.Partitions() != 1 {
		t.Fatalf("partition \"off\" built %d partitions", s.Partitions())
	}
	// And a partitioned build forces fast-forward off even when asked.
	ff := partitionedScenario()
	ff.FastForward = true
	sp, err := Build(ff, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Partitions() < 2 {
		t.Fatal("fast-forward scenario did not partition")
	}
}

func TestScenarioKeyPartitionNormalization(t *testing.T) {
	base := partitionedScenario()
	keyOf := func(sc Scenario) string {
		k, err := ScenarioKey(sc)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v", k)
	}
	auto := base
	auto.Partition = "auto"
	if keyOf(auto) != keyOf(base) {
		t.Error("partition \"auto\" and \"\" are synonyms but hash differently")
	}
	off := base
	off.Partition = "off"
	if keyOf(off) == keyOf(base) {
		t.Error("partition \"off\" changes results on large scenarios but shares the auto cache key")
	}
}

func TestScenarioValidatePartition(t *testing.T) {
	sc := partitionedScenario()
	for _, mode := range []string{"", "auto", "off"} {
		sc.Partition = mode
		if err := sc.Validate(); err != nil {
			t.Errorf("partition %q: unexpected error %v", mode, err)
		}
	}
	sc.Partition = "parallel"
	if err := sc.Validate(); err == nil {
		t.Error("partition \"parallel\": want validation error")
	}
}
