package sim

// Result caching. Determinism is the enabler: a Scenario's canonical
// bytes plus the engine fingerprint fully determine the Result (the
// kernel-determinism goldens pin this), so a content-addressed lookup
// can replace a simulation run bit-for-bit. Runs with runtime overrides
// attached (a pre-generated topology or a tracer) are NOT cached — the
// override isn't part of the canonical bytes, and replaying a cached
// result would silently drop tracer side effects.

import (
	"encoding/json"
	"fmt"

	"repro/internal/cache"
)

// EngineFingerprint identifies the simulation kernel's behavior for
// cache addressing. Bump the version suffix whenever any change can
// alter a Result for the same scenario bytes (MAC/PHY/DES semantics,
// RNG consumption order, metric definitions) so stale entries become
// unreachable instead of wrong.
//
// v2: the grid-partitioned parallel kernel (DESIGN.md §14) changes the
// event order of large auto-partitioned scenarios relative to v1's
// always-sequential kernel.
const EngineFingerprint = "repro-sim/v2"

// optionsFingerprint describes the cacheable Options state. Runs are
// only cached when no runtime overrides are attached, so today this is
// a single canonical value; it becomes a real encoding if cacheable
// options ever appear.
const optionsFingerprint = "default"

// ScenarioKey computes the content address of a scenario's result:
// SHA-256 over the canonical scenario bytes, the engine fingerprint and
// the options fingerprint. FastForward is normalized away before
// hashing: it is a pure performance switch whose results are
// bit-identical by construction (golden-enforced), so a warm cache
// filled without it serves fast-forward runs and vice versa. Partition
// "auto" is normalized to its synonym "" (the default); "off" is NOT
// normalized, because forcing the sequential kernel changes results on
// scenarios large enough to auto-partition. Options.Workers never
// enters the key at all — the partition layout, and with it the result,
// is worker-count independent.
func ScenarioKey(sc Scenario) (cache.Key, error) {
	sc.FastForward = false
	if sc.Partition == "auto" {
		sc.Partition = ""
	}
	b, err := MarshalScenario(sc)
	if err != nil {
		return cache.Key{}, err
	}
	return cache.NewKeyBuilder().
		Write("scenario", b).
		Write("engine", []byte(EngineFingerprint)).
		Write("options", []byte(optionsFingerprint)).
		Key(), nil
}

// EncodeResult renders the canonical byte form of a Result: compact
// JSON, no trailing newline. These bytes are both the result-cache
// payload and the wire format cmd/simd serves, so they are a stable
// contract: JSON float encoding is shortest-form and round-trips
// bit-exactly, which makes a decoded Result re-encode to the same
// golden bytes as a fresh run — and a daemon-served body byte-identical
// to a local `netsim -scenario ... -json` run of the same spec.
func EncodeResult(r *Result) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("sim: encode result: %w", err)
	}
	return b, nil
}

// DecodeResult parses canonical result bytes back into a Result.
func DecodeResult(b []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("sim: decode cached result: %w", err)
	}
	return &r, nil
}

// cacheable reports whether a run of sc under opts may be served from
// or stored to the cache. Telemetry-enabled scenarios bypass the cache
// entirely: the streaming export is a side effect a cached Result
// cannot replay, exactly like a Tracer override.
func cacheable(sc Scenario, opts Options) bool {
	return opts.Cache != nil && opts.Topology == nil && opts.Tracer == nil &&
		!sc.Telemetry.Enabled()
}

// runCached serves sc from the cache when possible, otherwise runs it
// and stores the result. A corrupt or undecodable entry falls through
// to a fresh run; a failed store does not fail the (successful) run.
func runCached(sc Scenario, opts Options) (*Result, error) {
	key, err := ScenarioKey(sc)
	if err != nil {
		return nil, err
	}
	if payload, ok := opts.Cache.Get(key); ok {
		if res, err := DecodeResult(payload); err == nil {
			return res, nil
		}
	}
	s, err := Build(sc, opts)
	if err != nil {
		return nil, err
	}
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	if payload, err := EncodeResult(res); err == nil {
		_ = opts.Cache.Put(key, payload) // best effort; the result stands
	}
	return res, nil
}
