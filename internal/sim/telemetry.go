package sim

// Telemetry assembly: the canonical metric catalog, the wiring of
// instruments into the MAC/PHY configs, and the collector that samples
// per-node and aggregate series on the simulation clock.
//
// The collector's end-of-run sample computes every aggregate with the
// exact same expressions (and the same node iteration order) as the
// Result collection in Run, so the final "agg" record of an export
// reproduces the run's CollisionRatio / Jain / mean throughput
// bit-for-bit — cmd/simtrace relies on this to cross-check exports
// against experiment output without tolerance windows.

import (
	"fmt"
	"math/rand"

	"repro/internal/des"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// telemetrySampleSeed salts the scenario seed for the per-node sample
// draw, so bounding cardinality never perturbs topology or protocol
// randomness (which use Seed and Seed^0x5eed respectively).
const telemetrySampleSeed = 0x7e1e6e7a

// Canonical metric names. The catalog is the validation contract for
// Scenario.Telemetry.Metrics and the registration-order contract for
// exports (metric records always appear in catalog order).
const (
	// MetricBackoffSlots observes every backoff draw, in slots.
	MetricBackoffSlots = "mac/backoff-slots"
	// MetricCW observes the contention window at every draw, in slots.
	MetricCW = "mac/cw"
	// MetricHandshakeUs observes the MAC service time of acknowledged
	// packets, in microseconds.
	MetricHandshakeUs = "mac/handshake-us"
	// MetricNAVUs observes NAV durations adopted via virtual carrier
	// sensing, in microseconds.
	MetricNAVUs = "mac/nav-us"
	// MetricTxFrames counts frames put on the air, network-wide.
	MetricTxFrames = "phy/tx-frames"
	// MetricRxFrames counts successfully decoded receptions.
	MetricRxFrames = "phy/rx-frames"
	// MetricRxErrors counts garbled receptions (collision damage).
	MetricRxErrors = "phy/rx-errors"
)

// telemetryMetricDef describes one catalog entry. Histogram bounds are
// part of the export contract: changing them changes golden bytes.
type telemetryMetricDef struct {
	name   string
	bounds []float64 // nil for counters
}

// telemetryCatalog lists every metric in registration (= export) order.
var telemetryCatalog = []telemetryMetricDef{
	{MetricBackoffSlots, []float64{0, 1, 3, 7, 15, 31, 63, 127, 255, 511, 1023}},
	{MetricCW, []float64{31, 63, 127, 255, 511, 1023}},
	{MetricHandshakeUs, []float64{1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000}},
	{MetricNAVUs, []float64{100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000}},
	{MetricTxFrames, nil},
	{MetricRxFrames, nil},
	{MetricRxErrors, nil},
}

// TelemetryMetricNames returns the canonical metric catalog in export
// order (the names Scenario.Telemetry.Metrics may reference).
func TelemetryMetricNames() []string {
	names := make([]string, len(telemetryCatalog))
	for i, d := range telemetryCatalog {
		names[i] = d.name
	}
	return names
}

// knownTelemetryMetric reports whether name is in the catalog.
func knownTelemetryMetric(name string) bool {
	for _, d := range telemetryCatalog {
		if d.name == name {
			return true
		}
	}
	return false
}

// telemetryCollector owns a run's registry, instruments and series
// state. Its probe runs as a scheduler event and must only read
// simulation state — never draw randomness — so enabling telemetry
// leaves results bit-identical (pinned by the goldens).
type telemetryCollector struct {
	sink     telemetry.Sink
	reg      *telemetry.Registry
	interval des.Time
	start    des.Time
	sampler  *telemetry.Sampler

	// Wired into the MAC/PHY configs at Build time; fields stay nil for
	// metrics excluded by the scenario's filter.
	macMetrics mac.Metrics
	phyMetrics phy.Metrics

	// prevBits/prevT hold the previous sample's cumulative acknowledged
	// bits per inner node, for the instantaneous (per-window) series.
	prevBits []int64
	prevT    des.Time
	cums     []float64 // scratch: per-inner-node cumulative throughput

	// exported gates per-node records when the scenario bounds series
	// cardinality (telemetry.maxNodes); nil exports every inner node.
	// Aggregates are computed over all inner nodes either way.
	exported []bool
	nSampled int // nodes emitting records; 0 when unbounded

	err error // first sink error; surfaced by finish
}

// newTelemetryCollector builds the registry for sc's metric selection
// and prepares instruments for Build to wire into the layers.
func newTelemetryCollector(sc Scenario, sink telemetry.Sink, innerCount int) (*telemetryCollector, error) {
	c := &telemetryCollector{
		sink:     sink,
		reg:      telemetry.NewRegistry(),
		interval: des.Time(sc.Telemetry.Interval),
		prevBits: make([]int64, innerCount),
		cums:     make([]float64, innerCount),
	}
	if k := sc.Telemetry.MaxNodes; k > 0 && k < innerCount {
		// Deterministic sample of k inner nodes: a partial Fisher-Yates
		// over the index range, seeded only from the scenario, so the
		// same scenario always exports the same node set regardless of
		// sink, shard or worker count.
		rng := rand.New(rand.NewSource(sc.Seed ^ telemetrySampleSeed))
		idx := make([]int, innerCount)
		for i := range idx {
			idx[i] = i
		}
		c.exported = make([]bool, innerCount)
		for i := 0; i < k; i++ {
			j := i + rng.Intn(innerCount-i)
			idx[i], idx[j] = idx[j], idx[i]
			c.exported[idx[i]] = true
		}
		c.nSampled = k
	}
	var keep map[string]bool
	if len(sc.Telemetry.Metrics) > 0 {
		keep = make(map[string]bool, len(sc.Telemetry.Metrics))
		for _, n := range sc.Telemetry.Metrics {
			keep[n] = true
		}
	}
	for _, d := range telemetryCatalog {
		if keep != nil && !keep[d.name] {
			continue // instrument stays nil: zero cost, nothing exported
		}
		var err error
		if d.bounds == nil {
			var ctr *telemetry.Counter
			if ctr, err = c.reg.Counter(d.name); err == nil {
				switch d.name {
				case MetricTxFrames:
					c.phyMetrics.TxFrames = ctr
				case MetricRxFrames:
					c.phyMetrics.RxFrames = ctr
				case MetricRxErrors:
					c.phyMetrics.RxErrors = ctr
				}
			}
		} else {
			var h *telemetry.Histogram
			if h, err = c.reg.Histogram(d.name, d.bounds); err == nil {
				switch d.name {
				case MetricBackoffSlots:
					c.macMetrics.Backoff = h
				case MetricCW:
					c.macMetrics.CW = h
				case MetricHandshakeUs:
					c.macMetrics.HandshakeUs = h
				case MetricNAVUs:
					c.macMetrics.NAVUs = h
				}
			}
		}
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// header renders the export header for a run of s.
func (c *telemetryCollector) header(s *Sim, duration des.Time) telemetry.Header {
	return telemetry.Header{
		Format:       telemetry.FormatV1,
		Scenario:     s.Scenario.Name,
		Scheme:       s.Scenario.Scheme,
		Seed:         s.Scenario.Seed,
		Nodes:        len(s.Nodes),
		InnerNodes:   s.Topology.InnerCount(),
		IntervalNs:   int64(c.interval),
		DurationNs:   int64(duration),
		Metrics:      c.reg.Names(),
		SampledNodes: c.nSampled,
	}
}

// startSampling writes the header and schedules the probe. Called by
// Run at measurement start (after any bootstrap), so tick times align
// with the measured window.
func (c *telemetryCollector) startSampling(s *Sim, duration des.Time) error {
	if err := c.sink.WriteHeader(c.header(s, duration)); err != nil {
		return err
	}
	c.start = s.Sched.Now()
	c.prevT = c.start
	sampler, err := telemetry.NewSampler(s.Sched, c.interval, func(now des.Time) {
		c.sample(s, now)
	})
	if err != nil {
		return err
	}
	c.sampler = sampler
	sampler.Start()
	return nil
}

// sample emits one per-node record per exported inner node (all of
// them, or the deterministic telemetry.maxNodes sample) plus one
// aggregate record covering every inner node exactly. All floats use
// the same expressions as Result collection:
// cumulative throughput is BitsAcked divided by elapsed seconds, the
// aggregate is the plain mean in node-index order, and fairness is
// stats.JainIndex over the cumulative series.
func (c *telemetryCollector) sample(s *Sim, now des.Time) {
	if c.err != nil {
		return // sink already failed; stop producing
	}
	elapsed := now - c.start
	window := now - c.prevT
	t := int64(elapsed)
	var instSum, cumSum, collSum float64
	for i := range c.cums {
		st := s.Nodes[i].Stats()
		cum := float64(st.BitsAcked) / elapsed.Seconds()
		inst := float64(st.BitsAcked-c.prevBits[i]) / window.Seconds()
		coll := st.CollisionRatio()
		c.cums[i] = cum
		c.prevBits[i] = st.BitsAcked
		instSum += inst
		cumSum += cum
		collSum += coll
		if c.err == nil && (c.exported == nil || c.exported[i]) {
			c.err = c.sink.WriteRecord(telemetry.Record{
				Kind: telemetry.KindNode, T: t, Node: i,
				ThroughputBps: inst, CumThroughputBps: cum, CollisionRatio: coll,
				BitsAcked: st.BitsAcked, Successes: st.Successes,
				ACKTimeouts: st.ACKTimeouts, Drops: st.Drops,
			})
		}
	}
	n := float64(len(c.cums))
	if c.err == nil {
		c.err = c.sink.WriteRecord(telemetry.Record{
			Kind: telemetry.KindAgg, T: t, Node: -1,
			ThroughputBps:    instSum / n,
			CumThroughputBps: cumSum / n,
			CollisionRatio:   collSum / n,
			Jain:             stats.JainIndex(c.cums),
		})
	}
	c.prevT = now
}

// finish flushes the final sample (the end-of-run state, whatever the
// duration's remainder modulo the interval) and the metric records, and
// surfaces any sink error encountered along the way.
func (c *telemetryCollector) finish(s *Sim) error {
	c.sampler.Flush()
	if c.err != nil {
		return fmt.Errorf("sim: telemetry export: %w", c.err)
	}
	t := des.Time(c.sampler.LastSample() - c.start)
	if err := c.reg.WriteMetrics(c.sink, t, nil); err != nil {
		return fmt.Errorf("sim: telemetry export: %w", err)
	}
	return nil
}
