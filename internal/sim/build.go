package sim

// Build wires a Scenario into a live simulation. The assembly order —
// topology draw, scheduler, channel, radios, neighbor bootstrap, per-node
// sources and MAC instances, starts, mobility — is part of the
// determinism contract: every random draw comes from either the topology
// stream (seeded Seed) or the protocol stream (seeded Seed^0x5eed) in a
// fixed sequence, so identical scenarios produce bit-identical results.
// The kernel-determinism goldens in internal/experiments pin this.

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"repro/internal/cache"
	"repro/internal/des"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/neighbor"
	"repro/internal/phy"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Options carries the runtime (non-serializable) hooks a caller may
// attach alongside a declarative Scenario.
type Options struct {
	// Topology overrides the scenario's topology section with a
	// pre-generated placement.
	Topology *topology.Topology
	// Tracer receives every node's protocol events. It takes precedence
	// over the scenario's trace sink.
	Tracer trace.Tracer
	// Cache, when set, lets RunScenario (and therefore Runner.Run) serve
	// results from a content-addressed store instead of re-running
	// identical scenarios. Runs with a Topology or Tracer override bypass
	// the cache: those overrides are not part of the content address.
	Cache *cache.Store
	// Telemetry receives the streaming export of a run whose scenario
	// enables telemetry (ignored otherwise). When nil, Build provides an
	// in-memory Buffer exposed as Sim.Telemetry. Telemetry-enabled runs
	// bypass the cache — like Tracer, the sink's side effects cannot be
	// replayed from a cached result.
	Telemetry telemetry.Sink
	// Workers bounds the OS goroutines executing a partitioned run
	// (Scenario.Partition; 0 means GOMAXPROCS). It is a pure execution
	// knob: the partition layout — and therefore the result — is derived
	// from the scenario alone, byte-identical for any Workers value, so
	// Workers is deliberately absent from the result cache key.
	Workers int
}

// Sim is a fully assembled, not-yet-started simulation.
type Sim struct {
	// Scenario is the spec the simulation was built from.
	Scenario Scenario
	// Sched is the run's event scheduler.
	Sched *des.Scheduler
	// Channel is the shared PHY.
	Channel *phy.Channel
	// Topology is the resolved node placement.
	Topology *topology.Topology
	// Nodes are the MAC instances, indexed by phy.NodeID.
	Nodes []*mac.Node
	// Tables are the per-node neighbor tables.
	Tables []*neighbor.Table
	// Recorder is the trace ring when the scenario asked for one
	// (trace kind "recorder" and no Options.Tracer override).
	Recorder *trace.Recorder
	// Telemetry is the in-memory export buffer when the scenario enables
	// telemetry and no Options.Telemetry sink was supplied.
	Telemetry *telemetry.Buffer

	starters []SelfDriven
	delayRes *stats.Reservoir
	tel      *telemetryCollector
	parts    []*des.Scheduler // partition schedulers; parts[0] == Sched (len > 1 iff partitioned)
	workers  int
}

// Partitions reports how many event-queue partitions the build planned
// (1 for the sequential kernel).
func (s *Sim) Partitions() int {
	if len(s.parts) > 1 {
		return len(s.parts)
	}
	return 1
}

// Result holds the per-run metrics for the measured inner nodes. Field
// names are a stable contract: the kernel-determinism goldens are the
// canonical JSON encoding of this struct.
type Result struct {
	// ThroughputBps is each inner node's acknowledged goodput in bits/s.
	ThroughputBps []float64
	// DelaySec is each inner node's mean MAC service delay in seconds
	// (NaN markers are excluded: nodes that delivered nothing carry 0).
	DelaySec []float64
	// CollisionRatio is each inner node's ACK-timeout fraction of
	// data-phase handshakes.
	CollisionRatio []float64
	// Jain is the fairness index over the inner nodes' throughput.
	Jain float64
	// DelaySamplesSec holds a uniform sample of per-packet service delays
	// of the inner nodes (populated when Scenario.SampleDelays is set).
	DelaySamplesSec []float64
	// SpatialReuse is the network's concurrency factor: total transmit
	// airtime across all nodes divided by elapsed time. Values above 1
	// mean simultaneous transmissions coexisted — the reuse the paper's
	// directional schemes are built to unlock.
	SpatialReuse float64
	// AirtimeShare breaks the on-air time down by frame type (fractions
	// of TotalTxAirtime).
	AirtimeShare map[string]float64
	// NodeStats are the raw MAC counters for every node (all rings).
	NodeStats []mac.Stats
}

// MeanThroughputBps returns the average inner-node goodput.
func (r *Result) MeanThroughputBps() float64 { return mean(r.ThroughputBps) }

// MeanDelaySec returns the average inner-node service delay over nodes
// that delivered at least one packet.
func (r *Result) MeanDelaySec() float64 {
	var sum float64
	var n int
	for i, d := range r.DelaySec {
		if r.NodeStats[i].DelayCount > 0 {
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanCollisionRatio returns the average inner-node collision ratio.
func (r *Result) MeanCollisionRatio() float64 { return mean(r.CollisionRatio) }

// DelayPercentileSec returns the p-th percentile of the sampled
// per-packet delays (0 without SampleDelays).
func (r *Result) DelayPercentileSec(p float64) float64 {
	return stats.Percentile(r.DelaySamplesSec, p)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// resolvedTrafficSpec fills the traffic defaults: kind "saturated",
// 1460-byte packets, a 64-packet CBR queue.
func (sc Scenario) resolvedTrafficSpec() TrafficSpec {
	spec := sc.Traffic
	if spec.Kind == "" {
		spec.Kind = "saturated"
	}
	if spec.PacketBytes == 0 {
		spec.PacketBytes = traffic.PaperPacketBytes
	}
	if spec.QueueCap == 0 {
		spec.QueueCap = 64
	}
	return spec
}

// GenerateTopology resolves the scenario's topology section through the
// registry: the generator named by Kind draws from rng (seed it from
// Scenario.Seed for the canonical placement).
func GenerateTopology(rng *rand.Rand, sc Scenario) (*topology.Topology, error) {
	kind := sc.Topology.Kind
	if kind == "" {
		kind = "rings"
	}
	builder, ok := lookupTopology(kind)
	if !ok {
		return nil, fmt.Errorf("sim: topology.kind: unknown topology kind %q (registered: %v)", kind, TopologyKinds())
	}
	topo, err := builder(rng, sc)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return topo, nil
}

// Build assembles the scenario into a runnable simulation. The returned
// Sim is idle; call Run to execute it, or drive Sched directly for
// custom instrumentation.
func Build(sc Scenario, opts Options) (*Sim, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	scheme, err := sc.ResolvedScheme()
	if err != nil {
		return nil, err
	}
	topo := opts.Topology
	if topo == nil {
		topo, err = GenerateTopology(rand.New(rand.NewSource(sc.Seed)), sc)
		if err != nil {
			return nil, err
		}
	}

	sched := des.New(sc.Seed ^ 0x5eed)
	phyParams := phy.DefaultParams()
	phyParams.Range = topo.Radius
	phyParams.Capture = sc.PHY.Capture
	phyParams.NAVOracle = sc.PHY.NAVOracle
	if sc.PHY.SINR {
		phyParams.SINRThreshold = 10
		phyParams.PathLoss = 2
		phyParams.NoiseFloor = 0.001
	}
	ch, err := phy.NewChannel(sched, phyParams)
	if err != nil {
		return nil, err
	}
	ch.AddRadios(topo.Positions)

	// Partitioned kernel: split large static scenarios into per-region
	// event queues (DESIGN.md §14). The layout depends only on the
	// scenario; partition p>0 gets its own scheduler with a seed derived
	// from the protocol stream's.
	plan := planPartition(sc, opts, topo)
	if phyParams.PropDelay <= 0 {
		plan = nil // zero lookahead cannot guarantee round progress
	}
	scheds := []*des.Scheduler{sched}
	if plan != nil {
		for p := 1; p < plan.parts; p++ {
			scheds = append(scheds, des.New(derivePartitionSeed(sc.Seed^0x5eed, p)))
		}
		if err := ch.ConfigurePartitions(scheds, plan.laneOf); err != nil {
			return nil, err
		}
	}

	var tables []*neighbor.Table
	if sc.Ablations.HelloBootstrap {
		tables, err = neighbor.Bootstrap(sched, ch, neighbor.DefaultHelloConfig())
		if err != nil {
			return nil, err
		}
	} else {
		tables = neighbor.GroundTruth(ch)
	}

	tracer := opts.Tracer
	var recorder *trace.Recorder
	if tracer == nil && sc.Trace.Kind == "recorder" {
		capacity := sc.Trace.Capacity
		if capacity == 0 {
			capacity = 1024
		}
		recorder = trace.NewRecorder(capacity)
		tracer = recorder
	}

	var tel *telemetryCollector
	var telBuf *telemetry.Buffer
	if sc.Telemetry.Enabled() {
		sink := opts.Telemetry
		if sink == nil {
			telBuf = telemetry.NewBuffer()
			sink = telBuf
		}
		tel, err = newTelemetryCollector(sc, sink, topo.InnerCount())
		if err != nil {
			return nil, err
		}
		ch.SetMetrics(tel.phyMetrics)
	}

	macCfg := mac.DefaultConfig(scheme, sc.BeamwidthDeg*math.Pi/180)
	macCfg.DisableEIFS = sc.Ablations.DisableEIFS
	macCfg.Tracer = tracer
	if tel != nil {
		macCfg.Metrics = tel.macMetrics
	}
	macCfg.BasicAccess = sc.Ablations.BasicAccess
	macCfg.FastForward = sc.FastForward
	if plan != nil {
		// The analytic fast-forward jump (DESIGN.md §12) gates on
		// ActivePending()==0 over the single global queue; a partition's
		// queue only sees its own lane, so the gate would fire while
		// another partition still holds active events. Force the
		// sequential countdown — the partitioned kernel's determinism
		// contract doesn't include the fast-forward bit-identity proof.
		macCfg.FastForward = false
	}
	if sc.Ablations.AdaptiveRTS > 0 {
		macCfg.AdaptiveRTSStaleness = des.Time(sc.Ablations.AdaptiveRTS)
		macCfg.PiggybackLocation = true
	}
	var delayRes *stats.Reservoir
	if sc.SampleDelays {
		delayRes = stats.NewReservoir(4096, sched.Rand())
	}

	trafficSpec := sc.resolvedTrafficSpec()
	buildSource, ok := lookupTraffic(trafficSpec.Kind)
	if !ok {
		return nil, fmt.Errorf("sim: traffic.kind: unknown traffic kind %q (registered: %v)", trafficSpec.Kind, TrafficKinds())
	}

	s := &Sim{
		Scenario:  sc,
		Sched:     sched,
		Channel:   ch,
		Topology:  topo,
		Nodes:     make([]*mac.Node, ch.NumRadios()),
		Tables:    tables,
		Recorder:  recorder,
		Telemetry: telBuf,
		delayRes:  delayRes,
		tel:       tel,
		parts:     scheds,
		workers:   opts.Workers,
	}
	// Per-node assembly is allocation-lean (DESIGN.md §15): MAC nodes
	// come from one backing array, and each node's neighbor list is
	// carved from one shared append-grown backing (capped subslices whose
	// ownership transfers to the traffic source), so the loop costs O(1)
	// allocations per node at any N.
	nodeBacking := make([]mac.Node, ch.NumRadios())
	var nbBack []phy.NodeID
	for i := 0; i < ch.NumRadios(); i++ {
		id := phy.NodeID(i)
		// Every node lives entirely on its partition's scheduler: its MAC
		// timers, traffic arrivals and random draws all come from the
		// owning lane, so a lane's event stream is self-contained between
		// cross-partition flushes.
		nodeSched := sched
		if plan != nil {
			nodeSched = scheds[plan.laneOf[i]]
		}
		var src mac.Source = traffic.Empty{}
		start := len(nbBack)
		nbBack = ch.NeighborsAppend(id, nbBack)
		if nbs := nbBack[start:len(nbBack):len(nbBack)]; len(nbs) > 0 {
			src, err = buildSource(TrafficEnv{
				Sched: nodeSched, Rand: nodeSched.Rand(), Neighbors: nbs, Spec: trafficSpec,
			})
			if err != nil {
				return nil, err
			}
		}
		nodeCfg := macCfg
		if delayRes != nil && i < topo.InnerCount() {
			nodeCfg.OnDelivery = func(d des.Time) { delayRes.Add(d.Seconds()) }
		}
		s.Nodes[i] = &nodeBacking[i]
		if err := mac.NewInto(s.Nodes[i], nodeSched, ch.Radio(id), tables[i], src, nodeCfg); err != nil {
			return nil, err
		}
		if sd, ok := src.(SelfDriven); ok {
			sd.SetKick(s.Nodes[i].Kick)
			s.starters = append(s.starters, sd)
		}
	}
	return s, nil
}

// Run starts every node and self-driven source, attaches mobility when
// the scenario asks for it, executes the measured duration and collects
// the inner-node metrics.
func (s *Sim) Run() (*Result, error) {
	sc := s.Scenario
	for _, n := range s.Nodes {
		n.Start()
	}
	for _, st := range s.starters {
		st.Start()
	}
	if sc.Mobility.Kind == "waypoint" {
		mob, err := mobility.New(s.Sched, s.Channel, mobility.DefaultConfig(sc.Mobility.MaxSpeed))
		if err != nil {
			return nil, err
		}
		mob.Start()
		refresh := des.Time(sc.Mobility.RefreshInterval)
		if refresh <= 0 {
			refresh = des.Second
		}
		if _, err := neighbor.PeriodicRefresh(s.Sched, s.Channel, s.Tables, refresh); err != nil {
			return nil, err
		}
	}
	start := s.Sched.Now() // after any bootstrap
	duration := des.Time(sc.Duration)
	if s.tel != nil {
		if err := s.tel.startSampling(s, duration); err != nil {
			return nil, err
		}
	}
	if len(s.parts) > 1 {
		// Partitioned kernel: conservative barrier windows with the PHY
		// propagation delay as lookahead (the earliest cross-partition
		// consequence of any event is a signal START edge one propagation
		// delay later; airtime only extends the END edge). Workers is an
		// execution knob only — the round structure is fixed by the
		// layout, so any worker count produces identical results.
		workers := s.workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		g := &des.Group{
			Parts:     s.parts,
			Lookahead: s.Channel.Params().PropDelay,
			Flush:     s.Channel.FlushCross,
		}
		g.Run(start+duration, workers)
	} else {
		s.Sched.Run(start + duration)
	}
	if s.tel != nil {
		if err := s.tel.finish(s); err != nil {
			return nil, err
		}
	}

	res := &Result{
		ThroughputBps:  make([]float64, s.Topology.InnerCount()),
		DelaySec:       make([]float64, s.Topology.InnerCount()),
		CollisionRatio: make([]float64, s.Topology.InnerCount()),
		NodeStats:      make([]mac.Stats, len(s.Nodes)),
	}
	for i, n := range s.Nodes {
		res.NodeStats[i] = n.Stats()
	}
	for i := 0; i < s.Topology.InnerCount(); i++ {
		st := res.NodeStats[i]
		res.ThroughputBps[i] = float64(st.BitsAcked) / duration.Seconds()
		res.DelaySec[i] = st.AvgDelay().Seconds()
		res.CollisionRatio[i] = st.CollisionRatio()
	}
	res.Jain = stats.JainIndex(res.ThroughputBps)
	res.SpatialReuse = s.Channel.TotalTxAirtime().Seconds() / duration.Seconds()
	if total := s.Channel.TotalTxAirtime(); total > 0 {
		res.AirtimeShare = make(map[string]float64, 4)
		for _, ft := range []phy.FrameType{phy.RTS, phy.CTS, phy.Data, phy.ACK} {
			res.AirtimeShare[ft.String()] = s.Channel.TxAirtime(ft).Seconds() / total.Seconds()
		}
	}
	if s.delayRes != nil {
		res.DelaySamplesSec = s.delayRes.Sample()
	}
	return res, nil
}
