package sim

// Runner fans one scenario out over many independent shards — the
// paper's "mean over random topologies" presentation, and the seam any
// future multi-machine sharding plugs into. Shard seeds are derived
// deterministically from the base seed, results are reported in shard
// order, and the error contract is deterministic too: whichever shard
// with the LOWEST index fails decides the returned error, no matter
// which goroutine stumbled first.

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/telemetry"
)

// RunScenario builds and runs a single scenario. With Options.Cache set
// (and no runtime overrides attached) the result is served from the
// content-addressed store when present, bit-identical to a fresh run.
func RunScenario(sc Scenario, opts Options) (*Result, error) {
	if cacheable(sc, opts) {
		return runCached(sc, opts)
	}
	s, err := Build(sc, opts)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Shard derives the scenario for shard i: identical to base except the
// seed, which is base.Seed + i. This is the sharding contract — shard
// results are reproducible individually, so a sweep can be re-run
// piecemeal (or on other machines) and spliced back together.
func Shard(base Scenario, i int) Scenario {
	sc := base
	sc.Seed = base.Seed + int64(i)
	return sc
}

// Runner executes scenario shards on a bounded worker pool.
type Runner struct {
	// Workers is the runner's TOTAL goroutine budget (0 means
	// GOMAXPROCS), shared between the shard pool and each shard's
	// intra-run partition workers: the pool takes min(Workers, shards)
	// goroutines and each shard gets Workers/pool partition workers.
	// Without the split, a sweep of partitioned scenarios would
	// oversubscribe the machine pool×partitions-fold. A fixed pool
	// pulling shard indices from a channel keeps a whole sweep from
	// allocating one parked goroutine per topology.
	Workers int
	// Options is passed to every shard's Build. Callers attaching a
	// Tracer must make it safe for concurrent use. A non-zero
	// Options.Workers overrides the per-shard share of the budget.
	Options Options
}

// Run executes shards 0..shards-1 of base and returns their results in
// shard order. On failure the returned error is the one from the
// lowest-indexed failing shard, annotated with its index and seed.
func (r Runner) Run(base Scenario, shards int) ([]*Result, error) {
	if shards < 1 {
		return nil, fmt.Errorf("sim: need at least one shard, got %d", shards)
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	total := r.Workers
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	workers := total
	if workers > shards {
		workers = shards
	}
	// Split the budget: pool goroutines run shards, and each shard's
	// partitioned kernel (if its scenario partitions) gets an equal share
	// of what's left per slot, so pool × intra-run workers ≈ total.
	baseOpts := r.Options
	if baseOpts.Workers == 0 {
		baseOpts.Workers = total / workers
		if baseOpts.Workers < 1 {
			baseOpts.Workers = 1
		}
	}
	results := make([]*Result, shards)
	// When the caller attached a telemetry sink, each shard streams into
	// its own in-memory buffer; the per-shard exports are merged in shard
	// order after the pool drains, so the bytes reaching the caller's
	// sink are deterministic no matter how the workers interleaved.
	var telBufs []*telemetry.Buffer
	if base.Telemetry.Enabled() && r.Options.Telemetry != nil {
		telBufs = make([]*telemetry.Buffer, shards)
		for i := range telBufs {
			telBufs[i] = telemetry.NewBuffer()
		}
	}
	var (
		mu      sync.Mutex
		failIdx = shards // lowest failing shard index so far
		failErr error
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				mu.Lock()
				skip := i > failIdx
				mu.Unlock()
				if skip {
					// A lower-indexed shard already failed, so this
					// shard's result cannot be reported. Shards BELOW
					// the recorded failure still run: the true minimum
					// failing index is therefore always discovered,
					// keeping the winning error independent of
					// goroutine scheduling.
					continue
				}
				opts := baseOpts
				if telBufs != nil {
					opts.Telemetry = telBufs[i]
				}
				res, err := RunScenario(Shard(base, i), opts)
				if err != nil {
					mu.Lock()
					if i < failIdx {
						failIdx, failErr = i, err
					}
					mu.Unlock()
					continue
				}
				results[i] = res //desalint:ignore sharedstate each worker writes only its own shard index, and the WaitGroup orders all writes before the read
			}
		}()
	}
	for i := 0; i < shards; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if failErr != nil {
		return nil, fmt.Errorf("sim: shard %d (seed %d): %w", failIdx, base.Seed+int64(failIdx), failErr)
	}
	if telBufs != nil {
		merged, err := telemetry.Merge(telBufs)
		if err != nil {
			return nil, fmt.Errorf("sim: merge shard telemetry: %w", err)
		}
		if err := merged.WriteTo(r.Options.Telemetry); err != nil {
			return nil, fmt.Errorf("sim: write merged telemetry: %w", err)
		}
	}
	return results, nil
}
