package sim

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cache"
)

// canonicalResultJSON mirrors the kernel-determinism golden encoding of
// internal/experiments: an indented json.Encoder over the Result.
func canonicalResultJSON(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestStore(t *testing.T) *cache.Store {
	t.Helper()
	s, err := cache.NewStore(t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScenarioKeyStableAcrossFieldOrder(t *testing.T) {
	sc := quickScenario()
	want, err := ScenarioKey(sc)
	if err != nil {
		t.Fatal(err)
	}

	// Re-parse the scenario from JSON whose fields arrive in a different
	// order than the struct declares; the canonical marshal must erase
	// the difference.
	reordered := []byte(`{
  "topology": {"n": 3},
  "duration": "50ms",
  "seed": 1,
  "beamwidthDeg": 60,
  "scheme": "DRTS-DCTS",
  "traffic": {}
}`)
	sc2, err := ParseScenario(reordered)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ScenarioKey(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("key changed when the same scenario arrived with reordered JSON fields")
	}

	// And it must be sensitive to an actual change.
	sc3 := sc
	sc3.Seed++
	other, err := ScenarioKey(sc3)
	if err != nil {
		t.Fatal(err)
	}
	if other == want {
		t.Error("key insensitive to a seed change")
	}
}

func TestEngineFingerprintInvalidates(t *testing.T) {
	sc := quickScenario()
	b, err := MarshalScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	current, err := ScenarioKey(sc)
	if err != nil {
		t.Fatal(err)
	}
	old := cache.NewKeyBuilder().
		Write("scenario", b).
		Write("engine", []byte("repro-sim/v0-before-the-bump")).
		Write("options", []byte("default")).
		Key()
	if old == current {
		t.Fatal("fingerprint does not participate in the key")
	}
	// An entry stored under the old fingerprint must be unreachable.
	store := newTestStore(t)
	if err := store.Put(old, []byte("stale result")); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(current); ok {
		t.Error("bumped fingerprint still hit the stale entry")
	}
}

func TestRunScenarioCachedGoldenIdentical(t *testing.T) {
	sc := quickScenario()
	store := newTestStore(t)

	fresh, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunScenario(sc, Options{Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunScenario(sc, Options{Cache: store})
	if err != nil {
		t.Fatal(err)
	}

	want := canonicalResultJSON(t, fresh)
	for name, r := range map[string]*Result{"cold": cold, "warm": warm} {
		if got := canonicalResultJSON(t, r); !bytes.Equal(got, want) {
			t.Errorf("%s cached result not byte-identical to a fresh run:\n got %s\nwant %s", name, got, want)
		}
	}

	st := store.Stats()
	if st.Hits != 1 {
		t.Errorf("hits = %d, want exactly 1 (the warm run)", st.Hits)
	}
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (the cold run)", st.Misses)
	}
}

func TestRunnerCachedGoldenIdentical(t *testing.T) {
	base := quickScenario()
	const shards = 4
	store := newTestStore(t)

	fresh, err := Runner{Workers: 2}.Run(base, shards)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Runner{Workers: 2, Options: Options{Cache: store}}.Run(base, shards)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Runner{Workers: 2, Options: Options{Cache: store}}.Run(base, shards)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < shards; i++ {
		want := canonicalResultJSON(t, fresh[i])
		if got := canonicalResultJSON(t, cold[i]); !bytes.Equal(got, want) {
			t.Errorf("shard %d: cold cached result differs from fresh run", i)
		}
		if got := canonicalResultJSON(t, warm[i]); !bytes.Equal(got, want) {
			t.Errorf("shard %d: warm cached result differs from fresh run", i)
		}
	}
	st := store.Stats()
	if st.Hits != shards || st.Misses != shards {
		t.Errorf("stats = %+v, want %d hits and %d misses", st, shards, shards)
	}
}

func TestCacheBypassedWithRuntimeOverrides(t *testing.T) {
	sc := quickScenario()
	store := newTestStore(t)

	// Warm the cache for this scenario.
	if _, err := RunScenario(sc, Options{Cache: store}); err != nil {
		t.Fatal(err)
	}
	topo, err := GenerateTopology(rand.New(rand.NewSource(sc.Seed)), sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunScenario(sc, Options{Cache: store, Topology: topo}); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Hits != 0 {
		t.Errorf("a run with a topology override consulted the cache (hits = %d)", st.Hits)
	}
}

func TestCorruptCacheEntryFallsThroughToRun(t *testing.T) {
	sc := quickScenario()
	dir := t.TempDir()
	store, err := cache.NewStore(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RunScenario(sc, Options{Cache: store})
	if err != nil {
		t.Fatal(err)
	}

	// Truncate the entry on disk, then read through a fresh store so the
	// memory layer cannot mask the damage.
	key, err := ScenarioKey(sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.String()+".entry")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	store2, err := cache.NewStore(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(sc, Options{Cache: store2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, fresh) {
		t.Error("recovered run differs from the original result")
	}
	// The damaged entry must have been repaired by the fresh run's Put.
	if _, ok := store2.Get(key); !ok {
		t.Error("entry not rewritten after corruption fallback")
	}
}
