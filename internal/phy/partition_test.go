package phy

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/geom"
)

// logger is a Handler that timestamps every indication on its own lane's
// scheduler, producing a per-radio event log for byte-level comparison
// between runs.
type logger struct {
	sched *des.Scheduler
	log   []string
}

func (l *logger) note(ev string) {
	l.log = append(l.log, fmt.Sprintf("%d:%s", l.sched.Now(), ev))
}
func (l *logger) OnCarrierBusy()  { l.note("busy") }
func (l *logger) OnCarrierIdle()  { l.note("idle") }
func (l *logger) OnFrame(f Frame) { l.note(fmt.Sprintf("frame seq=%d src=%d", f.Seq, f.Src)) }
func (l *logger) OnFrameError()   { l.note("err") }
func (l *logger) OnTxDone()       { l.note("txdone") }
func (l *logger) OnNAVHint(f Frame) {
	l.note(fmt.Sprintf("hint seq=%d src=%d", f.Seq, f.Src))
}

// partitionedRig builds two clusters of three radios each, far enough
// apart that only the middle radios of each cluster are in mutual range,
// split into two lanes along the cluster boundary.
func partitionedRig(t *testing.T, params Params) (*des.Group, *Channel, []*Radio, []*logger) {
	t.Helper()
	s0 := des.New(1)
	s1 := des.New(2)
	ch, err := NewChannel(s0, params)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster A around x=0, cluster B around x=0.9: radios 2 and 3 are in
	// cross-cluster range (0.5 apart), the rest only hear their own side.
	positions := []geom.Point{
		{X: -1.1, Y: 0}, {X: -0.3, Y: 0}, {X: 0.2, Y: 0},
		{X: 0.7, Y: 0}, {X: 1.2, Y: 0}, {X: 1.5, Y: 0},
	}
	radios := make([]*Radio, len(positions))
	logs := make([]*logger, len(positions))
	laneOf := make([]int32, len(positions))
	for i, pos := range positions {
		lane := int32(0)
		sched := s0
		if i >= 3 {
			lane, sched = 1, s1
		}
		logs[i] = &logger{sched: sched}
		radios[i] = ch.AddRadio(pos, logs[i])
		laneOf[i] = lane
	}
	if err := ch.ConfigurePartitions([]*des.Scheduler{s0, s1}, laneOf); err != nil {
		t.Fatal(err)
	}
	g := &des.Group{
		Parts:     []*des.Scheduler{s0, s1},
		Lookahead: params.PropDelay,
		Flush:     ch.FlushCross,
	}
	return g, ch, radios, logs
}

// crossTraffic schedules a self-repeating transmission on each of the two
// boundary radios (2 in lane 0, 3 in lane 1), so signals continuously
// cross the partition boundary and also collide at awkward offsets.
func crossTraffic(g *des.Group, radios []*Radio, until des.Time) {
	seq := []int64{0, 0}
	for i, id := range []int{2, 3} {
		i, r := i, radios[id]
		sched := g.Parts[i]
		interval := des.Time(900+100*i) * des.Microsecond
		var send func()
		send = func() {
			seq[i]++
			r.Transmit(Frame{Type: Data, Src: r.ID(), Dst: Broadcast, Bytes: 20, Seq: seq[i]}, Omni)
			if sched.Now()+interval <= until {
				sched.Schedule(interval, send)
			}
		}
		// Staggered starts so the first exchanges decode cleanly; the
		// incommensurate intervals drift the senders into occasional
		// overlap later, exercising cross-lane collision damage too.
		sched.At(des.Time(1+500*i)*des.Microsecond, send)
	}
}

func runCross(t *testing.T, params Params, workers int) ([][]string, *Channel) {
	t.Helper()
	const until = 20 * des.Millisecond
	g, ch, radios, logs := partitionedRig(t, params)
	crossTraffic(g, radios, until)
	g.Run(until, workers)
	out := make([][]string, len(logs))
	for i, l := range logs {
		out[i] = l.log
	}
	return out, ch
}

func TestCrossLaneDelivery(t *testing.T) {
	logs, ch := runCross(t, DefaultParams(), 1)
	// Radio 3 (lane 1) must decode frames from radio 2 (lane 0) and vice
	// versa: cross-lane signals really arrive.
	for _, pair := range [][2]int{{3, 2}, {2, 3}} {
		rx, src := pair[0], pair[1]
		found := false
		for _, ev := range logs[rx] {
			if strings.Contains(ev, fmt.Sprintf("frame seq=1 src=%d", src)) {
				found = true
			}
		}
		if !found {
			t.Errorf("radio %d never decoded seq=1 from cross-lane radio %d; log head %v", rx, src, logs[rx][:min(6, len(logs[rx]))])
		}
	}
	// An off-boundary radio (0, only in range of its own cluster's silent
	// radio 1) hears nothing at all.
	for _, ev := range logs[0] {
		t.Errorf("radio 0 unexpectedly observed %q", ev)
	}
	if ch.TxCount(Data) == 0 {
		t.Fatal("no transmissions accounted")
	}
}

func TestCrossLaneWorkerInvariance(t *testing.T) {
	for _, params := range []Params{
		DefaultParams(),
		func() Params {
			p := DefaultParams()
			p.NAVOracle = true
			return p
		}(),
	} {
		want, wantCh := runCross(t, params, 1)
		for _, workers := range []int{2, 4} {
			got, gotCh := runCross(t, params, workers)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("NAVOracle=%v workers=%d: event logs diverged from workers=1", params.NAVOracle, workers)
			}
			for _, ft := range []FrameType{RTS, CTS, Data, ACK, Hello} {
				if gotCh.TxAirtime(ft) != wantCh.TxAirtime(ft) || gotCh.TxCount(ft) != wantCh.TxCount(ft) {
					t.Errorf("NAVOracle=%v workers=%d: %v accounting diverged", params.NAVOracle, workers, ft)
				}
			}
		}
	}
}

// TestConfigurePartitionsIdentity checks that a one-lane configuration is
// the identity: the channel keeps running on its original pools.
func TestConfigurePartitionsIdentity(t *testing.T) {
	sched := des.New(1)
	ch, err := NewChannel(sched, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r := ch.AddRadio(geom.Point{}, &logger{sched: sched})
	if err := ch.ConfigurePartitions([]*des.Scheduler{sched}, []int32{0}); err != nil {
		t.Fatal(err)
	}
	if r.lane != ch.lanes[0] {
		t.Fatal("identity configuration moved the radio off lane 0")
	}
}

func TestConfigurePartitionsErrors(t *testing.T) {
	sched := des.New(1)
	ch, err := NewChannel(sched, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ch.AddRadio(geom.Point{}, &logger{sched: sched})
	if err := ch.ConfigurePartitions(nil, nil); err == nil {
		t.Error("no schedulers: want error")
	}
	if err := ch.ConfigurePartitions([]*des.Scheduler{des.New(9)}, []int32{0}); err == nil {
		t.Error("foreign scheduler 0: want error")
	}
	if err := ch.ConfigurePartitions([]*des.Scheduler{sched}, []int32{0, 0}); err == nil {
		t.Error("assignment length mismatch: want error")
	}
	if err := ch.ConfigurePartitions([]*des.Scheduler{sched}, []int32{5}); err == nil {
		t.Error("lane index out of range: want error")
	}
}
