package phy

// Differential coverage for the incremental spatial index (DESIGN.md
// §15): randomized mobility churn interleaved with transmissions must
// produce delivery traces byte-identical to the forced all-or-nothing
// rebuild, across seeds and under -race (via `make test`). The
// partitioned kernel freezes placement instead — SetPos must panic
// rather than race against concurrent gathers.

import (
	"math/rand"
	"testing"

	"repro/internal/des"
	"repro/internal/geom"
)

// churnOp is one scripted stimulus: a batch of repositionings followed
// by one directional transmission.
type churnOp struct {
	moves   []churnMove
	src     NodeID
	bearing float64
	width   float64
}

type churnMove struct {
	id  NodeID
	pos geom.Point
}

// churnScript draws a deterministic op sequence so both channel
// instances see the identical stimulus.
func churnScript(seed int64, n, rounds int) []churnOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]churnOp, rounds)
	for i := range ops {
		nMoves := rng.Intn(8)
		moves := make([]churnMove, nMoves)
		for j := range moves {
			moves[j] = churnMove{
				id:  NodeID(rng.Intn(n)),
				pos: geom.Point{X: rng.Float64()*6 - 3, Y: rng.Float64()*6 - 3},
			}
		}
		ops[i] = churnOp{
			moves:   moves,
			src:     NodeID(rng.Intn(n)),
			bearing: rng.Float64()*6 - 3,
			width:   0.5 + rng.Float64()*2,
		}
	}
	return ops
}

// traceRec is one observed PHY indication.
type traceRec struct {
	at   des.Time
	node NodeID
	kind byte // 'f' frame, 'e' frame error, 'b' carrier busy, 'i' carrier idle, 't' tx done
	src  NodeID
	seq  int64
}

// tracingHandler appends every indication to a shared log.
type tracingHandler struct {
	sched *des.Scheduler
	id    NodeID
	log   *[]traceRec
}

func (h *tracingHandler) rec(kind byte, src NodeID, seq int64) {
	*h.log = append(*h.log, traceRec{at: h.sched.Now(), node: h.id, kind: kind, src: src, seq: seq})
}

func (h *tracingHandler) OnCarrierBusy()  { h.rec('b', -1, 0) }
func (h *tracingHandler) OnCarrierIdle()  { h.rec('i', -1, 0) }
func (h *tracingHandler) OnFrame(f Frame) { h.rec('f', f.Src, f.Seq) }
func (h *tracingHandler) OnFrameError()   { h.rec('e', -1, 0) }
func (h *tracingHandler) OnTxDone()       { h.rec('t', -1, 0) }

// runChurn replays the scripted churn on a fresh channel and returns the
// full delivery trace.
func runChurn(t *testing.T, seed int64, n int, ops []churnOp, fullRebuild bool) []traceRec {
	t.Helper()
	sched := des.New(seed)
	p := DefaultParams()
	p.Range = 0.9
	ch, err := NewChannel(sched, p)
	if err != nil {
		t.Fatal(err)
	}
	var log []traceRec
	place := rand.New(rand.NewSource(seed ^ 0x9e37))
	handlers := make([]tracingHandler, n)
	for i := 0; i < n; i++ {
		handlers[i] = tracingHandler{sched: sched, id: NodeID(i), log: &log}
		ch.AddRadio(geom.Point{X: place.Float64()*6 - 3, Y: place.Float64()*6 - 3}, &handlers[i])
	}
	ch.SetFullRebuild(fullRebuild)
	var seq int64
	for _, op := range ops {
		for _, m := range op.moves {
			ch.Radio(m.id).SetPos(m.pos)
		}
		seq++
		tx := ch.Radio(op.src)
		f := Frame{Type: Data, Src: tx.ID(), Dst: Broadcast, Bytes: 200, Seq: seq}
		if _, err := tx.Transmit(f, Directed(op.bearing, op.width)); err != nil {
			t.Fatal(err)
		}
		sched.RunAll()
	}
	return log
}

// TestMobilityChurnDifferential: across 4 seeds, the incremental index
// and the forced full rebuild must yield identical traces — same
// indications, at the same instants, in the same order.
func TestMobilityChurnDifferential(t *testing.T) {
	const n, rounds = 120, 150
	for _, seed := range []int64{1, 2, 3, 4} {
		ops := churnScript(seed, n, rounds)
		inc := runChurn(t, seed, n, ops, false)
		full := runChurn(t, seed, n, ops, true)
		if len(inc) != len(full) {
			t.Fatalf("seed %d: incremental trace has %d records, full rebuild %d", seed, len(inc), len(full))
		}
		for i := range inc {
			if inc[i] != full[i] {
				t.Fatalf("seed %d: trace diverges at record %d: incremental %+v, full rebuild %+v",
					seed, i, inc[i], full[i])
			}
		}
	}
}

// TestPartitionedSetPosFrozen: ConfigurePartitions freezes radio
// placement (the grid is read concurrently by every lane), so SetPos on
// a partitioned channel must panic instead of corrupting the index.
func TestPartitionedSetPosFrozen(t *testing.T) {
	sched := des.New(1)
	ch, err := NewChannel(sched, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var handlers [4]discardHandler
	for i := range handlers {
		ch.AddRadio(geom.Point{X: float64(i)}, &handlers[i])
	}
	if err := ch.ConfigurePartitions([]*des.Scheduler{sched}, []int32{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetPos on a partitioned channel did not panic")
		}
	}()
	ch.Radio(0).SetPos(geom.Point{X: 9})
}

// TestRebuildShrinksBuckets: a rebuild must release bucket capacity left
// over from a denser past — occupancy below 25% of capacity reallocates
// tight, and slots past the used range drop their backing arrays —
// otherwise the index permanently holds its historical peak.
func TestRebuildShrinksBuckets(t *testing.T) {
	sched := des.New(1)
	ch, err := NewChannel(sched, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var handlers [n]discardHandler
	for i := 0; i < n; i++ {
		ch.AddRadio(geom.Point{X: 0.5, Y: 0.5}, &handlers[i]) // one dense cell
	}
	ch.Neighbors(0) // build: slot 0 holds all 64 IDs
	if got := cap(ch.buckets[0]); got < n {
		t.Fatalf("dense bucket capacity %d, want >= %d", got, n)
	}
	// Scatter the radios over many cells and force a full rebuild.
	ch.SetFullRebuild(true)
	for i := 0; i < n; i++ {
		ch.Radio(NodeID(i)).SetPos(geom.Point{X: float64(i%8) * 3, Y: float64(i/8) * 3})
	}
	ch.Neighbors(0)
	for slot := 0; slot < ch.usedBuckets; slot++ {
		b := ch.buckets[slot]
		if cap(b) >= 8 && len(b)*4 < cap(b) {
			t.Fatalf("slot %d kept %d capacity for %d radios (>4x ballast)", slot, cap(b), len(b))
		}
	}
	for slot := ch.usedBuckets; slot < len(ch.buckets); slot++ {
		if ch.buckets[slot] != nil {
			t.Fatalf("unused slot %d retains a backing array (cap %d)", slot, cap(ch.buckets[slot]))
		}
	}
}
