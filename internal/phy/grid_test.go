package phy

// Tests for the channel's spatial index: the grid must agree with a
// brute-force all-pairs scan in every geometry, stay correct through
// mobility (lazy invalidation on SetPos), and keep steady-state delivery
// allocation-free.

import (
	"math/rand"
	"testing"

	"repro/internal/des"
	"repro/internal/geom"
)

// brutNeighbors is the reference all-pairs neighbor scan.
func brutNeighbors(c *Channel, id NodeID) []NodeID {
	self := c.Radio(id)
	r2 := c.Params().Range * c.Params().Range
	var out []NodeID
	for i := 0; i < c.NumRadios(); i++ {
		o := c.Radio(NodeID(i))
		if o.ID() != id && o.Pos().Dist2(self.Pos()) <= r2 {
			out = append(out, o.ID())
		}
	}
	return out
}

func sameIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGridNeighborsMatchBruteForce: random clouds at several scales and
// ranges, including positions straddling cell boundaries and negative
// coordinates.
func TestGridNeighborsMatchBruteForce(t *testing.T) {
	for _, rng0 := range []float64{0.3, 1.0, 2.5} {
		rng := rand.New(rand.NewSource(int64(rng0 * 100)))
		sched := des.New(1)
		p := DefaultParams()
		p.Range = rng0
		ch, err := NewChannel(sched, p)
		if err != nil {
			t.Fatal(err)
		}
		var handlers [60]discardHandler
		for i := 0; i < 60; i++ {
			pos := geom.Point{X: rng.Float64()*8 - 4, Y: rng.Float64()*8 - 4}
			ch.AddRadio(pos, &handlers[i])
		}
		for id := 0; id < 60; id++ {
			got := ch.Neighbors(NodeID(id))
			want := brutNeighbors(ch, NodeID(id))
			if !sameIDs(got, want) {
				t.Fatalf("range %v node %d: grid %v, brute force %v", rng0, id, got, want)
			}
		}
	}
}

// TestGridInvalidationOnSetPos: moving radios must invalidate the index;
// neighbor queries after each batch of moves see the new geometry.
func TestGridInvalidationOnSetPos(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sched := des.New(1)
	ch, err := NewChannel(sched, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var handlers [30]discardHandler
	for i := 0; i < 30; i++ {
		ch.AddRadio(geom.Point{X: rng.Float64() * 5, Y: rng.Float64() * 5}, &handlers[i])
	}
	for round := 0; round < 20; round++ {
		// Move a random subset, sometimes across many cells.
		for i := 0; i < 30; i++ {
			if rng.Intn(3) == 0 {
				ch.Radio(NodeID(i)).SetPos(geom.Point{X: rng.Float64()*10 - 5, Y: rng.Float64()*10 - 5})
			}
		}
		for id := 0; id < 30; id++ {
			got := ch.Neighbors(NodeID(id))
			want := brutNeighbors(ch, NodeID(id))
			if !sameIDs(got, want) {
				t.Fatalf("round %d node %d: grid %v, brute force %v", round, id, got, want)
			}
		}
	}
}

// countingHandler tallies deliveries.
type countingHandler struct {
	discardHandler
	frames int
	errors int
}

func (h *countingHandler) OnFrame(Frame) { h.frames++ }
func (h *countingHandler) OnFrameError() { h.errors++ }

// TestGriddedPropagationMatchesAllPairs: a transmission from every node
// in a multi-cell cloud must reach exactly the in-range, in-beam set the
// seed implementation's full scan reached.
func TestGriddedPropagationMatchesAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sched := des.New(1)
	p := DefaultParams()
	p.Range = 0.8
	ch, err := NewChannel(sched, p)
	if err != nil {
		t.Fatal(err)
	}
	n := 40
	handlers := make([]countingHandler, n)
	for i := 0; i < n; i++ {
		ch.AddRadio(geom.Point{X: rng.Float64()*4 - 2, Y: rng.Float64()*4 - 2}, &handlers[i])
	}
	for src := 0; src < n; src++ {
		for i := range handlers {
			handlers[i].frames = 0
		}
		tx := ch.Radio(NodeID(src))
		mode := Directed(rng.Float64()*6-3, 1.2)
		if _, err := tx.Transmit(Frame{Type: Data, Src: tx.ID(), Dst: Broadcast, Bytes: 100}, mode); err != nil {
			t.Fatal(err)
		}
		sched.RunAll()
		for i := range handlers {
			want := 0
			if NodeID(i) != tx.ID() &&
				ch.Radio(NodeID(i)).Pos().Dist2(tx.Pos()) <= p.Range*p.Range &&
				mode.Covers(tx.Pos().Bearing(ch.Radio(NodeID(i)).Pos())) {
				want = 1
			}
			if handlers[i].frames != want {
				t.Fatalf("src %d -> node %d: delivered %d, want %d", src, i, handlers[i].frames, want)
			}
		}
	}
}

// TestBroadcastAllocFree: once the channel pools are warm, an omni
// broadcast into a dense neighborhood schedules all its delivery events
// without allocating.
func TestBroadcastAllocFree(t *testing.T) {
	sched := des.New(1)
	ch, err := NewChannel(sched, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var handlers [17]discardHandler
	tx := ch.AddRadio(geom.Point{}, &handlers[0])
	for i := 1; i < 17; i++ {
		ch.AddRadio(geom.Polar(geom.Point{}, 0.9, float64(i)), &handlers[i])
	}
	warm := func() {
		if _, err := tx.Transmit(Frame{Type: Data, Bytes: 1460}, Omni); err != nil {
			t.Fatal(err)
		}
		sched.RunAll()
	}
	warm()
	allocs := testing.AllocsPerRun(50, warm)
	if allocs != 0 {
		t.Errorf("steady-state broadcast allocates %v per op, want 0", allocs)
	}
}

// discardHandler is a no-op PHY handler.
type discardHandler struct{}

func (discardHandler) OnCarrierBusy() {}
func (discardHandler) OnCarrierIdle() {}
func (discardHandler) OnFrame(Frame)  {}
func (discardHandler) OnFrameError()  {}
func (discardHandler) OnTxDone()      {}
