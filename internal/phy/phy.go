// Package phy models the physical layer of a single-channel ad hoc
// network with directional transmit antennas and omni-directional
// reception, following the assumptions of the paper (Section 2):
//
//   - equal transmit range R for omni and directional transmissions
//     (equal gain via power control);
//   - complete attenuation outside the transmit beam: a node hears a
//     frame only if it is within range AND inside the sender's beam;
//   - omni-directional reception: any two time-overlapping signals heard
//     by a node corrupt each other (no capture, unless the capture
//     ablation is enabled);
//   - half-duplex radios that are deaf while transmitting;
//   - fixed propagation delay between all pairs in range.
package phy

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/telemetry"
)

// Metrics holds optional telemetry counters for channel-level frame
// accounting. Every field may be nil — counting on a nil instrument is
// a no-op, so the instrumented hot path pays only a nil check when
// telemetry is disabled.
type Metrics struct {
	// TxFrames counts every frame put on the air, network-wide.
	TxFrames *telemetry.Counter
	// RxFrames counts every frame successfully decoded by some radio
	// (one transmission can be decoded by many receivers).
	RxFrames *telemetry.Counter
	// RxErrors counts garbled receptions (collision damage observed at a
	// radio).
	RxErrors *telemetry.Counter
}

// NodeID identifies a radio in the network. IDs are dense and start at 0.
type NodeID int

// Broadcast is the destination for frames addressed to every neighbor.
const Broadcast NodeID = -1

// FrameType enumerates the MAC frame types carried by the channel.
type FrameType int

// Frame types used by the 802.11-style MAC and the neighbor protocol.
const (
	RTS FrameType = iota + 1
	CTS
	Data
	ACK
	Hello
)

var frameTypeNames = map[FrameType]string{
	RTS:   "RTS",
	CTS:   "CTS",
	Data:  "DATA",
	ACK:   "ACK",
	Hello: "HELLO",
}

// String returns the conventional frame-type name.
func (ft FrameType) String() string {
	if n, ok := frameTypeNames[ft]; ok {
		return n
	}
	return fmt.Sprintf("FrameType(%d)", int(ft))
}

// Frame is a MAC frame in flight. Bytes is the on-air size used to compute
// airtime; NAV is the duration-field value receivers use for virtual
// carrier sensing.
type Frame struct {
	Type  FrameType
	Src   NodeID
	Dst   NodeID
	Bytes int
	NAV   des.Time
	Seq   int64
	// Payload carries protocol data that a real frame would serialize
	// (e.g. the sender position in a HELLO beacon). It does not affect
	// airtime; Bytes does.
	Payload any
}

// Mode describes the antenna configuration of one transmission. The zero
// value is an omni-directional transmission.
type Mode struct {
	Directional bool
	Bearing     float64 // radians, toward the intended receiver
	Beamwidth   float64 // radians, total width of the cone
}

// Omni is the omni-directional transmission mode.
var Omni = Mode{}

// Directed returns a directional mode aimed at bearing with the given
// beamwidth.
func Directed(bearing, beamwidth float64) Mode {
	return Mode{Directional: true, Bearing: bearing, Beamwidth: beamwidth}
}

// Covers reports whether a transmission in this mode reaches direction dir.
func (m Mode) Covers(dir float64) bool {
	if !m.Directional {
		return true
	}
	return geom.WithinBeam(m.Bearing, m.Beamwidth, dir)
}

// Params configures the channel. DefaultParams matches Table 1 of the
// paper (DSSS at 2 Mb/s).
type Params struct {
	// BitRate is the raw channel rate in bits per second.
	BitRate int64
	// SyncTime is the PLCP preamble+header time prepended to every frame.
	SyncTime des.Time
	// PropDelay is the fixed propagation delay between any pair in range.
	PropDelay des.Time
	// Range is the transmission/reception radius R (same length unit as
	// node positions).
	Range float64
	// Capture, when true, enables the ablation receiver: an already
	// locked-on signal survives later-starting overlaps (the newcomer is
	// lost instead of both). The paper's model uses Capture=false.
	Capture bool
	// SINRThreshold, when positive, replaces the overlap-collision
	// receiver with a physical signal-to-interference-plus-noise model:
	// received power is TxGain/d^PathLoss (transmit power 1, directional
	// gain 2π/θ by energy conservation — the paper's footnote 2), and a
	// frame decodes only while its power stays at least SINRThreshold
	// times the sum of NoiseFloor and all other heard signal powers.
	// Strong frames therefore capture over weak interferers, and narrow
	// beams buy SNR headroom against the noise floor.
	SINRThreshold float64
	// PathLoss is the path-loss exponent α (used when SINRThreshold > 0;
	// typical values 2–4).
	PathLoss float64
	// NoiseFloor is the constant noise power (same units as the unit
	// transmit power; used when SINRThreshold > 0).
	NoiseFloor float64
	// NAVOracle, when true, delivers frame headers (as NAV hints, not
	// energy) to every in-range radio even outside the transmit beam.
	// This ablation separates "directional schemes win by reduced waiting"
	// from "directional schemes win by spatial reuse": with the oracle,
	// out-of-beam neighbors defer exactly as they would under
	// omni-directional transmissions, but the interference footprint
	// stays directional.
	NAVOracle bool
}

// DefaultParams returns the paper's Table 1 channel configuration with a
// transmission range of 1.0 distance unit.
func DefaultParams() Params {
	return Params{
		BitRate:   2_000_000,
		SyncTime:  192 * des.Microsecond,
		PropDelay: 1 * des.Microsecond,
		Range:     1.0,
	}
}

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if p.BitRate <= 0 {
		return fmt.Errorf("phy: bit rate must be positive, got %d", p.BitRate)
	}
	if p.SyncTime < 0 || p.PropDelay < 0 {
		return fmt.Errorf("phy: sync time and propagation delay must be non-negative")
	}
	if p.Range <= 0 {
		return fmt.Errorf("phy: range must be positive, got %v", p.Range)
	}
	if p.SINRThreshold > 0 {
		if p.PathLoss < 1 {
			return fmt.Errorf("phy: SINR mode needs a path-loss exponent >= 1, got %v", p.PathLoss)
		}
		if p.NoiseFloor < 0 {
			return fmt.Errorf("phy: noise floor must be non-negative, got %v", p.NoiseFloor)
		}
	}
	return nil
}

// sinr reports whether the physical SINR receiver model is enabled.
func (p Params) sinr() bool { return p.SINRThreshold > 0 }

// Gain returns the transmit antenna gain of mode m under the SINR model:
// 1 for omni, 2π/θ for a cone of width θ (energy conservation).
func (m Mode) Gain() float64 {
	if !m.Directional || m.Beamwidth <= 0 || m.Beamwidth >= 2*math.Pi {
		return 1
	}
	return 2 * math.Pi / m.Beamwidth
}

// Airtime returns the on-air duration of a frame of the given byte size:
// sync preamble plus serialization at the channel bit rate.
func (p Params) Airtime(bytes int) des.Time {
	bits := int64(bytes) * 8
	return p.SyncTime + des.Time(bits*int64(des.Second)/p.BitRate)
}

// Handler receives PHY indications. All callbacks run on the scheduler
// goroutine. Carrier callbacks are edge-triggered for a non-transmitting
// radio; after a transmission ends the MAC should re-query CarrierBusy
// because transitions during its own transmission are not delivered.
type Handler interface {
	// OnCarrierBusy fires when heard energy appears at an idle radio.
	OnCarrierBusy()
	// OnCarrierIdle fires when the last heard signal ends and the radio is
	// not transmitting.
	OnCarrierIdle()
	// OnFrame delivers a successfully decoded frame (regardless of
	// addressing; filtering is the MAC's job).
	OnFrame(f Frame)
	// OnFrameError fires when garbled energy ends (collision damage);
	// 802.11 uses this for EIFS.
	OnFrameError()
	// OnTxDone fires when this radio's own transmission leaves the air.
	OnTxDone()
}

// NAVHinter is an optional Handler extension. When the channel runs with
// Params.NAVOracle, radios that are in range of a directional
// transmission but outside its beam receive the frame header through
// OnNAVHint at the time the frame ends, without any energy having been
// sensed.
type NAVHinter interface {
	OnNAVHint(f Frame)
}

// signal is one transmission as perceived by one receiver.
type signal struct {
	frame     Frame
	power     float64 // received power under the SINR model
	corrupted bool
	missed    bool // receiver was deaf (transmitting) during part of it
}

// Radio is one node's half-duplex transceiver attached to a Channel.
type Radio struct {
	id      NodeID
	pos     geom.Point
	cell    cellKey // grid cell handle; valid while the index is built
	ch      *Channel
	lane    *lane // owning partition; lanes[0] unless partitioned
	handler Handler

	transmitting bool
	active       []*signal // signals currently on the air at this radio
	txDone       txDoneEvent
}

// ID returns the radio's node ID.
func (r *Radio) ID() NodeID { return r.id }

// ChannelParams returns the configuration of the channel this radio is
// attached to.
func (r *Radio) ChannelParams() Params { return r.ch.params }

// Pos returns the radio's current position.
func (r *Radio) Pos() geom.Point { return r.pos }

// SetPos moves the radio (mobility support). Propagation decisions use
// positions as of each transmission's start; a frame already in flight is
// unaffected by later movement (quasi-static per frame). The spatial
// index absorbs the move incrementally: only the source and destination
// cell buckets are touched, so mobility churn costs O(moved) radios, not
// a full reindex (DESIGN.md §15). Moving a radio on a partitioned
// channel panics — ConfigurePartitions freezes placement because the
// grid is read concurrently by every lane.
func (r *Radio) SetPos(p geom.Point) {
	c := r.ch
	if c.frozen {
		panic("phy: SetPos on a partitioned channel (placement is frozen by ConfigurePartitions)")
	}
	r.pos = p
	if c.gridDirty || c.fullRebuild {
		// No valid cell handles to migrate between; fall back to the
		// all-or-nothing rebuild on the next gather.
		c.gridDirty = true
		return
	}
	if k := c.cellOf(p); k != r.cell {
		c.migrate(r, k)
	}
}

// Transmitting reports whether the radio is currently transmitting.
func (r *Radio) Transmitting() bool { return r.transmitting }

// CarrierBusy reports whether any signal energy is currently arriving.
// The value is only physically meaningful when the radio is not
// transmitting (a transmitting radio cannot sense the channel).
func (r *Radio) CarrierBusy() bool { return len(r.active) > 0 }

// ErrTxBusy is returned when Transmit is called on a radio that is
// already transmitting.
var ErrTxBusy = fmt.Errorf("phy: radio already transmitting")

// Transmit puts frame f on the air with antenna mode m and returns the
// frame's airtime. OnTxDone fires on the handler when the transmission
// ends. Reception at each in-range, in-beam radio starts after the
// propagation delay.
//
//desalint:hotpath
func (r *Radio) Transmit(f Frame, m Mode) (des.Time, error) {
	if r.transmitting {
		return 0, ErrTxBusy
	}
	r.transmitting = true
	// Our own transmission stomps anything we were receiving.
	for _, sig := range r.active {
		sig.missed = true
	}
	airtime := r.ch.params.Airtime(f.Bytes)
	l := r.lane
	l.txTime[f.Type] += airtime
	l.txCount[f.Type]++
	r.ch.metrics.TxFrames.Inc()
	r.ch.propagate(r, f, m, airtime)
	l.sched.ScheduleEvent(airtime, &r.txDone)
	return airtime, nil
}

// txDoneEvent signals the end of a radio's own transmission. Each radio
// embeds one — a half-duplex radio has at most one transmission in
// flight, so the event needs no pooling and no allocation.
type txDoneEvent struct {
	r *Radio
}

// Fire completes the transmission and notifies the MAC.
//
//desalint:hotpath
func (e *txDoneEvent) Fire() {
	e.r.transmitting = false
	e.r.handler.OnTxDone()
}

// signalStart registers an arriving signal at this radio.
//
//desalint:hotpath
func (r *Radio) signalStart(sig *signal) {
	if r.transmitting {
		sig.missed = true
	}
	switch {
	case r.ch.params.sinr():
		r.sinrArrival(sig)
	case len(r.active) > 0:
		// Overlap. Without capture, everyone is damaged; with capture the
		// established signal survives and only the newcomer is lost.
		sig.corrupted = true
		if !r.ch.params.Capture {
			for _, other := range r.active {
				other.corrupted = true
			}
		}
	}
	r.active = append(r.active, sig)
	if len(r.active) == 1 && !r.transmitting {
		r.handler.OnCarrierBusy()
	}
}

// sinrArrival applies the physical receiver model when sig starts: every
// signal whose power no longer clears the threshold against noise plus
// all other heard power is (irreversibly) damaged. Power levels are
// constant per signal, so checking at each arrival covers all overlap
// intervals.
//
//desalint:hotpath
func (r *Radio) sinrArrival(sig *signal) {
	p := r.ch.params
	total := p.NoiseFloor + sig.power
	for _, other := range r.active {
		total += other.power
	}
	if interference := total - sig.power; sig.power < p.SINRThreshold*interference {
		sig.corrupted = true
	}
	for _, other := range r.active {
		if interference := total - other.power; other.power < p.SINRThreshold*interference {
			other.corrupted = true
		}
	}
}

// signalEnd completes an arriving signal: deliver, report error, or drop.
//
//desalint:hotpath
func (r *Radio) signalEnd(sig *signal) {
	for i, s := range r.active {
		if s == sig {
			r.active = append(r.active[:i], r.active[i+1:]...)
			break
		}
	}
	// A signal ending while we transmit was missed in its entirety or tail.
	if r.transmitting {
		sig.missed = true
	}
	switch {
	case sig.missed:
		// The radio never perceived this signal; nothing to report.
	case sig.corrupted:
		r.ch.metrics.RxErrors.Inc()
		r.handler.OnFrameError()
	default:
		r.ch.metrics.RxFrames.Inc()
		r.handler.OnFrame(sig.frame)
	}
	if len(r.active) == 0 && !r.transmitting {
		r.handler.OnCarrierIdle()
	}
}

// Channel connects radios on a shared single-frequency medium.
//
// Delivery uses a uniform spatial grid with cell size equal to the
// transmission range: every radio a transmission can reach lies in the
// sender's cell or one of its eight neighbors, so propagation visits a
// handful of candidates instead of scanning the whole network. The grid
// is built lazily after AddRadio; once built, SetPos migrates the moved
// radio between its source and destination cell buckets in place, so a
// burst of mobility updates costs O(moved) bucket edits, not a reindex
// of every radio (DESIGN.md §15).
type Channel struct {
	sched  *des.Scheduler
	params Params
	radios []*Radio

	// lanes hold the per-partition execution contexts (scheduler, object
	// pools, airtime accounting, cross-partition outbox). The sequential
	// kernel runs entirely on lanes[0]; see partition.go.
	lanes   []*lane
	metrics Metrics

	// Spatial index: cell -> slot in buckets; buckets hold radio IDs in
	// ascending order (deterministic delivery order). Moves migrate a
	// radio between its source and destination buckets (swap-remove plus
	// append); a touched bucket whose internal order broke is flagged in
	// bucketDirty and re-sorted lazily by the next gather that reads it.
	// Bucket storage is reused across rebuilds and migrations; emptied
	// buckets park their slots on freeSlots.
	cells       map[cellKey]int
	buckets     [][]int32
	bucketDirty []bool
	freeSlots   []int
	usedBuckets int
	gridDirty   bool
	fullRebuild bool
	// frozen marks a partitioned channel: the grid is read concurrently
	// by every lane, so radio placement must not change
	// (ConfigurePartitions sets it; SetPos panics).
	frozen bool
}

// cellKey addresses one grid cell (position divided by range, floored).
type cellKey struct {
	x, y int32
}

// cellOf maps a position to its grid cell.
func (c *Channel) cellOf(p geom.Point) cellKey {
	inv := 1 / c.params.Range
	return cellKey{x: int32(math.Floor(p.X * inv)), y: int32(math.Floor(p.Y * inv))}
}

// rebuildGrid reindexes every radio and refreshes the cell handles.
// Buckets fill in radio-ID order, so each stays sorted without an
// explicit sort. Backing arrays are reused, except that a bucket whose
// occupancy fell below 25% of its capacity is reallocated tight and
// slots past the used range are released — otherwise bucket storage
// grows to the largest-ever occupancy and stays there, which is
// permanent ballast at large N.
func (c *Channel) rebuildGrid() {
	for i := 0; i < c.usedBuckets; i++ {
		c.buckets[i] = c.buckets[i][:0]
	}
	if c.cells == nil {
		c.cells = make(map[cellKey]int, len(c.radios))
	} else {
		clear(c.cells)
	}
	c.usedBuckets = 0
	c.freeSlots = c.freeSlots[:0]
	for _, r := range c.radios {
		k := c.cellOf(r.pos)
		r.cell = k
		slot, ok := c.cells[k]
		if !ok {
			if c.usedBuckets == len(c.buckets) {
				c.buckets = append(c.buckets, nil)
			}
			slot = c.usedBuckets
			c.usedBuckets++
			c.cells[k] = slot
		}
		c.buckets[slot] = append(c.buckets[slot], int32(r.id))
	}
	for i := 0; i < c.usedBuckets; i++ {
		if b := c.buckets[i]; cap(b) >= 8 && len(b)*4 < cap(b) {
			c.buckets[i] = append(make([]int32, 0, len(b)), b...)
		}
	}
	for i := c.usedBuckets; i < len(c.buckets); i++ {
		c.buckets[i] = nil
	}
	if cap(c.bucketDirty) < len(c.buckets) {
		c.bucketDirty = make([]bool, len(c.buckets))
	} else {
		c.bucketDirty = c.bucketDirty[:len(c.buckets)]
		clear(c.bucketDirty)
	}
	c.gridDirty = false
}

// migrate moves radio r (whose position is already updated) from the
// bucket of its current cell handle into the bucket of cell k. The
// source bucket uses swap-remove — O(1), order restored lazily — and
// the destination appends; only these two buckets are touched, so a
// burst of mobility costs O(moved) rather than a full reindex.
//
//desalint:hotpath
func (c *Channel) migrate(r *Radio, k cellKey) {
	id := int32(r.id)
	oldSlot := c.cells[r.cell]
	b := c.buckets[oldSlot]
	idx := -1
	if c.bucketDirty[oldSlot] {
		for i, v := range b {
			if v == id {
				idx = i
				break
			}
		}
	} else if i, ok := slices.BinarySearch(b, id); ok {
		idx = i
	}
	last := len(b) - 1
	if idx != last {
		b[idx] = b[last]
		c.bucketDirty[oldSlot] = true
	}
	c.buckets[oldSlot] = b[:last]
	if last == 0 {
		delete(c.cells, r.cell)
		c.freeSlots = append(c.freeSlots, oldSlot)
		c.bucketDirty[oldSlot] = false
	}

	slot, ok := c.cells[k]
	if !ok {
		if n := len(c.freeSlots); n > 0 {
			slot = c.freeSlots[n-1]
			c.freeSlots = c.freeSlots[:n-1]
		} else {
			if c.usedBuckets == len(c.buckets) {
				c.buckets = append(c.buckets, nil)
				c.bucketDirty = append(c.bucketDirty, false)
			}
			slot = c.usedBuckets
			c.usedBuckets++
		}
		c.cells[k] = slot
	}
	nb := c.buckets[slot]
	if len(nb) > 0 && nb[len(nb)-1] > id {
		c.bucketDirty[slot] = true
	}
	c.buckets[slot] = append(nb, id)
	r.cell = k
}

// gather collects the IDs of every radio in the 3×3 cell block around
// pos into lane l's scratch buffer, sorted ascending so delivery order
// matches a full ID-order scan bit for bit. The grid itself is shared
// across lanes but frozen before partitioned execution starts (no
// mobility under partitioning), so concurrent gathers only read it.
//
//desalint:hotpath
func (c *Channel) gather(l *lane, pos geom.Point) []int32 {
	if c.gridDirty {
		c.rebuildGrid()
	}
	center := c.cellOf(pos)
	out := l.scratch[:0]
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			if slot, ok := c.cells[cellKey{x: center.x + dx, y: center.y + dy}]; ok {
				if c.bucketDirty[slot] {
					// Restore the per-bucket sorted order broken by a
					// migration's swap-remove or append. Only ever true on
					// the sequential kernel: a partitioned channel rebuilds
					// (clearing every flag) and then freezes placement, so
					// concurrent gathers never write.
					slices.Sort(c.buckets[slot])
					c.bucketDirty[slot] = false
				}
				out = append(out, c.buckets[slot]...)
			}
		}
	}
	slices.Sort(out)
	l.scratch = out
	return out
}

// allocSignal takes a recycled signal or makes a new one.
//
//desalint:hotpath
func (l *lane) allocSignal(f Frame, power float64) *signal {
	if n := len(l.freeSigs); n > 0 {
		sig := l.freeSigs[n-1]
		l.freeSigs = l.freeSigs[:n-1]
		*sig = signal{frame: f, power: power}
		return sig
	}
	return &signal{frame: f, power: power}
}

// sigEvent delivers one signal edge (start or end) to one radio. Events
// are pooled on the receiver's lane; an event recycles itself after
// firing, and the end edge also recycles its signal (nothing references
// a signal after signalEnd).
type sigEvent struct {
	lane *lane
	dst  *Radio
	sig  *signal
	end  bool
}

// Fire dispatches the signal edge and returns the event (and, on the end
// edge, the signal) to the lane pools.
//
//desalint:hotpath
func (e *sigEvent) Fire() {
	if e.end {
		e.dst.signalEnd(e.sig)
		e.lane.freeSigs = append(e.lane.freeSigs, e.sig)
	} else {
		e.dst.signalStart(e.sig)
	}
	e.sig = nil
	e.dst = nil
	e.lane.freeEvents = append(e.lane.freeEvents, e)
}

// allocEvent takes a recycled delivery event or makes a new one.
//
//desalint:hotpath
func (l *lane) allocEvent(dst *Radio, sig *signal, end bool) *sigEvent {
	if n := len(l.freeEvents); n > 0 {
		e := l.freeEvents[n-1]
		l.freeEvents = l.freeEvents[:n-1]
		e.dst, e.sig, e.end = dst, sig, end
		return e
	}
	return &sigEvent{lane: l, dst: dst, sig: sig, end: end}
}

// navHintEvent delivers an out-of-beam frame header under the NAV-oracle
// ablation.
type navHintEvent struct {
	lane  *lane
	dst   *Radio
	frame Frame
}

// Fire hands the header to the destination's NAVHinter, if implemented.
//
//desalint:hotpath
func (e *navHintEvent) Fire() {
	if h, ok := e.dst.handler.(NAVHinter); ok {
		h.OnNAVHint(e.frame)
	}
	e.dst = nil
	e.frame = Frame{}
	e.lane.freeHints = append(e.lane.freeHints, e)
}

// allocHint takes a recycled NAV-hint event or makes a new one.
//
//desalint:hotpath
func (l *lane) allocHint(dst *Radio, f Frame) *navHintEvent {
	if n := len(l.freeHints); n > 0 {
		e := l.freeHints[n-1]
		l.freeHints = l.freeHints[:n-1]
		e.dst, e.frame = dst, f
		return e
	}
	return &navHintEvent{lane: l, dst: dst, frame: f}
}

// NewChannel creates a channel driven by the given scheduler.
func NewChannel(sched *des.Scheduler, params Params) (*Channel, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Channel{
		sched:  sched,
		params: params,
		lanes:  []*lane{newLane(sched)},
	}, nil
}

// Params returns the channel configuration.
func (c *Channel) Params() Params { return c.params }

// SetFullRebuild forces the all-or-nothing reindex strategy: every
// SetPos marks the whole index dirty and the next gather rebuilds it
// from scratch, instead of migrating the moved radio between its source
// and destination cells. Incremental migration is the default; the
// forced mode exists for the differential mobility tests and the
// mobility-churn benchmark baseline.
func (c *Channel) SetFullRebuild(v bool) { c.fullRebuild = v }

// SetMetrics installs telemetry counters for the channel's frame
// accounting. The zero Metrics value (all nil) disables them.
func (c *Channel) SetMetrics(m Metrics) { c.metrics = m }

// AddRadio attaches a new radio at pos. IDs are assigned densely in
// attachment order. The handler must be non-nil before the first event
// fires; it may be set later via SetHandler to break construction cycles.
func (c *Channel) AddRadio(pos geom.Point, handler Handler) *Radio {
	r := &Radio{id: NodeID(len(c.radios)), pos: pos, ch: c, lane: c.lanes[0], handler: handler}
	r.txDone.r = r
	c.radios = append(c.radios, r)
	c.gridDirty = true
	return r
}

// AddRadios attaches one handler-less radio per position (IDs assigned
// densely in slice order) from a single batched backing array — the
// large-N assembly path, costing O(1) allocations for the whole batch
// instead of one heap object per radio. Handlers are attached afterwards
// via SetHandler, before the first event fires.
func (c *Channel) AddRadios(positions []geom.Point) {
	backing := make([]Radio, len(positions))
	c.radios = slices.Grow(c.radios, len(positions))
	for i, pos := range positions {
		r := &backing[i]
		r.id = NodeID(len(c.radios))
		r.pos = pos
		r.ch = c
		r.lane = c.lanes[0]
		r.txDone.r = r
		c.radios = append(c.radios, r)
	}
	c.gridDirty = true
}

// SetHandler installs the MAC handler for a radio.
func (r *Radio) SetHandler(h Handler) { r.handler = h }

// Radio returns the radio with the given ID, or nil.
func (c *Channel) Radio(id NodeID) *Radio {
	if id < 0 || int(id) >= len(c.radios) {
		return nil
	}
	return c.radios[id]
}

// NumRadios returns the number of attached radios.
func (c *Channel) NumRadios() int { return len(c.radios) }

// TxAirtime returns the cumulative on-air time of all transmissions of
// the given frame type across the whole network. Because transmissions
// overlap in space, the sum over types can exceed elapsed time — the
// ratio Σ TxAirtime / elapsed is the network's spatial-reuse factor.
// Accounting is kept per lane; getters sum over lanes (only valid
// outside execution windows).
func (c *Channel) TxAirtime(ft FrameType) des.Time {
	var total des.Time
	for _, l := range c.lanes {
		total += l.txTime[ft]
	}
	return total
}

// TxCount returns how many frames of the given type went on the air.
func (c *Channel) TxCount(ft FrameType) int64 {
	var total int64
	for _, l := range c.lanes {
		total += l.txCount[ft]
	}
	return total
}

// TotalTxAirtime sums TxAirtime over every frame type.
func (c *Channel) TotalTxAirtime() des.Time {
	var total des.Time
	for _, l := range c.lanes {
		//desalint:commutative integer sum over des.Time; addition is order-independent
		for _, t := range l.txTime {
			total += t
		}
	}
	return total
}

// Neighbors returns the IDs of all radios within range of id, in ID order.
func (c *Channel) Neighbors(id NodeID) []NodeID {
	if c.Radio(id) == nil {
		return nil
	}
	return c.NeighborsAppend(id, nil)
}

// NeighborsAppend appends the IDs of all radios within range of id to
// dst (in ID order) and returns the extended slice. Passing a reused
// buffer keeps bulk queries — one per node at build time — free of
// per-call allocations. The result must be consumed before the next
// gather on the channel (it is built from lane 0's scratch walk).
func (c *Channel) NeighborsAppend(id NodeID, dst []NodeID) []NodeID {
	self := c.Radio(id)
	if self == nil {
		return dst
	}
	r2 := c.params.Range * c.params.Range
	for _, cand := range c.gather(c.lanes[0], self.pos) {
		o := c.radios[cand]
		if o.id != id && o.pos.Dist2(self.pos) <= r2 {
			dst = append(dst, o.id)
		}
	}
	return dst
}

// propagate schedules signal start/end at every radio that hears the
// transmission: in range, inside the beam, and not the sender itself.
// Candidates come from the spatial grid (the sender's cell block), and
// the received-power computation is deferred until after the beam check —
// out-of-beam neighbors never pay for a math.Pow. Receivers in another
// lane get their deliveries staged on the source lane's outbox instead
// of scheduled directly; FlushCross routes them between windows.
//
//desalint:hotpath
func (c *Channel) propagate(src *Radio, f Frame, m Mode, airtime des.Time) {
	l := src.lane
	r2 := c.params.Range * c.params.Range
	now := l.sched.Now()
	for _, cand := range c.gather(l, src.pos) {
		dst := c.radios[cand]
		if dst.id == src.id {
			continue
		}
		if dst.pos.Dist2(src.pos) > r2 {
			continue
		}
		if !m.Covers(src.pos.Bearing(dst.pos)) {
			if c.params.NAVOracle {
				if dst.lane == l {
					l.sched.ScheduleEvent(c.params.PropDelay+airtime, l.allocHint(dst, f))
				} else {
					l.stage(dst, f, 0, now+c.params.PropDelay+airtime, 0, true)
				}
			}
			continue
		}
		power := 0.0
		if c.params.sinr() {
			d := src.pos.Dist(dst.pos)
			if d < 1e-6 {
				d = 1e-6
			}
			power = m.Gain() / math.Pow(d, c.params.PathLoss)
		}
		if dst.lane != l {
			l.stage(dst, f, power, now+c.params.PropDelay, now+c.params.PropDelay+airtime, false)
			continue
		}
		sig := l.allocSignal(f, power)
		l.sched.ScheduleEvent(c.params.PropDelay, l.allocEvent(dst, sig, false))
		l.sched.ScheduleEvent(c.params.PropDelay+airtime, l.allocEvent(dst, sig, true))
	}
}
