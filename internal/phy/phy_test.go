package phy

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/geom"
)

// recorder is a Handler fixture that logs every PHY indication.
type recorder struct {
	busy, idle, errs, txdone int
	frames                   []Frame
	events                   []string
	sched                    *des.Scheduler
}

func (r *recorder) OnCarrierBusy() { r.busy++; r.events = append(r.events, "busy") }
func (r *recorder) OnCarrierIdle() { r.idle++; r.events = append(r.events, "idle") }
func (r *recorder) OnFrame(f Frame) {
	r.frames = append(r.frames, f)
	r.events = append(r.events, "frame")
}
func (r *recorder) OnFrameError() { r.errs++; r.events = append(r.events, "err") }
func (r *recorder) OnTxDone()     { r.txdone++; r.events = append(r.events, "txdone") }

// rig builds a channel with one radio per position and a recorder each.
func rig(t *testing.T, params Params, positions ...geom.Point) (*des.Scheduler, *Channel, []*Radio, []*recorder) {
	t.Helper()
	sched := des.New(1)
	ch, err := NewChannel(sched, params)
	if err != nil {
		t.Fatal(err)
	}
	radios := make([]*Radio, len(positions))
	recs := make([]*recorder, len(positions))
	for i, pos := range positions {
		recs[i] = &recorder{sched: sched}
		radios[i] = ch.AddRadio(pos, recs[i])
	}
	return sched, ch, radios, recs
}

func TestAirtime(t *testing.T) {
	p := DefaultParams()
	tests := []struct {
		bytes int
		want  des.Time
	}{
		{1460, 192*des.Microsecond + 5840*des.Microsecond}, // paper's data frame
		{20, 192*des.Microsecond + 80*des.Microsecond},     // RTS
		{14, 192*des.Microsecond + 56*des.Microsecond},     // CTS/ACK
		{0, 192 * des.Microsecond},
	}
	for _, tt := range tests {
		if got := p.Airtime(tt.bytes); got != tt.want {
			t.Errorf("Airtime(%d) = %v, want %v", tt.bytes, got, tt.want)
		}
	}
}

func TestFrameTypeString(t *testing.T) {
	tests := []struct {
		ft   FrameType
		want string
	}{
		{RTS, "RTS"}, {CTS, "CTS"}, {Data, "DATA"}, {ACK, "ACK"}, {Hello, "HELLO"},
		{FrameType(42), "FrameType(42)"},
	}
	for _, tt := range tests {
		if got := tt.ft.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
	bad := []Params{
		{BitRate: 0, Range: 1},
		{BitRate: 2e6, Range: 0},
		{BitRate: 2e6, Range: 1, SyncTime: -1},
		{BitRate: 2e6, Range: 1, PropDelay: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d validated", i)
		}
	}
	if _, err := NewChannel(des.New(1), Params{}); err == nil {
		t.Error("NewChannel should reject invalid params")
	}
}

func TestOmniDelivery(t *testing.T) {
	sched, _, radios, recs := rig(t, DefaultParams(),
		geom.Point{X: 0, Y: 0},   // sender
		geom.Point{X: 0.5, Y: 0}, // in range
		geom.Point{X: 2, Y: 0},   // out of range
	)
	f := Frame{Type: RTS, Src: 0, Dst: 1, Bytes: 20, Seq: 7}
	air, err := radios[0].Transmit(f, Omni)
	if err != nil {
		t.Fatal(err)
	}
	if want := DefaultParams().Airtime(20); air != want {
		t.Errorf("airtime = %v, want %v", air, want)
	}
	sched.RunAll()
	if len(recs[1].frames) != 1 || recs[1].frames[0].Seq != 7 {
		t.Errorf("in-range receiver frames = %+v, want one with Seq 7", recs[1].frames)
	}
	if len(recs[2].frames) != 0 {
		t.Errorf("out-of-range receiver got %d frames, want 0", len(recs[2].frames))
	}
	if recs[0].txdone != 1 {
		t.Errorf("sender txdone = %d, want 1", recs[0].txdone)
	}
	if len(recs[0].frames) != 0 {
		t.Error("sender must not hear its own frame")
	}
	// Receiver saw busy then idle.
	if recs[1].busy != 1 || recs[1].idle != 1 {
		t.Errorf("receiver carrier events busy=%d idle=%d, want 1/1", recs[1].busy, recs[1].idle)
	}
}

func TestDirectionalBeamFiltering(t *testing.T) {
	// Sender at origin aims east with a 60° beam. The eastern node hears,
	// the northern node does not.
	sched, _, radios, recs := rig(t, DefaultParams(),
		geom.Point{X: 0, Y: 0},
		geom.Point{X: 0.9, Y: 0},   // east: inside beam
		geom.Point{X: 0, Y: 0.9},   // north: outside beam
		geom.Point{X: 0.6, Y: 0.2}, // slightly off-axis: inside 60° beam (~18.4°)
	)
	f := Frame{Type: Data, Src: 0, Dst: 1, Bytes: 100}
	if _, err := radios[0].Transmit(f, Directed(0, geom.NormalizeAngle(1.0472))); err != nil { // 60°
		t.Fatal(err)
	}
	sched.RunAll()
	if len(recs[1].frames) != 1 {
		t.Error("east node should hear the directional frame")
	}
	if len(recs[2].frames) != 0 || recs[2].busy != 0 {
		t.Error("north node must neither decode nor sense the directional frame")
	}
	if len(recs[3].frames) != 1 {
		t.Error("off-axis node within the beam should hear the frame")
	}
}

func TestCollisionNoCapture(t *testing.T) {
	// Two hidden senders (2.0 apart, out of each other's range) overlap at
	// the middle receiver: both frames corrupted, one error per signal end.
	sched, _, radios, recs := rig(t, DefaultParams(),
		geom.Point{X: -1, Y: 0},
		geom.Point{X: 1, Y: 0},
		geom.Point{X: 0, Y: 0},
	)
	f1 := Frame{Type: Data, Src: 0, Dst: 2, Bytes: 100}
	f2 := Frame{Type: Data, Src: 1, Dst: 2, Bytes: 100}
	if _, err := radios[0].Transmit(f1, Omni); err != nil {
		t.Fatal(err)
	}
	// Start the second transmission mid-way through the first.
	sched.Schedule(200*des.Microsecond, func() {
		if _, err := radios[1].Transmit(f2, Omni); err != nil {
			t.Error(err)
		}
	})
	sched.RunAll()
	if len(recs[2].frames) != 0 {
		t.Errorf("receiver decoded %d frames from a collision, want 0", len(recs[2].frames))
	}
	if recs[2].errs != 2 {
		t.Errorf("receiver errors = %d, want 2 (both signals damaged)", recs[2].errs)
	}
	if recs[2].busy != 1 || recs[2].idle != 1 {
		t.Errorf("carrier events busy=%d idle=%d, want exactly one busy/idle pair", recs[2].busy, recs[2].idle)
	}
}

func TestCollisionWithCapture(t *testing.T) {
	params := DefaultParams()
	params.Capture = true
	sched, _, radios, recs := rig(t, params,
		geom.Point{X: -1, Y: 0},
		geom.Point{X: 1, Y: 0},
		geom.Point{X: 0, Y: 0},
	)
	f1 := Frame{Type: Data, Src: 0, Dst: 2, Bytes: 100, Seq: 1}
	f2 := Frame{Type: Data, Src: 1, Dst: 2, Bytes: 100, Seq: 2}
	if _, err := radios[0].Transmit(f1, Omni); err != nil {
		t.Fatal(err)
	}
	sched.Schedule(200*des.Microsecond, func() {
		if _, err := radios[1].Transmit(f2, Omni); err != nil {
			t.Error(err)
		}
	})
	sched.RunAll()
	if len(recs[2].frames) != 1 || recs[2].frames[0].Seq != 1 {
		t.Errorf("capture receiver frames = %+v, want only Seq 1", recs[2].frames)
	}
	if recs[2].errs != 1 {
		t.Errorf("capture receiver errors = %d, want 1 (the latecomer)", recs[2].errs)
	}
}

func TestDeafWhileTransmitting(t *testing.T) {
	sched, _, radios, recs := rig(t, DefaultParams(),
		geom.Point{X: 0, Y: 0},
		geom.Point{X: 0.5, Y: 0},
	)
	// Node 1 transmits a long frame; node 0's frame arrives during it.
	if _, err := radios[1].Transmit(Frame{Type: Data, Src: 1, Dst: 0, Bytes: 1460}, Omni); err != nil {
		t.Fatal(err)
	}
	sched.Schedule(100*des.Microsecond, func() {
		if _, err := radios[0].Transmit(Frame{Type: RTS, Src: 0, Dst: 1, Bytes: 20}, Omni); err != nil {
			t.Error(err)
		}
	})
	sched.RunAll()
	if len(recs[1].frames) != 0 {
		t.Error("transmitting radio must not decode arriving frames")
	}
	if recs[1].errs != 0 {
		t.Error("missed (deaf) signals must not surface as frame errors")
	}
	// Node 0 was deaf too when node 1's long frame arrived? No: node 0
	// started transmitting *after* reception began → its reception is
	// stomped by its own transmission.
	if len(recs[0].frames) != 0 {
		t.Error("radio that transmits mid-reception must lose the frame")
	}
}

func TestTransmitWhileBusyFails(t *testing.T) {
	sched, _, radios, _ := rig(t, DefaultParams(), geom.Point{X: 0, Y: 0})
	if _, err := radios[0].Transmit(Frame{Type: Data, Bytes: 100}, Omni); err != nil {
		t.Fatal(err)
	}
	if _, err := radios[0].Transmit(Frame{Type: Data, Bytes: 100}, Omni); err == nil {
		t.Error("second Transmit during first should fail")
	}
	sched.RunAll()
	if _, err := radios[0].Transmit(Frame{Type: Data, Bytes: 100}, Omni); err != nil {
		t.Errorf("Transmit after completion should succeed, got %v", err)
	}
}

func TestPropagationDelayTiming(t *testing.T) {
	params := DefaultParams()
	sched, _, radios, recs := rig(t, params,
		geom.Point{X: 0, Y: 0},
		geom.Point{X: 0.5, Y: 0},
	)
	var deliveredAt des.Time = -1
	// Wrap: detect delivery time via a probe scheduled every event.
	f := Frame{Type: ACK, Src: 0, Dst: 1, Bytes: 14}
	air, err := radios[0].Transmit(f, Omni)
	if err != nil {
		t.Fatal(err)
	}
	want := air + params.PropDelay
	for sched.Step() {
		if len(recs[1].frames) == 1 && deliveredAt < 0 {
			deliveredAt = sched.Now()
		}
	}
	if deliveredAt != want {
		t.Errorf("frame delivered at %v, want %v (airtime+propagation)", deliveredAt, want)
	}
}

func TestCarrierBusyQuery(t *testing.T) {
	sched, _, radios, _ := rig(t, DefaultParams(),
		geom.Point{X: 0, Y: 0},
		geom.Point{X: 0.5, Y: 0},
	)
	if radios[1].CarrierBusy() {
		t.Error("channel should start idle")
	}
	if _, err := radios[0].Transmit(Frame{Type: Data, Bytes: 1460}, Omni); err != nil {
		t.Fatal(err)
	}
	sched.Run(1 * des.Millisecond) // mid-transmission
	if !radios[1].CarrierBusy() {
		t.Error("receiver should sense carrier mid-transmission")
	}
	if !radios[0].Transmitting() {
		t.Error("sender should report Transmitting mid-transmission")
	}
	sched.RunAll()
	if radios[1].CarrierBusy() || radios[0].Transmitting() {
		t.Error("all radios should be quiet after the run drains")
	}
}

func TestNeighbors(t *testing.T) {
	_, ch, _, _ := rig(t, DefaultParams(),
		geom.Point{X: 0, Y: 0},
		geom.Point{X: 0.5, Y: 0},
		geom.Point{X: 0.99, Y: 0},
		geom.Point{X: 1.5, Y: 0},
	)
	got := ch.Neighbors(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Neighbors(0) = %v, want [1 2]", got)
	}
	got = ch.Neighbors(3) // node 1 is exactly at range 1.0 (inclusive)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Neighbors(3) = %v, want [1 2]", got)
	}
	if ch.Neighbors(99) != nil {
		t.Error("Neighbors of unknown ID should be nil")
	}
}

func TestRadioAccessors(t *testing.T) {
	_, ch, radios, _ := rig(t, DefaultParams(), geom.Point{X: 3, Y: 4})
	if radios[0].ID() != 0 {
		t.Errorf("ID = %v, want 0", radios[0].ID())
	}
	if radios[0].Pos() != (geom.Point{X: 3, Y: 4}) {
		t.Errorf("Pos = %v", radios[0].Pos())
	}
	if ch.Radio(0) != radios[0] {
		t.Error("Radio(0) mismatch")
	}
	if ch.Radio(-2) != nil || ch.Radio(5) != nil {
		t.Error("Radio out of range should be nil")
	}
	if ch.NumRadios() != 1 {
		t.Errorf("NumRadios = %d, want 1", ch.NumRadios())
	}
	if ch.Params().BitRate != 2_000_000 {
		t.Errorf("Params.BitRate = %d", ch.Params().BitRate)
	}
}

func TestBackToBackTransmissionsNoFalseCollision(t *testing.T) {
	// Sequential, non-overlapping transmissions must both decode.
	sched, _, radios, recs := rig(t, DefaultParams(),
		geom.Point{X: 0, Y: 0},
		geom.Point{X: 0.5, Y: 0},
	)
	air, err := radios[0].Transmit(Frame{Type: RTS, Src: 0, Dst: 1, Bytes: 20, Seq: 1}, Omni)
	if err != nil {
		t.Fatal(err)
	}
	sched.Schedule(air+10*des.Microsecond, func() {
		if _, err := radios[0].Transmit(Frame{Type: RTS, Src: 0, Dst: 1, Bytes: 20, Seq: 2}, Omni); err != nil {
			t.Error(err)
		}
	})
	sched.RunAll()
	if len(recs[1].frames) != 2 {
		t.Errorf("receiver decoded %d frames, want 2", len(recs[1].frames))
	}
	if recs[1].errs != 0 {
		t.Errorf("false collision: %d errors", recs[1].errs)
	}
	if recs[1].busy != 2 || recs[1].idle != 2 {
		t.Errorf("carrier pairs = %d/%d, want 2/2", recs[1].busy, recs[1].idle)
	}
}

func TestThreeWayOverlapAllCorrupted(t *testing.T) {
	sched, _, radios, recs := rig(t, DefaultParams(),
		geom.Point{X: -1, Y: 0},
		geom.Point{X: 1, Y: 0},
		geom.Point{X: 0, Y: 0.9},
		geom.Point{X: 0, Y: 0},
	)
	for i := 0; i < 3; i++ {
		i := i
		sched.Schedule(des.Time(i*100)*des.Microsecond, func() {
			if _, err := radios[i].Transmit(Frame{Type: Data, Src: NodeID(i), Dst: 3, Bytes: 500}, Omni); err != nil {
				t.Error(err)
			}
		})
	}
	sched.RunAll()
	if len(recs[3].frames) != 0 {
		t.Errorf("receiver decoded %d frames from triple overlap", len(recs[3].frames))
	}
	if recs[3].errs != 3 {
		t.Errorf("errors = %d, want 3", recs[3].errs)
	}
}

func TestBroadcastFrameReachesAllInRange(t *testing.T) {
	sched, _, radios, recs := rig(t, DefaultParams(),
		geom.Point{X: 0, Y: 0},
		geom.Point{X: 0.5, Y: 0},
		geom.Point{X: -0.5, Y: 0.2},
		geom.Point{X: 0, Y: -0.9},
	)
	if _, err := radios[0].Transmit(Frame{Type: Hello, Src: 0, Dst: Broadcast, Bytes: 30}, Omni); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	for i := 1; i <= 3; i++ {
		if len(recs[i].frames) != 1 {
			t.Errorf("node %d got %d frames, want 1", i, len(recs[i].frames))
		}
	}
}

// hintRecorder also implements NAVHinter.
type hintRecorder struct {
	recorder

	hints []Frame
}

func (h *hintRecorder) OnNAVHint(f Frame) { h.hints = append(h.hints, f) }

func TestNAVOracleHints(t *testing.T) {
	for _, oracle := range []bool{false, true} {
		params := DefaultParams()
		params.NAVOracle = oracle
		sched := des.New(1)
		ch, err := NewChannel(sched, params)
		if err != nil {
			t.Fatal(err)
		}
		tx := ch.AddRadio(geom.Point{X: 0, Y: 0}, &recorder{})
		inBeam := &hintRecorder{}
		ch.AddRadio(geom.Point{X: 0.9, Y: 0}, inBeam)
		outBeam := &hintRecorder{}
		ch.AddRadio(geom.Point{X: 0, Y: 0.9}, outBeam)
		outRange := &hintRecorder{}
		ch.AddRadio(geom.Point{X: 0, Y: 5}, outRange)

		f := Frame{Type: RTS, Src: 0, Dst: 1, Bytes: 20, NAV: des.Millisecond}
		if _, err := tx.Transmit(f, Directed(0, 0.5)); err != nil {
			t.Fatal(err)
		}
		sched.RunAll()

		if len(inBeam.frames) != 1 || len(inBeam.hints) != 0 {
			t.Errorf("oracle=%v: in-beam node frames=%d hints=%d, want 1/0",
				oracle, len(inBeam.frames), len(inBeam.hints))
		}
		wantHints := 0
		if oracle {
			wantHints = 1
		}
		if len(outBeam.hints) != wantHints || len(outBeam.frames) != 0 {
			t.Errorf("oracle=%v: out-of-beam node hints=%d frames=%d, want %d/0",
				oracle, len(outBeam.hints), len(outBeam.frames), wantHints)
		}
		if outBeam.busy != 0 {
			t.Errorf("oracle=%v: NAV hints must not carry energy", oracle)
		}
		if len(outRange.hints) != 0 {
			t.Errorf("oracle=%v: out-of-range node must get no hints", oracle)
		}
		if oracle && outBeam.hints[0].NAV != des.Millisecond {
			t.Errorf("hint NAV = %v, want 1ms", outBeam.hints[0].NAV)
		}
	}
}

func sinrParams() Params {
	p := DefaultParams()
	p.SINRThreshold = 10
	p.PathLoss = 2
	p.NoiseFloor = 0.001
	return p
}

func TestSINRValidation(t *testing.T) {
	good := sinrParams()
	if err := good.Validate(); err != nil {
		t.Errorf("SINR params invalid: %v", err)
	}
	bad := good
	bad.PathLoss = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero path loss should be rejected in SINR mode")
	}
	bad = good
	bad.NoiseFloor = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative noise should be rejected")
	}
}

func TestModeGain(t *testing.T) {
	if g := Omni.Gain(); g != 1 {
		t.Errorf("omni gain = %v, want 1", g)
	}
	if g := Directed(0, math.Pi).Gain(); math.Abs(g-2) > 1e-12 {
		t.Errorf("180° gain = %v, want 2", g)
	}
	if g := Directed(0, math.Pi/6).Gain(); math.Abs(g-12) > 1e-12 {
		t.Errorf("30° gain = %v, want 12", g)
	}
	if g := Directed(0, 2*math.Pi).Gain(); g != 1 {
		t.Errorf("full-circle gain = %v, want 1", g)
	}
}

// TestSINRCaptureByStrength: with the physical receiver, a strong nearby
// signal survives a weak far interferer — unlike the paper's pessimistic
// overlap model.
func TestSINRCaptureByStrength(t *testing.T) {
	sched, _, radios, recs := rig(t, sinrParams(),
		geom.Point{X: 0.05, Y: 0}, // strong sender, very close
		geom.Point{X: 1, Y: 0},    // weak interferer at the range edge
		geom.Point{X: 0, Y: 0},    // receiver
	)
	if _, err := radios[0].Transmit(Frame{Type: Data, Src: 0, Dst: 2, Bytes: 500, Seq: 1}, Omni); err != nil {
		t.Fatal(err)
	}
	sched.Schedule(200*des.Microsecond, func() {
		if _, err := radios[1].Transmit(Frame{Type: Data, Src: 1, Dst: 2, Bytes: 500, Seq: 2}, Omni); err != nil {
			t.Error(err)
		}
	})
	sched.RunAll()
	// Strong: power 1/0.05² = 400; weak: 1. SINR = 400/(1+0.001) ≫ 10 →
	// the strong frame decodes; the weak one is hopeless.
	if len(recs[2].frames) != 1 || recs[2].frames[0].Seq != 1 {
		t.Errorf("receiver frames = %+v, want only the strong Seq 1", recs[2].frames)
	}
	if recs[2].errs != 1 {
		t.Errorf("errors = %d, want 1 (the weak frame)", recs[2].errs)
	}
}

// TestSINRMutualKill: two comparable-power signals still destroy each
// other (the SINR model reduces to the paper's behaviour for peers).
func TestSINRMutualKill(t *testing.T) {
	sched, _, radios, recs := rig(t, sinrParams(),
		geom.Point{X: -0.5, Y: 0},
		geom.Point{X: 0.5, Y: 0},
		geom.Point{X: 0, Y: 0},
	)
	if _, err := radios[0].Transmit(Frame{Type: Data, Src: 0, Dst: 2, Bytes: 500}, Omni); err != nil {
		t.Fatal(err)
	}
	sched.Schedule(100*des.Microsecond, func() {
		if _, err := radios[1].Transmit(Frame{Type: Data, Src: 1, Dst: 2, Bytes: 500}, Omni); err != nil {
			t.Error(err)
		}
	})
	sched.RunAll()
	if len(recs[2].frames) != 0 || recs[2].errs != 2 {
		t.Errorf("equal-power overlap: frames=%d errs=%d, want 0/2", len(recs[2].frames), recs[2].errs)
	}
}

// TestSINRNarrowBeamBeatsNoise reproduces the paper's footnote 2: "it is
// more desirable to transmit with narrower beamwidth, because signal
// energy is more concentrated and a higher signal-to-noise ratio can be
// achieved". With a noise floor that drowns an omni transmission at the
// range edge, a 30° beam still gets through.
func TestSINRNarrowBeamBeatsNoise(t *testing.T) {
	params := sinrParams()
	params.NoiseFloor = 0.2 // omni SNR at d=0.95: (1/0.9025)/0.2 ≈ 5.5 < 10
	sched, _, radios, recs := rig(t, params,
		geom.Point{X: 0, Y: 0},
		geom.Point{X: 0.95, Y: 0},
	)
	if _, err := radios[0].Transmit(Frame{Type: Data, Src: 0, Dst: 1, Bytes: 100, Seq: 1}, Omni); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	if len(recs[1].frames) != 0 {
		t.Error("omni transmission should be below the SNR threshold")
	}
	if recs[1].errs != 1 {
		t.Errorf("noise-drowned frame should surface as an error, got %d", recs[1].errs)
	}
	// Same link, 30° beam: gain 12 → SNR ≈ 66 > 10.
	if _, err := radios[0].Transmit(Frame{Type: Data, Src: 0, Dst: 1, Bytes: 100, Seq: 2}, Directed(0, math.Pi/6)); err != nil {
		t.Fatal(err)
	}
	sched.RunAll()
	if len(recs[1].frames) != 1 || recs[1].frames[0].Seq != 2 {
		t.Errorf("directional transmission should clear the threshold: %+v", recs[1].frames)
	}
}

// TestSINRDisabledMatchesOverlapModel: with SINRThreshold = 0 the channel
// behaves exactly as the paper's overlap model.
func TestSINRDisabledMatchesOverlapModel(t *testing.T) {
	params := DefaultParams() // SINR off
	sched, _, radios, recs := rig(t, params,
		geom.Point{X: 0.05, Y: 0},
		geom.Point{X: 1, Y: 0},
		geom.Point{X: 0, Y: 0},
	)
	if _, err := radios[0].Transmit(Frame{Type: Data, Src: 0, Dst: 2, Bytes: 500, Seq: 1}, Omni); err != nil {
		t.Fatal(err)
	}
	sched.Schedule(200*des.Microsecond, func() {
		if _, err := radios[1].Transmit(Frame{Type: Data, Src: 1, Dst: 2, Bytes: 500, Seq: 2}, Omni); err != nil {
			t.Error(err)
		}
	})
	sched.RunAll()
	// No capture without SINR: even the overwhelmingly stronger frame dies.
	if len(recs[2].frames) != 0 || recs[2].errs != 2 {
		t.Errorf("overlap model: frames=%d errs=%d, want 0/2", len(recs[2].frames), recs[2].errs)
	}
}
