// Grid-partition ownership for the parallel kernel. Every radio belongs
// to exactly one lane: the per-partition execution context holding the
// partition's scheduler, its delivery-object pools, its share of the
// airtime accounting, and an outbox of staged cross-partition
// deliveries. A channel always has at least lane 0 (the sequential
// kernel is the one-lane special case, running exactly the historical
// code path); ConfigurePartitions splits it into one lane per partition
// scheduler.
//
// The concurrency contract mirrors internal/des.Group: during a window,
// lane state is touched only by the goroutine executing that lane's
// scheduler. A transmission propagating to a radio in another lane never
// reaches across — it appends a crossDelivery to the SOURCE lane's
// outbox, and FlushCross (run single-threaded between windows by the
// group engine) routes the staged entries into destination lanes in
// fixed (source lane, emission order) sequence, which pins the
// destination queue's FIFO tie-breaking to a pure function of the
// partition layout. The global spatial grid is shared by all lanes but
// frozen read-only before the first window (no mobility under
// partitioning).

package phy

import (
	"fmt"

	"repro/internal/des"
)

// lane is one partition's execution context on the shared channel.
type lane struct {
	sched *des.Scheduler

	txTime  map[FrameType]des.Time
	txCount map[FrameType]int64

	scratch []int32 // candidate IDs gathered per transmission

	// Free lists for per-delivery objects. Signals and events always
	// live in the RECEIVER's lane: they are mutated by receiver-side
	// callbacks and recycled on the receiver's goroutine.
	freeSigs   []*signal
	freeEvents []*sigEvent
	freeHints  []*navHintEvent

	// outbox stages deliveries to radios owned by other lanes until the
	// next FlushCross.
	outbox []crossDelivery
}

// crossDelivery is one staged signal (or NAV hint) bound for a radio in
// another lane. Times are absolute: they were computed on the source
// lane's clock when the transmission started.
type crossDelivery struct {
	dst   *Radio
	frame Frame
	power float64
	start des.Time // signal start (or hint delivery instant)
	end   des.Time // signal end; unused for hints
	hint  bool
}

// newLane builds an empty lane bound to a scheduler.
func newLane(sched *des.Scheduler) *lane {
	return &lane{
		sched:   sched,
		txTime:  make(map[FrameType]des.Time),
		txCount: make(map[FrameType]int64),
	}
}

// ConfigurePartitions splits the channel into one lane per scheduler,
// assigning each radio to the lane named by laneOf (indexed by NodeID).
// scheds[0] must be the scheduler the channel was created with — lane 0
// keeps the objects already pooled there, so a one-entry configuration
// is the identity. The call finalizes the spatial grid: after it the
// placement is frozen (SetPos would race against concurrent gathers).
func (c *Channel) ConfigurePartitions(scheds []*des.Scheduler, laneOf []int32) error {
	if len(scheds) == 0 {
		return fmt.Errorf("phy: ConfigurePartitions needs at least one scheduler")
	}
	if scheds[0] != c.sched {
		return fmt.Errorf("phy: partition scheduler 0 must be the channel's own scheduler")
	}
	if len(laneOf) != len(c.radios) {
		return fmt.Errorf("phy: partition assignment covers %d radios, channel has %d", len(laneOf), len(c.radios))
	}
	lanes := make([]*lane, len(scheds))
	lanes[0] = c.lanes[0]
	for i := 1; i < len(scheds); i++ {
		lanes[i] = newLane(scheds[i])
	}
	for id, li := range laneOf {
		if li < 0 || int(li) >= len(lanes) {
			return fmt.Errorf("phy: radio %d assigned to lane %d of %d", id, li, len(lanes))
		}
		c.radios[id].lane = lanes[li]
	}
	c.lanes = lanes
	c.rebuildGrid()
	// The rebuild leaves every bucket clean, so concurrent gathers only
	// read the grid; freezing placement keeps it that way (SetPos now
	// panics instead of racing).
	c.frozen = true
	return nil
}

// FlushCross routes every staged cross-lane delivery into its
// destination lane's queue and clears the outboxes. It must run
// single-threaded between execution windows (the des.Group Flush hook);
// iteration order — source lanes ascending, entries in emission order —
// is part of the determinism contract.
func (c *Channel) FlushCross() {
	for _, src := range c.lanes {
		for i := range src.outbox {
			e := &src.outbox[i]
			dst := e.dst.lane
			if e.hint {
				dst.sched.AtEvent(e.start, dst.allocHint(e.dst, e.frame))
				continue
			}
			sig := dst.allocSignal(e.frame, e.power)
			dst.sched.AtEvent(e.start, dst.allocEvent(e.dst, sig, false))
			dst.sched.AtEvent(e.end, dst.allocEvent(e.dst, sig, true))
		}
		src.outbox = src.outbox[:0]
	}
}

// stage appends a delivery bound for another lane to this (source)
// lane's outbox.
//
//desalint:hotpath
func (l *lane) stage(dst *Radio, f Frame, power float64, start, end des.Time, hint bool) {
	l.outbox = append(l.outbox, crossDelivery{
		dst: dst, frame: f, power: power, start: start, end: end, hint: hint,
	})
}
