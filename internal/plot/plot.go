// Package plot renders simple, dependency-free SVG figures: line charts
// with optional error bars (for the paper's Fig. 5/6/7 reproductions) and
// topology scatter plots (for the concentric-ring placements).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// palette is a color-blind-safe categorical palette.
var palette = []string{"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377"}

// Series is one named line on a chart. YLow/YHigh, when non-nil, draw a
// vertical error bar per point (the paper's min–max range whiskers).
type Series struct {
	Name  string
	X     []float64
	Y     []float64
	YLow  []float64
	YHigh []float64
}

// Chart is a line chart specification.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height default to 720×480 when zero.
	Width, Height int
}

// viewport geometry.
const (
	marginLeft   = 70.0
	marginRight  = 20.0
	marginTop    = 40.0
	marginBottom = 55.0
)

// SVG renders the chart.
func (c *Chart) SVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart has no series")
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 480
	}
	// Data bounds across all series (including error bars).
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x but %d y values", s.Name, len(s.X), len(s.Y))
		}
		if s.YLow != nil && (len(s.YLow) != len(s.X) || len(s.YHigh) != len(s.X)) {
			return fmt.Errorf("plot: series %q error bars mismatch", s.Name)
		}
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
			if s.YLow != nil {
				ymin = math.Min(ymin, s.YLow[i])
				ymax = math.Max(ymax, s.YHigh[i])
			}
		}
	}
	if !(xmax > math.Inf(-1)) || !(ymax > math.Inf(-1)) {
		return fmt.Errorf("plot: chart has no data points")
	}
	// Always show y = 0 for magnitude-like quantities.
	if ymin > 0 {
		ymin = 0
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	plotW := float64(width) - marginLeft - marginRight
	plotH := float64(height) - marginTop - marginBottom
	xpos := func(x float64) float64 { return marginLeft + (x-xmin)/(xmax-xmin)*plotW }
	ypos := func(y float64) float64 { return marginTop + plotH - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginLeft, marginTop-18, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)

	// Ticks and grid.
	for _, tx := range Ticks(xmin, xmax, 8) {
		px := xpos(tx)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#dddddd"/>`+"\n",
			px, marginTop, px, marginTop+plotH)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px, marginTop+plotH+16, formatTick(tx))
	}
	for _, ty := range Ticks(ymin, ymax, 6) {
		py := ypos(ty)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#dddddd"/>`+"\n",
			marginLeft, py, marginLeft+plotW, py)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, py+4, formatTick(ty))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, float64(height)-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", xpos(s.X[i]), ypos(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="3" fill="%s"/>`+"\n",
				xpos(s.X[i]), ypos(s.Y[i]), color)
			if s.YLow != nil {
				// Offset error bars slightly per series so they stay legible
				// when schemes share x positions (as in the paper's figures).
				off := float64(si-1) * 4
				px := xpos(s.X[i]) + off
				fmt.Fprintf(&b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="1"/>`+"\n",
					px, ypos(s.YLow[i]), px, ypos(s.YHigh[i]), color)
				for _, capY := range []float64{s.YLow[i], s.YHigh[i]} {
					fmt.Fprintf(&b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="1"/>`+"\n",
						px-3, ypos(capY), px+3, ypos(capY), color)
				}
			}
		}
		// Legend entry.
		ly := marginTop + 8 + float64(si)*18
		lx := marginLeft + plotW - 150
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+24, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			lx+30, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Ticks returns up to n+1 round tick positions covering [min, max] using
// a 1-2-5 ladder.
func Ticks(min, max float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	span := max - min
	if span <= 0 {
		return []float64{min}
	}
	raw := span / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag <= 1:
		step = mag
	case raw/mag <= 2:
		step = 2 * mag
	case raw/mag <= 5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var out []float64
	for t := math.Ceil(min/step) * step; t <= max+step/1e6; t += step {
		out = append(out, t)
	}
	return out
}

// formatTick renders a tick value compactly.
func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// escape makes a string safe for SVG text content.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
