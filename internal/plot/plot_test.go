package plot

import (
	"encoding/xml"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/topology"
)

func validSVG(t *testing.T, s string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
}

func TestChartSVG(t *testing.T) {
	c := Chart{
		Title:  "Fig. 5 <test> & demo",
		XLabel: "beamwidth (deg)",
		YLabel: "throughput",
		Series: []Series{
			{Name: "ORTS-OCTS", X: []float64{15, 90, 180}, Y: []float64{0.32, 0.32, 0.32}},
			{Name: "DRTS-DCTS", X: []float64{15, 90, 180}, Y: []float64{0.49, 0.23, 0.15}},
		},
	}
	var sb strings.Builder
	if err := c.SVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	validSVG(t, out)
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	for _, want := range []string{"ORTS-OCTS", "DRTS-DCTS", "beamwidth (deg)", "&lt;test&gt; &amp;"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestChartSVGErrorBars(t *testing.T) {
	c := Chart{
		Series: []Series{{
			Name: "s",
			X:    []float64{1, 2},
			Y:    []float64{5, 6},
			YLow: []float64{4, 5}, YHigh: []float64{6, 7},
		}},
	}
	var sb strings.Builder
	if err := c.SVG(&sb); err != nil {
		t.Fatal(err)
	}
	validSVG(t, sb.String())
	// 2 points × (1 bar + 2 caps) = 6 extra lines beyond axes/grid/legend.
	if got := strings.Count(sb.String(), "<line"); got < 8 {
		t.Errorf("error-bar chart has too few line elements: %d", got)
	}
}

func TestChartSVGValidation(t *testing.T) {
	var sb strings.Builder
	if err := (&Chart{}).SVG(&sb); err == nil {
		t.Error("empty chart should fail")
	}
	bad := Chart{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := bad.SVG(&sb); err == nil {
		t.Error("mismatched series should fail")
	}
	barsBad := Chart{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{1}, YLow: []float64{}, YHigh: []float64{}}}}
	if err := barsBad.SVG(&sb); err == nil {
		t.Error("mismatched error bars should fail")
	}
	empty := Chart{Series: []Series{{Name: "x"}}}
	if err := empty.SVG(&sb); err == nil {
		t.Error("series without points should fail")
	}
}

func TestChartSVGDegenerateRanges(t *testing.T) {
	// Single point: both ranges degenerate; must still render.
	c := Chart{Series: []Series{{Name: "pt", X: []float64{3}, Y: []float64{7}}}}
	var sb strings.Builder
	if err := c.SVG(&sb); err != nil {
		t.Fatal(err)
	}
	validSVG(t, sb.String())
}

func TestTicks(t *testing.T) {
	ticks := Ticks(0, 100, 5)
	if len(ticks) < 3 {
		t.Fatalf("too few ticks: %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if ticks[0] < 0 || ticks[len(ticks)-1] > 100+1e-9 {
		t.Errorf("ticks out of range: %v", ticks)
	}
	// The 1-2-5 ladder yields a round step.
	step := ticks[1] - ticks[0]
	mant := step / math.Pow(10, math.Floor(math.Log10(step)))
	if !(almost(mant, 1) || almost(mant, 2) || almost(mant, 5)) {
		t.Errorf("tick step %v not on the 1-2-5 ladder", step)
	}
	if got := Ticks(5, 5, 4); len(got) != 1 || got[0] != 5 {
		t.Errorf("degenerate range ticks = %v", got)
	}
	if got := Ticks(0, 1, 0); len(got) == 0 {
		t.Errorf("n=0 should clamp, got %v", got)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTopologySVG(t *testing.T) {
	topo, err := topology.Generate(rand.New(rand.NewSource(2)), topology.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := TopologySVG(&sb, topo); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	validSVG(t, out)
	if got := strings.Count(out, "<circle"); got < 27+3 {
		t.Errorf("circles = %d, want >= nodes + rings", got)
	}
	if !strings.Contains(out, "N=3, 27 nodes, 3 rings") {
		t.Error("caption missing")
	}
	if err := TopologySVG(&sb, nil); err == nil {
		t.Error("nil topology should fail")
	}
}
