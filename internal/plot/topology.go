package plot

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/topology"
)

// TopologySVG renders a concentric-ring topology: ring boundaries, nodes
// colored by ring (inner nodes emphasized), and light links between
// neighbors.
func TopologySVG(w io.Writer, topo *topology.Topology) error {
	if topo == nil || len(topo.Positions) == 0 {
		return fmt.Errorf("plot: empty topology")
	}
	const size = 640.0
	bound := float64(topo.Rings) * topo.Radius
	scale := (size/2 - 20) / bound
	px := func(x float64) float64 { return size/2 + x*scale }
	py := func(y float64) float64 { return size/2 - y*scale }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		size, size, size, size)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Ring boundaries.
	for ring := 1; ring <= topo.Rings; ring++ {
		fmt.Fprintf(&b, `<circle cx="%g" cy="%g" r="%.1f" fill="none" stroke="#cccccc" stroke-dasharray="4 4"/>`+"\n",
			size/2, size/2, float64(ring)*topo.Radius*scale)
	}

	// Links between neighbors (drawn first, under the nodes).
	for i := range topo.Positions {
		for _, j := range topo.Neighbors(i) {
			if j < i {
				continue // each edge once
			}
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#e8e8e8"/>`+"\n",
				px(topo.Positions[i].X), py(topo.Positions[i].Y),
				px(topo.Positions[j].X), py(topo.Positions[j].Y))
		}
	}

	// Nodes.
	for i, pos := range topo.Positions {
		color := palette[topo.RingOf(i)%len(palette)]
		r := 4.0
		if i < topo.InnerCount() {
			r = 6.0 // measured nodes stand out
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%g" fill="%s" stroke="black" stroke-width="0.5"/>`+"\n",
			px(pos.X), py(pos.Y), r, color)
	}
	fmt.Fprintf(&b, `<text x="12" y="22" font-family="sans-serif" font-size="13">N=%d, %d nodes, %d rings (inner/measured nodes enlarged)</text>`+"\n",
		topo.N, len(topo.Positions), topo.Rings)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
