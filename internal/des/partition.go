// Conservative parallel execution of partitioned event queues.
//
// A Group owns P independent Schedulers ("partitions") and runs them in
// barrier-synchronized windows, GloMoSim-style. The safety argument is
// the classic conservative one: an event executing at time t in one
// partition can influence another partition no earlier than t+Lookahead
// (in this simulator the PHY's fixed propagation delay — the earliest
// cross-node consequence of any callback is a signal edge one
// propagation delay later; the frame's airtime only pushes the END edge
// further out). Each round therefore lets partition p execute every
// event strictly before
//
//	horizon(p) = min over q≠p of nextAt(q) + Lookahead
//
// because whatever any other partition q does in the same round happens
// at or after nextAt(q), and its effects reach p no earlier than
// horizon(p). Cross-partition effects are not delivered directly:
// executing callbacks stage them (the PHY keeps per-partition outboxes),
// and the single-threaded Flush hook routes the staged events into the
// destination queues between rounds, in a fixed partition order — so
// insertion order, and with it FIFO seq tie-breaking, is a pure function
// of the partition layout.
//
// Determinism contract: the round structure (flush contents, horizons,
// per-partition event order) depends only on the partition layout and
// the per-partition initial state, never on how many OS workers execute
// the rounds. Workers only decide which goroutine runs which partition's
// window; results are byte-identical for any worker count, including 1.

package des

import (
	"runtime"
	"sync/atomic"
)

// Group runs a set of partitioned schedulers under conservative
// barrier-window synchronization.
type Group struct {
	// Parts are the partition schedulers. The group never reorders the
	// slice; partition index is identity.
	Parts []*Scheduler
	// Lookahead is the minimum cross-partition influence latency (the
	// PHY propagation delay). Must be positive: it is what guarantees
	// per-round progress.
	Lookahead Time
	// Flush routes events staged by the previous round (cross-partition
	// signal deliveries) into their destination schedulers. It runs
	// single-threaded between rounds, before horizons are computed. May
	// be nil when partitions never interact.
	Flush func()

	horizons []Time
	phase    atomic.Int64
	arrived  atomic.Int64
	done     atomic.Bool
}

// spinThreshold bounds busy-waiting at the round barrier before a
// worker yields its thread. Windows are microseconds of simulated time
// and usually tens of events, so the barrier is hot; parking on a
// channel per round would dominate the run.
const spinThreshold = 256

// Run executes every partition up to and including time until, using at
// most workers goroutines (clamped to the partition count, minimum 1),
// and returns the total number of events executed. Mirroring
// Scheduler.Run, events exactly at until still run and every partition's
// clock ends at until.
func (g *Group) Run(until Time, workers int) uint64 {
	p := len(g.Parts)
	if p == 0 {
		return 0
	}
	if workers > p {
		workers = p
	}
	if workers < 1 {
		workers = 1
	}
	g.horizons = make([]Time, p)
	if workers == 1 {
		g.runRounds(until, 1, 0)
	} else {
		g.phase.Store(0)
		g.arrived.Store(0)
		g.done.Store(false)
		// Worker goroutines only execute partitions assigned to them by
		// index; the barrier protocol (atomic phase/arrived) orders every
		// cross-goroutine access to scheduler state.
		for w := 1; w < workers; w++ {
			go g.worker(w, workers)
		}
		g.runRounds(until, workers, 0)
		g.done.Store(true)
		g.phase.Add(1) // release workers into the exit check
		// Wait for every worker to acknowledge the exit phase so no
		// goroutine outlives the run (the caller may immediately reuse
		// or drop the schedulers).
		g.awaitArrivals(workers - 1)
	}
	var total uint64
	for _, part := range g.Parts {
		part.AdvanceTo(until)
		total += part.Executed()
	}
	return total
}

// runRounds is the coordinator loop, executed on the caller's
// goroutine, which doubles as worker 0.
func (g *Group) runRounds(until Time, workers, self int) {
	for {
		if g.Flush != nil {
			g.Flush()
		}
		if !g.computeHorizons(until) {
			return
		}
		if workers == 1 {
			for i, part := range g.Parts {
				part.RunBefore(g.horizons[i])
			}
			continue
		}
		g.arrived.Store(0)
		g.phase.Add(1) // publish horizons; release workers into the round
		g.runOwned(self, workers)
		g.awaitArrivals(workers - 1)
	}
}

// worker executes the partitions assigned to index w (w, w+stride, ...)
// each round, synchronizing with the coordinator through the atomic
// phase/arrived pair. Atomic operations order the coordinator's horizon
// writes before the worker's reads and the worker's scheduler mutations
// before the coordinator's flush.
func (g *Group) worker(w, stride int) {
	round := int64(0)
	for {
		round++
		g.awaitPhase(round)
		if g.done.Load() {
			g.arrived.Add(1)
			return
		}
		g.runOwned(w, stride)
		g.arrived.Add(1)
	}
}

// runOwned executes one round's window for every partition owned by
// worker w under a static stride assignment.
func (g *Group) runOwned(w, stride int) {
	// Each partition scheduler is touched by exactly one worker per
	// round (static stride assignment), and rounds are separated by the
	// atomic barrier, so no two goroutines ever race on a scheduler.
	// Safety of the horizon itself: every cross-partition event staged
	// during a round is stamped >= sender's now + Lookahead >= the
	// receiver's horizon, and RunBefore's bound is strict, so flushed
	// events can never land in a window a partition already executed.
	for i := w; i < len(g.Parts); i += stride {
		g.Parts[i].RunBefore(g.horizons[i])
	}
}

// awaitPhase spins until the coordinator publishes the given round.
func (g *Group) awaitPhase(round int64) {
	for spins := 0; g.phase.Load() != round; spins++ {
		if spins > spinThreshold {
			runtime.Gosched()
		}
	}
}

// awaitArrivals spins until n workers have finished the current round.
func (g *Group) awaitArrivals(n int) {
	for spins := 0; g.arrived.Load() != int64(n); spins++ {
		if spins > spinThreshold {
			runtime.Gosched()
		}
	}
}

// computeHorizons fills g.horizons for the next round and reports
// whether any partition has work left at or before until. Partition p
// may run strictly before min over q≠p of nextAt(q)+Lookahead — its OWN
// next event never constrains it — capped at until+1 so events exactly
// at until still execute (Run's inclusive bound).
func (g *Group) computeHorizons(until Time) bool {
	const inf = Time(1)<<62 - 1
	min1, min2 := inf, inf // smallest and second-smallest nextAt
	argmin := -1
	for i, part := range g.Parts {
		at, ok := part.NextAt()
		if !ok {
			continue
		}
		if at < min1 {
			min1, min2, argmin = at, min1, i
		} else if at < min2 {
			min2 = at
		}
	}
	if min1 > until {
		return false
	}
	bound := until + 1
	for i := range g.horizons {
		others := min1
		if i == argmin {
			others = min2
		}
		h := bound
		if others < inf && others+g.Lookahead < bound {
			h = others + g.Lookahead
		}
		g.horizons[i] = h
	}
	return true
}
