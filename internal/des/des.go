// Package des is a deterministic discrete-event simulation kernel: a
// monotonic virtual clock, a binary-heap event queue with stable FIFO
// ordering among simultaneous events, cancellable timers, and a seeded
// random stream. It is single-threaded by design — protocol models run as
// callbacks on the scheduler goroutine, which makes runs exactly
// reproducible for a given seed.
package des

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is a simulation timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations expressed in simulation Time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a simulation duration to floating-point seconds.
func (t Time) Seconds() float64 {
	return float64(t) / float64(Second)
}

// Microseconds converts a simulation duration to floating-point
// microseconds.
func (t Time) Microseconds() float64 {
	return float64(t) / float64(Microsecond)
}

// String renders the time like a time.Duration (both are nanosecond
// counts).
func (t Time) String() string {
	return time.Duration(t).String()
}

// Timer is a handle for a scheduled event. Its zero value is not useful;
// timers are created by Scheduler.At and Scheduler.Schedule.
type Timer struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	fired    bool
	index    int // heap index, -1 once popped
}

// When returns the simulated time the timer is (or was) due to fire.
func (t *Timer) When() Time {
	return t.at
}

// Active reports whether the timer is still pending: neither fired nor
// canceled.
func (t *Timer) Active() bool {
	return t != nil && !t.canceled && !t.fired
}

// Scheduler owns the virtual clock and the pending-event queue.
type Scheduler struct {
	now   Time
	queue timerHeap
	seq   uint64
	rng   *rand.Rand
	count uint64 // events executed
}

// New returns a Scheduler whose random stream is seeded with seed.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time {
	return s.now
}

// Rand returns the scheduler's deterministic random stream.
func (s *Scheduler) Rand() *rand.Rand {
	return s.rng
}

// Executed returns the number of events executed so far.
func (s *Scheduler) Executed() uint64 {
	return s.count
}

// Pending returns the number of events still queued.
func (s *Scheduler) Pending() int {
	return s.queue.Len()
}

// At schedules fn to run at absolute time t. Scheduling in the past (t
// before Now) clamps to Now, preserving causality. Events scheduled for
// the same instant fire in scheduling order.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	s.seq++
	tm := &Timer{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.queue, tm)
	return tm
}

// Schedule schedules fn to run after delay d from now. Negative delays
// clamp to zero.
func (s *Scheduler) Schedule(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel marks the timer as canceled so its callback will not run.
// It reports whether the cancellation took effect (false when the timer
// already fired or was already canceled).
func (s *Scheduler) Cancel(t *Timer) bool {
	if t == nil || t.canceled || t.fired {
		return false
	}
	t.canceled = true
	// The entry stays in the heap and is discarded when popped; lazy
	// deletion keeps Cancel O(1), and the MAC layer cancels constantly.
	return true
}

// Step executes the next pending event and reports whether one ran.
// Canceled events are skipped silently.
func (s *Scheduler) Step() bool {
	for s.queue.Len() > 0 {
		tm, _ := heap.Pop(&s.queue).(*Timer)
		if tm.canceled {
			continue
		}
		s.now = tm.at
		tm.fired = true
		s.count++
		tm.fn()
		return true
	}
	return false
}

// Run executes events until the clock would pass `until` or the queue
// drains, and returns the number of events executed by this call. Events
// scheduled exactly at `until` still run.
func (s *Scheduler) Run(until Time) uint64 {
	start := s.count
	for s.queue.Len() > 0 {
		next := s.queue[0]
		if next.canceled {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > until {
			break
		}
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
	return s.count - start
}

// RunAll executes every pending event regardless of time and returns how
// many ran. Useful for draining short test scenarios.
func (s *Scheduler) RunAll() uint64 {
	start := s.count
	for s.Step() {
	}
	return s.count - start
}

// timerHeap is a min-heap ordered by (time, sequence).
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	tm, _ := x.(*Timer)
	tm.index = len(*h)
	*h = append(*h, tm)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	tm.index = -1
	*h = old[:n-1]
	return tm
}
