// Package des is a deterministic discrete-event simulation kernel: a
// monotonic virtual clock, a typed binary-heap event queue with stable
// FIFO ordering among simultaneous events, cancellable timers, and a
// seeded random stream. It is single-threaded by design — protocol models
// run as callbacks on the scheduler goroutine, which makes runs exactly
// reproducible for a given seed.
//
// The event queue is built for the MAC workload: millions of schedules
// per simulated second, most of them canceled before they fire. Timers
// are recycled through a free list, the heap stores typed pointers (no
// interface boxing), and cancellation removes the entry immediately via
// its heap index — so steady-state scheduling performs no allocation and
// canceled events leave no garbage behind. Timer handles are small
// generation-checked values: a handle retained after its timer fired (or
// was canceled and recycled) safely reports inactive instead of aliasing
// a later event.
package des

import (
	"math/rand"
	"time"
)

// Time is a simulation timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations expressed in simulation Time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a simulation duration to floating-point seconds.
func (t Time) Seconds() float64 {
	return float64(t) / float64(Second)
}

// Microseconds converts a simulation duration to floating-point
// microseconds.
func (t Time) Microseconds() float64 {
	return float64(t) / float64(Microsecond)
}

// String renders the time like a time.Duration (both are nanosecond
// counts).
func (t Time) String() string {
	return time.Duration(t).String()
}

// Event is a scheduled action dispatched without a closure. Hot callers
// (the PHY layer) pool Event implementations and schedule them via
// AtEvent/ScheduleEvent, so delivering a frame to a dense neighborhood
// allocates nothing.
type Event interface {
	// Fire runs the event at its due time, on the scheduler goroutine.
	Fire()
}

// timer is one pending queue entry. Entries are owned by the scheduler
// and recycled through a free list once fired or canceled; external code
// only ever sees them through generation-checked Timer handles.
type timer struct {
	at    Time
	seq   uint64
	fn    func() // exactly one of fn/ev is set
	ev    Event
	gen   uint32 // bumped on recycle; stale handles mismatch
	index int32  // position in the heap array
	inert bool   // classified inert at scheduling time (see AtInert)
}

// Timer is a cancellable handle for a scheduled event. The zero value is
// an inert handle: not active, and cancelling it is a no-op. Handles stay
// safe to retain indefinitely — after the event fires (or is canceled)
// the underlying entry may be recycled for a new event, and the
// generation check makes the old handle report inactive rather than
// affect the newcomer.
type Timer struct {
	tm  *timer
	gen uint32
	at  Time
}

// When returns the simulated time the timer is (or was) due to fire. The
// zero handle returns 0.
func (t Timer) When() Time {
	return t.at
}

// Active reports whether the timer is still pending: neither fired nor
// canceled.
func (t Timer) Active() bool {
	return t.tm != nil && t.tm.gen == t.gen
}

// Scheduler owns the virtual clock and the pending-event queue.
type Scheduler struct {
	now     Time
	heap    []*timer
	free    []*timer
	seq     uint64
	rng     *rand.Rand
	count   uint64 // events executed
	activeN int    // pending events NOT classified inert
}

// New returns a Scheduler whose random stream is seeded with seed.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time {
	return s.now
}

// Rand returns the scheduler's deterministic random stream.
func (s *Scheduler) Rand() *rand.Rand {
	return s.rng
}

// Executed returns the number of events executed so far.
func (s *Scheduler) Executed() uint64 {
	return s.count
}

// Pending returns the number of events still queued. Canceled events are
// removed eagerly and never count.
func (s *Scheduler) Pending() int {
	return len(s.heap)
}

// ActivePending returns the number of pending events that were NOT
// classified inert at scheduling time. When it reaches zero the queue
// holds only dead-air bookkeeping — countdowns and idle waits whose due
// times are already fixed — so a fast-forward layer may advance the
// clock analytically without changing what any pending event observes.
//
//desalint:hotpath
func (s *Scheduler) ActivePending() int {
	return s.activeN
}

// alloc takes a recycled timer from the free list or makes a new one.
//
//desalint:hotpath
func (s *Scheduler) alloc() *timer {
	if n := len(s.free); n > 0 {
		tm := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return tm
	}
	return &timer{}
}

// recycle invalidates every outstanding handle to tm and returns it to
// the free list. Callbacks are cleared so the queue never retains
// captured state past a timer's lifetime.
//
//desalint:hotpath
func (s *Scheduler) recycle(tm *timer) {
	tm.gen++
	tm.fn = nil
	tm.ev = nil
	if !tm.inert {
		s.activeN--
	}
	tm.inert = false
	tm.index = -1
	s.free = append(s.free, tm)
}

// insert enqueues a prepared timer and returns its handle.
//
//desalint:hotpath
func (s *Scheduler) insert(tm *timer, at Time) Timer {
	if at < s.now {
		at = s.now
	}
	s.seq++
	tm.at = at
	tm.seq = s.seq
	tm.index = int32(len(s.heap))
	if !tm.inert {
		s.activeN++
	}
	s.heap = append(s.heap, tm)
	s.siftUp(len(s.heap) - 1)
	return Timer{tm: tm, gen: tm.gen, at: at}
}

// At schedules fn to run at absolute time t. Scheduling in the past (t
// before Now) clamps to Now, preserving causality. Events scheduled for
// the same instant fire in scheduling order.
//
//desalint:hotpath
func (s *Scheduler) At(t Time, fn func()) Timer {
	tm := s.alloc()
	tm.fn = fn
	return s.insert(tm, t)
}

// Schedule schedules fn to run after delay d from now. Negative delays
// clamp to zero.
//
//desalint:hotpath
func (s *Scheduler) Schedule(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AtEvent schedules ev to fire at absolute time t, with the same clamping
// and FIFO guarantees as At. Passing a pooled pointer implementation
// performs no allocation.
//
//desalint:hotpath
func (s *Scheduler) AtEvent(t Time, ev Event) Timer {
	tm := s.alloc()
	tm.ev = ev
	return s.insert(tm, t)
}

// ScheduleEvent schedules ev to fire after delay d from now. Negative
// delays clamp to zero.
//
//desalint:hotpath
func (s *Scheduler) ScheduleEvent(d Time, ev Event) Timer {
	if d < 0 {
		d = 0
	}
	return s.AtEvent(s.now+d, ev)
}

// Events default to ACTIVE: anything not explicitly classified is
// assumed capable of perturbing other nodes (frame arrivals, protocol
// responses, telemetry sample ticks — the sample grid is pinned by
// keeping ticks active). The Inert variants below are the opt-in for
// events that only consume idle time: their due instant is fixed at
// scheduling time, firing them has no effect on any OTHER pending
// event, and they may therefore be overtaken by an analytic clock jump.
// Classification is a scheduling-time property — a timer never changes
// class while pending.

// AtInert schedules fn at absolute time t as an inert event: pure idle
// bookkeeping (a backoff slot boundary, a NAV or DIFS expiry, a paced
// arrival) that cannot perturb any other pending event when it fires.
// Ordering, clamping, and FIFO guarantees are identical to At.
//
//desalint:hotpath
func (s *Scheduler) AtInert(t Time, fn func()) Timer {
	tm := s.alloc()
	tm.fn = fn
	tm.inert = true
	return s.insert(tm, t)
}

// ScheduleInert schedules fn after delay d from now as an inert event.
// Negative delays clamp to zero.
//
//desalint:hotpath
func (s *Scheduler) ScheduleInert(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.AtInert(s.now+d, fn)
}

// Cancel prevents a pending timer from firing. It reports whether the
// cancellation took effect (false when the timer already fired, was
// already canceled, or is the zero handle). The queue entry is unlinked
// immediately — heavy cancellation (the MAC's normal operation) leaves no
// garbage in the heap.
//
//desalint:hotpath
func (s *Scheduler) Cancel(t Timer) bool {
	tm := t.tm
	if tm == nil || tm.gen != t.gen {
		return false
	}
	s.remove(int(tm.index))
	s.recycle(tm)
	return true
}

// Step executes the next pending event and reports whether one ran.
//
//desalint:hotpath
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	tm := s.popMin()
	s.now = tm.at
	s.count++
	fn, ev := tm.fn, tm.ev
	// Recycle before running: the callback observes its own handle as
	// no longer active (it has fired), and may immediately reuse the
	// entry for a follow-up event.
	s.recycle(tm)
	if fn != nil {
		fn()
	} else {
		ev.Fire()
	}
	return true
}

// Run executes events until the clock would pass `until` or the queue
// drains, and returns the number of events executed by this call. Events
// scheduled exactly at `until` still run.
//
//desalint:hotpath
func (s *Scheduler) Run(until Time) uint64 {
	start := s.count
	for len(s.heap) > 0 && s.heap[0].at <= until {
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
	return s.count - start
}

// NextAt returns the due time of the earliest pending event and whether
// one exists. The partition group engine uses it to compute conservative
// execution horizons.
//
//desalint:hotpath
func (s *Scheduler) NextAt() (Time, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}

// RunBefore executes events strictly earlier than horizon and returns
// how many ran. Unlike Run it neither executes events AT the horizon nor
// advances the clock to it: the horizon is a conservative bound, not a
// target, and the next window may still insert events exactly at it.
//
//desalint:hotpath
func (s *Scheduler) RunBefore(horizon Time) uint64 {
	start := s.count
	for len(s.heap) > 0 && s.heap[0].at < horizon {
		s.Step()
	}
	return s.count - start
}

// AdvanceTo moves the clock forward to t without executing anything
// (clamping, never rewinding). The group engine calls it once per
// partition after the final window so every partition ends a run at the
// same instant, mirroring Run's trailing clock advance.
func (s *Scheduler) AdvanceTo(t Time) {
	if t > s.now {
		s.now = t
	}
}

// RunAll executes every pending event regardless of time and returns how
// many ran. Useful for draining short test scenarios.
func (s *Scheduler) RunAll() uint64 {
	start := s.count
	for s.Step() {
	}
	return s.count - start
}

// The queue is a hand-rolled binary min-heap over (at, seq) — strict
// arrival order with FIFO tie-breaking. container/heap would box every
// *timer through an interface on each Push/Pop; inlining the sifts keeps
// the hot path monomorphic and allocation-free.

// less orders the heap by due time, then scheduling order.
//
//desalint:hotpath
func (s *Scheduler) less(a, b *timer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//desalint:hotpath
func (s *Scheduler) siftUp(i int) {
	h := s.heap
	tm := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(tm, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].index = int32(i)
		i = parent
	}
	h[i] = tm
	tm.index = int32(i)
}

//desalint:hotpath
func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	tm := h[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if right := child + 1; right < n && s.less(h[right], h[child]) {
			child = right
		}
		if !s.less(h[child], tm) {
			break
		}
		h[i] = h[child]
		h[i].index = int32(i)
		i = child
	}
	h[i] = tm
	tm.index = int32(i)
}

// popMin removes and returns the earliest timer.
//
//desalint:hotpath
func (s *Scheduler) popMin() *timer {
	h := s.heap
	tm := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	s.heap = h[:n]
	if n > 0 {
		s.siftDown(0)
	}
	return tm
}

// remove unlinks the timer at heap position i.
//
//desalint:hotpath
func (s *Scheduler) remove(i int) {
	h := s.heap
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	s.heap = h[:n]
	if i == n {
		return
	}
	h[i] = last
	last.index = int32(i)
	// The displaced entry may belong above or below its new slot.
	s.siftDown(i)
	if h[i] == last {
		s.siftUp(i)
	}
}
