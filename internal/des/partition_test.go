package des

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRunBeforeStrictBound(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	if n := s.RunBefore(30); n != 2 {
		t.Fatalf("RunBefore(30) executed %d events, want 2 (strict bound)", n)
	}
	if want := []Time{10, 20}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if s.Now() != 20 {
		t.Fatalf("clock advanced to %v, want 20 (last executed event, not the horizon)", s.Now())
	}
	at, ok := s.NextAt()
	if !ok || at != 30 {
		t.Fatalf("NextAt = %v,%v, want 30,true", at, ok)
	}
	s.AdvanceTo(25)
	if s.Now() != 25 {
		t.Fatalf("AdvanceTo(25): clock %v", s.Now())
	}
	s.AdvanceTo(5)
	if s.Now() != 25 {
		t.Fatalf("AdvanceTo never rewinds; clock %v", s.Now())
	}
}

func TestNextAtEmpty(t *testing.T) {
	s := New(1)
	if at, ok := s.NextAt(); ok {
		t.Fatalf("NextAt on empty queue = %v,true, want _,false", at)
	}
}

// pingPong is a two-partition workload whose partitions continuously
// cross-schedule into each other through a staged outbox, exactly the
// shape the PHY produces. Each partition logs every execution; the logs
// must be identical for every worker count.
type pingPong struct {
	parts   []*Scheduler
	outbox  [][]crossEvent // staged by executing partitions, per source
	logs    [][]string
	latency Time
}

type crossEvent struct {
	dst int
	at  Time
	tag string
}

// schedule installs a self-rescheduling callback on partition p that
// fires every interval until limit, staging a cross event to the other
// partition latency later on every firing.
func (pp *pingPong) schedule(p int, start, interval, limit Time) {
	var fire func()
	fire = func() {
		now := pp.parts[p].Now()
		pp.logs[p] = append(pp.logs[p], fmt.Sprintf("p%d@%d", p, now))
		pp.outbox[p] = append(pp.outbox[p], crossEvent{
			dst: 1 - p,
			at:  now + pp.latency,
			tag: fmt.Sprintf("x%d->%d@%d", p, 1-p, now+pp.latency),
		})
		if now+interval <= limit {
			pp.parts[p].Schedule(interval, fire)
		}
	}
	pp.parts[p].At(start, fire)
}

// flush routes staged events in fixed partition order.
func (pp *pingPong) flush() {
	for src := range pp.outbox {
		for _, ev := range pp.outbox[src] {
			ev := ev
			dst := ev.dst
			pp.parts[dst].At(ev.at, func() {
				pp.logs[dst] = append(pp.logs[dst], ev.tag)
			})
		}
		pp.outbox[src] = pp.outbox[src][:0]
	}
}

func runPingPong(workers int, latency, lookahead, until Time) [][]string {
	pp := &pingPong{
		parts:   []*Scheduler{New(1), New(2)},
		outbox:  make([][]crossEvent, 2),
		logs:    make([][]string, 2),
		latency: latency,
	}
	// Deliberately incommensurate intervals so cross events interleave
	// with local ones at awkward offsets.
	pp.schedule(0, 3, 11, 500)
	pp.schedule(1, 5, 13, 500)
	g := &Group{Parts: pp.parts, Lookahead: lookahead, Flush: pp.flush}
	g.Run(until, workers)
	return pp.logs
}

func TestGroupWorkerCountInvariance(t *testing.T) {
	// Latency 7 makes cross arrivals collide with local events at equal
	// timestamps — the tie-heavy regime where worker scheduling could
	// leak into results if the engine were wrong.
	want := runPingPong(1, 7, 7, 600)
	if len(want[0]) == 0 || len(want[1]) == 0 {
		t.Fatal("workload executed nothing")
	}
	for _, workers := range []int{2, 4, 8} {
		got := runPingPong(workers, 7, 7, 600)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: execution logs diverged from workers=1", workers)
		}
	}
}

// TestGroupMatchesSequentialMerge checks the conservative engine against
// a plain single-scheduler run of the same logical workload. At equal
// timestamps the partitioned kernel's FIFO tie-break legitimately
// differs from a global scheduler's (cross-partition events are inserted
// at window boundaries, not at emission), so the workload uses a cross
// latency (1009) that puts every cross arrival strictly after every
// local event time — tie-free, the order must match exactly. The group
// still synchronizes on a much smaller lookahead (7) to keep the window
// structure fine-grained.
func TestGroupMatchesSequentialMerge(t *testing.T) {
	const latency, until = 1009, 2500
	logs := runPingPong(1, latency, 7, until)
	// Reference: simulate both "partitions" on one scheduler. Local
	// events fire in the same (time, insertion) order; cross events are
	// scheduled directly at firing time, no staging needed.
	ref := New(1)
	refLogs := make([][]string, 2)
	var install func(p int, start, interval, limit Time)
	install = func(p int, start, interval, limit Time) {
		var fire func()
		fire = func() {
			now := ref.Now()
			refLogs[p] = append(refLogs[p], fmt.Sprintf("p%d@%d", p, now))
			dst := 1 - p
			tag := fmt.Sprintf("x%d->%d@%d", p, dst, now+latency)
			ref.Schedule(latency, func() { refLogs[dst] = append(refLogs[dst], tag) })
			if now+interval <= limit {
				ref.Schedule(interval, fire)
			}
		}
		ref.At(start, fire)
	}
	install(0, 3, 11, 500)
	install(1, 5, 13, 500)
	ref.Run(until)
	for p := range logs {
		if !reflect.DeepEqual(logs[p], refLogs[p]) {
			t.Errorf("partition %d: conservative window order diverged from the sequential merge\n got %v\nwant %v",
				p, logs[p], refLogs[p])
		}
	}
}

func TestGroupSinglePartitionEqualsRun(t *testing.T) {
	mk := func() (*Scheduler, *[]Time) {
		s := New(9)
		var fired []Time
		var tick func()
		tick = func() {
			fired = append(fired, s.Now())
			if s.Now() < 100 {
				s.Schedule(9, tick)
			}
		}
		s.At(0, tick)
		return s, &fired
	}
	seq, seqLog := mk()
	seq.Run(100)
	par, parLog := mk()
	g := &Group{Parts: []*Scheduler{par}, Lookahead: Microsecond}
	g.Run(100, 4)
	if !reflect.DeepEqual(*seqLog, *parLog) {
		t.Fatalf("single-partition group diverged from Scheduler.Run: %v vs %v", *parLog, *seqLog)
	}
	if seq.Now() != par.Now() {
		t.Fatalf("final clocks differ: %v vs %v", seq.Now(), par.Now())
	}
}

func TestGroupInclusiveUntil(t *testing.T) {
	s := New(1)
	ran := false
	s.At(50, func() { ran = true })
	g := &Group{Parts: []*Scheduler{s}, Lookahead: 1}
	g.Run(50, 2)
	if !ran {
		t.Fatal("event exactly at until did not run (Run's inclusive bound)")
	}
	if s.Now() != 50 {
		t.Fatalf("clock %v, want 50", s.Now())
	}
}
