package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds = %v, want 2", got)
	}
	if got := (1500 * Microsecond).Microseconds(); got != 1500 {
		t.Errorf("Microseconds = %v, want 1500", got)
	}
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond || Microsecond != 1000*Nanosecond {
		t.Error("time unit ladder inconsistent")
	}
}

func TestScheduleAndRunOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(30, func() { order = append(order, 3) })
	s.Schedule(10, func() { order = append(order, 1) })
	s.Schedule(20, func() { order = append(order, 2) })
	if n := s.RunAll(); n != 3 {
		t.Fatalf("RunAll executed %d events, want 3", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("execution order %v, want [1 2 3]", order)
		}
	}
	if s.Now() != 30 {
		t.Errorf("Now = %v, want 30", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(50, func() { order = append(order, i) })
	}
	s.RunAll()
	if !sort.IntsAreSorted(order) {
		t.Error("simultaneous events did not run in scheduling order")
	}
	if len(order) != 100 {
		t.Errorf("ran %d events, want 100", len(order))
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, s.Now())
		if len(ticks) < 5 {
			s.Schedule(10, tick)
		}
	}
	s.Schedule(0, tick)
	s.RunAll()
	want := []Time{0, 10, 20, 30, 40}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.Schedule(10, func() { fired = true })
	if !tm.Active() {
		t.Error("timer should be active before firing")
	}
	if !s.Cancel(tm) {
		t.Error("first Cancel should succeed")
	}
	if s.Cancel(tm) {
		t.Error("second Cancel should report false")
	}
	if tm.Active() {
		t.Error("canceled timer should not be active")
	}
	s.RunAll()
	if fired {
		t.Error("canceled timer fired")
	}
	if s.Executed() != 0 {
		t.Errorf("Executed = %d, want 0", s.Executed())
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New(1)
	tm := s.Schedule(5, func() {})
	s.RunAll()
	if s.Cancel(tm) {
		t.Error("Cancel after firing should report false")
	}
	if tm.Active() {
		t.Error("fired timer should not be active")
	}
}

func TestCancelZeroHandle(t *testing.T) {
	s := New(1)
	var tm Timer
	if s.Cancel(tm) {
		t.Error("Cancel of the zero handle should report false")
	}
	if tm.Active() {
		t.Error("zero handle should not be active")
	}
	if tm.When() != 0 {
		t.Errorf("zero handle When = %v, want 0", tm.When())
	}
}

// TestStaleHandleSafety: a handle retained past its timer's firing must
// stay inert even after the underlying entry is recycled for a new
// event. This is the contract that makes the timer free list safe.
func TestStaleHandleSafety(t *testing.T) {
	s := New(1)
	stale := s.Schedule(1, func() {})
	s.RunAll()
	// The free list now holds the fired entry; the next schedule reuses it.
	fresh := s.Schedule(10, func() {})
	if stale.Active() {
		t.Error("stale handle reports active after its timer fired")
	}
	if s.Cancel(stale) {
		t.Error("stale handle canceled a recycled timer")
	}
	if !fresh.Active() {
		t.Fatal("recycled timer should be active for its new owner")
	}
	if !s.Cancel(fresh) {
		t.Error("fresh handle failed to cancel its own timer")
	}
	// Same protection after cancellation recycles the entry.
	reused := s.Schedule(20, func() {})
	if fresh.Active() || s.Cancel(fresh) {
		t.Error("canceled handle affects the reused entry")
	}
	if !reused.Active() {
		t.Error("reused entry should be active")
	}
}

// TestSteadyStateAllocFree: once the free list is warm, scheduling and
// firing performs no heap allocation.
func TestSteadyStateAllocFree(t *testing.T) {
	s := New(1)
	fn := func() {}
	// Warm the free list and heap capacity.
	for i := 0; i < 64; i++ {
		s.Schedule(Time(i), fn)
	}
	s.RunAll()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			s.Schedule(Time(i%7), fn)
		}
		s.RunAll()
	})
	if allocs != 0 {
		t.Errorf("steady-state scheduling allocates %v per run, want 0", allocs)
	}
}

// pingEvent implements Event for the closure-free scheduling path.
type pingEvent struct {
	s     *Scheduler
	fires int
	last  Time
}

func (e *pingEvent) Fire() {
	e.fires++
	e.last = e.s.Now()
}

func TestScheduleEvent(t *testing.T) {
	s := New(1)
	ev := &pingEvent{s: s}
	s.ScheduleEvent(15, ev)
	tm := s.AtEvent(30, ev)
	s.ScheduleEvent(40, ev)
	s.Cancel(tm)
	s.RunAll()
	if ev.fires != 2 {
		t.Errorf("event fired %d times, want 2 (one canceled)", ev.fires)
	}
	if ev.last != 40 {
		t.Errorf("last firing at %v, want 40", ev.last)
	}
	if s.Executed() != 2 {
		t.Errorf("Executed = %d, want 2", s.Executed())
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.ScheduleEvent(5, ev)
		s.RunAll()
	})
	if allocs != 0 {
		t.Errorf("pooled event scheduling allocates %v per run, want 0", allocs)
	}
}

// TestEventClosureInterleaving: closure timers and typed events share one
// queue and one FIFO ordering.
func TestEventClosureInterleaving(t *testing.T) {
	s := New(1)
	var order []string
	ev := orderEvent{log: &order, tag: "event"}
	s.At(10, func() { order = append(order, "fn1") })
	s.AtEvent(10, &ev)
	s.At(10, func() { order = append(order, "fn2") })
	s.RunAll()
	want := []string{"fn1", "event", "fn2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

type orderEvent struct {
	log *[]string
	tag string
}

func (e *orderEvent) Fire() { *e.log = append(*e.log, e.tag) }

func TestRunUntil(t *testing.T) {
	s := New(1)
	var ran []Time
	for _, at := range []Time{5, 10, 15, 20, 25} {
		at := at
		s.At(at, func() { ran = append(ran, at) })
	}
	n := s.Run(15)
	if n != 3 {
		t.Errorf("Run(15) executed %d, want 3 (inclusive boundary)", n)
	}
	if s.Now() != 15 {
		t.Errorf("Now = %v, want 15", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	n = s.Run(100)
	if n != 2 {
		t.Errorf("second Run executed %d, want 2", n)
	}
	if s.Now() != 100 {
		t.Errorf("Now advances to the run horizon: %v, want 100", s.Now())
	}
}

func TestRunAdvancesClockWithEmptyQueue(t *testing.T) {
	s := New(1)
	s.Run(500)
	if s.Now() != 500 {
		t.Errorf("Now = %v, want 500", s.Now())
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	s := New(1)
	s.Schedule(100, func() {})
	s.RunAll()
	if s.Now() != 100 {
		t.Fatalf("Now = %v", s.Now())
	}
	var at Time
	tm := s.At(50, func() { at = s.Now() }) // in the past
	if tm.When() != 100 {
		t.Errorf("When = %v, want clamped to 100", tm.When())
	}
	s.RunAll()
	if at != 100 {
		t.Errorf("past event ran at %v, want 100", at)
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	s := New(1)
	ran := false
	s.Schedule(-5, func() { ran = true })
	s.RunAll()
	if !ran || s.Now() != 0 {
		t.Errorf("negative delay: ran=%v now=%v, want true/0", ran, s.Now())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []Time {
		s := New(seed)
		var log []Time
		var step func()
		step = func() {
			log = append(log, s.Now())
			if len(log) < 200 {
				s.Schedule(Time(s.Rand().Intn(100)+1), step)
			}
		}
		s.Schedule(0, step)
		s.RunAll()
		return log
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("different run lengths for same seed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at step %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

// TestClockMonotonicity: no matter how events are scheduled, the observed
// clock at execution time never decreases.
func TestClockMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		rng := rand.New(rand.NewSource(seed))
		var times []Time
		for i := 0; i < 100; i++ {
			s.At(Time(rng.Intn(1000)), func() { times = append(times, s.Now()) })
		}
		s.RunAll()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCancelStorm: heavy cancellation (the MAC workload) must not corrupt
// the queue.
func TestCancelStorm(t *testing.T) {
	s := New(7)
	rng := rand.New(rand.NewSource(99))
	var live, canceled int
	var timers []Timer
	for i := 0; i < 10000; i++ {
		tm := s.At(Time(rng.Intn(5000)), func() { live++ })
		timers = append(timers, tm)
	}
	for _, tm := range timers {
		if rng.Intn(2) == 0 {
			if s.Cancel(tm) {
				canceled++
			}
		}
	}
	s.RunAll()
	if live+canceled != 10000 {
		t.Errorf("live %d + canceled %d != 10000", live, canceled)
	}
	if uint64(live) != s.Executed() {
		t.Errorf("Executed = %d, want %d", s.Executed(), live)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New(1)
	if s.Step() {
		t.Error("Step on empty queue should return false")
	}
	tm := s.Schedule(1, func() {})
	s.Cancel(tm)
	if s.Step() {
		t.Error("Step with only canceled events should return false")
	}
}

// TestSchedulerAgainstReferenceModel stress-tests the event heap against
// a brute-force reference: random schedules and cancellations must fire
// in exactly the order a sort-based model predicts.
func TestSchedulerAgainstReferenceModel(t *testing.T) {
	type ref struct {
		at    Time
		seq   int
		alive bool
	}
	for trial := 0; trial < 20; trial++ {
		s := New(int64(trial))
		rng := rand.New(rand.NewSource(int64(trial) * 7))
		var (
			model  []*ref
			timers []Timer
			fired  []int
		)
		for i := 0; i < 500; i++ {
			at := Time(rng.Intn(10000))
			r := &ref{at: at, seq: i, alive: true}
			model = append(model, r)
			i := i
			timers = append(timers, s.At(at, func() { fired = append(fired, i) }))
		}
		for i, tm := range timers {
			if rng.Intn(3) == 0 {
				s.Cancel(tm)
				model[i].alive = false
			}
		}
		s.RunAll()
		var want []int
		alive := make([]*ref, 0, len(model))
		for _, r := range model {
			if r.alive {
				alive = append(alive, r)
			}
		}
		sort.Slice(alive, func(a, b int) bool {
			if alive[a].at != alive[b].at {
				return alive[a].at < alive[b].at
			}
			return alive[a].seq < alive[b].seq
		})
		for _, r := range alive {
			want = append(want, r.seq)
		}
		if len(fired) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("trial %d: order diverges at %d: got %d want %d", trial, i, fired[i], want[i])
			}
		}
	}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Microsecond).String(); got != "1.5ms" {
		t.Errorf("String = %q, want 1.5ms", got)
	}
}
