package des

import "testing"

// TestActivePendingCounting pins the classification bookkeeping: the
// active count tracks scheduling, firing and cancellation of both
// classes, and recycled timers never leak their class onto the next
// occupant of the same entry.
func TestActivePendingCounting(t *testing.T) {
	s := New(1)
	if got := s.ActivePending(); got != 0 {
		t.Fatalf("empty scheduler: ActivePending = %d, want 0", got)
	}
	a := s.Schedule(10, func() {})
	s.ScheduleInert(20, func() {})
	i2 := s.AtInert(30, func() {})
	if got, p := s.ActivePending(), s.Pending(); got != 1 || p != 3 {
		t.Fatalf("ActivePending = %d, Pending = %d, want 1, 3", got, p)
	}
	s.At(40, func() {})
	if got := s.ActivePending(); got != 2 {
		t.Fatalf("after At: ActivePending = %d, want 2", got)
	}

	// Cancel one of each class.
	s.Cancel(a)
	s.Cancel(i2)
	if got, p := s.ActivePending(), s.Pending(); got != 1 || p != 2 {
		t.Fatalf("after cancels: ActivePending = %d, Pending = %d, want 1, 2", got, p)
	}

	// Fire the rest; count must drain to zero.
	s.RunAll()
	if got, p := s.ActivePending(), s.Pending(); got != 0 || p != 0 {
		t.Fatalf("after drain: ActivePending = %d, Pending = %d, want 0, 0", got, p)
	}

	// A recycled entry that carried an inert event must count again when
	// reused for an active one (and vice versa).
	s.ScheduleInert(5, func() {})
	s.RunAll()
	s.Schedule(5, func() {})
	if got := s.ActivePending(); got != 1 {
		t.Fatalf("recycled entry reused as active: ActivePending = %d, want 1", got)
	}
	s.RunAll()
	if got := s.ActivePending(); got != 0 {
		t.Fatalf("final drain: ActivePending = %d, want 0", got)
	}
}

// TestInertOrderingIdentical verifies inert classification is invisible
// to execution order: inert and active events at the same instant still
// fire in scheduling (FIFO) order.
func TestInertOrderingIdentical(t *testing.T) {
	s := New(1)
	var order []int
	s.At(10, func() { order = append(order, 0) })
	s.AtInert(10, func() { order = append(order, 1) })
	s.At(10, func() { order = append(order, 2) })
	s.AtInert(5, func() { order = append(order, 3) })
	s.RunAll()
	want := []int{3, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order %v, want %v", order, want)
		}
	}
}

// TestInertSelfReschedule pins the pattern every inert driver uses
// (CBR arrivals, mobility ticks): an inert callback rescheduling itself
// keeps the active count at zero throughout.
func TestInertSelfReschedule(t *testing.T) {
	s := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if mid := s.ActivePending(); mid != 0 {
			t.Fatalf("inside inert tick: ActivePending = %d, want 0", mid)
		}
		if n < 5 {
			s.ScheduleInert(10, tick)
		}
	}
	s.ScheduleInert(10, tick)
	s.Run(100)
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
}
