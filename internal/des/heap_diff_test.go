package des

// Differential test of the hand-rolled typed min-heap against the stdlib
// container/heap implementation the scheduler originally used. Both sides
// see the same randomized stream of inserts and cancellations; the pop
// order must match exactly, including FIFO tie-breaking among
// simultaneous events and the behavior of index-based removal.

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refTimer mirrors the scheduler's queue entry for the reference heap.
type refTimer struct {
	at    Time
	seq   uint64
	id    int
	index int
}

// refHeap is the container/heap-backed reference: a min-heap over
// (at, seq) with index maintenance, exactly like the pre-optimization
// scheduler queue.
type refHeap []*refTimer

func (h refHeap) Len() int { return len(h) }

func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *refHeap) Push(x any) {
	tm := x.(*refTimer)
	tm.index = len(*h)
	*h = append(*h, tm)
}

func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	tm.index = -1
	*h = old[:n-1]
	return tm
}

// TestTypedHeapMatchesContainerHeap drives the scheduler and the
// reference heap with identical random insert/cancel workloads and
// checks they agree on the exact firing order.
func TestTypedHeapMatchesContainerHeap(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*1009 + 1))
		s := New(0)

		var ref refHeap
		var refSeq uint64
		live := make(map[int]*refTimer) // id -> reference entry still queued
		handles := make(map[int]Timer)  // id -> scheduler handle
		var fired []int                 // scheduler-side firing order
		nextID := 0

		ops := 2000
		for op := 0; op < ops; op++ {
			switch r := rng.Intn(10); {
			case r < 6: // insert
				id := nextID
				nextID++
				at := Time(rng.Intn(100000))
				handles[id] = s.At(at, func() { fired = append(fired, id) })
				// The scheduler clamps to Now; mirror that.
				if at < s.Now() {
					at = s.Now()
				}
				refSeq++
				tm := &refTimer{at: at, seq: refSeq, id: id}
				heap.Push(&ref, tm)
				live[id] = tm
			case r < 8: // cancel a random live timer
				for id, tm := range live {
					got := s.Cancel(handles[id])
					if !got {
						t.Fatalf("trial %d: Cancel of live timer %d failed", trial, id)
					}
					heap.Remove(&ref, tm.index)
					delete(live, id)
					break
				}
			default: // run a bounded slice of virtual time
				horizon := s.Now() + Time(rng.Intn(20000))
				s.Run(horizon)
				for ref.Len() > 0 && ref[0].at <= horizon {
					tm := heap.Pop(&ref).(*refTimer)
					delete(live, tm.id)
					if len(fired) == 0 {
						t.Fatalf("trial %d: reference fired %d, scheduler fired nothing", trial, tm.id)
					}
					got := fired[0]
					fired = fired[1:]
					if got != tm.id {
						t.Fatalf("trial %d: pop order diverged: scheduler %d, reference %d", trial, got, tm.id)
					}
				}
				if len(fired) != 0 {
					t.Fatalf("trial %d: scheduler fired %d extra events", trial, len(fired))
				}
			}
		}
		// Drain both completely.
		s.RunAll()
		for ref.Len() > 0 {
			tm := heap.Pop(&ref).(*refTimer)
			if len(fired) == 0 {
				t.Fatalf("trial %d: drain: reference had %d, scheduler empty", trial, tm.id)
			}
			got := fired[0]
			fired = fired[1:]
			if got != tm.id {
				t.Fatalf("trial %d: drain order diverged: scheduler %d, reference %d", trial, got, tm.id)
			}
		}
		if len(fired) != 0 {
			t.Fatalf("trial %d: scheduler fired %d events the reference never had", trial, len(fired))
		}
		if s.Pending() != 0 {
			t.Fatalf("trial %d: %d events still pending after drain", trial, s.Pending())
		}
	}
}
