// Package geom provides the planar geometry used by both the analytical
// model and the network simulator: points and vectors, angle arithmetic on
// the circle, beam (sector) containment tests, and the closed-form region
// areas from the Takagi–Kleinrock model that the paper builds on.
//
// Throughout the package, angles are in radians and bearings are measured
// counter-clockwise from the positive x axis in (-π, π].
package geom

import "math"

// Point is a location on the plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by the vector v.
func (p Point) Add(v Vec) Point {
	return Point{X: p.X + v.X, Y: p.Y + v.Y}
}

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vec {
	return Vec{X: p.X - q.X, Y: p.Y - q.Y}
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths such as neighbor scans.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Bearing returns the angle of the direction from p to q in (-π, π].
// Bearing of a point to itself is 0 by convention.
func (p Point) Bearing(q Point) float64 {
	if p == q {
		return 0
	}
	return math.Atan2(q.Y-p.Y, q.X-p.X)
}

// Vec is a displacement on the plane.
type Vec struct {
	X, Y float64
}

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec {
	return Vec{X: v.X * k, Y: v.Y * k}
}

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 {
	return math.Hypot(v.X, v.Y)
}

// Angle returns the direction of v in (-π, π]. The zero vector maps to 0.
func (v Vec) Angle() float64 {
	if v.X == 0 && v.Y == 0 {
		return 0
	}
	return math.Atan2(v.Y, v.X)
}

// Polar returns the point at distance r and bearing theta from the origin
// point o.
func Polar(o Point, r, theta float64) Point {
	return Point{X: o.X + r*math.Cos(theta), Y: o.Y + r*math.Sin(theta)}
}

// NormalizeAngle maps an angle to the canonical interval (-π, π].
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	switch {
	case a <= -math.Pi:
		a += 2 * math.Pi
	case a > math.Pi:
		a -= 2 * math.Pi
	}
	return a
}

// AngleDiff returns the signed smallest rotation taking angle b to angle a,
// in (-π, π].
func AngleDiff(a, b float64) float64 {
	return NormalizeAngle(a - b)
}

// WithinBeam reports whether the direction dir lies inside a beam of total
// width beamwidth centered on bearing. The beam edges are inclusive. A
// beamwidth of at least 2π always contains every direction.
func WithinBeam(bearing, beamwidth, dir float64) bool {
	if beamwidth >= 2*math.Pi {
		return true
	}
	return math.Abs(AngleDiff(dir, bearing)) <= beamwidth/2+1e-12
}
