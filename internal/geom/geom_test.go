package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); !almostEqual(got, tt.want*tt.want, 1e-12) {
				t.Errorf("Dist2(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
			}
		})
	}
}

func TestDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{ax, ay}, Point{bx, by}
		return p.Dist(q) == q.Dist(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBearing(t *testing.T) {
	o := Point{0, 0}
	tests := []struct {
		name string
		q    Point
		want float64
	}{
		{"east", Point{1, 0}, 0},
		{"north", Point{0, 1}, math.Pi / 2},
		{"west", Point{-1, 0}, math.Pi},
		{"south", Point{0, -1}, -math.Pi / 2},
		{"northeast", Point{1, 1}, math.Pi / 4},
		{"self", Point{0, 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := o.Bearing(tt.q); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Bearing(%v) = %v, want %v", tt.q, got, tt.want)
			}
		})
	}
}

func TestPolarRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		o := Point{rng.Float64()*10 - 5, rng.Float64()*10 - 5}
		r := rng.Float64()*5 + 0.01
		theta := rng.Float64()*2*math.Pi - math.Pi
		p := Polar(o, r, theta)
		if got := o.Dist(p); !almostEqual(got, r, 1e-9) {
			t.Fatalf("Polar distance = %v, want %v", got, r)
		}
		if got := o.Bearing(p); math.Abs(AngleDiff(got, theta)) > 1e-9 {
			t.Fatalf("Polar bearing = %v, want %v", got, theta)
		}
	}
}

func TestVecOps(t *testing.T) {
	v := Point{3, 4}.Sub(Point{0, 0})
	if v.Len() != 5 {
		t.Errorf("Len = %v, want 5", v.Len())
	}
	w := v.Scale(2)
	if w.X != 6 || w.Y != 8 {
		t.Errorf("Scale = %v, want {6 8}", w)
	}
	if got := (Vec{0, 0}).Angle(); got != 0 {
		t.Errorf("zero vector Angle = %v, want 0", got)
	}
	p := Point{1, 1}.Add(Vec{2, -1})
	if p != (Point{3, 0}) {
		t.Errorf("Add = %v, want {3 0}", p)
	}
}

func TestNormalizeAngle(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{3 * math.Pi, math.Pi},
		{-3 * math.Pi, math.Pi},
		{math.Pi / 2, math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
		{-math.Pi / 2, -math.Pi / 2},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.in); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestNormalizeAngleProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e9 {
			return true // out of the domain we care about
		}
		got := NormalizeAngle(a)
		if got <= -math.Pi || got > math.Pi {
			return false
		}
		// Same direction: sin and cos must agree.
		return almostEqual(math.Sin(got), math.Sin(a), 1e-6) &&
			almostEqual(math.Cos(got), math.Cos(a), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWithinBeam(t *testing.T) {
	tests := []struct {
		name                    string
		bearing, beamwidth, dir float64
		want                    bool
	}{
		{"center of beam", 0, math.Pi / 2, 0, true},
		{"on +edge", 0, math.Pi / 2, math.Pi / 4, true},
		{"on -edge", 0, math.Pi / 2, -math.Pi / 4, true},
		{"just outside", 0, math.Pi / 2, math.Pi/4 + 0.01, false},
		{"opposite", 0, math.Pi / 2, math.Pi, false},
		{"wraparound inside", math.Pi, math.Pi / 2, -math.Pi + 0.1, true},
		{"wraparound outside", math.Pi, math.Pi / 2, 0, false},
		{"full circle", 1.0, 2 * math.Pi, -2.0, true},
		{"wider than circle", 1.0, 7.0, -2.0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := WithinBeam(tt.bearing, tt.beamwidth, tt.dir); got != tt.want {
				t.Errorf("WithinBeam(%v, %v, %v) = %v, want %v",
					tt.bearing, tt.beamwidth, tt.dir, got, tt.want)
			}
		})
	}
}

// TestWithinBeamFraction checks that a beam of width θ contains a fraction
// θ/2π of uniformly random directions.
func TestWithinBeamFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, theta := range []float64{math.Pi / 6, math.Pi / 2, math.Pi, 3 * math.Pi / 2} {
		bearing := rng.Float64()*2*math.Pi - math.Pi
		const n = 200000
		in := 0
		for i := 0; i < n; i++ {
			dir := rng.Float64()*2*math.Pi - math.Pi
			if WithinBeam(bearing, theta, dir) {
				in++
			}
		}
		got := float64(in) / n
		want := theta / (2 * math.Pi)
		if !almostEqual(got, want, 0.01) {
			t.Errorf("beam θ=%v: fraction = %v, want ≈ %v", theta, got, want)
		}
	}
}

func TestQFunc(t *testing.T) {
	if got := QFunc(0); !almostEqual(got, math.Pi/2, 1e-12) {
		t.Errorf("QFunc(0) = %v, want π/2", got)
	}
	if got := QFunc(1); got != 0 {
		t.Errorf("QFunc(1) = %v, want 0", got)
	}
	if got := QFunc(-1); !almostEqual(got, math.Pi/2, 1e-12) {
		t.Errorf("QFunc(-1) clamps to %v, want π/2", got)
	}
	if got := QFunc(2); got != 0 {
		t.Errorf("QFunc(2) clamps to %v, want 0", got)
	}
	// Monotonically decreasing on [0, 1].
	prev := QFunc(0)
	for i := 1; i <= 100; i++ {
		cur := QFunc(float64(i) / 100)
		if cur > prev {
			t.Fatalf("QFunc not decreasing at t=%v", float64(i)/100)
		}
		prev = cur
	}
}

// TestHiddenAreaMonteCarlo cross-checks the closed form B(r)/πR² against a
// Monte-Carlo estimate of the area inside the receiver's disk but outside
// the sender's disk.
func TestHiddenAreaMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, r := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		sender := Point{0, 0}
		receiver := Point{r, 0}
		const n = 400000
		hidden := 0
		for i := 0; i < n; i++ {
			// Uniform point in the receiver's unit disk.
			a := rng.Float64() * 2 * math.Pi
			d := math.Sqrt(rng.Float64())
			p := Polar(receiver, d, a)
			if p.Dist(sender) > 1 {
				hidden++
			}
		}
		got := float64(hidden) / n
		want := HiddenArea(r)
		if !almostEqual(got, want, 0.01) {
			t.Errorf("HiddenArea(%v) = %v, Monte-Carlo %v", r, want, got)
		}
	}
}

func TestHiddenAreaLimits(t *testing.T) {
	if got := HiddenArea(0); !almostEqual(got, 0, 1e-12) {
		t.Errorf("HiddenArea(0) = %v, want 0", got)
	}
	// At r=1: 1 − 2q(1/2)/π where q(1/2) = π/3 − √3/4.
	want := 1 - 2*(math.Pi/3-math.Sqrt(3)/4)/math.Pi
	if got := HiddenArea(1); !almostEqual(got, want, 1e-12) {
		t.Errorf("HiddenArea(1) = %v, want %v", got, want)
	}
	// Complement relation.
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := HiddenArea(r) + CommonArea(r); !almostEqual(got, 1, 1e-12) {
			t.Errorf("HiddenArea+CommonArea at r=%v = %v, want 1", r, got)
		}
	}
}

func TestHiddenAreaMonotone(t *testing.T) {
	prev := HiddenArea(0)
	for i := 1; i <= 100; i++ {
		cur := HiddenArea(float64(i) / 100)
		if cur < prev {
			t.Fatalf("HiddenArea not increasing at r=%v", float64(i)/100)
		}
		prev = cur
	}
}

func TestDRTSDCTSAreasInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		r := rng.Float64()
		theta := rng.Float64()*2*math.Pi + 1e-6
		a := DRTSDCTSAreas(r, theta)
		for name, v := range map[string]float64{
			"I": a.I, "II": a.II, "III": a.III, "IV": a.IV, "V": a.V,
		} {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("area %s negative or NaN: %v (r=%v θ=%v)", name, v, r, theta)
			}
		}
		// II+III must equal the clamped union regardless of the split.
		union := CommonArea(r) - theta/(2*math.Pi)
		if union < 0 {
			union = 0
		}
		if !almostEqual(a.II+a.III, union, 1e-9) {
			t.Fatalf("II+III = %v, want %v (r=%v θ=%v)", a.II+a.III, union, r, theta)
		}
		if !almostEqual(a.IV, a.V, 0) {
			t.Fatalf("IV != V")
		}
		if !almostEqual(a.IV, HiddenArea(r), 1e-12) {
			t.Fatalf("IV = %v, want HiddenArea(%v) = %v", a.IV, r, HiddenArea(r))
		}
	}
}

func TestDRTSDCTSAreasNarrowBeam(t *testing.T) {
	// For a narrow beam and small r, the paper's triangle split should be
	// active: S_II slightly below θ/2π, S_III the remainder.
	a := DRTSDCTSAreas(0.3, math.Pi/6)
	rawII := (math.Pi/6 - 0.3*0.3*math.Tan(math.Pi/12)) / (2 * math.Pi)
	if !almostEqual(a.II, rawII, 1e-12) {
		t.Errorf("narrow-beam S_II = %v, want raw %v", a.II, rawII)
	}
	if a.II <= 0 || a.III <= 0 {
		t.Errorf("narrow-beam areas should both be positive: %+v", a)
	}
}

func TestDRTSOCTSAreas(t *testing.T) {
	a := DRTSOCTSAreas(0.5, math.Pi/2)
	if !almostEqual(a.I, 0.25, 1e-12) {
		t.Errorf("S_I = %v, want 0.25", a.I)
	}
	if !almostEqual(a.II, 0.75, 1e-12) {
		t.Errorf("S_II = %v, want 0.75", a.II)
	}
	if !almostEqual(a.III, HiddenArea(0.5), 1e-12) {
		t.Errorf("S_III = %v, want %v", a.III, HiddenArea(0.5))
	}
	if !almostEqual(a.I+a.II, 1, 1e-12) {
		t.Errorf("S_I+S_II = %v, want 1", a.I+a.II)
	}
}

func TestAngleDiff(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{math.Pi / 2, 0, math.Pi / 2},
		{0, math.Pi / 2, -math.Pi / 2},
		{-3, 3, 2*math.Pi - 6},
		{math.Pi, -math.Pi, 0},
	}
	for _, tt := range tests {
		if got := AngleDiff(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("AngleDiff(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}
