package geom

import "math"

// The closed-form region areas below come from the paper (Section 2) and
// from Takagi & Kleinrock's analysis of randomly distributed packet-radio
// terminals. All distances are normalized so that the transmission range
// R = 1, and all areas are normalized by the coverage disk area πR², so a
// returned "area" is the fraction of a full coverage disk.

// QFunc is the lens helper q(t) = arccos(t) − t·sqrt(1−t²) used by the
// Takagi–Kleinrock hidden-area formula. It is defined for t in [0, 1] and
// decreases from π/2 at t=0 to 0 at t=1. Inputs are clamped to [0, 1].
func QFunc(t float64) float64 {
	if t <= 0 {
		return math.Pi / 2
	}
	if t >= 1 {
		return 0
	}
	return math.Acos(t) - t*math.Sqrt(1-t*t)
}

// HiddenArea returns B(r)/(πR²): the fraction of the receiver's coverage
// disk that is outside the sender's coverage disk (the hidden-terminal
// region), for a sender–receiver distance r in [0, 1]:
//
//	B(r) = πR² − 2R²·q(r/2R)  ⇒  B(r)/πR² = 1 − 2q(r/2)/π  (R = 1).
func HiddenArea(r float64) float64 {
	return 1 - 2*QFunc(r/2)/math.Pi
}

// CommonArea returns the fraction of a coverage disk covered by the
// intersection of two unit-radius disks whose centers are r apart:
// 2q(r/2)/π. It is the complement of HiddenArea.
func CommonArea(r float64) float64 {
	return 2 * QFunc(r/2) / math.Pi
}

// DDAreas holds the five normalized region areas of the DRTS-DCTS analysis
// (Fig. 3 of the paper) for a sender x and receiver y at distance r with
// transmission beamwidth theta. Areas are fractions of πR².
type DDAreas struct {
	I   float64 // nodes that can hit y, unaware of x's directional RTS
	II  float64 // forward sector overlap: must stay quiet toward y
	III float64 // common coverage outside the beam corridor
	IV  float64 // hidden from x: interferes while y transmits CTS/ACK
	V   float64 // hidden from y: interferes while x transmits RTS/DATA
}

// DRTSDCTSAreas computes the DDAreas for distance r in [0, 1] and
// beamwidth theta in (0, 2π]. The paper's raw expressions are
//
//	S_I   = θ/2π
//	S_II  = θ/2π − r²·tan(θ/2)/2π
//	S_III = 2q(r/2)/π − θ/π + r²·tan(θ/2)/2π
//	S_IV  = S_V = 1 − 2q(r/2)/π
//
// The triangle term r²·tan(θ/2) diverges as θ→π and the raw S_II/S_III go
// negative for wide beams, so this implementation clamps each of S_II and
// S_III to be non-negative while preserving their sum
// S_II+S_III = 2q(r/2)/π − θ/2π (itself clamped at 0 when the beam covers
// the whole common region). This keeps the model numerically meaningful
// across the paper's full 15°–180° sweep.
func DRTSDCTSAreas(r, theta float64) DDAreas {
	var (
		sI     = theta / (2 * math.Pi)
		hidden = HiddenArea(r)
		union  = CommonArea(r) - theta/(2*math.Pi) // S_II + S_III
	)
	if union < 0 {
		union = 0
	}
	// Split the union using the paper's triangle approximation where it is
	// well behaved (θ < π), clamping the split into [0, union].
	sII := 0.0
	if theta < math.Pi {
		sII = (theta - r*r*math.Tan(theta/2)) / (2 * math.Pi)
		if sII < 0 {
			sII = 0
		}
		if sII > union {
			sII = union
		}
	}
	return DDAreas{
		I:   sI,
		II:  sII,
		III: union - sII,
		IV:  hidden,
		V:   hidden,
	}
}

// DOAreas holds the three normalized region areas of the DRTS-OCTS analysis
// (Fig. 4 of the paper). Areas are fractions of πR².
type DOAreas struct {
	I   float64 // nodes in the RTS beam footprint near y
	II  float64 // everywhere else in x's disk: silenced only toward y
	III float64 // hidden from x: interferes while y transmits CTS/ACK
}

// DRTSOCTSAreas computes the DOAreas for distance r in [0, 1] and
// beamwidth theta in (0, 2π]:
//
//	S_I   = θ/2π
//	S_II  = 1 − θ/2π
//	S_III = 1 − 2q(r/2)/π
func DRTSOCTSAreas(r, theta float64) DOAreas {
	return DOAreas{
		I:   theta / (2 * math.Pi),
		II:  1 - theta/(2*math.Pi),
		III: HiddenArea(r),
	}
}
