// Package trace records structured protocol events from a simulation
// run: transmissions, receptions, timeouts, backoff draws, successes and
// drops. A Recorder keeps a bounded ring of events that can be filtered
// and rendered as a timeline — the debugging view GloMoSim users get
// from its trace files.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/des"
	"repro/internal/phy"
)

// Kind classifies a protocol event.
type Kind int

// Event kinds emitted by the MAC layer.
const (
	TxStart   Kind = iota + 1 // frame handed to the radio
	RxFrame                   // frame addressed to this node decoded
	Overheard                 // frame for someone else decoded (NAV set)
	RxError                   // garbled energy observed
	Backoff                   // backoff counter drawn
	Timeout                   // CTS or ACK timeout fired
	Success                   // four-way handshake completed
	Drop                      // packet abandoned after retry limit
)

var kindNames = map[Kind]string{
	TxStart:   "tx",
	RxFrame:   "rx",
	Overheard: "overheard",
	RxError:   "rx-error",
	Backoff:   "backoff",
	Timeout:   "timeout",
	Success:   "success",
	Drop:      "drop",
}

// String names the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded protocol event.
type Event struct {
	At    des.Time
	Node  phy.NodeID
	Kind  Kind
	Frame phy.FrameType // zero when not frame-related
	Peer  phy.NodeID    // counterpart node, -1 when not applicable
	Note  string        // free-form detail ("cw=63", "retry 2", ...)
}

// String renders the event as one timeline line.
func (e Event) String() string {
	s := fmt.Sprintf("%12v node %3d %-9s", e.At, e.Node, e.Kind)
	if e.Frame != 0 {
		s += " " + e.Frame.String()
	}
	if e.Peer >= 0 {
		s += fmt.Sprintf(" peer %d", e.Peer)
	}
	if e.Note != "" {
		s += " (" + e.Note + ")"
	}
	return s
}

// kindByName is the inverse of kindNames, for JSON decoding.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// frameByName maps the conventional frame-type names back to values.
var frameByName = map[string]phy.FrameType{
	"RTS": phy.RTS, "CTS": phy.CTS, "DATA": phy.Data,
	"ACK": phy.ACK, "HELLO": phy.Hello,
}

// jsonEvent is the wire form of Event: sim-time nanoseconds plus the
// human-readable kind and frame names, so trace JSONL is greppable and
// feeds cmd/simtrace without a schema lookup. Peer is always present
// (-1 means "not applicable") because omitting it would make peer 0
// indistinguishable from no peer.
type jsonEvent struct {
	T     int64  `json:"t"`
	Node  int    `json:"node"`
	Kind  string `json:"kind"`
	Frame string `json:"frame,omitempty"`
	Peer  int    `json:"peer"`
	Note  string `json:"note,omitempty"`
}

// MarshalJSON renders the event as one JSONL-ready object.
func (e Event) MarshalJSON() ([]byte, error) {
	je := jsonEvent{
		T:    int64(e.At),
		Node: int(e.Node),
		Kind: e.Kind.String(),
		Peer: int(e.Peer),
		Note: e.Note,
	}
	if e.Frame != 0 {
		je.Frame = e.Frame.String()
	}
	return json.Marshal(je)
}

// UnmarshalJSON parses the wire form back into an Event. Unknown kind or
// frame names are rejected so corrupted traces fail loudly.
func (e *Event) UnmarshalJSON(b []byte) error {
	var je jsonEvent
	if err := json.Unmarshal(b, &je); err != nil {
		return fmt.Errorf("trace: parse event: %w", err)
	}
	kind, ok := kindByName[je.Kind]
	if !ok {
		return fmt.Errorf("trace: unknown event kind %q", je.Kind)
	}
	var frame phy.FrameType
	if je.Frame != "" {
		frame, ok = frameByName[je.Frame]
		if !ok {
			return fmt.Errorf("trace: unknown frame type %q", je.Frame)
		}
	}
	*e = Event{
		At:    des.Time(je.T),
		Node:  phy.NodeID(je.Node),
		Kind:  kind,
		Frame: frame,
		Peer:  phy.NodeID(je.Peer),
		Note:  je.Note,
	}
	return nil
}

// Tracer accepts protocol events. Record must be cheap; it runs on the
// simulation's hot path.
type Tracer interface {
	Record(ev Event)
}

// Recorder is a bounded in-memory Tracer. The zero value is not usable;
// create with NewRecorder.
type Recorder struct {
	ring  []Event
	next  int
	count uint64
	full  bool
}

var _ Tracer = (*Recorder)(nil)

// NewRecorder creates a Recorder holding the most recent cap events
// (minimum 1).
func NewRecorder(cap int) *Recorder {
	if cap < 1 {
		cap = 1
	}
	return &Recorder{ring: make([]Event, cap)}
}

// Record stores the event, evicting the oldest when full.
func (r *Recorder) Record(ev Event) {
	r.ring[r.next] = ev
	r.next++
	r.count++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
}

// Total returns the number of events ever recorded (including evicted).
func (r *Recorder) Total() uint64 { return r.count }

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.ring[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Filter returns the retained events that pass keep, in order.
func (r *Recorder) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// ByNode returns the retained events of one node.
func (r *Recorder) ByNode(id phy.NodeID) []Event {
	return r.Filter(func(ev Event) bool { return ev.Node == id })
}

// WriteText renders the retained events one per line.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintln(w, ev); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL renders the retained events one JSON object per line,
// oldest first — the machine-readable sibling of WriteText, and the
// format cmd/simtrace consumes.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// Discard is a Tracer that drops everything (useful as a default).
type Discard struct{}

var _ Tracer = Discard{}

// Record drops the event.
func (Discard) Record(Event) {}
