package trace

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/phy"
)

func ev(at des.Time, node phy.NodeID, kind Kind) Event {
	return Event{At: at, Node: node, Kind: kind, Peer: -1}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{TxStart, "tx"}, {RxFrame, "rx"}, {Overheard, "overheard"},
		{RxError, "rx-error"}, {Backoff, "backoff"}, {Timeout, "timeout"},
		{Success, "success"}, {Drop, "drop"}, {Kind(42), "Kind(42)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		At: 1500 * des.Microsecond, Node: 3, Kind: TxStart,
		Frame: phy.RTS, Peer: 7, Note: "cw=31",
	}
	s := e.String()
	for _, want := range []string{"node   3", "tx", "RTS", "peer 7", "(cw=31)"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
	// No frame / no peer / no note: those segments disappear.
	bare := ev(0, 1, Backoff).String()
	if strings.Contains(bare, "peer") || strings.Contains(bare, "(") {
		t.Errorf("bare event string %q has spurious segments", bare)
	}
}

func TestRecorderOrder(t *testing.T) {
	r := NewRecorder(10)
	for i := 0; i < 5; i++ {
		r.Record(ev(des.Time(i), 0, TxStart))
	}
	events := r.Events()
	if len(events) != 5 {
		t.Fatalf("len = %d, want 5", len(events))
	}
	for i, e := range events {
		if e.At != des.Time(i) {
			t.Fatalf("order broken: %v", events)
		}
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
}

func TestRecorderEviction(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 7; i++ {
		r.Record(ev(des.Time(i), 0, TxStart))
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("len = %d, want 3 (capacity)", len(events))
	}
	// Oldest retained is 4: 4, 5, 6.
	for i, want := range []des.Time{4, 5, 6} {
		if events[i].At != want {
			t.Fatalf("ring contents = %v", events)
		}
	}
	if r.Total() != 7 {
		t.Errorf("Total = %d, want 7 (including evicted)", r.Total())
	}
}

func TestRecorderMinimumCapacity(t *testing.T) {
	r := NewRecorder(0)
	r.Record(ev(1, 0, Drop))
	r.Record(ev(2, 0, Drop))
	events := r.Events()
	if len(events) != 1 || events[0].At != 2 {
		t.Errorf("cap-0 recorder should keep exactly the last event: %v", events)
	}
}

func TestFilterAndByNode(t *testing.T) {
	r := NewRecorder(10)
	r.Record(ev(1, 0, TxStart))
	r.Record(ev(2, 1, Timeout))
	r.Record(ev(3, 0, Success))
	byNode := r.ByNode(0)
	if len(byNode) != 2 {
		t.Errorf("ByNode(0) = %v, want 2 events", byNode)
	}
	timeouts := r.Filter(func(e Event) bool { return e.Kind == Timeout })
	if len(timeouts) != 1 || timeouts[0].Node != 1 {
		t.Errorf("Filter(timeout) = %v", timeouts)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRecorder(4)
	r.Record(ev(1, 0, TxStart))
	r.Record(ev(2, 1, Success))
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Errorf("WriteText lines = %d, want 2", len(lines))
	}
}

// TestRecorderWrapOrdering: after the ring wraps, Events (and therefore
// every writer built on it) must return the retained events oldest
// first — exactly the tail of the recorded sequence.
func TestRecorderWrapOrdering(t *testing.T) {
	const capacity, total = 4, 11
	r := NewRecorder(capacity)
	for i := 0; i < total; i++ {
		r.Record(ev(des.Time(i), phy.NodeID(i%3), TxStart))
	}
	events := r.Events()
	if len(events) != capacity {
		t.Fatalf("len = %d, want %d", len(events), capacity)
	}
	for i, e := range events {
		want := des.Time(total - capacity + i)
		if e.At != want {
			t.Fatalf("event %d has At=%v, want %v (events must come out oldest-first after wrap): %v",
				i, e.At, want, events)
		}
	}
	// A ring that is exactly full (next == 0) is the wrap edge case.
	r2 := NewRecorder(capacity)
	for i := 0; i < 2*capacity; i++ {
		r2.Record(ev(des.Time(i), 0, TxStart))
	}
	for i, e := range r2.Events() {
		if want := des.Time(capacity + i); e.At != want {
			t.Fatalf("exactly-full ring out of order at %d: got %v want %v", i, e.At, want)
		}
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	orig := Event{
		At: 1500 * des.Microsecond, Node: 3, Kind: Timeout,
		Frame: phy.CTS, Peer: 7, Note: "retry 2",
	}
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"t":1500000`, `"node":3`, `"kind":"timeout"`, `"frame":"CTS"`, `"peer":7`, `"note":"retry 2"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("JSON %s missing %s", b, want)
		}
	}
	var back Event
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip: got %+v, want %+v", back, orig)
	}

	// Frameless events omit the frame field and still round-trip.
	bare := ev(2, 1, Backoff)
	b, err = json.Marshal(bare)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "frame") {
		t.Errorf("frameless event JSON %s should omit the frame field", b)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != bare {
		t.Errorf("frameless round trip: got %+v, want %+v", back, bare)
	}
}

func TestEventJSONRejectsUnknownNames(t *testing.T) {
	var e Event
	if err := json.Unmarshal([]byte(`{"t":1,"node":0,"kind":"warp","peer":-1}`), &e); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := json.Unmarshal([]byte(`{"t":1,"node":0,"kind":"tx","frame":"PING","peer":-1}`), &e); err == nil {
		t.Error("unknown frame accepted")
	}
}

// TestWriteJSONL: one parseable object per line, oldest first, also
// after the ring wraps.
func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{At: des.Time(i), Node: phy.NodeID(i), Kind: Success, Frame: phy.ACK, Peer: -1})
	}
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var got []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		got = append(got, e)
	}
	if len(got) != 3 {
		t.Fatalf("lines = %d, want 3", len(got))
	}
	for i, e := range got {
		if e.At != des.Time(i+2) {
			t.Errorf("line %d has At=%v, want %v", i, e.At, des.Time(i+2))
		}
	}
}

func TestDiscard(t *testing.T) {
	var d Discard
	d.Record(ev(1, 0, TxStart)) // must not panic; nothing observable
}
