package trace

import (
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/phy"
)

func ev(at des.Time, node phy.NodeID, kind Kind) Event {
	return Event{At: at, Node: node, Kind: kind, Peer: -1}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{TxStart, "tx"}, {RxFrame, "rx"}, {Overheard, "overheard"},
		{RxError, "rx-error"}, {Backoff, "backoff"}, {Timeout, "timeout"},
		{Success, "success"}, {Drop, "drop"}, {Kind(42), "Kind(42)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		At: 1500 * des.Microsecond, Node: 3, Kind: TxStart,
		Frame: phy.RTS, Peer: 7, Note: "cw=31",
	}
	s := e.String()
	for _, want := range []string{"node   3", "tx", "RTS", "peer 7", "(cw=31)"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
	// No frame / no peer / no note: those segments disappear.
	bare := ev(0, 1, Backoff).String()
	if strings.Contains(bare, "peer") || strings.Contains(bare, "(") {
		t.Errorf("bare event string %q has spurious segments", bare)
	}
}

func TestRecorderOrder(t *testing.T) {
	r := NewRecorder(10)
	for i := 0; i < 5; i++ {
		r.Record(ev(des.Time(i), 0, TxStart))
	}
	events := r.Events()
	if len(events) != 5 {
		t.Fatalf("len = %d, want 5", len(events))
	}
	for i, e := range events {
		if e.At != des.Time(i) {
			t.Fatalf("order broken: %v", events)
		}
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
}

func TestRecorderEviction(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 7; i++ {
		r.Record(ev(des.Time(i), 0, TxStart))
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("len = %d, want 3 (capacity)", len(events))
	}
	// Oldest retained is 4: 4, 5, 6.
	for i, want := range []des.Time{4, 5, 6} {
		if events[i].At != want {
			t.Fatalf("ring contents = %v", events)
		}
	}
	if r.Total() != 7 {
		t.Errorf("Total = %d, want 7 (including evicted)", r.Total())
	}
}

func TestRecorderMinimumCapacity(t *testing.T) {
	r := NewRecorder(0)
	r.Record(ev(1, 0, Drop))
	r.Record(ev(2, 0, Drop))
	events := r.Events()
	if len(events) != 1 || events[0].At != 2 {
		t.Errorf("cap-0 recorder should keep exactly the last event: %v", events)
	}
}

func TestFilterAndByNode(t *testing.T) {
	r := NewRecorder(10)
	r.Record(ev(1, 0, TxStart))
	r.Record(ev(2, 1, Timeout))
	r.Record(ev(3, 0, Success))
	byNode := r.ByNode(0)
	if len(byNode) != 2 {
		t.Errorf("ByNode(0) = %v, want 2 events", byNode)
	}
	timeouts := r.Filter(func(e Event) bool { return e.Kind == Timeout })
	if len(timeouts) != 1 || timeouts[0].Node != 1 {
		t.Errorf("Filter(timeout) = %v", timeouts)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRecorder(4)
	r.Record(ev(1, 0, TxStart))
	r.Record(ev(2, 1, Success))
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Errorf("WriteText lines = %d, want 2", len(lines))
	}
}

func TestDiscard(t *testing.T) {
	var d Discard
	d.Record(ev(1, 0, TxStart)) // must not panic; nothing observable
}
