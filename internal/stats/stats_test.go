package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Count() != 0 || s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 ||
		s.Min() != 0 || s.Max() != 0 || s.CI95() != 0 {
		t.Error("empty stream should be all zeros")
	}
}

func TestStreamSingle(t *testing.T) {
	var s Stream
	s.Add(3.5)
	if s.Count() != 1 || s.Mean() != 3.5 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Errorf("single-value stream: %+v", s.Summarize())
	}
	if s.Var() != 0 || s.CI95() != 0 {
		t.Error("variance/CI of one observation must be 0")
	}
}

func TestStreamKnownValues(t *testing.T) {
	var s Stream
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Sample variance with n−1 = 7: Σ(x−5)² = 32 → 32/7.
	if !almostEqual(s.Var(), 32.0/7, 1e-12) {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d, want 8", s.Count())
	}
	wantCI := 1.96 * math.Sqrt(32.0/7) / math.Sqrt(8)
	if !almostEqual(s.CI95(), wantCI, 1e-12) {
		t.Errorf("CI95 = %v, want %v", s.CI95(), wantCI)
	}
}

func TestStreamMatchesNaiveComputation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 2
		xs := make([]float64, n)
		var s Stream
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			s.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var sq float64
		for _, x := range xs {
			sq += (x - mean) * (x - mean)
		}
		naiveVar := sq / float64(n-1)
		return almostEqual(s.Mean(), mean, 1e-9) && almostEqual(s.Var(), naiveVar, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	var s Stream
	s.AddAll([]float64{1, 2, 3})
	str := s.Summarize().String()
	if !strings.Contains(str, "n=3") {
		t.Errorf("Summary string %q should mention the count", str)
	}
}

func TestJainIndex(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 1},
		{"all zero", []float64{0, 0, 0}, 1},
		{"perfectly fair", []float64{5, 5, 5, 5}, 1},
		{"single node", []float64{7}, 1},
		{"monopoly of 4", []float64{10, 0, 0, 0}, 0.25},
		{"two of four", []float64{5, 5, 0, 0}, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := JainIndex(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("JainIndex(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestJainIndexBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		j := JainIndex(xs)
		return j >= 1/float64(n)-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{-5, 15},
		{150, 50},
		{62.5, 37.5}, // interpolated between 35 and 40
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %v, want 0", got)
	}
	// Input must not be mutated.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestReservoirBelowCapacity(t *testing.T) {
	r := NewReservoir(10, rand.New(rand.NewSource(1)))
	for i := 0; i < 5; i++ {
		r.Add(float64(i))
	}
	if r.Seen() != 5 {
		t.Errorf("Seen = %d, want 5", r.Seen())
	}
	s := r.Sample()
	if len(s) != 5 {
		t.Errorf("sample size = %d, want 5 (everything kept)", len(s))
	}
	if got := r.Percentile(100); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
}

func TestReservoirMinimumSize(t *testing.T) {
	r := NewReservoir(0, rand.New(rand.NewSource(1)))
	r.Add(1)
	r.Add(2)
	if len(r.Sample()) != 1 {
		t.Errorf("size-0 reservoir should clamp to 1")
	}
}

// TestReservoirUniformity: sampling 100 from 10000 sequential values, the
// sample mean must approximate the stream mean (≈ 4999.5).
func TestReservoirUniformity(t *testing.T) {
	var means float64
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(100, rand.New(rand.NewSource(int64(trial))))
		for i := 0; i < 10000; i++ {
			r.Add(float64(i))
		}
		var sum float64
		for _, v := range r.Sample() {
			sum += v
		}
		means += sum / 100
	}
	got := means / trials
	if math.Abs(got-4999.5) > 250 {
		t.Errorf("mean of reservoir means = %v, want ≈ 4999.5 (uniform sampling)", got)
	}
}

func TestSummaryScale(t *testing.T) {
	var s Stream
	s.AddAll([]float64{1000, 2000, 3000})
	scaled := s.Summarize().Scale(1e-3)
	if scaled.Mean != 2 || scaled.Min != 1 || scaled.Max != 3 {
		t.Errorf("Scale(1e-3) = %+v", scaled)
	}
	if scaled.Count != 3 {
		t.Errorf("Scale must preserve the count")
	}
	neg := s.Summarize().Scale(-1)
	if neg.Min != -3000 || neg.Max != -1000 {
		t.Errorf("negative Scale must keep Min <= Max: %+v", neg)
	}
	if neg.Std < 0 || neg.CI95 < 0 {
		t.Errorf("spread statistics must stay non-negative: %+v", neg)
	}
}
