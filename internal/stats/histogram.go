package stats

// Histogram is a fixed-bucket frequency count of a scalar stream. The
// bucket layout is immutable after construction, which is what makes
// histograms mergeable across simulation shards: two histograms built
// from the same bounds combine by summing counts, with no rebinning and
// therefore no information loss beyond the shared bucket resolution.
//
// Bucket i (0 ≤ i < len(bounds)) counts observations x with
// x ≤ bounds[i] and x > bounds[i-1]; one extra overflow bucket counts
// everything above the last bound. There is no underflow bucket: the
// first bucket is open below.

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts observations into fixed buckets. Create with
// NewHistogram; the zero value has no buckets and must not be used.
type Histogram struct {
	bounds []float64 // strictly increasing inclusive upper bounds
	counts []int64   // len(bounds)+1; the last entry is the overflow bucket
	n      int64
	sum    float64
}

// NewHistogram creates a histogram over the given inclusive upper
// bounds, which must be non-empty, finite and strictly increasing. The
// bounds slice is copied.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("stats: histogram bound %d is not finite: %v", i, b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("stats: histogram bounds must be strictly increasing, got %v after %v", b, bounds[i-1])
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	return h, nil
}

// Observe records one observation. NaN observations are counted in the
// overflow bucket so they remain visible rather than silently dropped.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x)
	// SearchFloat64s finds the first bound >= x, which is exactly the
	// inclusive-upper-bound bucket; NaN compares false and lands at
	// len(bounds), the overflow bucket.
	h.counts[i]++
	h.n++
	h.sum += x
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean observation (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// Counts returns a copy of the per-bucket counts; the final entry is
// the overflow bucket.
func (h *Histogram) Counts() []int64 {
	return append([]int64(nil), h.counts...)
}

// Merge adds o's counts into h. The two histograms must share an
// identical bucket layout; merging is how per-shard telemetry series
// combine into one network-wide distribution.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("stats: cannot merge histograms with %d and %d buckets", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("stats: cannot merge histograms: bound %d differs (%v vs %v)", i, h.bounds[i], o.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	h.sum += o.sum
	return nil
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) assuming a uniform
// distribution within each bucket. The open-ended buckets are pinned to
// their finite edge: estimates never exceed the last bound and never
// fall below the first. An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.n)
	var cum int64
	for i, c := range h.counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		hi := h.bounds[len(h.bounds)-1]
		if i < len(h.bounds) {
			hi = h.bounds[i]
		}
		lo := hi
		if i > 0 {
			lo = h.bounds[i-1]
		} else {
			lo = 0
			if hi < 0 {
				lo = hi
			}
		}
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}
