package stats

import (
	"math"
	"reflect"
	"testing"
)

func TestNewHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{
		nil,
		{},
		{1, 1},
		{2, 1},
		{0, math.NaN()},
		{0, math.Inf(1)},
	} {
		if _, err := NewHistogram(bounds); err == nil {
			t.Errorf("NewHistogram(%v) accepted bad bounds", bounds)
		}
	}
}

// TestHistogramBuckets pins the inclusive-upper-bound bucketing against
// hand-computed counts.
func TestHistogramBuckets(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// bucket 0: x <= 1; bucket 1: 1 < x <= 2; bucket 2: 2 < x <= 4;
	// bucket 3 (overflow): x > 4.
	for _, x := range []float64{-5, 0, 1, 1.5, 2, 2.1, 4, 4.0001, 100, math.NaN()} {
		h.Observe(x)
	}
	want := []int64{3, 2, 2, 3} // NaN lands in overflow
	if got := h.Counts(); !reflect.DeepEqual(got, want) {
		t.Errorf("counts = %v, want %v", got, want)
	}
	if h.Count() != 10 {
		t.Errorf("count = %d, want 10", h.Count())
	}
}

func TestHistogramSumMean(t *testing.T) {
	h, err := NewHistogram([]float64{10})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{1, 2, 3} {
		h.Observe(x)
	}
	if h.Sum() != 6 {
		t.Errorf("sum = %v, want 6", h.Sum())
	}
	if h.Mean() != 2 {
		t.Errorf("mean = %v, want 2", h.Mean())
	}
	empty, _ := NewHistogram([]float64{1})
	if empty.Mean() != 0 {
		t.Errorf("empty mean = %v, want 0", empty.Mean())
	}
}

// TestHistogramMerge pins the merge against hand-computed sums, and
// checks that mismatched layouts are rejected.
func TestHistogramMerge(t *testing.T) {
	bounds := []float64{1, 2, 4}
	a, _ := NewHistogram(bounds)
	b, _ := NewHistogram(bounds)
	for _, x := range []float64{0.5, 1.5, 3} {
		a.Observe(x)
	}
	for _, x := range []float64{0.5, 5, 6} {
		b.Observe(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 1, 1, 2}
	if got := a.Counts(); !reflect.DeepEqual(got, want) {
		t.Errorf("merged counts = %v, want %v", got, want)
	}
	if a.Count() != 6 {
		t.Errorf("merged count = %d, want 6", a.Count())
	}
	if a.Sum() != 0.5+1.5+3+0.5+5+6 {
		t.Errorf("merged sum = %v", a.Sum())
	}
	// b is unchanged by the merge.
	if b.Count() != 3 {
		t.Errorf("merge mutated its argument: %v", b.Counts())
	}

	other, _ := NewHistogram([]float64{1, 2})
	if err := a.Merge(other); err == nil {
		t.Error("merge accepted a different bucket count")
	}
	shifted, _ := NewHistogram([]float64{1, 2, 5})
	if err := a.Merge(shifted); err == nil {
		t.Error("merge accepted different bounds")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, _ := NewHistogram([]float64{10, 20, 30})
	for i := 0; i < 10; i++ {
		h.Observe(5) // bucket 0
	}
	for i := 0; i < 10; i++ {
		h.Observe(15) // bucket 1
	}
	// Median sits exactly at the bucket-0/bucket-1 edge.
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("median = %v, want 10", got)
	}
	if got := h.Quantile(1); got != 20 {
		t.Errorf("q1.0 = %v, want 20 (upper bound of last occupied bucket)", got)
	}
	if got := h.Quantile(0.25); got != 5 {
		t.Errorf("q0.25 = %v, want 5 (midpoint of bucket 0 under uniform assumption)", got)
	}
	empty, _ := NewHistogram([]float64{1})
	if empty.Quantile(0.5) != 0 {
		t.Errorf("empty quantile should be 0")
	}
}

// TestJainAgainstHandValues pins the fairness index (both spellings)
// against hand-computed values.
func TestJainAgainstHandValues(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 1, 1, 1}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},           // one node monopolizes: 1/n
		{[]float64{4, 2}, (6.0 * 6) / (2 * 20)}, // (4+2)²/(2·(16+4)) = 0.9
		{nil, 1},
		{[]float64{0, 0}, 1},
	}
	for _, c := range cases {
		if got := Jain(c.xs); got != c.want {
			t.Errorf("Jain(%v) = %v, want %v", c.xs, got, c.want)
		}
		if got := JainIndex(c.xs); got != c.want {
			t.Errorf("JainIndex(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}
