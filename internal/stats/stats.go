// Package stats provides the streaming statistics used by the simulation
// harness: Welford mean/variance accumulators, min/max tracking, Jain's
// fairness index, and normal-approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Stream accumulates scalar observations with Welford's online algorithm.
// The zero value is an empty stream ready to use.
type Stream struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddAll records every value in xs.
func (s *Stream) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// Count returns the number of observations.
func (s *Stream) Count() int64 { return s.n }

// Mean returns the running mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 with fewer than two
// observations).
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stream) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty stream).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty stream).
func (s *Stream) Max() float64 { return s.max }

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval for the mean: 1.96·s/√n. It returns 0 with fewer than two
// observations.
func (s *Stream) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(s.n))
}

// Summary is a point-in-time snapshot of a Stream.
type Summary struct {
	Count     int64
	Mean, Std float64
	Min, Max  float64
	CI95      float64
}

// Summarize captures the stream's current state.
func (s *Stream) Summarize() Summary {
	return Summary{
		Count: s.n, Mean: s.mean, Std: s.Std(),
		Min: s.min, Max: s.max, CI95: s.CI95(),
	}
}

// String formats the summary as "mean ± ci [min, max] (n=count)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g [%.4g, %.4g] (n=%d)", s.Mean, s.CI95, s.Min, s.Max, s.Count)
}

// Scale returns a copy with every statistic multiplied by k (for unit
// conversion in reports, e.g. b/s → Kb/s). Negative k also swaps Min/Max
// to keep them ordered.
func (s Summary) Scale(k float64) Summary {
	out := Summary{
		Count: s.Count,
		Mean:  s.Mean * k,
		Std:   math.Abs(k) * s.Std,
		Min:   s.Min * k,
		Max:   s.Max * k,
		CI95:  math.Abs(k) * s.CI95,
	}
	if out.Min > out.Max {
		out.Min, out.Max = out.Max, out.Min
	}
	return out
}

// Reservoir keeps a fixed-size uniform random sample of a stream
// (Vitter's algorithm R), for percentile estimation over runs too long to
// retain every observation. Create with NewReservoir.
type Reservoir struct {
	sample []float64
	seen   int64
	rng    *rand.Rand
}

// NewReservoir creates a reservoir holding up to size samples, driven by
// the given random source (size minimum 1).
func NewReservoir(size int, rng *rand.Rand) *Reservoir {
	if size < 1 {
		size = 1
	}
	return &Reservoir{sample: make([]float64, 0, size), rng: rng}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.sample) < cap(r.sample) {
		r.sample = append(r.sample, x)
		return
	}
	// Keep with probability cap/seen, replacing a uniform victim.
	if j := r.rng.Int63n(r.seen); j < int64(cap(r.sample)) {
		r.sample[j] = x
	}
}

// Seen returns how many observations were offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Sample returns a copy of the current sample.
func (r *Reservoir) Sample() []float64 {
	out := make([]float64, len(r.sample))
	copy(out, r.sample)
	return out
}

// Percentile estimates the p-th percentile from the sample.
func (r *Reservoir) Percentile(p float64) float64 {
	return Percentile(r.sample, p)
}

// Jain returns Jain's fairness index for the given allocations; it is
// the short name for JainIndex.
func Jain(xs []float64) float64 { return JainIndex(xs) }

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) for the given
// allocations: 1.0 when all shares are equal, approaching 1/n when one
// node monopolizes the resource. An empty or all-zero input returns 1
// (vacuously fair).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It copies and sorts its input.
// An empty input returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
