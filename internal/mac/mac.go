// Package mac implements the IEEE 802.11 DFWMAC distributed coordination
// function (DCF) with the RTS/CTS/DATA/ACK four-way handshake, and its
// directional variants studied in the paper:
//
//	ORTS-OCTS — every frame omni-directional (standard 802.11);
//	DRTS-DCTS — every frame directional (maximum spatial reuse);
//	DRTS-OCTS — directional RTS/DATA/ACK, omni-directional CTS.
//
// The DCF machinery follows the standard: physical carrier sensing plus a
// NAV (virtual carrier sensing) set from overheard durations, DIFS/EIFS
// deference, slotted binary-exponential backoff frozen while the medium is
// busy, SIFS-separated responses without carrier sensing, CTS/ACK
// timeouts, and separate short/long retry limits. Directionality enters
// in exactly one place: the antenna mode used for each frame type, which
// determines who overhears (and therefore who defers).
package mac

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/neighbor"
	"repro/internal/phy"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Metrics holds optional telemetry instruments for MAC-level
// distributions. Every field may be nil — observations on nil
// instruments are no-ops, so instrumented code records unconditionally
// and a run without telemetry pays only a nil check (the disabled path
// is bench-gated to zero extra allocations).
type Metrics struct {
	// Backoff observes the slot count of every backoff draw.
	Backoff *telemetry.Histogram
	// CW observes the contention window (slots) at every backoff draw,
	// capturing the binary-exponential-backoff pressure trajectory.
	CW *telemetry.Histogram
	// HandshakeUs observes the MAC service time of every acknowledged
	// packet (dequeue to ACK), in microseconds.
	HandshakeUs *telemetry.Histogram
	// NAVUs observes every NAV duration adopted through virtual carrier
	// sensing (overheard frames and oracle NAV hints), in microseconds.
	NAVUs *telemetry.Histogram
}

// Packet is one MAC service data unit waiting for transmission.
type Packet struct {
	Dst      phy.NodeID
	Bytes    int
	Enqueued des.Time
	Seq      int64
}

// Source supplies packets to a Node. Dequeue returns the next packet, or
// ok=false when the queue is empty. A source that becomes non-empty while
// the node is idle must call the node's Kick method (sources receive it
// via SetNotify).
type Source interface {
	Dequeue(now des.Time) (p Packet, ok bool)
}

// Config holds the MAC parameters. DefaultConfig matches Table 1 of the
// paper (IEEE 802.11 DSSS).
type Config struct {
	// Scheme selects the collision-avoidance variant.
	Scheme core.Scheme
	// Beamwidth is the directional transmission beamwidth in radians.
	// Unused by ORTS-OCTS.
	Beamwidth float64

	// Frame sizes in bytes (data size comes from each Packet).
	RTSBytes, CTSBytes, ACKBytes int

	// Interframe spaces and the slot time.
	DIFS, SIFS, Slot des.Time

	// Contention window bounds (number of slots, inclusive).
	CWMin, CWMax int

	// Retry limits: short governs RTS attempts (CTS timeouts), long
	// governs data attempts (ACK timeouts).
	ShortRetryLimit, LongRetryLimit int

	// DisableEIFS turns off extended-IFS deference after frame errors
	// (ablation; the standard behaviour is on).
	DisableEIFS bool

	// BasicAccess disables the RTS/CTS handshake: data frames are sent
	// directly after winning contention (CSMA/CA basic access). This is
	// the baseline that suffers the hidden-terminal problem the paper's
	// collision-avoidance schemes exist to solve; retries use the long
	// retry limit.
	BasicAccess bool

	// AdaptiveRTSStaleness, when positive, enables the adaptive variant
	// from Ko et al.'s second scheme (discussed in the paper's related
	// work): the RTS is sent directionally only while the destination's
	// recorded location is fresher than this threshold, and falls back to
	// omni-directional otherwise. Combine with PiggybackLocation so
	// responses refresh the table.
	AdaptiveRTSStaleness des.Time

	// PiggybackLocation attaches the sender's current position to every
	// frame and lets receivers update their neighbor tables from it —
	// the location service many directional MAC designs assume.
	PiggybackLocation bool

	// Tracer, when non-nil, receives structured protocol events
	// (transmissions, timeouts, backoff draws, ...). Nil disables
	// tracing with no overhead.
	Tracer trace.Tracer

	// OnDelivery, when non-nil, is invoked with the MAC service delay of
	// every successfully acknowledged packet (for per-packet delay
	// distributions beyond the running mean in Stats).
	OnDelivery func(delay des.Time)

	// Metrics carries optional telemetry instruments; the zero value
	// (all nil) disables them at no cost.
	Metrics Metrics

	// FastForward enables analytic idle-time skipping: when every pending
	// kernel event is inert (no frame airborne, no timeout or telemetry
	// tick outstanding), a backoff countdown is scheduled as one bulk
	// timer instead of per-slot events, and interruptions settle the
	// residual analytically. Results are bit-identical to slot-by-slot
	// operation; New clears the flag when the channel configuration
	// violates a jump-safety precondition (NAV oracle hints, PropDelay >=
	// Slot, or SyncTime < Slot).
	FastForward bool
}

// DefaultConfig returns the Table 1 configuration for the given scheme
// and beamwidth.
func DefaultConfig(scheme core.Scheme, beamwidth float64) Config {
	return Config{
		Scheme:          scheme,
		Beamwidth:       beamwidth,
		RTSBytes:        20,
		CTSBytes:        14,
		ACKBytes:        14,
		DIFS:            50 * des.Microsecond,
		SIFS:            10 * des.Microsecond,
		Slot:            20 * des.Microsecond,
		CWMin:           31,
		CWMax:           1023,
		ShortRetryLimit: 7,
		LongRetryLimit:  4,
	}
}

// Validate checks parameter sanity.
func (c Config) Validate() error {
	switch c.Scheme {
	case core.ORTSOCTS, core.DRTSDCTS, core.DRTSOCTS, core.ORTSDCTS:
	default:
		return fmt.Errorf("mac: unknown scheme %v", c.Scheme)
	}
	if c.Scheme != core.ORTSOCTS && (c.Beamwidth <= 0 || c.Beamwidth > 2*math.Pi+1e-9) {
		return fmt.Errorf("mac: beamwidth must be in (0, 2π] for directional schemes, got %v", c.Beamwidth)
	}
	if c.RTSBytes <= 0 || c.CTSBytes <= 0 || c.ACKBytes <= 0 {
		return fmt.Errorf("mac: control frame sizes must be positive")
	}
	if c.DIFS <= 0 || c.SIFS <= 0 || c.Slot <= 0 {
		return fmt.Errorf("mac: DIFS, SIFS and slot time must be positive")
	}
	if c.CWMin < 1 || c.CWMax < c.CWMin {
		return fmt.Errorf("mac: need 1 <= CWMin <= CWMax, got %d, %d", c.CWMin, c.CWMax)
	}
	if c.ShortRetryLimit < 1 || c.LongRetryLimit < 1 {
		return fmt.Errorf("mac: retry limits must be at least 1")
	}
	return nil
}

// directional reports whether frames of type ft go out directionally
// under the configured scheme.
func (c Config) directional(ft phy.FrameType) bool {
	switch c.Scheme {
	case core.ORTSOCTS:
		return false
	case core.DRTSDCTS:
		return true
	case core.DRTSOCTS:
		return ft != phy.CTS
	case core.ORTSDCTS:
		return ft != phy.RTS
	default:
		return false
	}
}

// Stats counts per-node MAC events. Sender-side counters describe this
// node's own handshakes; DataDelivered/BitsDelivered count receptions.
type Stats struct {
	RTSSent     int64
	CTSSent     int64
	DataSent    int64
	ACKSent     int64
	CTSTimeouts int64
	ACKTimeouts int64
	// Successes counts completed four-way handshakes (ACK received).
	Successes int64
	// BitsAcked is the data payload successfully acknowledged, in bits.
	BitsAcked int64
	// Drops counts packets abandoned after a retry limit.
	Drops int64
	// DelaySum accumulates MAC service time (dequeue to ACK) over
	// DelayCount delivered packets.
	DelaySum   des.Time
	DelayCount int64
	// DataDelivered/BitsDelivered count data frames decoded as receiver.
	DataDelivered int64
	BitsDelivered int64
	// FrameErrors counts garbled receptions (collision damage observed).
	FrameErrors int64
	// DupsSuppressed counts retransmitted data frames recognized by
	// sequence control and acknowledged without re-delivery (the sender's
	// ACK was lost, not the data).
	DupsSuppressed int64
}

// CollisionRatio is the paper's Section 4 metric: the fraction of
// handshakes that reached the data phase but ended in an ACK timeout.
func (s Stats) CollisionRatio() float64 {
	done := s.ACKTimeouts + s.Successes
	if done == 0 {
		return 0
	}
	return float64(s.ACKTimeouts) / float64(done)
}

// AvgDelay returns the mean MAC service delay of delivered packets.
func (s Stats) AvgDelay() des.Time {
	if s.DelayCount == 0 {
		return 0
	}
	return s.DelaySum / des.Time(s.DelayCount)
}

// state is the sender-side position in the exchange.
type state int

const (
	stIdle    state = iota + 1 // no packet pending
	stContend                  // deferring / backing off
	stTxRTS                    // RTS on the air
	stWaitCTS                  // awaiting CTS
	stTxData                   // DATA on the air (or queued for SIFS)
	stWaitACK                  // awaiting ACK
)

// Node is one station's MAC instance. It implements phy.Handler and
// drives its radio; create with New and attach via the radio's
// SetHandler, or let New do it.
type Node struct {
	sched *des.Scheduler
	radio *phy.Radio
	table *neighbor.Table
	src   Source
	cfg   Config

	st           state
	cur          Packet
	serviceStart des.Time

	cw           int
	backoff      int
	shortRetries int
	longRetries  int

	navUntil  des.Time
	holdUntil des.Time // responder-side hold covering an exchange we joined
	needEIFS  bool

	difsTimer des.Timer
	slotTimer des.Timer
	navTimer  des.Timer
	ctsTo     des.Timer
	ackTo     des.Timer

	// Bulk-countdown state (fast-forward mode). slotStart anchors the
	// running countdown's slot grid; bulkPending marks slotTimer as a
	// bulk jump timer whose residual must be settled if interrupted.
	slotStart   des.Time
	bulkPending bool

	// Contention callbacks fire millions of times per simulated second;
	// binding the method values once here keeps the scheduling hot path
	// free of per-call closure allocations.
	resumeDeferenceFn func()
	difsElapsedFn     func()
	slotElapsedFn     func()
	jumpElapsedFn     func()
	onCTSTimeoutFn    func()
	onACKTimeoutFn    func()

	// respPending is set while a SIFS-separated transmission (CTS, DATA
	// after CTS, ACK) is scheduled or on the air; contention stays frozen.
	respPending bool
	respTimer   des.Timer

	// respQueue holds the parameters of scheduled SIFS responses in fire
	// order. Timers all carry the same SIFS delay, so the scheduler fires
	// them in schedule order and the single pre-bound dispatcher
	// (fireResponseFn) pops from the front — no per-response closure.
	respQueue      []respParams
	fireResponseFn func()

	// txType is the frame type currently on the air (valid while the
	// radio transmits).
	txType phy.FrameType

	seq   int64
	stats Stats

	// lastData implements 802.11 sequence control: the last data sequence
	// number delivered per source, to suppress duplicate deliveries after
	// a lost ACK.
	lastData map[phy.NodeID]int64
}

var _ phy.Handler = (*Node)(nil)

// New creates a MAC node bound to the given radio, neighbor table and
// packet source, and installs itself as the radio's handler.
func New(sched *des.Scheduler, radio *phy.Radio, table *neighbor.Table, src Source, cfg Config) (*Node, error) {
	n := new(Node)
	if err := NewInto(n, sched, radio, table, src, cfg); err != nil {
		return nil, err
	}
	return n, nil
}

// NewInto initializes a caller-allocated Node in place and installs it
// as the radio's handler. Bulk assembly (sim.Build) carves all N nodes
// from one backing array and initializes them through here, so MAC
// construction at large N costs O(1) allocations per node instead of a
// separate heap object each (DESIGN.md §15).
func NewInto(n *Node, sched *des.Scheduler, radio *phy.Radio, table *neighbor.Table, src Source, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.FastForward {
		// Jump-safety preconditions (DESIGN.md §12). Oracle NAV hints can
		// interrupt a countdown mid-flight with a scheduling order no
		// statically anchored bulk timer can reproduce; PropDelay < Slot
		// makes carrier-busy the only boundary-inclusive interrupter; and
		// SyncTime >= Slot guarantees every frame outlasts a slot, so all
		// frame-end interrupters are boundary-exclusive. Outside that
		// envelope, fall back to slot-by-slot operation silently — the
		// flag is a pure optimization and results must not depend on it.
		p := radio.ChannelParams()
		if p.NAVOracle || p.PropDelay >= cfg.Slot || p.SyncTime < cfg.Slot {
			cfg.FastForward = false
		}
	}
	*n = Node{
		sched: sched,
		radio: radio,
		table: table,
		src:   src,
		cfg:   cfg,
		st:    stIdle,
		cw:    cfg.CWMin,
		// lastData is allocated lazily on first data delivery; most nodes
		// in a large topology receive from a handful of senders, many from
		// none at all.
	}
	n.resumeDeferenceFn = n.resumeDeference
	n.difsElapsedFn = n.difsElapsed
	n.slotElapsedFn = n.slotElapsed
	n.jumpElapsedFn = n.jumpElapsed
	n.onCTSTimeoutFn = n.onCTSTimeout
	n.onACKTimeoutFn = n.onACKTimeout
	n.fireResponseFn = n.fireResponse
	n.respQueue = make([]respParams, 0, 4)
	radio.SetHandler(n)
	return nil
}

// ID returns the node's PHY identifier.
func (n *Node) ID() phy.NodeID { return n.radio.ID() }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats { return n.stats }

// Start pulls the first packet and begins contending. Call once after
// construction.
func (n *Node) Start() {
	if n.st != stIdle {
		return
	}
	n.nextPacket()
}

// Kick re-checks the source; sources call it when a packet arrives while
// the node is idle.
func (n *Node) Kick() {
	if n.st == stIdle {
		n.nextPacket()
	}
}

// emit records a trace event when tracing is enabled.
func (n *Node) emit(kind trace.Kind, ft phy.FrameType, peer phy.NodeID, note string) {
	if n.cfg.Tracer == nil {
		return
	}
	n.cfg.Tracer.Record(trace.Event{
		At: n.sched.Now(), Node: n.ID(), Kind: kind, Frame: ft, Peer: peer, Note: note,
	})
}

// nextPacket dequeues the next packet and enters contention, or goes
// idle. The contention window and retry counters reset per packet.
func (n *Node) nextPacket() {
	n.cw = n.cfg.CWMin
	n.shortRetries, n.longRetries = 0, 0
	p, ok := n.src.Dequeue(n.sched.Now())
	if !ok {
		n.st = stIdle
		return
	}
	n.cur = p
	n.serviceStart = p.Enqueued
	n.beginAttempt()
}

// beginAttempt draws a fresh backoff and starts deferring.
func (n *Node) beginAttempt() {
	n.st = stContend
	n.backoff = n.sched.Rand().Intn(n.cw + 1)
	n.cfg.Metrics.Backoff.Observe(float64(n.backoff))
	n.cfg.Metrics.CW.Observe(float64(n.cw))
	if n.cfg.Tracer != nil {
		n.emit(trace.Backoff, 0, -1, fmt.Sprintf("cw=%d slots=%d", n.cw, n.backoff))
	}
	n.resumeDeference()
}

// eifs returns the extended interframe space used after frame errors.
func (n *Node) eifs() des.Time {
	return n.cfg.SIFS + n.radio.ChannelParams().Airtime(n.cfg.ACKBytes) + n.cfg.DIFS
}

// scheduleIdle schedules an idle-wait callback after delay d. In
// fast-forward mode these timers are classified inert — their due
// instants are fixed and firing them perturbs no other pending event —
// so they never hold the kernel's active count above zero and block a
// peer's bulk jump.
//
//desalint:hotpath
func (n *Node) scheduleIdle(d des.Time, fn func()) des.Timer {
	if n.cfg.FastForward {
		return n.sched.ScheduleInert(d, fn)
	}
	return n.sched.Schedule(d, fn)
}

// atIdle is scheduleIdle for an absolute due time.
//
//desalint:hotpath
func (n *Node) atIdle(t des.Time, fn func()) des.Timer {
	if n.cfg.FastForward {
		return n.sched.AtInert(t, fn)
	}
	return n.sched.At(t, fn)
}

// settleCountdown converts a live bulk countdown back into residual
// backoff slots at the moment an interrupter arrives, reproducing the
// per-slot decrement count exactly. boundaryCounts selects whether a
// slot boundary falling precisely on the current instant has already
// elapsed: carrier-busy interrupters are the only ones scheduled within
// a slot of their due time (PropDelay < Slot, enforced in New), so the
// boundary's decrement fired first and counts (inclusive); every other
// interrupter was scheduled at least a full frame earlier (SyncTime >=
// Slot) and therefore fires before a coincident boundary (exclusive).
//
//desalint:hotpath
func (n *Node) settleCountdown(boundaryCounts bool) {
	if !n.bulkPending {
		return
	}
	n.bulkPending = false
	if !n.slotTimer.Active() {
		return
	}
	delta := n.sched.Now() - n.slotStart
	var elapsed des.Time
	if boundaryCounts {
		elapsed = delta / n.cfg.Slot
	} else if delta > 0 {
		elapsed = (delta - 1) / n.cfg.Slot
	}
	if elapsed > des.Time(n.backoff) {
		elapsed = des.Time(n.backoff) // unreachable; guards the invariant
	}
	n.backoff -= int(elapsed)
	n.sched.Cancel(n.slotTimer)
}

// cancelContention stops any running DIFS/slot countdown, settling a
// bulk countdown (boundary-exclusive) first so no residual is lost.
//
//desalint:hotpath
func (n *Node) cancelContention() {
	n.settleCountdown(false)
	n.sched.Cancel(n.difsTimer)
	n.sched.Cancel(n.slotTimer)
	n.sched.Cancel(n.navTimer)
}

// resumeDeference restarts the DIFS wait if the medium is available.
// Invoked on carrier-idle edges, NAV/hold expiry, transmit completion and
// contention entry.
//
//desalint:hotpath
func (n *Node) resumeDeference() {
	n.cancelContention()
	if n.st != stContend || n.respPending || n.radio.Transmitting() {
		return
	}
	if n.radio.CarrierBusy() {
		return // OnCarrierIdle re-invokes
	}
	now := n.sched.Now()
	wait := n.navUntil
	if n.holdUntil > wait {
		wait = n.holdUntil
	}
	if wait > now {
		n.navTimer = n.atIdle(wait, n.resumeDeferenceFn)
		return
	}
	d := n.cfg.DIFS
	if n.needEIFS && !n.cfg.DisableEIFS {
		d = n.eifs()
	}
	n.difsTimer = n.scheduleIdle(d, n.difsElapsedFn)
}

// difsElapsed runs when the medium stayed idle through DIFS/EIFS; the
// backoff countdown begins (or the transmission, if the counter is 0).
//
//desalint:inertsafe fires only when the medium stayed idle through the wait, so no active event ran in the skipped span; any interrupter cancels this timer before observing needEIFS
//desalint:hotpath
func (n *Node) difsElapsed() {
	n.needEIFS = false
	n.tickSlot()
}

// tickSlot transmits when the backoff counter reaches zero, otherwise
// burns one idle slot — or, in fast-forward mode over dead air, all but
// the final slot in one bulk jump. The final slot always runs as a real
// per-slot timer: the transmission it may trigger is then anchored to
// the same scheduling instant (due time minus one slot) as in per-slot
// mode, so same-instant ties at the transmit boundary resolve by the
// identical (at, seq) order.
//
//desalint:hotpath
func (n *Node) tickSlot() {
	if n.st != stContend {
		return
	}
	if n.backoff <= 0 {
		n.transmitAttempt()
		return
	}
	if n.cfg.FastForward && n.backoff >= 2 && n.sched.ActivePending() == 0 {
		n.slotStart = n.sched.Now()
		n.bulkPending = true
		n.slotTimer = n.sched.ScheduleInert(des.Time(n.backoff-1)*n.cfg.Slot, n.jumpElapsedFn)
		return
	}
	n.slotTimer = n.scheduleIdle(n.cfg.Slot, n.slotElapsedFn)
}

// slotElapsed burns one backoff slot and re-checks the counter.
//
//desalint:inertsafe interrupters settle the countdown via settleCountdown before reading backoff, reproducing the per-slot decrements exactly (DESIGN.md §12)
//desalint:hotpath
func (n *Node) slotElapsed() {
	n.backoff--
	n.tickSlot()
}

// jumpElapsed completes an uninterrupted bulk countdown: every slot but
// the last has elapsed, and tickSlot schedules the final one as a real
// per-slot timer (see tickSlot for why the last slot never jumps).
//
//desalint:inertsafe runs only when the bulk countdown was never interrupted (interrupters cancel the timer and settle backoff first), so the write is the settled per-slot value by construction
//desalint:hotpath
func (n *Node) jumpElapsed() {
	n.bulkPending = false
	n.backoff = 1
	n.tickSlot()
}

// mode returns the antenna mode for a frame of type ft toward dst.
func (n *Node) mode(ft phy.FrameType, dst phy.NodeID) (phy.Mode, error) {
	if !n.cfg.directional(ft) {
		return phy.Omni, nil
	}
	if ft == phy.RTS && n.cfg.AdaptiveRTSStaleness > 0 {
		age, known := n.table.Age(dst, n.sched.Now())
		if !known || age > n.cfg.AdaptiveRTSStaleness {
			// Stale or missing location: probe omni-directionally; the
			// (piggybacked) CTS re-teaches the bearing for the data phase.
			return phy.Omni, nil
		}
	}
	// Aim from the radio's live position (a node always knows where it
	// is) at the table's — possibly stale, under mobility — peer snapshot.
	bearing, err := n.table.BearingFrom(n.radio.Pos(), dst)
	if err != nil {
		return phy.Mode{}, err
	}
	return phy.Directed(bearing, n.cfg.Beamwidth), nil
}

// air is shorthand for frame airtime at the channel bit rate.
func (n *Node) air(bytes int) des.Time {
	return n.radio.ChannelParams().Airtime(bytes)
}

// transmitAttempt opens the exchange after winning contention: RTS under
// collision avoidance, the data frame itself under basic access.
func (n *Node) transmitAttempt() {
	if n.cfg.BasicAccess {
		n.sendDataDirect()
		return
	}
	n.sendRTS()
}

// sendDataDirect transmits the data frame without a handshake (basic
// access). The receiver still acknowledges after SIFS.
func (n *Node) sendDataDirect() {
	prop := n.radio.ChannelParams().PropDelay
	nav := n.cfg.SIFS + n.air(n.cfg.ACKBytes) + prop
	mode, err := n.mode(phy.Data, n.cur.Dst)
	if err != nil {
		n.stats.Drops++
		n.nextPacket()
		return
	}
	f := phy.Frame{Type: phy.Data, Src: n.ID(), Dst: n.cur.Dst, Bytes: n.cur.Bytes, NAV: nav, Seq: n.cur.Seq}
	if n.cfg.PiggybackLocation {
		f.Payload = n.radio.Pos()
	}
	if _, err := n.radio.Transmit(f, mode); err != nil {
		n.beginAttempt()
		return
	}
	n.st = stTxData
	n.txType = phy.Data
	n.stats.DataSent++
	n.emit(trace.TxStart, phy.Data, n.cur.Dst, "basic access")
}

// sendRTS transmits the RTS opening the four-way handshake.
func (n *Node) sendRTS() {
	prop := n.radio.ChannelParams().PropDelay
	// Duration field: remaining exchange after the RTS.
	nav := 3*n.cfg.SIFS + n.air(n.cfg.CTSBytes) + n.air(n.cur.Bytes) + n.air(n.cfg.ACKBytes) + 3*prop
	mode, err := n.mode(phy.RTS, n.cur.Dst)
	if err != nil {
		// No bearing for the destination: the packet is undeliverable.
		n.stats.Drops++
		n.nextPacket()
		return
	}
	n.seq++
	f := phy.Frame{Type: phy.RTS, Src: n.ID(), Dst: n.cur.Dst, Bytes: n.cfg.RTSBytes, NAV: nav, Seq: n.seq}
	if n.cfg.PiggybackLocation {
		f.Payload = n.radio.Pos()
	}
	if _, err := n.radio.Transmit(f, mode); err != nil {
		// The radio is busy with a response transmission; retry shortly.
		n.beginAttempt()
		return
	}
	n.st = stTxRTS
	n.txType = phy.RTS
	n.stats.RTSSent++
	n.emit(trace.TxStart, phy.RTS, n.cur.Dst, "")
}

// respKind tags a queued SIFS response.
type respKind uint8

const (
	respCTS respKind = iota + 1
	respData
	respACK
)

// respParams carries everything a SIFS response needs at fire time that
// is not read from the node's live state. The DATA response deliberately
// reads n.cur when it fires, exactly as the former closure did.
type respParams struct {
	kind respKind
	dst  phy.NodeID // CTS/ACK destination
	nav  des.Time   // NAV to advertise (CTS, DATA)
}

// scheduleResponse queues a SIFS-separated transmission (no carrier
// sensing, per the standard).
func (n *Node) scheduleResponse(p respParams) {
	n.cancelContention()
	n.respPending = true
	n.respQueue = append(n.respQueue, p)
	n.respTimer = n.sched.Schedule(n.cfg.SIFS, n.fireResponseFn)
}

// fireResponse pops and transmits the oldest queued response.
func (n *Node) fireResponse() {
	p := n.respQueue[0]
	n.respQueue = n.respQueue[:copy(n.respQueue, n.respQueue[1:])]
	switch p.kind {
	case respCTS:
		n.seq++
		cts := phy.Frame{Type: phy.CTS, Src: n.ID(), Dst: p.dst, Bytes: n.cfg.CTSBytes, NAV: p.nav, Seq: n.seq}
		if n.respond(cts, phy.CTS, p.dst) {
			n.stats.CTSSent++
			n.emit(trace.TxStart, phy.CTS, p.dst, "")
			// Hold our own contention through the expected exchange.
			if until := n.sched.Now() + n.air(n.cfg.CTSBytes) + p.nav; until > n.holdUntil {
				n.holdUntil = until
			}
		}
	case respData:
		data := phy.Frame{Type: phy.Data, Src: n.ID(), Dst: n.cur.Dst, Bytes: n.cur.Bytes, NAV: p.nav, Seq: n.cur.Seq}
		if n.respond(data, phy.Data, n.cur.Dst) {
			n.stats.DataSent++
			n.emit(trace.TxStart, phy.Data, n.cur.Dst, "")
		} else {
			// Should not happen (our radio is ours between CTS and DATA),
			// but recover via a fresh attempt rather than deadlock.
			n.retryLong()
		}
	case respACK:
		n.seq++
		ack := phy.Frame{Type: phy.ACK, Src: n.ID(), Dst: p.dst, Bytes: n.cfg.ACKBytes, NAV: 0, Seq: n.seq}
		if n.respond(ack, phy.ACK, p.dst) {
			n.stats.ACKSent++
			n.emit(trace.TxStart, phy.ACK, p.dst, "")
		}
	}
}

// respond transmits a SIFS response frame; on radio conflict the response
// is silently abandoned (the peer's timeout recovers).
func (n *Node) respond(f phy.Frame, ft phy.FrameType, dst phy.NodeID) bool {
	if n.cfg.PiggybackLocation {
		f.Payload = n.radio.Pos()
	}
	mode, err := n.mode(ft, dst)
	if err != nil {
		n.respPending = false
		n.resumeDeference()
		return false
	}
	if _, err := n.radio.Transmit(f, mode); err != nil {
		n.respPending = false
		n.resumeDeference()
		return false
	}
	n.txType = ft
	return true
}

// OnFrame handles a successfully decoded frame.
func (n *Node) OnFrame(f phy.Frame) {
	n.needEIFS = false // correct reception terminates EIFS deference
	now := n.sched.Now()
	if n.cfg.PiggybackLocation {
		if pos, ok := f.Payload.(geom.Point); ok {
			n.table.LearnAt(f.Src, pos, now)
		}
	}
	if f.Dst != n.ID() {
		// Overheard: virtual carrier sensing.
		if f.NAV > 0 {
			n.cfg.Metrics.NAVUs.Observe(f.NAV.Microseconds())
		}
		if until := now + f.NAV; until > n.navUntil {
			n.navUntil = until
		}
		n.emit(trace.Overheard, f.Type, f.Src, "")
		return
	}
	n.emit(trace.RxFrame, f.Type, f.Src, "")
	switch f.Type {
	case phy.RTS:
		n.onRTS(f, now)
	case phy.CTS:
		n.onCTS(f)
	case phy.Data:
		n.onData(f)
	case phy.ACK:
		n.onACK(f, now)
	}
}

// onRTS answers with a CTS when the node is available: not mid-exchange,
// no pending response, and NAV/hold indicate idle (virtual carrier sense
// governs RTS responses per the standard).
func (n *Node) onRTS(f phy.Frame, now des.Time) {
	available := (n.st == stIdle || n.st == stContend) &&
		!n.respPending && now >= n.navUntil && now >= n.holdUntil
	if !available {
		return
	}
	prop := n.radio.ChannelParams().PropDelay
	ctsNAV := f.NAV - n.air(n.cfg.CTSBytes) - n.cfg.SIFS - prop
	if ctsNAV < 0 {
		ctsNAV = 0
	}
	n.scheduleResponse(respParams{kind: respCTS, dst: f.Src, nav: ctsNAV})
}

// onCTS continues the handshake with the data frame.
func (n *Node) onCTS(f phy.Frame) {
	if n.st != stWaitCTS || f.Src != n.cur.Dst {
		return
	}
	n.sched.Cancel(n.ctsTo)
	n.shortRetries = 0 // RTS phase succeeded
	prop := n.radio.ChannelParams().PropDelay
	dataNAV := n.cfg.SIFS + n.air(n.cfg.ACKBytes) + prop
	n.st = stTxData
	n.scheduleResponse(respParams{kind: respData, nav: dataNAV})
}

// onData delivers the payload (suppressing retransmitted duplicates via
// sequence control) and answers with an ACK either way — the sender's
// timeout means the ACK was lost, not the data.
func (n *Node) onData(f phy.Frame) {
	if last, ok := n.lastData[f.Src]; ok && last == f.Seq {
		n.stats.DupsSuppressed++
	} else {
		if n.lastData == nil {
			n.lastData = make(map[phy.NodeID]int64, 8)
		}
		n.lastData[f.Src] = f.Seq
		n.stats.DataDelivered++
		n.stats.BitsDelivered += int64(f.Bytes) * 8
	}
	n.scheduleResponse(respParams{kind: respACK, dst: f.Src})
}

// onACK completes the handshake.
func (n *Node) onACK(f phy.Frame, now des.Time) {
	if n.st != stWaitACK || f.Src != n.cur.Dst {
		return
	}
	n.sched.Cancel(n.ackTo)
	n.stats.Successes++
	n.stats.BitsAcked += int64(n.cur.Bytes) * 8
	n.stats.DelaySum += now - n.serviceStart
	n.stats.DelayCount++
	n.cfg.Metrics.HandshakeUs.Observe((now - n.serviceStart).Microseconds())
	if n.cfg.OnDelivery != nil {
		n.cfg.OnDelivery(now - n.serviceStart)
	}
	n.emit(trace.Success, phy.ACK, f.Src, "")
	n.nextPacket()
}

// OnNAVHint applies virtual carrier sensing from an out-of-beam frame
// header delivered by the oracle-NAV ablation channel.
func (n *Node) OnNAVHint(f phy.Frame) {
	if f.Dst == n.ID() {
		return
	}
	if f.NAV > 0 {
		n.cfg.Metrics.NAVUs.Observe(f.NAV.Microseconds())
	}
	if until := n.sched.Now() + f.NAV; until > n.navUntil {
		n.navUntil = until
		if n.st == stContend {
			n.resumeDeference()
		}
	}
}

// OnFrameError notes collision damage; the standard defers by EIFS after
// an unintelligible frame.
func (n *Node) OnFrameError() {
	n.stats.FrameErrors++
	n.needEIFS = true
	n.emit(trace.RxError, 0, -1, "")
}

// OnCarrierBusy freezes the backoff countdown. A live bulk countdown
// settles boundary-inclusive: the busy edge was scheduled PropDelay ago
// (less than a slot), so a slot boundary coinciding with it had already
// fired in per-slot order.
//
//desalint:hotpath
func (n *Node) OnCarrierBusy() {
	if n.st == stContend {
		n.settleCountdown(true)
		n.cancelContention()
	}
}

// OnCarrierIdle resumes deference after the medium clears.
//
//desalint:hotpath
func (n *Node) OnCarrierIdle() {
	if n.st == stContend {
		n.resumeDeference()
	}
}

// OnTxDone advances the exchange after our own frame leaves the air.
//
//desalint:hotpath
func (n *Node) OnTxDone() {
	prop := n.radio.ChannelParams().PropDelay
	n.respPending = false
	switch n.txType {
	case phy.RTS:
		n.st = stWaitCTS
		to := n.cfg.SIFS + n.air(n.cfg.CTSBytes) + 2*prop + n.cfg.Slot
		n.ctsTo = n.sched.Schedule(to, n.onCTSTimeoutFn)
	case phy.Data:
		n.st = stWaitACK
		to := n.cfg.SIFS + n.air(n.cfg.ACKBytes) + 2*prop + n.cfg.Slot
		n.ackTo = n.sched.Schedule(to, n.onACKTimeoutFn)
	case phy.CTS, phy.ACK:
		n.resumeDeference()
	}
	n.txType = 0
}

// onCTSTimeout handles a failed RTS attempt: binary exponential backoff,
// drop after the short retry limit.
func (n *Node) onCTSTimeout() {
	if n.st != stWaitCTS {
		return
	}
	n.stats.CTSTimeouts++
	n.shortRetries++
	n.growCW()
	if n.cfg.Tracer != nil {
		n.emit(trace.Timeout, phy.CTS, n.cur.Dst, fmt.Sprintf("retry %d", n.shortRetries))
	}
	if n.shortRetries > n.cfg.ShortRetryLimit {
		n.stats.Drops++
		n.emit(trace.Drop, phy.RTS, n.cur.Dst, "short retry limit")
		n.nextPacket()
		return
	}
	n.beginAttempt()
}

// onACKTimeout handles a data frame that was never acknowledged.
func (n *Node) onACKTimeout() {
	if n.st != stWaitACK {
		return
	}
	n.stats.ACKTimeouts++
	if n.cfg.Tracer != nil {
		n.emit(trace.Timeout, phy.ACK, n.cur.Dst, fmt.Sprintf("retry %d", n.longRetries+1))
	}
	n.retryLong()
}

// retryLong applies the long-retry policy after a failed data phase.
func (n *Node) retryLong() {
	n.longRetries++
	n.growCW()
	if n.longRetries > n.cfg.LongRetryLimit {
		n.stats.Drops++
		n.emit(trace.Drop, phy.Data, n.cur.Dst, "long retry limit")
		n.nextPacket()
		return
	}
	n.beginAttempt()
}

// growCW doubles the contention window: CW ← min(2(CW+1)−1, CWMax).
func (n *Node) growCW() {
	n.cw = 2*(n.cw+1) - 1
	if n.cw > n.cfg.CWMax {
		n.cw = n.cfg.CWMax
	}
}
