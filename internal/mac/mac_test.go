package mac_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/neighbor"
	"repro/internal/phy"
	"repro/internal/sim/simtest"
	"repro/internal/trace"
	"repro/internal/traffic"
)

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := mac.DefaultConfig(core.ORTSOCTS, 0)
	if c.RTSBytes != 20 || c.CTSBytes != 14 || c.ACKBytes != 14 {
		t.Errorf("frame sizes = %d/%d/%d, want 20/14/14", c.RTSBytes, c.CTSBytes, c.ACKBytes)
	}
	if c.DIFS != 50*des.Microsecond || c.SIFS != 10*des.Microsecond || c.Slot != 20*des.Microsecond {
		t.Errorf("IFS = %v/%v/%v, want 50µs/10µs/20µs", c.DIFS, c.SIFS, c.Slot)
	}
	if c.CWMin != 31 || c.CWMax != 1023 {
		t.Errorf("CW = %d–%d, want 31–1023", c.CWMin, c.CWMax)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	base := mac.DefaultConfig(core.DRTSDCTS, math.Pi/2)
	if err := base.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*mac.Config)
	}{
		{"unknown scheme", func(c *mac.Config) { c.Scheme = 0 }},
		{"zero beamwidth directional", func(c *mac.Config) { c.Beamwidth = 0 }},
		{"beamwidth too wide", func(c *mac.Config) { c.Beamwidth = 7 }},
		{"zero RTS bytes", func(c *mac.Config) { c.RTSBytes = 0 }},
		{"zero DIFS", func(c *mac.Config) { c.DIFS = 0 }},
		{"CWMax below CWMin", func(c *mac.Config) { c.CWMax = 3 }},
		{"zero CWMin", func(c *mac.Config) { c.CWMin = 0 }},
		{"zero retry limit", func(c *mac.Config) { c.ShortRetryLimit = 0 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := base
			m.mut(&c)
			if err := c.Validate(); err == nil {
				t.Error("mutated config should be invalid")
			}
		})
	}
	// ORTS-OCTS does not need a beamwidth.
	c := mac.DefaultConfig(core.ORTSOCTS, 0)
	if err := c.Validate(); err != nil {
		t.Errorf("ORTS-OCTS without beamwidth should validate: %v", err)
	}
}

func TestTwoNodeSaturatedHandshake(t *testing.T) {
	cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
	nw := simtest.Build(t, 1, cfg, simtest.SaturatedSpecs(
		[]geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}},
		[]int{1, -1}, // node 0 floods node 1
	))
	nw.StartAll()
	dur := 2 * des.Second
	nw.Run(dur)

	st := nw.Stats(0)
	if st.Successes == 0 {
		t.Fatal("no successful handshakes on a clean 2-node link")
	}
	if st.CTSTimeouts != 0 || st.ACKTimeouts != 0 || st.Drops != 0 {
		t.Errorf("clean link had failures: %+v", st)
	}
	if st.RTSSent < st.Successes || st.RTSSent > st.Successes+1 {
		// +1 allows one handshake in flight at the cutoff.
		t.Errorf("every RTS should succeed: RTS=%d successes=%d", st.RTSSent, st.Successes)
	}
	// The expected cycle is DIFS + E[backoff] + RTS + SIFS + CTS + SIFS +
	// DATA + SIFS + ACK (+ propagation): ≈ 7.19 ms, i.e. ≈ 278 packets in
	// 2 s and ≈ 1.62 Mb/s goodput. Allow ±10%.
	gotThroughput := float64(st.BitsAcked) / dur.Seconds()
	if gotThroughput < 1.45e6 || gotThroughput > 1.8e6 {
		t.Errorf("2-node saturated goodput = %.3g b/s, want ≈ 1.62 Mb/s", gotThroughput)
	}
	// Receiver-side accounting must match.
	rcv := nw.Stats(1)
	if rcv.DataDelivered != st.Successes {
		t.Errorf("receiver delivered %d, sender succeeded %d", rcv.DataDelivered, st.Successes)
	}
	if rcv.CTSSent != st.RTSSent {
		t.Errorf("receiver CTS = %d, sender RTS = %d", rcv.CTSSent, st.RTSSent)
	}
	if rcv.ACKSent != st.Successes {
		t.Errorf("receiver ACK = %d, successes = %d", rcv.ACKSent, st.Successes)
	}
	// Delay of every delivered packet ≈ cycle length.
	if d := st.AvgDelay(); d < 6*des.Millisecond || d > 9*des.Millisecond {
		t.Errorf("average service delay = %v, want ≈ 7.2 ms", d)
	}
}

func TestDeadDestinationBEBAndDrop(t *testing.T) {
	cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
	nw := simtest.Build(t, 3, cfg, []simtest.NodeSpec{
		{Pos: geom.Point{X: 0, Y: 0}, Source: simtest.Packets(mac.Packet{Dst: 1, Bytes: 1460})},
		{Pos: geom.Point{X: 0.5, Y: 0}}, // dead: bare radio, never responds
	})
	nw.Start(0)
	nw.Run(5 * des.Second)

	st := nw.Stats(0)
	wantAttempts := int64(cfg.ShortRetryLimit + 1)
	if st.RTSSent != wantAttempts {
		t.Errorf("RTS attempts = %d, want %d (short retry limit + 1)", st.RTSSent, wantAttempts)
	}
	if st.CTSTimeouts != wantAttempts {
		t.Errorf("CTS timeouts = %d, want %d", st.CTSTimeouts, wantAttempts)
	}
	if st.Drops != 1 {
		t.Errorf("drops = %d, want 1", st.Drops)
	}
	if st.Successes != 0 {
		t.Errorf("successes = %d, want 0", st.Successes)
	}
}

func TestUnknownDestinationDropsPacket(t *testing.T) {
	cfg := mac.DefaultConfig(core.DRTSDCTS, math.Pi/6)
	nw := simtest.Build(t, 3, cfg, []simtest.NodeSpec{{
		Pos: geom.Point{X: 0, Y: 0},
		// Empty neighbor table: the directional sender has no bearing.
		Table:  neighbor.NewTable(0, geom.Point{}),
		Source: simtest.Packets(mac.Packet{Dst: 9, Bytes: 100}),
	}})
	nw.Start(0)
	nw.Run(des.Second)
	st := nw.Stats(0)
	if st.Drops != 1 || st.RTSSent != 0 {
		t.Errorf("stats = %+v, want exactly one drop and no RTS", st)
	}
}

func TestHiddenTerminalsBothProgress(t *testing.T) {
	// Classic hidden-terminal triple: A and C cannot hear each other, both
	// flood B. RTS/CTS collision avoidance must let both make progress.
	cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
	nw := simtest.Build(t, 7, cfg, simtest.SaturatedSpecs(
		[]geom.Point{{X: -0.9, Y: 0}, {X: 0, Y: 0}, {X: 0.9, Y: 0}},
		[]int{1, -1, 1},
	))
	nw.StartAll()
	nw.Run(5 * des.Second)

	a, c := nw.Stats(0), nw.Stats(2)
	if a.Successes == 0 || c.Successes == 0 {
		t.Fatalf("hidden terminals starved: A=%d C=%d successes", a.Successes, c.Successes)
	}
	// Collision avoidance keeps data-phase failures low: the vulnerable
	// window is only the RTS. Expect collision ratio well under 20%.
	for name, st := range map[string]mac.Stats{"A": a, "C": c} {
		if r := st.CollisionRatio(); r > 0.2 {
			t.Errorf("%s collision ratio = %v, want < 0.2 with RTS/CTS", name, r)
		}
	}
	// B must have delivered everything the senders count as success.
	b := nw.Stats(1)
	if b.DataDelivered != a.Successes+c.Successes {
		t.Errorf("B delivered %d, senders succeeded %d", b.DataDelivered, a.Successes+c.Successes)
	}
}

func TestNAVDefersThirdNode(t *testing.T) {
	// Three mutually in-range nodes. While A exchanges with B, C (also
	// saturated, toward B) must defer via NAV/carrier sense; the medium is
	// shared, so aggregate goodput stays near the single-link rate.
	cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
	nw := simtest.Build(t, 11, cfg, simtest.SaturatedSpecs(
		[]geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.25, Y: 0.4}},
		[]int{1, -1, 1},
	))
	nw.StartAll()
	dur := 3 * des.Second
	nw.Run(dur)
	a, c := nw.Stats(0), nw.Stats(2)
	agg := float64(a.BitsAcked+c.BitsAcked) / dur.Seconds()
	if agg > 1.85e6 {
		t.Errorf("aggregate goodput %.3g b/s exceeds the shared-medium budget", agg)
	}
	if a.Successes == 0 || c.Successes == 0 {
		t.Errorf("both contenders should progress: A=%d C=%d", a.Successes, c.Successes)
	}
	// With carrier sensing everyone in range, data collisions are rare.
	if r := a.CollisionRatio(); r > 0.1 {
		t.Errorf("A collision ratio = %v, want < 0.1 (all nodes in range)", r)
	}
}

func TestDirectionalSpatialReuse(t *testing.T) {
	// Two parallel east-pointing links close enough that omni transmissions
	// interfere, but with 30° beams that miss the other pair: DRTS-DCTS
	// should let both links run at nearly full rate, roughly doubling the
	// aggregate of ORTS-OCTS.
	positions := []geom.Point{
		{X: 0, Y: 0}, {X: 0.9, Y: 0}, // link 1: 0 → 1
		{X: 0, Y: 0.5}, {X: 0.9, Y: 0.5}, // link 2: 2 → 3
	}
	dests := []int{1, -1, 3, -1}
	dur := 3 * des.Second

	aggregate := func(scheme core.Scheme, beam float64) float64 {
		cfg := mac.DefaultConfig(scheme, beam)
		nw := simtest.Build(t, 21, cfg, simtest.SaturatedSpecs(positions, dests))
		nw.StartAll()
		nw.Run(dur)
		bits := nw.Stats(0).BitsAcked + nw.Stats(2).BitsAcked
		return float64(bits) / dur.Seconds()
	}

	omni := aggregate(core.ORTSOCTS, 0)
	dir := aggregate(core.DRTSDCTS, 30*math.Pi/180)
	if dir < 1.5*omni {
		t.Errorf("spatial reuse: DRTS-DCTS aggregate %.3g b/s, ORTS-OCTS %.3g b/s; want ≥ 1.5x", dir, omni)
	}
	if dir < 2.8e6 { // both links nearly independent
		t.Errorf("DRTS-DCTS aggregate %.3g b/s, want near 2 × 1.62 Mb/s", dir)
	}
}

func TestSchemesRunOnDenseCluster(t *testing.T) {
	// Five nodes in general position, all within range; every scheme must
	// make progress without deadlock and conserve frame accounting.
	positions := []geom.Point{
		{X: 0, Y: 0}, {X: 0.4, Y: 0.1}, {X: 0.1, Y: 0.45},
		{X: -0.3, Y: 0.2}, {X: 0.2, Y: -0.35},
	}
	dests := []int{1, 2, 3, 4, 0}
	for _, scheme := range core.Schemes() {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := mac.DefaultConfig(scheme, math.Pi/2)
			nw := simtest.Build(t, 31, cfg, simtest.SaturatedSpecs(positions, dests))
			nw.StartAll()
			nw.Run(3 * des.Second)
			var totalSucc, totalDeliver int64
			for _, node := range nw.Nodes {
				st := node.Stats()
				totalSucc += st.Successes
				totalDeliver += st.DataDelivered
				if st.DataSent != st.Successes+st.ACKTimeouts {
					// The final handshake may still be in flight.
					if st.DataSent != st.Successes+st.ACKTimeouts+1 {
						t.Errorf("node %d: DataSent=%d != Successes+ACKTimeouts=%d",
							node.ID(), st.DataSent, st.Successes+st.ACKTimeouts)
					}
				}
			}
			if totalSucc == 0 {
				t.Fatal("no progress in dense cluster")
			}
			if totalDeliver < totalSucc {
				t.Errorf("delivered %d < acked %d", totalDeliver, totalSucc)
			}
		})
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []mac.Stats {
		cfg := mac.DefaultConfig(core.DRTSOCTS, math.Pi/3)
		nw := simtest.Build(t, 99, cfg, simtest.SaturatedSpecs(
			[]geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.9, Y: 0.3}},
			[]int{1, 2, 0},
		))
		nw.StartAll()
		nw.Run(des.Second)
		out := make([]mac.Stats, len(nw.Nodes))
		for i := range nw.Nodes {
			out[i] = nw.Stats(i)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d stats differ across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	var s mac.Stats
	if s.CollisionRatio() != 0 {
		t.Error("empty stats collision ratio should be 0")
	}
	if s.AvgDelay() != 0 {
		t.Error("empty stats delay should be 0")
	}
	s.ACKTimeouts = 1
	s.Successes = 3
	if got := s.CollisionRatio(); got != 0.25 {
		t.Errorf("CollisionRatio = %v, want 0.25", got)
	}
	s.DelaySum = 100 * des.Millisecond
	s.DelayCount = 4
	if got := s.AvgDelay(); got != 25*des.Millisecond {
		t.Errorf("AvgDelay = %v, want 25ms", got)
	}
}

func TestKickWakesIdleNode(t *testing.T) {
	cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
	var cbr *traffic.CBR
	nw := simtest.Build(t, 17, cfg, []simtest.NodeSpec{
		{Pos: geom.Point{X: 0, Y: 0}, Source: func(t *testing.T, nw *simtest.Net, id phy.NodeID) mac.Source {
			c, err := traffic.NewCBR(nw.Sched, nw.Sched.Rand(), []phy.NodeID{1}, traffic.CBRConfig{
				Interval: 50 * des.Millisecond,
				Bytes:    1460,
				QueueCap: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			cbr = c
			return c
		}},
		{Pos: geom.Point{X: 0.5, Y: 0}, Source: simtest.Responder()},
	})
	// Build wired cbr.SetKick to the sender's Kick.
	nw.Start(0) // queue empty: node goes idle
	cbr.Start()
	nw.Run(des.Second)

	st := nw.Stats(0)
	// 1 s / 50 ms = 20 arrivals; at ~7 ms service time all are delivered.
	if st.Successes < 18 || st.Successes > 20 {
		t.Errorf("CBR successes = %d, want ≈ 19-20", st.Successes)
	}
	if cbr.Dropped() != 0 {
		t.Errorf("CBR dropped %d packets on an idle link", cbr.Dropped())
	}
	// Light load: delay is a single service time, far below saturation.
	if d := st.AvgDelay(); d > 10*des.Millisecond {
		t.Errorf("light-load delay = %v, want < 10 ms", d)
	}
}

func TestTraceRecordsHandshake(t *testing.T) {
	cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
	rec := trace.NewRecorder(256)
	cfg.Tracer = rec
	nw := simtest.Build(t, 13, cfg, []simtest.NodeSpec{
		{Pos: geom.Point{X: 0, Y: 0}, Source: simtest.Packets(mac.Packet{Dst: 1, Bytes: 1460})},
		{Pos: geom.Point{X: 0.5, Y: 0}, Source: simtest.Responder()},
	})
	nw.Start(0)
	nw.Run(des.Second)

	var kinds []string
	for _, ev := range rec.Events() {
		kinds = append(kinds, fmt.Sprintf("%d:%v:%v", ev.Node, ev.Kind, ev.Frame))
	}
	// The clean single-packet exchange, in causal order:
	want := []trace.Kind{trace.Backoff, trace.TxStart, trace.RxFrame, trace.TxStart,
		trace.RxFrame, trace.TxStart, trace.RxFrame, trace.TxStart, trace.RxFrame, trace.Success}
	events := rec.Events()
	if len(events) != len(want) {
		t.Fatalf("trace length = %d, want %d: %v", len(events), len(want), kinds)
	}
	for i, k := range want {
		if events[i].Kind != k {
			t.Fatalf("trace[%d] = %v, want %v (full: %v)", i, events[i].Kind, k, kinds)
		}
	}
	// Frame progression RTS→CTS→DATA→ACK on the tx events.
	var txs []phy.FrameType
	for _, ev := range events {
		if ev.Kind == trace.TxStart {
			txs = append(txs, ev.Frame)
		}
	}
	wantTx := []phy.FrameType{phy.RTS, phy.CTS, phy.Data, phy.ACK}
	for i := range wantTx {
		if txs[i] != wantTx[i] {
			t.Fatalf("tx order = %v, want %v", txs, wantTx)
		}
	}
}

// TestBasicAccessCleanLink: without RTS/CTS, a clean 2-node link still
// works and achieves higher goodput (no handshake overhead).
func TestBasicAccessCleanLink(t *testing.T) {
	cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
	cfg.BasicAccess = true
	nw := simtest.Build(t, 1, cfg, simtest.SaturatedSpecs(
		[]geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}},
		[]int{1, -1},
	))
	nw.StartAll()
	dur := 2 * des.Second
	nw.Run(dur)
	st := nw.Stats(0)
	if st.Successes == 0 || st.ACKTimeouts != 0 {
		t.Fatalf("basic access on clean link: %+v", st)
	}
	if st.RTSSent != 0 || nw.Stats(1).CTSSent != 0 {
		t.Error("basic access must not exchange RTS/CTS")
	}
	basic := float64(st.BitsAcked) / dur.Seconds()
	// RTS/CTS adds two control frames (~940 µs with sync preambles) to
	// every ~7.2 ms cycle; basic access should be measurably faster.
	if basic < 1.7e6 {
		t.Errorf("basic-access goodput = %.3g b/s, want > 1.7 Mb/s", basic)
	}
}

// TestBasicAccessHiddenTerminalCollapse reproduces the problem statement
// of the paper's introduction (Tobagi & Kleinrock's hidden terminals):
// without RTS/CTS, two hidden senders corrupt each other's long data
// frames at the shared receiver and goodput collapses; the RTS/CTS
// handshake confines the damage to the short control frames.
func TestBasicAccessHiddenTerminalCollapse(t *testing.T) {
	positions := []geom.Point{{X: -0.9, Y: 0}, {X: 0, Y: 0}, {X: 0.9, Y: 0}}
	dests := []int{1, -1, 1}
	run := func(basic bool) (succ, dataCollisions int64) {
		cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
		cfg.BasicAccess = basic
		nw := simtest.Build(t, 7, cfg, simtest.SaturatedSpecs(positions, dests))
		nw.StartAll()
		nw.Run(5 * des.Second)
		a, c := nw.Stats(0), nw.Stats(2)
		return a.Successes + c.Successes, a.ACKTimeouts + c.ACKTimeouts
	}
	rtsSucc, rtsColl := run(false)
	basicSucc, basicColl := run(true)
	if basicColl <= 4*rtsColl {
		t.Errorf("hidden terminals: basic-access data collisions %d should dwarf RTS/CTS %d",
			basicColl, rtsColl)
	}
	if rtsSucc <= basicSucc {
		t.Errorf("hidden terminals: RTS/CTS goodput (%d) should beat basic access (%d)",
			rtsSucc, basicSucc)
	}
}

// TestAdaptiveRTSRecoversFromStaleBearing reproduces the adaptive
// omni/directional RTS idea from Ko et al. (the paper's related work):
// when the recorded location of the destination is stale and wrong, a
// pure directional RTS misses forever, while the adaptive variant probes
// omni-directionally and relearns the bearing from the piggybacked CTS.
func TestAdaptiveRTSRecoversFromStaleBearing(t *testing.T) {
	run := func(adaptive bool) mac.Stats {
		cfg := mac.DefaultConfig(core.DRTSDCTS, math.Pi/6) // narrow 30° beam
		if adaptive {
			cfg.AdaptiveRTSStaleness = 100 * des.Millisecond
			cfg.PiggybackLocation = true
		}
		// The destination actually sits north; the sender's table says east.
		senderTable := neighbor.NewTable(0, geom.Point{})
		senderTable.LearnAt(1, geom.Point{X: 0.8, Y: 0}, 0) // stale and wrong
		nw := simtest.Build(t, 3, cfg, []simtest.NodeSpec{
			{Pos: geom.Point{X: 0, Y: 0}, Table: senderTable,
				Source: simtest.Packets(mac.Packet{Dst: 1, Bytes: 1460})},
			{Pos: geom.Point{X: 0, Y: 0.8}, Source: simtest.Responder()},
		})
		// Let the stale entry age past the threshold before starting.
		nw.Run(200 * des.Millisecond)
		nw.Start(0)
		nw.Run(nw.Sched.Now() + 2*des.Second)
		return nw.Stats(0)
	}

	plain := run(false)
	if plain.Successes != 0 || plain.Drops != 1 {
		t.Errorf("pure directional RTS with a wrong bearing should fail: %+v", plain)
	}
	adaptive := run(true)
	if adaptive.Successes != 1 {
		t.Errorf("adaptive RTS should recover via omni probe: %+v", adaptive)
	}
	if adaptive.Drops != 0 {
		t.Errorf("adaptive RTS dropped the packet: %+v", adaptive)
	}
}

// TestPiggybackKeepsDirectionalFresh: with location piggybacking, every
// decoded frame refreshes the sender's entry, so subsequent directional
// frames aim correctly without any external refresh.
func TestPiggybackKeepsDirectionalFresh(t *testing.T) {
	cfg := mac.DefaultConfig(core.DRTSDCTS, math.Pi/6)
	cfg.AdaptiveRTSStaleness = des.Second
	cfg.PiggybackLocation = true
	nw := simtest.Build(t, 9, cfg, []simtest.NodeSpec{
		{Pos: geom.Point{X: 0, Y: 0}, Source: simtest.SaturatedBytes(1460, 1)},
		{Pos: geom.Point{X: 0.5, Y: 0}, Source: simtest.Responder()},
	})
	nw.Start(0)
	nw.Run(2 * des.Second)
	st := nw.Stats(0)
	if st.Successes < 200 {
		t.Errorf("piggybacked adaptive link should run at full rate: %+v", st)
	}
	if st.CTSTimeouts != 0 {
		t.Errorf("no timeouts expected on a clean adaptive link: %+v", st)
	}
}

// A lossy-ACK wrapper is not possible at the MAC level, so duplicate
// suppression is tested by injecting the retransmission directly: the
// same data sequence number delivered twice must be delivered up once
// and acknowledged twice.
func TestSequenceControlSuppressesDuplicates(t *testing.T) {
	cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
	nw := simtest.Build(t, 2, cfg, []simtest.NodeSpec{
		{Pos: geom.Point{X: 0, Y: 0}}, // bare radio: frames injected by hand
		{Pos: geom.Point{X: 0.5, Y: 0}, Source: simtest.Responder()},
	})
	fake := nw.Ch.Radio(0)
	send := func(seq int64) {
		f := phy.Frame{Type: phy.Data, Src: 0, Dst: 1, Bytes: 500, Seq: seq}
		if _, err := fake.Transmit(f, phy.Omni); err != nil {
			t.Fatal(err)
		}
		nw.Run(nw.Sched.Now() + 10*des.Millisecond)
	}
	send(7)
	send(7) // retransmission (sender "lost" the ACK)
	send(8) // next packet

	st := nw.Stats(1)
	if st.DataDelivered != 2 {
		t.Errorf("DataDelivered = %d, want 2 (seq 7 once, seq 8 once)", st.DataDelivered)
	}
	if st.DupsSuppressed != 1 {
		t.Errorf("DupsSuppressed = %d, want 1", st.DupsSuppressed)
	}
	if st.ACKSent != 3 {
		t.Errorf("ACKSent = %d, want 3 (every data frame is acknowledged)", st.ACKSent)
	}
	if st.BitsDelivered != 2*500*8 {
		t.Errorf("BitsDelivered = %d, want %d", st.BitsDelivered, 2*500*8)
	}
}

// TestRetransmissionKeepsSequence: a data retransmission after an ACK
// timeout must reuse the packet's sequence number so the receiver can
// recognize it.
func TestRetransmissionKeepsSequence(t *testing.T) {
	cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
	rec := trace.NewRecorder(2048)
	cfg.Tracer = rec
	// Hidden-terminal pressure generates ACK timeouts and data retries.
	nw := simtest.Build(t, 7, cfg, simtest.SaturatedSpecs(
		[]geom.Point{{X: -0.9, Y: 0}, {X: 0, Y: 0}, {X: 0.9, Y: 0}},
		[]int{1, -1, 1},
	))
	nw.StartAll()
	nw.Run(3 * des.Second)
	a := nw.Stats(0)
	if a.ACKTimeouts == 0 {
		t.Skip("no ACK timeouts in this run; nothing to check")
	}
	// Accounting sanity with dedup in place: B's deliveries + suppressed
	// dups ≥ senders' data transmissions that were decoded. At minimum,
	// total successes must not exceed distinct deliveries.
	b := nw.Stats(1)
	c := nw.Stats(2)
	if b.DataDelivered < a.Successes+c.Successes {
		t.Errorf("deliveries %d < successes %d (dup suppression broke accounting)",
			b.DataDelivered, a.Successes+c.Successes)
	}
}
