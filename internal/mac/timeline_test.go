package mac_test

// Timing-exact tests of the DCF exchange, driven by the trace recorder:
// SIFS turnarounds, propagation offsets, NAV deference windows, and
// system-level conservation invariants on randomized networks.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim/simtest"
	"repro/internal/trace"
)

// tracedPair builds a 2-node network with a recorder and one packet.
func tracedPair(t *testing.T) (*simtest.Net, *trace.Recorder, mac.Config) {
	t.Helper()
	cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
	rec := trace.NewRecorder(64)
	cfg.Tracer = rec
	nw := simtest.Build(t, 5, cfg, []simtest.NodeSpec{
		{Pos: geom.Point{X: 0, Y: 0}, Source: simtest.Packets(mac.Packet{Dst: 1, Bytes: 1460})},
		{Pos: geom.Point{X: 0.5, Y: 0}, Source: simtest.Responder()},
	})
	nw.Start(0)
	nw.Run(des.Second)
	return nw, rec, cfg
}

// eventAt finds the first event of the given node/kind/frame.
func eventAt(t *testing.T, rec *trace.Recorder, node phy.NodeID, kind trace.Kind, ft phy.FrameType) trace.Event {
	t.Helper()
	for _, ev := range rec.Events() {
		if ev.Node == node && ev.Kind == kind && ev.Frame == ft {
			return ev
		}
	}
	t.Fatalf("no event node=%d kind=%v frame=%v in %v", node, kind, ft, rec.Events())
	return trace.Event{}
}

func TestHandshakeTimingExact(t *testing.T) {
	_, rec, cfg := tracedPair(t)
	params := phy.DefaultParams()
	var (
		rtsTx  = eventAt(t, rec, 0, trace.TxStart, phy.RTS)
		rtsRx  = eventAt(t, rec, 1, trace.RxFrame, phy.RTS)
		ctsTx  = eventAt(t, rec, 1, trace.TxStart, phy.CTS)
		ctsRx  = eventAt(t, rec, 0, trace.RxFrame, phy.CTS)
		dataTx = eventAt(t, rec, 0, trace.TxStart, phy.Data)
		dataRx = eventAt(t, rec, 1, trace.RxFrame, phy.Data)
		ackTx  = eventAt(t, rec, 1, trace.TxStart, phy.ACK)
		ackRx  = eventAt(t, rec, 0, trace.RxFrame, phy.ACK)
	)
	// RTS arrives exactly airtime + propagation after it starts.
	if got, want := rtsRx.At-rtsTx.At, params.Airtime(cfg.RTSBytes)+params.PropDelay; got != want {
		t.Errorf("RTS flight time = %v, want %v", got, want)
	}
	// SIFS turnarounds are exact (no carrier sensing).
	if got := ctsTx.At - rtsRx.At; got != cfg.SIFS {
		t.Errorf("RTS→CTS turnaround = %v, want SIFS %v", got, cfg.SIFS)
	}
	if got := dataTx.At - ctsRx.At; got != cfg.SIFS {
		t.Errorf("CTS→DATA turnaround = %v, want SIFS %v", got, cfg.SIFS)
	}
	if got := ackTx.At - dataRx.At; got != cfg.SIFS {
		t.Errorf("DATA→ACK turnaround = %v, want SIFS %v", got, cfg.SIFS)
	}
	// Flight times for the remaining frames.
	if got, want := ctsRx.At-ctsTx.At, params.Airtime(cfg.CTSBytes)+params.PropDelay; got != want {
		t.Errorf("CTS flight time = %v, want %v", got, want)
	}
	if got, want := dataRx.At-dataTx.At, params.Airtime(1460)+params.PropDelay; got != want {
		t.Errorf("DATA flight time = %v, want %v", got, want)
	}
	if got, want := ackRx.At-ackTx.At, params.Airtime(cfg.ACKBytes)+params.PropDelay; got != want {
		t.Errorf("ACK flight time = %v, want %v", got, want)
	}
	// The whole exchange starts after DIFS plus a whole number of slots
	// (the drawn backoff).
	afterDIFS := rtsTx.At - cfg.DIFS
	if afterDIFS < 0 || des.Time(afterDIFS)%cfg.Slot != 0 {
		t.Errorf("RTS at %v is not DIFS + k·slot", rtsTx.At)
	}
	// Success exactly when the ACK is decoded.
	succ := eventAt(t, rec, 0, trace.Success, phy.ACK)
	if succ.At != ackRx.At {
		t.Errorf("success at %v, ACK rx at %v", succ.At, ackRx.At)
	}
}

// TestNAVDeferenceWindow: a third node that overhears only the RTS must
// not transmit before the RTS's NAV (the whole exchange) expires.
func TestNAVDeferenceWindow(t *testing.T) {
	cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
	rec := trace.NewRecorder(512)
	cfg.Tracer = rec
	// A at origin, B in range of A only, C in range of A only (C hears
	// A's RTS but not B's CTS).
	nw := simtest.Build(t, 8, cfg, []simtest.NodeSpec{
		{Pos: geom.Point{X: 0, Y: 0}, // A
			Source: simtest.Packets(mac.Packet{Dst: 1, Bytes: 1460})},
		{Pos: geom.Point{X: 0.9, Y: 0}, Source: simtest.Responder()}, // B
		{Pos: geom.Point{X: -0.9, Y: 0}, // C wants to send to A
			Source: simtest.Packets(mac.Packet{Dst: 0, Bytes: 1460})},
	})
	a, c := nw.Nodes[0], nw.Nodes[2]
	a.Start()
	// Hold C until just after A's RTS is on the air, then let it contend.
	nw.Sched.Schedule(time400, func() { c.Start() })
	nw.Run(des.Second)

	rtsA := eventAt(t, rec, 0, trace.TxStart, phy.RTS)
	over := eventAt(t, rec, 2, trace.Overheard, phy.RTS)
	rtsC := eventAt(t, rec, 2, trace.TxStart, phy.RTS)
	// C decoded A's RTS, then stayed silent through the NAV: A's exchange
	// ends with the ACK arriving back at A.
	ackRxA := eventAt(t, rec, 0, trace.RxFrame, phy.ACK)
	if rtsC.At <= ackRxA.At {
		t.Errorf("C transmitted at %v, before A's exchange ended at %v (RTS was at %v, overheard %v)",
			rtsC.At, ackRxA.At, rtsA.At, over.At)
	}
	// And A must have succeeded despite C's pent-up demand.
	if a.Stats().Successes != 1 {
		t.Errorf("A successes = %d, want 1", a.Stats().Successes)
	}
}

// time400 places C's start inside A's first RTS transmission: A's RTS
// starts at DIFS + k·slot ∈ [50µs, 670µs]; 400µs lands mid-exchange for
// most draws and before it for the rest — either way C's first chance to
// transmit is governed by carrier sense + NAV.
const time400 = 400 * des.Microsecond

// TestConservationInvariants runs randomized small networks and checks
// the cross-node accounting identities that any correct MAC must satisfy.
func TestConservationInvariants(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nNodes := 3 + rng.Intn(5)
		specs := make([]simtest.NodeSpec, nNodes)
		for i := range specs {
			specs[i] = simtest.NodeSpec{
				Pos:    geom.Point{X: rng.Float64() * 1.4, Y: rng.Float64() * 1.4},
				Source: simtest.SaturatedNeighbors(1460),
			}
		}
		cfg := mac.DefaultConfig(core.DRTSOCTS, 1.2)
		nw := simtest.Build(t, seed, cfg, specs)
		nw.StartAll()
		nw.Run(2 * des.Second)

		var sumSucc, sumACKSent, sumDeliver, sumDataSent int64
		for i := range nw.Nodes {
			st := nw.Stats(i)
			if st.BitsAcked != st.Successes*1460*8 {
				t.Errorf("seed %d node %d: BitsAcked %d != Successes %d × payload", seed, i, st.BitsAcked, st.Successes)
			}
			if st.DataSent < st.Successes+st.ACKTimeouts || st.DataSent > st.Successes+st.ACKTimeouts+1 {
				t.Errorf("seed %d node %d: DataSent %d vs Successes+ACKTimeouts %d",
					seed, i, st.DataSent, st.Successes+st.ACKTimeouts)
			}
			if r := st.CollisionRatio(); r < 0 || r > 1 {
				t.Errorf("seed %d node %d: collision ratio %v", seed, i, r)
			}
			if st.DelayCount != st.Successes {
				t.Errorf("seed %d node %d: DelayCount %d != Successes %d", seed, i, st.DelayCount, st.Successes)
			}
			sumSucc += st.Successes
			sumACKSent += st.ACKSent
			sumDeliver += st.DataDelivered
			sumDataSent += st.DataSent
		}
		// Every success implies a delivered data frame and a sent ACK;
		// the converse can fail (lost ACKs), so these are inequalities.
		if sumDeliver < sumSucc {
			t.Errorf("seed %d: delivered %d < successes %d", seed, sumDeliver, sumSucc)
		}
		if sumACKSent < sumSucc {
			t.Errorf("seed %d: ACKs sent %d < successes %d", seed, sumACKSent, sumSucc)
		}
		if sumDeliver > sumDataSent {
			t.Errorf("seed %d: delivered %d > data sent %d", seed, sumDeliver, sumDataSent)
		}
	}
}

// TestBackoffFreezeResume: a node that loses contention freezes its
// remaining backoff slots and resumes after the medium clears — its RTS
// goes out only after the winner's whole exchange plus its residual
// backoff, never mid-exchange.
func TestBackoffFreezeResume(t *testing.T) {
	cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
	rec := trace.NewRecorder(1024)
	cfg.Tracer = rec
	// Two saturated contenders in range of each other plus a shared sink.
	nw := simtest.Build(t, 12, cfg, []simtest.NodeSpec{
		{Pos: geom.Point{X: 0, Y: 0}, Source: simtest.SaturatedBytes(1460, 2)},
		{Pos: geom.Point{X: 0.4, Y: 0}, Source: simtest.SaturatedBytes(1460, 2)},
		{Pos: geom.Point{X: 0.2, Y: 0.3}, Source: simtest.Responder()},
	})
	nw.Start(0, 1)
	nw.Run(3 * des.Second)

	// Reconstruct busy intervals (any node transmitting) from tx events
	// and frame sizes; every RTS start must fall outside every other
	// node's transmission interval (carrier sensing forbids overlap among
	// mutually-in-range nodes, modulo the 1 µs propagation ambiguity).
	params := phy.DefaultParams()
	sizeOf := map[phy.FrameType]int{phy.RTS: 20, phy.CTS: 14, phy.Data: 1460, phy.ACK: 14}
	type span struct {
		node     phy.NodeID
		from, to des.Time
	}
	var spans []span
	for _, ev := range rec.Events() {
		if ev.Kind == trace.TxStart {
			spans = append(spans, span{ev.Node, ev.At, ev.At + params.Airtime(sizeOf[ev.Frame])})
		}
	}
	for _, ev := range rec.Events() {
		if ev.Kind != trace.TxStart || ev.Frame != phy.RTS {
			continue
		}
		for _, sp := range spans {
			if sp.node == ev.Node {
				continue
			}
			// Allow the propagation delay: a node may legitimately start
			// within PropDelay of another's start (it cannot know yet).
			if ev.At > sp.from+params.PropDelay && ev.At < sp.to {
				t.Fatalf("node %d sent RTS at %v inside node %d's transmission [%v, %v]",
					ev.Node, ev.At, sp.node, sp.from, sp.to)
			}
		}
	}
}

// TestEIFSAfterCollision: after observing garbled energy, a contender
// defers by EIFS (SIFS + ACK airtime + DIFS ≈ 318 µs) rather than DIFS
// (50 µs) before resuming its countdown. We detect it indirectly: with
// EIFS disabled, the post-collision RTS of the observer comes earlier.
func TestEIFSAfterCollision(t *testing.T) {
	firstRTSAfterError := func(disableEIFS bool) des.Time {
		cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
		cfg.DisableEIFS = disableEIFS
		rec := trace.NewRecorder(4096)
		cfg.Tracer = rec
		// Two hidden senders collide at the middle node; a fourth node
		// (observer, in range of the middle) sees the damage and defers.
		nw := simtest.Build(t, 21, cfg, []simtest.NodeSpec{
			{Pos: geom.Point{X: -0.9, Y: 0}, Source: simtest.SaturatedBytes(1460, 2)},
			{Pos: geom.Point{X: 0.9, Y: 0}, Source: simtest.SaturatedBytes(1460, 2)},
			{Pos: geom.Point{X: 0, Y: 0}, Source: simtest.Responder()},
			{Pos: geom.Point{X: 0, Y: 0.3}, // observer, in range of both senders
				Source: simtest.SaturatedBytes(1460, 2)},
		})
		nw.Start(0, 1, 3)
		nw.Run(5 * des.Second)

		var errAt des.Time = -1
		for _, ev := range rec.Events() {
			if ev.Node == 3 && ev.Kind == trace.RxError && errAt < 0 {
				errAt = ev.At
			}
			if errAt >= 0 && ev.Node == 3 && ev.Kind == trace.TxStart && ev.At > errAt {
				return ev.At - errAt
			}
		}
		t.Skip("scenario produced no observable error-then-transmit sequence")
		return 0
	}
	withEIFS := firstRTSAfterError(false)
	withoutEIFS := firstRTSAfterError(true)
	if withEIFS <= withoutEIFS {
		t.Errorf("EIFS should delay the post-error transmission: with=%v without=%v",
			withEIFS, withoutEIFS)
	}
}
