// Package mobility animates node positions with the random-waypoint
// model, the standard mobility pattern in ad hoc network studies. The
// paper itself evaluates static networks; this package supports the
// extension study of how sensitive the directional schemes are to stale
// neighbor locations — the axis the paper's future-work discussion
// points at (beams aimed from outdated bearings miss moving receivers).
package mobility

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/phy"
)

// Config parameterizes the random-waypoint model.
type Config struct {
	// Bound keeps nodes inside a disk of this radius centered at the
	// origin (the paper's 3R network disk).
	Bound float64
	// SpeedMin/SpeedMax bound the uniform speed draw, in distance units
	// per second. SpeedMax = 0 disables movement entirely.
	SpeedMin, SpeedMax float64
	// Pause is the dwell time at each waypoint.
	Pause des.Time
	// Tick is the position-update interval (granularity of motion).
	Tick des.Time
}

// DefaultConfig returns a gentle walk inside the paper's 3R disk:
// speeds up to maxSpeed, one-second pauses, 100 ms update granularity.
func DefaultConfig(maxSpeed float64) Config {
	return Config{
		Bound:    3,
		SpeedMin: maxSpeed / 10,
		SpeedMax: maxSpeed,
		Pause:    des.Second,
		Tick:     100 * des.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Bound <= 0 {
		return fmt.Errorf("mobility: bound must be positive, got %v", c.Bound)
	}
	if c.SpeedMin < 0 || c.SpeedMax < c.SpeedMin {
		return fmt.Errorf("mobility: need 0 <= SpeedMin <= SpeedMax, got %v, %v", c.SpeedMin, c.SpeedMax)
	}
	if c.SpeedMax > 0 && c.Tick <= 0 {
		return fmt.Errorf("mobility: tick must be positive, got %v", c.Tick)
	}
	if c.Pause < 0 {
		return fmt.Errorf("mobility: pause must be non-negative, got %v", c.Pause)
	}
	return nil
}

// walker is one node's waypoint state.
type walker struct {
	radio  *phy.Radio
	target geom.Point
	speed  float64 // distance units per second
	pausal des.Time
}

// Model drives the walkers from the scheduler.
type Model struct {
	sched   *des.Scheduler
	cfg     Config
	walkers []*walker
	stopped bool
}

// New attaches a random-waypoint model to every radio of the channel.
func New(sched *des.Scheduler, ch *phy.Channel, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{sched: sched, cfg: cfg}
	for i := 0; i < ch.NumRadios(); i++ {
		m.walkers = append(m.walkers, &walker{radio: ch.Radio(phy.NodeID(i))})
	}
	return m, nil
}

// Start begins the walk. Idempotent per model; Stop ends it.
func (m *Model) Start() {
	if m.cfg.SpeedMax <= 0 {
		return // static network
	}
	for _, w := range m.walkers {
		m.retarget(w)
	}
	// Ticks are inert kernel events: due instants are fixed multiples of
	// Tick, and a tick only moves positions that future transmissions
	// read — it never touches an already-pending event. A pending tick
	// therefore does not block the fast-forward gate; a bulk countdown
	// spanning a tick instant still observes the move, because inert
	// events keep firing in (at, seq) order.
	m.sched.ScheduleInert(m.cfg.Tick, m.tick)
}

// Stop freezes all nodes at their current positions.
func (m *Model) Stop() { m.stopped = true }

// retarget draws a fresh waypoint and speed for w.
func (m *Model) retarget(w *walker) {
	rng := m.sched.Rand()
	// Uniform by area inside the bounding disk.
	r := m.cfg.Bound * math.Sqrt(rng.Float64())
	theta := rng.Float64() * 2 * math.Pi
	w.target = geom.Polar(geom.Point{}, r, theta)
	w.speed = m.cfg.SpeedMin + rng.Float64()*(m.cfg.SpeedMax-m.cfg.SpeedMin)
	w.pausal = 0
}

// tick advances every walker by one interval.
func (m *Model) tick() {
	if m.stopped {
		return
	}
	dt := m.cfg.Tick.Seconds()
	for _, w := range m.walkers {
		if w.pausal > 0 {
			w.pausal -= m.cfg.Tick
			if w.pausal <= 0 {
				m.retarget(w)
			}
			continue
		}
		pos := w.radio.Pos()
		to := w.target.Sub(pos)
		dist := to.Len()
		step := w.speed * dt
		if dist <= step {
			w.radio.SetPos(w.target)
			w.pausal = m.cfg.Pause
			if w.pausal <= 0 {
				m.retarget(w)
			}
			continue
		}
		w.radio.SetPos(pos.Add(to.Scale(step / dist)))
	}
	m.sched.ScheduleInert(m.cfg.Tick, m.tick)
}
