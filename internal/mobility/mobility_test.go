package mobility

import (
	"testing"

	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/phy"
)

type noop struct{}

func (noop) OnCarrierBusy()      {}
func (noop) OnCarrierIdle()      {}
func (noop) OnFrame(f phy.Frame) {}
func (noop) OnFrameError()       {}
func (noop) OnTxDone()           {}

func channelWith(t *testing.T, n int) (*des.Scheduler, *phy.Channel) {
	t.Helper()
	sched := des.New(9)
	ch, err := phy.NewChannel(sched, phy.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ch.AddRadio(geom.Point{X: float64(i) * 0.3}, noop{})
	}
	return sched, ch
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(1.0).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{Bound: 0, SpeedMax: 1, Tick: des.Second},
		{Bound: 3, SpeedMin: -1, SpeedMax: 1, Tick: des.Second},
		{Bound: 3, SpeedMin: 2, SpeedMax: 1, Tick: des.Second},
		{Bound: 3, SpeedMax: 1, Tick: 0},
		{Bound: 3, SpeedMax: 1, Tick: des.Second, Pause: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestNodesMoveAndStayBounded(t *testing.T) {
	sched, ch := channelWith(t, 5)
	cfg := Config{Bound: 2, SpeedMin: 0.5, SpeedMax: 1.5, Pause: 100 * des.Millisecond, Tick: 50 * des.Millisecond}
	m, err := New(sched, ch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]geom.Point, 5)
	for i := range initial {
		initial[i] = ch.Radio(phy.NodeID(i)).Pos()
	}
	m.Start()
	moved := false
	for step := 0; step < 600; step++ {
		sched.Run(sched.Now() + 50*des.Millisecond)
		for i := 0; i < 5; i++ {
			pos := ch.Radio(phy.NodeID(i)).Pos()
			if d := pos.Dist(geom.Point{}); d > cfg.Bound+1e-9 {
				t.Fatalf("node %d escaped the bound: distance %v", i, d)
			}
			if pos != initial[i] {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("no node moved in 30 simulated seconds")
	}
}

func TestSpeedIsRespected(t *testing.T) {
	sched, ch := channelWith(t, 1)
	cfg := Config{Bound: 5, SpeedMin: 1, SpeedMax: 1, Pause: 0, Tick: 100 * des.Millisecond}
	m, err := New(sched, ch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	prev := ch.Radio(0).Pos()
	for step := 0; step < 100; step++ {
		sched.Run(sched.Now() + 100*des.Millisecond)
		cur := ch.Radio(0).Pos()
		// At speed 1.0 and 100 ms ticks, each step moves at most 0.1 (+ε).
		if d := cur.Dist(prev); d > 0.1+1e-9 {
			t.Fatalf("step %d moved %v, want <= 0.1", step, d)
		}
		prev = cur
	}
}

func TestZeroSpeedIsStatic(t *testing.T) {
	sched, ch := channelWith(t, 3)
	m, err := New(sched, ch, DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	before := ch.Radio(1).Pos()
	m.Start()
	sched.Run(10 * des.Second)
	if ch.Radio(1).Pos() != before {
		t.Error("zero-speed model moved a node")
	}
	if sched.Pending() != 0 {
		t.Error("zero-speed model should schedule nothing")
	}
}

func TestStopFreezes(t *testing.T) {
	sched, ch := channelWith(t, 2)
	m, err := New(sched, ch, Config{Bound: 3, SpeedMin: 1, SpeedMax: 1, Tick: 10 * des.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	sched.Run(des.Second)
	m.Stop()
	frozen := ch.Radio(0).Pos()
	sched.Run(5 * des.Second)
	if ch.Radio(0).Pos() != frozen {
		t.Error("node moved after Stop")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() geom.Point {
		sched, ch := channelWith(t, 4)
		m, err := New(sched, ch, DefaultConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		m.Start()
		sched.Run(20 * des.Second)
		return ch.Radio(2).Pos()
	}
	if run() != run() {
		t.Error("same seed produced different walks")
	}
}
