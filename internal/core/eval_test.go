package core

// Parity tests for the memoized evaluation context: the tabulated path
// must reproduce the direct (pre-memoization) Solve/Throughput/
// MaxThroughput results to ≤1e-12 over the full paper grid, and a
// Throughput probe must not allocate.

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

// parityTol is the acceptance bound: memoized and direct paths may
// differ only by float round-off from re-associated exponents.
const parityTol = 1e-12

// paperGridThetas is the Fig. 5 beamwidth sweep, 15°..180°.
func paperGridThetas() []float64 { return PaperBeamwidths() }

// relDiff returns |a−b| scaled by max(1, |a|, |b|) so the tolerance is
// absolute near zero and relative for O(1) values.
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d / scale
}

// refMaxThroughput is the pre-memoization search: the exact hybrid
// grid + golden-section algorithm MaxThroughput used before the Eval
// context existed, probing the direct Throughput path.
func refMaxThroughput(s Scheme, pr Params, pMax float64) (float64, float64, error) {
	if err := pr.Validate(); err != nil {
		return 0, 0, err
	}
	if pMax <= 0 || pMax >= 1 {
		pMax = 0.5
	}
	f := func(p float64) float64 {
		th, err := Throughput(s, p, pr)
		if err != nil {
			return math.Inf(-1)
		}
		return th
	}
	return numeric.MaximizeHybrid(f, 1e-6, pMax, 64, 1e-9)
}

func TestEvalThroughputParityPaperGrid(t *testing.T) {
	probes := []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.3}
	for _, s := range AllSchemes() {
		for _, n := range []float64{3, 5, 8} {
			for _, th := range paperGridThetas() {
				pr := paperParams(n, th)
				e, err := NewEval(s, pr)
				if err != nil {
					t.Fatalf("%v N=%v θ=%v: NewEval: %v", s, n, th, err)
				}
				for _, p := range probes {
					direct, err := Throughput(s, p, pr)
					if err != nil {
						t.Fatalf("%v N=%v θ=%v p=%v: direct: %v", s, n, th, p, err)
					}
					memo, err := e.Throughput(p)
					if err != nil {
						t.Fatalf("%v N=%v θ=%v p=%v: memoized: %v", s, n, th, p, err)
					}
					if d := relDiff(direct, memo); d > parityTol {
						t.Errorf("%v N=%v θ=%v p=%v: throughput diverged by %.3g (direct %v, memoized %v)",
							s, n, th, p, d, direct, memo)
					}
				}
			}
		}
	}
}

func TestEvalSolveParity(t *testing.T) {
	for _, s := range AllSchemes() {
		pr := paperParams(5, math.Pi/6)
		e, err := NewEval(s, pr)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []float64{0.002, 0.02, 0.2} {
			direct, err := Solve(s, p, pr)
			if err != nil {
				t.Fatal(err)
			}
			memo, err := e.Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			checks := []struct {
				name string
				d, m float64
			}{
				{"Pws", direct.Pws, memo.Pws},
				{"Pww", direct.Pww, memo.Pww},
				{"Tfail", direct.Tfail, memo.Tfail},
				{"Pw", direct.Pw, memo.Pw},
				{"Ps", direct.Ps, memo.Ps},
				{"Pf", direct.Pf, memo.Pf},
			}
			for _, c := range checks {
				if d := relDiff(c.d, c.m); d > parityTol {
					t.Errorf("%v p=%v: %s diverged by %.3g (direct %v, memoized %v)", s, p, c.name, d, c.d, c.m)
				}
			}
		}
	}
}

func TestEvalMaxThroughputParityPaperGrid(t *testing.T) {
	for _, s := range Schemes() {
		for _, n := range []float64{3, 5, 8} {
			for _, th := range paperGridThetas() {
				pr := paperParams(n, th)
				_, refTh, err := refMaxThroughput(s, pr, 0)
				if err != nil {
					t.Fatalf("%v N=%v θ=%v: reference: %v", s, n, th, err)
				}
				_, gotTh, err := MaxThroughput(s, pr, 0)
				if err != nil {
					t.Fatalf("%v N=%v θ=%v: memoized: %v", s, n, th, err)
				}
				if d := relDiff(refTh, gotTh); d > parityTol {
					t.Errorf("%v N=%v θ=%v: max throughput diverged by %.3g (reference %v, memoized %v)",
						s, n, th, d, refTh, gotTh)
				}
			}
		}
	}
}

func TestCurveParityAndORTSOCTSDedup(t *testing.T) {
	thetas := paperGridThetas()
	for _, s := range Schemes() {
		got, err := Curve(s, 5, PaperLengths(), thetas)
		if err != nil {
			t.Fatalf("%v: Curve: %v", s, err)
		}
		for i, th := range thetas {
			pr := paperParams(5, th)
			_, want, err := refMaxThroughput(s, pr, 0)
			if err != nil {
				t.Fatal(err)
			}
			if d := relDiff(want, got[i]); d > parityTol {
				t.Errorf("%v θ=%v: curve point diverged by %.3g (reference %v, got %v)", s, th, d, want, got[i])
			}
		}
	}
	// The deduplicated ORTS-OCTS curve must be exactly flat.
	flat, err := Curve(ORTSOCTS, 5, PaperLengths(), thetas)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(flat); i++ {
		if flat[i] != flat[0] {
			t.Errorf("ORTS-OCTS curve not bit-flat: point %d = %v, point 0 = %v", i, flat[i], flat[0])
		}
	}
}

func TestCurvePropagatesBadTheta(t *testing.T) {
	if _, err := Curve(ORTSOCTS, 5, PaperLengths(), []float64{math.Pi / 6, -1}); err == nil {
		t.Error("Curve should reject a non-positive beamwidth point")
	}
	if _, err := Curve(DRTSDCTS, 5, PaperLengths(), []float64{math.Pi / 6, -1}); err == nil {
		t.Error("Curve should reject a non-positive beamwidth point")
	}
}

func TestNewEvalValidation(t *testing.T) {
	if _, err := NewEval(DRTSDCTS, paperParams(-1, 1)); err == nil {
		t.Error("NewEval should reject invalid params")
	}
	if _, err := NewEval(Scheme(99), paperParams(5, 1)); err == nil {
		t.Error("NewEval should reject an unknown scheme")
	}
}

func TestEvalSolveRejectsBadP(t *testing.T) {
	e, err := NewEval(DRTSDCTS, paperParams(5, math.Pi/6))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, -0.1, 1, 1.5, math.NaN()} {
		if _, err := e.Solve(p); err == nil {
			t.Errorf("Eval.Solve(p=%v) should fail", p)
		}
	}
}

func TestEvalThroughputAllocationFree(t *testing.T) {
	e, err := NewEval(DRTSDCTS, paperParams(5, math.Pi/6))
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := e.Throughput(0.02); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Eval.Throughput allocates %v times per call; the workspace contract is zero", allocs)
	}
}
