// Package core implements the paper's primary contribution: the
// approximate throughput analysis of three collision-avoidance MAC schemes
// in multi-hop ad hoc networks with directional antennas (Wang &
// Garcia-Luna-Aceves, ICDCS 2003, Section 2).
//
// Nodes are placed by a two-dimensional Poisson process with an average of
// N nodes per coverage disk of radius R. Time is slotted; every silent
// node starts transmitting in a slot independently with probability p.
// A node is modeled by a three-state Markov chain (wait, succeed, fail);
// the per-scheme physics enter through the transition probability P_ws
// (probability of initiating a successful four-way handshake in a slot),
// the idle-persistence probability P_ww, and the expected failed-handshake
// duration T_fail.
//
// All packet lengths are in slots and all distances are normalized to the
// transmission range (R = 1).
package core

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/geom"
	"repro/internal/numeric"
)

// Scheme identifies one of the three collision-avoidance schemes analyzed
// in the paper.
type Scheme int

const (
	// ORTSOCTS transmits every packet omni-directionally (standard
	// sender-initiated collision avoidance; the scheme of IEEE 802.11).
	ORTSOCTS Scheme = iota + 1
	// DRTSDCTS transmits every packet directionally, maximizing spatial
	// reuse at the price of more collisions.
	DRTSDCTS
	// DRTSOCTS transmits RTS, data and ACK directionally but the CTS
	// omni-directionally, trading some reuse for hidden-terminal silencing.
	DRTSOCTS
	// ORTSDCTS is the fourth combination, not analyzed in the paper but
	// derivable with the same machinery (the paper notes its model "is
	// applicable to many other combinations"): omni-directional RTS with
	// directional CTS/DATA/ACK. It keeps the sender-side silencing cost of
	// omni RTS while losing the receiver-side hidden-terminal protection
	// of an omni CTS — the worst of both worlds, which the model predicts.
	ORTSDCTS
)

var schemeNames = map[Scheme]string{
	ORTSOCTS: "ORTS-OCTS",
	DRTSDCTS: "DRTS-DCTS",
	DRTSOCTS: "DRTS-OCTS",
	ORTSDCTS: "ORTS-DCTS",
}

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Schemes lists all three schemes in the paper's presentation order.
func Schemes() []Scheme {
	return []Scheme{ORTSOCTS, DRTSDCTS, DRTSOCTS}
}

// AllSchemes lists the paper's three schemes plus the ORTSDCTS
// extension.
func AllSchemes() []Scheme {
	return []Scheme{ORTSOCTS, DRTSDCTS, DRTSOCTS, ORTSDCTS}
}

// ParseScheme converts a scheme name ("ORTS-OCTS", "drts-dcts",
// "DRTSOCTS", "drts/octs", " ORTS_OCTS ", ...) to its Scheme value.
// Case is ignored, surrounding whitespace is trimmed, and the
// separators "-", "_", "/" and " " are interchangeable (including
// absent) — every spelling the docs and CLI flags use parses.
func ParseScheme(s string) (Scheme, error) {
	norm := strings.ToUpper(strings.TrimSpace(s))
	for _, sep := range []string{"-", "_", "/", " "} {
		norm = strings.ReplaceAll(norm, sep, "")
	}
	switch norm {
	case "ORTSOCTS":
		return ORTSOCTS, nil
	case "DRTSDCTS":
		return DRTSDCTS, nil
	case "DRTSOCTS":
		return DRTSOCTS, nil
	case "ORTSDCTS":
		return ORTSDCTS, nil
	default:
		return 0, fmt.Errorf("core: unknown scheme %q (want ORTS-OCTS, DRTS-DCTS, DRTS-OCTS or ORTS-DCTS)", s)
	}
}

// Lengths holds the packet transmission times in slots (the paper's
// l_rts, l_cts, l_data, l_ack).
type Lengths struct {
	RTS, CTS, Data, ACK int
}

// PaperLengths is the configuration used for the paper's Section 3
// numerical results: control packets of 5 slots and data packets of 100.
func PaperLengths() Lengths {
	return Lengths{RTS: 5, CTS: 5, Data: 100, ACK: 5}
}

// Succeed returns T_succeed = l_rts + l_cts + l_data + l_ack + 4, the
// duration of a complete four-way handshake including the four one-slot
// turnaround gaps.
func (l Lengths) Succeed() int {
	return l.RTS + l.CTS + l.Data + l.ACK + 4
}

// Validate reports whether every length is positive.
func (l Lengths) Validate() error {
	if l.RTS <= 0 || l.CTS <= 0 || l.Data <= 0 || l.ACK <= 0 {
		return fmt.Errorf("core: all packet lengths must be positive, got %+v", l)
	}
	return nil
}

// Params collects the free parameters of the analytical model.
type Params struct {
	// N is the average number of nodes per coverage disk (λπR²).
	N float64
	// Beamwidth θ is the directional transmission beamwidth in radians,
	// in (0, 2π]. It is ignored by ORTSOCTS.
	Beamwidth float64
	// Lengths are the packet lengths in slots.
	Lengths Lengths
}

// Validate checks the parameter ranges.
func (pr Params) Validate() error {
	if pr.N <= 0 || math.IsNaN(pr.N) || math.IsInf(pr.N, 0) {
		return fmt.Errorf("core: N must be positive and finite, got %v", pr.N)
	}
	if pr.Beamwidth <= 0 || pr.Beamwidth > 2*math.Pi+1e-9 {
		return fmt.Errorf("core: beamwidth must be in (0, 2π], got %v", pr.Beamwidth)
	}
	return pr.Lengths.Validate()
}

// ErrBadP is returned when the attempt probability is outside (0, 1).
var ErrBadP = errors.New("core: attempt probability p must be in (0, 1)")

// integrationSteps is the Simpson subinterval count for the P_ws integrals.
// The integrands are C^∞ except at clamp boundaries; 512 panels give ~1e-10
// accuracy for all parameters in the paper's sweep.
const integrationSteps = 512

// Steady holds the solved Markov chain for one (scheme, p) operating point.
type Steady struct {
	Pws   float64 // wait → succeed transition probability per slot
	Pww   float64 // wait → wait transition probability per slot
	Tfail float64 // expected duration of the fail state, in slots
	Pw    float64 // steady-state probability of wait
	Ps    float64 // steady-state probability of succeed
	Pf    float64 // steady-state probability of fail
}

// Throughput returns the normalized saturation throughput
// Th = π_s·l_data / (π_w·T_w + π_s·T_s + π_f·T_f) for the given scheme at
// attempt probability p.
func Throughput(s Scheme, p float64, pr Params) (float64, error) {
	st, err := Solve(s, p, pr)
	if err != nil {
		return 0, err
	}
	ts := float64(pr.Lengths.Succeed())
	denom := st.Pw*1 + st.Ps*ts + st.Pf*st.Tfail
	if denom <= 0 {
		return 0, nil
	}
	return st.Ps * float64(pr.Lengths.Data) / denom, nil
}

// Solve computes the Markov steady state for the given scheme at attempt
// probability p.
func Solve(s Scheme, p float64, pr Params) (Steady, error) {
	if err := pr.Validate(); err != nil {
		return Steady{}, err
	}
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return Steady{}, ErrBadP
	}
	var (
		pws, pww, tfail float64
		err             error
	)
	switch s {
	case ORTSOCTS:
		pws, pww, tfail, err = solveORTSOCTS(p, pr)
	case DRTSDCTS:
		pws, pww, tfail, err = solveDRTSDCTS(p, pr)
	case DRTSOCTS:
		pws, pww, tfail, err = solveDRTSOCTS(p, pr)
	case ORTSDCTS:
		pws, pww, tfail, err = solveORTSDCTS(p, pr)
	default:
		return Steady{}, fmt.Errorf("core: unknown scheme %d", int(s))
	}
	if err != nil {
		return Steady{}, err
	}
	pw := 1 / (2 - pww)
	ps := pw * pws
	pf := 1 - pw - ps
	if pf < 0 {
		pf = 0 // guard against round-off at extreme parameters
	}
	return Steady{Pws: pws, Pww: pww, Tfail: tfail, Pw: pw, Ps: ps, Pf: pf}, nil
}

// solveORTSOCTS implements Section 2.1. The handshake is vulnerable only
// during 2·l_rts+1 slots to the hidden region B(r); once the CTS starts the
// handshake completes (correct collision avoidance is assumed).
func solveORTSOCTS(p float64, pr Params) (pws, pww, tfail float64, err error) {
	n, l := pr.N, pr.Lengths
	integrand := func(r float64) float64 {
		return 2 * r * math.Exp(-p*n*geom.HiddenArea(r)*float64(2*l.RTS+1))
	}
	integral, err := numeric.Integrate(integrand, 0, 1, integrationSteps)
	if err != nil {
		return 0, 0, 0, err
	}
	pws = p * (1 - p) * math.Exp(-p*n) * integral
	pww = (1 - p) * math.Exp(-p*n)
	tfail = float64(l.RTS + l.CTS + 2)
	return pws, pww, tfail, nil
}

// solveDRTSDCTS implements Section 2.2. All transmissions are inside a
// beam of width θ; interference probabilities come from the five regions of
// Fig. 3, each with its own vulnerable duration.
func solveDRTSDCTS(p float64, pr Params) (pws, pww, tfail float64, err error) {
	var (
		n, l   = pr.N, pr.Lengths
		theta  = pr.Beamwidth
		pDir   = p * theta / (2 * math.Pi) // p′: probability of hitting a given direction
		tsucc  = l.Succeed()
		expIII = float64(2*l.RTS + l.CTS + l.Data + l.ACK + 4)
		expIV  = float64(2*l.RTS + l.CTS + l.ACK + 2)
		expV   = float64(3*l.RTS + l.Data + 2)
	)
	integrand := func(r float64) float64 {
		a := geom.DRTSDCTSAreas(r, theta)
		exponent := p*a.I*n + // p₁: one slot, any direction
			pDir*a.II*n*float64(2*l.RTS) + p*a.II*n + // p₂
			pDir*a.III*n*expIII + // p₃ (θ′ ≈ θ)
			pDir*a.IV*n*expIV + // p₄
			pDir*a.V*n*expV // p₅
		return 2 * r * math.Exp(-exponent)
	}
	integral, err := numeric.Integrate(integrand, 0, 1, integrationSteps)
	if err != nil {
		return 0, 0, 0, err
	}
	pws = p * (1 - p) * integral
	pww = (1 - p) * math.Exp(-pDir*n)
	tfail = numeric.TruncGeomMean(p, l.RTS+1, tsucc)
	return pws, pww, tfail, nil
}

// solveDRTSOCTS implements Section 2.3. The RTS is directional but the CTS
// is omni-directional, so the hidden region is silenced once the CTS is
// heard; the three regions of Fig. 4 apply.
func solveDRTSOCTS(p float64, pr Params) (pws, pww, tfail float64, err error) {
	var (
		n, l   = pr.N, pr.Lengths
		theta  = pr.Beamwidth
		pDir   = p * theta / (2 * math.Pi)
		tsucc  = l.Succeed()
		expIII = float64(2*l.RTS + l.CTS + l.ACK + 2)
	)
	integrand := func(r float64) float64 {
		a := geom.DRTSOCTSAreas(r, theta)
		exponent := p*a.I*n +
			pDir*a.II*n*float64(2*l.RTS) + p*a.II*n +
			pDir*a.III*n*expIII
		return 2 * r * math.Exp(-exponent)
	}
	integral, err := numeric.Integrate(integrand, 0, 1, integrationSteps)
	if err != nil {
		return 0, 0, 0, err
	}
	pws = p * (1 - p) * integral
	// Nearly every handshake includes an omni CTS, which silences the
	// neighborhood, so P_ww matches the omni-directional case.
	pww = (1 - p) * math.Exp(-p*n)
	// The omni CTS can collide with ongoing handshakes, so the failed
	// period's lower bound includes the CTS exchange.
	tfail = numeric.TruncGeomMean(p, l.RTS+l.CTS+2, tsucc)
	return pws, pww, tfail, nil
}

// solveORTSDCTS is the extension analysis for the fourth combination,
// derived with the paper's method. The omni RTS silences the sender's
// whole disk (P_ww and the one-slot disk term match ORTS-OCTS), but the
// directional CTS leaves the hidden region B(r) unaware of the exchange,
// so it threatens the receiver for the RTS window (2·l_rts+1) AND the
// data reception (≈ l_rts + l_data + 1) — a vulnerable period of
// 3·l_rts + l_data + 2 slots, two orders longer than ORTS-OCTS's.
func solveORTSDCTS(p float64, pr Params) (pws, pww, tfail float64, err error) {
	n, l := pr.N, pr.Lengths
	vuln := float64(3*l.RTS + l.Data + 2)
	integrand := func(r float64) float64 {
		return 2 * r * math.Exp(-p*n*geom.HiddenArea(r)*vuln)
	}
	integral, err := numeric.Integrate(integrand, 0, 1, integrationSteps)
	if err != nil {
		return 0, 0, 0, err
	}
	pws = p * (1 - p) * math.Exp(-p*n) * integral
	pww = (1 - p) * math.Exp(-p*n)
	// Failures now include data-phase collisions, like DRTS-DCTS.
	tfail = numeric.TruncGeomMean(p, l.RTS+1, l.Succeed())
	return pws, pww, tfail, nil
}

// MaxThroughput returns the maximum achievable throughput over the attempt
// probability p ∈ (0, pMax] together with the maximizing p. The paper
// argues p stays below ≈0.1 under collision avoidance; pass pMax = 0 to
// use the default search bound of 0.5, which safely brackets every optimum
// in the paper's configurations.
//
// The search probes the throughput ~100 times, so it runs on a memoized
// Eval context: the geometry tables are built once and every probe costs
// one exponential per quadrature node (parity with the direct
// Throughput path is pinned to ≤1e-12 by the tests).
func MaxThroughput(s Scheme, pr Params, pMax float64) (bestP, bestTh float64, err error) {
	e, err := NewEval(s, pr)
	if err != nil {
		return 0, 0, err
	}
	return e.MaxThroughput(pMax)
}

// Curve evaluates MaxThroughput for each beamwidth in thetas, returning
// one throughput per beamwidth. This is the generator for the paper's
// Fig. 5 series. One Eval context is built per beamwidth and reused for
// the whole p-search; ORTS-OCTS, whose model does not depend on θ, is
// solved once and replicated across the sweep.
func Curve(s Scheme, n float64, lengths Lengths, thetas []float64) ([]float64, error) {
	out := make([]float64, len(thetas))
	if s == ORTSOCTS {
		for _, th := range thetas {
			// Preserve per-point validation errors (e.g. a θ ≤ 0 entry).
			if err := (Params{N: n, Beamwidth: th, Lengths: lengths}).Validate(); err != nil {
				return nil, fmt.Errorf("curve point θ=%v: %w", th, err)
			}
		}
		if len(thetas) == 0 {
			return out, nil
		}
		pr := Params{N: n, Beamwidth: thetas[0], Lengths: lengths}
		_, v, err := MaxThroughput(s, pr, 0)
		if err != nil {
			return nil, fmt.Errorf("curve point θ=%v: %w", thetas[0], err)
		}
		for i := range out {
			out[i] = v
		}
		return out, nil
	}
	for i, th := range thetas {
		pr := Params{N: n, Beamwidth: th, Lengths: lengths}
		_, v, err := MaxThroughput(s, pr, 0)
		if err != nil {
			return nil, fmt.Errorf("curve point θ=%v: %w", th, err)
		}
		out[i] = v
	}
	return out, nil
}

// PaperBeamwidths returns the paper's Fig. 5 sweep: 15° to 180° in 15°
// steps, in radians.
func PaperBeamwidths() []float64 {
	out := make([]float64, 0, 12)
	for deg := 15; deg <= 180; deg += 15 {
		out = append(out, float64(deg)*math.Pi/180)
	}
	return out
}
