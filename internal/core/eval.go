package core

// Eval is the memoized evaluation context for one (scheme, Params)
// operating point. The P_ws integrands of Section 2 share a structure
// that makes them cheap to re-evaluate: for every scheme the exponent is
// linear in the attempt probability p,
//
//	integrand(r; p) = 2r · exp(−p·k(r)),
//
// where k(r) collects the geometry sector areas, node density and
// vulnerable-period lengths — all independent of p. A golden-section
// p-search probes the same (N, θ) point ~100 times, and the Fig. 5 sweep
// re-derives the same q(t)/B(r) values for every probe; tabulating k(r)
// on the fixed Simpson grid once turns each subsequent Throughput call
// into one exponential per grid node with zero allocations.
//
// Construction costs one pass of geometry per grid node; Solve,
// Throughput and MaxThroughput then agree with the direct (unmemoized)
// path to within float round-off (the parity tests pin ≤1e-12 over the
// full paper grid).

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/numeric"
)

// pwsGrid is the shared Simpson grid for the P_ws integrals; identical
// panel count to the direct path's Integrate calls.
var pwsGrid = mustGrid()

func mustGrid() *numeric.SimpsonGrid {
	g, err := numeric.NewSimpsonGrid(0, 1, integrationSteps)
	if err != nil {
		panic(err) // unreachable: the interval and panel count are constants
	}
	return g
}

// Eval caches the p-independent integrand tables for one scheme at one
// parameter point. The zero value is not usable; construct with NewEval.
type Eval struct {
	scheme Scheme
	pr     Params

	// pref[i] = wᵢ·2rᵢ (quadrature weight times integrand prefactor) and
	// rate[i] = k(rᵢ), so the P_ws integral at probability p is
	// ExpSum(pref, rate, p).
	pref []float64
	rate []float64

	// diskFactor: Pws carries an extra exp(−p·N) (omni-RTS schemes whose
	// one-slot disk term sits outside the integral).
	diskFactor bool
	// pwwRate: P_ww = (1−p)·exp(−p·pwwRate).
	pwwRate float64
	// tfailLo/tfailHi bound the truncated-geometric failed period;
	// tfailConst, when ≥ 0, overrides it with a constant duration.
	tfailLo, tfailHi int
	tfailConst       float64
}

// NewEval validates pr and tabulates the scheme's integrand coefficients
// on the shared Simpson grid.
func NewEval(s Scheme, pr Params) (*Eval, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	var (
		n     = pr.N
		l     = pr.Lengths
		theta = pr.Beamwidth
		dirFr = theta / (2 * math.Pi) // p′/p: fraction of attempts aimed our way
	)
	e := &Eval{
		scheme:     s,
		pr:         pr,
		pref:       make([]float64, pwsGrid.Len()),
		rate:       make([]float64, pwsGrid.Len()),
		tfailConst: -1,
	}
	for i := 0; i < pwsGrid.Len(); i++ {
		e.pref[i] = pwsGrid.Weight(i) * 2 * pwsGrid.X(i)
	}
	switch s {
	case ORTSOCTS:
		vuln := float64(2*l.RTS + 1)
		for i := range e.rate {
			e.rate[i] = n * geom.HiddenArea(pwsGrid.X(i)) * vuln
		}
		e.diskFactor = true
		e.pwwRate = n
		e.tfailConst = float64(l.RTS + l.CTS + 2)
	case DRTSDCTS:
		expIII := float64(2*l.RTS + l.CTS + l.Data + l.ACK + 4)
		expIV := float64(2*l.RTS + l.CTS + l.ACK + 2)
		expV := float64(3*l.RTS + l.Data + 2)
		for i := range e.rate {
			a := geom.DRTSDCTSAreas(pwsGrid.X(i), theta)
			e.rate[i] = a.I*n + a.II*n +
				dirFr*(a.II*n*float64(2*l.RTS)+a.III*n*expIII+a.IV*n*expIV+a.V*n*expV)
		}
		e.pwwRate = dirFr * n
		e.tfailLo, e.tfailHi = l.RTS+1, l.Succeed()
	case DRTSOCTS:
		expIII := float64(2*l.RTS + l.CTS + l.ACK + 2)
		for i := range e.rate {
			a := geom.DRTSOCTSAreas(pwsGrid.X(i), theta)
			e.rate[i] = a.I*n + a.II*n +
				dirFr*(a.II*n*float64(2*l.RTS)+a.III*n*expIII)
		}
		e.pwwRate = n
		e.tfailLo, e.tfailHi = l.RTS+l.CTS+2, l.Succeed()
	case ORTSDCTS:
		vuln := float64(3*l.RTS + l.Data + 2)
		for i := range e.rate {
			e.rate[i] = n * geom.HiddenArea(pwsGrid.X(i)) * vuln
		}
		e.diskFactor = true
		e.pwwRate = n
		e.tfailLo, e.tfailHi = l.RTS+1, l.Succeed()
	default:
		return nil, fmt.Errorf("core: unknown scheme %d", int(s))
	}
	return e, nil
}

// Scheme returns the scheme the context was built for.
func (e *Eval) Scheme() Scheme { return e.scheme }

// Params returns the parameter point the context was built for.
func (e *Eval) Params() Params { return e.pr }

// Solve computes the Markov steady state at attempt probability p using
// the tabulated integrand. It allocates nothing.
func (e *Eval) Solve(p float64) (Steady, error) {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return Steady{}, ErrBadP
	}
	integral := numeric.ExpSum(e.pref, e.rate, p)
	pws := p * (1 - p) * integral
	if e.diskFactor {
		pws *= math.Exp(-p * e.pr.N)
	}
	pww := (1 - p) * math.Exp(-p*e.pwwRate)
	tfail := e.tfailConst
	if tfail < 0 {
		tfail = numeric.TruncGeomMean(p, e.tfailLo, e.tfailHi)
	}
	pw := 1 / (2 - pww)
	ps := pw * pws
	pf := 1 - pw - ps
	if pf < 0 {
		pf = 0 // guard against round-off at extreme parameters
	}
	return Steady{Pws: pws, Pww: pww, Tfail: tfail, Pw: pw, Ps: ps, Pf: pf}, nil
}

// Throughput returns the normalized saturation throughput at attempt
// probability p, mirroring the package-level Throughput.
func (e *Eval) Throughput(p float64) (float64, error) {
	st, err := e.Solve(p)
	if err != nil {
		return 0, err
	}
	ts := float64(e.pr.Lengths.Succeed())
	denom := st.Pw*1 + st.Ps*ts + st.Pf*st.Tfail
	if denom <= 0 {
		return 0, nil
	}
	return st.Ps * float64(e.pr.Lengths.Data) / denom, nil
}

// MaxThroughput maximizes the throughput over p ∈ (0, pMax] with the
// same hybrid grid + golden-section search as the package-level
// MaxThroughput, but each probe reuses the tabulated integrand.
func (e *Eval) MaxThroughput(pMax float64) (bestP, bestTh float64, err error) {
	if pMax <= 0 || pMax >= 1 {
		pMax = 0.5
	}
	f := func(p float64) float64 {
		th, err := e.Throughput(p)
		if err != nil {
			return math.Inf(-1)
		}
		return th
	}
	const eps = 1e-6
	return numeric.MaximizeHybrid(f, eps, pMax, 64, 1e-9)
}
