package core

// Kai & Liew, "Throughput Computation in CSMA Wireless Networks with
// Collision Effects" (arXiv:1107.1633), compute CSMA network throughput
// by combining the stations' backoff-driven attempt probabilities with
// an airtime decomposition that charges collisions their real channel
// time — the refinement over idealized CSMA models that makes the
// estimate cheap AND ranking-faithful. This file adapts that approach
// to the paper's directional-antenna schemes as a pre-sweep pruning
// predictor: a closed-form throughput estimate per (scheme, N,
// beamwidth) sweep cell, used by the experiment harness to skip cells
// whose predicted throughput is dominated before any simulation runs.
//
// The adaptation is deliberately coarse — it must only preserve the
// RANKING of sweep cells, not their absolute values:
//
//   - Directionality enters as an effective contender count: of the N−1
//     other stations per coverage disk, only those whose transmissions
//     the station actually senses contend with it. An omni RTS is
//     sensed by everyone (factor 1); a directional RTS is sensed when
//     the sender's beam covers the station (factor θ/2π); mutual
//     directional interference additionally requires this station's own
//     beam alignment on the return path (factor (θ/2π)²).
//   - The attempt probability τ and conditional collision probability
//     come from the same backoff fixed point as Bianchi's model
//     (bianchi.go), evaluated at the effective contender count.
//   - Throughput is the Kai–Liew airtime ratio: successful data time
//     over idle + success + collision time per renewal slot.

import (
	"fmt"
	"math"
)

// KaiLiewParams parameterizes the analytic estimate for one sweep cell.
type KaiLiewParams struct {
	// Scheme selects the collision-avoidance variant (sets how the
	// beamwidth discounts the contender count).
	Scheme Scheme
	// N is the average number of nodes per coverage disk.
	N float64
	// Beamwidth θ in radians, in (0, 2π]. Ignored by ORTSOCTS.
	Beamwidth float64
	// Lengths are the packet lengths in slots (collision time is charged
	// as the RTS length plus one turnaround slot; success as the full
	// four-way handshake).
	Lengths Lengths
	// W and M describe the backoff machinery exactly as in BianchiParams
	// (initial window in slots; number of doublings).
	W, M int
}

// DefaultKaiLiewParams maps a sweep cell to the Table 1 backoff
// machinery and the paper's Section 3 packet lengths.
func DefaultKaiLiewParams(s Scheme, n float64, beamwidth float64) KaiLiewParams {
	return KaiLiewParams{
		Scheme: s, N: n, Beamwidth: beamwidth,
		Lengths: PaperLengths(), W: 32, M: 5,
	}
}

// Validate checks the parameter ranges.
func (kp KaiLiewParams) Validate() error {
	if _, ok := schemeNames[kp.Scheme]; !ok {
		return fmt.Errorf("core: unknown scheme %v", kp.Scheme)
	}
	if kp.N < 1 || math.IsNaN(kp.N) || math.IsInf(kp.N, 0) {
		return fmt.Errorf("core: Kai-Liew N must be at least 1, got %v", kp.N)
	}
	if kp.Scheme != ORTSOCTS && (kp.Beamwidth <= 0 || kp.Beamwidth > 2*math.Pi+1e-9) {
		return fmt.Errorf("core: beamwidth must be in (0, 2π], got %v", kp.Beamwidth)
	}
	if kp.W < 2 || kp.M < 0 {
		return fmt.Errorf("core: backoff machinery needs W >= 2 and M >= 0, got %d, %d", kp.W, kp.M)
	}
	return kp.Lengths.Validate()
}

// senseFactor returns the probability that one of the N−1 other
// stations contends with (is sensed by) a given station, per scheme.
func (kp KaiLiewParams) senseFactor() float64 {
	f := kp.Beamwidth / (2 * math.Pi)
	switch kp.Scheme {
	case ORTSOCTS:
		return 1
	case DRTSDCTS:
		// Sender beam must cover the station AND the station's own beam
		// must face back for the interference to register both ways.
		return f * f
	case DRTSOCTS:
		// Directional RTS (factor f) but the omni CTS re-silences the
		// disk, splitting the difference: geometric mean of f and 1.
		return math.Sqrt(f)
	case ORTSDCTS:
		// Omni RTS is sensed by everyone; the directional CTS only
		// shaves the return path.
		return math.Sqrt(f)
	}
	return 1
}

// effectiveContenders returns the Kai–Liew contender count: this
// station plus the sensed fraction of the other N−1.
func (kp KaiLiewParams) effectiveContenders() float64 {
	n := 1 + (kp.N-1)*kp.senseFactor()
	if n < 1.0001 {
		// A station with no sensed peers never collides; keep the fixed
		// point away from its degenerate n=1 corner.
		n = 1.0001
	}
	return n
}

// KaiLiewEstimate solves the backoff fixed point at the effective
// contender count and returns the airtime-ratio throughput estimate
// (normalized channel fraction carrying data), along with the solved
// per-slot attempt probability.
func KaiLiewEstimate(kp KaiLiewParams) (throughput, tau float64, err error) {
	if err := kp.Validate(); err != nil {
		return 0, 0, err
	}
	bp := BianchiParams{W: kp.W, M: kp.M, Contenders: 2}
	n := kp.effectiveContenders()
	// Fixed point τ = τ(pc), pc = 1 − (1−τ)^(n−1), solved by bisection
	// on g(pc) = 1 − (1−τ(pc))^(n−1) − pc exactly as BianchiAttempt,
	// generalized to non-integer effective contender counts.
	g := func(pc float64) float64 {
		return 1 - math.Pow(1-bp.tau(pc), n-1) - pc
	}
	lo, hi := 0.0, 0.999999
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if g(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	pc := (lo + hi) / 2
	tau = bp.tau(pc)

	// Kai–Liew airtime decomposition with collision effects. Per virtual
	// slot: idle with probability (1−τ)^n (cost 1 slot), a successful
	// handshake when exactly one sensed station attempts (cost
	// T_succeed), a collision otherwise (cost l_RTS + 1 — RTS/CTS
	// schemes abort failed handshakes after the unanswered RTS).
	pIdle := math.Pow(1-tau, n)
	pSucc := n * tau * math.Pow(1-tau, n-1)
	pColl := 1 - pIdle - pSucc
	if pColl < 0 {
		pColl = 0
	}
	ts := float64(kp.Lengths.Succeed())
	tc := float64(kp.Lengths.RTS + 1)
	denom := pIdle + pSucc*ts + pColl*tc
	if denom <= 0 {
		return 0, tau, nil
	}
	// Directional schemes win spatial reuse: the disk carries one
	// conversation per sensed-contention domain, so the per-disk data
	// rate scales back up by the inverse sensed fraction (capped by the
	// population actually available to transmit).
	reuse := 1 / kp.senseFactor()
	if reuse > kp.N {
		reuse = kp.N
	}
	if reuse < 1 {
		reuse = 1
	}
	throughput = reuse * pSucc * float64(kp.Lengths.Data) / denom
	return throughput, tau, nil
}
