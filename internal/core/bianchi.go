package core

import (
	"fmt"
	"math"
)

// The paper treats the per-slot attempt probability p as a free
// parameter and notes that real values are set by the workings of
// collision avoidance ("deferring, backing off, etc."), staying below
// ≈0.1. This file closes the remaining gap to the simulator's IEEE
// 802.11 parameters with the classic two-equation fixed point of
// Bianchi's saturation model (the analysis underlying the dynamic-tuning
// work the paper cites): a station's attempt probability τ follows from
// its backoff machinery, whose growth is driven by the conditional
// collision probability, which in turn depends on everyone else's τ.

// BianchiParams describes the backoff machinery: minimum window W =
// CWMin+1 slots, and m doublings before the window pins at CWMax.
type BianchiParams struct {
	// W is the initial backoff window size in slots (CWMin + 1).
	W int
	// M is the number of window doublings (CWMax+1 = 2^M · W).
	M int
	// Contenders is the number of stations competing within carrier-sense
	// range (the model's N).
	Contenders int
}

// DefaultBianchiParams maps the paper's Table 1 contention window
// (31–1023: W = 32, five doublings) to n contenders.
func DefaultBianchiParams(n int) BianchiParams {
	return BianchiParams{W: 32, M: 5, Contenders: n}
}

// Validate checks the parameter ranges.
func (bp BianchiParams) Validate() error {
	if bp.W < 2 {
		return fmt.Errorf("core: Bianchi window must be at least 2, got %d", bp.W)
	}
	if bp.M < 0 {
		return fmt.Errorf("core: Bianchi doublings must be non-negative, got %d", bp.M)
	}
	if bp.Contenders < 2 {
		return fmt.Errorf("core: Bianchi needs at least 2 contenders, got %d", bp.Contenders)
	}
	return nil
}

// tau returns a station's per-slot attempt probability given the
// conditional collision probability pc (Bianchi 2000, eq. 7):
//
//	τ = 2(1−2pc) / ((1−2pc)(W+1) + pc·W·(1−(2pc)^m))
func (bp BianchiParams) tau(pc float64) float64 {
	w := float64(bp.W)
	if pc >= 0.5 {
		// The geometric series degenerates; take the m→ limit form by
		// evaluating slightly inside the domain (continuity).
		pc = 0.499999
	}
	num := 2 * (1 - 2*pc)
	den := (1-2*pc)*(w+1) + pc*w*(1-math.Pow(2*pc, float64(bp.M)))
	return num / den
}

// BianchiAttempt solves the saturation fixed point
//
//	τ = τ(pc),  pc = 1 − (1−τ)^(n−1)
//
// and returns the per-slot attempt probability τ and conditional
// collision probability pc. τ is the natural value to feed the paper's
// model as p when the Table 1 contention window is in force.
func BianchiAttempt(bp BianchiParams) (tau, pc float64, err error) {
	if err := bp.Validate(); err != nil {
		return 0, 0, err
	}
	// g(pc) = 1 − (1−τ(pc))^(n−1) − pc is decreasing in pc from g(0) > 0
	// to g(1) < 0, so bisection converges to the unique fixed point.
	n1 := float64(bp.Contenders - 1)
	g := func(pc float64) float64 {
		return 1 - math.Pow(1-bp.tau(pc), n1) - pc
	}
	lo, hi := 0.0, 0.999999
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if g(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	pc = (lo + hi) / 2
	return bp.tau(pc), pc, nil
}

// ThroughputAt802_11 evaluates the paper's model for the given scheme at
// the attempt probability induced by the IEEE 802.11 backoff machinery
// with pr.N contenders — connecting Table 1's CW range to the Section 2
// analysis with no free parameter.
func ThroughputAt802_11(s Scheme, pr Params) (float64, error) {
	if err := pr.Validate(); err != nil {
		return 0, err
	}
	n := int(math.Round(pr.N))
	if n < 2 {
		n = 2
	}
	tau, _, err := BianchiAttempt(DefaultBianchiParams(n))
	if err != nil {
		return 0, err
	}
	return Throughput(s, tau, pr)
}
