package core

import (
	"math"
	"testing"
)

func TestKaiLiewValidate(t *testing.T) {
	bad := []KaiLiewParams{
		{Scheme: Scheme(99), N: 5, Beamwidth: 1, Lengths: PaperLengths(), W: 32, M: 5},
		{Scheme: DRTSDCTS, N: 0, Beamwidth: 1, Lengths: PaperLengths(), W: 32, M: 5},
		{Scheme: DRTSDCTS, N: 5, Beamwidth: 0, Lengths: PaperLengths(), W: 32, M: 5},
		{Scheme: DRTSDCTS, N: 5, Beamwidth: 7, Lengths: PaperLengths(), W: 32, M: 5},
		{Scheme: DRTSDCTS, N: 5, Beamwidth: 1, Lengths: PaperLengths(), W: 1, M: 5},
		{Scheme: DRTSDCTS, N: 5, Beamwidth: 1, Lengths: Lengths{}, W: 32, M: 5},
	}
	for i, kp := range bad {
		if _, _, err := KaiLiewEstimate(kp); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, kp)
		}
	}
	if err := DefaultKaiLiewParams(ORTSOCTS, 5, 0).Validate(); err != nil {
		t.Errorf("omni scheme must not require a beamwidth: %v", err)
	}
}

// TestKaiLiewRanking pins the qualitative structure the predictor must
// preserve to be a safe pruner: directional RTS/CTS beats the omni
// baseline at narrow beams (the paper's headline result), estimates are
// finite and positive, and narrowing the beam helps DRTS-DCTS.
func TestKaiLiewRanking(t *testing.T) {
	deg := func(d float64) float64 { return d * math.Pi / 180 }
	for _, n := range []float64{3, 5, 8} {
		omni, _, err := KaiLiewEstimate(DefaultKaiLiewParams(ORTSOCTS, n, 2*math.Pi))
		if err != nil {
			t.Fatal(err)
		}
		dir, _, err := KaiLiewEstimate(DefaultKaiLiewParams(DRTSDCTS, n, deg(30)))
		if err != nil {
			t.Fatal(err)
		}
		if !(omni > 0 && dir > 0) || math.IsNaN(omni) || math.IsNaN(dir) {
			t.Fatalf("N=%v: estimates must be positive and finite, got omni=%v dir=%v", n, omni, dir)
		}
		if dir <= omni {
			t.Errorf("N=%v: DRTS-DCTS at 30° (%v) must beat the omni baseline (%v)", n, dir, omni)
		}
	}
	// Beam narrowing pays off where contention is actually binding: at
	// the sweep's high density the narrow beam must rank above the wide
	// one (at low N the reuse cap of one conversation per node saturates
	// both, and the model rightly stops rewarding narrower beams).
	narrow, _, err := KaiLiewEstimate(DefaultKaiLiewParams(DRTSDCTS, 8, deg(30)))
	if err != nil {
		t.Fatal(err)
	}
	wide, _, err := KaiLiewEstimate(DefaultKaiLiewParams(DRTSDCTS, 8, deg(150)))
	if err != nil {
		t.Fatal(err)
	}
	if narrow <= wide {
		t.Errorf("N=8: narrowing the beam must raise the DRTS-DCTS estimate (30°=%v, 150°=%v)", narrow, wide)
	}
	// τ must come from the same machinery as the Bianchi fixed point:
	// at full population (omni, integer contenders) the two agree.
	_, tau, err := KaiLiewEstimate(DefaultKaiLiewParams(ORTSOCTS, 5, 2*math.Pi))
	if err != nil {
		t.Fatal(err)
	}
	bTau, _, err := BianchiAttempt(DefaultBianchiParams(5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tau-bTau) > 1e-9 {
		t.Errorf("omni Kai-Liew τ (%v) diverged from Bianchi τ (%v)", tau, bTau)
	}
}
