package core

import (
	"math"
	"testing"
	"testing/quick"
)

func paperParams(n, theta float64) Params {
	return Params{N: n, Beamwidth: theta, Lengths: PaperLengths()}
}

func TestSchemeString(t *testing.T) {
	tests := []struct {
		s    Scheme
		want string
	}{
		{ORTSOCTS, "ORTS-OCTS"},
		{DRTSDCTS, "DRTS-DCTS"},
		{DRTSOCTS, "DRTS-OCTS"},
		{Scheme(99), "Scheme(99)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

func TestSchemesOrder(t *testing.T) {
	got := Schemes()
	want := []Scheme{ORTSOCTS, DRTSDCTS, DRTSOCTS}
	if len(got) != len(want) {
		t.Fatalf("Schemes() len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Schemes()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLengths(t *testing.T) {
	l := PaperLengths()
	if l.RTS != 5 || l.CTS != 5 || l.Data != 100 || l.ACK != 5 {
		t.Errorf("PaperLengths = %+v, want 5/5/100/5", l)
	}
	if got := l.Succeed(); got != 119 {
		t.Errorf("Succeed = %d, want 119", got)
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate(paper lengths) = %v", err)
	}
	if err := (Lengths{RTS: 0, CTS: 5, Data: 100, ACK: 5}).Validate(); err == nil {
		t.Error("Validate should reject zero RTS length")
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"valid", paperParams(5, math.Pi/2), false},
		{"zero N", paperParams(0, math.Pi/2), true},
		{"negative N", paperParams(-1, math.Pi/2), true},
		{"NaN N", paperParams(math.NaN(), math.Pi/2), true},
		{"zero beamwidth", paperParams(5, 0), true},
		{"too-wide beamwidth", paperParams(5, 2*math.Pi+0.1), true},
		{"full circle ok", paperParams(5, 2*math.Pi), false},
		{"bad lengths", Params{N: 5, Beamwidth: 1, Lengths: Lengths{}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSolveRejectsBadP(t *testing.T) {
	pr := paperParams(5, math.Pi/2)
	for _, p := range []float64{0, -0.1, 1, 1.5, math.NaN()} {
		if _, err := Solve(ORTSOCTS, p, pr); err == nil {
			t.Errorf("Solve(p=%v) should fail", p)
		}
	}
}

func TestSolveRejectsUnknownScheme(t *testing.T) {
	if _, err := Solve(Scheme(0), 0.01, paperParams(5, math.Pi/2)); err == nil {
		t.Error("Solve(unknown scheme) should fail")
	}
}

func TestSteadyStateIsDistribution(t *testing.T) {
	for _, s := range Schemes() {
		for _, p := range []float64{0.001, 0.01, 0.05, 0.2, 0.9} {
			for _, n := range []float64{1, 3, 8, 20} {
				st, err := Solve(s, p, paperParams(n, math.Pi/3))
				if err != nil {
					t.Fatalf("%v p=%v N=%v: %v", s, p, n, err)
				}
				sum := st.Pw + st.Ps + st.Pf
				if math.Abs(sum-1) > 1e-9 {
					t.Errorf("%v p=%v N=%v: π sums to %v", s, p, n, sum)
				}
				for name, v := range map[string]float64{"Pw": st.Pw, "Ps": st.Ps, "Pf": st.Pf} {
					if v < 0 || v > 1 || math.IsNaN(v) {
						t.Errorf("%v p=%v N=%v: %s = %v out of [0,1]", s, p, n, name, v)
					}
				}
				if st.Pws < 0 || st.Pws > 1 {
					t.Errorf("%v: Pws = %v out of [0,1]", s, st.Pws)
				}
				if st.Pww < 0 || st.Pww > 1 {
					t.Errorf("%v: Pww = %v out of [0,1]", s, st.Pww)
				}
			}
		}
	}
}

func TestTfailBounds(t *testing.T) {
	l := PaperLengths()
	pr := paperParams(5, math.Pi/4)
	// ORTS-OCTS: fixed failed period.
	st, err := Solve(ORTSOCTS, 0.05, pr)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(l.RTS + l.CTS + 2); st.Tfail != want {
		t.Errorf("ORTS-OCTS Tfail = %v, want %v", st.Tfail, want)
	}
	// DRTS-DCTS: truncated geometric on [l_rts+1, T_succeed].
	st, err = Solve(DRTSDCTS, 0.05, pr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tfail < float64(l.RTS+1) || st.Tfail > float64(l.Succeed()) {
		t.Errorf("DRTS-DCTS Tfail = %v outside [%d, %d]", st.Tfail, l.RTS+1, l.Succeed())
	}
	// With small p the mean hugs the lower bound.
	if st.Tfail > float64(l.RTS+1)+1 {
		t.Errorf("DRTS-DCTS Tfail = %v, want close to %d at small p", st.Tfail, l.RTS+1)
	}
	// DRTS-OCTS: lower bound includes the CTS exchange.
	st, err = Solve(DRTSOCTS, 0.05, pr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tfail < float64(l.RTS+l.CTS+2) || st.Tfail > float64(l.Succeed()) {
		t.Errorf("DRTS-OCTS Tfail = %v outside [%d, %d]", st.Tfail, l.RTS+l.CTS+2, l.Succeed())
	}
}

func TestThroughputPositiveAndBounded(t *testing.T) {
	for _, s := range Schemes() {
		for _, p := range []float64{0.005, 0.02, 0.1} {
			th, err := Throughput(s, p, paperParams(5, math.Pi/6))
			if err != nil {
				t.Fatal(err)
			}
			if th <= 0 || th >= 1 {
				t.Errorf("%v p=%v: throughput %v outside (0,1)", s, p, th)
			}
		}
	}
}

// TestThroughputVanishesAtExtremes: as p→0 nobody transmits; as p→1
// everything collides. Throughput must collapse at both ends.
func TestThroughputVanishesAtExtremes(t *testing.T) {
	pr := paperParams(5, math.Pi/6)
	for _, s := range Schemes() {
		_, peak, err := MaxThroughput(s, pr, 0)
		if err != nil {
			t.Fatal(err)
		}
		lo, err := Throughput(s, 1e-6, pr)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := Throughput(s, 0.999, pr)
		if err != nil {
			t.Fatal(err)
		}
		if lo > peak/100 {
			t.Errorf("%v: Th(p→0) = %v, want ≪ peak %v", s, lo, peak)
		}
		if hi > peak/10 {
			t.Errorf("%v: Th(p→1) = %v, want ≪ peak %v", s, hi, peak)
		}
	}
}

// TestORTSOCTSIndependentOfBeamwidth: the omni scheme must ignore θ.
func TestORTSOCTSIndependentOfBeamwidth(t *testing.T) {
	a, err := Throughput(ORTSOCTS, 0.02, paperParams(5, math.Pi/12))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Throughput(ORTSOCTS, 0.02, paperParams(5, 2*math.Pi))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("ORTS-OCTS throughput depends on beamwidth: %v vs %v", a, b)
	}
}

// TestPaperFig5Shape asserts the published qualitative result: with the
// Section 3 configuration, DRTS-DCTS achieves the highest maximum
// throughput of the three schemes at narrow beamwidths and degrades
// significantly as the beamwidth grows, while DRTS-OCTS outperforms
// ORTS-OCTS at narrow beamwidths.
func TestPaperFig5Shape(t *testing.T) {
	for _, n := range []float64{3, 5, 8} {
		narrow := paperParams(n, 15*math.Pi/180)
		wide := paperParams(n, math.Pi)
		maxTh := func(s Scheme, pr Params) float64 {
			_, v, err := MaxThroughput(s, pr, 0)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		var (
			ortsNarrow = maxTh(ORTSOCTS, narrow)
			ddNarrow   = maxTh(DRTSDCTS, narrow)
			doNarrow   = maxTh(DRTSOCTS, narrow)
			ddWide     = maxTh(DRTSDCTS, wide)
		)
		if !(ddNarrow > doNarrow && doNarrow > ortsNarrow) {
			t.Errorf("N=%v narrow beam ordering: DD=%v DO=%v ORTS=%v, want DD > DO > ORTS",
				n, ddNarrow, doNarrow, ortsNarrow)
		}
		if ddWide >= ddNarrow/1.5 {
			t.Errorf("N=%v: DRTS-DCTS should degrade significantly with beamwidth: narrow=%v wide=%v",
				n, ddNarrow, ddWide)
		}
		if ddWide >= ortsNarrow {
			t.Errorf("N=%v: wide-beam DRTS-DCTS (%v) should fall below ORTS-OCTS (%v)",
				n, ddWide, ortsNarrow)
		}
	}
}

// TestDRTSDCTSMonotoneInBeamwidth: maximum throughput of the
// all-directional scheme decreases as the beam widens.
func TestDRTSDCTSMonotoneInBeamwidth(t *testing.T) {
	prev := math.Inf(1)
	for _, th := range PaperBeamwidths() {
		_, v, err := MaxThroughput(DRTSDCTS, paperParams(5, th), 0)
		if err != nil {
			t.Fatal(err)
		}
		if v > prev+1e-9 {
			t.Fatalf("DRTS-DCTS max throughput not decreasing at θ=%v: %v > %v", th, v, prev)
		}
		prev = v
	}
}

// TestThroughputDecreasesWithDensity: more contenders per disk lowers
// per-node saturation throughput for every scheme.
func TestThroughputDecreasesWithDensity(t *testing.T) {
	for _, s := range Schemes() {
		prev := math.Inf(1)
		for _, n := range []float64{2, 3, 5, 8, 12} {
			_, v, err := MaxThroughput(s, paperParams(n, math.Pi/6), 0)
			if err != nil {
				t.Fatal(err)
			}
			if v > prev+1e-9 {
				t.Fatalf("%v: max throughput not decreasing at N=%v", s, n)
			}
			prev = v
		}
	}
}

func TestMaxThroughputRejectsBadParams(t *testing.T) {
	if _, _, err := MaxThroughput(ORTSOCTS, paperParams(-1, 1), 0); err == nil {
		t.Error("want error for bad params")
	}
}

func TestMaxThroughputDefaultBound(t *testing.T) {
	pr := paperParams(5, math.Pi/6)
	p1, th1, err := MaxThroughput(DRTSDCTS, pr, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, th2, err := MaxThroughput(DRTSDCTS, pr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-p2) > 1e-6 || math.Abs(th1-th2) > 1e-9 {
		t.Errorf("default bound mismatch: (%v,%v) vs (%v,%v)", p1, th1, p2, th2)
	}
}

func TestCurve(t *testing.T) {
	thetas := PaperBeamwidths()
	if len(thetas) != 12 {
		t.Fatalf("PaperBeamwidths len = %d, want 12", len(thetas))
	}
	if math.Abs(thetas[0]-15*math.Pi/180) > 1e-12 || math.Abs(thetas[11]-math.Pi) > 1e-12 {
		t.Fatalf("PaperBeamwidths endpoints = %v, %v", thetas[0], thetas[11])
	}
	curve, err := Curve(DRTSDCTS, 5, PaperLengths(), thetas)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(thetas) {
		t.Fatalf("curve len = %d, want %d", len(curve), len(thetas))
	}
	for i, v := range curve {
		if v <= 0 || v >= 1 {
			t.Errorf("curve[%d] = %v outside (0,1)", i, v)
		}
	}
	if _, err := Curve(DRTSDCTS, -1, PaperLengths(), thetas); err == nil {
		t.Error("Curve should propagate parameter errors")
	}
}

// TestSolveThroughputConsistency: Throughput must equal the value
// recomputed from the Steady it is based on.
func TestSolveThroughputConsistency(t *testing.T) {
	f := func(pRaw, nRaw, thRaw uint16) bool {
		p := 0.001 + float64(pRaw%500)/1000.0 // (0.001, 0.5)
		n := 1 + float64(nRaw%15)             // [1, 15]
		theta := 0.1 + float64(thRaw%62)/10   // (0.1, 6.3)
		if theta > 2*math.Pi {
			theta = 2 * math.Pi
		}
		pr := paperParams(n, theta)
		for _, s := range Schemes() {
			st, err := Solve(s, p, pr)
			if err != nil {
				return false
			}
			th, err := Throughput(s, p, pr)
			if err != nil {
				return false
			}
			ts := float64(pr.Lengths.Succeed())
			want := st.Ps * float64(pr.Lengths.Data) / (st.Pw + st.Ps*ts + st.Pf*st.Tfail)
			if math.Abs(th-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestNarrowBeamApproachesInterferenceFree: as θ→0 with fixed N, the
// directional scheme's success probability approaches the
// interference-free product p(1−p) (only the receiver's own behaviour
// matters), so its optimal throughput approaches the contention-free
// schedule efficiency.
func TestNarrowBeamApproachesInterferenceFree(t *testing.T) {
	pr := paperParams(8, 0.001)
	p := 0.05
	st, err := Solve(DRTSDCTS, p, pr)
	if err != nil {
		t.Fatal(err)
	}
	want := p * (1 - p) * math.Exp(-p*pr.N*0.001/(2*math.Pi)) // only S_I survives
	if math.Abs(st.Pws-want)/want > 0.02 {
		t.Errorf("θ→0: Pws = %v, want ≈ %v", st.Pws, want)
	}
}

func TestParseScheme(t *testing.T) {
	tests := []struct {
		in      string
		want    Scheme
		wantErr bool
	}{
		{"ORTS-OCTS", ORTSOCTS, false},
		{"orts-octs", ORTSOCTS, false},
		{"DRTSDCTS", DRTSDCTS, false},
		{"drts_octs", DRTSOCTS, false},
		{"DRTS-DCTS", DRTSDCTS, false},
		// Mixed case, mixed separators, surrounding whitespace: the
		// spellings the docs and CLI flags actually use.
		{"Orts-Octs", ORTSOCTS, false},
		{"drtsdcts", DRTSDCTS, false},
		{"DRTS_DCTS", DRTSDCTS, false},
		{"drts/octs", DRTSOCTS, false},
		{"DRTS OCTS", DRTSOCTS, false},
		{" orts-dcts ", ORTSDCTS, false},
		{"\tORTS_OCTS\n", ORTSOCTS, false},
		{"orts_dcts", ORTSDCTS, false},
		{"o-r-t-s_o_c_t_s", ORTSOCTS, false},
		{"bogus", 0, true},
		{"", 0, true},
		{"   ", 0, true},
		{"ORTS", 0, true},
		{"ORTS-OCTS-EXTRA", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseScheme(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseScheme(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParseScheme(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAllSchemes(t *testing.T) {
	all := AllSchemes()
	if len(all) != 4 || all[3] != ORTSDCTS {
		t.Errorf("AllSchemes = %v", all)
	}
	if ORTSDCTS.String() != "ORTS-DCTS" {
		t.Errorf("name = %q", ORTSDCTS.String())
	}
	if s, err := ParseScheme("orts-dcts"); err != nil || s != ORTSDCTS {
		t.Errorf("ParseScheme(orts-dcts) = %v, %v", s, err)
	}
}

// TestORTSDCTSIsWorst: the extension analysis predicts the fourth
// combination is dominated by ORTS-OCTS — it pays the omni-RTS silencing
// cost but exposes the whole data frame to hidden terminals.
func TestORTSDCTSIsWorst(t *testing.T) {
	for _, n := range []float64{3, 5, 8} {
		for _, theta := range []float64{math.Pi / 12, math.Pi / 2, math.Pi} {
			pr := paperParams(n, theta)
			_, worst, err := MaxThroughput(ORTSDCTS, pr, 0)
			if err != nil {
				t.Fatal(err)
			}
			_, omni, err := MaxThroughput(ORTSOCTS, pr, 0)
			if err != nil {
				t.Fatal(err)
			}
			if worst >= omni {
				t.Errorf("N=%v θ=%v: ORTS-DCTS %v should be below ORTS-OCTS %v", n, theta, worst, omni)
			}
			// Still a working scheme: positive throughput.
			if worst <= 0 {
				t.Errorf("N=%v θ=%v: ORTS-DCTS throughput %v", n, theta, worst)
			}
		}
	}
}

func TestAttemptProbability(t *testing.T) {
	// The fixed point must satisfy p = p0·(1−p)·e^{−pN}.
	for _, p0 := range []float64{0.01, 0.1, 0.5, 0.9} {
		for _, n := range []float64{1, 5, 20} {
			p, err := AttemptProbability(p0, n)
			if err != nil {
				t.Fatal(err)
			}
			rhs := p0 * (1 - p) * math.Exp(-p*n)
			if math.Abs(p-rhs) > 1e-9 {
				t.Errorf("p0=%v N=%v: fixed point violated: p=%v rhs=%v", p0, n, p, rhs)
			}
			if p <= 0 || p >= p0 {
				t.Errorf("p0=%v N=%v: p=%v outside (0, p0)", p0, n, p)
			}
		}
	}
}

func TestAttemptProbabilityMonotone(t *testing.T) {
	// p increases with p0 and decreases with N.
	prev := 0.0
	for _, p0 := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
		p, err := AttemptProbability(p0, 5)
		if err != nil {
			t.Fatal(err)
		}
		if p <= prev {
			t.Errorf("p not increasing in p0 at %v", p0)
		}
		prev = p
	}
	prev = 1.0
	for _, n := range []float64{1, 3, 8, 20, 50} {
		p, err := AttemptProbability(0.2, n)
		if err != nil {
			t.Fatal(err)
		}
		if p >= prev {
			t.Errorf("p not decreasing in N at %v", n)
		}
		prev = p
	}
}

func TestAttemptProbabilityValidation(t *testing.T) {
	for _, bad := range [][2]float64{{0, 5}, {1, 5}, {-0.1, 5}, {0.5, 0}, {0.5, -3}, {math.NaN(), 5}} {
		if _, err := AttemptProbability(bad[0], bad[1]); err == nil {
			t.Errorf("AttemptProbability(%v, %v) should fail", bad[0], bad[1])
		}
	}
}

func TestThroughputFromReadiness(t *testing.T) {
	pr := paperParams(5, math.Pi/6)
	th, err := ThroughputFromReadiness(DRTSDCTS, 0.05, pr)
	if err != nil {
		t.Fatal(err)
	}
	if th <= 0 || th >= 1 {
		t.Errorf("throughput = %v", th)
	}
	// It must equal evaluating Throughput at the solved p.
	p, err := AttemptProbability(0.05, pr.N)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Throughput(DRTSDCTS, p, pr)
	if err != nil {
		t.Fatal(err)
	}
	if th != want {
		t.Errorf("ThroughputFromReadiness = %v, want %v", th, want)
	}
	if _, err := ThroughputFromReadiness(DRTSDCTS, 2, pr); err == nil {
		t.Error("bad p0 should fail")
	}
}

func TestBianchiAttempt(t *testing.T) {
	// Known structure: with W=32, m=5, the attempt probability is a few
	// percent and decreases with the number of contenders.
	prev := 1.0
	for _, n := range []int{2, 3, 5, 8, 20, 50} {
		tau, pc, err := BianchiAttempt(DefaultBianchiParams(n))
		if err != nil {
			t.Fatal(err)
		}
		if tau <= 0 || tau >= 0.1 {
			t.Errorf("n=%d: tau = %v outside the paper's expected (0, 0.1) band", n, tau)
		}
		if pc <= 0 || pc >= 1 {
			t.Errorf("n=%d: pc = %v", n, pc)
		}
		if tau >= prev {
			t.Errorf("tau not decreasing with contenders at n=%d", n)
		}
		prev = tau
		// Fixed-point consistency.
		if got := 1 - math.Pow(1-tau, float64(n-1)); math.Abs(got-pc) > 1e-6 {
			t.Errorf("n=%d: fixed point violated: pc=%v vs %v", n, pc, got)
		}
	}
}

func TestBianchiTwoStations(t *testing.T) {
	// Sanity anchor: for n=2, W=32, m=5, Bianchi's model gives τ ≈ 0.06,
	// pc ≈ 0.06 (collision only when both pick the same slot).
	tau, pc, err := BianchiAttempt(BianchiParams{W: 32, M: 5, Contenders: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.04 || tau > 0.08 {
		t.Errorf("tau = %v, want ≈ 0.06", tau)
	}
	if math.Abs(pc-tau) > 1e-6 {
		t.Errorf("for n=2, pc must equal the peer's tau: %v vs %v", pc, tau)
	}
}

func TestBianchiValidation(t *testing.T) {
	bad := []BianchiParams{
		{W: 1, M: 5, Contenders: 5},
		{W: 32, M: -1, Contenders: 5},
		{W: 32, M: 5, Contenders: 1},
	}
	for i, bp := range bad {
		if _, _, err := BianchiAttempt(bp); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

// TestThroughputAt802_11 evaluates the model at the attempt probability
// the Table 1 contention window induces. Two findings worth pinning:
// the Bianchi τ lands inside the paper's "p below ≈0.1" band, and at
// N=8 it exceeds the attempt probability that maximizes DRTS-DCTS — the
// fixed-base-window view of standard 802.11 is too aggressive for the
// all-directional scheme, which explains why the simulator (whose BEB
// adaptively grows the window under DD's higher collision rate) still
// realizes DD's advantage while a fixed common p would not.
func TestThroughputAt802_11(t *testing.T) {
	pr := paperParams(8, 30*math.Pi/180)
	for _, s := range Schemes() {
		th, err := ThroughputAt802_11(s, pr)
		if err != nil {
			t.Fatal(err)
		}
		if th <= 0 || th >= 1 {
			t.Errorf("%v: throughput %v outside (0,1)", s, th)
		}
	}
	tau, _, err := BianchiAttempt(DefaultBianchiParams(8))
	if err != nil {
		t.Fatal(err)
	}
	pOpt, _, err := MaxThroughput(DRTSDCTS, pr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= pOpt {
		t.Errorf("Bianchi τ (%v) should exceed DRTS-DCTS's optimal p (%v) at N=8: standard 802.11 is too aggressive for the all-directional scheme", tau, pOpt)
	}
	if _, err := ThroughputAt802_11(DRTSDCTS, paperParams(-1, 1)); err == nil {
		t.Error("bad params should fail")
	}
}

// TestFig5GoldenValues pins the analytical results to the values this
// reproduction first produced (recorded in EXPERIMENTS.md), protecting
// the model's algebra against accidental changes. Tolerances are loose
// enough to allow quadrature/optimizer tweaks but tight enough to catch
// formula regressions.
func TestFig5GoldenValues(t *testing.T) {
	tests := []struct {
		n, thetaDeg float64
		scheme      Scheme
		want        float64
	}{
		{3, 15, ORTSOCTS, 0.4183},
		{3, 15, DRTSDCTS, 0.5759},
		{3, 15, DRTSOCTS, 0.5140},
		{5, 30, ORTSOCTS, 0.3198},
		{5, 30, DRTSDCTS, 0.3747},
		{5, 30, DRTSOCTS, 0.3897},
		{8, 90, DRTSDCTS, 0.1657},
		{8, 180, ORTSOCTS, 0.2363},
		{8, 180, DRTSDCTS, 0.1031},
		{8, 180, DRTSOCTS, 0.2035},
	}
	for _, tt := range tests {
		pr := paperParams(tt.n, tt.thetaDeg*math.Pi/180)
		_, got, err := MaxThroughput(tt.scheme, pr, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 5e-4 {
			t.Errorf("%v N=%g θ=%g°: max throughput %.4f, golden %.4f",
				tt.scheme, tt.n, tt.thetaDeg, got, tt.want)
		}
	}
}

// TestOptimalPGolden pins the optimizing attempt probabilities.
func TestOptimalPGolden(t *testing.T) {
	tests := []struct {
		n, thetaDeg float64
		scheme      Scheme
		wantP       float64
	}{
		{3, 15, DRTSDCTS, 0.0463},
		{5, 30, DRTSOCTS, 0.0290},
		{8, 30, ORTSOCTS, 0.0113},
	}
	for _, tt := range tests {
		pr := paperParams(tt.n, tt.thetaDeg*math.Pi/180)
		p, _, err := MaxThroughput(tt.scheme, pr, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-tt.wantP) > 2e-3 {
			t.Errorf("%v N=%g θ=%g°: optimal p %.4f, golden %.4f",
				tt.scheme, tt.n, tt.thetaDeg, p, tt.wantP)
		}
	}
}
