package core

import (
	"fmt"
	"math"
)

// The paper takes the per-slot attempt probability p as the free
// parameter and notes that p = p₀ · Prob{channel is sensed idle in a
// slot}, where p₀ is the probability a backlogged node becomes ready in a
// slot (the relationship is analyzed in the authors' earlier ICNP'02 and
// Wu–Varshney channel models, which the paper cites and then sidesteps).
// AttemptProbability closes that loop with the natural approximation for
// the idle probability around a node, Prob{idle} ≈ (1−p)·e^{−pN} (the
// node model's P_ww): neither the node itself nor any of its on-average N
// neighbors starts transmitting.

// AttemptProbability solves the fixed point
//
//	p = p₀ · (1−p) · e^{−pN}
//
// for p ∈ (0, p₀], given the readiness probability p₀ ∈ (0, 1) and the
// density N. The right-hand side is strictly decreasing in p, so the
// fixed point is unique; it is found by bisection to within 1e-12.
func AttemptProbability(p0, n float64) (float64, error) {
	if p0 <= 0 || p0 >= 1 || math.IsNaN(p0) {
		return 0, fmt.Errorf("core: readiness probability must be in (0, 1), got %v", p0)
	}
	if n <= 0 || math.IsNaN(n) || math.IsInf(n, 0) {
		return 0, fmt.Errorf("core: N must be positive and finite, got %v", n)
	}
	f := func(p float64) float64 {
		return p0*(1-p)*math.Exp(-p*n) - p
	}
	// f(0) = p0 > 0 and f(p0) ≤ 0, so the root is bracketed by [0, p0].
	lo, hi := 0.0, p0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12 {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// ThroughputFromReadiness evaluates the scheme throughput at the attempt
// probability induced by readiness p₀ — the user-facing knob a protocol
// implementation actually controls (via its contention window).
func ThroughputFromReadiness(s Scheme, p0 float64, pr Params) (float64, error) {
	p, err := AttemptProbability(p0, pr.N)
	if err != nil {
		return 0, err
	}
	return Throughput(s, p, pr)
}
