package experiments

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/des"
)

// TestPruneGridDomination pins the margin semantics: within each
// density the predicted-best cell always survives, a margin of 1 keeps
// only the best cell(s), and a loose margin keeps everything.
func TestPruneGridDomination(t *testing.T) {
	schemes := []core.Scheme{core.DRTSDCTS, core.ORTSOCTS}
	ns := []int{3, 8}
	beams := []float64{30, 150}

	verdicts, err := PruneGrid(schemes, ns, beams, 0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != len(schemes)*len(ns)*len(beams) {
		t.Fatalf("verdict count %d, want %d", len(verdicts), len(schemes)*len(ns)*len(beams))
	}
	for _, n := range ns {
		best, kept := 0.0, 0
		for _, v := range verdicts {
			if v.N != n {
				continue
			}
			if v.Estimate > best {
				best = v.Estimate
			}
			if !v.Skip {
				kept++
			}
		}
		if kept == 0 {
			t.Fatalf("N=%d: pruning must keep at least the best cell", n)
		}
		for _, v := range verdicts {
			if v.N == n && v.Estimate == best && v.Skip {
				t.Errorf("N=%d: best cell %+v was pruned", n, v)
			}
			if v.N == n && v.Skip && v.Estimate >= 0.9*best {
				t.Errorf("N=%d: cell %+v within margin was pruned", n, v)
			}
		}
	}

	// A near-zero margin keeps every cell.
	loose, err := PruneGrid(schemes, ns, beams, 0.0001, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range loose {
		if v.Skip {
			t.Errorf("near-zero margin pruned %+v", v)
		}
	}
	if _, err := PruneGrid(schemes, ns, beams, 0, nil); err == nil {
		t.Error("margin 0 must be rejected")
	}
	if _, err := PruneGrid(schemes, ns, beams, 1.5, nil); err == nil {
		t.Error("margin > 1 must be rejected")
	}
}

// TestPruneGridCache verifies verdicts are memoized through the store
// and that a warm call reproduces the cold one exactly.
func TestPruneGridCache(t *testing.T) {
	store, err := cache.NewStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	schemes := []core.Scheme{core.DRTSDCTS, core.DRTSOCTS, core.ORTSOCTS, core.ORTSDCTS}
	ns := []int{3, 5, 8}
	beams := []float64{30, 90, 150}
	cold, err := PruneGrid(schemes, ns, beams, 0.8, store)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := PruneGrid(schemes, ns, beams, 0.8, store)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("verdict %d changed between cold and warm runs: %+v vs %+v", i, cold[i], warm[i])
		}
	}
	// The omni scheme's verdict must not depend on the beamwidth column
	// it was computed under (the key canonicalizes beamwidth to zero).
	var omni []PruneVerdict
	for _, v := range warm {
		if v.Scheme == core.ORTSOCTS && v.N == 5 {
			omni = append(omni, v)
		}
	}
	for _, v := range omni[1:] {
		if v.Estimate != omni[0].Estimate {
			t.Errorf("omni estimate varies with beamwidth: %+v vs %+v", omni[0], v)
		}
	}
}

// TestRunGridPruned runs a tiny real sweep with pruning and checks the
// surviving cells match the verdicts, every kept cell simulated, every
// skipped cell absent.
func TestRunGridPruned(t *testing.T) {
	base := SimConfig{Seed: 7, Duration: 20 * des.Millisecond}
	schemes := []core.Scheme{core.DRTSDCTS, core.ORTSOCTS}
	ns := []int{3}
	beams := []float64{30, 150}
	cells, verdicts, err := RunGridPruned(base, schemes, ns, beams, 1, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, v := range verdicts {
		if !v.Skip {
			kept++
		}
	}
	if len(cells) != kept {
		t.Fatalf("simulated %d cells, verdicts kept %d", len(cells), kept)
	}
	if kept == len(verdicts) {
		t.Fatalf("margin 0.95 over %d cells pruned nothing; predictor is not discriminating", len(verdicts))
	}
	have := make(map[gridKey]bool)
	for _, c := range cells {
		if c.Batch.ThroughputBps.Mean < 0 {
			t.Fatalf("cell %+v: nonsense throughput", c)
		}
		have[gridKey{c.Scheme, c.N, c.BeamwidthDeg}] = true
	}
	for _, v := range verdicts {
		if v.Skip == have[gridKey{v.Scheme, v.N, v.BeamwidthDeg}] {
			t.Errorf("verdict %+v inconsistent with simulated set", v)
		}
	}
}
