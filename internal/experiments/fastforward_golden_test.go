package experiments

// Fast-forward equivalence tests. The analytic idle-time skip
// (mac.Config.FastForward, DESIGN.md §12) is a pure performance switch:
// bulk backoff countdowns plus residual settlement must reproduce the
// slot-by-slot kernel bit for bit. Two layers of enforcement:
//
//  1. The kernel-determinism goldens re-run with fast-forward enabled
//     against the SAME golden files — no separate fast-forward goldens
//     exist, because the results are not allowed to differ.
//  2. A differential property sweep runs randomized small scenarios
//     with the switch on and off and compares canonical Result JSON.
//
// Both repeat with 10 ms telemetry sampling: telemetry ticks are ACTIVE
// kernel events, so sampling instants (and what the probes observe at
// them) are pinned regardless of how the clock advanced between ticks.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func TestKernelDeterminismGoldenFastForward(t *testing.T) {
	for name, cfg := range goldenCases() {
		if cfg.NAVOracle {
			// sim.Validate rejects fastforward+navOracle up front (the
			// oracle interrupts countdowns mid-slot, so mac.New would
			// silently fall back to slot-by-slot operation anyway); the
			// plain golden run still covers the oracle configuration.
			continue
		}
		for _, tel := range []bool{false, true} {
			cfg := cfg
			cfg.FastForward = true
			sub := name
			if tel {
				cfg.TelemetryInterval = 10 * des.Millisecond
				cfg.Telemetry = telemetry.Discard{}
				sub += "_telemetry"
			}
			t.Run(sub, func(t *testing.T) {
				t.Parallel()
				res, err := RunSim(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got := canonicalJSON(t, res)
				path := filepath.Join("testdata", fmt.Sprintf("golden_%s.json", name))
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (generate via TestKernelDeterminismGolden with UPDATE_GOLDEN=1): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("fast-forward diverged from golden %s\n"+
						"the analytic jump must be bit-identical to slot-by-slot operation", path)
				}
			})
		}
	}
}

// TestFastForwardDifferential cross-checks fast-forward on/off over a
// randomized family of small scenarios: every scheme, sparse CBR and
// saturated traffic, mobility, SINR, basic access, EIFS off — seeds and
// knobs varied deterministically so failures reproduce.
func TestFastForwardDifferential(t *testing.T) {
	schemes := []core.Scheme{core.DRTSDCTS, core.DRTSOCTS, core.ORTSOCTS, core.ORTSDCTS}
	for i := 0; i < 12; i++ {
		i := i
		t.Run(fmt.Sprintf("case%02d", i), func(t *testing.T) {
			t.Parallel()
			cfg := SimConfig{
				Scheme:       schemes[i%len(schemes)],
				BeamwidthDeg: []float64{30, 90, 150}[i%3],
				N:            2 + i%4,
				Seed:         int64(100 + 13*i),
				Duration:     60 * des.Millisecond,
			}
			switch i % 4 {
			case 1:
				cfg.OfferedLoadBps = 50_000 // sparse: long dead-air stretches
			case 2:
				cfg.MaxSpeed = 0.5
				cfg.RefreshInterval = 20 * des.Millisecond
				cfg.OfferedLoadBps = 200_000
			case 3:
				cfg.SINR = true
				cfg.BasicAccess = i%2 == 1
			}
			if i%5 == 0 {
				cfg.DisableEIFS = true
			}
			if i%6 == 3 {
				cfg.TelemetryInterval = 5 * des.Millisecond
				cfg.Telemetry = telemetry.Discard{}
			}
			off, err := RunSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.FastForward = true
			on, err := RunSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if gotOn, gotOff := canonicalJSON(t, on), canonicalJSON(t, off); !bytes.Equal(gotOn, gotOff) {
				t.Errorf("fast-forward on/off diverged for %+v", cfg)
			}
		})
	}
}

// TestFastForwardDifferentialSparsePair stresses the jump machinery
// where it engages hardest: a two-node explicit topology under waypoint
// mobility with a 1 s refresh interval, so stale bearings drive CTS
// timeouts, the contention window ratchets to CWMax, and nearly every
// countdown runs as a bulk jump over dead air (the fast-forward path
// skips >90% of kernel events here — see BenchmarkSimulationSecondSparse).
func TestFastForwardDifferentialSparsePair(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 41} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := sim.Scenario{
				Scheme: "DRTS-DCTS", BeamwidthDeg: 30, Seed: seed,
				Duration: sim.Duration(300 * des.Millisecond),
				Topology: sim.TopologySpec{Kind: "explicit", N: 2,
					Positions: []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}}},
				Traffic:  sim.TrafficSpec{Kind: "cbr", OfferedLoadBps: 500_000},
				Mobility: sim.MobilitySpec{Kind: "waypoint", MaxSpeed: 2, RefreshInterval: sim.Duration(des.Second)},
			}
			var out [2][]byte
			for i, ff := range []bool{false, true} {
				sc.FastForward = ff
				res, err := sim.RunScenario(sc, sim.Options{})
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				out[i] = b
			}
			if !bytes.Equal(out[0], out[1]) {
				t.Errorf("fast-forward on/off diverged for sparse pair seed %d", seed)
			}
		})
	}
}
