package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/mac"
	"repro/internal/phy"
)

// ModelVsSimRow compares the analytical model against the simulator at
// one (scheme, N, beamwidth) point, both expressed as normalized
// saturation throughput: the fraction of time a node spends successfully
// delivering data payload.
type ModelVsSimRow struct {
	Scheme       core.Scheme
	N            int
	BeamwidthDeg float64
	// Analytical is the model's maximum achievable throughput (over p).
	Analytical float64
	// Simulated is the measured per-inner-node successful data airtime
	// fraction, averaged over topologies.
	Simulated float64
}

// SimLengths converts the simulator's Table 1 frame timings into the
// analytical model's slot units (airtime / slot time, rounded):
// l_rts = 272 µs/20 µs ≈ 14, l_cts = l_ack = 248 µs/20 µs ≈ 12,
// l_data = 6032 µs/20 µs ≈ 302.
func SimLengths() core.Lengths {
	var (
		p    = phy.DefaultParams()
		m    = mac.DefaultConfig(core.ORTSOCTS, 0)
		slot = float64(m.Slot)
	)
	round := func(t des.Time) int {
		v := int(math.Round(float64(t) / slot))
		if v < 1 {
			v = 1
		}
		return v
	}
	return core.Lengths{
		RTS:  round(p.Airtime(m.RTSBytes)),
		CTS:  round(p.Airtime(m.CTSBytes)),
		Data: round(p.Airtime(1460)),
		ACK:  round(p.Airtime(m.ACKBytes)),
	}
}

// ModelVsSim evaluates analytical and simulated normalized throughput on
// the same parameter grid, using the simulator's real frame timings for
// the model's packet lengths. This is the paper's Section 4 argument —
// "simulation results largely agree with what is predicted in the
// analytical model" — made quantitative.
func ModelVsSim(base SimConfig, ns []int, beamsDeg []float64, topologies int) ([]ModelVsSimRow, error) {
	lengths := SimLengths()
	dataAir := phy.DefaultParams().Airtime(1460)
	var rows []ModelVsSimRow
	for _, n := range ns {
		for _, beam := range beamsDeg {
			for _, s := range core.Schemes() {
				pr := core.Params{N: float64(n), Beamwidth: beam * math.Pi / 180, Lengths: lengths}
				_, ana, err := core.MaxThroughput(s, pr, 0)
				if err != nil {
					return nil, fmt.Errorf("model point %v N=%d θ=%v: %w", s, n, beam, err)
				}
				cfg := base
				cfg.Scheme = s
				cfg.N = n
				cfg.BeamwidthDeg = beam
				batch, err := RunBatch(cfg, topologies)
				if err != nil {
					return nil, fmt.Errorf("sim point %v N=%d θ=%v: %w", s, n, beam, err)
				}
				// Mean inner-node goodput (b/s) → packets/s → airtime fraction.
				pktPerSec := batch.ThroughputBps.Mean / (1460 * 8)
				sim := pktPerSec * dataAir.Seconds()
				rows = append(rows, ModelVsSimRow{
					Scheme: s, N: n, BeamwidthDeg: beam,
					Analytical: ana, Simulated: sim,
				})
			}
		}
	}
	return rows, nil
}

// SpearmanRank returns the Spearman rank correlation between the
// analytical and simulated columns — how well the model predicts the
// simulator's *ordering* of configurations, which is what the paper's
// comparison rests on.
func SpearmanRank(rows []ModelVsSimRow) float64 {
	n := len(rows)
	if n < 2 {
		return 1
	}
	rank := func(key func(r ModelVsSimRow) float64) []float64 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return key(rows[idx[a]]) < key(rows[idx[b]]) })
		ranks := make([]float64, n)
		for pos, i := range idx {
			ranks[i] = float64(pos)
		}
		return ranks
	}
	ra := rank(func(r ModelVsSimRow) float64 { return r.Analytical })
	rs := rank(func(r ModelVsSimRow) float64 { return r.Simulated })
	var d2 float64
	for i := range ra {
		d := ra[i] - rs[i]
		d2 += d * d
	}
	nf := float64(n)
	return 1 - 6*d2/(nf*(nf*nf-1))
}

// WriteModelVsSim renders the comparison table and the rank correlation.
func WriteModelVsSim(w io.Writer, rows []ModelVsSimRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("experiments: empty model-vs-sim table")
	}
	fmt.Fprintln(w, "Analytical model vs simulation — normalized saturation throughput")
	fmt.Fprintf(w, "%10s %4s %8s %12s %12s %8s\n", "scheme", "N", "theta", "analytical", "simulated", "ratio")
	for _, r := range rows {
		ratio := math.NaN()
		if r.Analytical > 0 {
			ratio = r.Simulated / r.Analytical
		}
		fmt.Fprintf(w, "%10s %4d %7.0f° %12.4f %12.4f %8.2f\n",
			r.Scheme, r.N, r.BeamwidthDeg, r.Analytical, r.Simulated, ratio)
	}
	fmt.Fprintf(w, "Spearman rank correlation (ordering agreement): %.3f\n", SpearmanRank(rows))
	return nil
}
