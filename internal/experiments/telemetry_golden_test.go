package experiments

// Telemetry-observer goldens. Two invariants:
//
//  1. Observation changes nothing: every kernel-determinism golden case
//     re-run with 10ms sampling must reproduce its existing golden
//     byte-for-byte. Probe ticks consume event-queue sequence numbers
//     but draw no randomness and mutate no protocol state.
//  2. The export itself is pinned: a reference JSONL golden for one
//     case guards the format, the sample cadence and every float bit.
//     Regenerate with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestTelemetryExportGolden

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/des"
	"repro/internal/telemetry"
)

func TestKernelDeterminismGoldenWithTelemetry(t *testing.T) {
	for name, cfg := range goldenCases() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg.TelemetryInterval = 10 * des.Millisecond
			cfg.Telemetry = telemetry.Discard{}
			res, err := RunSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := canonicalJSON(t, res)
			path := filepath.Join("testdata", "golden_"+name+".json")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run TestKernelDeterminismGolden with UPDATE_GOLDEN=1): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("enabling telemetry changed the result of %s\n"+
					"sampling must be a pure observer of the simulation", name)
			}
		})
	}
}

func TestTelemetryExportGolden(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	cfg := goldenCases()["drtsdcts_n3_b90"]
	cfg.TelemetryInterval = 10 * des.Millisecond
	var buf bytes.Buffer
	w := telemetry.NewWriter(&buf)
	cfg.Telemetry = w
	if _, err := RunSim(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	path := filepath.Join("testdata", "golden_telemetry_drtsdcts_n3_b90.jsonl")
	if update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to generate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("telemetry export diverged from golden %s", path)
	}
	// The golden must parse back through the public reader.
	h, recs, err := telemetry.ReadAll(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if h.Format != telemetry.FormatV1 || len(recs) == 0 {
		t.Errorf("golden export parsed to header %+v with %d records", h, len(recs))
	}
}
