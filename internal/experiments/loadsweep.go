package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// LoadCell is one point of an offered-load sweep: one scheme at one
// per-node offered load, aggregated over topologies.
type LoadCell struct {
	Scheme     core.Scheme
	OfferedBps float64
	Batch      *BatchResult
}

// LoadSweep runs the classic offered-load study the paper's saturation
// analysis brackets: per-node CBR load swept from light to beyond
// saturation, for each scheme. Base supplies N, beamwidth, seed and
// duration.
func LoadSweep(base SimConfig, schemes []core.Scheme, loadsBps []float64, topologies int) ([]LoadCell, error) {
	if len(loadsBps) == 0 {
		return nil, fmt.Errorf("experiments: load sweep needs at least one load")
	}
	var cells []LoadCell
	for _, load := range loadsBps {
		if load <= 0 {
			return nil, fmt.Errorf("experiments: offered load must be positive, got %v", load)
		}
		for _, s := range schemes {
			cfg := base
			cfg.Scheme = s
			cfg.OfferedLoadBps = load
			batch, err := RunBatch(cfg, topologies)
			if err != nil {
				return nil, fmt.Errorf("load sweep %v at %v b/s: %w", s, load, err)
			}
			cells = append(cells, LoadCell{Scheme: s, OfferedBps: load, Batch: batch})
		}
	}
	return cells, nil
}

// PaperLoads returns a default sweep bracketing the saturation point of
// the paper's configurations: 25 Kb/s to 800 Kb/s per node.
func PaperLoads() []float64 {
	return []float64{25_000, 50_000, 100_000, 200_000, 400_000, 800_000}
}

// WriteLoadSweep renders the sweep: one row per offered load, columns
// per scheme with delivered throughput and delay.
func WriteLoadSweep(w io.Writer, cells []LoadCell) error {
	if len(cells) == 0 {
		return fmt.Errorf("experiments: empty load sweep")
	}
	var (
		loads   []float64
		schemes []core.Scheme
		seenL   = map[float64]bool{}
		seenS   = map[core.Scheme]bool{}
		byKey   = map[float64]map[core.Scheme]LoadCell{}
	)
	for _, c := range cells {
		if !seenL[c.OfferedBps] {
			seenL[c.OfferedBps] = true
			loads = append(loads, c.OfferedBps)
		}
		if !seenS[c.Scheme] {
			seenS[c.Scheme] = true
			schemes = append(schemes, c.Scheme)
		}
		if byKey[c.OfferedBps] == nil {
			byKey[c.OfferedBps] = map[core.Scheme]LoadCell{}
		}
		byKey[c.OfferedBps][c.Scheme] = c
	}
	fmt.Fprintf(w, "Offered-load sweep — delivered Kb/s per node (delay ms), %d topologies per point\n",
		cells[0].Batch.Runs)
	fmt.Fprintf(w, "%14s", "offered Kb/s")
	for _, s := range schemes {
		fmt.Fprintf(w, " %22s", s)
	}
	fmt.Fprintln(w)
	for _, load := range loads {
		fmt.Fprintf(w, "%14.0f", load/1000)
		for _, s := range schemes {
			c, ok := byKey[load][s]
			if !ok {
				fmt.Fprintf(w, " %22s", "-")
				continue
			}
			fmt.Fprintf(w, " %22s", fmt.Sprintf("%.1f (%.1f)",
				c.Batch.ThroughputBps.Mean/1000, c.Batch.DelaySec.Mean*1000))
		}
		fmt.Fprintln(w)
	}
	return nil
}
