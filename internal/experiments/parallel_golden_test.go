package experiments

// Worker-count invariance tests for the partitioned parallel kernel
// (DESIGN.md §14). Options.Workers is a pure execution knob: every
// kernel-determinism golden, the sparse fast-forward scenario and the
// telemetry export must come out byte-identical at any worker count.
// The golden configurations are all paper-scale (or use excluded
// features like mobility), so they plan as sequential no matter what —
// these tests pin exactly that: turning workers up never silently
// changes what a historical scenario computes. The genuinely
// multi-partition worker sweep lives in internal/sim's
// TestPartitionedRunWorkerInvariance.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/des"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func TestKernelDeterminismGoldenParallelWorkers(t *testing.T) {
	for name, cfg := range goldenCases() {
		for _, workers := range []int{1, 2, 4, 8} {
			name, cfg, workers := name, cfg, workers
			cfg.Workers = workers
			t.Run(fmt.Sprintf("%s_w%d", name, workers), func(t *testing.T) {
				t.Parallel()
				res, err := RunSim(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got := canonicalJSON(t, res)
				path := filepath.Join("testdata", fmt.Sprintf("golden_%s.json", name))
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (generate via TestKernelDeterminismGolden with UPDATE_GOLDEN=1): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d diverged from golden %s\n"+
						"worker count must never affect results", workers, path)
				}
			})
		}
	}
}

// TestFastForwardSparseParallelWorkers sweeps the repo's sparse
// fast-forward scenario file — the configuration whose bit-identity
// proof (DESIGN.md §12) anchors to the global ActivePending gate —
// across worker counts.
func TestFastForwardSparseParallelWorkers(t *testing.T) {
	sc, err := sim.LoadScenario(filepath.Join("..", "sim", "testdata", "fastforward-sparse.json"))
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		res, err := sim.RunScenario(sc, sim.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: fastforward-sparse Result diverged from workers=1", workers)
		}
	}
}

// TestTelemetryGoldenParallelWorkers pins the streaming telemetry
// export against its golden with a non-default worker count (telemetry
// runs are always sequential — partitioning excludes them — so the
// export must be untouched by the knob).
func TestTelemetryGoldenParallelWorkers(t *testing.T) {
	cfg := goldenCases()["drtsdcts_n3_b90"]
	cfg.TelemetryInterval = 10 * des.Millisecond
	cfg.Workers = 4
	var buf bytes.Buffer
	w := telemetry.NewWriter(&buf)
	cfg.Telemetry = w
	if _, err := RunSim(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_telemetry_drtsdcts_n3_b90.jsonl"))
	if err != nil {
		t.Fatalf("missing telemetry golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("telemetry export with workers=4 diverged from the golden")
	}
}
