// Package experiments assembles complete simulation runs and regenerates
// every table and figure of the paper's evaluation: the analytical Fig. 5
// curves, the simulated throughput (Fig. 6) and delay (Fig. 7)
// comparisons, and the collision-ratio and fairness statistics that the
// paper describes but omits for space.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/neighbor"
	"repro/internal/phy"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// SimConfig describes one simulation run.
type SimConfig struct {
	// Scheme is the collision-avoidance variant under test.
	Scheme core.Scheme
	// BeamwidthDeg is the transmission beamwidth in degrees (ignored by
	// ORTS-OCTS).
	BeamwidthDeg float64
	// N is the paper's density parameter: the inner circle holds N
	// measured nodes; the whole network has 9N.
	N int
	// Seed drives topology generation and all protocol randomness.
	Seed int64
	// Duration is the measured simulation time.
	Duration des.Time
	// PacketBytes is the data payload size (defaults to 1460).
	PacketBytes int
	// Topology optionally supplies a pre-generated placement; when nil a
	// fresh constrained ring topology is drawn from the seed.
	Topology *topology.Topology
	// HelloBootstrap populates neighbor tables with the over-the-air
	// HELLO protocol instead of ground truth.
	HelloBootstrap bool
	// Capture enables the first-signal capture ablation at the receiver.
	Capture bool
	// NAVOracle enables the oracle virtual-carrier-sense ablation:
	// out-of-beam neighbors still learn frame durations and defer.
	NAVOracle bool
	// DisableEIFS disables extended-IFS deference (ablation).
	DisableEIFS bool
	// Tracer, when non-nil, receives every node's protocol events.
	Tracer trace.Tracer
	// BasicAccess disables RTS/CTS (the hidden-terminal-prone baseline).
	BasicAccess bool
	// OfferedLoadBps, when positive, replaces the saturated sources with
	// paced CBR sources offering this many bits per second per node
	// (bounded queue of 64 packets). Zero means saturation, as in the
	// paper.
	OfferedLoadBps float64
	// MaxSpeed, when positive, animates nodes with a random-waypoint walk
	// at uniform speeds up to this many transmission ranges per second
	// (extension; the paper's networks are static). Neighbor tables are
	// refreshed from ground truth every RefreshInterval.
	MaxSpeed float64
	// RefreshInterval bounds neighbor-location staleness under mobility
	// (default 1 s).
	RefreshInterval des.Time
	// SampleDelays, when true, reservoir-samples per-packet delays of the
	// inner nodes so SimResult carries delay percentiles, not just means.
	SampleDelays bool
	// AdaptiveRTS enables the Ko et al.-style adaptive variant on
	// directional schemes: RTS falls back to omni when the destination's
	// location is staler than this threshold, and every frame piggybacks
	// the sender's position to refresh tables (0 disables).
	AdaptiveRTS des.Time
	// SINR replaces the paper's overlap-collision receiver with the
	// physical SINR model (path loss α=2, 10 dB threshold, low noise
	// floor): strong frames capture, and directional gain follows the
	// paper's footnote 2.
	SINR bool
}

// Validate checks the configuration.
func (c SimConfig) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("experiments: N must be at least 2, got %d", c.N)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("experiments: duration must be positive, got %v", c.Duration)
	}
	if c.Scheme != core.ORTSOCTS && (c.BeamwidthDeg <= 0 || c.BeamwidthDeg > 360) {
		return fmt.Errorf("experiments: beamwidth must be in (0, 360] degrees, got %v", c.BeamwidthDeg)
	}
	return nil
}

// SimResult holds the per-run metrics for the measured inner nodes.
type SimResult struct {
	// ThroughputBps is each inner node's acknowledged goodput in bits/s.
	ThroughputBps []float64
	// DelaySec is each inner node's mean MAC service delay in seconds
	// (NaN markers are excluded: nodes that delivered nothing carry 0).
	DelaySec []float64
	// CollisionRatio is each inner node's ACK-timeout fraction of
	// data-phase handshakes.
	CollisionRatio []float64
	// Jain is the fairness index over the inner nodes' throughput.
	Jain float64
	// DelaySamplesSec holds a uniform sample of per-packet service delays
	// of the inner nodes (populated when SimConfig.SampleDelays is set).
	DelaySamplesSec []float64
	// SpatialReuse is the network's concurrency factor: total transmit
	// airtime across all nodes divided by elapsed time. Values above 1
	// mean simultaneous transmissions coexisted — the reuse the paper's
	// directional schemes are built to unlock.
	SpatialReuse float64
	// AirtimeShare breaks the on-air time down by frame type (fractions
	// of TotalTxAirtime).
	AirtimeShare map[string]float64
	// NodeStats are the raw MAC counters for every node (all rings).
	NodeStats []mac.Stats
}

// MeanThroughputBps returns the average inner-node goodput.
func (r *SimResult) MeanThroughputBps() float64 { return mean(r.ThroughputBps) }

// MeanDelaySec returns the average inner-node service delay over nodes
// that delivered at least one packet.
func (r *SimResult) MeanDelaySec() float64 {
	var sum float64
	var n int
	for i, d := range r.DelaySec {
		if r.NodeStats[i].DelayCount > 0 {
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanCollisionRatio returns the average inner-node collision ratio.
func (r *SimResult) MeanCollisionRatio() float64 { return mean(r.CollisionRatio) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// RunSim executes one complete simulation: topology, PHY, neighbor
// bootstrap, MAC per node, saturated CBR traffic, and metric collection
// on the inner N nodes.
func RunSim(cfg SimConfig) (*SimResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PacketBytes == 0 {
		cfg.PacketBytes = traffic.PaperPacketBytes
	}
	topo := cfg.Topology
	if topo == nil {
		var err error
		topo, err = topology.Generate(rand.New(rand.NewSource(cfg.Seed)), topology.DefaultConfig(cfg.N))
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	}

	sched := des.New(cfg.Seed ^ 0x5eed)
	phyParams := phy.DefaultParams()
	phyParams.Range = topo.Radius
	phyParams.Capture = cfg.Capture
	phyParams.NAVOracle = cfg.NAVOracle
	if cfg.SINR {
		phyParams.SINRThreshold = 10
		phyParams.PathLoss = 2
		phyParams.NoiseFloor = 0.001
	}
	ch, err := phy.NewChannel(sched, phyParams)
	if err != nil {
		return nil, err
	}
	for _, pos := range topo.Positions {
		ch.AddRadio(pos, nil)
	}

	var tables []*neighbor.Table
	if cfg.HelloBootstrap {
		tables, err = neighbor.Bootstrap(sched, ch, neighbor.DefaultHelloConfig())
		if err != nil {
			return nil, err
		}
	} else {
		tables = neighbor.GroundTruth(ch)
	}

	macCfg := mac.DefaultConfig(cfg.Scheme, cfg.BeamwidthDeg*math.Pi/180)
	macCfg.DisableEIFS = cfg.DisableEIFS
	macCfg.Tracer = cfg.Tracer
	macCfg.BasicAccess = cfg.BasicAccess
	if cfg.AdaptiveRTS > 0 {
		macCfg.AdaptiveRTSStaleness = cfg.AdaptiveRTS
		macCfg.PiggybackLocation = true
	}
	var delayRes *stats.Reservoir
	if cfg.SampleDelays {
		delayRes = stats.NewReservoir(4096, sched.Rand())
	}
	nodes := make([]*mac.Node, ch.NumRadios())
	var cbrs []*traffic.CBR
	for i := 0; i < ch.NumRadios(); i++ {
		id := phy.NodeID(i)
		var src mac.Source = traffic.Empty{}
		var cbr *traffic.CBR
		if nbs := ch.Neighbors(id); len(nbs) > 0 {
			if cfg.OfferedLoadBps > 0 {
				interval := des.Time(float64(cfg.PacketBytes*8) / cfg.OfferedLoadBps * float64(des.Second))
				cbr, err = traffic.NewCBR(sched, sched.Rand(), nbs, traffic.CBRConfig{
					Interval: interval, Bytes: cfg.PacketBytes, QueueCap: 64,
				})
				if err != nil {
					return nil, err
				}
				src = cbr
				cbrs = append(cbrs, cbr)
			} else {
				src, err = traffic.NewSaturated(sched.Rand(), nbs, cfg.PacketBytes)
				if err != nil {
					return nil, err
				}
			}
		}
		nodeCfg := macCfg
		if delayRes != nil && i < topo.InnerCount() {
			nodeCfg.OnDelivery = func(d des.Time) { delayRes.Add(d.Seconds()) }
		}
		nodes[i], err = mac.New(sched, ch.Radio(id), tables[i], src, nodeCfg)
		if err != nil {
			return nil, err
		}
		if cbr != nil {
			cbr.SetKick(nodes[i].Kick)
		}
	}
	for _, n := range nodes {
		n.Start()
	}
	for _, c := range cbrs {
		c.Start()
	}
	if cfg.MaxSpeed > 0 {
		mob, err := mobility.New(sched, ch, mobility.DefaultConfig(cfg.MaxSpeed))
		if err != nil {
			return nil, err
		}
		mob.Start()
		refresh := cfg.RefreshInterval
		if refresh <= 0 {
			refresh = des.Second
		}
		if _, err := neighbor.PeriodicRefresh(sched, ch, tables, refresh); err != nil {
			return nil, err
		}
	}
	start := sched.Now() // after any bootstrap
	sched.Run(start + cfg.Duration)

	res := &SimResult{
		ThroughputBps:  make([]float64, topo.InnerCount()),
		DelaySec:       make([]float64, topo.InnerCount()),
		CollisionRatio: make([]float64, topo.InnerCount()),
		NodeStats:      make([]mac.Stats, len(nodes)),
	}
	for i, n := range nodes {
		res.NodeStats[i] = n.Stats()
	}
	for i := 0; i < topo.InnerCount(); i++ {
		st := res.NodeStats[i]
		res.ThroughputBps[i] = float64(st.BitsAcked) / cfg.Duration.Seconds()
		res.DelaySec[i] = st.AvgDelay().Seconds()
		res.CollisionRatio[i] = st.CollisionRatio()
	}
	res.Jain = stats.JainIndex(res.ThroughputBps)
	res.SpatialReuse = ch.TotalTxAirtime().Seconds() / cfg.Duration.Seconds()
	if total := ch.TotalTxAirtime(); total > 0 {
		res.AirtimeShare = make(map[string]float64, 4)
		for _, ft := range []phy.FrameType{phy.RTS, phy.CTS, phy.Data, phy.ACK} {
			res.AirtimeShare[ft.String()] = ch.TxAirtime(ft).Seconds() / total.Seconds()
		}
	}
	if delayRes != nil {
		res.DelaySamplesSec = delayRes.Sample()
	}
	return res, nil
}

// DelayPercentileSec returns the p-th percentile of the sampled
// per-packet delays (0 without SampleDelays).
func (r *SimResult) DelayPercentileSec(p float64) float64 {
	return stats.Percentile(r.DelaySamplesSec, p)
}

// BatchResult aggregates one (scheme, N, beamwidth) cell over many random
// topologies, mirroring the paper's mean + vertical range presentation.
type BatchResult struct {
	// ThroughputBps summarizes the per-topology mean inner-node goodput.
	ThroughputBps stats.Summary
	// DelaySec summarizes the per-topology mean service delay.
	DelaySec stats.Summary
	// CollisionRatio summarizes the per-topology mean collision ratio.
	CollisionRatio stats.Summary
	// Jain summarizes the per-topology fairness index.
	Jain stats.Summary
	// Runs is the number of topologies aggregated.
	Runs int
}

// RunBatch runs cfg over `topologies` independent random topologies
// (seeds cfg.Seed, cfg.Seed+1, ...), in parallel across CPUs, and
// aggregates the per-topology means.
func RunBatch(cfg SimConfig, topologies int) (*BatchResult, error) {
	if topologies < 1 {
		return nil, fmt.Errorf("experiments: need at least one topology, got %d", topologies)
	}
	results := make([]*SimResult, topologies)
	errs := make([]error, topologies)
	// A fixed-size worker pool pulling indices from a channel: launching
	// one goroutine per topology up front would allocate stacks for a
	// whole sweep (hundreds of cells × topologies) that mostly sit parked
	// on a semaphore.
	workers := runtime.GOMAXPROCS(0)
	if workers > topologies {
		workers = topologies
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				c := cfg
				c.Seed = cfg.Seed + int64(i)
				c.Topology = nil
				results[i], errs[i] = RunSim(c)
			}
		}()
	}
	for i := 0; i < topologies; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out BatchResult
	var th, dl, cr, jn stats.Stream
	for _, r := range results {
		th.Add(r.MeanThroughputBps())
		dl.Add(r.MeanDelaySec())
		cr.Add(r.MeanCollisionRatio())
		jn.Add(r.Jain)
	}
	out.ThroughputBps = th.Summarize()
	out.DelaySec = dl.Summarize()
	out.CollisionRatio = cr.Summarize()
	out.Jain = jn.Summarize()
	out.Runs = topologies
	return &out, nil
}

// GridCell is one point of the paper's Fig. 6/7 sweep.
type GridCell struct {
	Scheme       core.Scheme
	N            int
	BeamwidthDeg float64
	Batch        *BatchResult
}

// PaperGrid returns the paper's simulation sweep: N ∈ {3, 5, 8} and
// beamwidth ∈ {30°, 90°, 150°}.
func PaperGrid() (ns []int, beamsDeg []float64) {
	return []int{3, 5, 8}, []float64{30, 90, 150}
}

// RunGrid evaluates every (scheme, N, beamwidth) combination over the
// given number of topologies. Base supplies Duration, Seed and ablation
// switches. ORTS-OCTS ignores beamwidth but is run once per beamwidth for
// table alignment (its results differ only by random stream).
func RunGrid(base SimConfig, schemes []core.Scheme, ns []int, beamsDeg []float64, topologies int) ([]GridCell, error) {
	var cells []GridCell
	for _, n := range ns {
		for _, beam := range beamsDeg {
			for _, s := range schemes {
				cfg := base
				cfg.Scheme = s
				cfg.N = n
				cfg.BeamwidthDeg = beam
				batch, err := RunBatch(cfg, topologies)
				if err != nil {
					return nil, fmt.Errorf("grid cell %v N=%d θ=%v: %w", s, n, beam, err)
				}
				cells = append(cells, GridCell{Scheme: s, N: n, BeamwidthDeg: beam, Batch: batch})
			}
		}
	}
	return cells, nil
}
