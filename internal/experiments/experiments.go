// Package experiments assembles complete simulation runs and regenerates
// every table and figure of the paper's evaluation: the analytical Fig. 5
// curves, the simulated throughput (Fig. 6) and delay (Fig. 7)
// comparisons, and the collision-ratio and fairness statistics that the
// paper describes but omits for space.
//
// Assembly itself lives in internal/sim: SimConfig is the stable typed
// front door, converted to a declarative sim.Scenario and executed by
// sim.Build/sim.Runner. The two descriptions are interchangeable —
// SimConfig.Scenario and ConfigFromScenario round-trip — so flag-driven
// tools and scenario files share one code path.
package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
)

// SimConfig describes one simulation run.
type SimConfig struct {
	// Scheme is the collision-avoidance variant under test.
	Scheme core.Scheme
	// BeamwidthDeg is the transmission beamwidth in degrees (ignored by
	// ORTS-OCTS).
	BeamwidthDeg float64
	// N is the paper's density parameter: the inner circle holds N
	// measured nodes; the whole network has 9N.
	N int
	// Seed drives topology generation and all protocol randomness.
	Seed int64
	// Duration is the measured simulation time.
	Duration des.Time
	// PacketBytes is the data payload size (defaults to 1460).
	PacketBytes int
	// TopologyKind selects a registered sim topology generator (empty
	// means "rings", the paper's constrained placement). Ignored when
	// Topology supplies an explicit placement.
	TopologyKind string
	// Topology optionally supplies a pre-generated placement; when nil a
	// fresh topology is drawn from the seed.
	Topology *topology.Topology
	// HelloBootstrap populates neighbor tables with the over-the-air
	// HELLO protocol instead of ground truth.
	HelloBootstrap bool
	// Capture enables the first-signal capture ablation at the receiver.
	Capture bool
	// NAVOracle enables the oracle virtual-carrier-sense ablation:
	// out-of-beam neighbors still learn frame durations and defer.
	NAVOracle bool
	// DisableEIFS disables extended-IFS deference (ablation).
	DisableEIFS bool
	// Tracer, when non-nil, receives every node's protocol events.
	Tracer trace.Tracer
	// Cache, when non-nil, serves repeat runs from a content-addressed
	// result store (bypassed while Topology or Tracer overrides are
	// attached; see sim.Options.Cache).
	Cache *cache.Store
	// BasicAccess disables RTS/CTS (the hidden-terminal-prone baseline).
	BasicAccess bool
	// OfferedLoadBps, when positive, replaces the saturated sources with
	// paced CBR sources offering this many bits per second per node
	// (bounded queue of 64 packets). Zero means saturation, as in the
	// paper.
	OfferedLoadBps float64
	// MaxSpeed, when positive, animates nodes with a random-waypoint walk
	// at uniform speeds up to this many transmission ranges per second
	// (extension; the paper's networks are static). Neighbor tables are
	// refreshed from ground truth every RefreshInterval.
	MaxSpeed float64
	// RefreshInterval bounds neighbor-location staleness under mobility
	// (default 1 s).
	RefreshInterval des.Time
	// SampleDelays, when true, reservoir-samples per-packet delays of the
	// inner nodes so SimResult carries delay percentiles, not just means.
	SampleDelays bool
	// AdaptiveRTS enables the Ko et al.-style adaptive variant on
	// directional schemes: RTS falls back to omni when the destination's
	// location is staler than this threshold, and every frame piggybacks
	// the sender's position to refresh tables (0 disables).
	AdaptiveRTS des.Time
	// SINR replaces the paper's overlap-collision receiver with the
	// physical SINR model (path loss α=2, 10 dB threshold, low noise
	// floor): strong frames capture, and directional gain follows the
	// paper's footnote 2.
	SINR bool
	// TelemetryInterval, when positive, samples per-node and aggregate
	// metrics every interval of sim time and streams them to Telemetry
	// (see internal/telemetry). Zero disables telemetry entirely.
	TelemetryInterval des.Time
	// TelemetryMetrics restricts the registered instruments to the named
	// subset of sim.TelemetryMetricNames(); empty registers all.
	TelemetryMetrics []string
	// Telemetry receives the streaming export when TelemetryInterval is
	// set. Batch runs buffer per shard and merge deterministically in
	// shard order. Like Tracer, a telemetry-enabled run bypasses Cache.
	Telemetry telemetry.Sink
	// FastForward enables analytic idle-time skipping in the kernel.
	// Results are bit-identical with it on or off (golden-enforced), so
	// it composes freely with Cache — the key ignores it.
	FastForward bool
	// Partition controls the grid-partitioned parallel kernel: "" or
	// "auto" lets large static scenarios split into per-region event
	// queues, "off" forces the sequential kernel (see sim.Scenario).
	Partition string
	// Workers is the goroutine budget for execution (0 means
	// GOMAXPROCS): in RunSim it bounds the partition workers of one run;
	// in RunBatch it is the TOTAL budget shared between the shard pool
	// and each shard's partition workers. Results never depend on it.
	Workers int
}

// Validate checks the configuration.
func (c SimConfig) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("experiments: N must be at least 2, got %d", c.N)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("experiments: duration must be positive, got %v", c.Duration)
	}
	if c.Scheme != core.ORTSOCTS && (c.BeamwidthDeg <= 0 || c.BeamwidthDeg > 360) {
		return fmt.Errorf("experiments: beamwidth must be in (0, 360] degrees, got %v", c.BeamwidthDeg)
	}
	return nil
}

// SimResult holds the per-run metrics for the measured inner nodes; it is
// internal/sim's Result under the package's historical name.
type SimResult = sim.Result

// Scenario converts the config to its declarative equivalent. The
// mapping is exact: running the returned scenario reproduces RunSim(c)
// bit for bit (the kernel-determinism goldens pin this).
func (c SimConfig) Scenario() sim.Scenario {
	sc := sim.Scenario{
		Scheme:       c.Scheme.String(),
		BeamwidthDeg: c.BeamwidthDeg,
		Seed:         c.Seed,
		Duration:     sim.Duration(c.Duration),
		Topology:     sim.TopologySpec{Kind: c.TopologyKind, N: c.N},
		Traffic:      sim.TrafficSpec{PacketBytes: c.PacketBytes},
		PHY:          sim.PHYSpec{Capture: c.Capture, NAVOracle: c.NAVOracle, SINR: c.SINR},
		Ablations: sim.AblationSpec{
			DisableEIFS:    c.DisableEIFS,
			BasicAccess:    c.BasicAccess,
			HelloBootstrap: c.HelloBootstrap,
			AdaptiveRTS:    sim.Duration(c.AdaptiveRTS),
		},
		SampleDelays: c.SampleDelays,
		Telemetry: sim.TelemetrySpec{
			Interval: sim.Duration(c.TelemetryInterval),
			Metrics:  c.TelemetryMetrics,
		},
		FastForward: c.FastForward,
		Partition:   c.Partition,
	}
	if c.OfferedLoadBps > 0 {
		sc.Traffic.Kind = "cbr"
		sc.Traffic.OfferedLoadBps = c.OfferedLoadBps
	}
	if c.MaxSpeed > 0 {
		sc.Mobility.Kind = "waypoint"
		sc.Mobility.MaxSpeed = c.MaxSpeed
		sc.Mobility.RefreshInterval = sim.Duration(c.RefreshInterval)
	}
	return sc
}

// ConfigFromScenario maps a declarative scenario back onto a SimConfig.
// It errors on specs only internal/sim can express (explicit positions,
// silent traffic, trace sinks), so callers never silently run a
// different experiment than the file describes.
func ConfigFromScenario(sc sim.Scenario) (SimConfig, error) {
	scheme, err := sc.ResolvedScheme()
	if err != nil {
		return SimConfig{}, err
	}
	cfg := SimConfig{
		Scheme:            scheme,
		BeamwidthDeg:      sc.BeamwidthDeg,
		N:                 sc.Topology.N,
		Seed:              sc.Seed,
		Duration:          des.Time(sc.Duration),
		PacketBytes:       sc.Traffic.PacketBytes,
		TopologyKind:      sc.Topology.Kind,
		HelloBootstrap:    sc.Ablations.HelloBootstrap,
		Capture:           sc.PHY.Capture,
		NAVOracle:         sc.PHY.NAVOracle,
		DisableEIFS:       sc.Ablations.DisableEIFS,
		BasicAccess:       sc.Ablations.BasicAccess,
		SampleDelays:      sc.SampleDelays,
		AdaptiveRTS:       des.Time(sc.Ablations.AdaptiveRTS),
		SINR:              sc.PHY.SINR,
		TelemetryInterval: des.Time(sc.Telemetry.Interval),
		TelemetryMetrics:  sc.Telemetry.Metrics,
		FastForward:       sc.FastForward,
		Partition:         sc.Partition,
	}
	switch sc.Traffic.Kind {
	case "", "saturated":
	case "cbr":
		cfg.OfferedLoadBps = sc.Traffic.OfferedLoadBps
	default:
		return SimConfig{}, fmt.Errorf("experiments: traffic kind %q has no SimConfig equivalent", sc.Traffic.Kind)
	}
	if sc.Mobility.Kind == "waypoint" {
		cfg.MaxSpeed = sc.Mobility.MaxSpeed
		cfg.RefreshInterval = des.Time(sc.Mobility.RefreshInterval)
	}
	if len(sc.Topology.Positions) > 0 {
		return SimConfig{}, fmt.Errorf("experiments: explicit topology positions have no SimConfig equivalent")
	}
	if sc.Trace.Kind != "" && sc.Trace.Kind != "none" {
		return SimConfig{}, fmt.Errorf("experiments: trace sink %q has no SimConfig equivalent", sc.Trace.Kind)
	}
	return cfg, nil
}

// RunSim executes one complete simulation: topology, PHY, neighbor
// bootstrap, MAC per node, traffic, and metric collection on the inner N
// nodes. It is a thin wrapper over sim.Build + Run.
func RunSim(cfg SimConfig) (*SimResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return sim.RunScenario(cfg.Scenario(), sim.Options{
		Topology: cfg.Topology, Tracer: cfg.Tracer, Cache: cfg.Cache, Telemetry: cfg.Telemetry,
		Workers: cfg.Workers,
	})
}

// BatchResult aggregates one (scheme, N, beamwidth) cell over many random
// topologies, mirroring the paper's mean + vertical range presentation.
type BatchResult struct {
	// ThroughputBps summarizes the per-topology mean inner-node goodput.
	ThroughputBps stats.Summary
	// DelaySec summarizes the per-topology mean service delay.
	DelaySec stats.Summary
	// CollisionRatio summarizes the per-topology mean collision ratio.
	CollisionRatio stats.Summary
	// Jain summarizes the per-topology fairness index.
	Jain stats.Summary
	// Runs is the number of topologies aggregated.
	Runs int
}

// AggregateBatch folds per-shard results (in shard order) into the
// paper's mean + range presentation.
func AggregateBatch(results []*SimResult) *BatchResult {
	var out BatchResult
	var th, dl, cr, jn stats.Stream
	for _, r := range results {
		th.Add(r.MeanThroughputBps())
		dl.Add(r.MeanDelaySec())
		cr.Add(r.MeanCollisionRatio())
		jn.Add(r.Jain)
	}
	out.ThroughputBps = th.Summarize()
	out.DelaySec = dl.Summarize()
	out.CollisionRatio = cr.Summarize()
	out.Jain = jn.Summarize()
	out.Runs = len(results)
	return &out
}

// RunBatch runs cfg over `topologies` independent random topologies
// (seeds cfg.Seed, cfg.Seed+1, ...) on sim.Runner's bounded worker pool
// and aggregates the per-topology means. Errors are deterministic: the
// lowest-indexed failing shard decides the returned error regardless of
// goroutine scheduling.
func RunBatch(cfg SimConfig, topologies int) (*BatchResult, error) {
	if topologies < 1 {
		return nil, fmt.Errorf("experiments: need at least one topology, got %d", topologies)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	runner := sim.Runner{
		Workers: cfg.Workers,
		Options: sim.Options{Tracer: cfg.Tracer, Cache: cfg.Cache, Telemetry: cfg.Telemetry},
	}
	results, err := runner.Run(cfg.Scenario(), topologies)
	if err != nil {
		return nil, err
	}
	return AggregateBatch(results), nil
}

// GridCell is one point of the paper's Fig. 6/7 sweep.
type GridCell struct {
	Scheme       core.Scheme
	N            int
	BeamwidthDeg float64
	Batch        *BatchResult
}

// PaperGrid returns the paper's simulation sweep: N ∈ {3, 5, 8} and
// beamwidth ∈ {30°, 90°, 150°}.
func PaperGrid() (ns []int, beamsDeg []float64) {
	return []int{3, 5, 8}, []float64{30, 90, 150}
}

// RunGrid evaluates every (scheme, N, beamwidth) combination over the
// given number of topologies. Base supplies Duration, Seed and ablation
// switches. ORTS-OCTS ignores beamwidth but is run once per beamwidth for
// table alignment (its results differ only by random stream).
func RunGrid(base SimConfig, schemes []core.Scheme, ns []int, beamsDeg []float64, topologies int) ([]GridCell, error) {
	var cells []GridCell
	for _, n := range ns {
		for _, beam := range beamsDeg {
			for _, s := range schemes {
				cfg := base
				cfg.Scheme = s
				cfg.N = n
				cfg.BeamwidthDeg = beam
				batch, err := RunBatch(cfg, topologies)
				if err != nil {
					return nil, fmt.Errorf("grid cell %v N=%d θ=%v: %w", s, n, beam, err)
				}
				cells = append(cells, GridCell{Scheme: s, N: n, BeamwidthDeg: beam, Batch: batch})
			}
		}
	}
	return cells, nil
}
