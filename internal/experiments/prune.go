package experiments

// Pre-sweep pruning. The Kai–Liew analytic estimate (core/kailiew.go)
// costs microseconds per sweep cell, so the harness can rank an entire
// (scheme, N, beamwidth) grid before any simulation runs and skip cells
// whose predicted throughput is dominated within their density class.
// Verdicts are content-addressed like every other result: the cache key
// covers the predictor's parameters and its own fingerprint, so a warm
// sweep stays incremental and a predictor change invalidates verdicts
// without touching cached simulation results (simulated cells keep
// their ordinary ScenarioKey addressing).

import (
	"encoding/json"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
)

// KaiLiewFingerprint identifies the pruning predictor's behavior for
// cache addressing, exactly like sim.EngineFingerprint does for the
// kernel. Bump the version when the estimate can change for the same
// parameters.
const KaiLiewFingerprint = "kailiew-prune/v1"

// PruneVerdict is the predictor's decision for one sweep cell.
type PruneVerdict struct {
	Scheme       core.Scheme `json:"scheme"`
	N            int         `json:"n"`
	BeamwidthDeg float64     `json:"beamwidthDeg"`
	// Estimate is the Kai–Liew normalized throughput estimate.
	Estimate float64 `json:"estimate"`
	// Tau is the solved per-slot attempt probability.
	Tau float64 `json:"tau"`
	// Skip marks the cell dominated: its estimate falls below margin
	// times the best estimate among cells with the same N.
	Skip bool `json:"skip"`
}

// kaiLiewEstimate memoizes one cell's estimate through the store (nil
// store computes directly).
func kaiLiewEstimate(s core.Scheme, n int, beamDeg float64, store *cache.Store) (est, tau float64, err error) {
	kp := core.DefaultKaiLiewParams(s, float64(n), beamDeg*radPerDeg)
	if s == core.ORTSOCTS {
		kp.Beamwidth = 0 // canonical: the omni scheme ignores beamwidth
	}
	var key cache.Key
	if store != nil {
		pb, err := json.Marshal(kp)
		if err != nil {
			return 0, 0, fmt.Errorf("experiments: encode predictor params: %w", err)
		}
		key = cache.NewKeyBuilder().
			Write("kailiew", pb).
			Write("engine", []byte(KaiLiewFingerprint)).
			Key()
		if payload, ok := store.Get(key); ok {
			var got [2]float64
			if json.Unmarshal(payload, &got) == nil {
				return got[0], got[1], nil
			}
		}
	}
	if s == core.ORTSOCTS {
		kp.Beamwidth = 2 * 3.141592653589793
	}
	est, tau, err = core.KaiLiewEstimate(kp)
	if err != nil {
		return 0, 0, err
	}
	if store != nil {
		if payload, err := json.Marshal([2]float64{est, tau}); err == nil {
			_ = store.Put(key, payload) // best effort; the estimate stands
		}
	}
	return est, tau, nil
}

// PruneGrid ranks every grid cell by its Kai–Liew estimate and marks as
// dominated the cells whose estimate falls below margin times the best
// estimate at the same density N (schemes and beamwidths compete within
// a density; densities are never compared against each other, since the
// paper's figures sweep them independently). margin must be in (0, 1]:
// 1 keeps only the predicted-best cell per density, 0.5 keeps every
// cell within a factor two of it. The verdicts are memoized through
// store when non-nil.
func PruneGrid(schemes []core.Scheme, ns []int, beamsDeg []float64, margin float64, store *cache.Store) ([]PruneVerdict, error) {
	if margin <= 0 || margin > 1 {
		return nil, fmt.Errorf("experiments: prune margin must be in (0, 1], got %v", margin)
	}
	var verdicts []PruneVerdict
	for _, n := range ns {
		start := len(verdicts)
		best := 0.0
		for _, beam := range beamsDeg {
			for _, s := range schemes {
				est, tau, err := kaiLiewEstimate(s, n, beam, store)
				if err != nil {
					return nil, fmt.Errorf("experiments: prune cell %v N=%d θ=%v: %w", s, n, beam, err)
				}
				if est > best {
					best = est
				}
				verdicts = append(verdicts, PruneVerdict{
					Scheme: s, N: n, BeamwidthDeg: beam, Estimate: est, Tau: tau,
				})
			}
		}
		for i := start; i < len(verdicts); i++ {
			verdicts[i].Skip = verdicts[i].Estimate < margin*best
		}
	}
	return verdicts, nil
}

// RunGridPruned is RunGrid with pre-sweep pruning: cells the predictor
// marks dominated are skipped entirely (no simulation, no cache
// traffic), and only the surviving cells are returned. The verdicts —
// including the skipped cells with their estimates — come back
// alongside, so reports can show what was pruned and why. base.Cache,
// when set, memoizes both the predictor verdicts and the surviving
// cells' simulation results.
func RunGridPruned(base SimConfig, schemes []core.Scheme, ns []int, beamsDeg []float64, topologies int, margin float64) ([]GridCell, []PruneVerdict, error) {
	verdicts, err := PruneGrid(schemes, ns, beamsDeg, margin, base.Cache)
	if err != nil {
		return nil, nil, err
	}
	skip := make(map[gridKey]bool, len(verdicts))
	for _, v := range verdicts {
		if v.Skip {
			skip[gridKey{v.Scheme, v.N, v.BeamwidthDeg}] = true
		}
	}
	var cells []GridCell
	for _, n := range ns {
		for _, beam := range beamsDeg {
			for _, s := range schemes {
				if skip[gridKey{s, n, beam}] {
					continue
				}
				cfg := base
				cfg.Scheme = s
				cfg.N = n
				cfg.BeamwidthDeg = beam
				batch, err := RunBatch(cfg, topologies)
				if err != nil {
					return nil, nil, fmt.Errorf("grid cell %v N=%d θ=%v: %w", s, n, beam, err)
				}
				cells = append(cells, GridCell{Scheme: s, N: n, BeamwidthDeg: beam, Batch: batch})
			}
		}
	}
	return cells, verdicts, nil
}

type gridKey struct {
	scheme core.Scheme
	n      int
	beam   float64
}

const radPerDeg = 3.141592653589793 / 180
