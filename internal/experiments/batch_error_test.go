package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// A topology kind that fails for every shard whose derived seed is
// divisible by 4, injected through SimConfig.TopologyKind so RunBatch's
// error path can be pinned without touching production generators.
func init() {
	sim.RegisterTopology("failing-batch", func(rng *rand.Rand, sc sim.Scenario) (*topology.Topology, error) {
		if sc.Seed%4 == 0 {
			return nil, errInjected(sc.Seed)
		}
		return topology.Generate(rng, topology.DefaultConfig(sc.Topology.N))
	})
}

type errInjected int64

func (e errInjected) Error() string { return "injected topology failure" }

// TestRunBatchDeterministicError pins the error contract: quickCfg's
// base seed is 7, so shards 1 and 5 (seeds 8 and 12) hit the injected
// failure; the reported error must always come from shard 1, whichever
// goroutine fails first.
func TestRunBatchDeterministicError(t *testing.T) {
	cfg := quickCfg(core.DRTSDCTS, 3, 60)
	cfg.TopologyKind = "failing-batch"
	var first string
	for trial := 0; trial < 10; trial++ {
		_, err := RunBatch(cfg, 8)
		if err == nil {
			t.Fatal("want error from injected failing topology")
		}
		msg := err.Error()
		if !strings.Contains(msg, "shard 1 (seed 8)") {
			t.Fatalf("trial %d: error does not name the lowest failing shard: %v", trial, err)
		}
		if first == "" {
			first = msg
		} else if msg != first {
			t.Fatalf("trial %d: error changed across runs:\n%q\n%q", trial, msg, first)
		}
	}
}

// TestRunBatchSucceedsWithInjectedKind: shards that miss the failing
// seeds run the normal generator, so a batch that avoids them works.
func TestRunBatchSucceedsWithInjectedKind(t *testing.T) {
	cfg := quickCfg(core.DRTSDCTS, 3, 60)
	cfg.TopologyKind = "failing-batch"
	cfg.Seed = 9 // shard seeds 9..11: none divisible by 4
	b, err := RunBatch(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Runs != 3 {
		t.Errorf("batch runs = %d, want 3", b.Runs)
	}
}
