package experiments

import (
	"encoding/json"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/topology"
)

func quickCfg(scheme core.Scheme, n int, beamDeg float64) SimConfig {
	return SimConfig{
		Scheme:       scheme,
		BeamwidthDeg: beamDeg,
		N:            n,
		Seed:         7,
		Duration:     500 * des.Millisecond,
	}
}

func TestSimConfigValidate(t *testing.T) {
	if err := quickCfg(core.DRTSDCTS, 3, 30).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []SimConfig{
		{Scheme: core.DRTSDCTS, BeamwidthDeg: 30, N: 1, Duration: des.Second},
		{Scheme: core.DRTSDCTS, BeamwidthDeg: 30, N: 3, Duration: 0},
		{Scheme: core.DRTSDCTS, BeamwidthDeg: 0, N: 3, Duration: des.Second},
		{Scheme: core.DRTSDCTS, BeamwidthDeg: 400, N: 3, Duration: des.Second},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	// ORTS-OCTS needs no beamwidth.
	cfg := SimConfig{Scheme: core.ORTSOCTS, N: 3, Duration: des.Second}
	if err := cfg.Validate(); err != nil {
		t.Errorf("ORTS-OCTS without beamwidth rejected: %v", err)
	}
}

func TestRunSimBasics(t *testing.T) {
	res, err := RunSim(quickCfg(core.ORTSOCTS, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ThroughputBps) != 3 || len(res.DelaySec) != 3 || len(res.CollisionRatio) != 3 {
		t.Fatalf("inner metric lengths: %d/%d/%d, want 3",
			len(res.ThroughputBps), len(res.DelaySec), len(res.CollisionRatio))
	}
	if len(res.NodeStats) != 27 {
		t.Fatalf("NodeStats = %d, want 27 (9N)", len(res.NodeStats))
	}
	if res.MeanThroughputBps() <= 0 {
		t.Error("saturated inner nodes should move data")
	}
	if res.Jain <= 0 || res.Jain > 1 {
		t.Errorf("Jain = %v outside (0, 1]", res.Jain)
	}
	for i, r := range res.CollisionRatio {
		if r < 0 || r > 1 {
			t.Errorf("collision ratio[%d] = %v", i, r)
		}
	}
}

func TestRunSimDeterministic(t *testing.T) {
	cfg := quickCfg(core.DRTSDCTS, 3, 90)
	a, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.ThroughputBps {
		if a.ThroughputBps[i] != b.ThroughputBps[i] {
			t.Fatalf("node %d throughput differs across identical runs", i)
		}
	}
	cfg.Seed = 8
	c, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.ThroughputBps {
		if a.ThroughputBps[i] != c.ThroughputBps[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestRunSimWithProvidedTopology(t *testing.T) {
	topo, err := topology.Generate(rand.New(rand.NewSource(3)), topology.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(core.ORTSOCTS, 3, 0)
	cfg.Topology = topo
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeStats) != len(topo.Positions) {
		t.Errorf("stats for %d nodes, want %d", len(res.NodeStats), len(topo.Positions))
	}
}

func TestRunSimHelloBootstrap(t *testing.T) {
	cfg := quickCfg(core.DRTSDCTS, 3, 90)
	cfg.HelloBootstrap = true
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanThroughputBps() <= 0 {
		t.Error("hello-bootstrapped network should still move data")
	}
}

func TestRunBatch(t *testing.T) {
	cfg := quickCfg(core.ORTSOCTS, 3, 0)
	b, err := RunBatch(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Runs != 4 || b.ThroughputBps.Count != 4 {
		t.Errorf("batch runs = %d/%d, want 4", b.Runs, b.ThroughputBps.Count)
	}
	if !(b.ThroughputBps.Min <= b.ThroughputBps.Mean && b.ThroughputBps.Mean <= b.ThroughputBps.Max) {
		t.Errorf("throughput summary disordered: %+v", b.ThroughputBps)
	}
	if b.ThroughputBps.Min == b.ThroughputBps.Max {
		t.Error("independent topologies should differ")
	}
	if _, err := RunBatch(cfg, 0); err == nil {
		t.Error("zero topologies should be rejected")
	}
}

func TestRunGrid(t *testing.T) {
	base := quickCfg(core.ORTSOCTS, 0, 0) // scheme/N/beam filled by grid
	base.Duration = 300 * des.Millisecond
	cells, err := RunGrid(base, []core.Scheme{core.ORTSOCTS, core.DRTSDCTS}, []int{3}, []float64{30, 150}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if c.Batch == nil || c.Batch.Runs != 2 {
			t.Errorf("cell %+v missing batch", c)
		}
		seen[c.Scheme.String()] = true
	}
	if !seen["ORTS-OCTS"] || !seen["DRTS-DCTS"] {
		t.Error("grid missing schemes")
	}
}

func TestPaperGrid(t *testing.T) {
	ns, beams := PaperGrid()
	if len(ns) != 3 || ns[0] != 3 || ns[1] != 5 || ns[2] != 8 {
		t.Errorf("ns = %v, want [3 5 8]", ns)
	}
	if len(beams) != 3 || beams[0] != 30 || beams[1] != 90 || beams[2] != 150 {
		t.Errorf("beams = %v, want [30 90 150]", beams)
	}
}

func TestFig5(t *testing.T) {
	rows, err := Fig5([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12 beamwidths", len(rows))
	}
	if rows[0].BeamwidthDeg != 15 || rows[11].BeamwidthDeg != 180 {
		t.Errorf("beamwidth endpoints: %v, %v", rows[0].BeamwidthDeg, rows[11].BeamwidthDeg)
	}
	if err := Fig5Shape(rows); err != nil {
		t.Errorf("computed Fig. 5 violates the published shape: %v", err)
	}
}

func TestFig5ShapeDetectsViolations(t *testing.T) {
	rows, err := Fig5([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	// Break claim 1: make ORTS-OCTS the winner at the narrowest beam.
	broken := make([]Fig5Row, len(rows))
	copy(broken, rows)
	broken[0].ORTSOCTS = 2 * broken[0].DRTSDCTS
	if err := Fig5Shape(broken); err == nil {
		t.Error("shape check missed a narrow-beam ordering violation")
	}
	// Break claim 2: make DRTS-DCTS increase with beamwidth.
	copy(broken, rows)
	broken[5].DRTSDCTS = broken[4].DRTSDCTS * 1.5
	if err := Fig5Shape(broken); err == nil {
		t.Error("shape check missed a monotonicity violation")
	}
	// Break claim 3: make ORTS-OCTS depend on θ.
	copy(broken, rows)
	broken[3].ORTSOCTS *= 1.1
	if err := Fig5Shape(broken); err == nil {
		t.Error("shape check missed ORTS-OCTS θ-dependence")
	}
}

func TestWriteFig5(t *testing.T) {
	rows, err := Fig5([]float64{3, 8})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFig5(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 5", "N=3", "N=8", "ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5 output missing %q", want)
		}
	}
	var csv strings.Builder
	if err := WriteFig5CSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+24 {
		t.Errorf("CSV lines = %d, want header + 24 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "n,theta_deg") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestWriteGrid(t *testing.T) {
	base := quickCfg(core.ORTSOCTS, 0, 0)
	base.Duration = 200 * des.Millisecond
	cells, err := RunGrid(base, []core.Scheme{core.ORTSOCTS}, []int{3}, []float64{30}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Metric{MetricThroughput, MetricDelay, MetricCollision, MetricFairness} {
		var sb strings.Builder
		if err := WriteGrid(&sb, "Fig. test", cells, m); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "N=3") {
			t.Errorf("grid output for %v missing N block", m)
		}
	}
	var csv strings.Builder
	if err := WriteGridCSV(&csv, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "ORTS-OCTS,3,30,2,") {
		t.Errorf("grid CSV missing data row: %q", csv.String())
	}
	if err := WriteGrid(&strings.Builder{}, "x", nil, MetricDelay); err == nil {
		t.Error("empty grid should error")
	}
}

func TestMetricString(t *testing.T) {
	if MetricThroughput.String() == "" || Metric(99).String() == "" {
		t.Error("metric names must be non-empty")
	}
}

func TestWriteTable1(t *testing.T) {
	var sb strings.Builder
	WriteTable1(&sb)
	out := sb.String()
	for _, want := range []string{"20B", "14B", "1460", "50µs", "10µs", "31-1023", "192µs", "2 Mb/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

// TestPaperFig6Fig7Shape is the end-to-end reproduction check: on the
// paper's densest configuration, the all-directional scheme must beat the
// omni scheme on throughput and delay at narrow beamwidth while showing a
// higher collision ratio — the paper's central claims.
func TestPaperFig6Fig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(s core.Scheme) *BatchResult {
		cfg := SimConfig{Scheme: s, BeamwidthDeg: 30, N: 8, Seed: 50, Duration: des.Second}
		b, err := RunBatch(cfg, 6)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	omni := run(core.ORTSOCTS)
	dd := run(core.DRTSDCTS)
	if dd.ThroughputBps.Mean <= omni.ThroughputBps.Mean {
		t.Errorf("Fig. 6 shape: DRTS-DCTS %.0f ≤ ORTS-OCTS %.0f b/s at N=8 θ=30°",
			dd.ThroughputBps.Mean, omni.ThroughputBps.Mean)
	}
	if dd.DelaySec.Mean >= omni.DelaySec.Mean {
		t.Errorf("Fig. 7 shape: DRTS-DCTS delay %.1f ms ≥ ORTS-OCTS %.1f ms",
			dd.DelaySec.Mean*1000, omni.DelaySec.Mean*1000)
	}
	if dd.CollisionRatio.Mean <= omni.CollisionRatio.Mean {
		t.Errorf("collision shape: DRTS-DCTS %.3f ≤ ORTS-OCTS %.3f",
			dd.CollisionRatio.Mean, omni.CollisionRatio.Mean)
	}
}

func TestAblationSwitchesRun(t *testing.T) {
	base := quickCfg(core.DRTSDCTS, 3, 30)
	for name, mut := range map[string]func(*SimConfig){
		"capture":     func(c *SimConfig) { c.Capture = true },
		"nav oracle":  func(c *SimConfig) { c.NAVOracle = true },
		"eifs off":    func(c *SimConfig) { c.DisableEIFS = true },
		"small bytes": func(c *SimConfig) { c.PacketBytes = 512 },
	} {
		cfg := base
		mut(&cfg)
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.MeanThroughputBps() <= 0 {
			t.Errorf("%s: no progress", name)
		}
	}
}

// TestNAVOracleForcesMoreWaiting: with oracle virtual carrier sensing,
// out-of-beam neighbors defer as if transmissions were omni, so the
// all-directional scheme loses (part of) its reduced-waiting advantage.
// Aggregated over several topologies the oracle must not increase
// throughput.
func TestNAVOracleForcesMoreWaiting(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := SimConfig{Scheme: core.DRTSDCTS, BeamwidthDeg: 30, N: 5, Seed: 60, Duration: des.Second}
	plain, err := RunBatch(base, 5)
	if err != nil {
		t.Fatal(err)
	}
	oracleCfg := base
	oracleCfg.NAVOracle = true
	oracle, err := RunBatch(oracleCfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.ThroughputBps.Mean > plain.ThroughputBps.Mean*1.05 {
		t.Errorf("oracle NAV increased throughput: %.0f vs %.0f b/s",
			oracle.ThroughputBps.Mean, plain.ThroughputBps.Mean)
	}
}

func TestOfferedLoadLight(t *testing.T) {
	// At light load the network delivers essentially everything offered,
	// with low delay compared to saturation.
	cfg := quickCfg(core.ORTSOCTS, 3, 0)
	cfg.Duration = des.Second
	cfg.OfferedLoadBps = 50_000 // ≈ 4.3 pkts/s/node vs ~139 pkt/s link capacity
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	thr := res.MeanThroughputBps()
	if thr < 30_000 || thr > 60_000 {
		t.Errorf("light-load delivered %.0f b/s, want ≈ offered 50k", thr)
	}
	if d := res.MeanDelaySec(); d > 0.05 {
		t.Errorf("light-load delay = %v s, want well under saturation levels", d)
	}
}

func TestOfferedLoadSaturates(t *testing.T) {
	// Far beyond capacity, offered load stops mattering: delivered
	// throughput approaches the saturated value.
	mean := func(load float64) float64 {
		var sum float64
		const runs = 5
		for seed := int64(0); seed < runs; seed++ {
			cfg := quickCfg(core.ORTSOCTS, 3, 0)
			cfg.Duration = des.Second
			cfg.Seed = 100 + seed
			cfg.OfferedLoadBps = load
			res, err := RunSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.MeanThroughputBps()
		}
		return sum / runs
	}
	satThr := mean(0)    // saturated sources
	overThr := mean(5e6) // CBR far beyond capacity
	ratio := overThr / satThr
	if ratio < 0.6 || ratio > 1.4 {
		t.Errorf("overloaded CBR (%v b/s) vs saturated (%v b/s): ratio %v, want ≈ 1",
			overThr, satThr, ratio)
	}
}

func TestBasicAccessConfig(t *testing.T) {
	cfg := quickCfg(core.ORTSOCTS, 3, 0)
	cfg.BasicAccess = true
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every node still moves data, and nobody sent an RTS.
	if res.MeanThroughputBps() <= 0 {
		t.Error("basic access made no progress")
	}
	for i, st := range res.NodeStats {
		if st.RTSSent != 0 || st.CTSSent != 0 {
			t.Fatalf("node %d exchanged control frames under basic access", i)
		}
	}
}

func TestLoadSweep(t *testing.T) {
	base := quickCfg(core.ORTSOCTS, 3, 0)
	base.Duration = 400 * des.Millisecond
	cells, err := LoadSweep(base, []core.Scheme{core.ORTSOCTS}, []float64{50_000, 200_000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	var sb strings.Builder
	if err := WriteLoadSweep(&sb, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "offered Kb/s") {
		t.Errorf("load sweep output: %q", sb.String())
	}
	if _, err := LoadSweep(base, core.Schemes(), nil, 1); err == nil {
		t.Error("empty loads should be rejected")
	}
	if _, err := LoadSweep(base, core.Schemes(), []float64{-1}, 1); err == nil {
		t.Error("negative load should be rejected")
	}
	if err := WriteLoadSweep(&strings.Builder{}, nil); err == nil {
		t.Error("empty sweep should be rejected")
	}
	if len(PaperLoads()) < 4 {
		t.Error("default load sweep too small")
	}
}

// TestORTSDCTSSimulates: the extension scheme runs end-to-end and — as
// the extended analysis predicts — does not beat ORTS-OCTS.
func TestORTSDCTSSimulates(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(s core.Scheme) float64 {
		cfg := SimConfig{Scheme: s, BeamwidthDeg: 30, N: 5, Seed: 70, Duration: des.Second}
		b, err := RunBatch(cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		return b.ThroughputBps.Mean
	}
	omni := run(core.ORTSOCTS)
	fourth := run(core.ORTSDCTS)
	if fourth > omni*1.15 {
		t.Errorf("ORTS-DCTS %.0f b/s should not meaningfully beat ORTS-OCTS %.0f b/s", fourth, omni)
	}
	if fourth <= 0 {
		t.Error("ORTS-DCTS made no progress")
	}
}

func TestMobilityRuns(t *testing.T) {
	cfg := quickCfg(core.DRTSDCTS, 3, 30)
	cfg.MaxSpeed = 0.2
	cfg.RefreshInterval = 500 * des.Millisecond
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanThroughputBps() <= 0 {
		t.Error("mobile network made no progress")
	}
}

// TestMobilityHurtsNarrowBeams: a fast walk with stale (1 s old)
// bearings must cost the 30°-beam DRTS-DCTS scheme throughput relative
// to the static case, while ORTS-OCTS (no aiming) loses much less.
func TestMobilityHurtsNarrowBeams(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(s core.Scheme, speed float64) float64 {
		cfg := SimConfig{
			Scheme: s, BeamwidthDeg: 30, N: 5, Seed: 80,
			Duration: des.Second, MaxSpeed: speed, RefreshInterval: des.Second,
		}
		b, err := RunBatch(cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		return b.ThroughputBps.Mean
	}
	ddStatic := run(core.DRTSDCTS, 0)
	ddFast := run(core.DRTSDCTS, 1.0)
	if ddFast >= ddStatic {
		t.Errorf("fast mobility should hurt narrow-beam DRTS-DCTS: static %.0f, fast %.0f", ddStatic, ddFast)
	}
	ddLoss := 1 - ddFast/ddStatic
	omniStatic := run(core.ORTSOCTS, 0)
	omniFast := run(core.ORTSOCTS, 1.0)
	omniLoss := 1 - omniFast/omniStatic
	if ddLoss <= omniLoss {
		t.Errorf("narrow beams should be more speed-sensitive: DD loss %.2f, omni loss %.2f", ddLoss, omniLoss)
	}
}

func TestMobilitySweep(t *testing.T) {
	base := quickCfg(core.DRTSDCTS, 3, 30)
	base.Duration = 300 * des.Millisecond
	cells, err := MobilitySweep(base, []core.Scheme{core.DRTSDCTS}, []float64{0, 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	var sb strings.Builder
	if err := WriteMobilitySweep(&sb, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "speed R/s") {
		t.Errorf("mobility output: %q", sb.String())
	}
	if _, err := MobilitySweep(base, core.Schemes(), nil, 1); err == nil {
		t.Error("empty speeds should be rejected")
	}
	if _, err := MobilitySweep(base, core.Schemes(), []float64{-1}, 1); err == nil {
		t.Error("negative speed should be rejected")
	}
	if err := WriteMobilitySweep(&strings.Builder{}, nil); err == nil {
		t.Error("empty sweep should be rejected")
	}
	if len(PaperSpeeds()) < 4 {
		t.Error("default speed sweep too small")
	}
}

func TestSampleDelays(t *testing.T) {
	cfg := quickCfg(core.ORTSOCTS, 3, 0)
	cfg.Duration = des.Second
	cfg.SampleDelays = true
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DelaySamplesSec) == 0 {
		t.Fatal("no delay samples collected")
	}
	p50 := res.DelayPercentileSec(50)
	p99 := res.DelayPercentileSec(99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("percentiles disordered: p50=%v p99=%v", p50, p99)
	}
	// The median of sampled delays must bracket the per-node mean delay.
	mean := res.MeanDelaySec()
	if p50 > mean*10 || p99 < mean/10 {
		t.Errorf("samples inconsistent with mean %v: p50=%v p99=%v", mean, p50, p99)
	}
	// Without the flag no samples appear.
	cfg.SampleDelays = false
	res2, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.DelaySamplesSec) != 0 {
		t.Error("delay samples collected without the flag")
	}
	if res2.DelayPercentileSec(50) != 0 {
		t.Error("percentile without samples should be 0")
	}
}

// TestFig5Sensitivity probes the paper's claim that "similar results can
// be readily obtained for other configurations". The reproduction finds
// the claim holds with a caveat: a directional-RTS scheme is always best
// at narrow beamwidths, but WHICH one flips with the data length — short
// data packets (the paper's l_data=100 regime and below) favor the
// all-directional DRTS-DCTS, while long data packets (l_data >= 200)
// favor DRTS-OCTS, whose omni CTS protects the now-dominant data frame.
func TestFig5Sensitivity(t *testing.T) {
	series, err := Fig5Sensitivity(5, []int{50, 100, 200, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4", len(series))
	}
	for ld, rows := range series {
		narrow := rows[0] // 15°
		best := narrow.DRTSDCTS
		if narrow.DRTSOCTS > best {
			best = narrow.DRTSOCTS
		}
		if best <= narrow.ORTSOCTS {
			t.Errorf("l_data=%d: no directional scheme beats omni at 15° (DD=%v DO=%v ORTS=%v)",
				ld, narrow.DRTSDCTS, narrow.DRTSOCTS, narrow.ORTSOCTS)
		}
	}
	// Short data: the paper's regime, DRTS-DCTS on top.
	for _, ld := range []int{50, 100} {
		narrow := series[ld][0]
		if !(narrow.DRTSDCTS > narrow.DRTSOCTS) {
			t.Errorf("l_data=%d: DRTS-DCTS (%v) should lead DRTS-OCTS (%v) at 15°",
				ld, narrow.DRTSDCTS, narrow.DRTSOCTS)
		}
	}
	// Long data: the crossover — protecting the data frame wins.
	for _, ld := range []int{200, 400} {
		narrow := series[ld][0]
		if !(narrow.DRTSOCTS > narrow.DRTSDCTS) {
			t.Errorf("l_data=%d: DRTS-OCTS (%v) should overtake DRTS-DCTS (%v) at 15°",
				ld, narrow.DRTSOCTS, narrow.DRTSDCTS)
		}
	}
	if _, err := Fig5Sensitivity(5, nil); err == nil {
		t.Error("empty lengths should be rejected")
	}
	if _, err := Fig5Sensitivity(5, []int{0}); err == nil {
		t.Error("zero data length should be rejected")
	}
}

// TestSINRPreservesSchemeOrdering: the paper's headline comparison at
// N=8, 30° must survive the switch to the physical receiver model — the
// conclusion is not an artifact of pessimistic overlap collisions.
func TestSINRPreservesSchemeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(s core.Scheme) float64 {
		cfg := SimConfig{Scheme: s, BeamwidthDeg: 30, N: 8, Seed: 90, Duration: des.Second, SINR: true}
		b, err := RunBatch(cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		return b.ThroughputBps.Mean
	}
	dd := run(core.DRTSDCTS)
	omni := run(core.ORTSOCTS)
	if dd <= omni {
		t.Errorf("SINR model: DRTS-DCTS %.0f should still beat ORTS-OCTS %.0f b/s", dd, omni)
	}
}

type memFile struct {
	strings.Builder
	closed bool
}

func (m *memFile) Close() error { m.closed = true; return nil }

func TestFigureCharts(t *testing.T) {
	rows, err := Fig5([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	chart, err := Fig5Chart(rows, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(chart.Series) != 3 {
		t.Errorf("fig5 chart series = %d, want 3", len(chart.Series))
	}
	if _, err := Fig5Chart(rows, 99); err == nil {
		t.Error("unknown N should fail")
	}

	base := quickCfg(core.ORTSOCTS, 0, 0)
	base.Duration = 200 * des.Millisecond
	cells, err := RunGrid(base, core.Schemes(), []int{3}, []float64{30, 150}, 2)
	if err != nil {
		t.Fatal(err)
	}
	gchart, err := GridChart(cells, 3, MetricThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if len(gchart.Series) != 3 {
		t.Errorf("grid chart series = %d, want 3", len(gchart.Series))
	}
	for _, s := range gchart.Series {
		if len(s.X) != 2 || s.YLow == nil {
			t.Errorf("series %q: x=%d err-bars=%v", s.Name, len(s.X), s.YLow != nil)
		}
	}
	if _, err := GridChart(cells, 42, MetricDelay); err == nil {
		t.Error("unknown N should fail")
	}

	// End-to-end SVG emission through the creator hook.
	files := map[string]*memFile{}
	create := func(name string) (io.WriteCloser, error) {
		f := &memFile{}
		files[name] = f
		return f, nil
	}
	if err := WriteFigureSVGs(create, rows, cells); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig5_n3.svg", "fig6_n3.svg", "fig7_n3.svg"} {
		f, ok := files[want]
		if !ok {
			t.Errorf("missing artifact %s (have %v)", want, keys(files))
			continue
		}
		if !f.closed {
			t.Errorf("%s not closed", want)
		}
		if !strings.Contains(f.String(), "<svg") {
			t.Errorf("%s is not SVG", want)
		}
	}
}

func keys(m map[string]*memFile) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSpatialReuseFactor quantifies the paper's central mechanism
// directly: at N=8 with 30° beams, the all-directional scheme sustains
// strictly more simultaneous on-air time than omni-directional 802.11.
func TestSpatialReuseFactor(t *testing.T) {
	run := func(s core.Scheme) *SimResult {
		cfg := SimConfig{Scheme: s, BeamwidthDeg: 30, N: 8, Seed: 44, Duration: des.Second}
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dd := run(core.DRTSDCTS)
	omni := run(core.ORTSOCTS)
	if dd.SpatialReuse <= omni.SpatialReuse {
		t.Errorf("spatial reuse: DRTS-DCTS %.2f should exceed ORTS-OCTS %.2f",
			dd.SpatialReuse, omni.SpatialReuse)
	}
	if dd.SpatialReuse <= 1 {
		t.Errorf("directional N=8 network should sustain concurrency > 1, got %.2f", dd.SpatialReuse)
	}
	// Airtime decomposition sanity: shares sum to 1, data dominates.
	var sum float64
	for _, v := range dd.AirtimeShare {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("airtime shares sum to %v", sum)
	}
	if dd.AirtimeShare["DATA"] < 0.5 {
		t.Errorf("data should dominate airtime, got %v", dd.AirtimeShare)
	}
}

func TestSimLengths(t *testing.T) {
	l := SimLengths()
	// 272 µs / 20 µs = 13.6 → 14; 248/20 = 12.4 → 12; 6032/20 = 301.6 → 302.
	if l.RTS != 14 || l.CTS != 12 || l.ACK != 12 || l.Data != 302 {
		t.Errorf("SimLengths = %+v, want 14/12/302/12", l)
	}
}

func TestSpearmanRank(t *testing.T) {
	perfect := []ModelVsSimRow{
		{Analytical: 1, Simulated: 10},
		{Analytical: 2, Simulated: 20},
		{Analytical: 3, Simulated: 30},
	}
	if got := SpearmanRank(perfect); got != 1 {
		t.Errorf("perfect agreement rank = %v, want 1", got)
	}
	inverted := []ModelVsSimRow{
		{Analytical: 1, Simulated: 30},
		{Analytical: 2, Simulated: 20},
		{Analytical: 3, Simulated: 10},
	}
	if got := SpearmanRank(inverted); got != -1 {
		t.Errorf("inverted rank = %v, want -1", got)
	}
	if got := SpearmanRank(nil); got != 1 {
		t.Errorf("degenerate rank = %v, want 1", got)
	}
}

// TestModelVsSimAgreement is the quantified version of the paper's
// Section 4 conclusion: on the clearest slice of the grid (N=8), the
// analytical model's ranking of (scheme, beamwidth) cells must agree
// positively with the simulator's.
func TestModelVsSimAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := SimConfig{Seed: 30, Duration: des.Second}
	rows, err := ModelVsSim(base, []int{8}, []float64{30, 150}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	if rho := SpearmanRank(rows); rho <= 0.3 {
		t.Errorf("model-sim rank correlation = %.3f, want clearly positive", rho)
	}
	var sb strings.Builder
	if err := WriteModelVsSim(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Spearman") {
		t.Error("report missing correlation line")
	}
	if err := WriteModelVsSim(&strings.Builder{}, nil); err == nil {
		t.Error("empty table should fail")
	}
}

func TestReuseStudy(t *testing.T) {
	base := quickCfg(core.ORTSOCTS, 0, 0)
	base.Duration = 300 * des.Millisecond
	cells, err := ReuseStudy(base, []core.Scheme{core.ORTSOCTS, core.DRTSDCTS}, 5, []float64{30}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	var omni, dd ReuseCell
	for _, c := range cells {
		switch c.Scheme {
		case core.ORTSOCTS:
			omni = c
		case core.DRTSDCTS:
			dd = c
		}
		if c.Reuse.Mean <= 0 {
			t.Errorf("%v: reuse factor %v", c.Scheme, c.Reuse.Mean)
		}
		if c.DataShare.Mean <= 0 || c.DataShare.Mean >= 1 {
			t.Errorf("%v: data share %v", c.Scheme, c.DataShare.Mean)
		}
	}
	if dd.Reuse.Mean <= omni.Reuse.Mean {
		t.Errorf("DRTS-DCTS reuse %v should exceed omni %v", dd.Reuse.Mean, omni.Reuse.Mean)
	}
	var sb strings.Builder
	if err := WriteReuseStudy(&sb, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "reuse factor") {
		t.Error("report header missing")
	}
	if _, err := ReuseStudy(base, core.Schemes(), 5, []float64{30}, 0); err == nil {
		t.Error("zero topologies should fail")
	}
	if err := WriteReuseStudy(&strings.Builder{}, nil); err == nil {
		t.Error("empty study should fail")
	}
}

func TestDelayCDF(t *testing.T) {
	base := quickCfg(core.ORTSOCTS, 3, 0)
	base.Duration = des.Second
	schemes := []core.Scheme{core.ORTSOCTS, core.DRTSDCTS}
	base.BeamwidthDeg = 90
	rows, err := DelayCDF(base, schemes, []float64{50, 95, 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, s := range schemes {
		p50 := rows[0].DelayMsByScheme[s.String()]
		p99 := rows[2].DelayMsByScheme[s.String()]
		if p50 <= 0 || p99 < p50 {
			t.Errorf("%v: p50=%v p99=%v", s, p50, p99)
		}
	}
	var sb strings.Builder
	if err := WriteDelayCDF(&sb, rows, schemes); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "percentile") {
		t.Error("CDF header missing")
	}
	if _, err := DelayCDF(base, schemes, nil); err == nil {
		t.Error("empty percentiles should fail")
	}
	if err := WriteDelayCDF(&strings.Builder{}, nil, schemes); err == nil {
		t.Error("empty CDF should fail")
	}
}

// TestAdaptiveRTSHelpsUnderMobility: with fast motion and coarse (1 s)
// refreshes, the adaptive omni-fallback + piggybacked locations recover
// part of what stale bearings cost the all-directional scheme.
func TestAdaptiveRTSHelpsUnderMobility(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(adaptive des.Time) float64 {
		cfg := SimConfig{
			Scheme: core.DRTSDCTS, BeamwidthDeg: 30, N: 5, Seed: 80,
			Duration: des.Second, MaxSpeed: 1.0, RefreshInterval: des.Second,
			AdaptiveRTS: adaptive,
		}
		b, err := RunBatch(cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		return b.ThroughputBps.Mean
	}
	plain := run(0)
	adaptive := run(200 * des.Millisecond)
	if adaptive <= plain {
		t.Errorf("adaptive RTS under mobility: %.0f b/s should beat plain %.0f b/s", adaptive, plain)
	}
}

func TestJSONWriters(t *testing.T) {
	rows, err := Fig5([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteFig5JSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]float64
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("fig5 JSON invalid: %v", err)
	}
	if len(decoded) != 12 || decoded[0]["thetaDeg"] != 15 {
		t.Errorf("fig5 JSON content: %v", decoded[0])
	}

	base := quickCfg(core.ORTSOCTS, 0, 0)
	base.Duration = 200 * des.Millisecond
	cells, err := RunGrid(base, []core.Scheme{core.ORTSOCTS}, []int{3}, []float64{30}, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteGridJSON(&buf, cells); err != nil {
		t.Fatal(err)
	}
	var grid []map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &grid); err != nil {
		t.Fatalf("grid JSON invalid: %v", err)
	}
	if len(grid) != 1 || grid[0]["scheme"] != "ORTS-OCTS" {
		t.Errorf("grid JSON content: %v", grid)
	}
	if _, ok := grid[0]["throughputBps"].(map[string]any); !ok {
		t.Error("grid JSON missing throughput summary")
	}
	if err := WriteGridJSON(&strings.Builder{}, nil); err == nil {
		t.Error("empty grid JSON should fail")
	}

	mvs := []ModelVsSimRow{{Scheme: core.DRTSDCTS, N: 8, BeamwidthDeg: 30, Analytical: 0.3, Simulated: 0.2}}
	buf.Reset()
	if err := WriteModelVsSimJSON(&buf, mvs); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("model-vs-sim JSON invalid: %v", err)
	}
	if _, ok := doc["spearmanRank"]; !ok {
		t.Error("model-vs-sim JSON missing correlation")
	}
	if err := WriteModelVsSimJSON(&strings.Builder{}, nil); err == nil {
		t.Error("empty model-vs-sim JSON should fail")
	}
}

// TestBatchParallelDeterminism: RunBatch fans out across goroutines, but
// every per-topology simulation owns its scheduler and seed, so repeated
// batches must be bit-identical regardless of goroutine interleaving.
func TestBatchParallelDeterminism(t *testing.T) {
	cfg := quickCfg(core.DRTSOCTS, 3, 90)
	cfg.Duration = 300 * des.Millisecond
	a, err := RunBatch(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBatch(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("parallel batches differ:\n%+v\n%+v", a, b)
	}
}
