package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/mac"
)

// WriteFig5 renders the analytical Fig. 5 table to w, one block per N.
func WriteFig5(w io.Writer, rows []Fig5Row) error {
	var lastN = -1.0
	for _, r := range rows {
		if r.N != lastN {
			if lastN >= 0 {
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "Fig. 5 — max throughput vs beamwidth (N=%g, l_rts=l_cts=l_ack=5, l_data=100)\n", r.N)
			fmt.Fprintf(w, "%10s %12s %12s %12s\n", "theta_deg", "ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS")
			lastN = r.N
		}
		fmt.Fprintf(w, "%10.0f %12.4f %12.4f %12.4f\n", r.BeamwidthDeg, r.ORTSOCTS, r.DRTSDCTS, r.DRTSOCTS)
	}
	return nil
}

// WriteFig5CSV renders the Fig. 5 table as CSV.
func WriteFig5CSV(w io.Writer, rows []Fig5Row) error {
	fmt.Fprintln(w, "n,theta_deg,orts_octs,drts_dcts,drts_octs")
	for _, r := range rows {
		fmt.Fprintf(w, "%g,%.0f,%.6f,%.6f,%.6f\n", r.N, r.BeamwidthDeg, r.ORTSOCTS, r.DRTSDCTS, r.DRTSOCTS)
	}
	return nil
}

// Metric selects which batch statistic a grid report shows.
type Metric int

// Metrics available from a simulation grid.
const (
	MetricThroughput Metric = iota + 1 // Fig. 6
	MetricDelay                        // Fig. 7
	MetricCollision                    // Section 4 collision-ratio study
	MetricFairness                     // Section 4 fairness observations
)

var metricNames = map[Metric]string{
	MetricThroughput: "throughput (Kb/s per inner node)",
	MetricDelay:      "delay (ms)",
	MetricCollision:  "collision ratio",
	MetricFairness:   "Jain fairness index",
}

// String names the metric.
func (m Metric) String() string {
	if n, ok := metricNames[m]; ok {
		return n
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// value extracts (mean, min, max) of the metric in display units.
func (m Metric) value(c GridCell) (mean, min, max float64) {
	switch m {
	case MetricThroughput:
		s := c.Batch.ThroughputBps
		return s.Mean / 1000, s.Min / 1000, s.Max / 1000
	case MetricDelay:
		s := c.Batch.DelaySec
		return s.Mean * 1000, s.Min * 1000, s.Max * 1000
	case MetricCollision:
		s := c.Batch.CollisionRatio
		return s.Mean, s.Min, s.Max
	case MetricFairness:
		s := c.Batch.Jain
		return s.Mean, s.Min, s.Max
	default:
		return 0, 0, 0
	}
}

// WriteGrid renders a Fig. 6/7-style table: one block per N, one row per
// beamwidth, one column per scheme with "mean [min,max]" over topologies.
func WriteGrid(w io.Writer, title string, cells []GridCell, m Metric) error {
	if len(cells) == 0 {
		return fmt.Errorf("experiments: empty grid")
	}
	byN := map[int]map[float64]map[core.Scheme]GridCell{}
	var ns []int
	var beams []float64
	var schemes []core.Scheme
	seenN := map[int]bool{}
	seenB := map[float64]bool{}
	seenS := map[core.Scheme]bool{}
	for _, c := range cells {
		if !seenN[c.N] {
			seenN[c.N] = true
			ns = append(ns, c.N)
		}
		if !seenB[c.BeamwidthDeg] {
			seenB[c.BeamwidthDeg] = true
			beams = append(beams, c.BeamwidthDeg)
		}
		if !seenS[c.Scheme] {
			seenS[c.Scheme] = true
			schemes = append(schemes, c.Scheme)
		}
		if byN[c.N] == nil {
			byN[c.N] = map[float64]map[core.Scheme]GridCell{}
		}
		if byN[c.N][c.BeamwidthDeg] == nil {
			byN[c.N][c.BeamwidthDeg] = map[core.Scheme]GridCell{}
		}
		byN[c.N][c.BeamwidthDeg][c.Scheme] = c
	}
	runs := cells[0].Batch.Runs
	for _, n := range ns {
		fmt.Fprintf(w, "%s — %s, N=%d (%d topologies)\n", title, m, n, runs)
		fmt.Fprintf(w, "%10s", "theta_deg")
		for _, s := range schemes {
			fmt.Fprintf(w, " %26s", s)
		}
		fmt.Fprintln(w)
		for _, b := range beams {
			fmt.Fprintf(w, "%10.0f", b)
			for _, s := range schemes {
				c, ok := byN[n][b][s]
				if !ok {
					fmt.Fprintf(w, " %26s", "-")
					continue
				}
				mean, lo, hi := m.value(c)
				fmt.Fprintf(w, " %26s", fmt.Sprintf("%.4g [%.4g,%.4g]", mean, lo, hi))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteGridCSV renders a grid as CSV with all four metrics.
func WriteGridCSV(w io.Writer, cells []GridCell) error {
	fmt.Fprintln(w, "scheme,n,theta_deg,runs,"+
		"throughput_kbps_mean,throughput_kbps_min,throughput_kbps_max,"+
		"delay_ms_mean,delay_ms_min,delay_ms_max,"+
		"collision_ratio_mean,jain_mean")
	for _, c := range cells {
		b := c.Batch
		fmt.Fprintf(w, "%s,%d,%.0f,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.4f,%.4f\n",
			strings.ReplaceAll(c.Scheme.String(), ",", ""), c.N, c.BeamwidthDeg, b.Runs,
			b.ThroughputBps.Mean/1000, b.ThroughputBps.Min/1000, b.ThroughputBps.Max/1000,
			b.DelaySec.Mean*1000, b.DelaySec.Min*1000, b.DelaySec.Max*1000,
			b.CollisionRatio.Mean, b.Jain.Mean)
	}
	return nil
}

// WriteTable1 prints the IEEE 802.11 configuration constants used by the
// simulator (the paper's Table 1), for verification against the paper.
func WriteTable1(w io.Writer) {
	cfg := mac.DefaultConfig(core.ORTSOCTS, 0)
	fmt.Fprintln(w, "Table 1 — IEEE 802.11 protocol configuration parameters")
	fmt.Fprintf(w, "  RTS %dB  CTS %dB  data %dB  ACK %dB\n", cfg.RTSBytes, cfg.CTSBytes, 1460, cfg.ACKBytes)
	fmt.Fprintf(w, "  DIFS %v  SIFS %v  slot %v\n", cfg.DIFS, cfg.SIFS, cfg.Slot)
	fmt.Fprintf(w, "  contention window %d-%d\n", cfg.CWMin, cfg.CWMax)
	fmt.Fprintln(w, "  sync time 192µs  propagation delay 1µs  bit rate 2 Mb/s")
}
