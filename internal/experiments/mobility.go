package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// MobilityCell is one point of a mobility sweep: one scheme at one
// maximum node speed, aggregated over topologies.
type MobilityCell struct {
	Scheme   core.Scheme
	MaxSpeed float64 // transmission ranges per second
	Batch    *BatchResult
}

// MobilitySweep runs the extension study the paper's future-work section
// gestures at: node speed swept from static to fast random-waypoint
// motion, with neighbor locations refreshed at base.RefreshInterval.
// Directional schemes aim beams using snapshots up to one refresh
// interval old, so narrow beams increasingly miss moving receivers while
// the omni scheme is unaffected by location error.
func MobilitySweep(base SimConfig, schemes []core.Scheme, speeds []float64, topologies int) ([]MobilityCell, error) {
	if len(speeds) == 0 {
		return nil, fmt.Errorf("experiments: mobility sweep needs at least one speed")
	}
	var cells []MobilityCell
	for _, v := range speeds {
		if v < 0 {
			return nil, fmt.Errorf("experiments: speed must be non-negative, got %v", v)
		}
		for _, s := range schemes {
			cfg := base
			cfg.Scheme = s
			cfg.MaxSpeed = v
			batch, err := RunBatch(cfg, topologies)
			if err != nil {
				return nil, fmt.Errorf("mobility sweep %v at speed %v: %w", s, v, err)
			}
			cells = append(cells, MobilityCell{Scheme: s, MaxSpeed: v, Batch: batch})
		}
	}
	return cells, nil
}

// PaperSpeeds returns a default sweep: static, pedestrian, vehicular
// (in transmission ranges per second; with R = 250 m, 0.04 R/s ≈ 10 m/s).
func PaperSpeeds() []float64 {
	return []float64{0, 0.02, 0.05, 0.1, 0.2, 0.5}
}

// WriteMobilitySweep renders the sweep: one row per speed, columns per
// scheme with delivered throughput (and collision ratio).
func WriteMobilitySweep(w io.Writer, cells []MobilityCell) error {
	if len(cells) == 0 {
		return fmt.Errorf("experiments: empty mobility sweep")
	}
	var (
		speeds  []float64
		schemes []core.Scheme
		seenV   = map[float64]bool{}
		seenS   = map[core.Scheme]bool{}
		byKey   = map[float64]map[core.Scheme]MobilityCell{}
	)
	for _, c := range cells {
		if !seenV[c.MaxSpeed] {
			seenV[c.MaxSpeed] = true
			speeds = append(speeds, c.MaxSpeed)
		}
		if !seenS[c.Scheme] {
			seenS[c.Scheme] = true
			schemes = append(schemes, c.Scheme)
		}
		if byKey[c.MaxSpeed] == nil {
			byKey[c.MaxSpeed] = map[core.Scheme]MobilityCell{}
		}
		byKey[c.MaxSpeed][c.Scheme] = c
	}
	fmt.Fprintf(w, "Mobility sweep — delivered Kb/s per node (collision ratio), %d topologies per point\n",
		cells[0].Batch.Runs)
	fmt.Fprintf(w, "%14s", "speed R/s")
	for _, s := range schemes {
		fmt.Fprintf(w, " %22s", s)
	}
	fmt.Fprintln(w)
	for _, v := range speeds {
		fmt.Fprintf(w, "%14.2f", v)
		for _, s := range schemes {
			c, ok := byKey[v][s]
			if !ok {
				fmt.Fprintf(w, " %22s", "-")
				continue
			}
			fmt.Fprintf(w, " %22s", fmt.Sprintf("%.1f (%.3f)",
				c.Batch.ThroughputBps.Mean/1000, c.Batch.CollisionRatio.Mean))
		}
		fmt.Fprintln(w)
	}
	return nil
}
