package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// Fig5Row is one beamwidth point of the analytical Fig. 5 sweep: the
// maximum achievable normalized throughput of each scheme.
type Fig5Row struct {
	BeamwidthDeg float64
	N            float64
	ORTSOCTS     float64
	DRTSDCTS     float64
	DRTSOCTS     float64
}

// Fig5 computes the paper's Fig. 5 series (maximum throughput over the
// attempt probability p, per beamwidth 15°..180°) for each density in ns,
// using the Section 3 packet lengths (control 5τ, data 100τ).
func Fig5(ns []float64) ([]Fig5Row, error) {
	lengths := core.PaperLengths()
	thetas := core.PaperBeamwidths()
	rows := make([]Fig5Row, 0, len(ns)*len(thetas))
	for _, n := range ns {
		curves := make(map[core.Scheme][]float64, 3)
		for _, s := range core.Schemes() {
			c, err := core.Curve(s, n, lengths, thetas)
			if err != nil {
				return nil, fmt.Errorf("fig5 N=%v %v: %w", n, s, err)
			}
			curves[s] = c
		}
		for i, th := range thetas {
			rows = append(rows, Fig5Row{
				BeamwidthDeg: math.Round(th * 180 / math.Pi),
				N:            n,
				ORTSOCTS:     curves[core.ORTSOCTS][i],
				DRTSDCTS:     curves[core.DRTSDCTS][i],
				DRTSOCTS:     curves[core.DRTSOCTS][i],
			})
		}
	}
	return rows, nil
}

// Fig5Shape verifies the published qualitative claims on a computed
// Fig. 5 table and returns an error describing the first violation:
//
//  1. DRTS-DCTS beats both other schemes at the narrowest beamwidth;
//  2. DRTS-DCTS degrades monotonically (within tolerance) as θ grows;
//  3. ORTS-OCTS is flat in θ.
func Fig5Shape(rows []Fig5Row) error {
	byN := make(map[float64][]Fig5Row)
	for _, r := range rows {
		byN[r.N] = append(byN[r.N], r)
	}
	// Check densities in ascending order so the first reported violation
	// is the same on every run (map iteration order is randomized).
	ns := make([]float64, 0, len(byN))
	for n := range byN {
		ns = append(ns, n)
	}
	sort.Float64s(ns)
	for _, n := range ns {
		series := byN[n]
		first := series[0]
		if !(first.DRTSDCTS > first.DRTSOCTS && first.DRTSDCTS > first.ORTSOCTS) {
			return fmt.Errorf("fig5 N=%v: DRTS-DCTS not best at θ=%v°", n, first.BeamwidthDeg)
		}
		for i := 1; i < len(series); i++ {
			if series[i].DRTSDCTS > series[i-1].DRTSDCTS+1e-9 {
				return fmt.Errorf("fig5 N=%v: DRTS-DCTS increases at θ=%v°", n, series[i].BeamwidthDeg)
			}
			if math.Abs(series[i].ORTSOCTS-first.ORTSOCTS) > 1e-9 {
				return fmt.Errorf("fig5 N=%v: ORTS-OCTS depends on θ", n)
			}
		}
	}
	return nil
}

// Fig5Sensitivity verifies the paper's Section 3 remark that "similar
// results can be readily obtained for other configurations": it computes
// the Fig. 5 sweep for alternative data-packet lengths (control packets
// stay at 5 slots) and returns the rows keyed by data length. Callers can
// pass each series through Fig5Shape.
func Fig5Sensitivity(n float64, dataLens []int) (map[int][]Fig5Row, error) {
	if len(dataLens) == 0 {
		return nil, fmt.Errorf("fig5 sensitivity: need at least one data length")
	}
	thetas := core.PaperBeamwidths()
	out := make(map[int][]Fig5Row, len(dataLens))
	for _, ld := range dataLens {
		lengths := core.Lengths{RTS: 5, CTS: 5, Data: ld, ACK: 5}
		if err := lengths.Validate(); err != nil {
			return nil, err
		}
		curves := make(map[core.Scheme][]float64, 3)
		for _, s := range core.Schemes() {
			c, err := core.Curve(s, n, lengths, thetas)
			if err != nil {
				return nil, fmt.Errorf("fig5 sensitivity l_data=%d %v: %w", ld, s, err)
			}
			curves[s] = c
		}
		rows := make([]Fig5Row, 0, len(thetas))
		for i, th := range thetas {
			rows = append(rows, Fig5Row{
				BeamwidthDeg: math.Round(th * 180 / math.Pi),
				N:            n,
				ORTSOCTS:     curves[core.ORTSOCTS][i],
				DRTSDCTS:     curves[core.DRTSDCTS][i],
				DRTSOCTS:     curves[core.DRTSOCTS][i],
			})
		}
		out[ld] = rows
	}
	return out, nil
}
