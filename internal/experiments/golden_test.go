package experiments

// Kernel-determinism goldens: the DES scheduler and PHY channel are
// performance-critical and get optimized aggressively (typed event heap,
// timer free list, spatial indexing). None of that is allowed to change
// simulation results — not even in the last bit of a float. These tests
// pin the complete SimResult (per-node throughput, delays, collision
// ratios, fairness, airtime shares and every raw MAC counter) for a
// spread of configurations to JSON goldens generated from the reference
// implementation.
//
// encoding/json renders float64 with strconv's shortest round-trippable
// form, so byte-equality of the canonical JSON is bit-equality of the
// results. Regenerate with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestKernelDeterminismGolden

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
)

// goldenCases covers both directional schemes and the omni baseline at
// two densities, plus the configurations that exercise the optimized
// code paths hardest: mobility (spatial-grid invalidation via SetPos),
// SINR (the received-power computation), and the NAV oracle (out-of-beam
// scheduling).
func goldenCases() map[string]SimConfig {
	base := func(s core.Scheme, n int, beam float64) SimConfig {
		return SimConfig{
			Scheme:       s,
			BeamwidthDeg: beam,
			N:            n,
			Seed:         7,
			Duration:     300 * des.Millisecond,
		}
	}
	cases := map[string]SimConfig{
		"drtsdcts_n3_b90":  base(core.DRTSDCTS, 3, 90),
		"drtsdcts_n8_b30":  base(core.DRTSDCTS, 8, 30),
		"drtsocts_n3_b150": base(core.DRTSOCTS, 3, 150),
		"ortsocts_n8":      base(core.ORTSOCTS, 8, 0),
	}
	mob := base(core.DRTSDCTS, 5, 90)
	mob.MaxSpeed = 0.5
	mob.RefreshInterval = 100 * des.Millisecond
	cases["mobility_n5_b90"] = mob

	sinr := base(core.DRTSDCTS, 5, 30)
	sinr.SINR = true
	cases["sinr_n5_b30"] = sinr

	oracle := base(core.DRTSDCTS, 5, 30)
	oracle.NAVOracle = true
	cases["navoracle_n5_b30"] = oracle
	return cases
}

// canonicalJSON renders a SimResult deterministically (json sorts map
// keys, slices keep order).
func canonicalJSON(t *testing.T, res *SimResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(res); err != nil {
		t.Fatalf("encode result: %v", err)
	}
	return buf.Bytes()
}

func TestKernelDeterminismGolden(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for name, cfg := range goldenCases() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := RunSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := canonicalJSON(t, res)
			path := filepath.Join("testdata", fmt.Sprintf("golden_%s.json", name))
			if update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to generate): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("simulation result diverged from golden %s\n"+
					"the optimized kernel must be bit-identical to the reference implementation", path)
			}
		})
	}
}
