package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/plot"
)

// Fig5Chart builds the Fig. 5 line chart for one density from the
// computed rows (other densities in the input are ignored).
func Fig5Chart(rows []Fig5Row, n float64) (*plot.Chart, error) {
	var x, orts, dd, do []float64
	for _, r := range rows {
		if r.N != n {
			continue
		}
		x = append(x, r.BeamwidthDeg)
		orts = append(orts, r.ORTSOCTS)
		dd = append(dd, r.DRTSDCTS)
		do = append(do, r.DRTSOCTS)
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("experiments: no Fig. 5 rows for N=%v", n)
	}
	return &plot.Chart{
		Title:  fmt.Sprintf("Fig. 5 — max throughput vs beamwidth (N=%g)", n),
		XLabel: "beamwidth (degrees)",
		YLabel: "normalized max throughput",
		Series: []plot.Series{
			{Name: "ORTS-OCTS", X: x, Y: orts},
			{Name: "DRTS-DCTS", X: x, Y: dd},
			{Name: "DRTS-OCTS", X: x, Y: do},
		},
	}, nil
}

// GridChart builds a Fig. 6/7-style chart for one density from grid
// cells: beamwidth on x, one series per scheme, min–max range whiskers
// over the topologies (the paper's vertical lines).
func GridChart(cells []GridCell, n int, m Metric) (*plot.Chart, error) {
	bySch := map[core.Scheme]map[float64]GridCell{}
	var beams []float64
	seenB := map[float64]bool{}
	for _, c := range cells {
		if c.N != n {
			continue
		}
		if bySch[c.Scheme] == nil {
			bySch[c.Scheme] = map[float64]GridCell{}
		}
		bySch[c.Scheme][c.BeamwidthDeg] = c
		if !seenB[c.BeamwidthDeg] {
			seenB[c.BeamwidthDeg] = true
			beams = append(beams, c.BeamwidthDeg)
		}
	}
	if len(beams) == 0 {
		return nil, fmt.Errorf("experiments: no grid cells for N=%d", n)
	}
	sort.Float64s(beams)
	chart := &plot.Chart{
		Title:  fmt.Sprintf("%s (N=%d)", m, n),
		XLabel: "beamwidth (degrees)",
		YLabel: m.String(),
	}
	for _, s := range core.Schemes() {
		perBeam, ok := bySch[s]
		if !ok {
			continue
		}
		var x, y, lo, hi []float64
		for _, b := range beams {
			c, ok := perBeam[b]
			if !ok {
				continue
			}
			mean, cmin, cmax := m.value(c)
			x = append(x, b)
			y = append(y, mean)
			lo = append(lo, cmin)
			hi = append(hi, cmax)
		}
		chart.Series = append(chart.Series, plot.Series{
			Name: s.String(), X: x, Y: y, YLow: lo, YHigh: hi,
		})
	}
	return chart, nil
}

// WriteFigureSVGs renders fig5 (per N) and, when grid cells are given,
// fig6/fig7-style charts per N, through the provided creator function
// (typically writing files named by the first argument).
func WriteFigureSVGs(create func(name string) (io.WriteCloser, error), rows []Fig5Row, cells []GridCell) error {
	seenN := map[float64]bool{}
	for _, r := range rows {
		if seenN[r.N] {
			continue
		}
		seenN[r.N] = true
		chart, err := Fig5Chart(rows, r.N)
		if err != nil {
			return err
		}
		if err := writeChart(create, fmt.Sprintf("fig5_n%g.svg", r.N), chart); err != nil {
			return err
		}
	}
	seenGridN := map[int]bool{}
	for _, c := range cells {
		if seenGridN[c.N] {
			continue
		}
		seenGridN[c.N] = true
		for _, fig := range []struct {
			name string
			m    Metric
		}{{"fig6", MetricThroughput}, {"fig7", MetricDelay}} {
			chart, err := GridChart(cells, c.N, fig.m)
			if err != nil {
				return err
			}
			if err := writeChart(create, fmt.Sprintf("%s_n%d.svg", fig.name, c.N), chart); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChart(create func(name string) (io.WriteCloser, error), name string, chart *plot.Chart) error {
	f, err := create(name)
	if err != nil {
		return err
	}
	if err := chart.SVG(f); err != nil {
		f.Close()
		return fmt.Errorf("render %s: %w", name, err)
	}
	return f.Close()
}
