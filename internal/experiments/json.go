package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stats"
)

// JSON export of every artifact, for plotting pipelines and regression
// archives. Field names are stable contracts (tagged explicitly).

// fig5JSON is the serialized form of a Fig5Row.
type fig5JSON struct {
	N            float64 `json:"n"`
	BeamwidthDeg float64 `json:"thetaDeg"`
	ORTSOCTS     float64 `json:"ortsOcts"`
	DRTSDCTS     float64 `json:"drtsDcts"`
	DRTSOCTS     float64 `json:"drtsOcts"`
}

// WriteFig5JSON emits the analytical table as a JSON array.
func WriteFig5JSON(w io.Writer, rows []Fig5Row) error {
	out := make([]fig5JSON, len(rows))
	for i, r := range rows {
		out[i] = fig5JSON{
			N: r.N, BeamwidthDeg: r.BeamwidthDeg,
			ORTSOCTS: r.ORTSOCTS, DRTSDCTS: r.DRTSDCTS, DRTSOCTS: r.DRTSOCTS,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// summaryJSON serializes a stats.Summary.
type summaryJSON struct {
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	CI95  float64 `json:"ci95"`
	Count int64   `json:"count"`
}

func toSummaryJSON(s stats.Summary) summaryJSON {
	return summaryJSON{Mean: s.Mean, Std: s.Std, Min: s.Min, Max: s.Max, CI95: s.CI95, Count: s.Count}
}

// gridJSON is the serialized form of a GridCell.
type gridJSON struct {
	Scheme         string      `json:"scheme"`
	N              int         `json:"n"`
	BeamwidthDeg   float64     `json:"thetaDeg"`
	Runs           int         `json:"runs"`
	ThroughputBps  summaryJSON `json:"throughputBps"`
	DelaySec       summaryJSON `json:"delaySec"`
	CollisionRatio summaryJSON `json:"collisionRatio"`
	Jain           summaryJSON `json:"jain"`
}

// WriteGridJSON emits the simulation grid as a JSON array.
func WriteGridJSON(w io.Writer, cells []GridCell) error {
	if len(cells) == 0 {
		return fmt.Errorf("experiments: empty grid")
	}
	out := make([]gridJSON, len(cells))
	for i, c := range cells {
		out[i] = gridJSON{
			Scheme:         c.Scheme.String(),
			N:              c.N,
			BeamwidthDeg:   c.BeamwidthDeg,
			Runs:           c.Batch.Runs,
			ThroughputBps:  toSummaryJSON(c.Batch.ThroughputBps),
			DelaySec:       toSummaryJSON(c.Batch.DelaySec),
			CollisionRatio: toSummaryJSON(c.Batch.CollisionRatio),
			Jain:           toSummaryJSON(c.Batch.Jain),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// modelVsSimJSON is the serialized form of a ModelVsSimRow.
type modelVsSimJSON struct {
	Scheme       string  `json:"scheme"`
	N            int     `json:"n"`
	BeamwidthDeg float64 `json:"thetaDeg"`
	Analytical   float64 `json:"analytical"`
	Simulated    float64 `json:"simulated"`
}

// WriteModelVsSimJSON emits the validation table plus the rank
// correlation as one JSON document.
func WriteModelVsSimJSON(w io.Writer, rows []ModelVsSimRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("experiments: empty model-vs-sim table")
	}
	doc := struct {
		Rows     []modelVsSimJSON `json:"rows"`
		Spearman float64          `json:"spearmanRank"`
	}{Spearman: SpearmanRank(rows)}
	for _, r := range rows {
		doc.Rows = append(doc.Rows, modelVsSimJSON{
			Scheme: r.Scheme.String(), N: r.N, BeamwidthDeg: r.BeamwidthDeg,
			Analytical: r.Analytical, Simulated: r.Simulated,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
