package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/stats"
)

// ReuseCell reports the network concurrency achieved by one scheme at
// one beamwidth: total transmit airtime divided by elapsed time (> 1
// means simultaneous transmissions coexisted) plus the airtime share of
// data frames.
type ReuseCell struct {
	Scheme       core.Scheme
	N            int
	BeamwidthDeg float64
	// Reuse summarizes the per-topology spatial-reuse factor.
	Reuse stats.Summary
	// DataShare summarizes the fraction of on-air time spent on data
	// frames (the rest is control overhead).
	DataShare stats.Summary
}

// ReuseStudy measures the spatial-reuse factor across schemes and
// beamwidths — the paper's central mechanism quantified directly rather
// than inferred from throughput.
func ReuseStudy(base SimConfig, schemes []core.Scheme, n int, beamsDeg []float64, topologies int) ([]ReuseCell, error) {
	if topologies < 1 {
		return nil, fmt.Errorf("experiments: need at least one topology")
	}
	var cells []ReuseCell
	for _, beam := range beamsDeg {
		for _, s := range schemes {
			var reuse, share stats.Stream
			for i := 0; i < topologies; i++ {
				cfg := base
				cfg.Scheme = s
				cfg.N = n
				cfg.BeamwidthDeg = beam
				cfg.Seed = base.Seed + int64(i)
				res, err := RunSim(cfg)
				if err != nil {
					return nil, fmt.Errorf("reuse cell %v θ=%v: %w", s, beam, err)
				}
				reuse.Add(res.SpatialReuse)
				share.Add(res.AirtimeShare["DATA"])
			}
			cells = append(cells, ReuseCell{
				Scheme: s, N: n, BeamwidthDeg: beam,
				Reuse: reuse.Summarize(), DataShare: share.Summarize(),
			})
		}
	}
	return cells, nil
}

// WriteReuseStudy renders the study as a table.
func WriteReuseStudy(w io.Writer, cells []ReuseCell) error {
	if len(cells) == 0 {
		return fmt.Errorf("experiments: empty reuse study")
	}
	fmt.Fprintf(w, "Spatial-reuse study — concurrent-airtime factor (data share of airtime), N=%d\n", cells[0].N)
	fmt.Fprintf(w, "%10s %8s %18s %12s\n", "scheme", "theta", "reuse factor", "data share")
	for _, c := range cells {
		fmt.Fprintf(w, "%10s %7.0f° %18s %12.3f\n",
			c.Scheme, c.BeamwidthDeg,
			fmt.Sprintf("%.2f [%.2f,%.2f]", c.Reuse.Mean, c.Reuse.Min, c.Reuse.Max),
			c.DataShare.Mean)
	}
	return nil
}

// DelayCDFRow is one percentile row of a delay distribution comparison.
type DelayCDFRow struct {
	Percentile float64
	// DelayMsByScheme maps scheme name to the percentile delay in ms.
	DelayMsByScheme map[string]float64
}

// DelayCDF runs each scheme once with per-packet delay sampling and
// tabulates the given percentiles — the tail view that Fig. 7's means
// hide (BEB unfairness lives in the tail).
func DelayCDF(base SimConfig, schemes []core.Scheme, percentiles []float64) ([]DelayCDFRow, error) {
	if len(percentiles) == 0 {
		return nil, fmt.Errorf("experiments: need at least one percentile")
	}
	samples := make(map[string]*SimResult, len(schemes))
	for _, s := range schemes {
		cfg := base
		cfg.Scheme = s
		cfg.SampleDelays = true
		res, err := RunSim(cfg)
		if err != nil {
			return nil, fmt.Errorf("delay CDF %v: %w", s, err)
		}
		samples[s.String()] = res
	}
	rows := make([]DelayCDFRow, 0, len(percentiles))
	for _, p := range percentiles {
		row := DelayCDFRow{Percentile: p, DelayMsByScheme: map[string]float64{}}
		// Iterate the caller's scheme order, not the sample map's.
		for _, s := range schemes {
			row.DelayMsByScheme[s.String()] = samples[s.String()].DelayPercentileSec(p) * 1000
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteDelayCDF renders the percentile table.
func WriteDelayCDF(w io.Writer, rows []DelayCDFRow, schemes []core.Scheme) error {
	if len(rows) == 0 {
		return fmt.Errorf("experiments: empty delay CDF")
	}
	fmt.Fprintln(w, "Per-packet delay percentiles (ms)")
	fmt.Fprintf(w, "%12s", "percentile")
	for _, s := range schemes {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%11.0f%%", r.Percentile)
		for _, s := range schemes {
			fmt.Fprintf(w, " %12.1f", r.DelayMsByScheme[s.String()])
		}
		fmt.Fprintln(w)
	}
	return nil
}
