package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// testScenario is a small, fast scenario (18 nodes, 40 ms) whose seed
// parameterizes the content address.
func testScenario(seed int64) sim.Scenario {
	return sim.Scenario{
		Scheme:       "DRTS-DCTS",
		BeamwidthDeg: 60,
		Seed:         seed,
		Duration:     sim.Duration(40 * time.Millisecond),
		Topology:     sim.TopologySpec{N: 2},
	}
}

func scenarioBody(t *testing.T, sc sim.Scenario) []byte {
	t.Helper()
	b, err := sim.MarshalScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// localBody computes the bytes the daemon must serve: the canonical
// result encoding of a local run, plus the trailing newline.
func localBody(t *testing.T, sc sim.Scenario) []byte {
	t.Helper()
	res, err := sim.RunScenario(sc, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := sim.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return append(payload, '\n')
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newStore(t *testing.T) *cache.Store {
	t.Helper()
	store, err := cache.NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// TestServedResultMatchesLocalRun is the correctness gate: the POSTed
// body must be byte-identical to a local run of the same spec, a repeat
// POST must be a cache hit serving the very same bytes, and GET-by-key
// must re-serve them.
func TestServedResultMatchesLocalRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Cache: newStore(t)})
	sc := testScenario(7)
	want := localBody(t, sc)

	resp := post(t, ts.URL+"/v1/runs", scenarioBody(t, sc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	if src := resp.Header.Get("X-Simd-Source"); src != serveRun {
		t.Errorf("first POST source = %q, want %q", src, serveRun)
	}
	key := resp.Header.Get("X-Scenario-Key")
	wantKey, err := sim.ScenarioKey(sc)
	if err != nil {
		t.Fatal(err)
	}
	if key != wantKey.String() {
		t.Errorf("X-Scenario-Key = %s, want %s", key, wantKey)
	}
	if got := readBody(t, resp); !bytes.Equal(got, want) {
		t.Errorf("served body differs from local run:\n got %s\nwant %s", got, want)
	}

	resp = post(t, ts.URL+"/v1/runs", scenarioBody(t, sc))
	if src := resp.Header.Get("X-Simd-Source"); src != serveHit {
		t.Errorf("repeat POST source = %q, want %q", src, serveHit)
	}
	if got := readBody(t, resp); !bytes.Equal(got, want) {
		t.Errorf("cache-served body differs from local run")
	}

	getResp, err := http.Get(ts.URL + "/v1/runs/" + key)
	if err != nil {
		t.Fatal(err)
	}
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", getResp.StatusCode)
	}
	if got := readBody(t, getResp); !bytes.Equal(got, want) {
		t.Errorf("GET-by-key body differs from local run")
	}

	st := s.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 2 || st.Executed != 1 {
		t.Errorf("stats = %+v, want 1 miss, 2 hits, 1 executed", st)
	}
}

// TestConcurrentIdenticalPostsExecuteOnce is the singleflight + cache
// contract under the race detector: N concurrent POSTs of one scenario
// produce exactly one Runner execution and N identical bodies —
// requests overlapping the leader coalesce, requests after it hit the
// cache, and no interleaving runs the simulation twice.
func TestConcurrentIdenticalPostsExecuteOnce(t *testing.T) {
	s, ts := newTestServer(t, Config{Cache: newStore(t)})
	sc := testScenario(11)
	body := scenarioBody(t, sc)
	want := localBody(t, sc)

	const n = 12
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	for i, b := range bodies {
		if !bytes.Equal(b, want) {
			t.Errorf("request %d: body differs from local run", i)
		}
	}
	if st := s.Stats(); st.Executed != 1 {
		t.Errorf("executed = %d, want exactly 1 (stats %+v)", st.Executed, st)
	}
}

// TestCoalescingSharesLeaderExecution pins the in-flight path
// deterministically: with the runner blocked, every follower must join
// the leader's call (coalesced counter) and receive the leader's bytes.
func TestCoalescingSharesLeaderExecution(t *testing.T) {
	s, ts := newTestServer(t, Config{Cache: newStore(t)})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	real := s.runFn
	s.runFn = func(sc sim.Scenario, opts sim.Options) (*sim.Result, error) {
		once.Do(func() { close(entered) })
		<-release
		return real(sc, opts)
	}

	sc := testScenario(13)
	body := scenarioBody(t, sc)
	const followers = 4
	results := make(chan []byte, followers+1)
	errs := make(chan error, followers+1)
	request := func() {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			errs <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		b, _ := io.ReadAll(resp.Body)
		results <- b
	}
	go request()
	<-entered
	for i := 0; i < followers; i++ {
		go request()
	}
	// Followers have joined once the coalesced counter says so; only then
	// is the leader released, so exactly one execution is possible.
	for s.Stats().Coalesced < followers {
		time.Sleep(time.Millisecond)
	}
	close(release)

	var bodies [][]byte
	for len(bodies) < followers+1 {
		select {
		case b := <-results:
			bodies = append(bodies, b)
		case err := <-errs:
			t.Fatal(err)
		case <-time.After(30 * time.Second):
			t.Fatal("timed out waiting for coalesced responses")
		}
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Errorf("response %d differs from leader's", i)
		}
	}
	st := s.Stats()
	if st.Executed != 1 || st.Coalesced != followers {
		t.Errorf("stats = %+v, want 1 executed and %d coalesced", st, followers)
	}
}

// TestFailedRunDoesNotPoisonCacheOrWedgeWaiters drives the error path:
// a failing run must 500 the leader AND every coalesced waiter (no
// goroutine left blocked), must leave the cache empty, and the next
// request for the same scenario must run fresh and succeed.
func TestFailedRunDoesNotPoisonCacheOrWedgeWaiters(t *testing.T) {
	s, ts := newTestServer(t, Config{Cache: newStore(t)})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	real := s.runFn
	s.runFn = func(sim.Scenario, sim.Options) (*sim.Result, error) {
		once.Do(func() { close(entered) })
		<-release
		return nil, fmt.Errorf("injected kernel failure")
	}

	sc := testScenario(17)
	body := scenarioBody(t, sc)
	const followers = 3
	statuses := make(chan int, followers+1)
	request := func() {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			statuses <- 0
			return
		}
		resp.Body.Close()
		statuses <- resp.StatusCode
	}
	go request()
	<-entered
	for i := 0; i < followers; i++ {
		go request()
	}
	for s.Stats().Coalesced < followers {
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < followers+1; i++ {
		select {
		case code := <-statuses:
			if code != http.StatusInternalServerError {
				t.Errorf("got status %d, want 500", code)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("a waiter wedged: no response after the failed run")
		}
	}

	// The failure must not have been cached under the scenario's key.
	key, err := sim.ScenarioKey(sc)
	if err != nil {
		t.Fatal(err)
	}
	getResp, err := http.Get(ts.URL + "/v1/runs/" + key.String())
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound {
		t.Errorf("GET after failed run: status %d, want 404", getResp.StatusCode)
	}

	// Recovery: the singleflight slot is free and the cache unpoisoned,
	// so a fresh request with the real runner succeeds.
	s.runFn = real
	resp := post(t, ts.URL+"/v1/runs", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery POST status = %d", resp.StatusCode)
	}
	if got, want := readBody(t, resp), localBody(t, sc); !bytes.Equal(got, want) {
		t.Errorf("recovery body differs from local run")
	}
}

// TestBackpressure429 fills the bounded pool and checks the admission
// contract: a full queue answers 429 with a Retry-After hint and counts
// the rejection; distinct scenarios do not coalesce around it.
func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{Concurrency: 1, QueueCap: 1, RetryAfter: 3})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.runFn = func(sc sim.Scenario, opts sim.Options) (*sim.Result, error) {
		started <- struct{}{}
		<-release
		return sim.RunScenario(sc, opts)
	}

	codes := make(chan int, 2)
	for seed := int64(21); seed <= 22; seed++ {
		body := scenarioBody(t, testScenario(seed))
		go func() {
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				codes <- 0
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	// One run executing, one admitted and queued: the pool is full.
	<-started
	for s.Stats().QueueDepth < 1 {
		time.Sleep(time.Millisecond)
	}

	resp := post(t, ts.URL+"/v1/runs", scenarioBody(t, testScenario(23)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity POST status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("admitted request finished with status %d", code)
		}
	}
}

// TestTelemetryStreaming checks the live-export path: the chunked
// response must be a valid telemetry export whose bytes are identical
// to a local streaming run of the same spec, and it must bypass the
// result cache.
func TestTelemetryStreaming(t *testing.T) {
	s, ts := newTestServer(t, Config{Cache: newStore(t)})
	sc := testScenario(29)
	sc.Telemetry.Interval = sim.Duration(10 * time.Millisecond)

	var local bytes.Buffer
	localSink := telemetry.NewStreamWriter(&local, nil)
	if _, err := sim.RunScenario(sc, sim.Options{Telemetry: localSink}); err != nil {
		t.Fatal(err)
	}

	resp := post(t, ts.URL+"/v1/runs?telemetry=1", scenarioBody(t, sc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streaming POST status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	got := readBody(t, resp)
	if !bytes.Equal(got, local.Bytes()) {
		t.Errorf("streamed export differs from local run (%d vs %d bytes)", len(got), local.Len())
	}
	h, recs, err := telemetry.ReadAll(bytes.NewReader(got))
	if err != nil {
		t.Fatalf("streamed bytes are not a valid export: %v", err)
	}
	if h.Format != telemetry.FormatV1 || len(recs) == 0 {
		t.Errorf("export header %+v with %d records", h, len(recs))
	}
	st := s.Stats()
	if st.TelemetryStreams != 1 || st.Executed != 1 {
		t.Errorf("stats = %+v, want 1 stream and 1 execution", st)
	}
	if st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Errorf("telemetry streaming touched the result cache: %+v", st)
	}

	// A scenario without its own telemetry section gets the default
	// sampling interval rather than a rejection.
	resp = post(t, ts.URL+"/v1/runs?telemetry=1", scenarioBody(t, testScenario(31)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default-interval streaming POST status = %d", resp.StatusCode)
	}
	if _, _, err := telemetry.ReadAll(bytes.NewReader(readBody(t, resp))); err != nil {
		t.Errorf("default-interval stream invalid: %v", err)
	}
}

// TestBadRequests covers the admission layer's rejections.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"not json":        "{",
		"unknown field":   `{"scheme":"drts-dcts","beamwidthDeg":60,"seed":1,"duration":"10ms","topology":{"n":2},"bogus":1}`,
		"validation fail": `{"scheme":"drts-dcts","beamwidthDeg":60,"seed":1,"duration":"10ms","topology":{"n":1}}`,
	} {
		resp := post(t, ts.URL+"/v1/runs", []byte(body))
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	getResp, err := http.Get(ts.URL + "/v1/runs/nothex")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET bad key: status %d, want 400", getResp.StatusCode)
	}
}

// TestHealthzAndStats pins the probe endpoints' shapes.
func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueCap: 5, Concurrency: 1, Budget: 4})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(readBody(t, resp)); got != "ok\n" {
		t.Errorf("healthz body = %q", got)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readBody(t, resp))
	for _, want := range []string{`"cacheHits":0`, `"queueCap":5`, `"concurrency":1`, `"runWorkers":4`} {
		if !strings.Contains(body, want) {
			t.Errorf("stats body %s lacks %s", body, want)
		}
	}
}

// TestSplitBudget pins the PR 8 budget arithmetic the pool shares with
// sim.Runner: pool × perRun never exceeds the total budget.
func TestSplitBudget(t *testing.T) {
	for _, tc := range []struct {
		total, concurrency, pool, perRun int
	}{
		{8, 0, 8, 1},
		{8, 2, 2, 4},
		{8, 3, 3, 2},
		{8, 16, 8, 1},
		{1, 4, 1, 1},
		{4, 1, 1, 4},
	} {
		pool, perRun := splitBudget(tc.total, tc.concurrency)
		if pool != tc.pool || perRun != tc.perRun {
			t.Errorf("splitBudget(%d, %d) = (%d, %d), want (%d, %d)",
				tc.total, tc.concurrency, pool, perRun, tc.pool, tc.perRun)
		}
		if pool*perRun > tc.total && tc.total >= pool {
			t.Errorf("splitBudget(%d, %d) oversubscribes: %d×%d", tc.total, tc.concurrency, pool, perRun)
		}
	}
}

// TestQueueCloseRejectsSubmissions pins the shutdown ordering contract.
func TestQueueCloseRejectsSubmissions(t *testing.T) {
	q := newQueue(1, 1)
	done := make(chan struct{})
	if !q.submit(func() { close(done) }) {
		t.Fatal("empty queue rejected a job")
	}
	<-done
	q.close()
	if q.submit(func() {}) {
		t.Error("closed queue admitted a job")
	}
	q.close() // idempotent
}
