// Package server implements the simulation-as-a-service daemon behind
// cmd/simd: an HTTP/JSON front end over the declarative scenario
// subsystem, the content-addressed result cache and the deterministic
// runner.
//
// The request path is admission → singleflight → cache → queue →
// runner. A POSTed scenario is parsed, validated and canonicalized with
// sim.MarshalScenario, so everything downstream is keyed on
// sim.ScenarioKey — the SHA-256 content address of the run. Identical
// in-flight requests coalesce onto one execution (singleflight);
// completed results are served from the content-addressed store; the
// rest queue through a bounded worker pool whose admission failure is
// explicit backpressure (429 + Retry-After). Because the simulation
// kernel is bit-reproducible, a served body is byte-identical to a
// local `netsim -scenario ... -json` run of the same spec, no matter
// which of the three paths produced it.
//
// Telemetry streaming (`POST /v1/runs?telemetry=1`) deliberately
// bypasses the result cache: the export is a per-record side effect a
// cached Result cannot replay (the same rule that makes telemetry-
// enabled runs uncacheable in internal/sim), so each streaming request
// executes its own run and forwards records to the client as they are
// sampled.
//
// Determinism scoping: this package is serving infrastructure, not
// simulation code — it runs *around* simulations, never inside them —
// so it sits outside desalint's SimPackages and may legitimately use
// wall-clock time and goroutines. Reproducibility of what it serves is
// enforced where it belongs: in the sim packages it calls into.
package server

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// maxBodyBytes bounds a POSTed scenario spec. Canonical scenario files
// are a few hundred bytes; explicit topologies grow linearly in node
// count, and 8 MiB comfortably covers a 10⁵-node placement.
const maxBodyBytes = 8 << 20

// defaultTelemetryInterval matches netsim's -telemetry-interval default
// and is applied when a streaming request's scenario does not set one.
const defaultTelemetryInterval = 10 * time.Millisecond

// Result-source tags reported in the X-Simd-Source response header.
const (
	serveHit       = "hit"       // served from the content-addressed store
	serveRun       = "run"       // executed by this request (the singleflight leader)
	serveCoalesced = "coalesced" // shared another request's in-flight execution
)

// Config parameterizes a Server.
type Config struct {
	// Cache is the content-addressed result store; nil disables result
	// caching (every request runs or coalesces).
	Cache *cache.Store
	// QueueCap bounds the number of admitted-but-not-started runs; a full
	// queue rejects with 429. Non-positive selects 64.
	QueueCap int
	// Concurrency is the number of simultaneous simulation executions;
	// non-positive selects the full budget (one run per budgeted core).
	Concurrency int
	// Budget is the total goroutine budget shared between concurrent runs
	// and each run's intra-run partition workers (0 = GOMAXPROCS).
	Budget int
	// RetryAfter is the hint returned with 429 responses, in seconds;
	// non-positive selects 1.
	RetryAfter int
}

// Stats is the counters snapshot served at /v1/stats.
type Stats struct {
	// CacheHits and CacheMisses count result-path lookups against the
	// content-addressed store (POST bodies and GET-by-key re-serves): a
	// hit was served without simulating, a miss executed a run.
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`
	// Coalesced counts requests that shared another request's in-flight
	// execution instead of running themselves.
	Coalesced uint64 `json:"coalesced"`
	// Executed counts simulations actually run by this process.
	Executed uint64 `json:"executed"`
	// Rejected counts admissions refused with 429 (queue full).
	Rejected uint64 `json:"rejected"`
	// TelemetryStreams counts completed streaming-export requests.
	TelemetryStreams uint64 `json:"telemetryStreams"`
	// QueueDepth and Inflight describe the pool right now: runs admitted
	// but not started, and runs executing.
	QueueDepth int `json:"queueDepth"`
	Inflight   int `json:"inflight"`
	// QueueCap, Concurrency and RunWorkers echo the resolved
	// configuration: queue bound, worker-pool size, and the per-run
	// intra-run worker share of the budget.
	QueueCap    int `json:"queueCap"`
	Concurrency int `json:"concurrency"`
	RunWorkers  int `json:"runWorkers"`
}

// Server is the daemon: an http.Handler plus the execution pool behind
// it. Construct with New; call Close after the HTTP server has drained.
type Server struct {
	cfg        Config
	queue      *queue
	sf         group
	perRun     int
	retryAfter string

	// runFn executes one scenario; tests substitute failures and
	// barriers here without touching the HTTP surface.
	runFn func(sim.Scenario, sim.Options) (*sim.Result, error)

	counters struct {
		hits, misses, coalesced, executed, rejected, streams atomicCounter
	}

	mux *http.ServeMux
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 1
	}
	pool, perRun := splitBudget(cfg.Budget, cfg.Concurrency)
	cfg.Concurrency = pool
	s := &Server{
		cfg:        cfg,
		queue:      newQueue(pool, cfg.QueueCap),
		perRun:     perRun,
		retryAfter: fmt.Sprint(cfg.RetryAfter),
		runFn:      sim.RunScenario,
		mux:        http.NewServeMux(),
	}
	s.sf.onShare = func() { s.counters.coalesced.add(1) }
	s.mux.HandleFunc("POST /v1/runs", s.handlePostRun)
	s.mux.HandleFunc("GET /v1/runs/{key}", s.handleGetRun)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the worker pool. Call only after the HTTP server has
// stopped accepting requests and in-flight handlers have returned
// (http.Server.Shutdown provides exactly that ordering).
func (s *Server) Close() { s.queue.close() }

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	return Stats{
		CacheHits:        s.counters.hits.load(),
		CacheMisses:      s.counters.misses.load(),
		Coalesced:        s.counters.coalesced.load(),
		Executed:         s.counters.executed.load(),
		Rejected:         s.counters.rejected.load(),
		TelemetryStreams: s.counters.streams.load(),
		QueueDepth:       s.queue.depth(),
		Inflight:         s.queue.inflight(),
		QueueCap:         s.cfg.QueueCap,
		Concurrency:      s.cfg.Concurrency,
		RunWorkers:       s.perRun,
	}
}

// errBusy is the admission-rejected sentinel mapped to 429.
var errBusy = fmt.Errorf("server: execution queue is full")

// cacheableScenario mirrors internal/sim's bypass rule: telemetry-
// enabled scenarios are never served from or stored to the result
// cache, because the export side effect cannot be replayed from a
// cached Result.
func cacheableScenario(sc sim.Scenario) bool {
	return !sc.Telemetry.Enabled()
}

// runOnce executes sc on the bounded pool and returns the canonical
// result bytes. It is the only path that consumes a worker slot for a
// result request.
func (s *Server) runOnce(sc sim.Scenario) ([]byte, error) {
	type out struct {
		payload []byte
		err     error
	}
	done := make(chan out, 1)
	admitted := s.queue.submit(func() {
		s.counters.executed.add(1)
		res, err := s.runFn(sc, sim.Options{Workers: s.perRun})
		if err != nil {
			done <- out{nil, err}
			return
		}
		payload, err := sim.EncodeResult(res)
		done <- out{payload, err}
	})
	if !admitted {
		s.counters.rejected.add(1)
		return nil, errBusy
	}
	o := <-done
	return o.payload, o.err
}

// handlePostRun is the main entry: parse, canonicalize, then
// singleflight → cache → queue → runner.
func (s *Server) handlePostRun(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, "server: read scenario: "+err.Error(), http.StatusBadRequest)
		return
	}
	sc, err := sim.ParseScenario(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := sc.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if r.URL.Query().Get("telemetry") == "1" {
		s.streamTelemetry(w, sc)
		return
	}
	key, err := sim.ScenarioKey(sc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cacheable := cacheableScenario(sc)
	payload, source, shared, err := s.sf.do(key, func() ([]byte, string, error) {
		if cacheable && s.cfg.Cache != nil {
			if p, ok := s.cfg.Cache.Get(key); ok {
				s.counters.hits.add(1)
				return p, serveHit, nil
			}
		}
		p, err := s.runOnce(sc)
		if err != nil {
			return nil, "", err
		}
		s.counters.misses.add(1)
		if cacheable && s.cfg.Cache != nil {
			_ = s.cfg.Cache.Put(key, p) // best effort; the result stands
		}
		return p, serveRun, nil
	})
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	if shared {
		source = serveCoalesced
	}
	s.writeResult(w, key, source, payload)
}

// handleGetRun re-serves any cached result by its content address.
func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	key, err := cache.ParseKey(r.PathValue("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.cfg.Cache == nil {
		http.Error(w, "server: no result cache configured", http.StatusNotFound)
		return
	}
	payload, ok := s.cfg.Cache.Get(key)
	if !ok {
		s.counters.misses.add(1)
		http.Error(w, "server: no result for key "+key.String(), http.StatusNotFound)
		return
	}
	s.counters.hits.add(1)
	s.writeResult(w, key, serveHit, payload)
}

// writeResult emits one canonical result body. The trailing newline
// matches `netsim -scenario ... -json`, keeping the two byte-comparable
// with cmp/diff.
func (s *Server) writeResult(w http.ResponseWriter, key cache.Key, source string, payload []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Scenario-Key", key.String())
	h.Set("X-Simd-Source", source)
	h.Set("Content-Length", fmt.Sprint(len(payload)+1))
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
	io.WriteString(w, "\n")
}

// writeRunError maps execution failures: backpressure is 429 with a
// Retry-After hint, everything else is 500.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	if err == errBusy {
		w.Header().Set("Retry-After", s.retryAfter)
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// streamTelemetry serves `?telemetry=1`: the run executes on the same
// bounded pool, but its export is forwarded to the client as records
// are sampled — one chunked-response flush per line — instead of a
// result body at the end. Never cached, never coalesced: the stream is
// a per-client side effect.
func (s *Server) streamTelemetry(w http.ResponseWriter, sc sim.Scenario) {
	if !sc.Telemetry.Enabled() {
		sc.Telemetry.Interval = sim.Duration(defaultTelemetryInterval)
		if err := sc.Validate(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	var flush func() error
	if fl, ok := w.(http.Flusher); ok {
		flush = func() error { fl.Flush(); return nil }
	}
	sink := telemetry.NewStreamWriter(w, flush)
	// The header must be final before the worker goroutine can touch w:
	// ResponseWriter is not safe for concurrent use, and the first record
	// the worker writes commits whatever headers are set. (http.Error
	// below overrides it again on the rejection path.)
	w.Header().Set("Content-Type", "application/x-ndjson")
	done := make(chan error, 1)
	admitted := s.queue.submit(func() {
		s.counters.executed.add(1)
		_, err := s.runFn(sc, sim.Options{Workers: s.perRun, Telemetry: sink})
		done <- err
	})
	if !admitted {
		s.counters.rejected.add(1)
		s.writeRunError(w, errBusy)
		return
	}
	// The first sampled record commits the 200 and starts the chunked
	// body; the handler only parks here so the connection stays open for
	// the worker writing to it.
	if err := <-done; err != nil {
		if !sink.Wrote() {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		// Mid-stream failures (including a vanished client) can only
		// truncate the export; the missing final records are the signal.
		return
	}
	s.counters.streams.add(1)
}

// handleStats serves the counters snapshot.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}
