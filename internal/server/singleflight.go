package server

// Homegrown singleflight (stdlib only), keyed on the scenario's content
// address. Identical in-flight requests coalesce onto one execution:
// the first caller for a key becomes the leader and runs the function;
// everyone else arriving before it finishes blocks on the same call and
// shares its bytes. The call is removed from the table BEFORE waiters
// are released, so a failed run never poisons later requests — the next
// arrival starts a fresh call (and a successful run's bytes are in the
// result cache by then, so re-coalescing is unnecessary).

import (
	"sync"

	"repro/internal/cache"
)

// call is one in-flight execution and the values it resolves to.
type call struct {
	done    chan struct{}
	payload []byte
	source  string // serveHit or serveRun: how the leader obtained it
	err     error
}

// group deduplicates concurrent work by key.
type group struct {
	mu sync.Mutex
	m  map[cache.Key]*call

	// onShare, when set, is invoked each time a caller joins an existing
	// in-flight call (before blocking). The server wires its coalesced
	// counter here so tests can observe joins as they happen.
	onShare func()
}

// do executes fn once for all concurrent callers of key. It returns
// fn's payload, a source tag, whether this caller shared another
// caller's execution, and fn's error.
func (g *group) do(key cache.Key, fn func() ([]byte, string, error)) (payload []byte, source string, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[cache.Key]*call)
	}
	if c, ok := g.m[key]; ok {
		if g.onShare != nil {
			g.onShare()
		}
		g.mu.Unlock()
		<-c.done
		return c.payload, c.source, true, c.err
	}
	c := &call{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.payload, c.source, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.payload, c.source, false, c.err
}
