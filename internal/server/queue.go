package server

// Bounded execution queue with explicit backpressure. Simulations are
// the expensive resource the daemon guards: admission is a non-blocking
// enqueue onto a fixed-capacity channel drained by a fixed pool of
// worker goroutines, and a full queue is reported to the caller (who
// turns it into 429 + Retry-After) instead of being absorbed into
// unbounded goroutines or latency.
//
// The worker pool shares one GOMAXPROCS-derived budget with each run's
// intra-run partition workers, exactly like sim.Runner splits its shard
// pool (DESIGN.md §14): pool = min(concurrency, budget) goroutines run
// simulations, and every run gets budget/pool partition workers, so
// concurrent partitioned runs never oversubscribe the machine
// pool×partitions-fold. Worker counts are execution knobs only — results
// are byte-identical for any split.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// queue is the bounded worker pool.
type queue struct {
	jobs chan func()
	wg   sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	running atomic.Int64
}

// newQueue starts workers goroutines draining a capacity-bounded job
// channel.
func newQueue(workers, capacity int) *queue {
	q := &queue{jobs: make(chan func(), capacity)}
	for w := 0; w < workers; w++ {
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			for job := range q.jobs {
				q.running.Add(1)
				job()
				q.running.Add(-1)
			}
		}()
	}
	return q
}

// submit enqueues job without blocking. It reports false when the queue
// is full (backpressure) or the pool is shutting down.
func (q *queue) submit(job func()) bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return false
	}
	select {
	case q.jobs <- job:
		return true
	default:
		return false
	}
}

// depth returns the number of jobs admitted but not yet started.
func (q *queue) depth() int { return len(q.jobs) }

// inflight returns the number of jobs currently executing.
func (q *queue) inflight() int { return int(q.running.Load()) }

// close drains the pool: no new submissions are admitted, queued jobs
// still run, and close returns once every worker has exited.
func (q *queue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	close(q.jobs)
	q.mu.Unlock()
	q.wg.Wait()
}

// splitBudget divides a total goroutine budget between concurrent
// simulation executions and each execution's intra-run partition
// workers, mirroring sim.Runner's shard split. A zero or negative total
// means GOMAXPROCS; a zero or negative concurrency asks for the widest
// pool the budget allows.
func splitBudget(total, concurrency int) (pool, perRun int) {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	pool = concurrency
	if pool <= 0 || pool > total {
		pool = total
	}
	perRun = total / pool
	if perRun < 1 {
		perRun = 1
	}
	return pool, perRun
}
