package server

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
)

// atomicCounter is a monotonic uint64 counter safe for handler
// concurrency.
type atomicCounter struct{ v atomic.Uint64 }

func (c *atomicCounter) add(n uint64) { c.v.Add(n) }
func (c *atomicCounter) load() uint64 { return c.v.Load() }

// writeJSON renders v as a compact JSON body with a trailing newline.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}
