// Package topology generates the node placements of the paper's
// simulation study (Section 4): concentric rings around a focus region,
// with N nodes uniformly placed in the inner circle of radius R, 3N in
// the ring [R, 2R], 5N in [2R, 3R] (and (2k+1)·N in each further ring),
// approximating an infinite uniform field while only the innermost N
// nodes are measured. Generated topologies are filtered by the paper's
// degree constraints.
package topology

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Config controls topology generation.
type Config struct {
	// N is the average number of nodes per coverage disk; the inner
	// circle holds exactly N nodes.
	N int
	// Radius is the transmission range R; ring k spans [kR, (k+1)R].
	Radius float64
	// Rings is the number of regions (inner circle counts as ring 1);
	// the paper uses 3, giving 9N nodes total.
	Rings int
	// MaxAttempts bounds the rejection sampling (0 means 10000).
	MaxAttempts int
}

// DefaultConfig returns the paper's setup for the given N.
func DefaultConfig(n int) Config {
	return Config{N: n, Radius: 1.0, Rings: 3}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("topology: N must be at least 2, got %d", c.N)
	}
	if c.Radius <= 0 {
		return fmt.Errorf("topology: radius must be positive, got %v", c.Radius)
	}
	if c.Rings < 1 {
		return fmt.Errorf("topology: need at least one ring, got %d", c.Rings)
	}
	return nil
}

// TotalNodes returns the node count for the configuration: Rings²·N.
func (c Config) TotalNodes() int {
	return c.Rings * c.Rings * c.N
}

// Topology is a generated placement. The first N positions are the inner
// (measured) nodes; the next 3N are the first ring, and so on.
type Topology struct {
	Positions []geom.Point `json:"positions"`
	N         int          `json:"n"`
	Radius    float64      `json:"radius"`
	Rings     int          `json:"rings"`
}

// ErrExhausted is returned when no valid topology was found within the
// attempt budget.
var ErrExhausted = errors.New("topology: no valid placement found within the attempt budget")

// Generate draws placements until one satisfies the paper's degree
// constraints:
//
//   - each inner node has between 2 and 2N−2 neighbors;
//   - each node of the first surrounding ring has between 1 and 2N−1.
//
// Outer rings are unconstrained (they only provide background
// interference).
func Generate(rng *rand.Rand, cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 10000
	}
	for i := 0; i < attempts; i++ {
		topo := sample(rng, cfg)
		if topo.CheckConstraints() == nil {
			return topo, nil
		}
	}
	return nil, ErrExhausted
}

// sample draws one unconstrained placement.
func sample(rng *rand.Rand, cfg Config) *Topology {
	positions := make([]geom.Point, 0, cfg.TotalNodes())
	for ring := 0; ring < cfg.Rings; ring++ {
		count := (2*ring + 1) * cfg.N
		rIn := float64(ring) * cfg.Radius
		rOut := float64(ring+1) * cfg.Radius
		for i := 0; i < count; i++ {
			positions = append(positions, uniformInAnnulus(rng, rIn, rOut))
		}
	}
	return &Topology{Positions: positions, N: cfg.N, Radius: cfg.Radius, Rings: cfg.Rings}
}

// uniformInAnnulus draws a point uniformly by area from the annulus with
// the given radii (rIn may be 0 for a full disk).
func uniformInAnnulus(rng *rand.Rand, rIn, rOut float64) geom.Point {
	u := rng.Float64()
	r := math.Sqrt(rIn*rIn + u*(rOut*rOut-rIn*rIn))
	theta := rng.Float64() * 2 * math.Pi
	return geom.Polar(geom.Point{}, r, theta)
}

// Degrees returns each node's neighbor count (nodes within Radius).
func (t *Topology) Degrees() []int {
	deg := make([]int, len(t.Positions))
	r2 := t.Radius * t.Radius
	for i := 0; i < len(t.Positions); i++ {
		for j := i + 1; j < len(t.Positions); j++ {
			if t.Positions[i].Dist2(t.Positions[j]) <= r2 {
				deg[i]++
				deg[j]++
			}
		}
	}
	return deg
}

// Neighbors returns the indices of nodes within Radius of node i.
func (t *Topology) Neighbors(i int) []int {
	r2 := t.Radius * t.Radius
	var out []int
	for j := range t.Positions {
		if j != i && t.Positions[i].Dist2(t.Positions[j]) <= r2 {
			out = append(out, j)
		}
	}
	return out
}

// InnerCount returns the number of measured (inner circle) nodes.
func (t *Topology) InnerCount() int { return t.N }

// MiddleCount returns the number of first-ring nodes.
func (t *Topology) MiddleCount() int {
	if t.Rings < 2 {
		return 0
	}
	return 3 * t.N
}

// CheckConstraints verifies the paper's degree conditions.
func (t *Topology) CheckConstraints() error {
	deg := t.Degrees()
	for i := 0; i < t.InnerCount(); i++ {
		if deg[i] < 2 || deg[i] > 2*t.N-2 {
			return fmt.Errorf("topology: inner node %d has degree %d, want [2, %d]", i, deg[i], 2*t.N-2)
		}
	}
	for i := t.InnerCount(); i < t.InnerCount()+t.MiddleCount(); i++ {
		if deg[i] < 1 || deg[i] > 2*t.N-1 {
			return fmt.Errorf("topology: middle node %d has degree %d, want [1, %d]", i, deg[i], 2*t.N-1)
		}
	}
	return nil
}

// RingOf returns which region (0-based ring index) node i was placed in,
// derived from its distance to the origin.
func (t *Topology) RingOf(i int) int {
	d := t.Positions[i].Dist(geom.Point{})
	ring := int(d / t.Radius)
	if ring >= t.Rings {
		ring = t.Rings - 1 // boundary round-off
	}
	return ring
}
