package topology

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(5).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{N: 1, Radius: 1, Rings: 3},
		{N: 5, Radius: 0, Rings: 3},
		{N: 5, Radius: 1, Rings: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestTotalNodes(t *testing.T) {
	tests := []struct {
		n, rings, want int
	}{
		{3, 3, 27},
		{5, 3, 45},
		{8, 3, 72},
		{4, 1, 4},
		{2, 2, 8},
	}
	for _, tt := range tests {
		cfg := Config{N: tt.n, Radius: 1, Rings: tt.rings}
		if got := cfg.TotalNodes(); got != tt.want {
			t.Errorf("TotalNodes(N=%d rings=%d) = %d, want %d", tt.n, tt.rings, got, tt.want)
		}
	}
}

func TestGenerateRingStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{3, 5, 8} {
		topo, err := Generate(rng, DefaultConfig(n))
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if len(topo.Positions) != 9*n {
			t.Fatalf("N=%d: %d positions, want %d", n, len(topo.Positions), 9*n)
		}
		// Ring membership by construction order: N inner, 3N middle, 5N outer.
		for i, pos := range topo.Positions {
			d := pos.Dist(geom.Point{})
			var lo, hi float64
			switch {
			case i < n:
				lo, hi = 0, 1
			case i < 4*n:
				lo, hi = 1, 2
			default:
				lo, hi = 2, 3
			}
			if d < lo || d > hi {
				t.Errorf("N=%d node %d at distance %v, want [%v, %v]", n, i, d, lo, hi)
			}
		}
		if topo.InnerCount() != n || topo.MiddleCount() != 3*n {
			t.Errorf("counts: inner %d middle %d", topo.InnerCount(), topo.MiddleCount())
		}
	}
}

func TestGenerateMeetsConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{3, 5, 8} {
		for trial := 0; trial < 5; trial++ {
			topo, err := Generate(rng, DefaultConfig(n))
			if err != nil {
				t.Fatalf("N=%d: %v", n, err)
			}
			if err := topo.CheckConstraints(); err != nil {
				t.Errorf("N=%d trial %d: %v", n, trial, err)
			}
		}
	}
}

func TestCheckConstraintsRejectsBadTopologies(t *testing.T) {
	// Inner node with zero neighbors.
	topo := &Topology{
		N: 2, Radius: 1, Rings: 2,
		Positions: []geom.Point{
			{X: 0, Y: 0}, {X: 0.5, Y: 0}, // inner pair: degree fine
			{X: 1.5, Y: 0}, {X: -1.5, Y: 0}, {X: 0, Y: 1.5}, {X: 0, Y: -1.5},
			{X: 1.2, Y: 1.2}, {X: -1.2, Y: -1.2},
		},
	}
	if err := topo.CheckConstraints(); err != nil {
		t.Logf("constraint status: %v (expected valid or invalid per geometry)", err)
	}
	isolated := &Topology{
		N: 2, Radius: 1, Rings: 1,
		Positions: []geom.Point{{X: 0, Y: 0}, {X: 0.9, Y: 0}},
	}
	// Each inner node has 1 neighbor < 2 → invalid.
	if err := isolated.CheckConstraints(); err == nil {
		t.Error("degree-1 inner nodes should violate constraints")
	}
	crowded := &Topology{
		N: 2, Radius: 1, Rings: 1,
		Positions: []geom.Point{
			{X: 0, Y: 0}, {X: 0.1, Y: 0}, {X: 0.2, Y: 0}, {X: 0.3, Y: 0},
		},
	}
	// N=2 → inner degree cap 2N−2 = 2, but these have 3.
	crowded.N = 4 // all four are inner
	crowded.Positions = crowded.Positions[:4]
	if err := crowded.CheckConstraints(); err != nil {
		// N=4: cap is 6, degree 3 ok, min 2 ok → valid.
		t.Errorf("crowded line should be valid for N=4: %v", err)
	}
}

func TestDegreesSymmetric(t *testing.T) {
	topo := &Topology{
		N: 3, Radius: 1, Rings: 1,
		Positions: []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 2, Y: 0}},
	}
	deg := topo.Degrees()
	if deg[0] != 1 || deg[1] != 1 || deg[2] != 0 {
		t.Errorf("Degrees = %v, want [1 1 0]", deg)
	}
	nb := topo.Neighbors(0)
	if len(nb) != 1 || nb[0] != 1 {
		t.Errorf("Neighbors(0) = %v, want [1]", nb)
	}
	if topo.Neighbors(2) != nil {
		t.Errorf("Neighbors(2) = %v, want none", topo.Neighbors(2))
	}
}

func TestUniformInAnnulus(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const samples = 100000
	// Full disk: the fraction within radius 0.5 must be 0.25.
	within := 0
	for i := 0; i < samples; i++ {
		p := uniformInAnnulus(rng, 0, 1)
		d := p.Dist(geom.Point{})
		if d > 1 {
			t.Fatalf("point outside disk: %v", d)
		}
		if d <= 0.5 {
			within++
		}
	}
	frac := float64(within) / samples
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("inner-quarter fraction = %v, want 0.25 (area uniformity)", frac)
	}
	// Annulus respects both radii.
	for i := 0; i < 1000; i++ {
		p := uniformInAnnulus(rng, 2, 3)
		d := p.Dist(geom.Point{})
		if d < 2 || d > 3 {
			t.Fatalf("annulus point at distance %v, want [2, 3]", d)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(rand.New(rand.NewSource(77)), DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(rand.New(rand.NewSource(77)), DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatalf("same seed produced different topologies at node %d", i)
		}
	}
}

func TestGenerateExhaustion(t *testing.T) {
	// An (effectively) unsatisfiable configuration: huge N in one attempt.
	rng := rand.New(rand.NewSource(5))
	cfg := Config{N: 2, Radius: 1, Rings: 1, MaxAttempts: 1}
	// N=2, one ring, 2 nodes: both inner, need degree ≥ 2 but max possible
	// degree is 1 → always invalid.
	if _, err := Generate(rng, cfg); err == nil {
		t.Error("impossible constraints should exhaust the attempt budget")
	}
}

func TestRingOf(t *testing.T) {
	topo := &Topology{
		N: 1, Radius: 1, Rings: 3,
		Positions: []geom.Point{{X: 0.5, Y: 0}, {X: 1.5, Y: 0}, {X: 2.5, Y: 0}, {X: 3.5, Y: 0}},
	}
	want := []int{0, 1, 2, 2} // beyond-last clamps
	for i, w := range want {
		if got := topo.RingOf(i); got != w {
			t.Errorf("RingOf(%d) = %d, want %d", i, got, w)
		}
	}
}

// TestGenerateAcceptanceRate guards against the rejection sampler becoming
// pathologically slow for the paper's parameters.
func TestGenerateAcceptanceRate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(123))
	for _, n := range []int{3, 5, 8} {
		accepted := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			topo := sample(rng, DefaultConfig(n))
			if topo.CheckConstraints() == nil {
				accepted++
			}
		}
		if accepted == 0 {
			t.Errorf("N=%d: acceptance rate 0/%d — generator impractical", n, trials)
		}
		t.Logf("N=%d acceptance: %d/%d", n, accepted, trials)
	}
}
