// Package traffic implements the workload generators of the paper's
// Section 4: constant-bit-rate sources with 1460-byte data packets whose
// destination is a uniformly random neighbor, in both the saturated
// (always-backlogged) form used for the throughput study and a paced CBR
// form for lighter loads.
package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/des"
	"repro/internal/mac"
	"repro/internal/phy"
)

// PaperPacketBytes is the CBR data packet size from Section 4.
const PaperPacketBytes = 1460

// Empty is a source with no packets, for nodes that only receive (for
// example isolated outer-ring nodes with no neighbors to send to).
type Empty struct{}

var _ mac.Source = Empty{}

// Dequeue always reports an empty queue.
func (Empty) Dequeue(now des.Time) (mac.Packet, bool) { return mac.Packet{}, false }

// Saturated is an always-backlogged source: every Dequeue produces a
// fresh packet addressed to a uniformly random neighbor. It implements
// mac.Source.
type Saturated struct {
	rng       *rand.Rand
	neighbors []phy.NodeID
	bytes     int
	seq       int64
}

var _ mac.Source = (*Saturated)(nil)

// NewSaturated builds a saturated source choosing destinations uniformly
// from neighbors. The neighbor list must be non-empty; it is copied, so
// the caller may reuse the slice.
func NewSaturated(rng *rand.Rand, neighbors []phy.NodeID, bytes int) (*Saturated, error) {
	if len(neighbors) == 0 {
		return nil, fmt.Errorf("traffic: saturated source needs at least one neighbor")
	}
	cp := make([]phy.NodeID, len(neighbors))
	copy(cp, neighbors)
	return NewSaturatedOwned(rng, cp, bytes)
}

// NewSaturatedOwned is NewSaturated without the defensive copy: the
// caller transfers ownership of the neighbors slice. Bulk assembly
// (sim.Build) carves per-node neighbor slices from one shared backing
// array and hands them over through here.
func NewSaturatedOwned(rng *rand.Rand, neighbors []phy.NodeID, bytes int) (*Saturated, error) {
	if len(neighbors) == 0 {
		return nil, fmt.Errorf("traffic: saturated source needs at least one neighbor")
	}
	if bytes <= 0 {
		return nil, fmt.Errorf("traffic: packet size must be positive, got %d", bytes)
	}
	return &Saturated{rng: rng, neighbors: neighbors, bytes: bytes}, nil
}

// Dequeue always returns a packet (the queue never empties).
func (s *Saturated) Dequeue(now des.Time) (mac.Packet, bool) {
	s.seq++
	dst := s.neighbors[s.rng.Intn(len(s.neighbors))]
	return mac.Packet{Dst: dst, Bytes: s.bytes, Enqueued: now, Seq: s.seq}, true
}

// Generated returns how many packets have been handed out.
func (s *Saturated) Generated() int64 { return s.seq }

// CBR is a paced constant-bit-rate source: one packet enqueued every
// Interval, addressed to a uniformly random neighbor, with a bounded
// queue. It implements mac.Source and drives itself from the scheduler.
type CBR struct {
	sched     *des.Scheduler
	rng       *rand.Rand
	neighbors []phy.NodeID

	interval des.Time
	bytes    int
	queueCap int

	queue   []mac.Packet
	seq     int64
	dropped int64
	kick    func()
	stopped bool
}

var _ mac.Source = (*CBR)(nil)

// CBRConfig configures a paced source.
type CBRConfig struct {
	// Interval is the packet inter-arrival time.
	Interval des.Time
	// Bytes is the packet payload size.
	Bytes int
	// QueueCap bounds the backlog; arrivals beyond it are dropped
	// (counted in Dropped).
	QueueCap int
}

// NewCBR builds a paced source. Call Start to begin arrivals and SetKick
// to connect the owning MAC node's Kick method. The neighbor list is
// copied, so the caller may reuse the slice.
func NewCBR(sched *des.Scheduler, rng *rand.Rand, neighbors []phy.NodeID, cfg CBRConfig) (*CBR, error) {
	if len(neighbors) == 0 {
		return nil, fmt.Errorf("traffic: CBR source needs at least one neighbor")
	}
	cp := make([]phy.NodeID, len(neighbors))
	copy(cp, neighbors)
	return NewCBROwned(sched, rng, cp, cfg)
}

// NewCBROwned is NewCBR without the defensive copy: the caller transfers
// ownership of the neighbors slice (see NewSaturatedOwned).
func NewCBROwned(sched *des.Scheduler, rng *rand.Rand, neighbors []phy.NodeID, cfg CBRConfig) (*CBR, error) {
	if len(neighbors) == 0 {
		return nil, fmt.Errorf("traffic: CBR source needs at least one neighbor")
	}
	if cfg.Interval <= 0 || cfg.Bytes <= 0 || cfg.QueueCap <= 0 {
		return nil, fmt.Errorf("traffic: invalid CBR config %+v", cfg)
	}
	return &CBR{
		sched: sched, rng: rng, neighbors: neighbors,
		interval: cfg.Interval, bytes: cfg.Bytes, queueCap: cfg.QueueCap,
	}, nil
}

// SetKick registers the callback invoked when a packet arrives at an
// empty queue (typically the MAC node's Kick).
func (c *CBR) SetKick(fn func()) { c.kick = fn }

// Start schedules the first arrival one interval from now. Arrivals are
// inert kernel events: their due instants are fixed at scheduling time
// and firing one mutates nothing outside this source's own queue, so a
// pending arrival never blocks the fast-forward gate (the countdown it
// would otherwise pin runs right past it, and the arrival still fires
// at its exact instant).
func (c *CBR) Start() {
	c.sched.ScheduleInert(c.interval, c.arrive)
}

// Stop halts future arrivals (already-queued packets still drain).
func (c *CBR) Stop() { c.stopped = true }

func (c *CBR) arrive() {
	if c.stopped {
		return
	}
	if len(c.queue) >= c.queueCap {
		c.dropped++
	} else {
		c.seq++
		dst := c.neighbors[c.rng.Intn(len(c.neighbors))]
		c.queue = append(c.queue, mac.Packet{
			Dst: dst, Bytes: c.bytes, Enqueued: c.sched.Now(), Seq: c.seq,
		})
		if len(c.queue) == 1 && c.kick != nil {
			c.kick()
		}
	}
	c.sched.ScheduleInert(c.interval, c.arrive)
}

// Dequeue pops the oldest queued packet.
func (c *CBR) Dequeue(now des.Time) (mac.Packet, bool) {
	if len(c.queue) == 0 {
		return mac.Packet{}, false
	}
	p := c.queue[0]
	c.queue = c.queue[1:]
	return p, true
}

// Dropped returns the number of arrivals rejected by the full queue.
func (c *CBR) Dropped() int64 { return c.dropped }

// Backlog returns the current queue length.
func (c *CBR) Backlog() int { return len(c.queue) }
