package traffic

import (
	"math/rand"
	"testing"

	"repro/internal/des"
	"repro/internal/phy"
)

func TestSaturatedAlwaysBacklogged(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := NewSaturated(rng, []phy.NodeID{1, 2, 3}, 1460)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[phy.NodeID]int)
	for i := 0; i < 3000; i++ {
		p, ok := s.Dequeue(des.Time(i))
		if !ok {
			t.Fatal("saturated source returned empty")
		}
		if p.Bytes != 1460 {
			t.Fatalf("packet bytes = %d, want 1460", p.Bytes)
		}
		if p.Enqueued != des.Time(i) {
			t.Fatalf("Enqueued = %v, want %v", p.Enqueued, des.Time(i))
		}
		if p.Seq != int64(i+1) {
			t.Fatalf("Seq = %d, want %d", p.Seq, i+1)
		}
		seen[p.Dst]++
	}
	if s.Generated() != 3000 {
		t.Errorf("Generated = %d, want 3000", s.Generated())
	}
	// Destinations uniform over the three neighbors: each ≈ 1000 ± 15%.
	for _, id := range []phy.NodeID{1, 2, 3} {
		if seen[id] < 850 || seen[id] > 1150 {
			t.Errorf("destination %d chosen %d times, want ≈ 1000", id, seen[id])
		}
	}
	if len(seen) != 3 {
		t.Errorf("unexpected destinations: %v", seen)
	}
}

func TestSaturatedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSaturated(rng, nil, 100); err == nil {
		t.Error("empty neighbor list should be rejected")
	}
	if _, err := NewSaturated(rng, []phy.NodeID{1}, 0); err == nil {
		t.Error("zero packet size should be rejected")
	}
}

func TestSaturatedCopiesNeighborSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	neighbors := []phy.NodeID{1}
	s, err := NewSaturated(rng, neighbors, 100)
	if err != nil {
		t.Fatal(err)
	}
	neighbors[0] = 99
	p, _ := s.Dequeue(0)
	if p.Dst != 1 {
		t.Error("source must not alias the caller's slice")
	}
}

func TestCBRArrivalsAndKick(t *testing.T) {
	sched := des.New(2)
	c, err := NewCBR(sched, sched.Rand(), []phy.NodeID{7}, CBRConfig{
		Interval: 10 * des.Millisecond,
		Bytes:    500,
		QueueCap: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	kicks := 0
	c.SetKick(func() { kicks++ })
	c.Start()
	sched.Run(105 * des.Millisecond)
	if got := c.Backlog(); got != 10 {
		t.Errorf("backlog = %d, want 10 arrivals in 105 ms", got)
	}
	// Kick fires only on the empty→non-empty transition.
	if kicks != 1 {
		t.Errorf("kicks = %d, want 1", kicks)
	}
	// Drain two packets; they pop in FIFO order.
	p1, ok1 := c.Dequeue(sched.Now())
	p2, ok2 := c.Dequeue(sched.Now())
	if !ok1 || !ok2 || p1.Seq != 1 || p2.Seq != 2 {
		t.Errorf("FIFO violation: %+v %+v", p1, p2)
	}
	if p1.Dst != 7 || p1.Bytes != 500 {
		t.Errorf("packet fields: %+v", p1)
	}
	// Empty again → next arrival kicks again.
	for {
		if _, ok := c.Dequeue(sched.Now()); !ok {
			break
		}
	}
	sched.Run(sched.Now() + 10*des.Millisecond)
	if kicks != 2 {
		t.Errorf("kicks after drain = %d, want 2", kicks)
	}
}

func TestCBRQueueCapDrops(t *testing.T) {
	sched := des.New(2)
	c, err := NewCBR(sched, sched.Rand(), []phy.NodeID{1}, CBRConfig{
		Interval: des.Millisecond,
		Bytes:    100,
		QueueCap: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	sched.Run(20 * des.Millisecond) // 20 arrivals into a cap-5 queue
	if c.Backlog() != 5 {
		t.Errorf("backlog = %d, want 5 (capped)", c.Backlog())
	}
	if c.Dropped() != 15 {
		t.Errorf("dropped = %d, want 15", c.Dropped())
	}
}

func TestCBRStop(t *testing.T) {
	sched := des.New(2)
	c, err := NewCBR(sched, sched.Rand(), []phy.NodeID{1}, CBRConfig{
		Interval: des.Millisecond,
		Bytes:    100,
		QueueCap: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	sched.Run(5 * des.Millisecond)
	c.Stop()
	before := c.Backlog()
	sched.Run(50 * des.Millisecond)
	if c.Backlog() != before {
		t.Errorf("arrivals continued after Stop: %d → %d", before, c.Backlog())
	}
}

func TestCBRValidation(t *testing.T) {
	sched := des.New(2)
	good := CBRConfig{Interval: des.Millisecond, Bytes: 100, QueueCap: 10}
	if _, err := NewCBR(sched, sched.Rand(), nil, good); err == nil {
		t.Error("empty neighbors should be rejected")
	}
	for _, cfg := range []CBRConfig{
		{Interval: 0, Bytes: 100, QueueCap: 10},
		{Interval: des.Millisecond, Bytes: 0, QueueCap: 10},
		{Interval: des.Millisecond, Bytes: 100, QueueCap: 0},
	} {
		if _, err := NewCBR(sched, sched.Rand(), []phy.NodeID{1}, cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestCBREmptyDequeue(t *testing.T) {
	sched := des.New(2)
	c, err := NewCBR(sched, sched.Rand(), []phy.NodeID{1}, CBRConfig{
		Interval: des.Millisecond, Bytes: 100, QueueCap: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Dequeue(0); ok {
		t.Error("empty queue should return ok=false")
	}
}
