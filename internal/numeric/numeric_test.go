package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimpsonGridMatchesIntegrate(t *testing.T) {
	fns := []struct {
		name string
		f    func(float64) float64
	}{
		{"poly", func(x float64) float64 { return 3*x*x - 2*x + 1 }},
		{"exp", func(x float64) float64 { return 2 * x * math.Exp(-3*x) }},
		{"trig", func(x float64) float64 { return math.Sin(2*x) + math.Cos(x/2) }},
	}
	for _, n := range []int{2, 5, 64, 512} {
		g, err := NewSimpsonGrid(0, 1, n)
		if err != nil {
			t.Fatal(err)
		}
		var buf []float64
		for _, tt := range fns {
			want, err := Integrate(tt.f, 0, 1, n)
			if err != nil {
				t.Fatal(err)
			}
			buf = g.Tabulate(tt.f, buf)
			got, err := g.Integrate(buf)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-13 {
				t.Errorf("n=%d %s: grid %v vs Integrate %v", n, tt.name, got, want)
			}
		}
	}
}

func TestSimpsonGridShape(t *testing.T) {
	g, err := NewSimpsonGrid(0, 2, 5) // rounds up to 6 panels
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 7 {
		t.Fatalf("Len = %d, want 7 (5 panels rounds up to 6)", g.Len())
	}
	if g.X(0) != 0 || g.X(g.Len()-1) != 2 {
		t.Errorf("endpoints = %v, %v; want 0, 2", g.X(0), g.X(g.Len()-1))
	}
	var wsum float64
	for i := 0; i < g.Len(); i++ {
		wsum += g.Weight(i)
	}
	if math.Abs(wsum-2) > 1e-12 {
		t.Errorf("weights sum to %v, want the interval length 2", wsum)
	}
}

func TestSimpsonGridRejectsBadInterval(t *testing.T) {
	if _, err := NewSimpsonGrid(1, 1, 4); err == nil {
		t.Error("NewSimpsonGrid(1,1) should fail")
	}
	if _, err := NewSimpsonGrid(2, 1, 4); err == nil {
		t.Error("NewSimpsonGrid(2,1) should fail")
	}
}

func TestSimpsonGridIntegrateRejectsWrongLength(t *testing.T) {
	g, err := NewSimpsonGrid(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Integrate(make([]float64, 3)); err == nil {
		t.Error("Integrate with wrong value count should fail")
	}
}

func TestTabulateReusesBuffer(t *testing.T) {
	g, err := NewSimpsonGrid(0, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 0, g.Len())
	got := g.Tabulate(func(x float64) float64 { return x }, buf)
	if &got[0] != &buf[:1][0] {
		t.Error("Tabulate allocated a fresh slice despite sufficient capacity")
	}
	allocs := testing.AllocsPerRun(50, func() {
		got = g.Tabulate(func(x float64) float64 { return x }, got)
	})
	if allocs != 0 {
		t.Errorf("Tabulate into a sized buffer allocates %v times per call", allocs)
	}
}

func TestExpSum(t *testing.T) {
	pref := []float64{0.5, 1.5, 2.0}
	rate := []float64{0.0, 1.0, 2.0}
	s := 0.7
	want := pref[0]*math.Exp(-s*rate[0]) + pref[1]*math.Exp(-s*rate[1]) + pref[2]*math.Exp(-s*rate[2])
	if got := ExpSum(pref, rate, s); math.Abs(got-want) > 1e-15 {
		t.Errorf("ExpSum = %v, want %v", got, want)
	}
	allocs := testing.AllocsPerRun(50, func() { _ = ExpSum(pref, rate, s) })
	if allocs != 0 {
		t.Errorf("ExpSum allocates %v times per call", allocs)
	}
}

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestIntegratePolynomials(t *testing.T) {
	tests := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 3 }, 0, 2, 6},
		{"linear", func(x float64) float64 { return x }, 0, 1, 0.5},
		{"quadratic", func(x float64) float64 { return x * x }, 0, 1, 1.0 / 3},
		{"cubic exact", func(x float64) float64 { return x * x * x }, -1, 2, 3.75},
		{"sin over period", math.Sin, 0, 2 * math.Pi, 0},
		{"exp", math.Exp, 0, 1, math.E - 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Integrate(tt.f, tt.a, tt.b, 200)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-8) {
				t.Errorf("Integrate = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIntegrateOddNRoundsUp(t *testing.T) {
	got, err := Integrate(func(x float64) float64 { return x * x }, 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1.0/3, 1e-6) {
		t.Errorf("Integrate with odd n = %v, want 1/3", got)
	}
}

func TestIntegrateBadInterval(t *testing.T) {
	if _, err := Integrate(math.Sin, 1, 1, 10); err == nil {
		t.Error("want error for empty interval")
	}
	if _, err := Integrate(math.Sin, 2, 1, 10); err == nil {
		t.Error("want error for inverted interval")
	}
}

// TestIntegrateConvergence checks the expected O(h⁴) behaviour of Simpson:
// doubling n should shrink the error by roughly 16x on a smooth integrand.
func TestIntegrateConvergence(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(-x * x) }
	exact := 0.7468241328124270 // ∫₀¹ e^(−x²) dx
	e1err := func(n int) float64 {
		got, err := Integrate(f, 0, 1, n)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(got - exact)
	}
	coarse, fine := e1err(8), e1err(16)
	if fine > coarse/8 { // allow slack below the theoretical 16
		t.Errorf("Simpson not converging at expected rate: err(8)=%v err(16)=%v", coarse, fine)
	}
}

func TestMaximizeGolden(t *testing.T) {
	tests := []struct {
		name  string
		f     func(float64) float64
		a, b  float64
		wantX float64
		wantF float64
	}{
		{"parabola", func(x float64) float64 { return -(x - 0.3) * (x - 0.3) }, 0, 1, 0.3, 0},
		{"sin", math.Sin, 0, math.Pi, math.Pi / 2, 1},
		{"edge max", func(x float64) float64 { return x }, 0, 2, 2, 2},
		{"p(1-p)-like", func(p float64) float64 { return p * math.Exp(-10*p) }, 0, 1, 0.1, 0.1 * math.Exp(-1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x, fx, err := MaximizeGolden(tt.f, tt.a, tt.b, 1e-10)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(x, tt.wantX, 1e-6) {
				t.Errorf("argmax = %v, want %v", x, tt.wantX)
			}
			if !almostEqual(fx, tt.wantF, 1e-6) {
				t.Errorf("max = %v, want %v", fx, tt.wantF)
			}
		})
	}
}

func TestMaximizeGrid(t *testing.T) {
	f := func(x float64) float64 { return -(x - 0.52) * (x - 0.52) }
	x, _, err := MaximizeGrid(f, 0, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, 0.52, 0.011) {
		t.Errorf("grid argmax = %v, want ≈ 0.52", x)
	}
}

func TestMaximizeHybrid(t *testing.T) {
	// A unimodal function with a sharp peak that a coarse grid alone would
	// place imprecisely.
	f := func(x float64) float64 { return math.Exp(-1000 * (x - 0.123) * (x - 0.123)) }
	x, fx, err := MaximizeHybrid(f, 0, 1, 50, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, 0.123, 1e-6) {
		t.Errorf("hybrid argmax = %v, want 0.123", x)
	}
	if !almostEqual(fx, 1, 1e-6) {
		t.Errorf("hybrid max = %v, want 1", fx)
	}
}

func TestMaximizeBadInterval(t *testing.T) {
	if _, _, err := MaximizeGolden(math.Sin, 1, 0, 1e-9); err == nil {
		t.Error("MaximizeGolden: want error for inverted interval")
	}
	if _, _, err := MaximizeGrid(math.Sin, 1, 1, 5); err == nil {
		t.Error("MaximizeGrid: want error for empty interval")
	}
	if _, _, err := MaximizeHybrid(math.Sin, 5, 2, 10, 1e-9); err == nil {
		t.Error("MaximizeHybrid: want error for inverted interval")
	}
}

// TestMaximizeAgainstGridProperty: golden-section on random unimodal
// quadratics must agree with a fine grid scan.
func TestMaximizeAgainstGridProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		c := rng.Float64()
		f := func(x float64) float64 { return -(x - c) * (x - c) }
		xg, _, err := MaximizeGolden(f, 0, 1, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(xg, c, 1e-6) {
			t.Fatalf("golden argmax %v, want %v", xg, c)
		}
	}
}

func TestTruncGeomMean(t *testing.T) {
	tests := []struct {
		name   string
		p      float64
		t1, t2 int
		want   float64
	}{
		{"degenerate support", 0.5, 7, 7, 7},
		{"inverted support", 0.5, 9, 3, 9},
		{"p zero all mass at t1", 0, 3, 10, 3},
		{"p one uniform", 1, 0, 10, 5},
		{"two-point p=0.5", 0.5, 0, 1, 1.0 / 3}, // weights 1, 0.5 → (0+0.5)/1.5
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TruncGeomMean(tt.p, tt.t1, tt.t2); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("TruncGeomMean(%v, %v, %v) = %v, want %v", tt.p, tt.t1, tt.t2, got, tt.want)
			}
		})
	}
}

// TestTruncGeomMeanBounds: for any p in (0,1) the mean lies in [t1, t2] and
// increases with p (heavier tail → longer failures).
func TestTruncGeomMeanBounds(t *testing.T) {
	f := func(pRaw float64, span uint8) bool {
		p := math.Mod(math.Abs(pRaw), 1)
		if math.IsNaN(p) {
			return true
		}
		t1 := 6
		t2 := t1 + int(span%100) + 1
		m := TruncGeomMean(p, t1, t2)
		return m >= float64(t1) && m <= float64(t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	prev := TruncGeomMean(0.001, 6, 115)
	for _, p := range []float64{0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		cur := TruncGeomMean(p, 6, 115)
		if cur < prev {
			t.Fatalf("TruncGeomMean not increasing in p at p=%v", p)
		}
		prev = cur
	}
}

// TestTruncGeomMeanMatchesSampling cross-checks the closed form against a
// direct sample mean of the truncated distribution.
func TestTruncGeomMeanMatchesSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	p, t1, t2 := 0.3, 6, 20
	// Sample by inverse transform over the finite support.
	weights := make([]float64, t2-t1+1)
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(p, float64(i))
		total += weights[i]
	}
	const n = 500000
	var sum float64
	for i := 0; i < n; i++ {
		u := rng.Float64() * total
		acc := 0.0
		for j, w := range weights {
			acc += w
			if u <= acc {
				sum += float64(t1 + j)
				break
			}
		}
	}
	got := sum / n
	want := TruncGeomMean(p, t1, t2)
	if !almostEqual(got, want, 0.01) {
		t.Errorf("sample mean %v, closed form %v", got, want)
	}
}

func TestKahanSum(t *testing.T) {
	var k KahanSum
	if k.Value() != 0 {
		t.Errorf("zero value sum = %v, want 0", k.Value())
	}
	// Classic catastrophic cancellation case: 1 + tiny*many.
	k.Add(1)
	const tiny = 1e-16
	for i := 0; i < 100000; i++ {
		k.Add(tiny)
	}
	want := 1 + 100000*tiny
	if !almostEqual(k.Value(), want, 1e-18) {
		t.Errorf("Kahan sum = %.20f, want %.20f", k.Value(), want)
	}
	// Naive summation provably loses these increments entirely.
	naive := 1.0
	for i := 0; i < 100000; i++ {
		naive += tiny
	}
	if naive != 1.0 {
		t.Skip("platform sums tiny increments natively; compensation comparison moot")
	}
}

func TestKahanSumMixedSigns(t *testing.T) {
	var k KahanSum
	vals := []float64{1e10, 1, -1e10, 1}
	for _, v := range vals {
		k.Add(v)
	}
	if !almostEqual(k.Value(), 2, 1e-9) {
		t.Errorf("mixed-sign Kahan sum = %v, want 2", k.Value())
	}
}
