// Package numeric provides the small numerical-analysis toolkit the
// analytical model needs: composite Simpson quadrature (one-shot and as
// a reusable tabulated grid for integrands evaluated many times),
// golden-section maximization, compensated summation, and the truncated
// geometric distribution the paper uses for failed-handshake durations.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadInterval is returned when an integration or optimization interval
// is empty or inverted.
var ErrBadInterval = errors.New("numeric: interval upper bound not greater than lower bound")

// Integrate computes the integral of f over [a, b] using composite
// Simpson's rule with n subintervals (n is rounded up to the next even
// number, minimum 2). The integrands in this repository are smooth, so
// Simpson converges quickly.
func Integrate(f func(float64) float64, a, b float64, n int) (float64, error) {
	if b <= a {
		return 0, ErrBadInterval
	}
	if n < 2 {
		n = 2
	}
	if n%2 != 0 {
		n++
	}
	h := (b - a) / float64(n)
	var sum KahanSum
	sum.Add(f(a))
	sum.Add(f(b))
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum.Add(4 * f(x))
		} else {
			sum.Add(2 * f(x))
		}
	}
	return sum.Value() * h / 3, nil
}

// MaximizeGolden finds the argmax of a unimodal function f on [a, b] by
// golden-section search, returning (x, f(x)). It stops when the bracket is
// narrower than tol (minimum 1e-12).
func MaximizeGolden(f func(float64) float64, a, b, tol float64) (float64, float64, error) {
	if b <= a {
		return 0, 0, ErrBadInterval
	}
	if tol < 1e-12 {
		tol = 1e-12
	}
	const invPhi = 0.6180339887498949 // (√5 − 1)/2
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		}
	}
	x := (a + b) / 2
	return x, f(x), nil
}

// MaximizeGrid scans [a, b] at n+1 evenly spaced points and returns the
// best (x, f(x)). It is the brute-force baseline for MaximizeGolden and is
// robust to non-unimodal f.
func MaximizeGrid(f func(float64) float64, a, b float64, n int) (float64, float64, error) {
	if b <= a {
		return 0, 0, ErrBadInterval
	}
	if n < 1 {
		n = 1
	}
	bestX, bestF := a, f(a)
	for i := 1; i <= n; i++ {
		x := a + (b-a)*float64(i)/float64(n)
		if v := f(x); v > bestF {
			bestX, bestF = x, v
		}
	}
	return bestX, bestF, nil
}

// MaximizeHybrid combines a coarse grid scan with golden-section
// refinement around the best grid cell. It tolerates mild deviations from
// unimodality while converging tightly.
func MaximizeHybrid(f func(float64) float64, a, b float64, gridN int, tol float64) (float64, float64, error) {
	x0, _, err := MaximizeGrid(f, a, b, gridN)
	if err != nil {
		return 0, 0, err
	}
	step := (b - a) / float64(gridN)
	lo := math.Max(a, x0-step)
	hi := math.Min(b, x0+step)
	return MaximizeGolden(f, lo, hi, tol)
}

// SimpsonGrid is a fixed composite-Simpson quadrature grid over [a, b]:
// precomputed node positions and weights for integrands that are
// evaluated many times on the same interval. Callers tabulate the
// p-independent parts of an integrand once (Tabulate into a reused
// buffer, or X/Weight directly) and then integrate repeatedly with no
// per-call allocation — the workspace pattern behind the memoized
// analytical model in internal/core.
type SimpsonGrid struct {
	x []float64 // node positions, len = panels+1
	w []float64 // Simpson weights including the h/3 factor
}

// NewSimpsonGrid builds the grid for n subintervals over [a, b] (n is
// rounded up to the next even number, minimum 2, exactly like Integrate).
func NewSimpsonGrid(a, b float64, n int) (*SimpsonGrid, error) {
	if b <= a {
		return nil, ErrBadInterval
	}
	if n < 2 {
		n = 2
	}
	if n%2 != 0 {
		n++
	}
	h := (b - a) / float64(n)
	g := &SimpsonGrid{
		x: make([]float64, n+1),
		w: make([]float64, n+1),
	}
	for i := 0; i <= n; i++ {
		g.x[i] = a + float64(i)*h
		switch {
		case i == 0 || i == n:
			g.w[i] = h / 3
		case i%2 == 1:
			g.w[i] = 4 * h / 3
		default:
			g.w[i] = 2 * h / 3
		}
	}
	g.x[n] = b // exact endpoint, immune to rounding in a+n*h
	return g, nil
}

// Len returns the number of grid nodes (panels + 1).
func (g *SimpsonGrid) Len() int { return len(g.x) }

// X returns the position of node i.
func (g *SimpsonGrid) X(i int) float64 { return g.x[i] }

// Weight returns the quadrature weight of node i (h/3 factor included).
func (g *SimpsonGrid) Weight(i int) float64 { return g.w[i] }

// Tabulate evaluates f at every node into buf, reusing it when its
// capacity suffices (the no-per-call-allocation workspace contract), and
// returns the filled slice.
func (g *SimpsonGrid) Tabulate(f func(float64) float64, buf []float64) []float64 {
	if cap(buf) < len(g.x) {
		buf = make([]float64, len(g.x))
	}
	buf = buf[:len(g.x)]
	for i, x := range g.x {
		buf[i] = f(x)
	}
	return buf
}

// Integrate computes Σ wᵢ·vals[i] with compensated summation; vals must
// hold one integrand value per node.
func (g *SimpsonGrid) Integrate(vals []float64) (float64, error) {
	if len(vals) != len(g.x) {
		return 0, fmt.Errorf("numeric: grid has %d nodes, got %d values", len(g.x), len(vals))
	}
	var sum KahanSum
	for i, v := range vals {
		sum.Add(g.w[i] * v)
	}
	return sum.Value(), nil
}

// ExpSum returns Σ pref[i]·exp(-s·rate[i]) with compensated summation.
// It is the hot kernel of the memoized analytical model: a tabulated
// quadrature whose only remaining parameter dependence is the
// exponential rate s. Slices must have equal length; the call allocates
// nothing.
func ExpSum(pref, rate []float64, s float64) float64 {
	_ = pref[len(rate)-1] // bounds hint: one check instead of two per node
	var sum KahanSum
	for i, r := range rate {
		sum.Add(pref[i] * math.Exp(-s*r))
	}
	return sum.Value()
}

// TruncGeomMean returns the mean of a geometric-like distribution with
// parameter p truncated to the integer support {t1, t1+1, ..., t2}:
//
//	E[T] = (1−p)/(1−p^(t2−t1+1)) · Σ_{i=0}^{t2−t1} p^i · (t1+i)
//
// This is the paper's equation (3) for the duration of a failed handshake.
// Degenerate cases: t2 <= t1 returns t1; p <= 0 returns t1 (all mass on the
// lower bound); p >= 1 returns the midpoint (the distribution becomes
// uniform in the limit p→1).
func TruncGeomMean(p float64, t1, t2 int) float64 {
	if t2 <= t1 {
		return float64(t1)
	}
	if p <= 0 {
		return float64(t1)
	}
	n := t2 - t1 // support has n+1 points
	if p >= 1 {
		return float64(t1) + float64(n)/2
	}
	var sum KahanSum
	pi := 1.0
	for i := 0; i <= n; i++ {
		sum.Add(pi * float64(t1+i))
		pi *= p
	}
	norm := (1 - p) / (1 - math.Pow(p, float64(n+1)))
	return norm * sum.Value()
}

// KahanSum accumulates float64 values with Kahan–Babuška compensation,
// limiting round-off when summing many terms of mixed magnitude. The zero
// value is an empty sum ready to use.
type KahanSum struct {
	sum, c float64
}

// Add accumulates v into the sum.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if math.Abs(k.sum) >= math.Abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Value returns the compensated sum.
func (k *KahanSum) Value() float64 {
	return k.sum + k.c
}
