// Package sim seeds a cachekey violation: a json:"-" field the build
// path reads, next to an allowlisted fastforward exclusion.
package sim

// Key stands in for the cache key type.
type Key [4]byte

// Scenario is the fixture's run description.
type Scenario struct {
	Name string `json:"name"`
	// Debug is excluded from the canonical bytes but read in Build.
	Debug bool `json:"-"` // cachekey
	// FastForward matches the global result-invariant allowlist.
	FastForward bool `json:"fastforward,omitempty"`
	// Partition matches the allowlist too: only its synonym spelling is
	// normalized away, so the exclusion is result-invariant.
	Partition string `json:"partition,omitempty"`
}

// MarshalScenario produces the canonical bytes.
func MarshalScenario(sc Scenario) []byte { return []byte(sc.Name) }

// ScenarioKey hashes the canonical bytes after normalizing the
// result-invariant fields.
func ScenarioKey(sc Scenario) Key {
	sc.FastForward = false
	if sc.Partition == "auto" {
		sc.Partition = ""
	}
	_ = MarshalScenario(sc)
	return Key{}
}

// Build consumes the scenario.
func Build(sc Scenario) int {
	v := len(sc.Name)
	if sc.Debug {
		v++
	}
	if sc.FastForward {
		v++
	}
	v += len(sc.Partition)
	return v
}
