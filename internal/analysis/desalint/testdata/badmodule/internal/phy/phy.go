// Package phy violates every desalint rule at least once; the suite
// test asserts each analyzer fires on it.
package phy

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/des"
)

// Jitter couples the run to the wall clock and the global generator.
func Jitter() int64 {
	rand.Seed(time.Now().UnixNano()) // wallclock + globalrand
	return rand.Int63()              // globalrand
}

// Sum accumulates floats in map order.
func Sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // maporder (float accumulation)
	}
	return s
}

// pending stores a pointer handle.
var pending *des.Timer // timerhandle

// Hot allocates on a marked hot path.
//
//desalint:hotpath
func Hot(x int) string {
	return fmt.Sprintf("%d", x) // hotpath
}

//desalint:comutative typo in the verb
var typoAnchor int // desalint (unknown verb)
