// Package server mirrors the real repro/internal/server: serving
// infrastructure that runs *around* simulations, never inside them, and
// therefore sits outside desalint's SimPackages. The wall-clock read
// below is legitimate daemon code and must NOT be flagged — the scoping
// test pins that no diagnostic comes from this package.
package server

import "time"

// Uptime is the kind of wall-clock arithmetic a daemon legitimately
// does (drain deadlines, Retry-After hints) and a simulation never may.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
