// Package des is a stub kernel for the bad-module fixture.
package des

// Time is a simulation timestamp.
type Time int64

// Timer is a generation-checked value handle.
type Timer struct {
	gen uint32
	at  Time
}

// Active reports whether the handle is live.
func (t Timer) Active() bool { return t.gen != 0 }

// Scheduler is a stub scheduler; the inertsafety analyzer keys on the
// type name and method names, so only the signatures matter.
type Scheduler struct{}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return 0 }

// Schedule schedules an active callback after delay d.
func (s *Scheduler) Schedule(d Time, fn func()) Timer { return Timer{} }

// ScheduleInert schedules an inert callback after delay d.
func (s *Scheduler) ScheduleInert(d Time, fn func()) Timer { return Timer{} }
