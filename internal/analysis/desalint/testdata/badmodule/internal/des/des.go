// Package des is a stub kernel for the bad-module fixture.
package des

// Time is a simulation timestamp.
type Time int64

// Timer is a generation-checked value handle.
type Timer struct {
	gen uint32
	at  Time
}

// Active reports whether the handle is live.
func (t Timer) Active() bool { return t.gen != 0 }
