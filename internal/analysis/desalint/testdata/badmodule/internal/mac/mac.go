// Package mac seeds one violation of each dataflow-backed rule: an
// inert callback writing state the active path reads, a goroutine
// mutating a captured variable, and a stale //desalint:ignore line.
package mac

import "repro/internal/des"

// Station couples an inert countdown to active-path state.
type Station struct {
	sched   *des.Scheduler
	backoff int
}

// resume is the active-path reader of backoff.
func (st *Station) resume() {
	if st.backoff > 0 {
		st.backoff = 0
	}
}

// countdown decrements backoff from an inert timer. inertsafety.
func (st *Station) countdown() {
	st.backoff--
}

// Start wires the conflicting callbacks.
func (st *Station) Start() {
	st.sched.Schedule(1, st.resume)
	st.sched.ScheduleInert(5, st.countdown)
}

// Spawn launches a goroutine that writes captured state. sharedstate.
func Spawn() int {
	total := 0
	go func() {
		total++
	}()
	return total //desalint:ignore maporder stale suppression: nothing on this line ranges a map
}
