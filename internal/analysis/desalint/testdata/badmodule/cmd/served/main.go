// Command served is a daemon-shaped CLI (think cmd/simd): an HTTP-ish
// serving loop around the simulator. Serving infrastructure in cmd/ is
// still in scope for the reproducibility rules — the wall-clock read
// below must be flagged exactly once, same as in any other cmd package.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now() // wallclock: in scope even in a server-like cmd
	fmt.Println("serving since", start)
}
