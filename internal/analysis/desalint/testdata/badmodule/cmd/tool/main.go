// Command tool shows that cmd packages are in scope for the
// reproducibility rules: the wall-clock read and the global-generator
// draws below are flagged just like in a sim package.
package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	rand.Seed(1)                        // globalrand
	fmt.Println(time.Now(), rand.Int()) // wallclock + globalrand
}
