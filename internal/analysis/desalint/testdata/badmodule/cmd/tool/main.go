// Command tool shows the sim-only scoping: wall-clock and global rand
// are fine outside simulation packages (the bench harness timestamps
// its reports), while the timerhandle contract still applies.
package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	rand.Seed(1) // allowed here: not a sim package
	fmt.Println(time.Now(), rand.Int())
}
