// Package desalint assembles the simulator's determinism and hot-path
// analyzers into one suite and runs them over module packages. It is
// the library behind cmd/desalint and the self-test that keeps the
// repository lint-clean.
//
// Scoping: analyzers marked SimOnly (wallclock, globalrand, maporder,
// and the desaflow-based inertsafety, cachekey and sharedstate) apply
// only to the simulation packages — the packages whose code runs inside
// a simulation and therefore must be bit-reproducible — plus the cmd/
// tree, whose CLIs drive simulations and must not smuggle wall-clock
// time or global randomness into them. That includes daemon-shaped
// commands like cmd/simd: serving loops in cmd/ get no exemption, which
// keeps the pressure on to put wall-clock plumbing where it belongs.
// That place is repro/internal/server, deliberately absent from
// SimPackages: it is serving infrastructure that runs *around*
// simulations (drain deadlines, Retry-After hints, connection
// lifetimes), never inside them, so wall-clock time and goroutines are
// legitimate there and reproducibility of what it serves is enforced in
// the sim packages it calls into. The hotpath and timerhandle
// analyzers run module-wide: hotpath only triggers on annotated
// functions, and a *des.Timer is a contract violation wherever it
// appears.
package desalint

import (
	"fmt"
	"strings"

	"repro/internal/analysis/cachekey"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/globalrand"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/inertsafety"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/sharedstate"
	"repro/internal/analysis/timerhandle"
	"repro/internal/analysis/wallclock"
)

// Analyzers is the full suite in reporting order.
var Analyzers = []*framework.Analyzer{
	wallclock.Analyzer,
	globalrand.Analyzer,
	maporder.Analyzer,
	hotpath.Analyzer,
	timerhandle.Analyzer,
	inertsafety.Analyzer,
	cachekey.Analyzer,
	sharedstate.Analyzer,
}

// SimPackages lists the import paths (and their subtrees) whose code
// executes inside simulations and is therefore held to the
// reproducibility rules.
var SimPackages = []string{
	"repro/internal/des",
	"repro/internal/phy",
	"repro/internal/mac",
	"repro/internal/traffic",
	"repro/internal/mobility",
	"repro/internal/neighbor",
	"repro/internal/experiments",
	"repro/internal/sim",
	"repro/internal/cache",
	"repro/internal/telemetry",
	"repro/internal/core",
	"repro/cmd",
}

// IsSimPackage reports whether path falls under the simulation subtree.
func IsSimPackage(path string) bool {
	for _, p := range SimPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// knownVerbs are the accepted //desalint: annotation verbs.
var knownVerbs = map[string]bool{
	"commutative": true,
	"hotpath":     true,
	"inertsafe":   true,
	"ignore":      true,
}

// analyzerNames is used to validate the first argument of
// //desalint:ignore.
func analyzerNames() map[string]bool {
	names := map[string]bool{"desalint": true}
	for _, a := range Analyzers {
		names[a.Name] = true
	}
	return names
}

// Run loads the packages matched by patterns (resolved against base,
// e.g. "./...") inside the module rooted at moduleRoot and applies the
// suite. It returns all diagnostics in positional order; a non-nil
// error means loading or typechecking failed, not that violations were
// found.
func Run(moduleRoot, base string, patterns []string) ([]framework.Diagnostic, error) {
	modPath, err := framework.ModulePath(moduleRoot)
	if err != nil {
		return nil, err
	}
	cfg := framework.LoadConfig{ModuleRoot: moduleRoot, ModulePath: modPath}
	loader, err := framework.NewLoader(cfg)
	if err != nil {
		return nil, err
	}
	paths, err := framework.ExpandPatterns(cfg, base, patterns)
	if err != nil {
		return nil, err
	}
	var diags []framework.Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		diags = append(diags, checkAnnotationVerbs(pkg)...)
		for _, a := range Analyzers {
			if a.SimOnly && !IsSimPackage(path) {
				continue
			}
			ds, err := framework.RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			diags = append(diags, ds...)
		}
		// After the whole suite ran, any ignore directive that
		// suppressed nothing is stale and reported itself.
		for _, s := range pkg.UnusedSuppressions() {
			diags = append(diags, framework.Diagnostic{
				Pos:      pkg.Fset.Position(s.Pos),
				Analyzer: "desalint",
				Message:  fmt.Sprintf("unused //desalint:ignore %s suppression: no diagnostic matches this line", s.Analyzer),
			})
		}
	}
	framework.SortDiagnostics(diags)
	return diags, nil
}

// checkAnnotationVerbs reports //desalint: comments with unknown verbs
// (so a typo like //desalint:comutative fails loudly instead of
// silently disabling a suppression) and malformed ignore directives.
func checkAnnotationVerbs(pkg *framework.Package) []framework.Diagnostic {
	names := analyzerNames()
	var diags []framework.Diagnostic
	for _, a := range pkg.AllAnnotations() {
		if !knownVerbs[a.Verb] {
			diags = append(diags, framework.Diagnostic{
				Pos:      pkg.Fset.Position(a.Pos),
				Analyzer: "desalint",
				Message:  fmt.Sprintf("unknown annotation //desalint:%s (known verbs: commutative, hotpath, inertsafe, ignore)", a.Verb),
			})
			continue
		}
		if a.Verb != "ignore" {
			continue
		}
		name, reason, _ := strings.Cut(a.Arg, " ")
		switch {
		case !names[name]:
			diags = append(diags, framework.Diagnostic{
				Pos:      pkg.Fset.Position(a.Pos),
				Analyzer: "desalint",
				Message:  fmt.Sprintf("//desalint:ignore names unknown analyzer %q", name),
			})
		case strings.TrimSpace(reason) == "":
			diags = append(diags, framework.Diagnostic{
				Pos:      pkg.Fset.Position(a.Pos),
				Analyzer: "desalint",
				Message:  fmt.Sprintf("//desalint:ignore %s needs a reason", name),
			})
		}
	}
	return diags
}
