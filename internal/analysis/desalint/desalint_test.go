package desalint

import (
	"os"
	"path/filepath"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestSuiteInventory pins the analyzer roster: eight analyzers, unique
// names, with the reproducibility trio and the dataflow-backed trio
// scoped to sim packages.
func TestSuiteInventory(t *testing.T) {
	if len(Analyzers) != 8 {
		t.Fatalf("expected 8 analyzers, got %d", len(Analyzers))
	}
	simOnly := map[string]bool{
		"wallclock":   true,
		"globalrand":  true,
		"maporder":    true,
		"hotpath":     false,
		"timerhandle": false,
		"inertsafety": true,
		"cachekey":    true,
		"sharedstate": true,
	}
	seen := map[string]bool{}
	for _, a := range Analyzers {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		want, ok := simOnly[a.Name]
		if !ok {
			t.Errorf("unexpected analyzer %q", a.Name)
			continue
		}
		if a.SimOnly != want {
			t.Errorf("%s: SimOnly = %v, want %v", a.Name, a.SimOnly, want)
		}
	}
}

func TestIsSimPackage(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/des":         true,
		"repro/internal/phy":         true,
		"repro/internal/mac":         true,
		"repro/internal/experiments": true,
		"repro/internal/des/sub":     true,
		"repro/internal/plot":        false,
		"repro/internal/analysis":    false,
		"repro/cmd":                  true,
		"repro/cmd/bench":            true,
		"repro":                      false,
	} {
		if got := IsSimPackage(path); got != want {
			t.Errorf("IsSimPackage(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestRepositoryIsClean is the meta-test required by the suite: the
// repository itself must lint clean, so any future PR introducing a
// wall-clock read, global rand draw, unordered map range, hot-path
// allocation or pointer timer handle fails here (and in CI).
func TestRepositoryIsClean(t *testing.T) {
	root := moduleRoot(t)
	diags, err := Run(root, root, []string{"./..."})
	if err != nil {
		t.Fatalf("desalint failed to run over the repository: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repository is not lint-clean: %s", d)
	}
}

// TestBadModuleIsCaught proves end to end that every analyzer (and the
// annotation-verb check) fires on a module seeded with one violation of
// each kind, and that sim-only analyzers skip non-sim packages.
func TestBadModuleIsCaught(t *testing.T) {
	badRoot, err := filepath.Abs(filepath.Join("testdata", "badmodule"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(badRoot, badRoot, []string{"./..."})
	if err != nil {
		t.Fatalf("desalint failed on bad module: %v", err)
	}
	got := map[string]int{}
	fromTool, fromServed, fromServer := 0, 0, 0
	for _, d := range diags {
		got[d.Analyzer]++
		switch filepath.Base(filepath.Dir(d.Pos.Filename)) {
		case "tool":
			fromTool++
		case "served":
			fromServed++
		case "server":
			fromServer++
		}
	}
	// cmd packages are in scope for the reproducibility rules: the
	// tool's wall-clock read and two global-rand draws must be flagged.
	if fromTool != 3 {
		t.Errorf("cmd/tool: %d diagnostic(s), want 3 (wallclock + 2 globalrand)", fromTool)
	}
	// A daemon-shaped cmd is still a cmd: its wall-clock read is caught
	// exactly once, not excused by looking like serving infrastructure.
	if fromServed != 1 {
		t.Errorf("cmd/served: %d diagnostic(s), want exactly 1 (wallclock)", fromServed)
	}
	// internal/server is outside SimPackages by design — its wall-clock
	// use is daemon plumbing, not simulation code — so nothing fires.
	if fromServer != 0 {
		t.Errorf("internal/server: %d diagnostic(s), want 0 (out of scope)", fromServer)
	}
	want := map[string]int{
		"wallclock":   3, // phy time.Now, cmd/tool time.Now, cmd/served time.Now
		"globalrand":  4, // phy rand.Seed + rand.Int63, cmd/tool rand.Seed + rand.Int
		"maporder":    1, // float accumulation
		"hotpath":     1, // fmt.Sprintf in marked function
		"timerhandle": 1, // *des.Timer package variable
		"desalint":    2, // //desalint:comutative typo, unused ignore suppression
		"inertsafety": 1, // inert countdown writes backoff read by active resume
		"cachekey":    1, // Debug json:"-" read by Build
		"sharedstate": 1, // goroutine writes captured total
	}
	for a, n := range want {
		if got[a] != n {
			t.Errorf("analyzer %s: %d diagnostic(s), want %d (all: %v)", a, got[a], n, diags)
		}
	}
}
