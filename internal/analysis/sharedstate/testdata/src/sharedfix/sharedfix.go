// Package sharedfix exercises the sharedstate diagnostics: unguarded
// writes to captured and package-level state inside goroutines, with
// mutex- and Once-guarded counterparts, goroutine-local state, the
// line-level ignore directive, and a named-function launch.
package sharedfix

import "sync"

var hits int

var mu sync.Mutex

var once sync.Once

type opts struct{ n int }

type job struct{ done bool }

func captured() {
	total := 0
	j := &job{}
	go func() {
		total++       // want `goroutine writes captured variable total without holding a lock`
		j.done = true // want `goroutine writes state behind captured pointer j without holding a lock`
	}()
}

func pkgLevel() {
	go func() {
		hits++ // want `goroutine writes package-level variable hits without holding a lock`
	}()
}

func guarded() {
	total := 0
	go func() {
		mu.Lock()
		total++ // guarded: no diagnostic
		mu.Unlock()
		mu.Lock()
		defer mu.Unlock()
		total++ // deferred unlock keeps the region guarded
	}()
}

func conditionalLockLeaksNothing(c bool) {
	total := 0
	go func() {
		if c {
			mu.Lock()
			mu.Unlock()
		}
		total++ // want `goroutine writes captured variable total without holding a lock`
	}()
}

func onceGuarded() {
	total := 0
	go func() {
		once.Do(func() {
			total++ // Once.Do body runs exactly once: no diagnostic
		})
	}()
}

func goroutineLocal() {
	shared := opts{}
	go func() {
		local := opts{}
		local.n = 1 // declared inside the goroutine: fine
		o := shared
		o.n = 2 // copy made inside the goroutine: fine
	}()
}

func annotated() {
	results := make([]int, 4)
	go func(i int) {
		results[i] = i //desalint:ignore sharedstate index-disjoint writes, joined by a WaitGroup before any read
	}(0)
}

func bump() {
	hits++
}

func namedLaunch() {
	go bump() // want `goroutine runs bump, which writes package-level variable sharedfix.hits`
}
