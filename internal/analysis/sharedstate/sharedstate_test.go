package sharedstate_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sharedstate"
)

func TestSharedState(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), sharedstate.Analyzer, "sharedfix")
}
