// Package sharedstate is the pre-flight gate for a parallel intra-run
// kernel (ROADMAP: GloMoSim-style deterministic parallel DES): before
// events may execute concurrently, every write to state visible outside
// a goroutine must be machine-detectable. The analyzer flags writes to
// captured or package-level variables inside `go` launches in sim
// packages unless the write is under a held lock (Lock/RLock earlier in
// the same statement sequence, sync.Once.Do callback) or the line
// carries //desalint:ignore sharedstate <reason> (e.g. index-disjoint
// writes into a shared slice, which are safe but not provably so
// intra-procedurally).
package sharedstate

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the goroutine shared-state write check.
var Analyzer = &framework.Analyzer{
	Name:    "sharedstate",
	Doc:     "goroutines in sim packages must not write captured or package-level state without a sync primitive (//desalint:ignore sharedstate <reason> to override)",
	SimOnly: true,
	Run:     run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkLaunch(pass, g)
			return true
		})
	}
	return nil
}

// checkLaunch analyzes one `go` statement.
func checkLaunch(pass *framework.Pass, g *ast.GoStmt) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		w := &walker{pass: pass, lit: fun}
		w.scan(fun.Body.List, 0)
	default:
		// Named function or method: its locals are its own; only
		// package-level writes in its direct summary are shared.
		fn := calledFunc(pass.Pkg, g.Call)
		if fn == nil {
			return
		}
		eff := framework.SummarizedEffects(pass.Pkg, fn)
		for _, loc := range framework.SortedLocs(eff.Writes) {
			if loc.Kind == framework.LocPkgVar {
				pass.Reportf(g.Pos(),
					"goroutine runs %s, which writes package-level variable %s without synchronization visible here; guard the write or annotate //desalint:ignore sharedstate <reason>",
					fn.Name(), loc)
			}
		}
	}
}

func calledFunc(pkg *framework.Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// walker scans a goroutine body in statement order, tracking how many
// locks are held when each write executes.
type walker struct {
	pass *framework.Pass
	lit  *ast.FuncLit
}

// scan walks one statement list with the lock depth held at its entry.
// Lock state acquired inside a nested branch does not leak past the
// branch (a conditional Lock guards nothing after the if).
func (w *walker) scan(stmts []ast.Stmt, locked int) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				switch lockDelta(call) {
				case +1:
					locked++
					continue
				case -1:
					if locked > 0 {
						locked--
					}
					continue
				}
				if body := onceDoBody(w.pass.Pkg, call); body != nil {
					w.scan(body.List, locked+1)
					continue
				}
				w.scanExpr(s.X, locked)
				continue
			}
			w.scanExpr(s.X, locked)

		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				w.scanExpr(rhs, locked)
			}
			for _, lhs := range s.Lhs {
				if s.Tok == token.DEFINE {
					continue
				}
				w.checkWrite(lhs, locked)
			}

		case *ast.IncDecStmt:
			w.checkWrite(s.X, locked)

		case *ast.IfStmt:
			w.scanStmtAsList(s.Init, locked)
			w.scan(s.Body.List, locked)
			if s.Else != nil {
				w.scanStmtAsList(s.Else, locked)
			}

		case *ast.ForStmt:
			w.scanStmtAsList(s.Init, locked)
			w.scanStmtAsList(s.Post, locked)
			w.scan(s.Body.List, locked)

		case *ast.RangeStmt:
			if s.Tok == token.ASSIGN {
				if s.Key != nil {
					w.checkWrite(s.Key, locked)
				}
				if s.Value != nil {
					w.checkWrite(s.Value, locked)
				}
			}
			w.scan(s.Body.List, locked)

		case *ast.BlockStmt:
			w.scan(s.List, locked)

		case *ast.SwitchStmt:
			w.scanStmtAsList(s.Init, locked)
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					w.scan(c.Body, locked)
				}
			}

		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					w.scan(c.Body, locked)
				}
			}

		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CommClause); ok {
					w.scan(c.Body, locked)
				}
			}

		case *ast.LabeledStmt:
			w.scanStmtAsList(s.Stmt, locked)

		case *ast.DeferStmt:
			// Deferred Unlock does not end the guarded region; other
			// deferred calls run at exit — treat their writes with the
			// entry lock state.
			if lockDelta(s.Call) == 0 {
				w.scanExpr(s.Call, locked)
			}

		case *ast.GoStmt:
			// A nested goroutine is its own launch; the outer walker
			// stops here (the inspector visits it separately).

		case *ast.ReturnStmt, *ast.BranchStmt, *ast.DeclStmt, *ast.SendStmt, *ast.EmptyStmt:
		}
	}
}

func (w *walker) scanStmtAsList(s ast.Stmt, locked int) {
	if s == nil {
		return
	}
	w.scan([]ast.Stmt{s}, locked)
}

// scanExpr descends into expressions looking for function-literal
// bodies executed (or escaping) inside the goroutine; their writes
// belong to this launch too.
func (w *walker) scanExpr(e ast.Expr, locked int) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.scan(lit.Body.List, locked)
			return false
		}
		return true
	})
}

// checkWrite classifies one assignment target by its base variable.
func (w *walker) checkWrite(lhs ast.Expr, locked int) {
	if locked > 0 {
		return
	}
	base, throughPointer := baseIdent(lhs)
	if base == nil {
		return
	}
	obj, ok := identObject(w.pass.Pkg, base).(*types.Var)
	if !ok {
		return
	}
	switch {
	case obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope():
		w.pass.Reportf(lhs.Pos(),
			"goroutine writes package-level variable %s without holding a lock; guard it or annotate //desalint:ignore sharedstate <reason>", obj.Name())
	case obj.Pos() < w.lit.Pos() || obj.Pos() > w.lit.End():
		kind := "captured variable"
		if throughPointer {
			kind = "state behind captured pointer"
		}
		w.pass.Reportf(lhs.Pos(),
			"goroutine writes %s %s without holding a lock; guard it or annotate //desalint:ignore sharedstate <reason>", kind, obj.Name())
	}
}

// baseIdent peels selectors, indexes, derefs and parens down to the
// base identifier of an lvalue; throughPointer is true when the write
// goes through at least one selector/index/deref hop.
func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	hops := 0
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil, false
			}
			return x, hops > 0
		case *ast.SelectorExpr:
			e = x.X
			hops++
		case *ast.IndexExpr:
			e = x.X
			hops++
		case *ast.StarExpr:
			e = x.X
			hops++
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

func identObject(pkg *framework.Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// lockDelta classifies a call as acquiring (+1) or releasing (-1) a
// lock, by method name — any Lock/RLock/Unlock/RUnlock method counts,
// covering sync.Mutex, sync.RWMutex and sync.Locker values.
func lockDelta(call *ast.CallExpr) int {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return +1
	case "Unlock", "RUnlock":
		return -1
	}
	return 0
}

// onceDoBody returns the function-literal body of a sync.Once.Do call,
// or nil.
func onceDoBody(pkg *framework.Package, call *ast.CallExpr) *ast.BlockStmt {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" {
		return nil
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok {
		return nil
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Once" {
		return nil
	}
	if len(call.Args) == 1 {
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
			return lit.Body
		}
	}
	return nil
}
