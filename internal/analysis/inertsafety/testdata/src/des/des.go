// Package des is a minimal scheduler stub for the inertsafety fixture:
// the analyzer matches scheduler methods by receiver type name and
// method name, so only the signatures matter.
package des

// Time is the stub's virtual-clock type.
type Time int64

// Timer is the stub's timer handle.
type Timer struct{}

// Event is the stub's event interface.
type Event interface{ Fire() }

// Scheduler is the stub scheduler; the name is what the analyzer keys
// on.
type Scheduler struct{}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return 0 }

// At schedules an active callback at absolute time t.
func (s *Scheduler) At(t Time, fn func()) Timer { return Timer{} }

// Schedule schedules an active callback after delay d.
func (s *Scheduler) Schedule(d Time, fn func()) Timer { return Timer{} }

// AtInert schedules an inert callback at absolute time t.
func (s *Scheduler) AtInert(t Time, fn func()) Timer { return Timer{} }

// ScheduleInert schedules an inert callback after delay d.
func (s *Scheduler) ScheduleInert(d Time, fn func()) Timer { return Timer{} }

// AtEvent schedules an active event at absolute time t.
func (s *Scheduler) AtEvent(t Time, ev Event) Timer { return Timer{} }

// ScheduleEvent schedules an active event after delay d.
func (s *Scheduler) ScheduleEvent(d Time, ev Event) Timer { return Timer{} }
