// Package inertfix exercises every inertsafety diagnostic: a direct
// inert/active conflict, resolution through pre-bound callback fields
// and dual-mode wrappers, function-literal callbacks, the inertsafe
// escape hatch (with and without a reason), and the unused-annotation
// check.
package inertfix

import "des"

type node struct {
	sched *des.Scheduler

	counter int // written inert, read active: the conflict
	quiet   int // only ever touched inert: no conflict

	tickFn func() // pre-bound callback field
}

func newNode(s *des.Scheduler) *node {
	n := &node{sched: s}
	n.tickFn = n.tick
	return n
}

// tick decrements the counter; it is scheduled inert through the
// pre-bound field and the dual-mode wrapper below.
func (n *node) tick() {
	n.counter--
}

// observe is the active-path reader of counter.
func (n *node) observe() {
	if n.counter > 0 {
		n.counter = 0
	}
}

// quietWrite touches only state no active callback reads.
func (n *node) quietWrite() {
	n.quiet++
}

// scheduleIdle forwards its callback to the inert or the active entry
// point; the analyzer must treat call sites as both.
func (n *node) scheduleIdle(d des.Time, fn func()) des.Timer {
	if d > 10 {
		return n.sched.ScheduleInert(d, fn)
	}
	return n.sched.Schedule(d, fn)
}

func (n *node) start() {
	n.sched.Schedule(1, n.observe) // active: reads counter

	n.sched.ScheduleInert(5, n.tick) // want `inert callback tick writes inertfix.node.counter, which active callback observe reads`
	n.scheduleIdle(20, n.tickFn)     // want `inert callback tick writes inertfix.node.counter, which active callback observe reads`
	n.sched.AtInert(7, func() {      // want `inert callback func literal writes inertfix.node.counter, which active callback observe reads`
		n.counter = 0
	})

	n.sched.ScheduleInert(9, n.quietWrite) // no conflict: quiet has no active readers
	n.sched.ScheduleInert(11, n.blessed)   // annotated, suppressed
	n.sched.ScheduleInert(13, n.unexplained)
}

// blessed conflicts with the active path but carries the escape hatch.
//
//desalint:inertsafe fixture: the write is provably benign here
func (n *node) blessed() {
	n.counter = 0
}

// unexplained carries the escape hatch without a reason.
//
//desalint:inertsafe
func (n *node) unexplained() { // want `//desalint:inertsafe needs a reason`
	n.counter = 0
}

// neverInert is never scheduled inert, so its annotation is dead.
//
//desalint:inertsafe stale reason
func (n *node) neverInert() { // want `unused //desalint:inertsafe annotation: neverInert is never scheduled inert`
	n.counter = 0
}
