package inertsafety_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/inertsafety"
)

func TestInertSafety(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), inertsafety.Analyzer, "inertfix")
}
