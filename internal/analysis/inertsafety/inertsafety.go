// Package inertsafety machine-checks the jump-safety argument of
// DESIGN.md §12: a callback scheduled inert (des.Scheduler.ScheduleInert
// / AtInert) does not hold the kernel's active count, so a peer may
// bulk-jump the clock across its due time. That is only sound when the
// inert callback cannot change what the active path observes — its
// shared write set must be disjoint from the shared read set of every
// active-scheduled callback.
//
// The analyzer finds every scheduler call site (including dual-mode
// wrappers like mac's scheduleIdle, which forward a callback parameter
// to both an inert and an active scheduler method), resolves callbacks
// through method values, function literals, and pre-bound struct fields
// (n.fn = n.method), and intersects effect summaries from the desaflow
// layer. Where the intersection is intentional — the write provably
// cannot alter active-path behavior for a deeper reason than the
// analyzer can see — the callback's doc comment carries
// //desalint:inertsafe <reason>, and an annotation on a callback that
// is never scheduled inert is itself reported so the escape hatch
// cannot rot.
package inertsafety

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/framework"
)

// Analyzer is the inert-callback interference check.
var Analyzer = &framework.Analyzer{
	Name:    "inertsafety",
	Doc:     "inert-scheduled callbacks must not write state the active event path reads (//desalint:inertsafe <reason> to override)",
	SimOnly: true,
	Run:     run,
}

// schedulerTypeName is the named type whose methods are treated as
// scheduler entry points, wherever it is imported from.
const schedulerTypeName = "Scheduler"

var (
	activeFuncMethods  = map[string]bool{"Schedule": true, "At": true}
	activeEventMethods = map[string]bool{"ScheduleEvent": true, "AtEvent": true}
	inertFuncMethods   = map[string]bool{"ScheduleInert": true, "AtInert": true}
)

// target is one resolved callback: a declared function/method or a
// function literal.
type target struct {
	fn  *types.Func  // nil for literals
	lit *ast.FuncLit // nil for declared functions
}

// site is one callback scheduling site.
type site struct {
	pos      token.Pos // of the scheduling call
	callback ast.Expr
	inert    bool
}

type checker struct {
	pass *framework.Pass
	pkg  *framework.Package

	decls   map[*types.Func]*ast.FuncDecl
	assigns map[types.Object][]ast.Expr // var/field -> every RHS assigned to it

	// wrappers maps a function with a func-typed parameter that it
	// forwards to a scheduler method, to that parameter's index and the
	// scheduling kinds it can take.
	wrappers map[*types.Func]*wrapperInfo

	// readersOf attributes each shared location to the active callbacks
	// reading it.
	readersOf map[framework.Loc][]target
}

type wrapperInfo struct {
	paramIdx int
	inert    bool
	active   bool
}

func run(pass *framework.Pass) error {
	c := &checker{
		pass:     pass,
		pkg:      pass.Pkg,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		assigns:  make(map[types.Object][]ast.Expr),
		wrappers: make(map[*types.Func]*wrapperInfo),
	}
	c.index()
	c.findWrappers()
	sites := c.collectSites()

	// Active read set, attributed to the contributing callback so a
	// callback is never in conflict with only itself (the non-FF branch
	// of a dual-mode wrapper schedules the same function active).
	c.readersOf = map[framework.Loc][]target{}
	inertSites := []site{}
	for _, s := range sites {
		if s.inert {
			inertSites = append(inertSites, s)
			continue
		}
		for _, tg := range c.resolve(s.callback, nil) {
			eff := c.targetEffects(tg)
			for loc := range eff.Reads {
				if loc.Shared() {
					c.readersOf[loc] = append(c.readersOf[loc], tg)
				}
			}
		}
	}
	// Every Fire method in the package is an active event body (events
	// always hold the active count).
	for fn, fd := range c.decls {
		if fn.Name() == "Fire" && fd.Recv != nil {
			tg := target{fn: fn}
			for loc := range c.targetEffects(tg).Reads {
				if loc.Shared() {
					c.readersOf[loc] = append(c.readersOf[loc], tg)
				}
			}
		}
	}

	inertTargets := map[*types.Func]bool{}
	for _, s := range inertSites {
		for _, tg := range c.resolve(s.callback, nil) {
			if tg.fn != nil {
				inertTargets[tg.fn] = true
			}
			c.checkInert(s, tg)
		}
	}

	// The escape hatch must not rot: an inertsafe annotation on a
	// function that is never scheduled inert is dead and reported.
	// (Diagnostics anchor on the declaration, not the comment, so they
	// stay distinguishable from the annotation line itself.)
	for fn, fd := range c.decls {
		a, ok := c.pkg.FuncAnnotation(fd, "inertsafe")
		if !ok {
			continue
		}
		if a.Arg == "" {
			c.pass.Reportf(fd.Pos(), "//desalint:inertsafe needs a reason")
		}
		if !inertTargets[fn] {
			c.pass.Reportf(fd.Pos(), "unused //desalint:inertsafe annotation: %s is never scheduled inert", fn.Name())
		}
	}
	return nil
}

// checkInert verifies one inert-scheduled target against the active
// read set, honoring the inertsafe annotation.
func (c *checker) checkInert(s site, tg target) {
	name := c.targetName(tg)
	if tg.fn != nil {
		if fd := c.decls[tg.fn]; fd != nil {
			if _, ok := c.pkg.FuncAnnotation(fd, "inertsafe"); ok {
				return
			}
		}
	} else if tg.lit != nil {
		if a, ok := c.pkg.AnnotationAt(tg.lit.Pos()); ok && a.Verb == "inertsafe" {
			if a.Arg == "" {
				c.pass.Reportf(tg.lit.Pos(), "//desalint:inertsafe needs a reason")
			}
			return
		}
	}
	eff := c.targetEffects(tg)

	type conflict struct {
		loc    framework.Loc
		reader string
	}
	var conflicts []conflict
	for _, loc := range framework.SortedLocs(eff.Writes) {
		if !loc.Shared() {
			continue
		}
		for _, reader := range c.activeReaders(loc, tg) {
			conflicts = append(conflicts, conflict{loc, reader})
			break
		}
	}
	if len(conflicts) == 0 {
		return
	}
	first := conflicts[0]
	c.pass.Reportf(s.pos,
		"inert callback %s writes %s, which active callback %s reads; a bulk jump may skip the write or observe stale state (annotate the callback with //desalint:inertsafe <reason> if this is provably benign)",
		name, first.loc, first.reader)
}

// activeReaders returns the names of active callbacks other than tg
// that read loc.
func (c *checker) activeReaders(loc framework.Loc, tg target) []string {
	readers := c.readersOf[loc]
	var out []string
	for _, r := range readers {
		if r.fn != nil && tg.fn != nil && r.fn == tg.fn {
			continue
		}
		if r.lit != nil && tg.lit != nil && r.lit == tg.lit {
			continue
		}
		out = append(out, c.targetName(r))
	}
	sort.Strings(out)
	return out
}

func (c *checker) targetName(tg target) string {
	if tg.fn != nil {
		return tg.fn.Name()
	}
	return "func literal"
}

// targetEffects computes the one-level summarized effects of a target.
func (c *checker) targetEffects(tg target) *framework.Effects {
	if tg.fn != nil {
		return framework.SummarizedEffects(c.pkg, tg.fn)
	}
	direct := framework.EffectsOf(c.pkg, tg.lit.Body)
	eff := framework.NewEffects()
	eff.MergeShared(direct)
	sums := framework.Summaries(c.pkg)
	for callee := range direct.Callees {
		if cs := sums[callee]; cs != nil {
			eff.MergeShared(cs)
		}
	}
	return eff
}

// index builds the declaration and assignment maps used for callback
// resolution: n.fooFn = n.foo (field pre-binding), refresh := func(){}
// (local closures), and package-level var bindings.
func (c *checker) index() {
	for _, f := range c.pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := c.pkg.Info.Defs[fd.Name].(*types.Func); ok {
					c.decls[fn] = fd
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					if obj := c.lvalueObject(lhs); obj != nil {
						c.assigns[obj] = append(c.assigns[obj], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						if obj := c.pkg.Info.Defs[name]; obj != nil {
							c.assigns[obj] = append(c.assigns[obj], n.Values[i])
						}
					}
				}
			case *ast.KeyValueExpr:
				// Struct literal field binding: Node{fn: callback}.
				if id, ok := n.Key.(*ast.Ident); ok {
					if obj := c.pkg.Info.Uses[id]; obj != nil {
						c.assigns[obj] = append(c.assigns[obj], n.Value)
					}
				}
			}
			return true
		})
	}
}

// lvalueObject resolves an assignment target to the variable or field
// object it denotes.
func (c *checker) lvalueObject(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.pkg.Info.Defs[e]; obj != nil {
			return obj
		}
		return c.pkg.Info.Uses[e]
	case *ast.SelectorExpr:
		return c.pkg.Info.Uses[e.Sel]
	}
	return nil
}

// findWrappers detects functions that forward a func-typed parameter to
// a direct scheduler call (mac's scheduleIdle/atIdle pattern), noting
// which scheduling kinds the parameter can reach.
func (c *checker) findWrappers() {
	for fn, fd := range c.decls {
		if fd.Body == nil {
			continue
		}
		params := paramObjects(c.pkg, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, cb := c.directSite(call)
			if kind == notScheduler || cb == nil {
				return true
			}
			id, ok := ast.Unparen(cb).(*ast.Ident)
			if !ok {
				return true
			}
			obj := c.pkg.Info.Uses[id]
			for idx, p := range params {
				if obj == p {
					w := c.wrappers[fn]
					if w == nil {
						w = &wrapperInfo{paramIdx: idx}
						c.wrappers[fn] = w
					}
					if kind == inertKind {
						w.inert = true
					} else {
						w.active = true
					}
				}
			}
			return true
		})
	}
}

func paramObjects(pkg *framework.Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, pkg.Info.Defs[name])
		}
	}
	return out
}

type siteKind int

const (
	notScheduler siteKind = iota
	activeKind
	inertKind
	activeEventKind
)

// directSite classifies a call as a direct scheduler method call and
// returns the callback (or event) argument.
func (c *checker) directSite(call *ast.CallExpr) (siteKind, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return notScheduler, nil
	}
	s, ok := c.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		// Package-qualified call, not a method: not a scheduler site.
		return notScheduler, nil
	}
	if !isSchedulerType(s.Recv()) {
		return notScheduler, nil
	}
	name := sel.Sel.Name
	if len(call.Args) < 2 {
		return notScheduler, nil
	}
	switch {
	case activeFuncMethods[name]:
		return activeKind, call.Args[1]
	case inertFuncMethods[name]:
		return inertKind, call.Args[1]
	case activeEventMethods[name]:
		return activeEventKind, call.Args[1]
	}
	return notScheduler, nil
}

func isSchedulerType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == schedulerTypeName
}

// collectSites gathers every scheduling site in the package: direct
// scheduler calls and calls through detected wrappers. Event sites
// resolve the event argument's Fire method as the active callback, but
// since all Fire methods are already folded into the active set, the
// site itself needs no further handling.
func (c *checker) collectSites() []site {
	var sites []site
	for _, fd := range c.decls {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, cb := c.directSite(call)
			switch kind {
			case activeKind:
				sites = append(sites, site{pos: call.Pos(), callback: cb, inert: false})
				return true
			case inertKind:
				sites = append(sites, site{pos: call.Pos(), callback: cb, inert: true})
				return true
			case activeEventKind:
				return true
			}
			// Wrapper call?
			if wfn := c.calledFunc(call); wfn != nil {
				if w := c.wrappers[wfn]; w != nil && w.paramIdx < len(call.Args) {
					cb := call.Args[w.paramIdx]
					if w.inert {
						sites = append(sites, site{pos: call.Pos(), callback: cb, inert: true})
					}
					if w.active {
						sites = append(sites, site{pos: call.Pos(), callback: cb, inert: false})
					}
				}
			}
			return true
		})
	}
	return sites
}

// calledFunc resolves the statically called same-package function, if
// any.
func (c *checker) calledFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// resolve maps a callback expression to the function(s) it may invoke:
// function literals, named functions, method values, and variables or
// struct fields bound to any of those elsewhere in the package
// (pre-bound callback fields). Parameters and cross-package values
// resolve to nothing and are skipped — the annotation grammar covers
// what resolution cannot see.
func (c *checker) resolve(e ast.Expr, seen map[types.Object]bool) []target {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return []target{{lit: e}}
	case *ast.Ident:
		return c.resolveObject(identObject(c.pkg, e), seen)
	case *ast.SelectorExpr:
		if s, ok := c.pkg.Info.Selections[e]; ok && s.Kind() == types.MethodVal {
			if fn, ok := c.pkg.Info.Uses[e.Sel].(*types.Func); ok {
				return []target{{fn: fn}}
			}
		}
		return c.resolveObject(c.pkg.Info.Uses[e.Sel], seen)
	}
	return nil
}

func identObject(pkg *framework.Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

func (c *checker) resolveObject(obj types.Object, seen map[types.Object]bool) []target {
	switch obj := obj.(type) {
	case *types.Func:
		return []target{{fn: obj}}
	case *types.Var:
		if seen == nil {
			seen = map[types.Object]bool{}
		}
		if seen[obj] {
			return nil
		}
		seen[obj] = true
		var out []target
		for _, rhs := range c.assigns[obj] {
			out = append(out, c.resolve(rhs, seen)...)
		}
		return out
	}
	return nil
}
