// Package cachekey guards the content-addressed result cache against
// silent key incompleteness. The cache key is SHA-256 over
// MarshalScenario's canonical bytes, so any Scenario field that (a) the
// build/run path reads — meaning it can change a Result — but (b) is
// not covered by those bytes — json:"-", unexported, or normalized away
// inside ScenarioKey — would let two behaviorally different scenarios
// collide on one cache entry and serve stale results. FastForward is
// the one deliberate exclusion (it is result-invariant by construction,
// enforced by the kernel-determinism goldens); it is named in the
// ResultInvariant allowlist, and the analyzer reports any other
// excluded-but-read field, as well as allowlist entries that no longer
// correspond to an excluded field.
package cachekey

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the cache-key completeness check.
var Analyzer = &framework.Analyzer{
	Name:    "cachekey",
	Doc:     "every Scenario field the build/run path reads must be covered by the cache key's canonical bytes or named in the result-invariant allowlist",
	SimOnly: true,
	Run:     run,
}

// ResultInvariant allowlists Scenario fields (by JSON path) that are
// excluded from the cache key on purpose because they provably cannot
// change a Result. Deleting an entry whose field is still excluded and
// still read by the build path fails the lint — that is the point.
var ResultInvariant = map[string]string{
	"fastforward": "pure performance switch; results are bit-identical with it on or off (kernel-determinism goldens, DESIGN.md §12)",
	"partition":   "only the \"auto\" spelling is normalized to its synonym \"\" (identical plan at every layer, DESIGN.md §14); the result-affecting value \"off\" still reaches the canonical bytes",
}

// serializationFuncs are the canonical-bytes plumbing itself: their
// reads define the key rather than consume it, so they are not roots.
var serializationFuncs = map[string]bool{
	"ScenarioKey":     true,
	"MarshalScenario": true,
	"WriteScenario":   true,
	"ParseScenario":   true,
	"LoadScenario":    true,
}

// fieldKey identifies a field of a named struct type.
type fieldKey struct {
	typ   string // qualified type, e.g. "repro/internal/sim.Scenario"
	field string
}

// fieldInfo is what the analyzer knows about one spec field.
type fieldInfo struct {
	path     string // JSON path from the Scenario root, e.g. "phy.navOracle"
	pos      token.Pos
	excluded bool
	why      string // why the canonical bytes do not cover it
}

func run(pass *framework.Pass) error {
	pkg := pass.Pkg
	scope := pkg.Types.Scope()
	scenObj, _ := scope.Lookup("Scenario").(*types.TypeName)
	keyObj, _ := scope.Lookup("ScenarioKey").(*types.Func)
	if scenObj == nil || keyObj == nil {
		return nil // not a scenario-owning package
	}
	named, ok := scenObj.Type().(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}

	fields := map[fieldKey]*fieldInfo{}
	collectFields(pkg, named, "", fields, map[string]bool{})

	// Fields the key normalizes away before hashing (sc.FastForward =
	// false in ScenarioKey) are not covered by the canonical bytes even
	// though they serialize.
	keyDecl := declOf(pkg, keyObj)
	if keyDecl != nil && keyDecl.Body != nil {
		for loc := range framework.EffectsOf(pkg, keyDecl.Body).Writes {
			if loc.Kind != framework.LocField {
				continue
			}
			if info, ok := fields[fieldKey{loc.Type, loc.Field}]; ok && !info.excluded {
				info.excluded = true
				info.why = "normalized away in ScenarioKey before hashing"
			}
		}
	}

	reads := buildPathReads(pkg)

	var keyPos token.Pos = keyObj.Pos()
	usedAllow := map[string]bool{}
	for _, fk := range sortedFieldKeys(fields) {
		info := fields[fk]
		if !info.excluded {
			continue
		}
		if _, allowed := ResultInvariant[info.path]; allowed {
			usedAllow[info.path] = true
			continue
		}
		if _, read := reads[fk]; !read {
			continue
		}
		pass.Reportf(info.pos,
			"Scenario field %s (json %q) is read by the build/run path but excluded from the cache key (%s); cover it in the canonical bytes or add it to cachekey.ResultInvariant",
			fk.field, info.path, info.why)
	}
	// Stale allowlist entries rot loudly: an entry that matches no
	// excluded field guards nothing.
	var allowNames []string
	for name := range ResultInvariant {
		allowNames = append(allowNames, name)
	}
	sort.Strings(allowNames)
	for _, name := range allowNames {
		if usedAllow[name] {
			continue
		}
		pass.Reportf(keyPos,
			"cachekey.ResultInvariant entry %q matches no Scenario field excluded from the cache key; delete the stale entry", name)
	}
	return nil
}

// collectFields walks the Scenario struct and every same-package named
// struct reachable through its fields, recording each field's JSON path
// and whether the canonical bytes cover it.
func collectFields(pkg *framework.Package, named *types.Named, prefix string, out map[fieldKey]*fieldInfo, visiting map[string]bool) {
	typ := qualify(named)
	if visiting[typ+"|"+prefix] {
		return
	}
	visiting[typ+"|"+prefix] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		jsonName, omitted := jsonFieldName(f, st.Tag(i))
		path := prefix + jsonName
		fk := fieldKey{typ, f.Name()}
		info := out[fk]
		if info == nil {
			info = &fieldInfo{path: path, pos: f.Pos()}
			out[fk] = info
		}
		switch {
		case !f.Exported():
			info.excluded = true
			info.why = "unexported, never serialized"
		case omitted:
			info.excluded = true
			info.why = `tagged json:"-"`
		}
		// Recurse into nested same-package named structs so paths read
		// "phy.navOracle" and nested exclusions are visible.
		ft := f.Type()
		if p, ok := ft.Underlying().(*types.Pointer); ok {
			ft = p.Elem()
		}
		if n, ok := ft.(*types.Named); ok && n.Obj().Pkg() == named.Obj().Pkg() {
			if _, isStruct := n.Underlying().(*types.Struct); isStruct {
				collectFields(pkg, n, path+".", out, visiting)
			}
		}
	}
}

// jsonFieldName resolves the field's encoding/json name; omitted is
// true for json:"-".
func jsonFieldName(f *types.Var, tag string) (name string, omitted bool) {
	jt := reflect.StructTag(tag).Get("json")
	if jt == "-" {
		return f.Name(), true
	}
	base, _, _ := strings.Cut(jt, ",")
	if base == "" {
		return f.Name(), false
	}
	return base, false
}

// buildPathReads computes the union of field reads reachable from the
// build/run roots: every function named Build or Run, plus every
// function taking or receiving a Scenario, minus the serialization
// plumbing. Traversal follows same-package call edges transitively
// (registered component builders take the Scenario as a parameter, so
// they are roots in their own right even when invoked through function
// values the call graph cannot see).
func buildPathReads(pkg *framework.Package) map[fieldKey]token.Pos {
	sums := framework.Summaries(pkg)
	var roots []*types.Func
	for fn := range sums {
		if serializationFuncs[fn.Name()] {
			continue
		}
		if fn.Name() == "Build" || fn.Name() == "Run" || touchesScenario(pkg, fn) {
			roots = append(roots, fn)
		}
	}
	reads := map[fieldKey]token.Pos{}
	seen := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		eff := sums[fn]
		if eff == nil {
			return
		}
		for loc, pos := range eff.Reads {
			if loc.Kind == framework.LocField {
				fk := fieldKey{loc.Type, loc.Field}
				if _, ok := reads[fk]; !ok {
					reads[fk] = pos
				}
			}
		}
		for callee := range eff.Callees {
			if !serializationFuncs[callee.Name()] {
				visit(callee)
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return reads
}

// touchesScenario reports whether the function's receiver or any
// parameter mentions the package's Scenario type.
func touchesScenario(pkg *framework.Package, fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	check := func(v *types.Var) bool {
		if v == nil {
			return false
		}
		t := v.Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		n, ok := t.(*types.Named)
		return ok && n.Obj().Name() == "Scenario" && n.Obj().Pkg() == pkg.Types
	}
	if check(sig.Recv()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if check(sig.Params().At(i)) {
			return true
		}
	}
	return false
}

// declOf finds the AST declaration of a function object.
func declOf(pkg *framework.Package, fn *types.Func) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && pkg.Info.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

func sortedFieldKeys(m map[fieldKey]*fieldInfo) []fieldKey {
	out := make([]fieldKey, 0, len(m))
	for fk := range m {
		out = append(out, fk)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].typ != out[j].typ {
			return out[i].typ < out[j].typ
		}
		return out[i].field < out[j].field
	})
	return out
}

func qualify(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}
