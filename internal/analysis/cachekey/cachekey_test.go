package cachekey_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/cachekey"
	"repro/internal/analysis/framework"
)

func TestCacheKey(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), cachekey.Analyzer, "cachefix", "cachestale")
}

// TestAllowlistIsLoadBearing proves the acceptance property directly:
// removing the fastforward entry from the result-invariant allowlist
// turns the (clean) FastForward exclusion into a diagnostic.
func TestAllowlistIsLoadBearing(t *testing.T) {
	reason, ok := cachekey.ResultInvariant["fastforward"]
	if !ok {
		t.Fatal("fastforward allowlist entry missing")
	}
	delete(cachekey.ResultInvariant, "fastforward")
	defer func() { cachekey.ResultInvariant["fastforward"] = reason }()

	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := framework.NewLoader(framework.LoadConfig{ExtraRoots: []string{root}})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("cachefix")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.RunAnalyzer(cachekey.Analyzer, pkg)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, d := range diags {
		if strings.Contains(d.Message, "FastForward") && strings.Contains(d.Message, `json "fastforward"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("deleting the fastforward allowlist entry must produce a FastForward diagnostic; got %d diagnostics:\n%v", len(diags), diags)
	}
}
