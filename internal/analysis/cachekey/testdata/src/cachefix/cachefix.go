// Package cachefix exercises the cachekey diagnostics: fields excluded
// from the canonical bytes (json:"-", unexported, normalized away in
// ScenarioKey) that the build path still reads, including one inside a
// nested spec struct, against the allowlisted fastforward exclusion.
package cachefix

// Key stands in for the cache key type.
type Key [4]byte

// Nested is a spec struct reachable from Scenario.
type Nested struct {
	Hidden int `json:"-"` // want `Scenario field Hidden \(json "nested.Hidden"\) is read by the build/run path but excluded from the cache key`
	Ok     int `json:"ok"`
}

// Scenario is the fixture's declarative run description.
type Scenario struct {
	Name  string `json:"name"`
	Debug bool   `json:"-"`              // want `Scenario field Debug \(json "Debug"\) is read by the build/run path but excluded from the cache key \(tagged json:"-"\)`
	Fast  bool   `json:"fast,omitempty"` // want `Scenario field Fast \(json "fast"\) is read by the build/run path but excluded from the cache key \(normalized away in ScenarioKey before hashing\)`
	// FastForward and Partition match the global result-invariant
	// allowlist entries.
	FastForward bool   `json:"fastforward,omitempty"`
	Partition   string `json:"partition,omitempty"`
	Nested      Nested `json:"nested"`
	hidden      int    // want `Scenario field hidden \(json "hidden"\) is read by the build/run path but excluded from the cache key \(unexported, never serialized\)`
}

// MarshalScenario produces the canonical bytes.
func MarshalScenario(sc Scenario) []byte { return []byte(sc.Name) }

// ScenarioKey hashes the canonical bytes after normalizing the
// result-invariant fields away.
func ScenarioKey(sc Scenario) Key {
	sc.Fast = false
	sc.FastForward = false
	if sc.Partition == "auto" {
		sc.Partition = ""
	}
	_ = MarshalScenario(sc)
	return Key{}
}

// Build consumes the scenario; every field read here can change the
// result.
func Build(sc Scenario) int {
	v := len(sc.Name)
	if sc.Debug {
		v++
	}
	if sc.Fast {
		v++
	}
	if sc.FastForward {
		v++ // allowlisted: provably result-invariant in the real tree
	}
	v += len(sc.Partition) // allowlisted: only the synonym spelling is normalized
	v += sc.Nested.Hidden + sc.Nested.Ok
	v += sc.hidden
	return v
}
