// Package cachestale has a Scenario without any field matching the
// global allowlist entries, so each entry is reported stale at the
// ScenarioKey declaration.
package cachestale

// Key stands in for the cache key type.
type Key [4]byte

// Scenario has no fastforward or partition field at all.
type Scenario struct {
	Name string `json:"name"`
}

// MarshalScenario produces the canonical bytes.
func MarshalScenario(sc Scenario) []byte { return []byte(sc.Name) }

// ScenarioKey hashes the canonical bytes.
func ScenarioKey(sc Scenario) Key { // want `cachekey.ResultInvariant entry "fastforward" matches no Scenario field excluded from the cache key` `cachekey.ResultInvariant entry "partition" matches no Scenario field excluded from the cache key`
	_ = MarshalScenario(sc)
	return Key{}
}

// Build consumes the scenario.
func Build(sc Scenario) int { return len(sc.Name) }
