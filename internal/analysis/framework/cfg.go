// desaflow: intra-procedural control-flow graphs over go/ast. The
// analyzers that reason about *when* an effect happens (inertsafety's
// jump-safety proof, sharedstate's guard detection, reaching-writes)
// need more than a flat AST walk: they need basic blocks and edges. This
// file builds them without golang.org/x/tools/go/cfg, matching the rest
// of the framework's stdlib-only constraint.
//
// Granularity: blocks hold flat statements and the *components* of
// control statements (an if's init and condition, a for's post, a
// range's header), never a control statement with its body — bodies are
// separate blocks reached by edges. Short-circuit conditions (&&, ||,
// !) are split so the right operand lives in its own, conditionally
// reached block. Deferred calls are recorded in the exit block, where
// they actually run.
package framework

import (
	"go/ast"
	"go/token"
)

// CFGBlock is one basic block: a maximal straight-line node sequence.
type CFGBlock struct {
	// Index is the block's position in CFG.Blocks (block 0 is the entry).
	Index int
	// Nodes are the statements and expressions executed in order. A
	// *ast.RangeStmt node stands for the range HEADER only (the ranged
	// expression and the key/value assignment); its body is a successor
	// block. See NodeEffects.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*CFGBlock
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block; Blocks[0] is the entry.
	Blocks []*CFGBlock
	// Exit is the single synthetic exit block. Deferred calls appear in
	// its node list (they run at function exit regardless of path).
	Exit *CFGBlock
}

// Entry returns the function's entry block.
func (c *CFG) Entry() *CFGBlock { return c.Blocks[0] }

// Reachable returns the set of blocks reachable from the entry.
// Statements after an unconditional return/goto land in unreachable
// island blocks, which dataflow clients may skip.
func (c *CFG) Reachable() map[*CFGBlock]bool {
	seen := make(map[*CFGBlock]bool, len(c.Blocks))
	var visit func(b *CFGBlock)
	visit = func(b *CFGBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(c.Entry())
	return seen
}

// BuildCFG constructs the control-flow graph of a function body. It is
// purely syntactic (no type information needed) and never fails: all
// statement forms are handled, with goto/labeled break/continue resolved
// after the walk.
func BuildCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{}
	b := &cfgBuilder{cfg: c, labels: make(map[string]*CFGBlock)}
	entry := b.newBlock()
	c.Exit = b.newBlock()
	b.cur = entry
	if body != nil {
		b.stmts(body.List)
	}
	b.to(c.Exit)
	for _, g := range b.gotos {
		if t := b.labels[g.label]; t != nil {
			g.from.link(t)
		}
	}
	return c
}

type pendingGoto struct {
	label string
	from  *CFGBlock
}

type labeledTarget struct {
	label string // "" matches the innermost construct
	block *CFGBlock
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *CFGBlock // nil after an unconditional transfer
	breaks []labeledTarget
	conts  []labeledTarget
	falls  []*CFGBlock // fallthrough targets, one per enclosing switch
	labels map[string]*CFGBlock
	gotos  []pendingGoto
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (blk *CFGBlock) link(t *CFGBlock) { blk.Succs = append(blk.Succs, t) }

// add appends a node to the current block, opening an unreachable
// island block if control already transferred away.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// to ends the current block with an edge to t.
func (b *cfgBuilder) to(t *CFGBlock) {
	if b.cur != nil {
		b.cur.link(t)
	}
	b.cur = nil
}

// cond evaluates e for control flow: on true control reaches then, on
// false els. Short-circuit operators split the right operand into its
// own block so its effects are recorded as conditional.
func (b *cfgBuilder) cond(e ast.Expr, then, els *CFGBlock) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		b.cond(e.X, then, els)
		return
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			b.cond(e.X, els, then)
			return
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			rhs := b.newBlock()
			b.cond(e.X, rhs, els)
			b.cur = rhs
			b.cond(e.Y, then, els)
			return
		case token.LOR:
			rhs := b.newBlock()
			b.cond(e.X, then, rhs)
			b.cur = rhs
			b.cond(e.Y, then, els)
			return
		}
	}
	b.add(e)
	b.cur.link(then)
	b.cur.link(els)
	b.cur = nil
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		then, els, done := b.newBlock(), b.newBlock(), b.newBlock()
		b.cond(s.Cond, then, els)
		b.cur = then
		b.stmt(s.Body, "")
		b.to(done)
		b.cur = els
		if s.Else != nil {
			b.stmt(s.Else, "")
		}
		b.to(done)
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head, body, post, done := b.newBlock(), b.newBlock(), b.newBlock(), b.newBlock()
		b.to(head)
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, done)
		} else {
			b.to(body)
		}
		b.pushLoop(label, done, post)
		b.cur = body
		b.stmt(s.Body, "")
		b.to(post)
		b.popLoop()
		b.cur = post
		if s.Post != nil {
			b.add(s.Post)
		}
		b.to(head)
		b.cur = done

	case *ast.RangeStmt:
		head, body, done := b.newBlock(), b.newBlock(), b.newBlock()
		b.to(head)
		b.cur = head
		b.add(s) // header only; see CFGBlock.Nodes
		b.cur.link(body)
		b.cur.link(done)
		b.cur = nil
		b.pushLoop(label, done, head)
		b.cur = body
		b.stmt(s.Body, "")
		b.to(head)
		b.popLoop()
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, label, true, func(cc *ast.CaseClause) {
			for _, e := range cc.List {
				b.add(e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, label, false, func(cc *ast.CaseClause) {})

	case *ast.SelectStmt:
		done := b.newBlock()
		b.pushBreak(label, done)
		head := b.cur
		if head == nil {
			head = b.newBlock()
		}
		b.cur = nil
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock()
			head.link(blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmts(cc.Body)
			b.to(done)
		}
		b.popBreak()
		b.cur = done

	case *ast.ReturnStmt:
		b.add(s)
		b.to(b.cfg.Exit)

	case *ast.BranchStmt:
		name := ""
		if s.Label != nil {
			name = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			b.to(b.target(b.breaks, name))
		case token.CONTINUE:
			b.to(b.target(b.conts, name))
		case token.GOTO:
			if b.cur != nil {
				b.gotos = append(b.gotos, pendingGoto{name, b.cur})
				b.cur = nil
			}
		case token.FALLTHROUGH:
			if n := len(b.falls); n > 0 {
				b.to(b.falls[n-1])
			}
		}

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.to(lb)
		b.labels[s.Label.Name] = lb
		b.cur = lb
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.DeferStmt:
		b.add(s) // argument evaluation happens here
		b.cfg.Exit.Nodes = append(b.cfg.Exit.Nodes, s.Call)

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, IncDec, Expr, Go, Send, Decl, ... — straight-line.
		b.add(s)
	}
}

// caseClauses wires a (type) switch: every clause body is a block
// reached from the dispatch block; with fallthrough allowed, clause i's
// body may also flow into clause i+1's.
func (b *cfgBuilder) caseClauses(list []ast.Stmt, label string, fallthroughOK bool, emitTests func(*ast.CaseClause)) {
	done := b.newBlock()
	b.pushBreak(label, done)
	bodies := make([]*CFGBlock, len(list))
	for i := range list {
		bodies[i] = b.newBlock()
	}
	hasDefault := false
	for i, cl := range list {
		cc := cl.(*ast.CaseClause)
		emitTests(cc)
		if cc.List == nil {
			hasDefault = true
		}
		if b.cur == nil {
			b.cur = b.newBlock()
		}
		b.cur.link(bodies[i])
	}
	if b.cur != nil && !hasDefault {
		b.cur.link(done)
	}
	b.cur = nil
	for i, cl := range list {
		cc := cl.(*ast.CaseClause)
		if fallthroughOK {
			next := done
			if i+1 < len(bodies) {
				next = bodies[i+1]
			}
			b.falls = append(b.falls, next)
		}
		b.cur = bodies[i]
		b.stmts(cc.Body)
		b.to(done)
		if fallthroughOK {
			b.falls = b.falls[:len(b.falls)-1]
		}
	}
	b.popBreak()
	b.cur = done
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *CFGBlock) {
	b.breaks = append(b.breaks, labeledTarget{label, brk})
	b.conts = append(b.conts, labeledTarget{label, cont})
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
}

func (b *cfgBuilder) pushBreak(label string, t *CFGBlock) {
	b.breaks = append(b.breaks, labeledTarget{label, t})
}

func (b *cfgBuilder) popBreak() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

// target resolves a break/continue to the innermost (label == "") or
// named enclosing construct. Unresolvable branches (malformed source)
// fall back to the exit block rather than panicking mid-analysis.
func (b *cfgBuilder) target(stack []labeledTarget, label string) *CFGBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return b.cfg.Exit
}
