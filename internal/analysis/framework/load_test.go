package framework

import (
	"go/ast"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from this package to the directory with go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if isDir(filepath.Join(dir, ".git")) || fileExists(filepath.Join(dir, "go.mod")) {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func fileExists(path string) bool {
	fi, err := filepath.Glob(path)
	return err == nil && len(fi) > 0
}

func TestLoadModulePackageWithStdlibDeps(t *testing.T) {
	l, err := NewLoader(LoadConfig{ModuleRoot: moduleRoot(t)})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("repro/internal/phy")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
		t.Fatalf("incomplete package: %+v", pkg)
	}
	// Type information must be populated: find at least one use of a
	// des.Time value (phy computes airtimes).
	var sawUse bool
	for _, obj := range pkg.Info.Uses {
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "repro/internal/des" {
			sawUse = true
			break
		}
	}
	if !sawUse {
		t.Error("no recorded uses of repro/internal/des objects in phy")
	}
}

func TestExpandPatterns(t *testing.T) {
	root := moduleRoot(t)
	cfg := LoadConfig{ModuleRoot: root, ModulePath: "repro"}
	paths, err := ExpandPatterns(cfg, root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"repro/internal/des":                false,
		"repro/internal/phy":                false,
		"repro/cmd/desalint":                false,
		"repro/internal/analysis/framework": false,
	}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
		if filepath.Base(p) == "testdata" {
			t.Errorf("testdata directory leaked into patterns: %s", p)
		}
	}
	for p, seen := range want {
		if !seen && p != "repro/cmd/desalint" { // cmd/desalint exists later in this PR
			t.Errorf("pattern expansion missed %s", p)
		}
	}
}

func TestAnnotationParsing(t *testing.T) {
	l, err := NewLoader(LoadConfig{ModuleRoot: moduleRoot(t)})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("repro/internal/phy")
	if err != nil {
		t.Fatal(err)
	}
	// TotalTxAirtime carries the commutative annotation added in this PR.
	var found bool
	for _, a := range pkg.AllAnnotations() {
		if a.Verb == "commutative" && a.Arg != "" {
			found = true
		}
	}
	if !found {
		t.Error("expected a commutative annotation with a reason in internal/phy")
	}
	var hot int
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && pkg.HotPath(fd) {
				hot++
			}
		}
	}
	if hot == 0 {
		t.Error("expected hotpath-annotated functions in internal/phy")
	}
}
