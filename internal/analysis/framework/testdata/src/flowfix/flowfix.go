// Package flowfix is the differential fixture for desaflow: every
// function's shared read/write set is hand-computed in
// dataflow_test.go and compared against EffectsOf/SummarizedEffects.
// Keep the two in sync when editing.
package flowfix

var counter int

var registry = map[string]int{}

type box struct {
	n     int
	label string
}

type holder struct {
	b *box
}

func incr(b *box) {
	counter++
	b.n = b.n + 1
}

func read(b *box) int {
	return b.n + counter
}

func wrapper(b *box) {
	incr(b)
}

func loop(b *box, xs []int) {
	for i, x := range xs {
		if x > 0 && b.n > 0 {
			b.label = "pos"
		}
		_ = i
	}
}

func nested(h *holder) {
	h.b.n = 7
}

func register(name string) {
	registry[name] = len(registry)
}

func branchy(b *box, c bool) {
	if c {
		b.n = 1
	}
	b.label = "x"
}

func deferred(b *box) {
	defer incr(b)
	_ = b.label
}
