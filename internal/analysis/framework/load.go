// Package loading without golang.org/x/tools/go/packages: import paths
// are resolved directly to directories (extra GOPATH-style roots for
// test fixtures, the module tree for repository packages, GOROOT/src
// for the standard library), files are selected with go/build so build
// constraints apply, and packages are typechecked recursively from
// source. Standard-library dependencies are checked with
// IgnoreFuncBodies — analyzers only need their exported API shapes —
// while fixture and module packages get full bodies and type
// information.

package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// LoadConfig directs import-path resolution.
type LoadConfig struct {
	// ModuleRoot is the directory containing go.mod; empty disables
	// module resolution (fixture loading).
	ModuleRoot string
	// ModulePath is the module's import-path prefix; read from go.mod
	// when empty and ModuleRoot is set.
	ModulePath string
	// ExtraRoots are GOPATH-src-style directories consulted first, used
	// by the fixture runner (testdata/src).
	ExtraRoots []string
}

// Loader resolves, parses and typechecks packages, caching by import
// path so shared dependencies are checked once.
type Loader struct {
	cfg  LoadConfig
	fset *token.FileSet
	ctx  build.Context
	pkgs map[string]*loadEntry
}

type loadEntry struct {
	pkg     *Package // nil for dependency-only (stdlib) packages
	types   *types.Package
	err     error
	loading bool
}

// NewLoader returns a Loader for the given configuration. When
// cfg.ModuleRoot is set and cfg.ModulePath is empty, the module path is
// read from go.mod.
func NewLoader(cfg LoadConfig) (*Loader, error) {
	if cfg.ModuleRoot != "" && cfg.ModulePath == "" {
		mp, err := readModulePath(filepath.Join(cfg.ModuleRoot, "go.mod"))
		if err != nil {
			return nil, err
		}
		cfg.ModulePath = mp
	}
	ctx := build.Default
	// Resolution is by directory; keep go/build away from module-mode
	// lookups of its own.
	ctx.GOPATH = ""
	// Typechecking is from source with no cgo toolchain behind it:
	// selecting the pure-Go file sets (netgo resolver and friends) keeps
	// packages like net checkable — cgo-tagged files reference
	// _C_-prefixed types that only exist after cgo generation.
	ctx.CgoEnabled = false
	return &Loader{
		cfg:  cfg,
		fset: token.NewFileSet(),
		ctx:  ctx,
		pkgs: make(map[string]*loadEntry),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModulePath reads the module import path from moduleRoot/go.mod.
func ModulePath(moduleRoot string) (string, error) {
	return readModulePath(filepath.Join(moduleRoot, "go.mod"))
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if mp, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(mp), nil
		}
	}
	return "", fmt.Errorf("no module line in %s", gomod)
}

// resolve maps an import path to (directory, fully-analyzed?). Fixture
// roots and module packages are analysis targets; the standard library
// is a dependency.
func (l *Loader) resolve(path string) (dir string, full bool, err error) {
	for _, root := range l.cfg.ExtraRoots {
		d := filepath.Join(root, filepath.FromSlash(path))
		if isDir(d) {
			return d, true, nil
		}
	}
	if mp := l.cfg.ModulePath; mp != "" {
		if path == mp {
			return l.cfg.ModuleRoot, true, nil
		}
		if rel, ok := strings.CutPrefix(path, mp+"/"); ok {
			d := filepath.Join(l.cfg.ModuleRoot, filepath.FromSlash(rel))
			if !isDir(d) {
				return "", false, fmt.Errorf("module package %s: no directory %s", path, d)
			}
			return d, true, nil
		}
	}
	goroot := runtime.GOROOT()
	if d := filepath.Join(goroot, "src", filepath.FromSlash(path)); isDir(d) {
		return d, false, nil
	}
	// Standard-library vendored dependencies (golang.org/x/... under
	// GOROOT/src/vendor).
	if d := filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)); isDir(d) {
		return d, false, nil
	}
	return "", false, fmt.Errorf("cannot resolve import %q (no fixture, module or GOROOT directory)", path)
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// Import implements the types.Importer contract over resolve, caching
// and cycle-checking.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return e.types, e.err
	}
	e := &loadEntry{loading: true}
	l.pkgs[path] = e
	dir, full, err := l.resolve(path)
	if err == nil {
		e.pkg, e.types, err = l.check(path, dir, full)
	}
	e.err = err
	e.loading = false
	return e.types, e.err
}

// Load returns the fully-analyzed Package for an import path resolved
// inside a fixture root or the module.
func (l *Loader) Load(path string) (*Package, error) {
	if _, err := l.Import(path); err != nil {
		return nil, err
	}
	e := l.pkgs[path]
	if e.pkg == nil {
		return nil, fmt.Errorf("package %q resolved as dependency-only (standard library?)", path)
	}
	return e.pkg, nil
}

// check parses and typechecks the package rooted at dir.
func (l *Loader) check(path, dir string, full bool) (*Package, *types.Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		files = append(files, f)
	}
	var info *types.Info
	if full {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	conf := types.Config{
		Importer:         importerFunc(l.Import),
		IgnoreFuncBodies: !full,
		FakeImportC:      true,
		Sizes:            types.SizesFor(l.ctx.Compiler, l.ctx.GOARCH),
	}
	var firstErr error
	conf.Error = func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		if firstErr != nil {
			err = firstErr
		}
		return nil, nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	var pkg *Package
	if full {
		pkg = &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	}
	return pkg, tpkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ExpandPatterns turns command-line package patterns into module import
// paths. Supported forms: "./..." (every package under the module
// root), "./dir" and "./dir/..." (relative to base), or a plain import
// path inside the module.
func ExpandPatterns(cfg LoadConfig, base string, patterns []string) ([]string, error) {
	if cfg.ModuleRoot == "" || cfg.ModulePath == "" {
		return nil, fmt.Errorf("pattern expansion requires a module root")
	}
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		dir, recursive := base, false
		switch {
		case pat == "./..." || pat == "...":
			dir, recursive = cfg.ModuleRoot, true
		case strings.HasSuffix(pat, "/..."):
			dir, recursive = filepath.Join(base, strings.TrimSuffix(pat, "/...")), true
		case strings.HasPrefix(pat, "./") || pat == ".":
			dir = filepath.Join(base, pat)
		default:
			// A plain import path inside the module.
			if pat == cfg.ModulePath || strings.HasPrefix(pat, cfg.ModulePath+"/") {
				add(pat)
				continue
			}
			return nil, fmt.Errorf("unsupported package pattern %q", pat)
		}
		paths, err := dirPackages(cfg, dir, recursive)
		if err != nil {
			return nil, err
		}
		for _, p := range paths {
			add(p)
		}
	}
	return out, nil
}

// dirPackages lists the import paths of Go package directories under
// dir (or just dir itself when recursive is false), skipping testdata,
// vendor, hidden and underscore directories, mirroring the go tool's
// "./..." semantics.
func dirPackages(cfg LoadConfig, dir string, recursive bool) ([]string, error) {
	root, err := filepath.Abs(cfg.ModuleRoot)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	importPath := func(d string) (string, error) {
		rel, err := filepath.Rel(root, d)
		if err != nil || strings.HasPrefix(rel, "..") {
			return "", fmt.Errorf("directory %s is outside module root %s", d, root)
		}
		if rel == "." {
			return cfg.ModulePath, nil
		}
		return cfg.ModulePath + "/" + filepath.ToSlash(rel), nil
	}
	if !recursive {
		p, err := importPath(abs)
		if err != nil {
			return nil, err
		}
		return []string{p}, nil
	}
	var out []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			p, err := importPath(path)
			if err != nil {
				return err
			}
			out = append(out, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
