package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// loadFlowfix loads the hand-computed differential fixture package.
func loadFlowfix(t *testing.T) *Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(LoadConfig{ExtraRoots: []string{root}})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("flowfix")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func funcDecl(t *testing.T, pkg *Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("function %s not found in fixture", name)
	return nil
}

func funcObj(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Info.Defs[funcDecl(t, pkg, name).Name].(*types.Func)
	if !ok {
		t.Fatalf("no *types.Func for %s", name)
	}
	return fn
}

// sharedLocStrings renders the shared locations of a map in sorted
// order (locals are dropped — the differential cases pin the shared
// footprint, which is what the analyzers consume).
func sharedLocStrings(m map[Loc]token.Pos) []string {
	out := []string{}
	for _, l := range SortedLocs(m) {
		if l.Shared() {
			out = append(out, l.String())
		}
	}
	return out
}

func TestDataflowDifferential(t *testing.T) {
	pkg := loadFlowfix(t)

	// Hand-computed shared read/write sets per fixture function. The
	// "+summary" variants use one-level call summaries.
	cases := []struct {
		fn          string
		summarized  bool
		wantReads   []string
		wantWrites  []string
		wantCallees []string
		wantOpaque  bool
	}{
		{
			fn:         "incr",
			wantReads:  []string{"flowfix.box.n", "flowfix.counter"},
			wantWrites: []string{"flowfix.box.n", "flowfix.counter"},
		},
		{
			fn:         "read",
			wantReads:  []string{"flowfix.box.n", "flowfix.counter"},
			wantWrites: []string{},
		},
		{
			fn:          "wrapper",
			wantReads:   []string{},
			wantWrites:  []string{},
			wantCallees: []string{"incr"},
		},
		{
			fn:         "wrapper",
			summarized: true,
			wantReads:  []string{"flowfix.box.n", "flowfix.counter"},
			wantWrites: []string{"flowfix.box.n", "flowfix.counter"},
		},
		{
			fn:         "loop",
			wantReads:  []string{"flowfix.box.n"},
			wantWrites: []string{"flowfix.box.label"},
		},
		{
			fn:         "nested",
			wantReads:  []string{"flowfix.holder.b"},
			wantWrites: []string{"flowfix.box.n"},
		},
		{
			fn:         "register",
			wantReads:  []string{"flowfix.registry"},
			wantWrites: []string{"flowfix.registry"},
		},
		{
			fn:         "branchy",
			wantReads:  []string{},
			wantWrites: []string{"flowfix.box.label", "flowfix.box.n"},
		},
		{
			fn:          "deferred",
			wantReads:   []string{"flowfix.box.label"},
			wantWrites:  []string{},
			wantCallees: []string{"incr"},
		},
		{
			fn:         "deferred",
			summarized: true,
			wantReads:  []string{"flowfix.box.label", "flowfix.box.n", "flowfix.counter"},
			wantWrites: []string{"flowfix.box.n", "flowfix.counter"},
		},
	}
	for _, tc := range cases {
		name := tc.fn
		if tc.summarized {
			name += "+summary"
		}
		t.Run(name, func(t *testing.T) {
			var eff *Effects
			if tc.summarized {
				eff = SummarizedEffects(pkg, funcObj(t, pkg, tc.fn))
			} else {
				eff = EffectsOf(pkg, funcDecl(t, pkg, tc.fn).Body)
			}
			gotReads := sharedLocStrings(eff.Reads)
			gotWrites := sharedLocStrings(eff.Writes)
			if !reflect.DeepEqual(gotReads, tc.wantReads) {
				t.Errorf("reads: got %v want %v", gotReads, tc.wantReads)
			}
			if !reflect.DeepEqual(gotWrites, tc.wantWrites) {
				t.Errorf("writes: got %v want %v", gotWrites, tc.wantWrites)
			}
			if tc.wantCallees != nil {
				var got []string
				for fn := range eff.Callees {
					got = append(got, fn.Name())
				}
				sort.Strings(got)
				if !reflect.DeepEqual(got, tc.wantCallees) {
					t.Errorf("callees: got %v want %v", got, tc.wantCallees)
				}
			}
			if eff.Opaque != tc.wantOpaque {
				t.Errorf("opaque: got %v want %v", eff.Opaque, tc.wantOpaque)
			}
		})
	}
}

func TestReachingWritesMayReachJoin(t *testing.T) {
	pkg := loadFlowfix(t)
	fd := funcDecl(t, pkg, "branchy")
	cfg := BuildCFG(fd.Body)
	state := ReachingWrites(pkg, cfg)

	// The block writing box.label runs after the conditional write to
	// box.n; on the may-analysis, box.n must reach it.
	var labelBlock *CFGBlock
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			for l := range NodeEffects(pkg, n).Writes {
				if l.String() == "flowfix.box.label" {
					labelBlock = b
				}
			}
		}
	}
	if labelBlock == nil {
		t.Fatal("no block writes box.label")
	}
	found := false
	for l := range state[labelBlock].In {
		if l.String() == "flowfix.box.n" {
			found = true
		}
	}
	if !found {
		t.Error("conditional write to box.n must reach the join block (may-analysis)")
	}
	for l := range state[cfg.Entry()].In {
		t.Errorf("entry block In must be empty, has %s", l)
	}
}
