package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses `src` as the body of a single function declaration
// and builds its CFG.
func parseBody(t *testing.T, src string) *CFG {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

// blockWith returns the first block whose nodes mention an identifier
// with the given name. A *ast.RangeStmt block node counts as its header
// only, matching NodeEffects.
func blockWith(t *testing.T, c *CFG, name string) *CFGBlock {
	t.Helper()
	contains := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(x ast.Node) bool {
			if found {
				return false
			}
			if r, ok := x.(*ast.RangeStmt); ok && x != n {
				_ = r
				return false
			}
			if id, ok := x.(*ast.Ident); ok && id.Name == name {
				found = true
			}
			return !found
		})
		return found
	}
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if r, ok := n.(*ast.RangeStmt); ok {
				hit := false
				for _, part := range []ast.Node{r.Key, r.Value, r.X} {
					if part != nil && contains(part) {
						hit = true
					}
				}
				if hit {
					return b
				}
				continue
			}
			if contains(n) {
				return b
			}
		}
	}
	t.Fatalf("no block mentions %q", name)
	return nil
}

// pathExists reports whether to is reachable from from along CFG edges.
func pathExists(from, to *CFGBlock) bool {
	seen := map[*CFGBlock]bool{}
	var walk func(b *CFGBlock) bool
	walk = func(b *CFGBlock) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func hasEdge(from, to *CFGBlock) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestCFGIfElseJoins(t *testing.T) {
	c := parseBody(t, `
		if cond {
			thenBranch()
		} else {
			elseBranch()
		}
		after()
	`)
	condB := blockWith(t, c, "cond")
	thenB := blockWith(t, c, "thenBranch")
	elseB := blockWith(t, c, "elseBranch")
	afterB := blockWith(t, c, "after")
	if !hasEdge(condB, thenB) || !hasEdge(condB, elseB) {
		t.Error("condition block must branch to both arms")
	}
	if !pathExists(thenB, afterB) || !pathExists(elseB, afterB) {
		t.Error("both arms must rejoin at the statement after the if")
	}
	if pathExists(thenB, elseB) || pathExists(elseB, thenB) {
		t.Error("the two arms must be mutually unreachable")
	}
}

func TestCFGShortCircuitSplitsOperands(t *testing.T) {
	c := parseBody(t, `
		if left && right {
			body()
		}
		after()
	`)
	leftB := blockWith(t, c, "left")
	rightB := blockWith(t, c, "right")
	bodyB := blockWith(t, c, "body")
	afterB := blockWith(t, c, "after")
	if leftB == rightB {
		t.Fatal("&& operands must live in separate blocks")
	}
	if !hasEdge(leftB, rightB) {
		t.Error("right operand must be a successor of the left")
	}
	if hasEdge(leftB, bodyB) {
		t.Error("body must not be reachable without evaluating the right operand")
	}
	if !pathAvoiding(leftB, afterB, rightB) {
		t.Error("left-false must skip past the if without evaluating the right operand")
	}
	if !hasEdge(rightB, bodyB) || !pathAvoiding(rightB, afterB, bodyB) {
		t.Error("right operand decides between body and fallthrough")
	}
}

func TestCFGNegatedOrSwapsBranches(t *testing.T) {
	c := parseBody(t, `
		if !(a || b) {
			body()
		}
		after()
	`)
	aB := blockWith(t, c, "a")
	bB := blockWith(t, c, "b")
	bodyB := blockWith(t, c, "body")
	afterB := blockWith(t, c, "after")
	// !(a || b): a true => skip body; a false => evaluate b.
	if !pathAvoiding(aB, afterB, bB) || !hasEdge(aB, bB) {
		t.Error("a must branch to after (true) and to b (false)")
	}
	if hasEdge(aB, bodyB) {
		t.Error("body requires both operands false; a alone cannot reach it")
	}
	if !hasEdge(bB, bodyB) || !pathAvoiding(bB, afterB, bodyB) {
		t.Error("b decides between body and after")
	}
}

func TestCFGForLoopBackEdgeAndBreak(t *testing.T) {
	c := parseBody(t, `
		for i := 0; i < n; i++ {
			if stop {
				break
			}
			work()
		}
		after()
	`)
	condB := blockWith(t, c, "n")
	workB := blockWith(t, c, "work")
	afterB := blockWith(t, c, "after")
	if !pathExists(workB, condB) {
		t.Error("loop body must flow back to the condition")
	}
	if !pathExists(condB, afterB) {
		t.Error("loop must be exitable")
	}
	stopB := blockWith(t, c, "stop")
	if !pathExists(stopB, afterB) {
		t.Error("break must reach the block after the loop")
	}
}

func TestCFGContinueSkipsRestOfBody(t *testing.T) {
	c := parseBody(t, `
		for i := 0; i < n; i++ {
			if skip {
				continue
			}
			work()
		}
	`)
	skipB := blockWith(t, c, "skip")
	workB := blockWith(t, c, "work")
	condB := blockWith(t, c, "n")
	// skip-true must route back to the condition without entering the
	// rest of the body.
	bypass := false
	for _, s := range skipB.Succs {
		if s != workB && pathAvoiding(s, condB, workB) {
			bypass = true
		}
	}
	if !bypass {
		t.Error("continue must bypass the rest of the loop body")
	}
	if !pathExists(skipB, workB) {
		t.Error("skip-false must continue into the loop body")
	}
}

// pathAvoiding reports whether to is reachable from from without ever
// entering avoid.
func pathAvoiding(from, to, avoid *CFGBlock) bool {
	seen := map[*CFGBlock]bool{avoid: true}
	var walk func(b *CFGBlock) bool
	walk = func(b *CFGBlock) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	if from == avoid {
		return false
	}
	return walk(from)
}

func TestCFGDeferLandsInExit(t *testing.T) {
	c := parseBody(t, `
		defer cleanup()
		work()
	`)
	found := false
	for _, n := range c.Exit.Nodes {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "cleanup" {
				found = true
			}
		}
	}
	if !found {
		t.Error("deferred call must appear in the exit block")
	}
}

func TestCFGReturnMakesTailUnreachable(t *testing.T) {
	c := parseBody(t, `
		if early {
			return
		}
		work()
		return
		dead()
	`)
	reach := c.Reachable()
	deadB := blockWith(t, c, "dead")
	if reach[deadB] {
		t.Error("statements after an unconditional return must be unreachable")
	}
	workB := blockWith(t, c, "work")
	if !reach[workB] {
		t.Error("work must stay reachable")
	}
	if !hasEdge(blockWith(t, c, "early"), c.Exit) && !pathExists(blockWith(t, c, "early"), c.Exit) {
		t.Error("early return must reach the exit block")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := parseBody(t, `
		switch tag {
		case one:
			first()
			fallthrough
		case two:
			second()
		default:
			third()
		}
		after()
	`)
	firstB := blockWith(t, c, "first")
	secondB := blockWith(t, c, "second")
	thirdB := blockWith(t, c, "third")
	afterB := blockWith(t, c, "after")
	if !hasEdge(firstB, secondB) {
		t.Error("fallthrough must chain case bodies")
	}
	for _, b := range []*CFGBlock{firstB, secondB, thirdB} {
		if !pathExists(b, afterB) {
			t.Errorf("case body (block %d) must reach the statement after the switch", b.Index)
		}
	}
	if pathExists(secondB, thirdB) {
		t.Error("second case must not flow into default")
	}
}

func TestCFGGotoResolves(t *testing.T) {
	c := parseBody(t, `
		work()
		goto done
		dead()
	done:
		after()
	`)
	workB := blockWith(t, c, "work")
	afterB := blockWith(t, c, "after")
	if !pathExists(workB, afterB) {
		t.Error("goto must wire an edge to its label")
	}
	if c.Reachable()[blockWith(t, c, "dead")] {
		t.Error("statements after goto must be unreachable")
	}
}

func TestCFGSelectClausesAreAlternatives(t *testing.T) {
	c := parseBody(t, `
		select {
		case v := <-recvCh:
			useRecv(v)
		case sendCh <- x:
			useSend()
		}
		after()
	`)
	rB := blockWith(t, c, "useRecv")
	sB := blockWith(t, c, "useSend")
	afterB := blockWith(t, c, "after")
	if pathExists(rB, sB) || pathExists(sB, rB) {
		t.Error("select clauses must be mutually exclusive")
	}
	if !pathExists(rB, afterB) || !pathExists(sB, afterB) {
		t.Error("both clauses must rejoin after the select")
	}
}

func TestCFGRangeHeaderOnly(t *testing.T) {
	c := parseBody(t, `
		for k, v := range m {
			body(k, v)
		}
		after()
	`)
	var headB *CFGBlock
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				headB = b
			}
		}
	}
	if headB == nil {
		t.Fatal("range statement node missing from CFG")
	}
	bodyB := blockWith(t, c, "body")
	if bodyB == headB {
		t.Error("range body must live in its own block")
	}
	if !hasEdge(headB, bodyB) {
		t.Error("range header must branch into the body")
	}
	if !pathExists(bodyB, headB) {
		t.Error("range body must loop back to the header")
	}
	afterB := blockWith(t, c, "after")
	if !hasEdge(headB, afterB) {
		t.Error("range header must branch past the loop when exhausted")
	}
}
