// Package framework is a minimal reimplementation of the core of
// golang.org/x/tools/go/analysis, built entirely on the standard
// library. The repository pins no external modules (and the build
// environment has no network access), so the desalint analyzers cannot
// depend on x/tools; this package supplies the same shape — an Analyzer
// with a Run(*Pass) function reporting Diagnostics over a typechecked
// package — plus the //desalint: annotation grammar shared by the
// analyzers:
//
//	//desalint:hotpath
//	    In a function's doc comment: the function is on the event hot
//	    path and must stay allocation-free (checked by the hotpath
//	    analyzer).
//	//desalint:commutative <reason>
//	    On (or immediately above) a for-range over a map: the loop body
//	    is order-independent for the stated reason (checked by the
//	    maporder analyzer; a reason is mandatory).
//	//desalint:inertsafe <reason>
//	    In a callback's doc comment (or on the offending line): the
//	    inert-scheduled callback is safe to run under fast-forward for
//	    the stated reason (consumed by the inertsafety analyzer).
//	//desalint:ignore <analyzer> <reason>
//	    On (or immediately above) a line: suppress that analyzer's
//	    diagnostics on the line for the stated reason. Suppressions
//	    that stop matching anything are themselves reported, so stale
//	    ignores rot loudly.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lower-case, no spaces).
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// SimOnly restricts the analyzer to the simulation packages listed in
	// the desalint suite; the driver applies the restriction, fixture
	// tests run the analyzer unconditionally.
	SimOnly bool
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Diagnostic is one reported violation, in resolved file position form.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// SortDiagnostics orders diagnostics by position, then analyzer, then
// message, so driver output is stable regardless of analyzer-internal
// iteration order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Package is one parsed and typechecked package ready for analysis.
type Package struct {
	// Path is the import path the package was loaded as.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	annots    map[*ast.File]map[int]Annotation // line -> annotation, built lazily
	suppr     []*Suppression                   // parsed ignore directives, built lazily
	supprDone bool
	summaries map[*types.Func]*Effects // per-function effect cache (see dataflow.go)
}

// Annotation is one parsed //desalint: comment.
type Annotation struct {
	Verb   string // e.g. "commutative", "hotpath"
	Arg    string // rest of the line, trimmed (the stated reason)
	Pos    token.Pos
	Inline bool // true when the comment trails code on the same line
}

// AnnotationPrefix is the comment marker introducing a desalint
// annotation. Like //go: directives it must follow the slashes with no
// space.
const AnnotationPrefix = "desalint:"

// parseAnnotation extracts a desalint annotation from a single comment,
// or ok=false.
func parseAnnotation(c *ast.Comment) (Annotation, bool) {
	text, found := strings.CutPrefix(c.Text, "//"+AnnotationPrefix)
	if !found {
		return Annotation{}, false
	}
	verb, arg, _ := strings.Cut(text, " ")
	return Annotation{Verb: verb, Arg: strings.TrimSpace(arg), Pos: c.Pos()}, true
}

// annotations returns the file's desalint annotations indexed by line.
func (p *Package) annotations(f *ast.File) map[int]Annotation {
	if p.annots == nil {
		p.annots = make(map[*ast.File]map[int]Annotation)
	}
	if m, ok := p.annots[f]; ok {
		return m
	}
	m := make(map[int]Annotation)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if a, ok := parseAnnotation(c); ok {
				pos := p.Fset.Position(c.Pos())
				a.Inline = pos.Column > 1 && !startsLine(cg, c)
				m[pos.Line] = a
			}
		}
	}
	p.annots[f] = m
	return m
}

// startsLine reports whether c is the first comment of its group (a
// rough proxy for "comment-only line"; only used for bookkeeping).
func startsLine(cg *ast.CommentGroup, c *ast.Comment) bool {
	return len(cg.List) > 0 && cg.List[0] == c
}

// fileOf returns the *ast.File containing pos.
func (p *Package) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// AnnotationAt returns the desalint annotation attached to the
// statement at pos: a trailing comment on the same line, or a comment
// on the line immediately above.
func (p *Package) AnnotationAt(pos token.Pos) (Annotation, bool) {
	f := p.fileOf(pos)
	if f == nil {
		return Annotation{}, false
	}
	m := p.annotations(f)
	line := p.Fset.Position(pos).Line
	if a, ok := m[line]; ok {
		return a, true
	}
	if a, ok := m[line-1]; ok {
		return a, true
	}
	return Annotation{}, false
}

// FuncAnnotation returns the annotation with the given verb from the
// function declaration's doc comment, or ok=false.
func (p *Package) FuncAnnotation(fd *ast.FuncDecl, verb string) (Annotation, bool) {
	if fd.Doc == nil {
		return Annotation{}, false
	}
	for _, c := range fd.Doc.List {
		if a, ok := parseAnnotation(c); ok && a.Verb == verb {
			return a, true
		}
	}
	return Annotation{}, false
}

// HotPath reports whether the function declaration carries a
// //desalint:hotpath line in its doc comment.
func (p *Package) HotPath(fd *ast.FuncDecl) bool {
	_, ok := p.FuncAnnotation(fd, "hotpath")
	return ok
}

// Suppression is one parsed //desalint:ignore directive. It suppresses
// the named analyzer's diagnostics on its own line and the line below
// (mirroring AnnotationAt's same-line-or-line-above rule).
type Suppression struct {
	Analyzer string
	Reason   string
	Pos      token.Pos
	file     string
	line     int
	used     bool
}

// suppressions parses every ignore directive in the package, once.
func (p *Package) suppressions() []*Suppression {
	if p.supprDone {
		return p.suppr
	}
	p.supprDone = true
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a, ok := parseAnnotation(c)
				if !ok || a.Verb != "ignore" {
					continue
				}
				name, reason, _ := strings.Cut(a.Arg, " ")
				pos := p.Fset.Position(c.Pos())
				p.suppr = append(p.suppr, &Suppression{
					Analyzer: name,
					Reason:   strings.TrimSpace(reason),
					Pos:      c.Pos(),
					file:     pos.Filename,
					line:     pos.Line,
				})
			}
		}
	}
	return p.suppr
}

// suppressed reports whether a diagnostic from analyzer at pos is
// covered by an ignore directive, marking the directive used.
func (p *Package) suppressed(analyzer string, pos token.Position) bool {
	hit := false
	for _, s := range p.suppressions() {
		if s.Analyzer != analyzer || s.file != pos.Filename {
			continue
		}
		if s.line == pos.Line || s.line == pos.Line-1 {
			s.used = true
			hit = true
		}
	}
	return hit
}

// UnusedSuppressions returns the ignore directives that suppressed
// nothing. Call after every analyzer has run over the package; the
// driver turns these into diagnostics so stale ignores fail the build.
func (p *Package) UnusedSuppressions() []*Suppression {
	var out []*Suppression
	for _, s := range p.suppressions() {
		if !s.used {
			out = append(out, s)
		}
	}
	return out
}

// AllAnnotations returns every desalint annotation in the package (for
// verb validation by the driver).
func (p *Package) AllAnnotations() []Annotation {
	var out []Annotation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if a, ok := parseAnnotation(c); ok {
					out = append(out, a)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Fset returns the package's file set.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Info returns the package's type information.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Reportf records a diagnostic at pos, unless a //desalint:ignore
// directive for this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzer executes a single analyzer over a package and returns its
// diagnostics.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{Analyzer: a, Pkg: pkg, report: func(d Diagnostic) { diags = append(diags, d) }}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	SortDiagnostics(diags)
	return diags, nil
}
