// desaflow: field-sensitive read/write effect extraction over
// typechecked ASTs. Every analyzer question this layer answers reduces
// to "which locations may this code read or write": inertsafety
// intersects an inert callback's write set with the active path's read
// set, cachekey asks which Scenario fields a build closure reads, and
// reaching-writes propagates write sets over the CFG.
//
// Locations are deliberately coarse where precision would require alias
// analysis: a field write is keyed by named type and field name
// ("repro/internal/mac.Node.backoff"), not by instance, so a write to
// any Node's backoff conflicts with a read of any Node's backoff. For
// the determinism properties desalint enforces this is the sound
// direction — all nodes share one scheduler, so cross-instance
// interference is exactly as dangerous as same-instance.
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LocKind classifies an abstract memory location.
type LocKind int

const (
	// LocLocal is a function-local variable or parameter (never shared
	// across callbacks; tracked so differential tests can see it).
	LocLocal LocKind = iota
	// LocPkgVar is a package-level variable.
	LocPkgVar
	// LocField is a field of a named type, keyed by type identity, not
	// by instance.
	LocField
)

// Loc is one abstract location. It is comparable and usable as a map
// key.
type Loc struct {
	Kind LocKind
	// Obj is the variable for LocLocal/LocPkgVar.
	Obj types.Object
	// Type is the qualified named type ("importpath.Name") and Field the
	// field name, for LocField.
	Type  string
	Field string
}

// Shared reports whether the location can be observed outside the
// function that touches it: package variables and named-type fields
// are shared, locals are not.
func (l Loc) Shared() bool { return l.Kind != LocLocal }

func (l Loc) String() string {
	switch l.Kind {
	case LocField:
		return l.Type + "." + l.Field
	case LocPkgVar:
		if l.Obj.Pkg() != nil {
			return l.Obj.Pkg().Path() + "." + l.Obj.Name()
		}
		return l.Obj.Name()
	default:
		return l.Obj.Name()
	}
}

// Effects is the may-read/may-write summary of a code region. Position
// maps keep the first occurrence so diagnostics can point somewhere
// concrete.
type Effects struct {
	Reads   map[Loc]token.Pos
	Writes  map[Loc]token.Pos
	Callees map[*types.Func]token.Pos // same-package functions called directly
	// Opaque is set when the region calls through a function value or
	// writes through a pointer whose target cannot be named — the
	// summary is then a lower bound.
	Opaque bool
}

// NewEffects returns an empty effect summary.
func NewEffects() *Effects {
	return &Effects{
		Reads:   make(map[Loc]token.Pos),
		Writes:  make(map[Loc]token.Pos),
		Callees: make(map[*types.Func]token.Pos),
	}
}

func addLoc(m map[Loc]token.Pos, l Loc, pos token.Pos) {
	if _, ok := m[l]; !ok {
		m[l] = pos
	}
}

// MergeShared folds other's shared reads and writes (and its opacity)
// into e. Local locations stay local to their own function and are
// dropped; this is the call-summary composition rule.
func (e *Effects) MergeShared(other *Effects) {
	for l, pos := range other.Reads {
		if l.Shared() {
			addLoc(e.Reads, l, pos)
		}
	}
	for l, pos := range other.Writes {
		if l.Shared() {
			addLoc(e.Writes, l, pos)
		}
	}
	e.Opaque = e.Opaque || other.Opaque
}

// SortedLocs returns the keys of a location map in deterministic
// (string) order, for stable diagnostics.
func SortedLocs(m map[Loc]token.Pos) []Loc {
	out := make([]Loc, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// EffectsOf computes the effect summary of the whole subtree rooted at
// n (statement bodies included). Function literals are folded in
// conservatively: their effects may happen whenever the value escapes.
func EffectsOf(pkg *Package, n ast.Node) *Effects {
	w := &effector{pkg: pkg, eff: NewEffects()}
	w.node(n)
	return w.eff
}

// NodeEffects computes the effects of one CFG block node. It matches
// the block granularity of BuildCFG: a *ast.RangeStmt node contributes
// its header only (ranged expression read, key/value written), because
// the loop body lives in successor blocks.
func NodeEffects(pkg *Package, n ast.Node) *Effects {
	if r, ok := n.(*ast.RangeStmt); ok {
		w := &effector{pkg: pkg, eff: NewEffects()}
		w.rangeHeader(r)
		return w.eff
	}
	return EffectsOf(pkg, n)
}

// Summaries computes (and caches on pkg) the direct effect summary of
// every function and method declared in the package.
func Summaries(pkg *Package) map[*types.Func]*Effects {
	if pkg.summaries != nil {
		return pkg.summaries
	}
	out := make(map[*types.Func]*Effects)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out[fn] = EffectsOf(pkg, fd.Body)
		}
	}
	pkg.summaries = out
	return out
}

// SummarizedEffects returns fn's direct effects extended with one level
// of same-package call summaries: the shared reads and writes of every
// function fn calls directly. One level is the documented contract
// (DESIGN.md §13) — deep transitive closure is not attempted, and the
// inertsafe annotation covers what the summary cannot see.
func SummarizedEffects(pkg *Package, fn *types.Func) *Effects {
	sums := Summaries(pkg)
	direct := sums[fn]
	if direct == nil {
		return NewEffects()
	}
	eff := NewEffects()
	eff.MergeShared(direct)
	for l, pos := range direct.Reads {
		if !l.Shared() {
			addLoc(eff.Reads, l, pos)
		}
	}
	for l, pos := range direct.Writes {
		if !l.Shared() {
			addLoc(eff.Writes, l, pos)
		}
	}
	for callee := range direct.Callees {
		if cs := sums[callee]; cs != nil && callee != fn {
			eff.MergeShared(cs)
		}
	}
	return eff
}

// BlockWrites is the reaching-writes state of one CFG block.
type BlockWrites struct {
	// In holds every location some predecessor path may have written
	// before this block runs; Out adds the block's own writes.
	In, Out map[Loc]token.Pos
}

// ReachingWrites runs a forward may-analysis over the CFG: a write
// reaches a block if any path from the entry passes a write to that
// location. There is no kill set — for determinism checking, "was ever
// written on some path" is the question, not "which write wins".
func ReachingWrites(pkg *Package, cfg *CFG) map[*CFGBlock]*BlockWrites {
	state := make(map[*CFGBlock]*BlockWrites, len(cfg.Blocks))
	gen := make(map[*CFGBlock]map[Loc]token.Pos, len(cfg.Blocks))
	for _, b := range cfg.Blocks {
		state[b] = &BlockWrites{In: make(map[Loc]token.Pos), Out: make(map[Loc]token.Pos)}
		g := make(map[Loc]token.Pos)
		for _, n := range b.Nodes {
			for l, pos := range NodeEffects(pkg, n).Writes {
				addLoc(g, l, pos)
			}
		}
		gen[b] = g
	}
	work := make([]*CFGBlock, len(cfg.Blocks))
	copy(work, cfg.Blocks)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		st := state[b]
		out := st.Out
		changed := false
		for l, pos := range st.In {
			if _, ok := out[l]; !ok {
				out[l] = pos
				changed = true
			}
		}
		for l, pos := range gen[b] {
			if _, ok := out[l]; !ok {
				out[l] = pos
				changed = true
			}
		}
		if !changed && len(out) > 0 {
			// No new facts; successors already saw this Out.
			continue
		}
		for _, s := range b.Succs {
			sin := state[s].In
			grew := false
			for l, pos := range out {
				if _, ok := sin[l]; !ok {
					sin[l] = pos
					grew = true
				}
			}
			if grew {
				work = append(work, s)
			}
		}
	}
	return state
}

// effector walks expressions and statements accumulating effects.
type effector struct {
	pkg *Package
	eff *Effects
}

func (w *effector) rangeHeader(r *ast.RangeStmt) {
	w.expr(r.X, false)
	if r.Key != nil {
		w.expr(r.Key, true)
	}
	if r.Value != nil {
		w.expr(r.Value, true)
	}
}

func (w *effector) node(n ast.Node) {
	switch n := n.(type) {
	case nil:

	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			w.expr(r, false)
		}
		for _, l := range n.Lhs {
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				w.expr(l, false) // op= reads the old value
			}
			w.expr(l, true)
		}

	case *ast.IncDecStmt:
		w.expr(n.X, false)
		w.expr(n.X, true)

	case *ast.SendStmt:
		w.expr(n.Chan, false)
		w.expr(n.Value, false)

	case *ast.ExprStmt:
		w.expr(n.X, false)

	case *ast.GoStmt:
		w.expr(n.Call, false)

	case *ast.DeferStmt:
		w.expr(n.Call, false)

	case *ast.ReturnStmt:
		for _, r := range n.Results {
			w.expr(r, false)
		}

	case *ast.DeclStmt:
		w.node(n.Decl)

	case *ast.GenDecl:
		for _, spec := range n.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				w.expr(v, false)
			}
			for _, name := range vs.Names {
				w.expr(name, true)
			}
		}

	case *ast.IfStmt:
		w.node(n.Init)
		w.expr(n.Cond, false)
		w.node(n.Body)
		w.node(n.Else)

	case *ast.ForStmt:
		w.node(n.Init)
		if n.Cond != nil {
			w.expr(n.Cond, false)
		}
		w.node(n.Post)
		w.node(n.Body)

	case *ast.RangeStmt:
		w.rangeHeader(n)
		w.node(n.Body)

	case *ast.SwitchStmt:
		w.node(n.Init)
		if n.Tag != nil {
			w.expr(n.Tag, false)
		}
		w.node(n.Body)

	case *ast.TypeSwitchStmt:
		w.node(n.Init)
		w.node(n.Assign)
		w.node(n.Body)

	case *ast.SelectStmt:
		w.node(n.Body)

	case *ast.CaseClause:
		for _, e := range n.List {
			w.expr(e, false)
		}
		for _, s := range n.Body {
			w.node(s)
		}

	case *ast.CommClause:
		w.node(n.Comm)
		for _, s := range n.Body {
			w.node(s)
		}

	case *ast.BlockStmt:
		for _, s := range n.List {
			w.node(s)
		}

	case *ast.LabeledStmt:
		w.node(n.Stmt)

	case *ast.FuncDecl:
		w.node(n.Body)

	case *ast.BranchStmt, *ast.EmptyStmt:

	case ast.Expr:
		w.expr(n, false)
	}
}

// expr records the effects of evaluating e; write additionally records
// a write to the location e denotes (for assignment targets).
func (w *effector) expr(e ast.Expr, write bool) {
	switch e := e.(type) {
	case nil:

	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		obj := w.pkg.Info.Uses[e]
		if obj == nil {
			obj = w.pkg.Info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		loc := varLoc(v)
		if write {
			addLoc(w.eff.Writes, loc, e.Pos())
		} else {
			addLoc(w.eff.Reads, loc, e.Pos())
		}

	case *ast.SelectorExpr:
		if sel, ok := w.pkg.Info.Selections[e]; ok {
			w.expr(e.X, false)
			if sel.Kind() == types.FieldVal {
				if loc, ok := fieldLoc(sel); ok {
					if write {
						addLoc(w.eff.Writes, loc, e.Sel.Pos())
					} else {
						addLoc(w.eff.Reads, loc, e.Sel.Pos())
					}
				} else if write {
					// Field of an unnamed type: fold the write into the
					// base expression.
					w.expr(e.X, true)
				}
			}
			return
		}
		// Qualified identifier: pkg.Var, pkg.Func, pkg.Type.
		if v, ok := w.pkg.Info.Uses[e.Sel].(*types.Var); ok {
			loc := varLoc(v)
			if write {
				addLoc(w.eff.Writes, loc, e.Sel.Pos())
			} else {
				addLoc(w.eff.Reads, loc, e.Sel.Pos())
			}
		}

	case *ast.StarExpr:
		w.expr(e.X, false)
		if write {
			// *p = v mutates memory we cannot name.
			w.eff.Opaque = true
		}

	case *ast.IndexExpr:
		w.expr(e.X, write)
		w.expr(e.Index, false)

	case *ast.IndexListExpr:
		w.expr(e.X, write)
		for _, ix := range e.Indices {
			w.expr(ix, false)
		}

	case *ast.SliceExpr:
		w.expr(e.X, write)
		w.expr(e.Low, false)
		w.expr(e.High, false)
		w.expr(e.Max, false)

	case *ast.ParenExpr:
		w.expr(e.X, write)

	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Taking an address lets the callee mutate the target.
			w.expr(e.X, false)
			w.expr(e.X, true)
			return
		}
		w.expr(e.X, false)

	case *ast.BinaryExpr:
		w.expr(e.X, false)
		w.expr(e.Y, false)

	case *ast.CallExpr:
		w.call(e)

	case *ast.CompositeLit:
		structLit := false
		if tv, ok := w.pkg.Info.Types[e]; ok && tv.Type != nil {
			_, structLit = tv.Type.Underlying().(*types.Struct)
		}
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if !structLit {
					w.expr(kv.Key, false)
				}
				w.expr(kv.Value, false)
				continue
			}
			w.expr(elt, false)
		}

	case *ast.KeyValueExpr:
		w.expr(e.Key, false)
		w.expr(e.Value, false)

	case *ast.TypeAssertExpr:
		w.expr(e.X, false)

	case *ast.FuncLit:
		// The literal's effects may run whenever the value escapes;
		// fold them in at the creation site.
		w.node(e.Body)

	case *ast.BasicLit, *ast.ArrayType, *ast.MapType, *ast.ChanType,
		*ast.StructType, *ast.InterfaceType, *ast.FuncType, *ast.Ellipsis:
	}
}

// call classifies a call expression: conversions are argument reads,
// same-package named functions become call-summary edges, builtins get
// their mutation rules, and calls through function values mark the
// summary opaque.
func (w *effector) call(e *ast.CallExpr) {
	if tv, ok := w.pkg.Info.Types[e.Fun]; ok && tv.IsType() {
		for _, a := range e.Args {
			w.expr(a, false)
		}
		return
	}
	for _, a := range e.Args {
		w.expr(a, false)
	}
	switch fun := ast.Unparen(e.Fun).(type) {
	case *ast.Ident:
		switch obj := w.pkg.Info.Uses[fun].(type) {
		case *types.Func:
			w.callee(obj, e)
		case *types.Builtin:
			w.builtin(obj.Name(), e)
		case *types.Var:
			addLoc(w.eff.Reads, varLoc(obj), fun.Pos())
			w.eff.Opaque = true
		case nil:
			w.eff.Opaque = true
		}
	case *ast.SelectorExpr:
		if sel, ok := w.pkg.Info.Selections[fun]; ok {
			w.expr(fun.X, false)
			switch sel.Kind() {
			case types.MethodVal:
				if fn, ok := w.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
					w.callee(fn, e)
				}
			case types.FieldVal:
				// Call through a func-typed field.
				w.expr(fun, false)
				w.eff.Opaque = true
			}
			return
		}
		if fn, ok := w.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			w.callee(fn, e)
			return
		}
		if v, ok := w.pkg.Info.Uses[fun.Sel].(*types.Var); ok {
			addLoc(w.eff.Reads, varLoc(v), fun.Sel.Pos())
			w.eff.Opaque = true
		}
	case *ast.FuncLit:
		w.node(fun.Body)
	default:
		w.expr(e.Fun, false)
		w.eff.Opaque = true
	}
}

// callee records a resolved function call: same-package callees enter
// the summary graph; cross-package callees contribute only their
// argument reads (intra-package analysis does not model foreign
// bodies — writes through pointer arguments are already covered by the
// &x rule at the call site).
func (w *effector) callee(fn *types.Func, e *ast.CallExpr) {
	if fn.Pkg() != nil && w.pkg.Types != nil && fn.Pkg() == w.pkg.Types {
		if _, ok := w.eff.Callees[fn]; !ok {
			w.eff.Callees[fn] = e.Pos()
		}
	}
}

// builtin applies the mutation rules of predeclared functions.
func (w *effector) builtin(name string, e *ast.CallExpr) {
	switch name {
	case "delete":
		if len(e.Args) > 0 {
			w.expr(e.Args[0], true)
		}
	case "copy", "clear":
		if len(e.Args) > 0 {
			w.expr(e.Args[0], true)
		}
	}
}

// varLoc classifies a variable: package-scope variables are LocPkgVar,
// everything else (params, results, locals, captures) is LocLocal.
func varLoc(v *types.Var) Loc {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return Loc{Kind: LocPkgVar, Obj: v}
	}
	return Loc{Kind: LocLocal, Obj: v}
}

// fieldLoc builds the type-qualified field location of a selection, or
// ok=false when the receiver type is not a named type.
func fieldLoc(sel *types.Selection) (Loc, bool) {
	t := sel.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return Loc{}, false
	}
	obj := named.Obj()
	qual := obj.Name()
	if obj.Pkg() != nil {
		qual = obj.Pkg().Path() + "." + obj.Name()
	}
	return Loc{Kind: LocField, Type: qual, Field: sel.Obj().Name()}, true
}
