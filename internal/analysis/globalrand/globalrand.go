// Package globalrand forbids the process-global math/rand generator in
// simulation packages. Reproducible runs thread one explicitly seeded
// *rand.Rand through the call graph (des.New seeds the scheduler
// stream, topology.Generate takes the caller's); the package-level
// convenience functions draw from shared global state whose sequence
// depends on everything else in the process — including other
// goroutines — so a single rand.Intn silently breaks run-to-run
// determinism. Constructors (rand.New, rand.NewSource, rand.NewZipf)
// stay allowed: they are exactly how the explicit streams are built.
package globalrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// randPackages are the import paths whose package-level functions are
// checked.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// constructors are the package-level functions that build explicit
// generators rather than touching the global one.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name:    "globalrand",
	Doc:     "forbid the global math/rand generator in simulation packages; thread an explicitly seeded *rand.Rand",
	SimOnly: true,
	Run:     run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info().Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || !randPackages[fn.Pkg().Path()] {
				return true
			}
			// Methods on *rand.Rand carry a receiver and are the
			// sanctioned API; only package-level functions hit the
			// global state.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if constructors[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "%s.%s draws from the process-global generator; simulation code must use an explicitly seeded *rand.Rand (e.g. the scheduler's Rand())", fn.Pkg().Path(), fn.Name())
			return true
		})
	}
	return nil
}
