package globalrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/globalrand"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), globalrand.Analyzer, "globalrand")
}
