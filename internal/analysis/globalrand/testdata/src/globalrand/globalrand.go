// Fixture for the globalrand analyzer: package-level math/rand
// functions are flagged, explicit generator construction and use are
// not.
package globalrand

import "math/rand"

func bad() {
	rand.Seed(42)                      // want `math/rand\.Seed draws from the process-global generator`
	_ = rand.Intn(10)                  // want `math/rand\.Intn draws from the process-global generator`
	_ = rand.Float64()                 // want `math/rand\.Float64 draws from the process-global generator`
	_ = rand.Perm(5)                   // want `math/rand\.Perm draws from the process-global generator`
	rand.Shuffle(2, func(i, j int) {}) // want `math/rand\.Shuffle draws from the process-global generator`
}

func good(seed int64) float64 {
	// Constructors build the explicitly seeded stream the simulator
	// threads everywhere; methods on it are the sanctioned API.
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.1, 1, 100)
	return r.Float64() + float64(z.Uint64()) + float64(r.Intn(10))
}
