package wallclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), wallclock.Analyzer, "wallclock")
}
