// Package wallclock forbids wall-clock time sources in simulation
// packages. The DES kernel is bit-reproducible only because every
// timestamp in a run derives from the virtual clock (des.Time advanced
// by the scheduler); a single time.Now or time.Sleep couples results to
// the host machine and destroys the golden-config guarantees. The
// analyzer flags every reference to the time package's clock-reading
// and real-time-waiting functions; conversions like time.Duration and
// rendering helpers remain allowed.
package wallclock

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// forbidden lists the time-package functions that read or wait on the
// wall clock.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name:    "wallclock",
	Doc:     "forbid wall-clock time (time.Now, time.Sleep, ...) in simulation packages; use the scheduler's des.Time",
	SimOnly: true,
	Run:     run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info().Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !forbidden[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "time.%s reads the wall clock; simulation code must derive all timestamps from the scheduler's virtual clock (des.Time)", fn.Name())
			return true
		})
	}
	return nil
}
