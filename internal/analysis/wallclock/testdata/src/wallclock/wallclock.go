// Fixture for the wallclock analyzer: wall-clock reads are flagged,
// virtual-time arithmetic is not.
package wallclock

import (
	"time"

	wall "time"
)

// simTime stands in for des.Time.
type simTime int64

func bad() {
	_ = time.Now()              // want `time\.Now reads the wall clock`
	time.Sleep(time.Second)     // want `time\.Sleep reads the wall clock`
	_ = time.Since(time.Time{}) // want `time\.Since reads the wall clock`
	<-time.After(time.Second)   // want `time\.After reads the wall clock`
	_ = time.Tick(time.Second)  // want `time\.Tick reads the wall clock`
	_ = time.NewTimer(1)        // want `time\.NewTimer reads the wall clock`
}

func badAliased() {
	_ = wall.Now() // want `time\.Now reads the wall clock`
}

func good(t simTime) string {
	// Conversions and rendering through time.Duration are allowed: they
	// do arithmetic on simulated nanoseconds, not clock reads.
	d := time.Duration(t)
	return d.String()
}
