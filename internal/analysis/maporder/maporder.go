// Package maporder flags for-range loops over maps in simulation
// packages. Go randomizes map iteration order per run, so any result,
// report line or floating-point accumulation shaped by that order
// varies between otherwise identical runs. A map range is accepted only
// when:
//
//   - it is the key-collection idiom (the body solely appends the key
//     to a slice, which callers then sort), or
//   - it carries a //desalint:commutative <reason> annotation on the
//     loop line or the line above, with a non-empty reason.
//
// Floating-point accumulation (x += ..., x = x + ...) over a ranged map
// is a hard error even when annotated: float addition is not
// associative, so the result genuinely depends on iteration order and
// no annotation can make it deterministic.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name:    "maporder",
	Doc:     "flag map iteration in simulation packages unless sorted (key collection) or annotated //desalint:commutative",
	SimOnly: true,
	Run:     run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info().Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pos, isFloat := floatAccumulation(pass, rs.Body); isFloat {
				pass.Reportf(pos, "floating-point accumulation over map iteration order is never deterministic (float addition is not associative); accumulate over sorted keys instead")
				return true
			}
			if a, ok := pass.Pkg.AnnotationAt(rs.For); ok && a.Verb == "commutative" {
				if a.Arg == "" {
					pass.Reportf(rs.For, "//desalint:commutative needs a stated reason (e.g. \"integer sum; order-independent\")")
				}
				return true
			}
			if isKeyCollection(pass, rs) {
				return true
			}
			pass.Reportf(rs.For, "map iteration order is randomized and leaks into results; iterate sorted keys, or annotate the loop //desalint:commutative <reason> if the body is truly order-independent")
			return true
		})
	}
	return nil
}

// floatAccumulation reports whether the loop body accumulates into a
// floating-point variable in an order-dependent way: x op= expr with an
// arithmetic op, or x = x + ... / x = ... + x.
func floatAccumulation(pass *framework.Pass, body *ast.BlockStmt) (token.Pos, bool) {
	var pos token.Pos
	var found bool
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		if !isFloat(pass, lhs) {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			pos, found = as.TokPos, true
		case token.ASSIGN:
			if be, ok := as.Rhs[0].(*ast.BinaryExpr); ok && (be.Op == token.ADD || be.Op == token.MUL) {
				if sameExpr(lhs, be.X) || sameExpr(lhs, be.Y) {
					pos, found = as.TokPos, true
				}
			}
		}
		return true
	})
	return pos, found
}

// isFloat reports whether the expression has floating-point (or
// complex) type.
func isFloat(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.Info().Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// sameExpr compares two expressions structurally by their printed form
// (good enough for the x = x + y accumulation pattern).
func sameExpr(a, b ast.Expr) bool {
	return types.ExprString(a) == types.ExprString(b)
}

// isKeyCollection recognizes the sort-then-iterate idiom's first half:
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//
// The body must be exactly one append of the key (possibly through a
// conversion) onto the same slice it assigns.
func isKeyCollection(pass *framework.Pass, rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := pass.Info().Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if !sameExpr(as.Lhs[0], call.Args[0]) {
		return false
	}
	// Every appended element must be the key, optionally converted.
	for _, arg := range call.Args[1:] {
		if !usesOnlyKey(pass, arg, key) {
			return false
		}
	}
	return true
}

// usesOnlyKey reports whether expr is the key identifier, possibly
// wrapped in a type conversion.
func usesOnlyKey(pass *framework.Pass, expr ast.Expr, key *ast.Ident) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return pass.Info().Uses[e] == pass.Info().Defs[key]
	case *ast.CallExpr:
		// A conversion T(k).
		if len(e.Args) != 1 {
			return false
		}
		if tv, ok := pass.Info().Types[e.Fun]; !ok || !tv.IsType() {
			return false
		}
		return usesOnlyKey(pass, e.Args[0], key)
	default:
		return false
	}
}
