// Fixture for the maporder analyzer: unordered map iteration is
// flagged unless it is the key-collection idiom or carries an
// annotated, non-float commutative reason.
package maporder

import "sort"

func bad(m map[string]int) int {
	var total int
	for _, v := range m { // want `map iteration order is randomized`
		total += v
	}
	return total
}

func annotatedOK(m map[string]int) int {
	var total int
	//desalint:commutative integer sum; addition is order-independent
	for _, v := range m {
		total += v
	}
	return total
}

func annotatedInline(m map[string]bool) int {
	var n int
	for range m { //desalint:commutative counting; order-independent
		n++
	}
	return n
}

func annotatedWithoutReason(m map[string]int) int {
	var total int
	//desalint:commutative
	for _, v := range m { // want `needs a stated reason`
		total += v
	}
	return total
}

func floatAccumAnnotated(m map[string]float64) float64 {
	var sum float64
	//desalint:commutative wishful thinking: the annotation cannot fix float order-dependence
	for _, v := range m {
		sum += v // want `floating-point accumulation`
	}
	return sum
}

func floatAccumPlain(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want `floating-point accumulation`
	}
	return sum
}

func keyCollectionOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func keyCollectionConvertedOK(m map[int]struct{}) []int64 {
	var keys []int64
	for k := range m {
		keys = append(keys, int64(k))
	}
	return keys
}

func valueCollectionIsNotSorted(m map[string]int) []int {
	var vals []int
	for _, v := range m { // want `map iteration order is randomized`
		vals = append(vals, v)
	}
	return vals
}

func sliceRangeOK(xs []int) int {
	var total int
	for _, x := range xs {
		total += x
	}
	return total
}
