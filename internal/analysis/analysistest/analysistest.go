// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and checks its diagnostics against // want comments, exactly
// like golang.org/x/tools/go/analysis/analysistest (reimplemented here
// because the repository builds without external modules).
//
// A fixture line expects diagnostics by writing, after the offending
// code:
//
//	x := bad() // want `regexp` `second regexp`
//
// Each backquoted or double-quoted regexp must match one diagnostic
// reported on that line, and every diagnostic must be expected.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// TestData returns the absolute path of the calling package's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads each fixture package from dir/src/<path>, applies the
// analyzer, and reports mismatches against the // want expectations as
// test errors.
func Run(t *testing.T, dir string, a *framework.Analyzer, paths ...string) {
	t.Helper()
	if len(paths) == 0 {
		t.Fatal("analysistest.Run: no fixture packages given")
	}
	loader, err := framework.NewLoader(framework.LoadConfig{
		ExtraRoots: []string{filepath.Join(dir, "src")},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags, err := framework.RunAnalyzer(a, pkg)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkExpectations(t, pkg, diags)
	}
}

// expectation is one // want regexp at a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE extracts the quoted patterns of a want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func checkExpectations(t *testing.T, pkg *framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, raw, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	for _, d := range diags {
		var found bool
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// Describe prints the analyzer inventory of a suite (used by the
// multichecker's usage text and sanity tests).
func Describe(analyzers []*framework.Analyzer) string {
	var b strings.Builder
	for _, a := range analyzers {
		fmt.Fprintf(&b, "  %-12s %s\n", a.Name, a.Doc)
	}
	return b.String()
}
