package timerhandle_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/timerhandle"
)

func TestTimerHandle(t *testing.T) {
	// The des stub itself must stay clean: the defining package is
	// exempt from the pointer ban (it owns the representation).
	analysistest.Run(t, analysistest.TestData(t), timerhandle.Analyzer, "timerhandle", "des")
}
