// Package timerhandle protects the generation-checked value-handle
// contract of des.Timer. Timer handles are small values carrying a
// (entry pointer, generation) pair; retaining one after its event fired
// is safe because the generation check makes stale handles inert. A
// *des.Timer breaks that: the pointee can be overwritten by a later
// schedule on another code path, two holders can race on Cancel, and
// the nil/zero distinction blurs. The analyzer flags every appearance
// of the pointer type (fields, variables, parameters, returns,
// conversions), &timer expressions and new(des.Timer). The des package
// itself is exempt — it owns the representation.
package timerhandle

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "timerhandle",
	Doc:  "forbid *des.Timer and &Timer: scheduler timer handles are generation-checked values, never pointers",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StarExpr:
				// *des.Timer used as a type (declaration, parameter,
				// return, conversion, assertion).
				tv, ok := pass.Info().Types[n]
				if !ok || !tv.IsType() {
					return true
				}
				if elemTV, ok := pass.Info().Types[n.X]; ok && isForeignTimer(pass, elemTV.Type) {
					pass.Reportf(n.Pos(), "*des.Timer defeats the generation-checked handle contract; store and pass des.Timer by value")
				}
			case *ast.UnaryExpr:
				if n.Op != token.AND {
					return true
				}
				if tv, ok := pass.Info().Types[n.X]; ok && isForeignTimer(pass, tv.Type) {
					pass.Reportf(n.Pos(), "taking the address of a des.Timer creates an aliasable pointer handle; copy the Timer value instead")
				}
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if !ok || len(n.Args) != 1 {
					return true
				}
				if b, ok := pass.Info().Uses[id].(*types.Builtin); !ok || b.Name() != "new" {
					return true
				}
				if tv, ok := pass.Info().Types[n.Args[0]]; ok && tv.IsType() && isForeignTimer(pass, tv.Type) {
					pass.Reportf(n.Pos(), "new(des.Timer) yields a pointer handle; declare a zero des.Timer value instead")
				}
			}
			return true
		})
	}
	return nil
}

// isForeignTimer reports whether t is the Timer type of a des package
// other than the one being analyzed (the kernel may address its own
// representation).
func isForeignTimer(pass *framework.Pass, t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Timer" || obj.Pkg() == nil || obj.Pkg() == pass.Pkg.Types {
		return false
	}
	path := obj.Pkg().Path()
	return path == "des" || strings.HasSuffix(path, "/des")
}
