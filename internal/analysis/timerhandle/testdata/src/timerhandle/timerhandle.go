// Fixture for the timerhandle analyzer: pointer forms of des.Timer are
// flagged outside the des package; value handles are the contract.
package timerhandle

import "des"

type holder struct {
	t  des.Timer  // value handles are the contract
	pt *des.Timer // want `\*des\.Timer defeats the generation-checked handle contract`
}

func param(p *des.Timer) { // want `\*des\.Timer defeats the generation-checked handle contract`
	_ = p
}

func ret() *des.Timer { // want `\*des\.Timer defeats the generation-checked handle contract`
	return nil
}

func addr() {
	var t des.Timer
	p := &t // want `taking the address of a des\.Timer`
	_ = p
	_ = t
}

func alloc() {
	_ = new(des.Timer) // want `new\(des\.Timer\) yields a pointer handle`
}

func valueOK() bool {
	var t des.Timer
	u := t // copying the value handle is the intended use
	return u.Active()
}

type otherTimer struct{ gen uint32 }

func unrelatedOK(p *otherTimer) *otherTimer {
	// Pointers to other Timer-shaped types are not the kernel's handle.
	return p
}
