// Package des is a stub of the simulator kernel for the timerhandle
// fixtures: only the Timer value-handle shape matters.
package des

// Timer is a generation-checked value handle for a scheduled event.
type Timer struct {
	gen uint32
	at  int64
}

// Active reports whether the handle is live.
func (t Timer) Active() bool { return t.gen != 0 }

// recycle is internal representation management: the des package itself
// may address its own timers (the analyzer exempts the defining
// package).
func recycle(t *Timer) { t.gen++ }

// pool exercises the exemption for stored pointers too.
var pool []*Timer

func take() *Timer {
	if len(pool) == 0 {
		return new(Timer)
	}
	t := pool[len(pool)-1]
	pool = pool[:len(pool)-1]
	return t
}

var _ = recycle
var _ = take
