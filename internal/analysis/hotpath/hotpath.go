// Package hotpath enforces the allocation-free contract on functions
// marked //desalint:hotpath in their doc comment: the scheduler pump,
// PHY propagate/delivery and MAC contention handlers, which PR 1
// brought to 0 allocs/op. Inside a marked function the analyzer flags
//
//   - function literals that capture enclosing variables (each capture
//     forces a heap-allocated closure; the codebase pre-binds method
//     values at construction instead),
//   - fmt.Sprintf / fmt.Errorf / fmt.Sprint / fmt.Sprintln and
//     fmt.Appendf (formatting allocates even when the result is
//     discarded),
//   - append onto a fresh slice literal (grows from zero capacity on
//     every call),
//   - map and slice composite literals (always heap-backed when they
//     escape, and the hot path must not gamble on escape analysis).
//
// The check is per function body, not transitive: marking a function
// asserts its own statements are clean, and every callee worth the same
// guarantee carries its own marker.
package hotpath

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// allocatingFmt lists fmt functions that build strings or byte slices.
var allocatingFmt = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Errorf":   true,
	"Appendf":  true,
}

// Analyzer implements the check.
var Analyzer = &framework.Analyzer{
	Name: "hotpath",
	Doc:  "forbid capturing closures, fmt formatting and fresh map/slice literals inside //desalint:hotpath functions",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pass.Pkg.HotPath(fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func checkBody(pass *framework.Pass, fd *ast.FuncDecl) {
	// Slice literals already reported as part of an append are not
	// reported a second time as bare literals.
	reportedLits := make(map[*ast.CompositeLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if caps := capturedVars(pass, fd, n); len(caps) > 0 {
				pass.Reportf(n.Pos(), "closure captures %s and allocates on every call; pre-bind a method value or thread state through an Event implementation", strings.Join(caps, ", "))
			}
		case *ast.CallExpr:
			checkCall(pass, n, reportedLits)
		case *ast.CompositeLit:
			if reportedLits[n] {
				return true
			}
			tv, ok := pass.Info().Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in a hot-path function; hoist it to a field or package variable")
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in a hot-path function; reuse a pre-sized buffer")
			}
		}
		return true
	})
}

// checkCall flags allocating fmt calls and appends growing a fresh
// slice literal.
func checkCall(pass *framework.Pass, call *ast.CallExpr, reportedLits map[*ast.CompositeLit]bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.Info().Uses[fun.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && allocatingFmt[fn.Name()] {
			pass.Reportf(call.Pos(), "fmt.%s allocates its result; hot-path functions must not format (gate diagnostics behind a tracer check outside the marked function)", fn.Name())
		}
	case *ast.Ident:
		b, ok := pass.Info().Uses[fun].(*types.Builtin)
		if !ok || b.Name() != "append" || len(call.Args) == 0 {
			return
		}
		if lit, ok := call.Args[0].(*ast.CompositeLit); ok {
			reportedLits[lit] = true
			pass.Reportf(call.Pos(), "append onto a fresh slice literal grows from zero capacity on every call; append into a reused, pre-sized buffer")
		}
	}
}

// capturedVars returns the sorted names of variables the literal
// captures from its enclosing function: objects used inside the closure
// but declared between the start of fd and the literal itself.
// Package-level variables and struct fields are free to reference.
func capturedVars(pass *framework.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info().Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < lit.Pos() {
			seen[v.Name()] = true
		}
		return true
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
