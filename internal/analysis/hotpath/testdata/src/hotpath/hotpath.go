// Fixture for the hotpath analyzer: allocation sources inside
// //desalint:hotpath functions are flagged; unmarked functions and
// non-allocating constructs are not.
package hotpath

import "fmt"

type node struct {
	buf   []int
	count int
}

type point struct{ x, y int }

//desalint:hotpath
func (n *node) badClosure(x int) func() int {
	return func() int { return x + n.count } // want `closure captures n, x`
}

//desalint:hotpath
func badFmt(err error) {
	_ = fmt.Sprintf("%v", err)      // want `fmt\.Sprintf allocates`
	_ = fmt.Errorf("wrap: %w", err) // want `fmt\.Errorf allocates`
}

//desalint:hotpath
func badLiterals() int {
	m := map[string]int{"a": 1} // want `map literal allocates`
	s := []int{1, 2, 3}         // want `slice literal allocates`
	return m["a"] + s[0]
}

//desalint:hotpath
func badAppend(x int) []int {
	return append([]int{}, x) // want `append onto a fresh slice literal`
}

// goodHot exercises the allowed constructs: appends into reused
// buffers, struct literals (stack-allocated values), and non-capturing
// function literals (static func values).
//
//desalint:hotpath
func goodHot(n *node, x int) point {
	n.buf = append(n.buf, x)
	n.count++
	f := func() int { return 1 }
	return point{x: f(), y: x}
}

// coldPath is unmarked: anything goes.
func coldPath(x int) func() int {
	_ = fmt.Sprintf("%d", x)
	_ = []int{x}
	_ = map[int]int{x: x}
	return func() int { return x }
}

// workspace models the tabulate-once / evaluate-many pattern of the
// memoized analytical engine: coefficient tables filled at construction,
// then a hot evaluation that only indexes into them.
type workspace struct {
	pref []float64
	rate []float64
}

// newWorkspace is cold (construction): allocating the tables here is
// fine and must not be flagged.
func newWorkspace(n int) *workspace {
	w := &workspace{
		pref: make([]float64, n),
		rate: make([]float64, n),
	}
	for i := range w.pref {
		w.pref[i] = float64(i)
	}
	return w
}

// goodEvaluate is the hot half of the workspace pattern: pure reads of
// the prebuilt tables plus scalar arithmetic — allocation-free by
// construction, so nothing may be flagged.
//
//desalint:hotpath
func (w *workspace) goodEvaluate(s float64) float64 {
	var sum float64
	for i, r := range w.rate {
		sum += w.pref[i] * (s + r)
	}
	return sum
}

// badEvaluate rebuilds its table inside the marked hot function —
// exactly the per-call allocation the workspace pattern exists to hoist
// out, so the analyzer must flag it.
//
//desalint:hotpath
func (w *workspace) badEvaluate(s float64) float64 {
	tmp := []float64{s}                          // want `slice literal allocates`
	f := func() float64 { return s + w.rate[0] } // want `closure captures s, w`
	return tmp[0] + f()
}

// goodTabulateInto reuses a caller-owned buffer: append into a slice
// that arrives with capacity is the sanctioned refill idiom.
//
//desalint:hotpath
func (w *workspace) goodTabulateInto(buf []float64) []float64 {
	buf = buf[:0]
	for _, r := range w.rate {
		buf = append(buf, r)
	}
	return buf
}

// countdown models the MAC backoff fast-forward machinery (DESIGN.md
// §12): a residual countdown settled in bulk when the channel was
// provably idle for the elapsed stretch.
type countdown struct {
	backoff int
	start   int
	pending []func()
}

// goodBulkJump is the sanctioned settlement shape: the elapsed slot
// count collapses to integer arithmetic on prerecorded anchors — one
// division, one subtraction, no per-slot work and nothing allocated.
//
//desalint:hotpath
func (c *countdown) goodBulkJump(now, slot int) {
	elapsed := (now - c.start) / slot
	if elapsed > c.backoff {
		elapsed = c.backoff
	}
	c.backoff -= elapsed
}

// badPerSlotLoop replays the skipped stretch slot by slot inside the
// marked jump path, capturing state into a fresh closure per slot —
// exactly the per-event cost the bulk jump exists to eliminate, so the
// analyzer must flag it.
//
//desalint:hotpath
func (c *countdown) badPerSlotLoop(now, slot int) {
	for t := c.start; t < now; t += slot {
		t := t
		c.pending = append(c.pending, func() { // want `closure captures c, t`
			c.backoff--
			_ = t
		})
	}
}

// grid models the incremental spatial index (DESIGN.md §15): radios
// hash into cells, each cell owning a reused bucket of IDs.
type grid struct {
	cells   map[int]int
	buckets [][]int32
}

// goodMigrate is the sanctioned cell-migration shape: swap-remove the
// ID from its source bucket and append it into the destination's
// reused storage — O(moved) work touching two buckets, nothing
// allocated while capacity lasts.
//
//desalint:hotpath
func (g *grid) goodMigrate(id int32, from, to int) {
	b := g.buckets[from]
	for i, v := range b {
		if v == id {
			b[i] = b[len(b)-1]
			g.buckets[from] = b[:len(b)-1]
			break
		}
	}
	g.buckets[to] = append(g.buckets[to], id)
}

// badMigrate rebuilds the whole index for a single move — a fresh cell
// map and fresh bucket storage per call, the O(N) rebuild-per-move the
// incremental path exists to eliminate, so the analyzer must flag it.
//
//desalint:hotpath
func (g *grid) badMigrate(id int32, to int) {
	g.cells = map[int]int{to: 0}         // want `map literal allocates`
	g.buckets[0] = append([]int32{}, id) // want `append onto a fresh slice literal`
}
