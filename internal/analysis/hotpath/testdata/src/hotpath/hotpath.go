// Fixture for the hotpath analyzer: allocation sources inside
// //desalint:hotpath functions are flagged; unmarked functions and
// non-allocating constructs are not.
package hotpath

import "fmt"

type node struct {
	buf   []int
	count int
}

type point struct{ x, y int }

//desalint:hotpath
func (n *node) badClosure(x int) func() int {
	return func() int { return x + n.count } // want `closure captures n, x`
}

//desalint:hotpath
func badFmt(err error) {
	_ = fmt.Sprintf("%v", err)      // want `fmt\.Sprintf allocates`
	_ = fmt.Errorf("wrap: %w", err) // want `fmt\.Errorf allocates`
}

//desalint:hotpath
func badLiterals() int {
	m := map[string]int{"a": 1} // want `map literal allocates`
	s := []int{1, 2, 3}         // want `slice literal allocates`
	return m["a"] + s[0]
}

//desalint:hotpath
func badAppend(x int) []int {
	return append([]int{}, x) // want `append onto a fresh slice literal`
}

// goodHot exercises the allowed constructs: appends into reused
// buffers, struct literals (stack-allocated values), and non-capturing
// function literals (static func values).
//
//desalint:hotpath
func goodHot(n *node, x int) point {
	n.buf = append(n.buf, x)
	n.count++
	f := func() int { return 1 }
	return point{x: f(), y: x}
}

// coldPath is unmarked: anything goes.
func coldPath(x int) func() int {
	_ = fmt.Sprintf("%d", x)
	_ = []int{x}
	_ = map[int]int{x: x}
	return func() int { return x }
}
