// Package cache implements a content-addressed on-disk result store for
// incremental experiment sweeps. Entries are keyed by the SHA-256 of
// their inputs (canonical scenario bytes, engine fingerprint, run
// options), so a cache hit is by construction the result of the exact
// same computation: determinism of the simulation kernel makes the
// stored bytes bit-identical to what a fresh run would produce.
//
// The store is corruption-tolerant — a truncated, tampered-with or
// unreadable entry is reported as a miss, never as an error — and
// writes are atomic (temp file + rename), so concurrent readers and
// writers on the same directory are safe. A bounded in-memory LRU layer
// fronts the disk store; recency is tracked with a logical counter, not
// wall-clock time, keeping the package compatible with the repository's
// determinism lints.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Key is the content address of a cache entry: a SHA-256 digest over the
// entry's full input description.
type Key [sha256.Size]byte

// String returns the hexadecimal form of the key, used as its file name.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hexadecimal form back into a Key. It is the
// inverse of String, so externally quoted keys (cmd/simd's
// GET /v1/runs/{key} path, file names in a cache directory) resolve to
// the exact content address they were minted from.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("cache: bad key %q: %w", s, err)
	}
	if len(b) != len(k) {
		return k, fmt.Errorf("cache: bad key %q: got %d hex bytes, want %d", s, len(b), len(k))
	}
	copy(k[:], b)
	return k, nil
}

// KeyBuilder accumulates the input components of a content address.
// Components are length-prefixed before hashing so that concatenation
// ambiguity cannot alias two distinct input sets to one key.
type KeyBuilder struct {
	h hash.Hash
}

// NewKeyBuilder returns an empty builder.
func NewKeyBuilder() *KeyBuilder {
	return &KeyBuilder{h: sha256.New()}
}

// Write adds one labeled component. The label separates the key's
// namespaces (e.g. "scenario", "engine", "options").
func (b *KeyBuilder) Write(label string, data []byte) *KeyBuilder {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(label)))
	b.h.Write(n[:])
	io.WriteString(b.h, label)
	binary.BigEndian.PutUint64(n[:], uint64(len(data)))
	b.h.Write(n[:])
	b.h.Write(data)
	return b
}

// Key finalizes the digest.
func (b *KeyBuilder) Key() Key {
	var k Key
	copy(k[:], b.h.Sum(nil))
	return k
}

// Stats are monotonic operation counters for one Store.
type Stats struct {
	Hits      uint64 // Get found a valid entry (memory or disk)
	Misses    uint64 // Get found nothing, or only a corrupt entry
	Evictions uint64 // memory-layer entries displaced by the LRU bound
}

// entryMagic guards the on-disk format: magic, then the SHA-256 of the
// payload, then the payload itself. A reader verifies the checksum
// before returning bytes, so torn or tampered files surface as misses.
var entryMagic = []byte("DACHE1\n")

// DefaultMemoryEntries is the LRU bound used when NewStore is given a
// non-positive limit.
const DefaultMemoryEntries = 256

// Store is a content-addressed cache: a directory of checksum-framed
// entry files fronted by a bounded in-memory LRU map. The zero value is
// not usable; construct with NewStore. All methods are safe for
// concurrent use.
type Store struct {
	dir string

	mu       sync.Mutex
	mem      map[Key]*memEntry
	maxMem   int
	tick     uint64 // logical clock for LRU recency (no wall time)
	hits     uint64
	misses   uint64
	evicts   uint64
	writeSeq uint64 // distinguishes temp files of concurrent writers
}

type memEntry struct {
	data []byte
	last uint64 // tick of most recent touch
}

// NewStore opens (creating if needed) the cache directory dir. maxMemory
// bounds the in-memory entry count; non-positive selects
// DefaultMemoryEntries.
func NewStore(dir string, maxMemory int) (*Store, error) {
	if dir == "" {
		return nil, errors.New("cache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: create dir: %w", err)
	}
	if maxMemory <= 0 {
		maxMemory = DefaultMemoryEntries
	}
	return &Store{
		dir:    dir,
		mem:    make(map[Key]*memEntry, maxMemory),
		maxMem: maxMemory,
	}, nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// path returns the entry file for key k.
func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.String()+".entry")
}

// Get returns the payload stored under k and whether it was found. Any
// form of entry damage — missing file, short file, bad magic, checksum
// mismatch — is a miss; Get never fails. The returned slice is the
// caller's to keep.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	if e, ok := s.mem[k]; ok {
		s.tick++
		e.last = s.tick
		s.hits++
		out := append([]byte(nil), e.data...)
		s.mu.Unlock()
		return out, true
	}
	s.mu.Unlock()

	data, ok := readEntry(s.path(k))
	s.mu.Lock()
	defer s.mu.Unlock()
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.insertLocked(k, data)
	return append([]byte(nil), data...), true
}

// Put stores payload under k: first durably on disk via an atomic
// rename, then in the memory layer. The payload is copied.
func (s *Store) Put(k Key, payload []byte) error {
	s.mu.Lock()
	s.writeSeq++
	seq := s.writeSeq
	s.mu.Unlock()

	if err := writeEntry(s.path(k), seq, payload); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(k, append([]byte(nil), payload...))
	return nil
}

// insertLocked adds (or refreshes) a memory-layer entry, evicting the
// least recently used entry when over the bound. Caller holds s.mu.
func (s *Store) insertLocked(k Key, data []byte) {
	s.tick++
	if e, ok := s.mem[k]; ok {
		e.data = data
		e.last = s.tick
		return
	}
	if len(s.mem) >= s.maxMem {
		var victim Key
		oldest := uint64(0)
		first := true
		for key, e := range s.mem { //desalint:commutative — min-scan; result independent of iteration order
			if first || e.last < oldest {
				victim, oldest, first = key, e.last, false
			}
		}
		delete(s.mem, victim)
		s.evicts++
	}
	s.mem[k] = &memEntry{data: data, last: s.tick}
}

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Hits: s.hits, Misses: s.misses, Evictions: s.evicts}
}

// readEntry loads and verifies one entry file. Every failure mode maps
// to ok=false.
func readEntry(path string) ([]byte, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	header := len(entryMagic) + sha256.Size
	if len(raw) < header {
		return nil, false
	}
	for i, c := range entryMagic {
		if raw[i] != c {
			return nil, false
		}
	}
	var want [sha256.Size]byte
	copy(want[:], raw[len(entryMagic):header])
	payload := raw[header:]
	if sha256.Sum256(payload) != want {
		return nil, false
	}
	return payload, true
}

// writeEntry atomically writes one checksum-framed entry file: the bytes
// land under a unique temp name in the same directory, then rename
// replaces the target in one step so readers never observe a torn file.
func writeEntry(path string, seq uint64, payload []byte) error {
	sum := sha256.Sum256(payload)
	buf := make([]byte, 0, len(entryMagic)+len(sum)+len(payload))
	buf = append(buf, entryMagic...)
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)

	tmp := fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), seq)
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("cache: write temp: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache: commit entry: %w", err)
	}
	return nil
}
