package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testKey(parts ...string) Key {
	b := NewKeyBuilder()
	for i, p := range parts {
		b.Write(fmt.Sprintf("part%d", i), []byte(p))
	}
	return b.Key()
}

func TestKeyBuilderDeterministicAndSensitive(t *testing.T) {
	if testKey("a", "b") != testKey("a", "b") {
		t.Error("identical inputs must produce identical keys")
	}
	if testKey("a", "b") == testKey("a", "c") {
		t.Error("different inputs must produce different keys")
	}
	// Length prefixing: ("ab","c") must not alias ("a","bc").
	if testKey("ab", "c") == testKey("a", "bc") {
		t.Error("component boundaries must be part of the key")
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := NewStore(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("round", "trip")
	payload := []byte("the result bytes")
	if _, ok := s.Get(k); ok {
		t.Fatal("empty store should miss")
	}
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload, true", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestDiskPersistsAcrossStores(t *testing.T) {
	dir := t.TempDir()
	k := testKey("persist")
	payload := []byte("survives reopen")

	s1, err := NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(k, payload); err != nil {
		t.Fatal(err)
	}

	s2, err := NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("reopened store: Get = %q, %v; want payload, true", got, ok)
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("corrupt")
	if err := s.Put(k, []byte("to be damaged")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.String()+".entry")

	damage := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated-header", func(b []byte) []byte { return b[:len(entryMagic)+3] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-1] }},
		{"flipped-payload-byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0xFF
			return c
		}},
		{"bad-magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xFF
			return c
		}},
		{"empty", func([]byte) []byte { return nil }},
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			if err := os.WriteFile(path, d.mut(orig), 0o644); err != nil {
				t.Fatal(err)
			}
			fresh, err := NewStore(dir, 4) // bypass the memory layer
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := fresh.Get(k); ok {
				t.Error("corrupt entry returned a hit; must be a miss")
			}
		})
	}
}

func TestLRUEviction(t *testing.T) {
	s, err := NewStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2, k3 := testKey("1"), testKey("2"), testKey("3")
	for i, k := range []Key{k1, k2} {
		if err := s.Put(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Get(k1) // k1 now more recent than k2
	if err := s.Put(k3, []byte{3}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// k2 was evicted from memory but must still be on disk.
	if _, ok := s.Get(k2); !ok {
		t.Error("evicted entry lost from disk")
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	s, err := NewStore(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const keys = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := testKey("conc", fmt.Sprint(i%keys))
				payload := []byte(fmt.Sprintf("value-%d", i%keys))
				if i%2 == 0 {
					if err := s.Put(k, payload); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
				} else if got, ok := s.Get(k); ok && !bytes.Equal(got, payload) {
					t.Errorf("worker %d: key %d: got %q, want %q", w, i%keys, got, payload)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore("", 4); err == nil {
		t.Error("empty dir should fail")
	}
	// A file where the directory should be must fail.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(f, 4); err == nil {
		t.Error("dir path occupied by a file should fail")
	}
}

func TestPutOverwrites(t *testing.T) {
	s, err := NewStore(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("overwrite")
	if err := s.Put(k, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || string(got) != "new" {
		t.Fatalf("Get = %q, %v; want \"new\", true", got, ok)
	}
}

func TestGetReturnsCallerOwnedCopy(t *testing.T) {
	s, err := NewStore(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("own")
	if err := s.Put(k, []byte("immutable")); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Get(k)
	a[0] = 'X'
	b, _ := s.Get(k)
	if string(b) != "immutable" {
		t.Error("mutating a Get result corrupted the cached entry")
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	k := testKey("parse", "round", "trip")
	got, err := ParseKey(k.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Errorf("ParseKey(%s) = %s", k, got)
	}
	for name, s := range map[string]string{
		"not hex":   "zz" + k.String()[2:],
		"too short": k.String()[:10],
		"too long":  k.String() + "00",
		"empty":     "",
	} {
		if _, err := ParseKey(s); err == nil {
			t.Errorf("%s: ParseKey(%q) accepted a bad key", name, s)
		}
	}
}

// TestConcurrentSameKeyWaiters hammers ONE key with mixed Get/Put from
// many goroutines — the access pattern cmd/simd's coalescing layer
// produces when a burst of identical requests resolves and every waiter
// turns around and reads the same entry. Under -race this pins the
// store's concurrent-waiter semantics: every Get returns either a miss
// or one of the exact payloads some Put wrote, never a torn mix.
func TestConcurrentSameKeyWaiters(t *testing.T) {
	s, err := NewStore(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("one", "hot", "key")
	valid := map[string]bool{}
	for v := 0; v < 4; v++ {
		valid[fmt.Sprintf("payload-%d", v)] = true
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if (w+i)%4 == 0 {
					if err := s.Put(k, []byte(fmt.Sprintf("payload-%d", i%4))); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
				} else if got, ok := s.Get(k); ok && !valid[string(got)] {
					t.Errorf("worker %d: torn read %q", w, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got, ok := s.Get(k); !ok || !valid[string(got)] {
		t.Errorf("final Get = %q, %v; want a valid payload", got, ok)
	}
}
