package telemetry

// Shard aggregation. The sharded runner gives every shard its own
// Buffer sink; after all shards finish, Merge folds them — in shard
// order, so the float accumulation sequence is fixed and the merged
// export is deterministic — into one aggregate export:
//
//   - agg samples are averaged pointwise over shards (the paper's
//     "mean over random topologies" presentation, applied to the whole
//     trajectory instead of just the end point);
//   - counters are summed, gauges averaged, histograms merged
//     bucket-by-bucket;
//   - per-node samples are dropped: node i is a different station in
//     every shard's topology, so a cross-shard series for it has no
//     meaning.

import (
	"fmt"
)

// Merge combines per-shard exports into one aggregate export. Buffers
// must come from runs of the same scenario shape: equal interval,
// duration, node counts and metric layout (only the seed differs).
func Merge(shards []*Buffer) (*Buffer, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("telemetry: nothing to merge")
	}
	base := shards[0]
	if !base.hasHeader {
		return nil, fmt.Errorf("telemetry: shard 0 export has no header")
	}
	out := NewBuffer()
	h := base.header
	h.Shards = len(shards)
	if err := out.WriteHeader(h); err != nil {
		return nil, err
	}

	aggs := make([][]Record, len(shards))
	metrics := make([][]Record, len(shards))
	for i, b := range shards {
		if !b.hasHeader {
			return nil, fmt.Errorf("telemetry: shard %d export has no header", i)
		}
		if err := compatibleHeaders(base.header, b.header); err != nil {
			return nil, fmt.Errorf("telemetry: shard %d: %w", i, err)
		}
		for _, r := range b.records {
			switch r.Kind {
			case KindAgg:
				aggs[i] = append(aggs[i], r)
			case KindCounter, KindGauge, KindHist:
				metrics[i] = append(metrics[i], r)
			}
		}
		if len(aggs[i]) != len(aggs[0]) {
			return nil, fmt.Errorf("telemetry: shard %d has %d aggregate samples, shard 0 has %d",
				i, len(aggs[i]), len(aggs[0]))
		}
		if len(metrics[i]) != len(metrics[0]) {
			return nil, fmt.Errorf("telemetry: shard %d has %d metric records, shard 0 has %d",
				i, len(metrics[i]), len(metrics[0]))
		}
	}

	n := float64(len(shards))
	for j, a0 := range aggs[0] {
		m := Record{Kind: KindAgg, T: a0.T, Node: -1}
		for i := range shards {
			a := aggs[i][j]
			if a.T != a0.T {
				return nil, fmt.Errorf("telemetry: shard %d sample %d at t=%d, shard 0 at t=%d",
					i, j, a.T, a0.T)
			}
			m.ThroughputBps += a.ThroughputBps
			m.CumThroughputBps += a.CumThroughputBps
			m.CollisionRatio += a.CollisionRatio
			m.Jain += a.Jain
		}
		m.ThroughputBps /= n
		m.CumThroughputBps /= n
		m.CollisionRatio /= n
		m.Jain /= n
		if err := out.WriteRecord(m); err != nil {
			return nil, err
		}
	}

	for j, m0 := range metrics[0] {
		m := m0
		for i := 1; i < len(shards); i++ {
			r := metrics[i][j]
			if r.Kind != m0.Kind || r.Name != m0.Name {
				return nil, fmt.Errorf("telemetry: shard %d metric %d is %s %q, shard 0 has %s %q",
					i, j, r.Kind, r.Name, m0.Kind, m0.Name)
			}
			switch m0.Kind {
			case KindCounter:
				m.Count += r.Count
			case KindGauge:
				m.Value += r.Value
			case KindHist:
				if err := mergeHistRecord(&m, r); err != nil {
					return nil, fmt.Errorf("telemetry: shard %d metric %q: %w", i, r.Name, err)
				}
			}
		}
		if m0.Kind == KindGauge {
			m.Value /= n
		}
		if err := out.WriteRecord(m); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// compatibleHeaders checks that two shard headers describe the same
// scenario shape.
func compatibleHeaders(a, b Header) error {
	switch {
	case a.Format != b.Format:
		return fmt.Errorf("format %q != %q", b.Format, a.Format)
	case a.Scheme != b.Scheme:
		return fmt.Errorf("scheme %q != %q", b.Scheme, a.Scheme)
	case a.Nodes != b.Nodes || a.InnerNodes != b.InnerNodes:
		return fmt.Errorf("topology %d/%d nodes != %d/%d", b.InnerNodes, b.Nodes, a.InnerNodes, a.Nodes)
	case a.IntervalNs != b.IntervalNs:
		return fmt.Errorf("interval %dns != %dns", b.IntervalNs, a.IntervalNs)
	case a.DurationNs != b.DurationNs:
		return fmt.Errorf("duration %dns != %dns", b.DurationNs, a.DurationNs)
	}
	return nil
}

// mergeHistRecord folds histogram record r into m (same bucket layout
// required).
func mergeHistRecord(m *Record, r Record) error {
	if len(m.Bounds) != len(r.Bounds) || len(m.Counts) != len(r.Counts) {
		return fmt.Errorf("histogram layouts differ (%d vs %d buckets)", len(m.Bounds), len(r.Bounds))
	}
	for i := range m.Bounds {
		if m.Bounds[i] != r.Bounds[i] {
			return fmt.Errorf("histogram bound %d differs (%v vs %v)", i, m.Bounds[i], r.Bounds[i])
		}
	}
	// Copy before adding: m.Counts aliases shard 0's record.
	counts := append([]int64(nil), m.Counts...)
	for i := range counts {
		counts[i] += r.Counts[i]
	}
	m.Counts = counts
	m.Count += r.Count
	m.Sum += r.Sum
	return nil
}
