// Package telemetry is the simulator's deterministic observability
// subsystem: a registry of counters, gauges and fixed-bucket histograms
// wired into the MAC/PHY hot paths, a sim-clock probe scheduler that
// samples metrics at a fixed simulated interval, and a streaming
// self-describing JSONL export. Three properties are the contract:
//
//   - Zero cost when off. Every metric method is a no-op on a nil
//     receiver, so instrumented code records unconditionally and a
//     disabled run pays one nil check — no allocation, no branch on a
//     config struct (bench-gated by BenchmarkTelemetryOff).
//   - Deterministic. Sampling is driven by the discrete-event clock,
//     never the wall clock, and consumes no randomness; two runs of the
//     same scenario produce byte-identical exports, and enabling
//     telemetry leaves the simulation results bit-identical (pinned by
//     the kernel-determinism goldens).
//   - Streaming. Records are written as they are produced; a long run
//     never buffers its full series (the in-memory Buffer sink exists
//     for tests and for shard merging, where the series is bounded).
package telemetry

import (
	"repro/internal/stats"
)

// Counter is a monotonically increasing event count. All methods are
// no-ops on a nil receiver: instrumented code holds possibly-nil
// pointers and records unconditionally.
type Counter struct {
	v int64
}

// Inc adds one.
//
//desalint:hotpath
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds d.
//
//desalint:hotpath
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v += d
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-write-wins scalar.
type Gauge struct {
	v float64
}

// Set records the current value.
//
//desalint:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the last value set (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket distribution (a nil-safe wrapper around
// stats.Histogram, which also provides the shard-merge operation).
type Histogram struct {
	h *stats.Histogram
}

// NewHistogram wraps the given bucket bounds; see stats.NewHistogram
// for the layout rules.
func NewHistogram(bounds []float64) (*Histogram, error) {
	h, err := stats.NewHistogram(bounds)
	if err != nil {
		return nil, err
	}
	return &Histogram{h: h}, nil
}

// Observe records one observation.
//
//desalint:hotpath
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	h.h.Observe(x)
}

// Snapshot returns the underlying histogram (nil on a nil receiver).
// The caller must not modify it while the simulation is running.
func (h *Histogram) Snapshot() *stats.Histogram {
	if h == nil {
		return nil
	}
	return h.h
}
