package telemetry

import (
	"fmt"

	"repro/internal/des"
)

// metricKind tags a registry entry.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

// entry is one registered metric.
type entry struct {
	name string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds a run's named metrics. Registration order is
// remembered and is the export order, so two runs of the same scenario
// emit metric records in the same sequence. A nil *Registry is the
// disabled state: every lookup returns a nil metric, which in turn
// no-ops on every method.
type Registry struct {
	order  []entry
	byName map[string]int // index into order
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int, 16)}
}

// Counter registers (or returns the already-registered) counter under
// name. Registering a name previously used by a different metric kind
// is an error.
func (r *Registry) Counter(name string) (*Counter, error) {
	if r == nil {
		return nil, nil
	}
	if i, ok := r.byName[name]; ok {
		if r.order[i].kind != kindCounter {
			return nil, fmt.Errorf("telemetry: metric %q already registered with a different kind", name)
		}
		return r.order[i].c, nil
	}
	c := &Counter{}
	r.byName[name] = len(r.order)
	r.order = append(r.order, entry{name: name, kind: kindCounter, c: c})
	return c, nil
}

// Gauge registers (or returns) the gauge under name.
func (r *Registry) Gauge(name string) (*Gauge, error) {
	if r == nil {
		return nil, nil
	}
	if i, ok := r.byName[name]; ok {
		if r.order[i].kind != kindGauge {
			return nil, fmt.Errorf("telemetry: metric %q already registered with a different kind", name)
		}
		return r.order[i].g, nil
	}
	g := &Gauge{}
	r.byName[name] = len(r.order)
	r.order = append(r.order, entry{name: name, kind: kindGauge, g: g})
	return g, nil
}

// Histogram registers (or returns) the histogram under name. A repeat
// registration must use identical bounds.
func (r *Registry) Histogram(name string, bounds []float64) (*Histogram, error) {
	if r == nil {
		return nil, nil
	}
	if i, ok := r.byName[name]; ok {
		e := r.order[i]
		if e.kind != kindHistogram {
			return nil, fmt.Errorf("telemetry: metric %q already registered with a different kind", name)
		}
		existing := e.h.Snapshot().Bounds()
		if len(existing) != len(bounds) {
			return nil, fmt.Errorf("telemetry: histogram %q re-registered with different bounds", name)
		}
		for j := range bounds {
			if existing[j] != bounds[j] {
				return nil, fmt.Errorf("telemetry: histogram %q re-registered with different bounds", name)
			}
		}
		return e.h, nil
	}
	h, err := NewHistogram(bounds)
	if err != nil {
		return nil, fmt.Errorf("telemetry: histogram %q: %w", name, err)
	}
	r.byName[name] = len(r.order)
	r.order = append(r.order, entry{name: name, kind: kindHistogram, h: h})
	return h, nil
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	names := make([]string, len(r.order))
	for i, e := range r.order {
		names[i] = e.name
	}
	return names
}

// WriteMetrics emits one record per registered metric to sink, in
// registration order, stamped with sim time t. A non-empty only list
// restricts the export to those names (order still follows
// registration, so the output is independent of the filter's own
// ordering).
func (r *Registry) WriteMetrics(sink Sink, t des.Time, only []string) error {
	if r == nil {
		return nil
	}
	var keep map[string]bool
	if len(only) > 0 {
		keep = make(map[string]bool, len(only))
		for _, n := range only {
			keep[n] = true
		}
	}
	for _, e := range r.order {
		if keep != nil && !keep[e.name] {
			continue
		}
		rec := Record{T: int64(t), Node: -1, Name: e.name}
		switch e.kind {
		case kindCounter:
			rec.Kind = KindCounter
			rec.Count = e.c.Value()
		case kindGauge:
			rec.Kind = KindGauge
			rec.Value = e.g.Value()
		case kindHistogram:
			rec.Kind = KindHist
			h := e.h.Snapshot()
			rec.Count = h.Count()
			rec.Sum = h.Sum()
			rec.Bounds = h.Bounds()
			rec.Counts = h.Counts()
		}
		if err := sink.WriteRecord(rec); err != nil {
			return err
		}
	}
	return nil
}
