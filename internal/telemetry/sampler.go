package telemetry

// The probe scheduler. Sampling is an event on the simulation's own
// scheduler: ticks fire at start+i·interval in sim time, so the series
// is bit-identical across runs and completely independent of wall
// clock. A tick only *reads* simulation state — it must consume no
// randomness and mutate nothing the protocol observes — which is what
// keeps telemetry-enabled runs result-identical to disabled ones (the
// kernel-determinism goldens enforce this).

import (
	"fmt"

	"repro/internal/des"
)

// Probe is called at every sample tick with the current sim time. It
// must not perturb the simulation: read state, write records, nothing
// else.
type Probe func(now des.Time)

// Sampler drives a Probe at a fixed sim-time interval.
type Sampler struct {
	sched    *des.Scheduler
	interval des.Time
	probe    Probe
	tickFn   func() // pre-bound: rescheduling allocates no closure
	last     des.Time
	started  bool
}

// NewSampler creates a sampler; interval must be positive.
func NewSampler(sched *des.Scheduler, interval des.Time, probe Probe) (*Sampler, error) {
	if sched == nil || probe == nil {
		return nil, fmt.Errorf("telemetry: sampler needs a scheduler and a probe")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("telemetry: sample interval must be positive, got %v", interval)
	}
	s := &Sampler{sched: sched, interval: interval, probe: probe}
	s.tickFn = s.tick
	return s, nil
}

// Start schedules the first tick one interval from now. Call once, at
// the start of measurement.
func (s *Sampler) Start() {
	if s.started {
		return
	}
	s.started = true
	s.last = s.sched.Now()
	s.sched.Schedule(s.interval, s.tickFn)
}

// tick samples and reschedules. The trailing reschedule is harmless at
// the end of a run: the scheduler simply never reaches it.
func (s *Sampler) tick() {
	s.last = s.sched.Now()
	s.probe(s.last)
	s.sched.Schedule(s.interval, s.tickFn)
}

// Flush emits a final sample at the current sim time if the last tick
// happened earlier — the run's duration need not be a multiple of the
// interval, and the end-of-run state must always be captured (it is
// what reproduces the end-of-run aggregates exactly).
func (s *Sampler) Flush() {
	if !s.started {
		return
	}
	if now := s.sched.Now(); now > s.last {
		s.last = now
		s.probe(now)
	}
}

// LastSample returns the sim time of the most recent sample (the start
// time before any tick has fired).
func (s *Sampler) LastSample() des.Time { return s.last }
