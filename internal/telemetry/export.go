package telemetry

// The export format is self-describing JSONL: the first line is a
// Header naming the format version, the scenario and the sampling
// parameters; every following line is one Record. Records are written
// as they are produced, so a long run streams to disk instead of
// buffering its series. encoding/json renders float64 in strconv's
// shortest round-trippable form, so the export is byte-deterministic
// and decoded values are bit-identical to the values the simulator
// computed — cmd/simtrace can reproduce end-of-run aggregates exactly.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// FormatV1 is the format tag written in every export header.
const FormatV1 = "repro-telemetry/v1"

// Record kinds.
const (
	// KindNode is a per-node sample: cumulative MAC counters plus the
	// instantaneous (per-window) and cumulative throughput of one
	// measured inner node.
	KindNode = "node"
	// KindAgg is a per-tick aggregate over the inner nodes, including
	// the Jain fairness trajectory.
	KindAgg = "agg"
	// KindCounter, KindGauge and KindHist are end-of-run metric records
	// from the registry.
	KindCounter = "counter"
	KindGauge   = "gauge"
	KindHist    = "hist"
)

// Header is the first line of an export.
type Header struct {
	// Format is FormatV1.
	Format string `json:"format"`
	// Scenario is the scenario's display name (may be empty).
	Scenario string `json:"scenario,omitempty"`
	// Scheme is the collision-avoidance variant under test.
	Scheme string `json:"scheme,omitempty"`
	// Seed is the base random seed of the run (the base scenario's seed
	// for merged multi-shard exports).
	Seed int64 `json:"seed"`
	// Nodes and InnerNodes describe the topology: total stations and
	// measured inner stations.
	Nodes      int `json:"nodes"`
	InnerNodes int `json:"innerNodes"`
	// IntervalNs is the sampling period and DurationNs the measured
	// simulated time, both in nanoseconds.
	IntervalNs int64 `json:"intervalNs"`
	DurationNs int64 `json:"durationNs"`
	// Metrics lists the registered metric names in registration order.
	Metrics []string `json:"metrics,omitempty"`
	// SampledNodes is the number of inner nodes emitting per-node
	// records when the scenario bounds series cardinality
	// (telemetry.maxNodes); 0 means every inner node is exported.
	SampledNodes int `json:"sampledNodes,omitempty"`
	// Shards is the number of merged shards (0 or 1 for a single run).
	Shards int `json:"shards,omitempty"`
}

// Record is one exported line. Kind selects which fields are
// meaningful; unused numeric fields are omitted from the JSON when
// zero.
type Record struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// T is sim time in nanoseconds since the start of measurement.
	T int64 `json:"t"`
	// Node is the station index for KindNode records, -1 otherwise.
	Node int `json:"node"`

	// ThroughputBps is the acknowledged goodput over the sample window
	// just ended (the instantaneous trajectory); CumThroughputBps is
	// the goodput averaged from the start of measurement. For KindAgg
	// both are means over the inner nodes.
	ThroughputBps    float64 `json:"throughputBps,omitempty"`
	CumThroughputBps float64 `json:"cumThroughputBps,omitempty"`
	// CollisionRatio is the cumulative ACK-timeout fraction of
	// data-phase handshakes (per node, or the inner-node mean).
	CollisionRatio float64 `json:"collisionRatio,omitempty"`
	// Jain is the fairness index over the inner nodes' cumulative
	// throughput (KindAgg only).
	Jain float64 `json:"jain,omitempty"`
	// Cumulative MAC counters (KindNode only).
	BitsAcked   int64 `json:"bitsAcked,omitempty"`
	Successes   int64 `json:"successes,omitempty"`
	ACKTimeouts int64 `json:"ackTimeouts,omitempty"`
	Drops       int64 `json:"drops,omitempty"`

	// Name identifies metric records (KindCounter/KindGauge/KindHist).
	Name string `json:"name,omitempty"`
	// Value carries a gauge value.
	Value float64 `json:"value,omitempty"`
	// Count and Sum carry counter values and histogram totals.
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	// Bounds/Counts carry the histogram layout (Counts has one extra
	// overflow entry).
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
}

// Sink consumes an export: exactly one header, then records in order.
type Sink interface {
	WriteHeader(h Header) error
	WriteRecord(r Record) error
}

// Writer streams an export to an io.Writer as JSONL. Create with
// NewWriter; call Flush (or Close) once the run completes.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

var _ Sink = (*Writer)(nil)

// NewWriter wraps w in a buffered JSONL export writer.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// WriteHeader writes the header line.
func (w *Writer) WriteHeader(h Header) error {
	if h.Format == "" {
		h.Format = FormatV1
	}
	return w.enc.Encode(h)
}

// WriteRecord writes one record line.
func (w *Writer) WriteRecord(r Record) error {
	return w.enc.Encode(r)
}

// Flush drains the buffer to the underlying writer.
func (w *Writer) Flush() error {
	return w.bw.Flush()
}

// StreamWriter is a Sink that forwards each line the moment it is
// produced: every header and record is encoded straight to w and then
// pushed through the flush hook. It is the live-tail counterpart of
// Writer (which buffers until Flush): cmd/simd uses it to stream an
// export over a chunked HTTP response while the simulation is still
// running, with flush set to the connection's http.Flusher.
type StreamWriter struct {
	enc   *json.Encoder
	flush func() error
	wrote bool
}

var _ Sink = (*StreamWriter)(nil)

// NewStreamWriter builds a per-record-flushing sink over w. flush is
// called after every line; nil means w needs no flushing.
func NewStreamWriter(w io.Writer, flush func() error) *StreamWriter {
	return &StreamWriter{enc: json.NewEncoder(w), flush: flush}
}

// Wrote reports whether any line reached w, so a caller layering
// protocol errors on top (an HTTP handler choosing a status code) knows
// whether the stream has already started.
func (s *StreamWriter) Wrote() bool { return s.wrote }

func (s *StreamWriter) emit(v any) error {
	if err := s.enc.Encode(v); err != nil {
		return err
	}
	s.wrote = true
	if s.flush != nil {
		return s.flush()
	}
	return nil
}

// WriteHeader writes and flushes the header line.
func (s *StreamWriter) WriteHeader(h Header) error {
	if h.Format == "" {
		h.Format = FormatV1
	}
	return s.emit(h)
}

// WriteRecord writes and flushes one record line.
func (s *StreamWriter) WriteRecord(r Record) error {
	return s.emit(r)
}

// Buffer is an in-memory Sink, used by tests and by the sharded runner
// (which merges per-shard buffers before streaming the aggregate).
type Buffer struct {
	header    Header
	hasHeader bool
	records   []Record
}

var _ Sink = (*Buffer)(nil)

// NewBuffer creates an empty buffer sink.
func NewBuffer() *Buffer { return &Buffer{} }

// WriteHeader retains the header.
func (b *Buffer) WriteHeader(h Header) error {
	if h.Format == "" {
		h.Format = FormatV1
	}
	b.header = h
	b.hasHeader = true
	return nil
}

// WriteRecord retains the record.
func (b *Buffer) WriteRecord(r Record) error {
	b.records = append(b.records, r)
	return nil
}

// Header returns the retained header (zero value until one is written).
func (b *Buffer) Header() Header { return b.header }

// Records returns the retained records; the caller must not modify the
// slice.
func (b *Buffer) Records() []Record { return b.records }

// WriteTo replays the buffered export into another sink.
func (b *Buffer) WriteTo(sink Sink) error {
	if b.hasHeader {
		if err := sink.WriteHeader(b.header); err != nil {
			return err
		}
	}
	for _, r := range b.records {
		if err := sink.WriteRecord(r); err != nil {
			return err
		}
	}
	return nil
}

// Discard is a Sink that drops everything (telemetry enabled for its
// metric side effects only).
type Discard struct{}

var _ Sink = Discard{}

// WriteHeader drops the header.
func (Discard) WriteHeader(Header) error { return nil }

// WriteRecord drops the record.
func (Discard) WriteRecord(Record) error { return nil }

// ReadAll parses a JSONL export: one header line followed by records.
func ReadAll(r io.Reader) (Header, []Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var h Header
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return h, nil, err
		}
		return h, nil, fmt.Errorf("telemetry: empty export")
	}
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return h, nil, fmt.Errorf("telemetry: parse header: %w", err)
	}
	if h.Format != FormatV1 {
		return h, nil, fmt.Errorf("telemetry: unknown format %q (want %q)", h.Format, FormatV1)
	}
	var recs []Record
	for i := 2; sc.Scan(); i++ {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return h, nil, fmt.Errorf("telemetry: parse line %d: %w", i, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return h, nil, err
	}
	return h, recs, nil
}
