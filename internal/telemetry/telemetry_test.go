package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/des"
)

func TestNilMetricsNoOp(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if got := c.Value(); got != 0 {
		t.Errorf("nil counter Value = %d, want 0", got)
	}
	var g *Gauge
	g.Set(3.5)
	if got := g.Value(); got != 0 {
		t.Errorf("nil gauge Value = %v, want 0", got)
	}
	var h *Histogram
	h.Observe(1)
	if got := h.Snapshot(); got != nil {
		t.Errorf("nil histogram Snapshot = %v, want nil", got)
	}
}

func TestNilRegistryLookups(t *testing.T) {
	var r *Registry
	if c, err := r.Counter("x"); c != nil || err != nil {
		t.Errorf("nil registry Counter = (%v, %v), want (nil, nil)", c, err)
	}
	if g, err := r.Gauge("x"); g != nil || err != nil {
		t.Errorf("nil registry Gauge = (%v, %v), want (nil, nil)", g, err)
	}
	if h, err := r.Histogram("x", []float64{1}); h != nil || err != nil {
		t.Errorf("nil registry Histogram = (%v, %v), want (nil, nil)", h, err)
	}
	if names := r.Names(); names != nil {
		t.Errorf("nil registry Names = %v, want nil", names)
	}
	if err := r.WriteMetrics(Discard{}, 0, nil); err != nil {
		t.Errorf("nil registry WriteMetrics error: %v", err)
	}
}

func TestRegistryOrderAndIdempotence(t *testing.T) {
	r := NewRegistry()
	c1, err := r.Counter("phy/tx-frames")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Histogram("mac/backoff-slots", []float64{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Gauge("mac/cw"); err != nil {
		t.Fatal(err)
	}
	c2, err := r.Counter("phy/tx-frames")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("re-registering a counter returned a different pointer")
	}
	want := []string{"phy/tx-frames", "mac/backoff-slots", "mac/cw"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

func TestRegistryKindClash(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Counter("m"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Gauge("m"); err == nil {
		t.Error("registering gauge over counter: want error")
	}
	if _, err := r.Histogram("m", []float64{1}); err == nil {
		t.Error("registering histogram over counter: want error")
	}
	if _, err := r.Histogram("h", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Histogram("h", []float64{1, 3}); err == nil {
		t.Error("re-registering histogram with different bounds: want error")
	}
	if _, err := r.Histogram("h", []float64{1, 2}); err != nil {
		t.Errorf("re-registering histogram with same bounds: %v", err)
	}
	if _, err := r.Histogram("bad", nil); err == nil {
		t.Error("histogram with no bounds: want error")
	}
}

func TestWriteMetricsFilterAndOrder(t *testing.T) {
	r := NewRegistry()
	c, _ := r.Counter("a")
	c.Add(3)
	g, _ := r.Gauge("b")
	g.Set(2.5)
	h, _ := r.Histogram("c", []float64{10, 20})
	h.Observe(5)
	h.Observe(25)

	buf := NewBuffer()
	// Filter order is deliberately reversed: output must still follow
	// registration order.
	if err := r.WriteMetrics(buf, 42, []string{"c", "a"}); err != nil {
		t.Fatal(err)
	}
	recs := buf.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Name != "a" || recs[0].Kind != KindCounter || recs[0].Count != 3 || recs[0].T != 42 {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[1].Name != "c" || recs[1].Kind != KindHist || recs[1].Count != 2 || recs[1].Sum != 30 {
		t.Errorf("record 1 = %+v", recs[1])
	}
	if len(recs[1].Bounds) != 2 || len(recs[1].Counts) != 3 {
		t.Errorf("record 1 layout = %d bounds / %d counts", len(recs[1].Bounds), len(recs[1].Counts))
	}
	if recs[1].Counts[0] != 1 || recs[1].Counts[1] != 0 || recs[1].Counts[2] != 1 {
		t.Errorf("record 1 counts = %v", recs[1].Counts)
	}
}

func TestSamplerTicksAndFlush(t *testing.T) {
	sched := des.New(1)
	var ticks []des.Time
	s, err := NewSampler(sched, 10*des.Millisecond, func(now des.Time) {
		ticks = append(ticks, now)
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	s.Start() // second Start is a no-op
	sched.Run(35 * des.Millisecond)
	s.Flush()
	want := []des.Time{10 * des.Millisecond, 20 * des.Millisecond, 30 * des.Millisecond, 35 * des.Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
	// Flush at a tick boundary must not double-sample.
	s.Flush()
	if len(ticks) != len(want) {
		t.Errorf("second Flush added a sample: %v", ticks)
	}
	if s.LastSample() != 35*des.Millisecond {
		t.Errorf("LastSample = %v", s.LastSample())
	}
}

func TestSamplerValidation(t *testing.T) {
	sched := des.New(1)
	if _, err := NewSampler(nil, des.Millisecond, func(des.Time) {}); err == nil {
		t.Error("nil scheduler: want error")
	}
	if _, err := NewSampler(sched, des.Millisecond, nil); err == nil {
		t.Error("nil probe: want error")
	}
	if _, err := NewSampler(sched, 0, func(des.Time) {}); err == nil {
		t.Error("zero interval: want error")
	}
}

func sampleExport() (*Buffer, error) {
	b := NewBuffer()
	if err := b.WriteHeader(Header{
		Scenario: "t", Scheme: "drts-dcts", Seed: 7,
		Nodes: 45, InnerNodes: 5,
		IntervalNs: 10_000_000, DurationNs: 30_000_000,
		Metrics: []string{"a"},
	}); err != nil {
		return nil, err
	}
	recs := []Record{
		{Kind: KindNode, T: 10_000_000, Node: 0, ThroughputBps: 1000, CumThroughputBps: 1000, BitsAcked: 10},
		{Kind: KindAgg, T: 10_000_000, Node: -1, ThroughputBps: 1000, CumThroughputBps: 1000, CollisionRatio: 0.25, Jain: 1},
		{Kind: KindCounter, T: 30_000_000, Node: 0, Name: "a", Count: 5},
	}
	for _, r := range recs {
		if err := b.WriteRecord(r); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func TestWriterBufferReadAllRoundTrip(t *testing.T) {
	b, err := sampleExport()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	w := NewWriter(&out)
	if err := b.WriteTo(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "\n"); got != 4 {
		t.Fatalf("export has %d lines, want 4:\n%s", got, out.String())
	}

	// Byte determinism: a second serialization is identical.
	var out2 bytes.Buffer
	w2 := NewWriter(&out2)
	if err := b.WriteTo(w2); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Error("two serializations of the same export differ")
	}

	h, recs, err := ReadAll(&out)
	if err != nil {
		t.Fatal(err)
	}
	if h.Format != FormatV1 {
		t.Errorf("Format = %q", h.Format)
	}
	if h.Seed != 7 || h.Nodes != 45 || h.InnerNodes != 5 || h.IntervalNs != 10_000_000 {
		t.Errorf("header round trip = %+v", h)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[1].Kind != KindAgg || recs[1].CollisionRatio != 0.25 || recs[1].Jain != 1 || recs[1].Node != -1 {
		t.Errorf("agg record round trip = %+v", recs[1])
	}
	if recs[2].Name != "a" || recs[2].Count != 5 {
		t.Errorf("counter record round trip = %+v", recs[2])
	}
}

func TestReadAllRejectsBadInput(t *testing.T) {
	if _, _, err := ReadAll(strings.NewReader("")); err == nil {
		t.Error("empty export: want error")
	}
	if _, _, err := ReadAll(strings.NewReader(`{"format":"other/v9"}` + "\n")); err == nil {
		t.Error("unknown format: want error")
	}
	if _, _, err := ReadAll(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage header: want error")
	}
}

func shardBuffer(t *testing.T, seed int64, tp, cum, coll, jain float64, count int64, counts []int64) *Buffer {
	t.Helper()
	b := NewBuffer()
	if err := b.WriteHeader(Header{
		Format: FormatV1, Scheme: "drts-dcts", Seed: seed,
		Nodes: 45, InnerNodes: 5,
		IntervalNs: 10_000_000, DurationNs: 20_000_000,
	}); err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindNode, T: 10_000_000, Node: 0, ThroughputBps: 999},
		{Kind: KindAgg, T: 10_000_000, Node: -1, ThroughputBps: tp, CumThroughputBps: cum, CollisionRatio: coll, Jain: jain},
		{Kind: KindAgg, T: 20_000_000, Node: -1, ThroughputBps: tp * 2, CumThroughputBps: cum * 2, CollisionRatio: coll, Jain: jain},
		{Kind: KindCounter, T: 20_000_000, Node: 0, Name: "phy/tx-frames", Count: count},
		{Kind: KindGauge, T: 20_000_000, Node: 0, Name: "mac/cw", Value: float64(count)},
		{Kind: KindHist, T: 20_000_000, Node: 0, Name: "mac/backoff-slots",
			Bounds: []float64{1, 2}, Counts: counts, Count: counts[0] + counts[1] + counts[2], Sum: float64(count)},
	}
	for _, r := range recs {
		if err := b.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestMergeHandValues(t *testing.T) {
	s0 := shardBuffer(t, 7, 1000, 1000, 0.25, 0.9, 10, []int64{1, 2, 3})
	s1 := shardBuffer(t, 8, 3000, 2000, 0.75, 0.7, 30, []int64{4, 5, 6})
	m, err := Merge([]*Buffer{s0, s1})
	if err != nil {
		t.Fatal(err)
	}
	h := m.Header()
	if h.Shards != 2 || h.Seed != 7 {
		t.Errorf("merged header = %+v", h)
	}
	recs := m.Records()
	// 2 agg samples + 3 metric records; node records dropped.
	if len(recs) != 5 {
		t.Fatalf("got %d merged records, want 5: %+v", len(recs), recs)
	}
	a := recs[0]
	if a.Kind != KindAgg || a.T != 10_000_000 || a.ThroughputBps != 2000 || a.CumThroughputBps != 1500 {
		t.Errorf("merged agg[0] = %+v", a)
	}
	if a.CollisionRatio != 0.5 || a.Jain != 0.8 {
		t.Errorf("merged agg[0] ratios = %+v", a)
	}
	if recs[1].T != 20_000_000 || recs[1].ThroughputBps != 4000 {
		t.Errorf("merged agg[1] = %+v", recs[1])
	}
	if c := recs[2]; c.Kind != KindCounter || c.Count != 40 {
		t.Errorf("merged counter = %+v", c)
	}
	if g := recs[3]; g.Kind != KindGauge || g.Value != 20 {
		t.Errorf("merged gauge = %+v", g)
	}
	hr := recs[4]
	if hr.Kind != KindHist || hr.Count != 21 || hr.Sum != 40 {
		t.Errorf("merged hist = %+v", hr)
	}
	if hr.Counts[0] != 5 || hr.Counts[1] != 7 || hr.Counts[2] != 9 {
		t.Errorf("merged hist counts = %v", hr.Counts)
	}
	// Shard 0's record must not have been mutated by the merge.
	if c0 := s0.Records()[5].Counts; c0[0] != 1 || c0[1] != 2 || c0[2] != 3 {
		t.Errorf("merge mutated shard 0 counts: %v", c0)
	}
}

func TestMergeSingleShardIsIdentityOnAggregates(t *testing.T) {
	s0 := shardBuffer(t, 7, 1000, 1000, 0.2, 0.9, 10, []int64{1, 2, 3})
	m, err := Merge([]*Buffer{s0})
	if err != nil {
		t.Fatal(err)
	}
	recs := m.Records()
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	if recs[0].ThroughputBps != 1000 || recs[0].Jain != 0.9 {
		t.Errorf("single-shard merge changed agg values: %+v", recs[0])
	}
}

func TestMergeRejectsMismatch(t *testing.T) {
	if _, err := Merge(nil); err == nil {
		t.Error("empty merge: want error")
	}
	s0 := shardBuffer(t, 7, 1000, 1000, 0.2, 0.9, 10, []int64{1, 2, 3})
	s1 := shardBuffer(t, 8, 1000, 1000, 0.2, 0.9, 10, []int64{1, 2, 3})
	s1.header.IntervalNs = 5_000_000
	if _, err := Merge([]*Buffer{s0, s1}); err == nil {
		t.Error("interval mismatch: want error")
	}
	s2 := shardBuffer(t, 8, 1000, 1000, 0.2, 0.9, 10, []int64{1, 2, 3})
	s2.records = s2.records[:3] // drop a metric record
	if _, err := Merge([]*Buffer{s0, s2}); err == nil {
		t.Error("metric count mismatch: want error")
	}
	s3 := shardBuffer(t, 8, 1000, 1000, 0.2, 0.9, 10, []int64{1, 2, 3})
	s3.records[5].Bounds = []float64{1, 3}
	if _, err := Merge([]*Buffer{s0, s3}); err == nil {
		t.Error("histogram bounds mismatch: want error")
	}
}

// TestStreamWriterFlushesPerLine pins the live-tail contract cmd/simd
// leans on: every header and record is on the wire (and flushed) the
// moment it is written, the bytes equal a buffered Writer's output for
// the same sequence, and Wrote() flips exactly when the first line goes
// out.
func TestStreamWriterFlushesPerLine(t *testing.T) {
	var streamed bytes.Buffer
	flushes := 0
	sw := NewStreamWriter(&streamed, func() error { flushes++; return nil })
	if sw.Wrote() {
		t.Error("Wrote() true before any line")
	}

	h := Header{Seed: 9, Nodes: 18, InnerNodes: 2}
	recs := []Record{
		{Kind: KindNode, T: 10, Node: 0, ThroughputBps: 1.5},
		{Kind: KindAgg, T: 10, Node: -1, Jain: 1},
	}
	if err := sw.WriteHeader(h); err != nil {
		t.Fatal(err)
	}
	if !sw.Wrote() {
		t.Error("Wrote() false after the header line")
	}
	if flushes != 1 {
		t.Errorf("flushes after header = %d, want 1", flushes)
	}
	afterHeader := streamed.Len()
	if afterHeader == 0 {
		t.Error("header not on the wire before any record")
	}
	for _, r := range recs {
		if err := sw.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if flushes != 1+len(recs) {
		t.Errorf("flushes = %d, want one per line (%d)", flushes, 1+len(recs))
	}

	var buffered bytes.Buffer
	w := NewWriter(&buffered)
	if err := w.WriteHeader(h); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), buffered.Bytes()) {
		t.Errorf("streamed bytes differ from buffered bytes:\n%q\nvs\n%q", streamed.Bytes(), buffered.Bytes())
	}

	// A nil flush hook means "no flushing needed", not a crash.
	nw := NewStreamWriter(&bytes.Buffer{}, nil)
	if err := nw.WriteHeader(Header{}); err != nil {
		t.Fatal(err)
	}
	if !nw.Wrote() {
		t.Error("nil-flush writer did not record the write")
	}
}
