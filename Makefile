# Local developer workflow. CI reuses these targets so the two never
# drift: .github/workflows/ci.yml calls `make lint`, `make test` and
# `make bench-smoke` rather than restating the commands.

GO ?= go

# Pinned external tool versions (also pinned in CI). Installed on
# demand by `make lint-extra`; the core `lint` target needs nothing
# beyond the repository itself.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build lint lint-budget lint-extra test bench bench-smoke bench-compare fmt-check scenarios sweep-cached telemetry-smoke fastforward-smoke parallel-smoke scale-smoke simd-smoke

all: build lint test

build:
	$(GO) build ./...

# Determinism and hot-path invariants, machine-enforced. See DESIGN.md
# "Determinism invariants & static analysis".
lint: fmt-check
	$(GO) vet ./...
	$(GO) run ./cmd/desalint ./...

# Lint with a wall-clock budget: the dataflow-backed analyzers
# (inertsafety, cachekey, sharedstate) must stay cheap enough to run on
# every push, so CI uses this target and fails if the full lint pass
# exceeds 120 seconds — only a real blow-up (say, an accidental
# inter-procedural fixpoint) trips it, not runner noise.
lint-budget:
	@start=$$(date +%s); \
	$(MAKE) lint || exit 1; \
	end=$$(date +%s); \
	elapsed=$$((end - start)); \
	echo "lint took $${elapsed}s (budget 120s)"; \
	if [ $$elapsed -gt 120 ]; then echo "lint exceeded the 120s budget"; exit 1; fi

# External linters; kept out of `lint` so the default workflow works
# fully offline. CI runs this with the same pinned versions.
lint-extra:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

test:
	$(GO) test -race -shuffle=on ./...

# Full benchmark run for local perf work.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One iteration each: catches compile errors and panics in the
# benchmark harness without turning CI into a perf run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkScheduler$$|BenchmarkChannelBroadcast$$|BenchmarkScenarioCache|BenchmarkTelemetry' -benchtime 1x -benchmem .

# Regression gate against the committed baseline. A short time-based
# benchtime keeps the gate fast while giving the nanosecond benches
# enough iterations to be stable; the generous threshold means only
# real regressions trip it, not shared-runner noise. Tighten locally
# for perf work.
bench-compare:
	$(GO) run ./cmd/bench -benchtime 0.3s -o /dev/null -compare BENCH_after.json -max-regress 100

# The incremental-sweep loop: the same reduced fig6 sweep twice through
# one content-addressed cache. The second pass must be served entirely
# from disk (the stats line on stderr shows hits) and print identical
# tables.
sweep-cached:
	rm -rf .sweep-cache
	$(GO) run ./cmd/experiments -run fig6 -topologies 5 -duration 1s -cache .sweep-cache -cache-stats
	$(GO) run ./cmd/experiments -run fig6 -topologies 5 -duration 1s -cache .sweep-cache -cache-stats

# Telemetry round trip on the canonical trajectory scenario: two exports
# of the same run must be byte-identical (the determinism contract), and
# simtrace must be able to summarize and filter the artifact.
telemetry-smoke:
	$(GO) run ./cmd/netsim -scenario internal/sim/testdata/telemetry-trajectory.json -telemetry .telemetry-a.jsonl
	$(GO) run ./cmd/netsim -scenario internal/sim/testdata/telemetry-trajectory.json -telemetry .telemetry-b.jsonl
	cmp .telemetry-a.jsonl .telemetry-b.jsonl
	$(GO) run ./cmd/simtrace summarize .telemetry-a.jsonl
	$(GO) run ./cmd/simtrace filter -kind agg .telemetry-a.jsonl > /dev/null
	rm -f .telemetry-a.jsonl .telemetry-b.jsonl

# Fast-forward equivalence on the sparse showcase scenario: the analytic
# idle-time skip must print byte-identical results to slot-by-slot
# operation (DESIGN.md §12). The scenario is the one whose countdowns are
# nearly all bulk jumps, so any settlement bug shows up here first.
fastforward-smoke:
	$(GO) run ./cmd/netsim -scenario internal/sim/testdata/fastforward-sparse.json > .ff-off.txt
	$(GO) run ./cmd/netsim -scenario internal/sim/testdata/fastforward-sparse.json -fastforward > .ff-on.txt
	cmp .ff-off.txt .ff-on.txt
	rm -f .ff-off.txt .ff-on.txt

# Worker-count invariance on the partitioned parallel kernel: the same
# auto-partitioned scenario executed by one worker and by four must
# print byte-identical results (DESIGN.md §14). The scenario is large
# and spread enough to split into multiple grid partitions, so this
# exercises the cross-partition flush path, not just the sequential
# fallback.
parallel-smoke:
	$(GO) run ./cmd/netsim -scenario internal/sim/testdata/parallel-uniform.json -workers 1 > .par-w1.txt
	$(GO) run ./cmd/netsim -scenario internal/sim/testdata/parallel-uniform.json -workers 4 > .par-w4.txt
	cmp .par-w1.txt .par-w4.txt
	rm -f .par-w1.txt .par-w4.txt

# Large-N end-to-end smoke: the committed ~10k-node uniform scenario
# (kept in testdata/scale/ so the `scenarios` glob skips it) must build,
# run, and export bounded telemetry inside the same wall-clock budget
# pattern as lint-budget. It exercises the whole scale path at once:
# batched Build, the incremental grid, and the telemetry.maxNodes
# cardinality cap (the header must report the 4-node sample).
scale-smoke:
	@start=$$(date +%s); \
	$(GO) run ./cmd/netsim -scenario internal/sim/testdata/scale/uniform-10k.json -telemetry .scale.jsonl || exit 1; \
	grep -q '"sampledNodes":4' .scale.jsonl || { echo "telemetry header lacks the bounded-cardinality sample count"; exit 1; }; \
	rm -f .scale.jsonl; \
	end=$$(date +%s); \
	elapsed=$$((end - start)); \
	echo "scale-smoke took $${elapsed}s (budget 120s)"; \
	if [ $$elapsed -gt 120 ]; then echo "scale-smoke exceeded the 120s budget"; exit 1; fi

# Daemon end-to-end smoke: boot cmd/simd on a random port, POST a
# committed scenario and byte-compare the served body against a local
# `netsim -scenario ... -json` run (the service's correctness gate: all
# three serve paths — fresh run, cache hit, coalesced — must produce
# identical bytes). A repeat POST must be a cache hit with the stats
# counters to prove it, a telemetry stream must pipe straight into
# `simtrace summarize -`, and SIGTERM must drain and exit 0.
simd-smoke:
	@set -e; \
	rm -rf .simd-smoke; mkdir -p .simd-smoke; \
	$(GO) build -o .simd-smoke/simd ./cmd/simd; \
	$(GO) build -o .simd-smoke/netsim ./cmd/netsim; \
	$(GO) build -o .simd-smoke/simtrace ./cmd/simtrace; \
	.simd-smoke/simd -addr 127.0.0.1:0 -cache .simd-smoke/cache > .simd-smoke/log 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	i=0; until grep -q 'listening on' .simd-smoke/log 2>/dev/null; do \
		i=$$((i + 1)); [ $$i -le 100 ] || { echo "simd never became ready:"; cat .simd-smoke/log; exit 1; }; \
		sleep 0.1; \
	done; \
	addr=$$(sed -n 's/^simd: listening on //p' .simd-smoke/log); \
	echo "simd up at $$addr"; \
	.simd-smoke/netsim -scenario internal/sim/testdata/paper-drts-dcts.json -json > .simd-smoke/local.json; \
	curl -sf -X POST --data-binary @internal/sim/testdata/paper-drts-dcts.json "http://$$addr/v1/runs" > .simd-smoke/served1.json; \
	cmp .simd-smoke/local.json .simd-smoke/served1.json; \
	curl -sf -X POST --data-binary @internal/sim/testdata/paper-drts-dcts.json "http://$$addr/v1/runs" > .simd-smoke/served2.json; \
	cmp .simd-smoke/local.json .simd-smoke/served2.json; \
	echo "served bytes match local run (fresh and cached)"; \
	curl -sf "http://$$addr/v1/stats" > .simd-smoke/stats.json; \
	grep -q '"cacheMisses":1' .simd-smoke/stats.json || { echo "stats lack the first-run miss:"; cat .simd-smoke/stats.json; exit 1; }; \
	grep -q '"cacheHits":1' .simd-smoke/stats.json || { echo "stats lack the repeat-POST hit:"; cat .simd-smoke/stats.json; exit 1; }; \
	grep -q '"executed":1' .simd-smoke/stats.json || { echo "stats show re-execution on the repeat POST:"; cat .simd-smoke/stats.json; exit 1; }; \
	curl -sf -X POST --data-binary @internal/sim/testdata/telemetry-trajectory.json "http://$$addr/v1/runs?telemetry=1" | .simd-smoke/simtrace summarize -; \
	kill -TERM $$pid; wait $$pid; \
	trap - EXIT; \
	echo "simd-smoke passed (graceful shutdown exited 0)"; \
	rm -rf .simd-smoke

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Runs every checked-in scenario file end to end (shortened to keep CI
# fast): the declarative path must stay able to execute its own goldens.
scenarios:
	@for f in internal/sim/testdata/*.json; do \
		echo "== $$f"; \
		$(GO) run ./cmd/netsim -scenario $$f || exit 1; \
	done
