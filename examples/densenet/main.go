// Densenet: the paper's densest simulated setting (N = 8, i.e. 72 nodes
// in three concentric rings), comparing the three schemes over several
// random topologies — a compact version of the Figs. 6 and 7 study,
// including the fairness effect of binary exponential backoff.
//
//	go run ./examples/densenet
package main

import (
	"fmt"
	"log"

	"repro/dirca"
)

func main() {
	const (
		n          = 8
		topologies = 8
	)
	fmt.Printf("dense network: N=%d (%d nodes), %d random ring topologies, saturated CBR\n\n",
		n, 9*n, topologies)
	fmt.Printf("%-9s %6s | %22s | %12s | %10s | %6s\n",
		"scheme", "beam", "throughput Kb/s [range]", "delay ms", "collisions", "Jain")
	for _, beam := range []float64{30, 90, 150} {
		for _, s := range dirca.Schemes() {
			b, err := dirca.SimulateBatch(dirca.SimConfig{
				Scheme:       s,
				BeamwidthDeg: beam,
				N:            n,
				Seed:         11,
				Duration:     3 * dirca.Second,
			}, topologies)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9s %5.0f° | %8.1f [%6.1f,%6.1f] | %12.2f | %10.3f | %6.3f\n",
				s, beam,
				b.ThroughputBps.Mean/1000, b.ThroughputBps.Min/1000, b.ThroughputBps.Max/1000,
				b.DelaySec.Mean*1000, b.CollisionRatio.Mean, b.Jain.Mean)
		}
		fmt.Println()
	}
	fmt.Println("Expected shape (the paper's Figs. 6 & 7): DRTS-DCTS delivers the highest")
	fmt.Println("throughput and lowest delay at 30° despite the highest collision ratio;")
	fmt.Println("the advantage narrows as the beam widens, and Jain fairness drops with")
	fmt.Println("wider beams as BEB lets winners monopolize the channel.")
}
