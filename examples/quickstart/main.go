// Quickstart: one analytical data point and one small simulation through
// the public dirca API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"repro/dirca"
)

func main() {
	// Analytical model (Section 2 of the paper): what is the best
	// saturation throughput the all-directional scheme can reach with a
	// 30° beam and an average of 5 contenders per coverage disk?
	mp := dirca.ModelParams{
		N:         5,
		Beamwidth: 30 * math.Pi / 180,
		Lengths:   dirca.PaperLengths(),
	}
	for _, s := range dirca.Schemes() {
		p, th, err := dirca.MaxThroughput(s, mp, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("analytical %-9s: max throughput %.4f at attempt probability p=%.4f\n", s, th, p)
	}

	// Simulator (Section 4): the same comparison on one random
	// concentric-ring topology with full IEEE 802.11 machinery.
	fmt.Println()
	for _, s := range dirca.Schemes() {
		res, err := dirca.Simulate(dirca.SimConfig{
			Scheme:       s,
			BeamwidthDeg: 30,
			N:            5,
			Seed:         1,
			Duration:     3 * dirca.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated  %-9s: %7.1f Kb/s per inner node, delay %6.2f ms, collision ratio %.3f\n",
			s, res.MeanThroughputBps()/1000, res.MeanDelaySec()*1000, res.MeanCollisionRatio())
	}
}
