// Beamsweep: the paper's Fig. 5 through the public API, plus crossover
// detection — at which beamwidth does the all-directional scheme lose its
// advantage over standard omni-directional 802.11?
//
//	go run ./examples/beamsweep
package main

import (
	"fmt"
	"log"

	"repro/dirca"
)

func main() {
	ns := []float64{3, 5, 8}
	rows, err := dirca.Fig5Table(ns)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("analytical max throughput vs beamwidth (Fig. 5 of the paper)")
	fmt.Println()
	byN := map[float64][]dirca.Fig5Row{}
	for _, r := range rows {
		byN[r.N] = append(byN[r.N], r)
	}
	for _, n := range ns {
		series := byN[n]
		fmt.Printf("N = %g\n", n)
		fmt.Printf("  %9s %11s %11s %11s\n", "theta", "ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS")
		crossover := -1.0
		for _, r := range series {
			marker := ""
			if r.DRTSDCTS < r.ORTSOCTS && crossover < 0 {
				crossover = r.BeamwidthDeg
				marker = "  <- DRTS-DCTS falls below omni"
			}
			fmt.Printf("  %8.0f° %11.4f %11.4f %11.4f%s\n",
				r.BeamwidthDeg, r.ORTSOCTS, r.DRTSDCTS, r.DRTSOCTS, marker)
		}
		switch {
		case crossover < 0:
			fmt.Printf("  no crossover: DRTS-DCTS stays ahead across the sweep\n\n")
		default:
			fmt.Printf("  crossover near %.0f°: beyond this beamwidth the spatial-reuse gain\n", crossover)
			fmt.Printf("  no longer pays for the extra collisions\n\n")
		}
	}
}
