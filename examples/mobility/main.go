// Mobility: an extension study along the paper's future-work axis. The
// paper evaluates static networks; here nodes follow a random-waypoint
// walk while directional senders aim beams using location snapshots up to
// one second old. Narrow beams increasingly miss moving receivers, while
// the omni-directional scheme does not care where anyone is.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"

	"repro/dirca"
)

func main() {
	const topologies = 4
	speeds := []float64{0, 0.1, 0.3, 1.0} // transmission ranges per second

	fmt.Println("random-waypoint mobility with 1 s location staleness, N=5, θ=30°")
	fmt.Println("(with R = 250 m, speed 0.1 R/s ≈ 25 m/s highway, 1.0 R/s is extreme)")
	fmt.Println()
	fmt.Printf("%12s | %16s | %16s\n", "speed (R/s)", "ORTS-OCTS", "DRTS-DCTS")

	static := make(map[dirca.Scheme]float64)
	for _, speed := range speeds {
		fmt.Printf("%12.2f |", speed)
		for _, s := range []dirca.Scheme{dirca.ORTSOCTS, dirca.DRTSDCTS} {
			b, err := dirca.SimulateBatch(dirca.SimConfig{
				Scheme:          s,
				BeamwidthDeg:    30,
				N:               5,
				Seed:            21,
				Duration:        2 * dirca.Second,
				MaxSpeed:        speed,
				RefreshInterval: dirca.Second,
			}, topologies)
			if err != nil {
				log.Fatal(err)
			}
			kbps := b.ThroughputBps.Mean / 1000
			if speed == 0 {
				static[s] = kbps
			}
			fmt.Printf(" %7.1f Kb (%+3.0f%%) |", kbps, 100*(kbps/static[s]-1))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Two effects compound under mobility: every scheme loses throughput to")
	fmt.Println("neighbor churn (destinations wander out of range mid-exchange), and the")
	fmt.Println("directional scheme additionally misses with beams aimed from stale")
	fmt.Println("bearings. Directional MACs therefore need fresher neighbor state — the")
	fmt.Println("location/MAC coupling the paper's future-work discussion calls out.")
}
