// Hidden-terminal scenario: the motivating problem of the paper's
// introduction. Nodes A and C cannot hear each other but both flood the
// middle node B. The RTS/CTS handshake keeps their long data frames from
// colliding at B; the example shows how each scheme handles it and what
// the residual collision ratio looks like.
//
//	go run ./examples/hiddenterminal
package main

import (
	"fmt"
	"log"

	"repro/dirca"
)

func main() {
	// A --- B --- C with |AB| = |BC| = 0.9 and |AC| = 1.8 > 1: A and C are
	// hidden from each other.
	positions := []dirca.Position{
		{X: -0.9, Y: 0}, // A
		{X: 0, Y: 0},    // B
		{X: 0.9, Y: 0},  // C
	}
	flows := []dirca.Flow{
		{Src: 0, Dst: 1}, // A → B
		{Src: 2, Dst: 1}, // C → B
	}

	fmt.Println("hidden-terminal triple: A and C both saturate B, out of each other's range")
	fmt.Println()
	for _, s := range dirca.Schemes() {
		nw, err := dirca.NewNetwork(dirca.NetworkConfig{
			Scheme:       s,
			BeamwidthDeg: 30,
			Positions:    positions,
			Flows:        flows,
			Seed:         7,
		})
		if err != nil {
			log.Fatal(err)
		}
		nw.Run(5 * dirca.Second)

		a, c := nw.NodeStats(0), nw.NodeStats(2)
		agg := (nw.ThroughputBps(0) + nw.ThroughputBps(2)) / 1000
		fmt.Printf("%-9s: aggregate %7.1f Kb/s  A: %4d ok / %3d data-collisions  C: %4d ok / %3d data-collisions\n",
			s, agg, a.Successes, a.ACKTimeouts, c.Successes, c.ACKTimeouts)
	}

	fmt.Println()
	fmt.Println("The RTS/CTS exchange confines the vulnerable period to the short RTS:")
	fmt.Println("data frames are ~75x longer than an RTS, yet data-phase collisions stay rare.")
	fmt.Println("With directional CTS (DRTS-DCTS), B's grant no longer silences both sides,")
	fmt.Println("so the collision count rises — the collision-avoidance/spatial-reuse tradeoff")
	fmt.Println("the paper quantifies.")
}
