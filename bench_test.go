package repro

// One benchmark per table/figure of the paper, plus the ablation benches
// called out in DESIGN.md and micro-benchmarks of the hot substrates.
//
// Figure/table benches run reduced-scale versions of the full
// reproduction (fewer topologies, shorter simulated time) so the suite
// stays minutes-fast; cmd/experiments regenerates the full-scale
// artifacts. Each bench reports domain-specific metrics (Kb/s, ms,
// ratios) via b.ReportMetric so a bench run doubles as a results table.

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/numeric"
	"repro/internal/phy"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// benchSim is the reduced standard cell used by the figure benches.
func benchSim(scheme core.Scheme, n int, beamDeg float64) experiments.SimConfig {
	return experiments.SimConfig{
		Scheme:       scheme,
		BeamwidthDeg: beamDeg,
		N:            n,
		Seed:         1,
		Duration:     500 * des.Millisecond,
	}
}

// BenchmarkTable1 regenerates the protocol-parameter table (a pure
// formatting path; it exists so every paper artifact has a bench target).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.WriteTable1(io.Discard)
	}
}

// BenchmarkFig5 regenerates the analytical maximum-throughput-vs-
// beamwidth curves (all three schemes, N = 3, 5, 8).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5([]float64{3, 5, 8})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.Fig5Shape(rows); err != nil {
			b.Fatalf("published shape violated: %v", err)
		}
	}
}

// BenchmarkFig6 regenerates one reduced throughput-comparison cell per
// scheme (N=8, θ=30°, the paper's clearest separation).
func BenchmarkFig6(b *testing.B) {
	for _, s := range core.Schemes() {
		b.Run(s.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunSim(benchSim(s, 8, 30))
				if err != nil {
					b.Fatal(err)
				}
				last = res.MeanThroughputBps()
			}
			b.ReportMetric(last/1000, "Kbps/node")
		})
	}
}

// BenchmarkFig7 regenerates one reduced delay-comparison cell per scheme.
func BenchmarkFig7(b *testing.B) {
	for _, s := range core.Schemes() {
		b.Run(s.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunSim(benchSim(s, 8, 30))
				if err != nil {
					b.Fatal(err)
				}
				last = res.MeanDelaySec()
			}
			b.ReportMetric(last*1000, "ms-delay")
		})
	}
}

// BenchmarkCollisionRatio regenerates the Section 4 collision statistics
// (omitted from the paper for space): directional schemes trade a higher
// data-phase collision rate for spatial reuse.
func BenchmarkCollisionRatio(b *testing.B) {
	for _, s := range core.Schemes() {
		b.Run(s.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunSim(benchSim(s, 8, 30))
				if err != nil {
					b.Fatal(err)
				}
				last = res.MeanCollisionRatio()
			}
			b.ReportMetric(last, "collision-ratio")
		})
	}
}

// BenchmarkFairness regenerates the Section 4 fairness observations: BEB
// unfairness worsens with wider beams.
func BenchmarkFairness(b *testing.B) {
	for _, beam := range []float64{30, 150} {
		b.Run(map[float64]string{30: "narrow30", 150: "wide150"}[beam], func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunSim(benchSim(core.DRTSDCTS, 5, beam))
				if err != nil {
					b.Fatal(err)
				}
				last = res.Jain
			}
			b.ReportMetric(last, "jain")
		})
	}
}

// BenchmarkLoadSweep regenerates one point of the offered-load study
// (extension experiment): delivered throughput under a 100 Kb/s per-node
// CBR load.
func BenchmarkLoadSweep(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		cfg := benchSim(core.DRTSDCTS, 5, 30)
		cfg.OfferedLoadBps = 100_000
		res, err := experiments.RunSim(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res.MeanThroughputBps()
	}
	b.ReportMetric(last/1000, "Kbps/node")
}

// BenchmarkAblationBasicAccess quantifies what RTS/CTS buys in the
// paper's multihop setting by comparing against the no-handshake
// baseline.
func BenchmarkAblationBasicAccess(b *testing.B) {
	for _, basic := range []bool{false, true} {
		name := "rts-cts"
		if basic {
			name = "basic-access"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := benchSim(core.ORTSOCTS, 8, 0)
				cfg.BasicAccess = basic
				res, err := experiments.RunSim(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.MeanThroughputBps()
			}
			b.ReportMetric(last/1000, "Kbps/node")
		})
	}
}

// BenchmarkAblationCapture compares the paper's no-capture receiver with
// first-signal capture: the scheme comparison must not hinge on the
// collision model's pessimism.
func BenchmarkAblationCapture(b *testing.B) {
	for _, capture := range []bool{false, true} {
		name := "paper-nocapture"
		if capture {
			name = "capture"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := benchSim(core.DRTSDCTS, 8, 30)
				cfg.Capture = capture
				res, err := experiments.RunSim(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.MeanThroughputBps()
			}
			b.ReportMetric(last/1000, "Kbps/node")
		})
	}
}

// BenchmarkAblationOracleNAV separates the reduced-waiting effect from
// pure spatial reuse: the oracle makes out-of-beam neighbors defer as if
// transmissions were omni-directional.
func BenchmarkAblationOracleNAV(b *testing.B) {
	for _, oracle := range []bool{false, true} {
		name := "paper-heardonly"
		if oracle {
			name = "oracle"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := benchSim(core.DRTSDCTS, 8, 30)
				cfg.NAVOracle = oracle
				res, err := experiments.RunSim(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.MeanThroughputBps()
			}
			b.ReportMetric(last/1000, "Kbps/node")
		})
	}
}

// BenchmarkAblationEIFS measures the effect of extended-IFS deference
// after frame errors.
func BenchmarkAblationEIFS(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "eifs-on"
		if disable {
			name = "eifs-off"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := benchSim(core.ORTSOCTS, 8, 0)
				cfg.DisableEIFS = disable
				res, err := experiments.RunSim(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.MeanThroughputBps()
			}
			b.ReportMetric(last/1000, "Kbps/node")
		})
	}
}

// BenchmarkAblationTfail compares the analytical model's truncated-
// geometric failed-period length against the worst-case (full handshake)
// assumption.
func BenchmarkAblationTfail(b *testing.B) {
	pr := core.Params{N: 5, Beamwidth: math.Pi / 6, Lengths: core.PaperLengths()}
	b.Run("truncgeom", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			_, th, err := core.MaxThroughput(core.DRTSDCTS, pr, 0)
			if err != nil {
				b.Fatal(err)
			}
			last = th
		}
		b.ReportMetric(last, "max-throughput")
	})
	b.Run("worstcase", func(b *testing.B) {
		// Recompute throughput with T_fail pinned to a full handshake.
		tsucc := float64(pr.Lengths.Succeed())
		worst := func(p float64) float64 {
			st, err := core.Solve(core.DRTSDCTS, p, pr)
			if err != nil {
				return math.Inf(-1)
			}
			return st.Ps * float64(pr.Lengths.Data) / (st.Pw + st.Ps*tsucc + st.Pf*tsucc)
		}
		var last float64
		for i := 0; i < b.N; i++ {
			_, th, err := numeric.MaximizeHybrid(worst, 1e-6, 0.5, 64, 1e-9)
			if err != nil {
				b.Fatal(err)
			}
			last = th
		}
		b.ReportMetric(last, "max-throughput")
	})
}

// BenchmarkAblationOptimizer compares golden-section refinement against
// pure grid search for the max-throughput solve.
func BenchmarkAblationOptimizer(b *testing.B) {
	pr := core.Params{N: 5, Beamwidth: math.Pi / 6, Lengths: core.PaperLengths()}
	f := func(p float64) float64 {
		th, err := core.Throughput(core.DRTSDCTS, p, pr)
		if err != nil {
			return math.Inf(-1)
		}
		return th
	}
	b.Run("hybrid-golden", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := numeric.MaximizeHybrid(f, 1e-6, 0.5, 64, 1e-9); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("grid-4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := numeric.MaximizeGrid(f, 1e-6, 0.5, 4096); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScheduler measures raw event-kernel throughput.
func BenchmarkScheduler(b *testing.B) {
	s := des.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(des.Time(i%1000), func() {})
		if i%1024 == 1023 {
			s.RunAll()
		}
	}
	s.RunAll()
}

// BenchmarkChannelBroadcast measures one omni transmission delivered to a
// dense neighborhood.
func BenchmarkChannelBroadcast(b *testing.B) {
	sched := des.New(1)
	ch, err := phy.NewChannel(sched, phy.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	handlers := make([]discard, 33)
	tx := ch.AddRadio(geom.Point{}, &handlers[0])
	for i := 1; i < 33; i++ {
		ch.AddRadio(geom.Polar(geom.Point{}, 0.9, float64(i)), &handlers[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tx.Transmit(phy.Frame{Type: phy.Data, Bytes: 1460}, phy.Omni); err != nil {
			b.Fatal(err)
		}
		sched.RunAll()
	}
}

// BenchmarkAnalyticalThroughput measures one throughput evaluation (one
// Simpson integral per call).
func BenchmarkAnalyticalThroughput(b *testing.B) {
	pr := core.Params{N: 5, Beamwidth: math.Pi / 6, Lengths: core.PaperLengths()}
	for _, s := range core.Schemes() {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Throughput(s, 0.02, pr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioCache measures the content-addressed result cache
// around one simulated half-second: "cold" pays the full run plus the
// store write (every iteration uses a fresh seed, so every lookup
// misses), "warm" replays one cached scenario and must be orders of
// magnitude cheaper.
func BenchmarkScenarioCache(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		store, err := cache.NewStore(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := benchSim(core.DRTSDCTS, 5, 90)
			cfg.Seed = int64(i + 1) // unique key per iteration: all misses
			cfg.Cache = store
			if _, err := experiments.RunSim(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		store, err := cache.NewStore(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		cfg := benchSim(core.DRTSDCTS, 5, 90)
		cfg.Cache = store
		if _, err := experiments.RunSim(cfg); err != nil { // populate
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunSim(cfg); err != nil {
				b.Fatal(err)
			}
		}
		if st := store.Stats(); st.Misses != 1 {
			b.Fatalf("warm loop missed the cache (%+v)", st)
		}
	})
}

// BenchmarkSimulationSecond measures the wall cost of one simulated
// second of the paper's N=5 network.
func BenchmarkSimulationSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchSim(core.DRTSDCTS, 5, 90)
		cfg.Duration = des.Second
		if _, err := experiments.RunSim(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOff re-measures the standard simulated second with
// the telemetry subsystem compiled in but disabled — the nil-receiver
// fast path. Gated against BenchmarkSimulationSecond's BENCH_after.json
// entry: disabled telemetry must cost nothing (same ns/op envelope, no
// extra allocations).
func BenchmarkTelemetryOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchSim(core.DRTSDCTS, 5, 90)
		cfg.Duration = des.Second
		if _, err := experiments.RunSim(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOn measures the same second with 10ms sampling and
// every catalog metric live, streaming into a discard sink — the full
// observability cost (registry updates on the MAC/PHY hot paths plus the
// probe's per-tick record construction).
func BenchmarkTelemetryOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchSim(core.DRTSDCTS, 5, 90)
		cfg.Duration = des.Second
		cfg.TelemetryInterval = 10 * des.Millisecond
		cfg.Telemetry = telemetry.Discard{}
		if _, err := experiments.RunSim(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// sparsePairBench is the fast-forward showcase scenario: a two-node
// explicit pair under waypoint mobility with second-stale bearings, so
// CTS timeouts ratchet the contention window to CWMax and nearly every
// countdown crosses dead air as one bulk jump (DESIGN.md §12).
func sparsePairBench(ff bool) sim.Scenario {
	return sim.Scenario{
		Scheme: "DRTS-DCTS", BeamwidthDeg: 30, Seed: 1,
		Duration: sim.Duration(des.Second),
		Topology: sim.TopologySpec{Kind: "explicit", N: 2,
			Positions: []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}}},
		Traffic:     sim.TrafficSpec{Kind: "cbr", OfferedLoadBps: 500_000},
		Mobility:    sim.MobilitySpec{Kind: "waypoint", MaxSpeed: 2, RefreshInterval: sim.Duration(des.Second)},
		FastForward: ff,
	}
}

// BenchmarkSimulationSecondSparse measures one simulated second of the
// sparse pair with fast-forward enabled — the headline perf number for
// the analytic idle-time skip. Compare BenchmarkFastForwardOff for the
// slot-by-slot cost of the identical scenario.
func BenchmarkSimulationSecondSparse(b *testing.B) {
	sc := sparsePairBench(true)
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunScenario(sc, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastForwardOn / BenchmarkFastForwardOff are the paired
// speedup gauge over the sparse scenario; results are bit-identical
// between them (enforced by TestFastForwardDifferentialSparsePair), so
// any ratio between their ns/op is pure kernel-event savings.
func BenchmarkFastForwardOn(b *testing.B) {
	sc := sparsePairBench(true)
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunScenario(sc, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFastForwardOff(b *testing.B) {
	sc := sparsePairBench(false)
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunScenario(sc, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// parallelKernelBench is the partitioned-kernel showcase: a uniform
// field of Rings²·N = 2560 saturated nodes over a disk of radius 8R —
// far past the auto-partition floor, so the planner splits it into the
// full 8 partitions (DESIGN.md §14).
func parallelKernelBench(partition string) sim.Scenario {
	return sim.Scenario{
		Scheme: "DRTS-DCTS", BeamwidthDeg: 60, Seed: 3,
		Duration:  sim.Duration(50 * des.Millisecond),
		Topology:  sim.TopologySpec{Kind: "uniform", N: 40, Rings: 8},
		Partition: partition,
	}
}

// BenchmarkParallelKernel compares the sequential kernel ("seq", forced
// via partition "off") against the partitioned kernel executed by one
// worker ("k1") and four workers ("k4") on the same large scenario.
// k1 vs k4 is the pure parallel speedup — both run the identical
// partition layout and produce byte-identical results
// (sim.TestPartitionedRunWorkerInvariance); seq differs from both in
// event order (independent per-partition random streams), so seq vs k1
// gauges the partitioning overhead, not a result-preserving rewrite.
// The k4/k1 ratio only shows a speedup with real CPUs to spend: on a
// single-core machine (GOMAXPROCS=1) the extra workers just take turns
// at the barrier and k4 records pure synchronization overhead, while
// seq≈k1 still pins that the windowed round loop itself is ~free.
func BenchmarkParallelKernel(b *testing.B) {
	run := func(b *testing.B, sc sim.Scenario, workers int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunScenario(sc, sim.Options{Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seq", func(b *testing.B) { run(b, parallelKernelBench("off"), 1) })
	b.Run("k1", func(b *testing.B) { run(b, parallelKernelBench(""), 1) })
	b.Run("k4", func(b *testing.B) { run(b, parallelKernelBench(""), 4) })
}

// scaleBench is the committed large-N scale scenario (DESIGN.md §15): a
// uniform field of Rings²·N = 10240 saturated nodes over a disk of
// radius 32R — two orders of magnitude past paper scale, sized so one
// iteration stays sub-second. The same shape (at the same node count)
// is committed as internal/sim/testdata/scale/uniform10k.json for
// `make scale-smoke`.
func scaleBench() sim.Scenario {
	return sim.Scenario{
		Scheme: "DRTS-DCTS", BeamwidthDeg: 60, Seed: 7,
		Duration: sim.Duration(10 * des.Millisecond),
		Topology: sim.TopologySpec{Kind: "uniform", N: 10, Rings: 32},
	}
}

// BenchmarkBuildLargeN measures scenario assembly alone — topology draw,
// radios, neighbor tables, traffic sources, MAC instances — at 10⁴
// nodes. The headline column is allocs/op: Build is required to do O(N)
// work with O(1) allocations per node, and the -compare gate holds the
// line.
func BenchmarkBuildLargeN(b *testing.B) {
	sc := scaleBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Build(sc, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// mobilityChurn measures the spatial-index cost of mobility: each
// iteration teleports a small batch of radios (waypoint-style random
// repositioning) and then runs one neighbor query, which forces the
// index to absorb the moves. With incremental migration the cost is
// O(moved); the fullrebuild variant forces the historical all-or-nothing
// reindex of every radio for the paired ≥10× comparison.
func mobilityChurn(b *testing.B, fullRebuild bool) {
	const (
		n       = 10_000
		side    = 100  // radios per row
		spacing = 0.35 // fraction of Range between neighbors
		moved   = 16   // radios repositioned per iteration
	)
	sched := des.New(1)
	ch, err := phy.NewChannel(sched, phy.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	handlers := make([]discard, n)
	radios := make([]*phy.Radio, n)
	for i := range radios {
		pos := geom.Point{X: float64(i%side) * spacing, Y: float64(i/side) * spacing}
		radios[i] = ch.AddRadio(pos, &handlers[i])
	}
	ch.SetFullRebuild(fullRebuild)
	ch.Neighbors(0) // settle the initial index outside the timer
	rng := rand.New(rand.NewSource(42))
	width := float64(side) * spacing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < moved; j++ {
			radios[rng.Intn(n)].SetPos(geom.Point{X: rng.Float64() * width, Y: rng.Float64() * width})
		}
		ch.Neighbors(0)
	}
}

func BenchmarkMobilityChurn(b *testing.B) {
	b.Run("incremental", func(b *testing.B) { mobilityChurn(b, false) })
	b.Run("fullrebuild", func(b *testing.B) { mobilityChurn(b, true) })
}

// BenchmarkScaleSimulationSecond runs the committed 10240-node scale
// scenario end to end (10 simulated milliseconds — the "second" in the
// name follows the SimulationSecond naming family, normalized below).
// Together with BuildLargeN and MobilityChurn it gates the scale story:
// assembly, mobility churn, and steady-state event throughput.
func BenchmarkScaleSimulationSecond(b *testing.B) {
	sc := scaleBench()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunScenario(sc, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = res.MeanThroughputBps()
	}
	b.ReportMetric(last/1000, "Kbps/node")
}

// discard is a no-op PHY handler for micro-benches.
type discard struct{}

func (discard) OnCarrierBusy()      {}
func (discard) OnCarrierIdle()      {}
func (discard) OnFrame(f phy.Frame) {}
func (discard) OnFrameError()       {}
func (discard) OnTxDone()           {}

// BenchmarkMobilitySweep regenerates one point of the mobility extension
// study: fast random-waypoint motion with one-second-stale bearings.
func BenchmarkMobilitySweep(b *testing.B) {
	for _, speed := range []float64{0, 0.5} {
		name := "static"
		if speed > 0 {
			name = "speed0.5R"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := benchSim(core.DRTSDCTS, 5, 30)
				cfg.MaxSpeed = speed
				cfg.RefreshInterval = des.Second
				res, err := experiments.RunSim(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.MeanThroughputBps()
			}
			b.ReportMetric(last/1000, "Kbps/node")
		})
	}
}

// BenchmarkAblationSINR compares the paper's pessimistic overlap receiver
// against the physical SINR receiver (capture by strength + directional
// gain per footnote 2 of the paper).
func BenchmarkAblationSINR(b *testing.B) {
	for _, sinr := range []bool{false, true} {
		name := "paper-overlap"
		if sinr {
			name = "sinr"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := benchSim(core.DRTSDCTS, 8, 30)
				cfg.SINR = sinr
				res, err := experiments.RunSim(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.MeanThroughputBps()
			}
			b.ReportMetric(last/1000, "Kbps/node")
		})
	}
}

// BenchmarkModelVsSim regenerates one point of the model-validation
// study: the analytical and simulated normalized throughput at the
// paper's clearest configuration.
func BenchmarkModelVsSim(b *testing.B) {
	var rho float64
	for i := 0; i < b.N; i++ {
		base := experiments.SimConfig{Seed: 1, Duration: 500 * des.Millisecond}
		rows, err := experiments.ModelVsSim(base, []int{8}, []float64{30}, 1)
		if err != nil {
			b.Fatal(err)
		}
		rho = experiments.SpearmanRank(rows)
	}
	b.ReportMetric(rho, "spearman")
}

// BenchmarkAdaptiveRTS compares plain DRTS-DCTS against the Ko et
// al.-style adaptive variant (omni RTS fallback on stale bearings plus
// piggybacked locations) under fast mobility.
func BenchmarkAdaptiveRTS(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		name := "plain"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := benchSim(core.DRTSDCTS, 5, 30)
				cfg.MaxSpeed = 1.0
				cfg.RefreshInterval = des.Second
				if adaptive {
					cfg.AdaptiveRTS = 200 * des.Millisecond
				}
				res, err := experiments.RunSim(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.MeanThroughputBps()
			}
			b.ReportMetric(last/1000, "Kbps/node")
		})
	}
}

// BenchmarkServedScenario measures the simulation-as-a-service path
// through the full HTTP handler stack (real httptest transport, not a
// direct handler call): cold is a POST that executes the run, warm is
// the same POST served from the content-addressed cache — the latency
// a dedup'd client actually sees. The warm loop asserts it never
// re-executed.
func BenchmarkServedScenario(b *testing.B) {
	sc := sim.Scenario{
		Scheme:       "DRTS-DCTS",
		BeamwidthDeg: 90,
		Seed:         1,
		Duration:     sim.Duration(100 * des.Millisecond),
		Topology:     sim.TopologySpec{N: 3},
	}
	spec, err := sim.MarshalScenario(sc)
	if err != nil {
		b.Fatal(err)
	}
	post := func(b *testing.B, url string) {
		resp, err := http.Post(url, "application/json", bytes.NewReader(spec))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("POST status %d", resp.StatusCode)
		}
	}

	b.Run("cold", func(b *testing.B) {
		// No cache: every sequential POST runs the simulation, so each
		// iteration pays parse + validate + key + queue + run + encode.
		srv := server.New(server.Config{})
		ts := httptest.NewServer(srv.Handler())
		defer func() { ts.Close(); srv.Close() }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts.URL+"/v1/runs")
		}
	})
	b.Run("warm", func(b *testing.B) {
		store, err := cache.NewStore(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		srv := server.New(server.Config{Cache: store})
		ts := httptest.NewServer(srv.Handler())
		defer func() { ts.Close(); srv.Close() }()
		post(b, ts.URL+"/v1/runs") // populate
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts.URL+"/v1/runs")
		}
		b.StopTimer()
		if st := srv.Stats(); st.Executed != 1 {
			b.Fatalf("warm loop re-executed the scenario (%+v)", st)
		}
	})
}
