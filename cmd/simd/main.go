// Command simd is the simulation-as-a-service daemon: an HTTP/JSON
// front end over the declarative scenario subsystem, the
// content-addressed result cache and the deterministic runner
// (internal/server).
//
//	simd -addr 127.0.0.1:8080 -cache .simd-cache
//
//	curl -X POST --data-binary @run.json http://127.0.0.1:8080/v1/runs
//	curl -X POST --data-binary @run.json 'http://127.0.0.1:8080/v1/runs?telemetry=1' | simtrace summarize -
//	curl http://127.0.0.1:8080/v1/runs/<scenario-key>
//	curl http://127.0.0.1:8080/v1/stats
//
// A POSTed scenario is canonicalized and keyed on its content address:
// identical in-flight requests coalesce onto one execution, repeat
// requests are cache hits served without re-simulation, and a served
// body is byte-identical to `netsim -scenario run.json -json` run
// locally. A full execution queue answers 429 with a Retry-After hint.
//
// On SIGTERM/SIGINT the daemon stops accepting connections, drains
// in-flight requests (bounded by -drain), and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/server"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	if err := run(os.Args[1:], os.Stdout, sigs); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a shutdown signal arrives and
// the listener has drained. The signal channel is a parameter so tests
// drive shutdown without process-level signals.
func run(args []string, stdout io.Writer, sigs <-chan os.Signal) error {
	fs := flag.NewFlagSet("simd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		cacheDir    = fs.String("cache", ".simd-cache", "content-addressed result cache directory (\"\" disables caching)")
		queueCap    = fs.Int("queue", 0, "bound on admitted-but-not-started runs before 429 (0 = 64)")
		concurrency = fs.Int("concurrency", 0, "simultaneous simulation executions (0 = one per budgeted core)")
		workers     = fs.Int("workers", 0, "total goroutine budget shared by concurrent runs and intra-run workers (0 = GOMAXPROCS; never affects results)")
		drain       = fs.Duration("drain", 30*time.Second, "graceful-shutdown bound for draining in-flight requests")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var store *cache.Store
	if *cacheDir != "" {
		var err error
		store, err = cache.NewStore(*cacheDir, 0)
		if err != nil {
			return err
		}
	}
	srv := server.New(server.Config{
		Cache:       store,
		QueueCap:    *queueCap,
		Concurrency: *concurrency,
		Budget:      *workers,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address line is the readiness contract scripts key on
	// (make simd-smoke greps it to learn the port picked for :0).
	fmt.Fprintf(stdout, "simd: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		srv.Close()
		return err
	case <-sigs:
	}
	fmt.Fprintf(stdout, "simd: shutting down (draining up to %v)\n", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		// Requests still in flight at the deadline are cut off; the
		// daemon still exits cleanly after releasing the pool.
		fmt.Fprintf(stdout, "simd: drain incomplete: %v\n", err)
	}
	srv.Close()
	return nil
}
