package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/sim"
)

// syncBuffer lets the test read the daemon's stdout while run() is
// still writing to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonLifecycle boots the daemon on a free port, serves a run,
// and shuts it down gracefully: run() must print the resolved listen
// address, answer /healthz, serve the canonical result bytes for a
// POSTed scenario, and return nil (exit 0) on SIGTERM.
func TestDaemonLifecycle(t *testing.T) {
	var stdout syncBuffer
	sigs := make(chan os.Signal, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-addr", "127.0.0.1:0",
			"-cache", t.TempDir(),
		}, &stdout, sigs)
	}()

	// The readiness line carries the resolved port — the same contract
	// make simd-smoke scripts against.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no listening line; stdout so far: %q", stdout.String())
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "simd: listening on "); ok {
				addr = rest
			}
		}
		select {
		case err := <-errCh:
			t.Fatalf("daemon exited early: %v", err)
		case <-time.After(5 * time.Millisecond):
		}
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("healthz: status %d body %q", resp.StatusCode, body)
	}

	sc := sim.Scenario{
		Scheme:       "DRTS-DCTS",
		BeamwidthDeg: 60,
		Seed:         3,
		Duration:     sim.Duration(40 * time.Millisecond),
		Topology:     sim.TopologySpec{N: 2},
	}
	spec, err := sim.MarshalScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/runs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d: %s", resp.StatusCode, served)
	}
	res, err := sim.RunScenario(sc, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := sim.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if want := append(payload, '\n'); !bytes.Equal(served, want) {
		t.Errorf("served bytes differ from local run (%d vs %d bytes)", len(served), len(want))
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}
	if out := stdout.String(); !strings.Contains(out, "shutting down") {
		t.Errorf("stdout lacks shutdown line: %q", out)
	}
}

// TestDaemonBadFlags pins the error paths that must exit non-zero.
func TestDaemonBadFlags(t *testing.T) {
	if err := run([]string{"-addr", "256.0.0.1:bogus"}, io.Discard, nil); err == nil {
		t.Error("bad listen address: want error")
	}
	if err := run([]string{"-nosuchflag"}, io.Discard, nil); err == nil {
		t.Error("unknown flag: want error")
	}
}
