// Command experiments regenerates every table and figure of the paper's
// evaluation:
//
//	fig5       analytical maximum throughput vs beamwidth (Section 3)
//	table1     the IEEE 802.11 configuration constants used (Section 4)
//	fig6       simulated throughput comparison (Section 4)
//	fig7       simulated delay comparison (Section 4)
//	collision  collision-ratio statistics (Section 4, omitted in the paper)
//	fairness   BEB fairness statistics (Section 4, omitted in the paper)
//	trajectory single-run telemetry export: throughput/collision/fairness vs sim time (extension)
//	loadsweep  offered-load vs delivered-throughput/delay study (extension)
//	mobility   node-speed vs throughput study with stale bearings (extension)
//	modelvssim analytical-vs-simulated throughput comparison (extension)
//	reuse      spatial-reuse factor study (extension)
//	delaycdf   per-packet delay percentile comparison (extension)
//	all        everything above except the extensions
//
// The simulation sweeps default to the paper's 50 random topologies per
// cell; use -topologies and -duration to trade fidelity for time. Use
// -csv to emit machine-readable output alongside the tables.
//
// Example (full paper reproduction, ~minutes):
//
//	experiments -run all -topologies 50 -duration 10s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		what         = fs.String("run", "all", "fig5|table1|fig6|fig7|collision|fairness|all")
		topos        = fs.Int("topologies", 50, "random topologies per simulation cell")
		duration     = fs.Duration("duration", 10*time.Second, "simulated time per run")
		seed         = fs.Int64("seed", 1, "base random seed")
		csv          = fs.Bool("csv", false, "also emit CSV blocks")
		jsonOut      = fs.Bool("json", false, "also emit JSON blocks")
		svgDir       = fs.String("svg", "", "directory to write figure SVGs into (created if missing)")
		scenarioPath = fs.String("scenario", "", "base scenario JSON overriding -seed/-duration (and N/beamwidth where a study allows)")
		dump         = fs.Bool("dump-scenario", false, "print the base scenario as canonical JSON and exit")
		cacheDir     = fs.String("cache", "", "directory for the content-addressed result cache (repeat sweeps are served from it)")
		cacheStats   = fs.Bool("cache-stats", false, "print cache hit/miss/eviction counters on exit (requires -cache)")
		telPath      = fs.String("telemetry", "telemetry.jsonl", "output file for the trajectory study's JSONL export")
		telInterval  = fs.Duration("telemetry-interval", 10*time.Millisecond, "sim-time sampling interval for the trajectory study")
		fastForward  = fs.Bool("fastforward", false, "enable analytic idle-time skipping (bit-identical results, fewer kernel events)")
		pruneMargin  = fs.Float64("prune", 0, "pre-sweep pruning margin in (0, 1]: skip grid cells whose Kai-Liew estimate falls below margin x the best at the same N (0 disables)")
		workers      = fs.Int("workers", 0, "total goroutine budget shared between batch shards and partitioned runs (0 = GOMAXPROCS; never affects results)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cacheStats && *cacheDir == "" {
		return fmt.Errorf("-cache-stats requires -cache DIR")
	}

	baseCfg := experiments.SimConfig{
		Seed:     *seed,
		Duration: des.Time(duration.Nanoseconds()),
	}
	if *scenarioPath != "" {
		sc, err := sim.LoadScenario(*scenarioPath)
		if err != nil {
			return err
		}
		if err := sc.Validate(); err != nil {
			return err
		}
		baseCfg, err = experiments.ConfigFromScenario(sc)
		if err != nil {
			return err
		}
	}
	if *fastForward {
		baseCfg.FastForward = true
	}
	baseCfg.Workers = *workers
	if *cacheDir != "" {
		store, err := cache.NewStore(*cacheDir, 0)
		if err != nil {
			return err
		}
		baseCfg.Cache = store
		if *cacheStats {
			defer func() {
				st := store.Stats()
				fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d evictions (%s)\n",
					st.Hits, st.Misses, st.Evictions, store.Dir())
			}()
		}
	}
	if *dump {
		return sim.WriteScenario(os.Stdout, baseCfg.Scenario())
	}
	// Studies that fix their own density/beamwidth fill them only when
	// the base does not supply one, so a scenario file stays in charge.
	withDefaults := func(n int, beamDeg float64) experiments.SimConfig {
		cfg := baseCfg
		if cfg.N == 0 {
			cfg.N = n
		}
		if cfg.BeamwidthDeg == 0 {
			cfg.BeamwidthDeg = beamDeg
		}
		return cfg
	}

	var mkSVG func(name string) (io.WriteCloser, error)
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		mkSVG = func(name string) (io.WriteCloser, error) {
			return os.Create(filepath.Join(*svgDir, name))
		}
	}

	targets := map[string]bool{}
	for _, t := range strings.Split(*what, ",") {
		targets[strings.TrimSpace(strings.ToLower(t))] = true
	}
	all := targets["all"]

	if all || targets["table1"] {
		experiments.WriteTable1(os.Stdout)
		fmt.Println()
	}

	var fig5Rows []experiments.Fig5Row
	if all || targets["fig5"] {
		rows, err := experiments.Fig5([]float64{3, 5, 8})
		if err != nil {
			return err
		}
		fig5Rows = rows
		if err := experiments.WriteFig5(os.Stdout, rows); err != nil {
			return err
		}
		if err := experiments.Fig5Shape(rows); err != nil {
			fmt.Printf("!! shape check: %v\n", err)
		} else {
			fmt.Println("shape check: DRTS-DCTS best at narrow beamwidth; degrades with θ; ORTS-OCTS flat — OK")
		}
		if *csv {
			if err := experiments.WriteFig5CSV(os.Stdout, rows); err != nil {
				return err
			}
		}
		if *jsonOut {
			if err := experiments.WriteFig5JSON(os.Stdout, rows); err != nil {
				return err
			}
		}
		fmt.Println()
	}

	if targets["trajectory"] {
		base := withDefaults(5, 30)
		if base.Scheme == 0 {
			base.Scheme = core.DRTSDCTS
		}
		base.TelemetryInterval = des.Time(telInterval.Nanoseconds())
		f, err := os.Create(*telPath)
		if err != nil {
			return err
		}
		w := telemetry.NewWriter(f)
		base.Telemetry = w
		res, err := experiments.RunSim(base)
		if err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trajectory study: %s N=%d θ=%g° seed=%d, sampled every %v for %v\n",
			base.Scheme, base.N, base.BeamwidthDeg, base.Seed, *telInterval, time.Duration(base.Duration))
		fmt.Printf("  final mean throughput %.1f Kb/s, collision ratio %.3f, Jain %.3f\n",
			res.MeanThroughputBps()/1000, res.MeanCollisionRatio(), res.Jain)
		fmt.Printf("  export written to %s (inspect with: simtrace summarize %s)\n", *telPath, *telPath)
		fmt.Println()
	}

	if targets["loadsweep"] {
		base := withDefaults(5, 30)
		base.Scheme = core.ORTSOCTS // overwritten per cell
		cells, err := experiments.LoadSweep(base, core.Schemes(), experiments.PaperLoads(), *topos)
		if err != nil {
			return err
		}
		if err := experiments.WriteLoadSweep(os.Stdout, cells); err != nil {
			return err
		}
		fmt.Println()
	}

	if targets["reuse"] {
		cells, err := experiments.ReuseStudy(baseCfg, core.Schemes(), 8, []float64{30, 90, 150}, *topos)
		if err != nil {
			return err
		}
		if err := experiments.WriteReuseStudy(os.Stdout, cells); err != nil {
			return err
		}
		fmt.Println()
	}

	if targets["delaycdf"] {
		base := withDefaults(8, 30)
		rows, err := experiments.DelayCDF(base, core.Schemes(), []float64{10, 50, 90, 95, 99})
		if err != nil {
			return err
		}
		if err := experiments.WriteDelayCDF(os.Stdout, rows, core.Schemes()); err != nil {
			return err
		}
		fmt.Println()
	}

	if targets["modelvssim"] {
		ns, beams := experiments.PaperGrid()
		rows, err := experiments.ModelVsSim(baseCfg, ns, beams, *topos)
		if err != nil {
			return err
		}
		if err := experiments.WriteModelVsSim(os.Stdout, rows); err != nil {
			return err
		}
		fmt.Println()
	}

	if targets["mobility"] {
		base := withDefaults(5, 30)
		cells, err := experiments.MobilitySweep(base, core.Schemes(), experiments.PaperSpeeds(), *topos)
		if err != nil {
			return err
		}
		if err := experiments.WriteMobilitySweep(os.Stdout, cells); err != nil {
			return err
		}
		fmt.Println()
	}

	needGrid := all || targets["fig6"] || targets["fig7"] || targets["collision"] || targets["fairness"]
	if !needGrid {
		if mkSVG != nil {
			return experiments.WriteFigureSVGs(mkSVG, fig5Rows, nil)
		}
		return nil
	}

	ns, beams := experiments.PaperGrid()
	fmt.Printf("running simulation grid: %d N × %d beamwidths × 3 schemes × %d topologies, %v each...\n\n",
		len(ns), len(beams), *topos, baseCfg.Duration)
	var cells []experiments.GridCell
	var err error
	if *pruneMargin > 0 {
		var verdicts []experiments.PruneVerdict
		cells, verdicts, err = experiments.RunGridPruned(baseCfg, core.Schemes(), ns, beams, *topos, *pruneMargin)
		if err != nil {
			return err
		}
		skipped := 0
		for _, v := range verdicts {
			if v.Skip {
				skipped++
				fmt.Printf("pruned %v N=%d θ=%g° (Kai-Liew estimate %.3g below %.2fx density best)\n",
					v.Scheme, v.N, v.BeamwidthDeg, v.Estimate, *pruneMargin)
			}
		}
		fmt.Printf("pre-sweep pruning: simulated %d of %d cells\n\n", len(cells), len(verdicts))
	} else {
		cells, err = experiments.RunGrid(baseCfg, core.Schemes(), ns, beams, *topos)
		if err != nil {
			return err
		}
	}

	show := func(key, title string, m experiments.Metric) error {
		if !all && !targets[key] {
			return nil
		}
		return experiments.WriteGrid(os.Stdout, title, cells, m)
	}
	if err := show("fig6", "Fig. 6", experiments.MetricThroughput); err != nil {
		return err
	}
	if err := show("fig7", "Fig. 7", experiments.MetricDelay); err != nil {
		return err
	}
	if err := show("collision", "Collision-ratio study", experiments.MetricCollision); err != nil {
		return err
	}
	if err := show("fairness", "Fairness study", experiments.MetricFairness); err != nil {
		return err
	}
	if *csv {
		if err := experiments.WriteGridCSV(os.Stdout, cells); err != nil {
			return err
		}
	}
	if *jsonOut {
		if err := experiments.WriteGridJSON(os.Stdout, cells); err != nil {
			return err
		}
	}
	if mkSVG != nil {
		if err := experiments.WriteFigureSVGs(mkSVG, fig5Rows, cells); err != nil {
			return err
		}
		fmt.Printf("figure SVGs written to %s\n", *svgDir)
	}
	return nil
}
