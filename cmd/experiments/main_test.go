package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<22)
	total := 0
	for {
		n, err := r.Read(out[total:])
		total += n
		if err != nil || n == 0 {
			break
		}
	}
	return string(out[:total]), errRun
}

func TestRunTable1(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-run", "table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "31-1023") {
		t.Errorf("table1 output: %q", out)
	}
}

func TestRunFig5WithSVG(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return run([]string{"-run", "fig5", "-svg", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shape check") {
		t.Errorf("fig5 output missing shape check: %q", out[:min(len(out), 200)])
	}
	for _, name := range []string{"fig5_n3.svg", "fig5_n5.svg", "fig5_n8.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing %s: %v", name, err)
			continue
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Errorf("%s is not SVG", name)
		}
	}
}

func TestRunSmallGrid(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-run", "fig6", "-topologies", "1", "-duration", "150ms"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig. 6") {
		t.Errorf("fig6 block missing: %q", out[:min(len(out), 300)])
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
}
