package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<22)
	total := 0
	for {
		n, err := r.Read(out[total:])
		total += n
		if err != nil || n == 0 {
			break
		}
	}
	return string(out[:total]), errRun
}

func TestRunTable1(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-run", "table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "31-1023") {
		t.Errorf("table1 output: %q", out)
	}
}

func TestRunFig5WithSVG(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return run([]string{"-run", "fig5", "-svg", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shape check") {
		t.Errorf("fig5 output missing shape check: %q", out[:min(len(out), 200)])
	}
	for _, name := range []string{"fig5_n3.svg", "fig5_n5.svg", "fig5_n8.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing %s: %v", name, err)
			continue
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Errorf("%s is not SVG", name)
		}
	}
}

func TestRunSmallGrid(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-run", "fig6", "-topologies", "1", "-duration", "150ms"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig. 6") {
		t.Errorf("fig6 block missing: %q", out[:min(len(out), 300)])
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run([]string{"-scenario", "/nonexistent.json"}); err == nil {
		t.Error("missing scenario file should fail")
	}
}

func TestDumpScenario(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-seed", "3", "-duration", "2s", "-dump-scenario"})
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sim.ParseScenario([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 3 || sc.Duration.String() != "2s" {
		t.Errorf("dumped scenario seed=%d duration=%v", sc.Seed, sc.Duration)
	}
}

// TestScenarioBaseConfig: a scenario file supplies the base config for a
// study, overriding -seed/-duration and the study's default density.
func TestScenarioBaseConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	spec := `{"scheme":"DRTS-DCTS","beamwidthDeg":60,"seed":5,"duration":"150ms","topology":{"n":3}}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"-run", "delaycdf", "-scenario", path, "-topologies", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "delay") && !strings.Contains(out, "Delay") {
		t.Errorf("delaycdf output missing: %q", out[:min(len(out), 300)])
	}
}
