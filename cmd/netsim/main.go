// Command netsim runs one simulation configuration of the 802.11
// simulator — a single topology or a batch — and prints the measured
// inner-node metrics. A run is described either by flags or by a
// declarative scenario file; -dump-scenario converts the former into the
// latter, and the two paths produce identical output for equivalent
// configurations.
//
// Examples:
//
//	netsim -scheme drts-dcts -n 8 -beam 30 -duration 5s
//	netsim -scheme orts-octs -n 5 -topologies 20 -seed 7
//	netsim -scheme drts-dcts -n 5 -beam 90 -hello -verbose
//	netsim -scheme drts-dcts -n 5 -beam 60 -dump-scenario > run.json
//	netsim -scenario run.json
//	netsim -scheme drts-dcts -n 5 -beam 60 -telemetry run.jsonl -telemetry-interval 10ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("netsim", flag.ContinueOnError)
	var (
		scenarioPath = fs.String("scenario", "", "run a scenario JSON file instead of building one from flags")
		dump         = fs.Bool("dump-scenario", false, "print the scenario as canonical JSON and exit without running")
		schemeName   = fs.String("scheme", "drts-dcts", "MAC scheme: ORTS-OCTS, DRTS-DCTS or DRTS-OCTS")
		n            = fs.Int("n", 5, "density N (inner measured nodes; 9N total)")
		topoKind     = fs.String("topology", "", "topology generator kind (default rings)")
		beamDeg      = fs.Float64("beam", 30, "transmission beamwidth in degrees")
		seed         = fs.Int64("seed", 1, "random seed")
		duration     = fs.Duration("duration", 5*time.Second, "simulated time")
		topos        = fs.Int("topologies", 1, "number of independent random topologies")
		packet       = fs.Int("packet", 1460, "data packet size in bytes")
		hello        = fs.Bool("hello", false, "bootstrap neighbor tables over the air (HELLO protocol)")
		capture      = fs.Bool("capture", false, "ablation: first-signal capture at receivers")
		oracle       = fs.Bool("oracle-nav", false, "ablation: oracle virtual carrier sensing")
		noEIFS       = fs.Bool("no-eifs", false, "ablation: disable EIFS deference")
		adaptive     = fs.Duration("adaptive-rts", 0, "adaptive RTS staleness threshold (0 = off)")
		jsonOut      = fs.Bool("json", false, "print the canonical Result JSON instead of the text report (single-topology mode; the bytes cmd/simd serves)")
		verbose      = fs.Bool("verbose", false, "print per-node stats (single-topology mode)")
		traceN       = fs.Int("trace", 0, "print the last N protocol trace events (single-topology mode)")
		telPath      = fs.String("telemetry", "", "write a telemetry JSONL export to FILE (\"-\" for stdout); analyze with simtrace")
		telInterval  = fs.Duration("telemetry-interval", 10*time.Millisecond, "sim-time sampling interval for -telemetry")
		fastForward  = fs.Bool("fastforward", false, "enable analytic idle-time skipping (bit-identical results, fewer kernel events)")
		partition    = fs.String("partition", "", "partitioned parallel kernel: auto or off (default: scenario setting, auto)")
		workers      = fs.Int("workers", 0, "goroutine budget for batch shards and partitioned runs (0 = GOMAXPROCS; never affects results)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sc sim.Scenario
	if *scenarioPath != "" {
		var err error
		sc, err = sim.LoadScenario(*scenarioPath)
		if err != nil {
			return err
		}
	} else {
		scheme, err := core.ParseScheme(*schemeName)
		if err != nil {
			return err
		}
		sc = experiments.SimConfig{
			Scheme:         scheme,
			BeamwidthDeg:   *beamDeg,
			N:              *n,
			TopologyKind:   *topoKind,
			Seed:           *seed,
			Duration:       des.Time(duration.Nanoseconds()),
			PacketBytes:    *packet,
			HelloBootstrap: *hello,
			Capture:        *capture,
			NAVOracle:      *oracle,
			DisableEIFS:    *noEIFS,
			AdaptiveRTS:    des.Time(adaptive.Nanoseconds()),
		}.Scenario()
	}
	// -fastforward opts in on top of whatever the scenario says; it never
	// forces the slow path off for a scenario that enabled it itself.
	if *fastForward {
		sc.FastForward = true
	}
	// -partition overrides the scenario's kernel selection when given.
	if *partition != "" {
		sc.Partition = *partition
	}
	// -telemetry turns on sampling (unless the scenario file already did)
	// and streams the export to the named file. The sink plugs into both
	// the single-run and the sharded-runner paths; the runner merges the
	// per-shard series in shard order before anything reaches the file.
	var telSink *telemetry.Writer
	if *telPath != "" {
		if !sc.Telemetry.Enabled() {
			sc.Telemetry.Interval = sim.Duration(telInterval.Nanoseconds())
		}
	}
	if *telPath != "" && !*dump {
		out := os.Stdout
		if *telPath != "-" {
			f, err := os.Create(*telPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		telSink = telemetry.NewWriter(out)
		defer telSink.Flush()
	}
	if err := sc.Validate(); err != nil {
		return err
	}
	scheme, err := sc.ResolvedScheme()
	if err != nil {
		return err
	}
	if *dump {
		return sim.WriteScenario(os.Stdout, sc)
	}
	dur := des.Time(sc.Duration)

	if *jsonOut && *topos > 1 {
		return fmt.Errorf("-json reports a single run; it cannot aggregate -topologies %d", *topos)
	}

	if *topos > 1 {
		runner := sim.Runner{Workers: *workers}
		if telSink != nil {
			runner.Options.Telemetry = telSink
		}
		results, err := runner.Run(sc, *topos)
		if err != nil {
			return err
		}
		b := experiments.AggregateBatch(results)
		fmt.Printf("%s N=%d θ=%g° over %d topologies (%v each):\n", scheme, sc.Topology.N, sc.BeamwidthDeg, b.Runs, dur)
		fmt.Printf("  throughput  %s Kb/s per inner node\n", b.ThroughputBps.Scale(1e-3))
		fmt.Printf("  delay       %s ms\n", b.DelaySec.Scale(1e3))
		fmt.Printf("  collisions  %s\n", b.CollisionRatio)
		fmt.Printf("  fairness    %s (Jain)\n", b.Jain)
		return nil
	}

	opts := sim.Options{Workers: *workers}
	var rec *trace.Recorder
	if *traceN > 0 {
		rec = trace.NewRecorder(*traceN)
		opts.Tracer = rec
	}
	if telSink != nil {
		opts.Telemetry = telSink
	}
	res, err := sim.RunScenario(sc, opts)
	if err != nil {
		return err
	}
	if *jsonOut {
		// The canonical encoding plus one newline: byte-identical to the
		// body cmd/simd serves for the same spec (and to the cache
		// payload), so `cmp` against a daemon response is the correctness
		// gate of the service.
		payload, err := sim.EncodeResult(res)
		if err != nil {
			return err
		}
		if _, err := os.Stdout.Write(append(payload, '\n')); err != nil {
			return err
		}
		return nil
	}
	fmt.Printf("%s N=%d θ=%g° seed=%d (%v):\n", scheme, sc.Topology.N, sc.BeamwidthDeg, sc.Seed, dur)
	fmt.Printf("  mean inner throughput  %.1f Kb/s\n", res.MeanThroughputBps()/1000)
	fmt.Printf("  mean delay             %.2f ms\n", res.MeanDelaySec()*1000)
	fmt.Printf("  mean collision ratio   %.3f\n", res.MeanCollisionRatio())
	fmt.Printf("  Jain fairness          %.3f\n", res.Jain)
	if *verbose {
		fmt.Println("  per inner node:")
		for i := range res.ThroughputBps {
			st := res.NodeStats[i]
			fmt.Printf("    node %2d: %8.1f Kb/s  delay %7.2f ms  coll %.3f  rts %d succ %d drop %d\n",
				i, res.ThroughputBps[i]/1000, res.DelaySec[i]*1000, res.CollisionRatio[i],
				st.RTSSent, st.Successes, st.Drops)
		}
	}
	if rec != nil {
		fmt.Printf("  last %d of %d trace events:\n", len(rec.Events()), rec.Total())
		if err := rec.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
