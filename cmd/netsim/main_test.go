package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<20)
	n, _ := r.Read(out)
	return string(out[:n]), errRun
}

func TestRunSingleTopology(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "orts-octs", "-n", "3", "-duration", "200ms", "-seed", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ORTS-OCTS N=3", "mean inner throughput", "Jain fairness"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBatchMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "drts-dcts", "-n", "3", "-beam", "90",
			"-duration", "150ms", "-topologies", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "over 2 topologies") {
		t.Errorf("batch header missing:\n%s", out)
	}
}

func TestRunVerboseAndTrace(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "orts-octs", "-n", "3", "-duration", "150ms",
			"-verbose", "-trace", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "per inner node:") {
		t.Error("verbose section missing")
	}
	if !strings.Contains(out, "trace events:") {
		t.Error("trace section missing")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-scheme", "bogus"}); err == nil {
		t.Error("unknown scheme should fail")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("unknown flag should fail")
	}
}
