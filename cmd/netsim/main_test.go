package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<20)
	n, _ := r.Read(out)
	return string(out[:n]), errRun
}

func TestRunSingleTopology(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "orts-octs", "-n", "3", "-duration", "200ms", "-seed", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ORTS-OCTS N=3", "mean inner throughput", "Jain fairness"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBatchMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "drts-dcts", "-n", "3", "-beam", "90",
			"-duration", "150ms", "-topologies", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "over 2 topologies") {
		t.Errorf("batch header missing:\n%s", out)
	}
}

func TestRunVerboseAndTrace(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-scheme", "orts-octs", "-n", "3", "-duration", "150ms",
			"-verbose", "-trace", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "per inner node:") {
		t.Error("verbose section missing")
	}
	if !strings.Contains(out, "trace events:") {
		t.Error("trace section missing")
	}
}

// TestScenarioMatchesFlags pins the acceptance contract of the scenario
// path: dumping a flag configuration to a scenario file and running the
// file must produce byte-identical output to the flag invocation.
func TestScenarioMatchesFlags(t *testing.T) {
	configs := [][]string{
		{"-scheme", "orts-octs", "-n", "3", "-duration", "200ms", "-seed", "4"},
		{"-scheme", "drts-dcts", "-n", "3", "-beam", "90", "-duration", "150ms", "-seed", "2"},
		{"-scheme", "drts-octs", "-n", "3", "-beam", "60", "-duration", "150ms", "-no-eifs", "-capture"},
		{"-scheme", "drts-dcts", "-n", "3", "-beam", "45", "-duration", "100ms", "-topologies", "2"},
	}
	for _, flags := range configs {
		t.Run(strings.Join(flags, " "), func(t *testing.T) {
			viaFlags, err := capture(t, func() error { return run(flags) })
			if err != nil {
				t.Fatal(err)
			}
			dump, err := capture(t, func() error { return run(append(append([]string{}, flags...), "-dump-scenario")) })
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "scenario.json")
			if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
				t.Fatal(err)
			}
			scenarioArgs := []string{"-scenario", path}
			for i, f := range flags {
				if f == "-topologies" {
					scenarioArgs = append(scenarioArgs, "-topologies", flags[i+1])
				}
			}
			viaScenario, err := capture(t, func() error { return run(scenarioArgs) })
			if err != nil {
				t.Fatal(err)
			}
			if viaFlags != viaScenario {
				t.Errorf("scenario output differs from flag output\n--- flags ---\n%s--- scenario ---\n%s", viaFlags, viaScenario)
			}
		})
	}
}

// TestDumpScenarioCanonical: -dump-scenario output must already be in
// the canonical MarshalScenario form (parse → re-marshal is a no-op).
func TestDumpScenarioCanonical(t *testing.T) {
	dump, err := capture(t, func() error {
		return run([]string{"-scheme", "drts-dcts", "-n", "4", "-beam", "60", "-dump-scenario"})
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sim.ParseScenario([]byte(dump))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := sim.MarshalScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if dump != string(out) {
		t.Errorf("dump is not canonical:\n%s\nvs\n%s", dump, out)
	}
}

func TestRunBadScenarioFile(t *testing.T) {
	if err := run([]string{"-scenario", "/nonexistent/run.json"}); err == nil {
		t.Error("missing scenario file should fail")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"scheme":"DRTS-DCTS","seeed":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path}); err == nil {
		t.Error("scenario with unknown field should fail")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-scheme", "bogus"}); err == nil {
		t.Error("unknown scheme should fail")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("unknown flag should fail")
	}
}

// TestRunJSON pins the -json contract: the printed bytes are exactly
// sim.EncodeResult of the run plus one newline — the same body cmd/simd
// serves for the same spec, which is what makes `cmp` between the two a
// meaningful gate (make simd-smoke).
func TestRunJSON(t *testing.T) {
	sc := sim.Scenario{
		Scheme:       "DRTS-DCTS",
		BeamwidthDeg: 60,
		Seed:         5,
		Duration:     sim.Duration(40e6),
		Topology:     sim.TopologySpec{N: 2},
	}
	spec, err := sim.MarshalScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, spec, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"-scenario", path, "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunScenario(sc, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := sim.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if want := string(payload) + "\n"; out != want {
		t.Errorf("-json output is not the canonical encoding:\n got %q\nwant %q", out, want)
	}

	if err := run([]string{"-scenario", path, "-json", "-topologies", "2"}); err == nil {
		t.Error("-json with -topologies 2: want error (single-run contract)")
	}
}
