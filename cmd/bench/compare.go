package main

// Regression gating: compare a fresh benchmark run against a committed
// baseline artifact and fail (non-zero exit) when a hot-path metric
// regressed beyond the allowed percentage. This is what lets CI hold the
// performance line instead of relying on reviewers eyeballing numbers.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Comparison is the verdict for one benchmark present in both reports.
type Comparison struct {
	// Name is the benchmark name (CPU suffix stripped, so baselines
	// survive a core-count change).
	Name string
	// BaseNs/CurNs are the mean ns_per_op of all matching result lines.
	BaseNs, CurNs float64
	// NsDeltaPct is the relative change in percent (positive = slower).
	NsDeltaPct float64
	// BaseAllocs/CurAllocs are the mean allocs_per_op (-1 when absent).
	BaseAllocs, CurAllocs float64
	// AllocsDeltaPct is the relative change in percent (positive = more
	// allocations); 0 when either side lacks the column.
	AllocsDeltaPct float64
	// Regressed marks a delta beyond the allowed threshold.
	Regressed bool
}

// stripCPUSuffix removes the "-8"-style GOMAXPROCS suffix go test
// appends to benchmark names.
func stripCPUSuffix(name string) string {
	for i := len(name) - 1; i > 0; i-- {
		c := name[i]
		if c >= '0' && c <= '9' {
			continue
		}
		if c == '-' && i < len(name)-1 {
			return name[:i]
		}
		break
	}
	return name
}

// meanByName folds repeated result lines (-count > 1) into per-name
// means of ns/op and allocs/op.
func meanByName(results []Result) map[string]Result {
	sums := make(map[string]*Result)
	counts := make(map[string]int)
	for _, r := range results {
		name := stripCPUSuffix(r.Name)
		agg, ok := sums[name]
		if !ok {
			agg = &Result{Name: name}
			sums[name] = agg
		}
		agg.NsPerOp += r.NsPerOp
		agg.AllocsPerOp += r.AllocsPerOp
		counts[name]++
	}
	out := make(map[string]Result, len(sums))
	for name, agg := range sums { //desalint:commutative — per-key division; order-independent
		n := float64(counts[name])
		out[name] = Result{Name: name, NsPerOp: agg.NsPerOp / n, AllocsPerOp: agg.AllocsPerOp / n}
	}
	return out
}

// CompareReports matches benchmarks by name and flags any whose ns/op or
// allocs/op grew more than maxRegressPct percent over the baseline.
// Benchmarks present in only one report are ignored — a baseline from
// before a benchmark existed must not block its introduction.
func CompareReports(baseline, current Report, maxRegressPct float64) []Comparison {
	base := meanByName(baseline.Results)
	cur := meanByName(current.Results)
	names := make([]string, 0, len(base))
	for name := range base { //desalint:commutative — collected for sorting below
		if _, ok := cur[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	pct := func(baseV, curV float64) float64 {
		if baseV <= 0 {
			return 0
		}
		return (curV - baseV) / baseV * 100
	}
	var out []Comparison
	for _, name := range names {
		b, c := base[name], cur[name]
		cmp := Comparison{
			Name:       name,
			BaseNs:     b.NsPerOp,
			CurNs:      c.NsPerOp,
			NsDeltaPct: pct(b.NsPerOp, c.NsPerOp),
			BaseAllocs: b.AllocsPerOp,
			CurAllocs:  c.AllocsPerOp,
		}
		if b.AllocsPerOp >= 0 && c.AllocsPerOp >= 0 {
			cmp.AllocsDeltaPct = pct(b.AllocsPerOp, c.AllocsPerOp)
		}
		cmp.Regressed = cmp.NsDeltaPct > maxRegressPct || cmp.AllocsDeltaPct > maxRegressPct
		out = append(out, cmp)
	}
	return out
}

// WriteComparison renders the verdict table and returns the number of
// regressed benchmarks.
func WriteComparison(w io.Writer, cmps []Comparison, maxRegressPct float64) int {
	regressed := 0
	fmt.Fprintf(w, "%-40s %14s %14s %8s %10s\n", "benchmark", "base ns/op", "cur ns/op", "Δns%", "Δallocs%")
	for _, c := range cmps {
		mark := "  "
		if c.Regressed {
			mark = "!!"
			regressed++
		}
		fmt.Fprintf(w, "%-40s %14.1f %14.1f %+7.1f%% %+9.1f%% %s\n",
			c.Name, c.BaseNs, c.CurNs, c.NsDeltaPct, c.AllocsDeltaPct, mark)
	}
	if regressed > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed beyond %.1f%%\n", regressed, maxRegressPct)
	}
	return regressed
}

// LoadReport reads a bench JSON artifact.
func LoadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("parse %s: %w", path, err)
	}
	return r, nil
}
