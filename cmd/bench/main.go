// Command bench runs the repository's hot-path benchmarks and records the
// results as a JSON artifact, so the performance trajectory of the
// simulator is tracked in the repo rather than in commit messages.
//
// It shells out to `go test -bench -benchmem`, parses the standard bench
// output (including custom b.ReportMetric columns), and writes one JSON
// document with ns/op, B/op, allocs/op and any extra metrics per
// benchmark.
//
// Examples:
//
//	bench                              # hot-path set -> BENCH_<today>.json
//	bench -bench 'Fig6' -o fig6.json   # any benchmark regexp
//	bench -count 5 -benchtime 2x -o -  # repeat runs, write to stdout
//	bench -compare BENCH_after.json    # gate: non-zero exit if ns/op or
//	                                   # allocs/op regressed >10% (set
//	                                   # -max-regress to tune)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"time"
)

// hotPathBenchmarks is the default set: the event-kernel and channel
// micro-benches, the end-to-end cost of one simulated second (dense and
// sparse), the analytical Fig. 5 sweep, the result cache cold/warm
// pair, the fast-forward on/off pair over the sparse scenario, the
// partitioned parallel kernel (sequential vs 1-worker vs 4-worker), and
// the 10⁴-node scale trio (Build allocations, mobility churn
// incremental vs full rebuild, end-to-end event throughput).
const hotPathBenchmarks = "^(BenchmarkScheduler|BenchmarkChannelBroadcast|BenchmarkSimulationSecond|BenchmarkSimulationSecondSparse|BenchmarkFig5|BenchmarkScenarioCache|BenchmarkTelemetryOff|BenchmarkTelemetryOn|BenchmarkFastForwardOn|BenchmarkFastForwardOff|BenchmarkParallelKernel|BenchmarkBuildLargeN|BenchmarkMobilityChurn|BenchmarkScaleSimulationSecond|BenchmarkServedScenario)$"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// Report is the JSON artifact written by this command.
type Report struct {
	// Date is the run date (YYYY-MM-DD).
	Date string `json:"date"`
	// GoVersion, GOOS, GOARCH and CPUs describe the machine, since ns/op
	// is only comparable within one environment.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// Command is the `go test` invocation that produced the results.
	Command string `json:"command"`
	// Results holds one entry per benchmark result line, in output order
	// (repeated lines from -count stay separate).
	Results []Result `json:"results"`
}

// Result is one parsed benchmark output line.
type Result struct {
	// Name is the benchmark name including any -cpu suffix (e.g.
	// "BenchmarkScheduler-8").
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard columns
	// (bytes/allocs require -benchmem and are -1 when absent).
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra holds custom b.ReportMetric columns (e.g. "Kbps/node").
	Extra map[string]float64 `json:"extra,omitempty"`
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		bench     = fs.String("bench", hotPathBenchmarks, "benchmark regexp passed to go test")
		benchtime = fs.String("benchtime", "", "go test -benchtime value (e.g. 100x, 2s)")
		count     = fs.Int("count", 1, "go test -count value")
		pkg       = fs.String("pkg", "repro", "package pattern holding the benchmarks")
		out       = fs.String("o", "", `output path ("-" for stdout; default BENCH_<date>.json)`)
		compare   = fs.String("compare", "", "baseline bench JSON to gate against; exit non-zero on regression")
		maxRegr   = fs.Float64("max-regress", 10, "allowed ns/op and allocs/op growth over the baseline, in percent")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	goArgs := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-count", fmt.Sprint(*count)}
	if *benchtime != "" {
		goArgs = append(goArgs, "-benchtime", *benchtime)
	}
	goArgs = append(goArgs, *pkg)

	cmd := exec.Command("go", goArgs...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go %v: %w", goArgs, err)
	}
	results, err := ParseBenchOutput(string(raw))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results matched %q", *bench)
	}
	report := Report{
		Date:      time.Now().Format("2006-01-02"), //desalint:ignore wallclock report metadata stamp; no simulation result depends on it
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Command:   "go " + fmt.Sprint(goArgs),
		Results:   results,
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", report.Date)
	}
	var w *os.File
	if path == "-" {
		w = stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
		fmt.Fprintf(os.Stderr, "bench: writing %s\n", path)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if *compare != "" {
		baseline, err := LoadReport(*compare)
		if err != nil {
			return err
		}
		cmps := CompareReports(baseline, report, *maxRegr)
		if len(cmps) == 0 {
			return fmt.Errorf("no benchmarks in common with baseline %s", *compare)
		}
		if n := WriteComparison(os.Stderr, cmps, *maxRegr); n > 0 {
			return fmt.Errorf("%d benchmark(s) regressed beyond %.1f%% of %s", n, *maxRegr, *compare)
		}
		fmt.Fprintf(os.Stderr, "bench: no regressions beyond %.1f%% of %s\n", *maxRegr, *compare)
	}
	return nil
}
