package main

import (
	"strings"
	"testing"
)

func report(results ...Result) Report {
	return Report{Results: results}
}

func TestStripCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkScheduler-8":        "BenchmarkScheduler",
		"BenchmarkScheduler-16":       "BenchmarkScheduler",
		"BenchmarkScheduler":          "BenchmarkScheduler",
		"BenchmarkScenarioCache/warm": "BenchmarkScenarioCache/warm",
		"BenchmarkFig5-4":             "BenchmarkFig5",
	}
	for in, want := range cases {
		if got := stripCPUSuffix(in); got != want {
			t.Errorf("stripCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareReportsFlagsRegression(t *testing.T) {
	base := report(
		Result{Name: "BenchmarkA-8", NsPerOp: 100, AllocsPerOp: 10},
		Result{Name: "BenchmarkB-8", NsPerOp: 200, AllocsPerOp: 0},
	)
	cur := report(
		Result{Name: "BenchmarkA-16", NsPerOp: 125, AllocsPerOp: 10}, // +25% ns: regressed
		Result{Name: "BenchmarkB-16", NsPerOp: 190, AllocsPerOp: 0},  // improved
	)
	cmps := CompareReports(base, cur, 10)
	if len(cmps) != 2 {
		t.Fatalf("got %d comparisons, want 2", len(cmps))
	}
	if !cmps[0].Regressed {
		t.Errorf("BenchmarkA (+25%% ns) not flagged: %+v", cmps[0])
	}
	if cmps[1].Regressed {
		t.Errorf("BenchmarkB (improved) flagged: %+v", cmps[1])
	}
}

func TestCompareReportsAllocRegression(t *testing.T) {
	base := report(Result{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 100})
	cur := report(Result{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 150})
	cmps := CompareReports(base, cur, 10)
	if len(cmps) != 1 || !cmps[0].Regressed {
		t.Fatalf("+50%% allocs at flat ns not flagged: %+v", cmps)
	}
}

func TestCompareReportsMeansRepeatedLines(t *testing.T) {
	base := report(
		Result{Name: "BenchmarkA", NsPerOp: 90, AllocsPerOp: 1},
		Result{Name: "BenchmarkA", NsPerOp: 110, AllocsPerOp: 1},
	)
	cur := report(Result{Name: "BenchmarkA", NsPerOp: 105, AllocsPerOp: 1})
	cmps := CompareReports(base, cur, 10)
	if len(cmps) != 1 {
		t.Fatalf("got %d comparisons, want 1", len(cmps))
	}
	if cmps[0].BaseNs != 100 {
		t.Errorf("baseline mean = %v, want 100", cmps[0].BaseNs)
	}
	if cmps[0].Regressed {
		t.Errorf("+5%% over the count-2 mean flagged at a 10%% threshold")
	}
}

func TestCompareReportsIgnoresUnmatched(t *testing.T) {
	base := report(Result{Name: "BenchmarkOld", NsPerOp: 100, AllocsPerOp: 1})
	cur := report(Result{Name: "BenchmarkNew", NsPerOp: 999, AllocsPerOp: 99})
	if cmps := CompareReports(base, cur, 10); len(cmps) != 0 {
		t.Fatalf("unmatched benchmarks compared: %+v", cmps)
	}
}

func TestWriteComparisonCountsAndRenders(t *testing.T) {
	cmps := []Comparison{
		{Name: "BenchmarkA", BaseNs: 100, CurNs: 130, NsDeltaPct: 30, Regressed: true},
		{Name: "BenchmarkB", BaseNs: 100, CurNs: 90, NsDeltaPct: -10},
	}
	var sb strings.Builder
	if n := WriteComparison(&sb, cmps, 10); n != 1 {
		t.Errorf("regressed count = %d, want 1", n)
	}
	out := sb.String()
	if !strings.Contains(out, "BenchmarkA") || !strings.Contains(out, "!!") {
		t.Errorf("regression marker missing from output:\n%s", out)
	}
}

func TestLoadReportRejectsGarbage(t *testing.T) {
	if _, err := LoadReport("/nonexistent/report.json"); err == nil {
		t.Error("missing file should fail")
	}
}
