package main

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// ParseBenchOutput extracts benchmark result lines from `go test -bench`
// output. A result line looks like
//
//	BenchmarkScheduler-8   12345678   98.7 ns/op   16 B/op   1 allocs/op
//
// optionally with custom b.ReportMetric columns mixed in (value then
// unit). Non-benchmark lines (ok/PASS/pkg headers) are skipped.
func ParseBenchOutput(out string) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark..." in a log message
		}
		r := Result{Name: fields[0], Iterations: iters, NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %w", line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = val
			case "allocs/op":
				r.AllocsPerOp = val
			default:
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[unit] = val
			}
		}
		results = append(results, r)
	}
	return results, sc.Err()
}
