package main

import (
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: repro
cpu: SomeCPU @ 2.00GHz
BenchmarkScheduler-8   	12345678	        98.7 ns/op	      16 B/op	       1 allocs/op
BenchmarkChannelBroadcast-8 	   50000	     25000 ns/op	    4096 B/op	      66 allocs/op
BenchmarkFig6/ORTS-OCTS-8 	       6	 170000000 ns/op	        85.3 Kbps/node	 1200000 B/op	   14000 allocs/op
PASS
ok  	repro	12.345s
`
	results, err := ParseBenchOutput(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	sched := results[0]
	if sched.Name != "BenchmarkScheduler-8" || sched.Iterations != 12345678 {
		t.Errorf("scheduler line parsed as %+v", sched)
	}
	if sched.NsPerOp != 98.7 || sched.BytesPerOp != 16 || sched.AllocsPerOp != 1 {
		t.Errorf("scheduler metrics: %+v", sched)
	}
	fig6 := results[2]
	if fig6.Extra["Kbps/node"] != 85.3 {
		t.Errorf("custom metric lost: %+v", fig6)
	}
	if fig6.AllocsPerOp != 14000 {
		t.Errorf("allocs after custom metric: %+v", fig6)
	}
}

func TestParseBenchOutputSkipsNoise(t *testing.T) {
	results, err := ParseBenchOutput("BenchmarkBroken happened\nnothing here\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("parsed %d results from noise, want 0", len(results))
	}
}

func TestParseBenchOutputMissingBenchmem(t *testing.T) {
	results, err := ParseBenchOutput("BenchmarkX-4 \t 100 \t 5.0 ns/op\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("parsed %d results, want 1", len(results))
	}
	if r := results[0]; r.NsPerOp != 5.0 || r.BytesPerOp != -1 || r.AllocsPerOp != -1 {
		t.Errorf("metrics without -benchmem: %+v", r)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-count", "x"}, nil); err == nil {
		t.Error("bad -count should fail")
	}
}
