// Command simtrace analyzes the JSONL artifacts a simulation run leaves
// behind: telemetry exports (repro-telemetry/v1, see internal/telemetry)
// and protocol trace event streams (internal/trace WriteJSONL).
//
//	simtrace summarize run.jsonl
//	simtrace summarize -window 5 -tol 0.02 run.jsonl
//	simtrace filter -node 2 -kind node run.jsonl > node2.jsonl
//	simtrace filter -from 100ms -to 200ms trace.jsonl
//
// The input file may be "-" (or omitted) to read the stream from
// stdin, so exports pipe straight out of a live source:
//
//	netsim -scheme drts-dcts -n 5 -beam 60 -telemetry - | simtrace summarize -
//	curl -s -X POST --data-binary @run.json 'http://127.0.0.1:8080/v1/runs?telemetry=1' | simtrace summarize -
//
// summarize reads a telemetry export and reports the end-of-run
// aggregates — bit-identical to the experiment's own output, because
// the final record carries the very floats the simulator computed — and
// detects warm-up convergence with a sliding-window test over the
// cumulative-throughput trajectory. On a trace event stream it reports
// event counts by kind and node.
//
// filter passes through the lines matching the node/kind/time-window
// predicates, preserving the original bytes (a filtered telemetry file
// keeps its header and remains a valid export).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: simtrace <summarize|filter> [flags] [file]")
	}
	switch args[0] {
	case "summarize":
		return summarizeCmd(args[1:], out)
	case "filter":
		return filterCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want summarize or filter)", args[0])
	}
}

// open returns the input stream: the named file, or stdin for "" / "-".
func open(fs *flag.FlagSet) (io.ReadCloser, error) {
	switch fs.NArg() {
	case 0:
		return io.NopCloser(os.Stdin), nil
	case 1:
		if fs.Arg(0) == "-" {
			return io.NopCloser(os.Stdin), nil
		}
		return os.Open(fs.Arg(0))
	default:
		return nil, fmt.Errorf("expected at most one input file, got %d", fs.NArg())
	}
}

// probe is the minimal shape shared by telemetry records, telemetry
// headers and trace events — enough to classify and filter any line.
type probe struct {
	Format string `json:"format"`
	Kind   string `json:"kind"`
	T      int64  `json:"t"`
	Node   *int   `json:"node"`
}

// scanLines iterates the non-empty lines of r, reporting 1-based line
// numbers. The buffer limit matches telemetry.ReadAll.
func scanLines(r io.Reader, fn func(line []byte, n int) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for n := 1; sc.Scan(); n++ {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if err := fn(sc.Bytes(), n); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ---- summarize ----

func summarizeCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simtrace summarize", flag.ContinueOnError)
	window := fs.Int("window", 5, "sliding-window width (samples) for warm-up detection")
	tol := fs.Float64("tol", 0.05, "relative spread threshold for warm-up convergence")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in, err := open(fs)
	if err != nil {
		return err
	}
	defer in.Close()

	br := bufio.NewReader(in)
	first, err := br.Peek(4096)
	if err != nil && err != io.EOF {
		return err
	}
	var p probe
	if i := bytes.IndexByte(first, '\n'); i >= 0 {
		first = first[:i]
	}
	if err := json.Unmarshal(first, &p); err != nil {
		return fmt.Errorf("parse first line: %w", err)
	}
	if p.Format != "" {
		return summarizeTelemetry(br, out, *window, *tol)
	}
	return summarizeTrace(br, out)
}

// telemetrySummary is the computed view of one export. The final-record
// floats are carried through unchanged, so they are bit-identical to the
// run's own Result aggregates.
type telemetrySummary struct {
	Header  telemetry.Header
	Samples int // aggregate samples (= probe ticks incl. final flush)

	// End-of-run aggregates, straight from the last "agg" record.
	MeanCumThroughputBps float64
	MeanCollisionRatio   float64
	Jain                 float64

	// Warm-up detection over the aggregate cumulative-throughput
	// trajectory: ConvergedAt is the sim time of the first sample ending
	// a window whose relative spread is within tolerance (-1 = never).
	ConvergedAt int64
	Window      int
	Tol         float64

	Metrics []telemetry.Record // end-of-run metric records, export order
}

// summarize reduces a parsed export. Split from the printing so tests
// can assert bit-equality against a live simulation.
func summarize(h telemetry.Header, recs []telemetry.Record, window int, tol float64) (telemetrySummary, error) {
	s := telemetrySummary{Header: h, ConvergedAt: -1, Window: window, Tol: tol}
	var aggT []int64
	var aggCum []float64
	for _, r := range recs {
		switch r.Kind {
		case telemetry.KindAgg:
			s.Samples++
			s.MeanCumThroughputBps = r.CumThroughputBps
			s.MeanCollisionRatio = r.CollisionRatio
			s.Jain = r.Jain
			aggT = append(aggT, r.T)
			aggCum = append(aggCum, r.CumThroughputBps)
		case telemetry.KindCounter, telemetry.KindGauge, telemetry.KindHist:
			s.Metrics = append(s.Metrics, r)
		}
	}
	if s.Samples == 0 {
		return s, fmt.Errorf("export has no aggregate samples")
	}
	s.ConvergedAt = convergedAt(aggT, aggCum, window, tol)
	return s, nil
}

// convergedAt slides a window of size w over the trajectory and returns
// the time of the first sample whose trailing window has relative spread
// (max-min)/|mean| <= tol, or -1 when no window qualifies. This is the
// classic steady-state onset test: cumulative throughput stops moving
// once the warm-up transient has been averaged out.
func convergedAt(ts []int64, xs []float64, w int, tol float64) int64 {
	if w < 2 {
		w = 2
	}
	for i := w - 1; i < len(xs); i++ {
		lo, hi, sum := xs[i], xs[i], 0.0
		for _, x := range xs[i-w+1 : i+1] {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			sum += x
		}
		mean := sum / float64(w)
		if mean == 0 {
			continue
		}
		if (hi-lo)/abs(mean) <= tol {
			return ts[i]
		}
	}
	return -1
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func summarizeTelemetry(r io.Reader, out io.Writer, window int, tol float64) error {
	h, recs, err := telemetry.ReadAll(r)
	if err != nil {
		return err
	}
	s, err := summarize(h, recs, window, tol)
	if err != nil {
		return err
	}
	name := h.Scenario
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(out, "telemetry export %s: scenario %s scheme %s seed %d\n", h.Format, name, h.Scheme, h.Seed)
	fmt.Fprintf(out, "  %d nodes (%d measured), interval %v, duration %v",
		h.Nodes, h.InnerNodes, time.Duration(h.IntervalNs), time.Duration(h.DurationNs))
	if h.Shards > 1 {
		fmt.Fprintf(out, ", %d shards merged", h.Shards)
	}
	fmt.Fprintf(out, "\n  %d aggregate samples\n", s.Samples)
	fmt.Fprintf(out, "  mean inner throughput  %v bps\n", s.MeanCumThroughputBps)
	fmt.Fprintf(out, "  mean collision ratio   %v\n", s.MeanCollisionRatio)
	fmt.Fprintf(out, "  Jain fairness          %v\n", s.Jain)
	if s.ConvergedAt >= 0 {
		fmt.Fprintf(out, "  warm-up converged at   %v (window %d, tol %g)\n",
			time.Duration(s.ConvergedAt), s.Window, s.Tol)
	} else {
		fmt.Fprintf(out, "  warm-up NOT converged  (window %d, tol %g)\n", s.Window, s.Tol)
	}
	for _, m := range s.Metrics {
		switch m.Kind {
		case telemetry.KindCounter:
			fmt.Fprintf(out, "  counter %-18s %d\n", m.Name, m.Count)
		case telemetry.KindGauge:
			fmt.Fprintf(out, "  gauge   %-18s %v\n", m.Name, m.Value)
		case telemetry.KindHist:
			mean := 0.0
			if m.Count > 0 {
				mean = m.Sum / float64(m.Count)
			}
			fmt.Fprintf(out, "  hist    %-18s n=%d mean=%.1f\n", m.Name, m.Count, mean)
		}
	}
	return nil
}

func summarizeTrace(r io.Reader, out io.Writer) error {
	byKind := make(map[string]int)
	byNode := make(map[int]int)
	var total int
	var minT, maxT int64
	err := scanLines(r, func(line []byte, n int) error {
		var p probe
		if err := json.Unmarshal(line, &p); err != nil {
			return fmt.Errorf("parse line %d: %w", n, err)
		}
		if p.Kind == "" {
			return fmt.Errorf("line %d: no event kind", n)
		}
		if total == 0 || p.T < minT {
			minT = p.T
		}
		if p.T > maxT {
			maxT = p.T
		}
		total++
		byKind[p.Kind]++
		if p.Node != nil {
			byNode[*p.Node]++
		}
		return nil
	})
	if err != nil {
		return err
	}
	if total == 0 {
		return fmt.Errorf("no events")
	}
	fmt.Fprintf(out, "trace: %d events, t=%v..%v\n", total, time.Duration(minT), time.Duration(maxT))
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintln(out, "  by kind:")
	for _, k := range kinds {
		fmt.Fprintf(out, "    %-10s %d\n", k, byKind[k])
	}
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	fmt.Fprintln(out, "  by node:")
	for _, n := range nodes {
		fmt.Fprintf(out, "    node %3d   %d\n", n, byNode[n])
	}
	return nil
}

// ---- filter ----

func filterCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simtrace filter", flag.ContinueOnError)
	node := fs.Int("node", -1, "keep only records of this node (-1 = all)")
	kind := fs.String("kind", "", "keep only records of this kind (telemetry: node/agg/counter/gauge/hist; trace: tx/rx/...)")
	from := fs.Duration("from", 0, "keep only records at or after this sim time")
	to := fs.Duration("to", 0, "keep only records at or before this sim time (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in, err := open(fs)
	if err != nil {
		return err
	}
	defer in.Close()

	bw := bufio.NewWriter(out)
	err = scanLines(in, func(line []byte, n int) error {
		var p probe
		if err := json.Unmarshal(line, &p); err != nil {
			return fmt.Errorf("parse line %d: %w", n, err)
		}
		if p.Format == "" { // headers always pass; records are filtered
			if *kind != "" && p.Kind != *kind {
				return nil
			}
			if *node >= 0 && (p.Node == nil || *p.Node != *node) {
				return nil
			}
			if p.T < int64(*from) {
				return nil
			}
			if *to > 0 && p.T > int64(*to) {
				return nil
			}
		}
		// Emit the original bytes: filtering must not re-encode (and
		// thereby risk perturbing) the floats.
		if _, err := bw.Write(line); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
