package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/phy"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// export runs a small simulation with telemetry and returns the run's
// result plus the raw JSONL export bytes.
func export(t *testing.T) (*experiments.SimResult, []byte) {
	t.Helper()
	var buf bytes.Buffer
	w := telemetry.NewWriter(&buf)
	res, err := experiments.RunSim(experiments.SimConfig{
		Scheme:            core.DRTSDCTS,
		BeamwidthDeg:      60,
		N:                 3,
		Seed:              7,
		Duration:          300 * des.Millisecond,
		TelemetryInterval: 10 * des.Millisecond,
		Telemetry:         w,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestSummarizeMatchesResult is the CLI half of the bit-exactness
// contract: the aggregates simtrace computes from an export must equal
// the simulation's own Result with zero tolerance.
func TestSummarizeMatchesResult(t *testing.T) {
	res, raw := export(t)
	h, recs, err := telemetry.ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	s, err := summarize(h, recs, 5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanCumThroughputBps != res.MeanThroughputBps() {
		t.Errorf("summarized throughput = %v, result = %v", s.MeanCumThroughputBps, res.MeanThroughputBps())
	}
	if s.MeanCollisionRatio != res.MeanCollisionRatio() {
		t.Errorf("summarized collision ratio = %v, result = %v", s.MeanCollisionRatio, res.MeanCollisionRatio())
	}
	if s.Jain != res.Jain {
		t.Errorf("summarized Jain = %v, result = %v", s.Jain, res.Jain)
	}
	if want := 30; s.Samples != want {
		t.Errorf("samples = %d, want %d", s.Samples, want)
	}
	if len(s.Metrics) == 0 {
		t.Error("no metric records in summary")
	}
}

func TestConvergedAt(t *testing.T) {
	ts := []int64{10, 20, 30, 40, 50, 60}
	cases := []struct {
		name string
		xs   []float64
		w    int
		tol  float64
		want int64
	}{
		{"settles", []float64{100, 50, 10, 10.1, 10.2, 10.1}, 3, 0.05, 50},
		{"never", []float64{100, 50, 10, 100, 50, 10}, 3, 0.05, -1},
		{"immediate", []float64{10, 10, 10, 10, 10, 10}, 3, 0.05, 30},
		{"zero-mean skipped", []float64{0, 0, 0, 5, 5, 5}, 3, 0.05, 60},
	}
	for _, c := range cases {
		if got := convergedAt(ts, c.xs, c.w, c.tol); got != c.want {
			t.Errorf("%s: convergedAt = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestSummarizeCLI drives the real subcommand against an export file.
func TestSummarizeCLI(t *testing.T) {
	_, raw := export(t)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"summarize", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"telemetry export repro-telemetry/v1",
		"scheme DRTS-DCTS seed 7",
		"30 aggregate samples",
		"mean inner throughput",
		"Jain fairness",
		"counter phy/tx-frames",
		"hist    mac/backoff-slots",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("summarize output missing %q:\n%s", want, text)
		}
	}
}

// TestFilterPreservesBytes: filtered output lines must be the original
// bytes, the header must survive, and the result must still parse as a
// valid export.
func TestFilterPreservesBytes(t *testing.T) {
	_, raw := export(t)
	var out bytes.Buffer
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"filter", "-node", "1", "-kind", "node", "-from", "100ms", "-to", "200ms", path}, &out); err != nil {
		t.Fatal(err)
	}
	orig := make(map[string]bool)
	for _, l := range strings.Split(string(raw), "\n") {
		orig[l] = true
	}
	h, recs, err := telemetry.ReadAll(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("filtered output is not a valid export: %v", err)
	}
	if h.Format != telemetry.FormatV1 {
		t.Errorf("header did not survive the filter: %+v", h)
	}
	if len(recs) != 11 { // 100ms..200ms inclusive at 10ms cadence
		t.Errorf("got %d records, want 11", len(recs))
	}
	for _, r := range recs {
		if r.Kind != telemetry.KindNode || r.Node != 1 || r.T < 100e6 || r.T > 200e6 {
			t.Errorf("record escaped the filter: %+v", r)
		}
	}
	for _, l := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if !orig[l] {
			t.Errorf("filter rewrote a line: %q", l)
		}
	}
}

// TestSummarizeTraceEvents: the summarize subcommand also reads protocol
// trace JSONL (no telemetry header).
func TestSummarizeTraceEvents(t *testing.T) {
	rec := trace.NewRecorder(64)
	rec.Record(trace.Event{At: 1000, Node: 0, Kind: trace.TxStart, Frame: phy.RTS, Peer: 1})
	rec.Record(trace.Event{At: 2000, Node: 1, Kind: trace.RxFrame, Frame: phy.RTS, Peer: 0})
	rec.Record(trace.Event{At: 3000, Node: 0, Kind: trace.Backoff, Peer: -1, Note: "cw=31"})
	var raw bytes.Buffer
	if err := rec.WriteJSONL(&raw); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, raw.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"summarize", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"trace: 3 events", "tx", "backoff", "node   0   2", "node   1   1"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace summary missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	if err := run([]string{"filter", "-node", "0", path}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Errorf("trace filter kept %d lines, want 2:\n%s", len(lines), out.String())
	}
}

// TestSummarizeStdin pipes a recorded export through stdin (the "-"
// input path): the output must be byte-identical to reading the same
// export from a file. This is the seam `curl ... | simtrace summarize -`
// relies on.
func TestSummarizeStdin(t *testing.T) {
	_, raw := export(t)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var fromFile bytes.Buffer
	if err := run([]string{"summarize", path}, &fromFile); err != nil {
		t.Fatal(err)
	}

	for name, args := range map[string][]string{
		"dash":    {"summarize", "-"},
		"no file": {"summarize"},
	} {
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		orig := os.Stdin
		os.Stdin = r
		go func() {
			w.Write(raw)
			w.Close()
		}()
		var fromStdin bytes.Buffer
		runErr := run(args, &fromStdin)
		os.Stdin = orig
		r.Close()
		if runErr != nil {
			t.Fatalf("%s: %v", name, runErr)
		}
		if !bytes.Equal(fromStdin.Bytes(), fromFile.Bytes()) {
			t.Errorf("%s: stdin summary differs from file summary:\n%s\nvs\n%s",
				name, fromStdin.String(), fromFile.String())
		}
	}

	// filter over stdin must preserve bytes exactly like the file path.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdin
	os.Stdin = r
	go func() {
		w.Write(raw)
		w.Close()
	}()
	var filtered bytes.Buffer
	runErr := run([]string{"filter", "-kind", "agg", "-"}, &filtered)
	os.Stdin = orig
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if _, recs, err := telemetry.ReadAll(bytes.NewReader(filtered.Bytes())); err != nil {
		t.Fatalf("stdin-filtered output is not a valid export: %v", err)
	} else if len(recs) == 0 {
		t.Error("stdin filter dropped every aggregate record")
	}
}

func TestRunBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no subcommand: want error")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown subcommand: want error")
	}
	path := filepath.Join(t.TempDir(), "junk.jsonl")
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"summarize", path}, &out); err == nil {
		t.Error("malformed input: want error")
	}
}
