// Command anamodel evaluates the paper's analytical model (Section 2/3).
//
// With no flags it prints the full Fig. 5 table (maximum achievable
// throughput versus beamwidth for all three schemes). With -p it
// evaluates a single operating point instead.
//
// Examples:
//
//	anamodel                       # Fig. 5 for N = 3, 5, 8
//	anamodel -n 5 -csv             # Fig. 5 at N=5 as CSV
//	anamodel -scheme drts-dcts -n 5 -beam 30 -p 0.02
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "anamodel:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("anamodel", flag.ContinueOnError)
	var (
		nList      = fs.String("n", "3,5,8", "comma-separated node densities N")
		schemeName = fs.String("scheme", "", "evaluate a single scheme (ORTS-OCTS, DRTS-DCTS, DRTS-OCTS)")
		beamDeg    = fs.Float64("beam", 30, "beamwidth in degrees (single-point mode)")
		p          = fs.Float64("p", 0, "attempt probability; > 0 evaluates one point instead of the Fig. 5 sweep")
		csv        = fs.Bool("csv", false, "emit CSV instead of a formatted table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseFloats(*nList)
	if err != nil {
		return err
	}

	if *p > 0 || *schemeName != "" {
		return singlePoint(*schemeName, ns, *beamDeg, *p)
	}

	rows, err := experiments.Fig5(ns)
	if err != nil {
		return err
	}
	if *csv {
		return experiments.WriteFig5CSV(os.Stdout, rows)
	}
	return experiments.WriteFig5(os.Stdout, rows)
}

// singlePoint prints throughput (at p, or the maximum over p when p == 0)
// for one scheme at one beamwidth across the densities.
func singlePoint(schemeName string, ns []float64, beamDeg, p float64) error {
	if schemeName == "" {
		return fmt.Errorf("single-point mode needs -scheme")
	}
	scheme, err := core.ParseScheme(schemeName)
	if err != nil {
		return err
	}
	for _, n := range ns {
		pr := core.Params{N: n, Beamwidth: beamDeg * math.Pi / 180, Lengths: core.PaperLengths()}
		if p > 0 {
			th, err := core.Throughput(scheme, p, pr)
			if err != nil {
				return err
			}
			fmt.Printf("%s N=%g θ=%g° p=%g: throughput %.4f\n", scheme, n, beamDeg, p, th)
			continue
		}
		best, th, err := core.MaxThroughput(scheme, pr, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%s N=%g θ=%g°: max throughput %.4f at p=%.4f\n", scheme, n, beamDeg, th, best)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no densities given")
	}
	return out, nil
}
