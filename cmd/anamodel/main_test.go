package main

import (
	"os"
	"strings"
	"testing"
)

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("3, 5,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 8 {
		t.Errorf("parseFloats = %v", got)
	}
	if _, err := parseFloats(""); err == nil {
		t.Error("empty list should fail")
	}
	if _, err := parseFloats("3,x"); err == nil {
		t.Error("junk should fail")
	}
	if got, err := parseFloats("7,,"); err != nil || len(got) != 1 {
		t.Errorf("trailing commas: %v, %v", got, err)
	}
}

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<20)
	n, _ := r.Read(out)
	if errRun != nil {
		t.Fatalf("run failed: %v", errRun)
	}
	return string(out[:n])
}

func TestRunFig5Mode(t *testing.T) {
	out := capture(t, func() error { return run([]string{"-n", "3"}) })
	if !strings.Contains(out, "Fig. 5") || !strings.Contains(out, "DRTS-DCTS") {
		t.Errorf("fig5 output missing headers: %q", out[:min(len(out), 200)])
	}
}

func TestRunCSVMode(t *testing.T) {
	out := capture(t, func() error { return run([]string{"-n", "3", "-csv"}) })
	if !strings.HasPrefix(out, "n,theta_deg") {
		t.Errorf("CSV header missing: %q", out[:min(len(out), 80)])
	}
}

func TestRunSinglePoint(t *testing.T) {
	out := capture(t, func() error {
		return run([]string{"-scheme", "drts-dcts", "-n", "5", "-beam", "30", "-p", "0.02"})
	})
	if !strings.Contains(out, "DRTS-DCTS N=5") || !strings.Contains(out, "p=0.02") {
		t.Errorf("single-point output: %q", out)
	}
	out = capture(t, func() error {
		return run([]string{"-scheme", "orts-octs", "-n", "5"})
	})
	if !strings.Contains(out, "max throughput") {
		t.Errorf("max mode output: %q", out)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-n", "bogus"}); err == nil {
		t.Error("bad -n should fail")
	}
	if err := run([]string{"-scheme", "nope", "-p", "0.02"}); err == nil {
		t.Error("bad scheme should fail")
	}
	if err := run([]string{"-p", "0.02"}); err == nil {
		t.Error("-p without -scheme should fail")
	}
}
