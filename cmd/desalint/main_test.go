package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/desalint"
)

func TestFindModuleRoot(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("reported module root %s has no go.mod: %v", root, err)
	}
	if _, err := findModuleRoot(string(filepath.Separator)); err == nil {
		t.Error("expected an error above the filesystem root")
	}
}

func TestSuiteWired(t *testing.T) {
	if len(desalint.Analyzers) != 8 {
		t.Fatalf("multichecker wires %d analyzers, want 8", len(desalint.Analyzers))
	}
	for _, a := range desalint.Analyzers {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("incomplete analyzer registration: %+v", a)
		}
	}
}
