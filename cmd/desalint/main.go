// Command desalint is the repository's determinism and hot-path
// multichecker: it runs the internal/analysis suite (wallclock,
// globalrand, maporder, hotpath, timerhandle) over module packages and
// exits non-zero when any invariant is violated.
//
// Usage:
//
//	go run ./cmd/desalint ./...
//	go run ./cmd/desalint ./internal/phy ./internal/mac
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 usage or load error.
// See DESIGN.md, "Determinism invariants & static analysis", for the
// rules and the //desalint: annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis/desalint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: desalint [packages]\n\nAnalyzers:\n")
		for _, a := range desalint.Analyzers {
			scope := "all module packages"
			if a.SimOnly {
				scope = "simulation packages"
			}
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s (%s)\n      %s\n", a.Name, scope, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	diags, err := desalint.Run(root, cwd, patterns)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "desalint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "desalint:", err)
	os.Exit(2)
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
