// Command desalint is the repository's determinism and hot-path
// multichecker: it runs the internal/analysis suite (wallclock,
// globalrand, maporder, hotpath, timerhandle, inertsafety, cachekey,
// sharedstate) over module packages and exits non-zero when any
// invariant is violated.
//
// Usage:
//
//	go run ./cmd/desalint ./...
//	go run ./cmd/desalint -json ./internal/phy ./internal/mac
//
// With -json each diagnostic is emitted as one JSON object per line
// ({"file","line","col","verb","message"}) for editor and CI tooling;
// exit codes are unchanged.
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 usage or load error.
// See DESIGN.md, "Determinism invariants & static analysis", for the
// rules and the //desalint: annotation grammar.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis/desalint"
)

// jsonDiagnostic is the machine-readable diagnostic shape; "verb" is
// the analyzer name so editor integrations can map it straight onto
// the //desalint:ignore <verb> grammar.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Verb    string `json:"verb"`
	Message string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON object per diagnostic instead of plain text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: desalint [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range desalint.Analyzers {
			scope := "all module packages"
			if a.SimOnly {
				scope = "simulation packages"
			}
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s (%s)\n      %s\n", a.Name, scope, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	diags, err := desalint.Run(root, cwd, patterns)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(jsonDiagnostic{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Verb:    d.Analyzer,
				Message: d.Message,
			}); err != nil {
				fatal(err)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "desalint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "desalint:", err)
	os.Exit(2)
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
