package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/topology"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<22)
	total := 0
	for {
		n, err := r.Read(out[total:])
		total += n
		if err != nil || n == 0 {
			break
		}
	}
	return string(out[:total]), errRun
}

func TestRunJSONRoundTrip(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "3", "-count", "2", "-seed", "9"})
	})
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(strings.NewReader(out))
	count := 0
	for dec.More() {
		var topo topology.Topology
		if err := dec.Decode(&topo); err != nil {
			t.Fatal(err)
		}
		if len(topo.Positions) != 27 || topo.N != 3 {
			t.Errorf("decoded topology: %d positions, N=%d", len(topo.Positions), topo.N)
		}
		if err := topo.CheckConstraints(); err != nil {
			t.Errorf("emitted topology violates constraints: %v", err)
		}
		count++
	}
	if count != 2 {
		t.Errorf("decoded %d topologies, want 2", count)
	}
}

func TestRunStats(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "3", "-stats"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "degree min/mean/max") {
		t.Errorf("stats output: %q", out)
	}
}

func TestRunSVG(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "3", "-svg"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "<svg") {
		t.Errorf("SVG output: %q", out[:min(len(out), 60)])
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-n", "x"}); err == nil {
		t.Error("bad -n should fail")
	}
	if err := run([]string{"-kind", "hexgrid"}); err == nil {
		t.Error("unknown generator kind should fail")
	}
	if err := run([]string{"-scenario", "/nonexistent.json"}); err == nil {
		t.Error("missing scenario file should fail")
	}
	if err := run([]string{"-n", "1"}); err == nil || !strings.Contains(err.Error(), "-n") {
		t.Errorf("undersized -n should fail with a clear message, got %v", err)
	}
	if err := run([]string{"-n", "99999999"}); err == nil || !strings.Contains(err.Error(), "sanity bound") {
		t.Errorf("absurd -n should hit the sanity bound, got %v", err)
	}
	if err := run([]string{"-count", "0"}); err == nil || !strings.Contains(err.Error(), "-count") {
		t.Errorf("zero -count should fail, got %v", err)
	}
}

func TestRunGridKind(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-kind", "grid", "-n", "6"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var topo topology.Topology
	if err := json.Unmarshal([]byte(out), &topo); err != nil {
		t.Fatal(err)
	}
	if topo.N != 6 || len(topo.Positions) < 6 {
		t.Errorf("grid topology: N=%d, %d positions", topo.N, len(topo.Positions))
	}
}

func TestRunFromScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	spec := `{"scheme":"DRTS-DCTS","beamwidthDeg":60,"seed":9,"duration":"100ms","topology":{"n":3}}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	fromScenario, err := capture(t, func() error {
		return run([]string{"-scenario", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	fromFlags, err := capture(t, func() error {
		return run([]string{"-n", "3", "-seed", "9"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if fromScenario != fromFlags {
		t.Error("scenario topology differs from the equivalent flag invocation")
	}
}
